// Pathquality reproduces the paper's Section IV-B analysis on a custom
// Jellyfish: it compares all four path-selection schemes (KSP, rKSP,
// EDKSP, rEDKSP) on the same topology instance and prints the Tables
// II-IV metrics side by side, plus the Figure 3 story — how many paths of
// a vanilla-KSP pair pile onto one link versus the edge-disjoint schemes.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	// A custom mid-size Jellyfish (not one of the paper's three): 128
	// switches, 16 network ports, 8 terminals each.
	params := jellyfish.Params{N: 128, X: 24, Y: 16}
	topo, err := jellyfish.New(params, xrand.New(2024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %v: %d links, metrics %+v\n\n",
		params, topo.G.NumEdges(), topo.Metrics(0))

	const k = 8
	pairs := paths.AllOrderedPairs(params.N)
	table := stats.NewTable(
		fmt.Sprintf("Path quality on %v over %d ordered pairs (k=%d)", params, len(pairs), k),
		"Selector", "Avg length", "Disjoint pairs", "Max link share", "Fallbacks")
	for _, alg := range ksp.Algorithms {
		q := paths.Analyze(topo.G, ksp.Config{Alg: alg, K: k}, 7, pairs, 0)
		table.AddRow(alg.String(),
			fmt.Sprintf("%.3f", q.AvgLen),
			fmt.Sprintf("%.1f%%", 100*q.DisjointFraction),
			fmt.Sprintf("%d", q.MaxShare),
			fmt.Sprintf("%d", q.Fallbacks))
	}
	fmt.Println(table.String())

	// Zoom into one pair, Figure-3 style: how concentrated are the k
	// paths of the worst vanilla-KSP pair, and what do the heuristics do
	// to the same pair?
	worstSrc, worstDst, worstShare := graph.NodeID(0), graph.NodeID(1), 0
	cKSP := ksp.NewComputer(topo.G, ksp.Config{Alg: ksp.KSP, K: k}, nil)
	for _, pr := range pairs {
		share := maxLinkShare(cKSP.Paths(pr.Src, pr.Dst))
		if share > worstShare {
			worstShare = share
			worstSrc, worstDst = pr.Src, pr.Dst
		}
	}
	fmt.Printf("worst vanilla-KSP pair: switch %d -> %d, %d of %d paths share one link\n\n",
		worstSrc, worstDst, worstShare, k)
	for _, alg := range ksp.Algorithms {
		c := ksp.NewComputer(topo.G, ksp.Config{Alg: alg, K: k}, xrand.New(5))
		ps := c.Paths(worstSrc, worstDst)
		fmt.Printf("%s paths for that pair (max share %d):\n", alg, maxLinkShare(ps))
		for _, p := range ps {
			fmt.Printf("  %v\n", p)
		}
		fmt.Println()
	}
}

// maxLinkShare is the Table IV statistic for one pair.
func maxLinkShare(ps []graph.Path) int {
	counts := map[uint64]int{}
	best := 0
	for _, p := range ps {
		for i := 0; i+1 < len(p); i++ {
			key := graph.UndirectedEdgeKey(p[i], p[i+1])
			counts[key]++
			if counts[key] > best {
				best = counts[key]
			}
		}
	}
	return best
}
