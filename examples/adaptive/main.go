// Adaptive is a miniature version of the paper's Booksim study (Figures
// 7-13): on one small Jellyfish it sweeps offered load under random shift
// traffic and prints, for each routing mechanism, the latency curve and
// the saturation throughput — demonstrating why KSP-adaptive wins.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

func main() {
	params := jellyfish.Params{N: 24, X: 18, Y: 12} // 6 terminals, 12 links per switch
	net, err := core.NewNetwork(params, core.Options{Selector: ksp.REDKSP, K: 8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	topo := net.Topology()
	pattern := traffic.RandomShift(topo.NumTerminals(), xrand.New(3))
	fmt.Printf("topology %v (%d nodes), traffic %s, selector rEDKSP(8)\n\n",
		params, topo.NumTerminals(), pattern.Name)

	rates := flitsim.Rates(0.1, 1.0, 0.1)
	mechs := append(routing.Mechanisms(), routing.SP())

	table := stats.NewTable("Average packet latency (cycles) vs offered load; '-' = saturated",
		append([]string{"Mechanism"}, rateHeaders(rates)...)...)
	sat := stats.NewTable("Saturation throughput per mechanism", "Mechanism", "Throughput")

	for _, mech := range mechs {
		satRate, results := net.SaturationThroughput(core.SimOptions{
			Mechanism: mech,
			Traffic:   traffic.NewFixedSampler(pattern),
			Seed:      99,
		}, rates)
		row := []string{mech.Name()}
		for _, r := range results {
			if r.Saturated {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.0f", r.AvgLatency))
			}
		}
		table.AddRow(row...)
		sat.AddRow(mech.Name(), fmt.Sprintf("%.2f", satRate))
	}
	fmt.Println(table.String())
	fmt.Println(sat.String())
}

func rateHeaders(rates []float64) []string {
	out := make([]string, len(rates))
	for i, r := range rates {
		out[i] = fmt.Sprintf("%.1f", r)
	}
	return out
}
