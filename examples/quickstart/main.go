// Quickstart: build a Jellyfish network, compute the paper's rEDKSP
// multi-paths, inspect their quality, and run a short adaptive-routing
// simulation — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

func main() {
	// A small Jellyfish: 36 switches with 24 ports each, 16 of which
	// connect to other switches — the paper's RRG(36,24,16), 288 compute
	// nodes.
	net, err := core.NewNetwork(jellyfish.Small, core.Options{
		Selector: ksp.REDKSP, // randomized edge-disjoint KSP, the paper's best
		K:        8,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := net.Topology()
	fmt.Printf("built %v: %d switches, %d compute nodes, %d links\n",
		topo.Params(), topo.N, topo.NumTerminals(), topo.G.NumEdges())

	// The k paths between two compute nodes (resolved to their switches).
	paths := net.TerminalPaths(0, 250)
	fmt.Printf("\n%d candidate paths from node 0 to node 250:\n", len(paths))
	for i, p := range paths {
		fmt.Printf("  path %d (%d hops): %v\n", i, p.Hops(), p)
	}

	// Path quality: with rEDKSP every pair's paths are link-disjoint.
	q := net.PathQuality(0)
	fmt.Printf("\npath quality over %d pairs: avg length %.2f, %.0f%% disjoint pairs, max link sharing %d\n",
		q.Pairs, q.AvgLen, 100*q.DisjointFraction, q.MaxShare)

	// Throughput model (Equation 1) for a random permutation.
	pat := traffic.RandomPermutation(topo.NumTerminals(), xrand.New(7))
	r := net.ModelThroughput(pat)
	sp := net.ModelThroughputSinglePath(pat)
	fmt.Printf("\nmodel throughput (permutation): multi-path %.3f vs single-path %.3f\n",
		r.MeanNode, sp.MeanNode)

	// A short cycle-level simulation with the paper's KSP-adaptive
	// routing mechanism at 40%% offered load.
	res := net.Simulate(core.SimOptions{
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       traffic.NewFixedSampler(pat),
		InjectionRate: 0.4,
	})
	fmt.Printf("\nsimulation at 0.40 load: avg packet latency %.1f cycles, delivered rate %.3f, saturated=%v\n",
		res.AvgLatency, res.DeliveredRate, res.Saturated)
}
