// Faulttolerance demonstrates the reliability angle of disjoint paths:
// it archives a Jellyfish instance to disk, fails increasing numbers of
// random links, and reports — per path-selection scheme — how many switch
// pairs still have a usable precomputed path and how many of the k paths
// survive, without any re-routing. Edge-disjoint sets lose at most one
// path per failed link; vanilla KSP's clustered paths can lose most of the
// set at once.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/xrand"
)

func main() {
	params := jellyfish.Params{N: 48, X: 18, Y: 12}
	topo, err := jellyfish.New(params, xrand.New(2021))
	if err != nil {
		log.Fatal(err)
	}

	// Archive the exact instance, so the numbers below are tied to a
	// reloadable artifact.
	path := filepath.Join(os.TempDir(), "jellyfish-fault-demo.jf")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := topo.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %v (%d links) to %s\n\n", params, topo.G.NumEdges(), path)

	// How redundant is the raw topology? Max-flow says every pair has
	// exactly y edge-disjoint paths.
	minFlow := -1
	rng := xrand.New(4)
	for i := 0; i < 50; i++ {
		s, d := rng.TwoDistinct(params.N)
		flow := graph.MaxEdgeDisjointPaths(topo.G, graph.NodeID(s), graph.NodeID(d))
		if minFlow < 0 || flow < minFlow {
			minFlow = flow
		}
	}
	fmt.Printf("max-flow check over 50 random pairs: every pair has >= %d edge-disjoint paths (y = %d)\n\n",
		minFlow, params.Y)

	// Survival study across the four selectors.
	res, err := exp.FaultResilience(params, []int{0, 1, 2, 4, 8, 16, 32}, exp.Scale{
		K:              8,
		Seed:           7,
		PairSample:     800,
		PatternSamples: 5, // failure-set trials
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table("Fraction of pairs with at least one surviving path").String())
	fmt.Println(res.PathsTable("Mean surviving paths per pair (of k=8)").String())

	// The punchline pair: find a vanilla-KSP pair whose paths collapse
	// under a single failure.
	c := ksp.NewComputer(topo.G, ksp.Config{Alg: ksp.KSP, K: 8}, nil)
	var worstPair [2]graph.NodeID
	worst := 0
	for s := graph.NodeID(0); int(s) < params.N; s += 3 {
		for d := graph.NodeID(1); int(d) < params.N; d += 5 {
			if s == d {
				continue
			}
			share := maxShare(c.Paths(s, d))
			if share > worst {
				worst = share
				worstPair = [2]graph.NodeID{s, d}
			}
		}
	}
	fmt.Printf("worst sampled KSP pair %d->%d: one link failure can kill %d of its 8 paths at once\n",
		worstPair[0], worstPair[1], worst)
}

func maxShare(ps []graph.Path) int {
	counts := map[uint64]int{}
	best := 0
	for _, p := range ps {
		for i := 0; i+1 < len(p); i++ {
			k := graph.UndirectedEdgeKey(p[i], p[i+1])
			counts[k]++
			if counts[k] > best {
				best = counts[k]
			}
		}
	}
	return best
}
