// Stencil is a miniature version of the paper's CODES study (Tables V and
// VI): it generates synthetic DUMPI-style traces for the four stencil
// workloads, replays them over one Jellyfish with KSP(8), rKSP(8) and
// rEDKSP(8) paths under KSP-adaptive routing, and prints the communication
// times with rEDKSP's improvement — for both linear and random
// process-to-node mappings.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dumpi"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

func main() {
	params := jellyfish.Params{N: 32, X: 18, Y: 12} // 192 compute nodes
	// Scale the per-rank volume down from the paper's 15 MB so the example
	// finishes in seconds on a laptop; the relative comparison is the
	// point.
	const bytesPerRank = 1_500_000

	nets := map[ksp.Algorithm]*core.Network{}
	for _, alg := range []ksp.Algorithm{ksp.REDKSP, ksp.KSP, ksp.RKSP} {
		n, err := core.NewNetwork(params, core.Options{Selector: alg, K: 8, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		nets[alg] = n
	}
	nTerms := nets[ksp.KSP].Topology().NumTerminals()

	for _, mapping := range []string{"linear", "random"} {
		table := stats.NewTable(
			fmt.Sprintf("Communication time (ms), %s mapping, %v, %d bytes/rank",
				mapping, params, bytesPerRank),
			"Application", "rEDKSP(8)", "KSP(8)", "imp.", "rKSP(8)", "imp.")
		for _, kind := range traffic.StencilKinds {
			// Traces round-trip through the DUMPI-style serializer to show
			// the full pipeline the paper used.
			trace := dumpi.Generate(kind, nTerms, bytesPerRank)
			w := trace.Workload()

			var m traffic.Mapping
			if mapping == "linear" {
				m = traffic.LinearMapping(nTerms)
			} else {
				m = traffic.RandomMapping(nTerms, xrand.New(13))
			}
			flows := w.Apply(m)

			times := map[ksp.Algorithm]float64{}
			for alg, net := range nets {
				res, err := net.ReplayWorkload(flows, core.AppOptions{Seed: 21})
				if err != nil {
					log.Fatal(err)
				}
				times[alg] = res.Seconds
			}
			table.AddRow(kind.String(),
				fmt.Sprintf("%.3f", times[ksp.REDKSP]*1e3),
				fmt.Sprintf("%.3f", times[ksp.KSP]*1e3),
				fmt.Sprintf("%.1f%%", stats.Improvement(times[ksp.KSP], times[ksp.REDKSP])),
				fmt.Sprintf("%.3f", times[ksp.RKSP]*1e3),
				fmt.Sprintf("%.1f%%", stats.Improvement(times[ksp.RKSP], times[ksp.REDKSP])))
		}
		fmt.Println(table.String())
	}
}
