// Command jfserve is the long-lived route oracle: it keeps warm path
// databases resident and answers route/estimate queries over a
// newline-delimited JSON protocol (docs/SERVICE.md) on a Unix socket or
// TCP listener.
//
//	jfserve -listen unix:/tmp/jfserve.sock -path-cache /var/tmp/jfpaths \
//	        -preload small,medium
//
// preloads the paper's small and medium topologies (streaming from the
// path cache when jftopo -warm-paths populated it) and serves until
// SIGINT/SIGTERM, draining in-flight requests on shutdown. Without
// -preload, clients load topologies themselves via topo-load. Try it
// with nc:
//
//	printf '%s\n' '{"v":1,"op":"topo-load","params":{"topo":"small"}}' \
//	  | nc -U /tmp/jfserve.sock
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cliflags"
	"repro/internal/serve"
)

func main() {
	var (
		listen    = cliflags.Listen("unix:/tmp/jfserve.sock")
		preload   = flag.String("preload", "", "comma-separated topologies to load at startup (small, medium, large)")
		selector  = flag.String("selector", "rEDKSP", "path selector for -preload: KSP, rKSP, EDKSP or rEDKSP")
		k         = flag.Int("k", 8, "paths per switch pair for -preload")
		seed      = flag.Uint64("seed", 1, "experiment seed for -preload (same derivation as the experiment binaries' -seed)")
		mechanism = cliflags.Mechanism("ksp-adaptive")
		estimator = flag.String("estimator", "link-load", "load estimator: zero, hops or link-load")
		pairs     = flag.Int("pairs", 0, "pair sample size for -preload (0 = all ordered pairs)")
		workers   = flag.Int("workers", 0, "build worker goroutines (0 = GOMAXPROCS)")
		quiet     = flag.Bool("quiet", false, "suppress lifecycle logging")
		pathCache = cliflags.PathCache()
		limits    = cliflags.ServeLimitFlags()
	)
	flag.Parse()

	network, addr, err := serve.SplitListenSpec(*listen)
	if err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv := serve.NewServer(serve.Options{
		PathCache:      *pathCache,
		Workers:        *workers,
		Logf:           logf,
		Stripes:        *limits.Stripes,
		MaxConns:       *limits.MaxConns,
		MaxInFlight:    *limits.MaxInFlight,
		MaxSweeps:      *limits.MaxSweeps,
		ReadTimeout:    *limits.ReadTimeout,
		WriteTimeout:   *limits.WriteTimeout,
		HandlerTimeout: *limits.HandlerTimeout,
	})

	for _, topo := range splitList(*preload) {
		res, err := srv.LoadTopology(serve.TopoParams{
			Topo: topo, Selector: *selector, K: *k, Seed: *seed,
			Mechanism: *mechanism, Estimator: *estimator, PairSample: *pairs,
		})
		if err != nil {
			fatal(fmt.Errorf("preload %s: %w", topo, err))
		}
		fmt.Printf("loaded %s: key %s (%d pairs, k=%d)\n", topo, res.Key, res.Pairs, res.K)
	}

	if network == "unix" {
		// A stale socket from a crashed run would fail the bind.
		os.Remove(addr)
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("jfserve: listening on %s:%s (JSON protocol v%d, binary v%d, see docs/SERVICE.md)\n",
		network, addr, serve.ProtocolVersion, serve.BinaryVersion)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case s := <-sig:
		fmt.Printf("jfserve: %v, draining\n", s)
		srv.Stop()
		<-done
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	if network == "unix" {
		os.Remove(addr)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfserve:", err)
	os.Exit(1)
}
