// Command jfnet reproduces the paper's topology and path-property tables:
//
//	jfnet -table I                     # Table I   (topology metrics)
//	jfnet -table II                    # Table II  (average path length)
//	jfnet -table III                   # Table III (% disjoint pairs)
//	jfnet -table IV                    # Table IV  (max link sharing)
//	jfnet -table all                   # everything
//
// Useful flags: -topos small,medium -k 8 -topo-samples 1 -pairs 20000
// (pair sampling for the large topology) -csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/stats"
)

func main() {
	var (
		table       = flag.String("table", "all", "which table to produce: I, II, III, IV or all")
		topos       = flag.String("topos", "small,medium", "comma-separated topologies: small, medium, large")
		k           = flag.Int("k", 8, "paths per switch pair")
		topoSamples = flag.Int("topo-samples", 1, "RRG instances per topology")
		pairs       = flag.Int("pairs", 0, "sample this many switch pairs (0 = all ordered pairs)")
		seed        = flag.Uint64("seed", 1, "experiment seed")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	paramsList, err := parseTopos(*topos)
	if err != nil {
		fatal(err)
	}
	sc := exp.Scale{
		TopoSamples: *topoSamples,
		K:           *k,
		PairSample:  *pairs,
		Seed:        *seed,
		Workers:     *workers,
	}

	emit := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	want := strings.ToUpper(*table)
	if want == "I" || want == "ALL" {
		rows, err := exp.TableI(paramsList, sc)
		if err != nil {
			fatal(err)
		}
		emit(exp.RenderTableI(rows))
	}
	if want == "II" || want == "III" || want == "IV" || want == "ALL" {
		res, err := exp.PathProps(paramsList, ksp.Algorithms, sc)
		if err != nil {
			fatal(err)
		}
		if res0 := totalFallbacks(res); res0 > 0 {
			fmt.Fprintf(os.Stderr, "note: %d pairs needed the edge-disjoint fallback\n", res0)
		}
		switch want {
		case "II":
			emit(res.TableII())
		case "III":
			emit(res.TableIII())
		case "IV":
			emit(res.TableIV())
		default:
			emit(res.TableII())
			emit(res.TableIII())
			emit(res.TableIV())
		}
	}
}

func totalFallbacks(r *exp.PathPropsResult) int {
	total := 0
	for _, row := range r.Q {
		for _, q := range row {
			total += q.Fallbacks
		}
	}
	return total
}

func parseTopos(s string) ([]jellyfish.Params, error) {
	var out []jellyfish.Params
	for _, name := range strings.Split(s, ",") {
		p, err := jellyfish.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfnet:", err)
	os.Exit(1)
}
