// Command jfnet reproduces the paper's topology and path-property tables:
//
//	jfnet -table I                     # Table I   (topology metrics)
//	jfnet -table II                    # Table II  (average path length)
//	jfnet -table III                   # Table III (% disjoint pairs)
//	jfnet -table IV                    # Table IV  (max link sharing)
//	jfnet -table all                   # everything
//
// Useful flags: -topos small,medium -k 8 -topo-samples 1 -pairs 20000
// (pair sampling for the large topology) -csv.
//
// With -telemetry it instead runs one instrumented cycle-level simulation
// and exports per-link utilization, queue depths and the latency
// histogram (see docs/TELEMETRY.md for the file schema):
//
//	jfnet -telemetry out/ -selector rEDKSP -mechanism ksp-adaptive \
//	      -pattern shift -rate 0.7 -topos small
//
// Link failures can be injected into telemetry runs with -faults (a
// "random:<n>@<cycle>" spec or a schedule file, see docs/FAULTS.md) and
// -fault-policy. -fault-sweep runs the dynamic resilience experiment
// instead: delivered throughput versus failed-link count for every
// selector x mechanism combination:
//
//	jfnet -fault-sweep 0,1,2,4,8 -topos small -rate 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/stats"
)

func main() {
	var (
		table       = flag.String("table", "all", "which table to produce: I, II, III, IV or all")
		topos       = flag.String("topos", "small,medium", "comma-separated topologies: small, medium, large")
		k           = flag.Int("k", 8, "paths per switch pair")
		topoSamples = flag.Int("topo-samples", 1, "RRG instances per topology")
		pairs       = flag.Int("pairs", 0, "sample this many switch pairs (0 = all ordered pairs)")
		seed        = flag.Uint64("seed", 1, "experiment seed")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")

		tel       = cliflags.TelemetryFlags("one instrumented flit-level simulation")
		mechanism = cliflags.Mechanism("ksp-adaptive")
		pattern   = flag.String("pattern", "permutation", "traffic pattern for -telemetry: permutation, shift or uniform")
		rate      = flag.Float64("rate", 0.7, "offered load for -telemetry, in [0,1]")

		faultFlags  = cliflags.FaultFlags()
		faultSweep  = flag.String("fault-sweep", "", "comma-separated failed-link counts: run delivered-throughput vs. failures for all selectors and mechanisms")
		pathCache   = cliflags.PathCache()
		eventDriven = cliflags.EventDriven()
		prof        = cliflags.ProfileFlags()
	)
	flag.Parse()

	if *k < 1 {
		fatal(fmt.Errorf("-k must be at least 1, got %d", *k))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	if *faultSweep != "" {
		if err := runFaultSweep(*faultSweep, *topos, *pattern, *faultFlags.Policy, *rate, *k, *topoSamples, *seed, *workers, *pathCache, *eventDriven, *csv); err != nil {
			fatal(err)
		}
		return
	}
	if *tel.Dir != "" {
		if err := runTelemetry(*tel.Dir, *topos, *tel.Selector, *mechanism, *pattern, *faultFlags.Spec, *faultFlags.Policy, *rate, *k, *seed, *workers, *pathCache, *eventDriven); err != nil {
			fatal(err)
		}
		return
	}

	paramsList, err := parseTopos(*topos)
	if err != nil {
		fatal(err)
	}
	sc := exp.Scale{
		TopoSamples: *topoSamples,
		K:           *k,
		PairSample:  *pairs,
		Seed:        *seed,
		Workers:     *workers,
		PathCache:   *pathCache,
	}

	emit := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	want := strings.ToUpper(*table)
	if want == "I" || want == "ALL" {
		rows, err := exp.TableI(paramsList, sc)
		if err != nil {
			fatal(err)
		}
		emit(exp.RenderTableI(rows))
	}
	if want == "II" || want == "III" || want == "IV" || want == "ALL" {
		res, err := exp.PathProps(paramsList, ksp.Algorithms, sc)
		if err != nil {
			fatal(err)
		}
		if res0 := totalFallbacks(res); res0 > 0 {
			fmt.Fprintf(os.Stderr, "note: %d pairs needed the edge-disjoint fallback\n", res0)
		}
		switch want {
		case "II":
			emit(res.TableII())
		case "III":
			emit(res.TableIII())
		case "IV":
			emit(res.TableIV())
		default:
			emit(res.TableII())
			emit(res.TableIII())
			emit(res.TableIV())
		}
	}
}

// runTelemetry executes one instrumented cycle-level run and exports the
// telemetry files. The first topology of -topos is used.
func runTelemetry(dir, topos, selector, mechanism, pattern, faultSpec, faultPolicy string, rate float64, k int, seed uint64, workers int, pathCache string, eventDriven bool) error {
	params, err := jellyfish.ByName(strings.TrimSpace(strings.Split(topos, ",")[0]))
	if err != nil {
		return err
	}
	alg, err := ksp.ByName(selector)
	if err != nil {
		return err
	}
	mech, err := cliflags.ResolveMechanism(mechanism)
	if err != nil {
		return err
	}
	res, col, manifest, err := exp.FlitTelemetryRun(exp.FlitTelemetryConfig{
		Params:      params,
		Selector:    alg,
		Mechanism:   mech,
		Pattern:     pattern,
		Rate:        rate,
		FaultSpec:   faultSpec,
		FaultPolicy: faultPolicy,
	}, exp.Scale{K: k, Seed: seed, Workers: workers, PathCache: pathCache, EventDriven: eventDriven})
	if err != nil {
		return err
	}
	if err := col.Export(dir, manifest); err != nil {
		return err
	}
	sat := ""
	if res.Saturated {
		sat = " (saturated)"
	}
	fmt.Printf("%v %s/%s %s load %.2f: avg latency %.1f cycles, delivered rate %.3f%s\n",
		params, alg, mech.Name(), pattern, rate, res.AvgLatency, res.DeliveredRate, sat)
	if res.FaultEvents > 0 {
		fmt.Printf("faults: %d events, %d dropped, %d rerouted, %d path repairs\n",
			res.FaultEvents, res.Dropped, res.Rerouted, res.PathRepairs)
	}
	link, util := col.HottestLink("net")
	if link >= 0 {
		li := col.Links()[link]
		fmt.Printf("hottest link: %d->%d at %.1f%% utilization, peak queue %d\n",
			li.Src, li.Dst, util*100, col.QueuePeak.Get(link))
	}
	fmt.Println("wrote", dir)
	return nil
}

// runFaultSweep runs the dynamic fault-injection experiment on the first
// topology of -topos and prints one table per routing mechanism.
func runFaultSweep(counts, topos, pattern, faultPolicy string, rate float64, k, topoSamples int, seed uint64, workers int, pathCache string, eventDriven, csv bool) error {
	params, err := jellyfish.ByName(strings.TrimSpace(strings.Split(topos, ",")[0]))
	if err != nil {
		return err
	}
	policy, err := faults.PolicyByName(faultPolicy)
	if err != nil {
		return err
	}
	var failed []int
	for _, s := range strings.Split(counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			return fmt.Errorf("bad failed-link count %q", s)
		}
		failed = append(failed, n)
	}
	res, err := exp.FaultRun(exp.FaultRunConfig{
		Params:        params,
		Pattern:       pattern,
		FailedLinks:   failed,
		InjectionRate: rate,
		Policy:        policy,
	}, exp.Scale{TopoSamples: topoSamples, K: k, Seed: seed, Workers: workers, PathCache: pathCache, EventDriven: eventDriven})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Delivered throughput vs. failed links on %v (%s, load %.2f, policy %s)",
		params, pattern, rate, policy)
	for _, t := range res.Tables(title) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	return nil
}

func totalFallbacks(r *exp.PathPropsResult) int {
	total := 0
	for _, row := range r.Q {
		for _, q := range row {
			total += q.Fallbacks
		}
	}
	return total
}

func parseTopos(s string) ([]jellyfish.Params, error) {
	var out []jellyfish.Params
	for _, name := range strings.Split(s, ",") {
		p, err := jellyfish.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfnet:", err)
	os.Exit(1)
}
