// Command jftopo manages Jellyfish topology instances:
//
//	jftopo -topo small -save small.jf       # generate and archive an instance
//	jftopo -load small.jf -metrics          # distance metrics of an instance
//	jftopo -topo small -bisection 50        # bisection-width estimate
//	jftopo -topo small -disjoint 8,16       # verify the k-disjoint-paths claim
//
// With -path-cache and -warm-paths it pre-populates the on-disk path-DB
// cache the experiment binaries read via their own -path-cache flag:
//
//	jftopo -topo large -warm-paths all -k 8 -path-cache /var/tmp/jfpaths
//
// uses the same seed derivation as jfnet/jfflit/jfapp, so later runs with
// matching -seed, -k and -path-cache start from cache hits (docs/PATHS.md).
//
// Archived instances reload bit-identically, so experiment results can be
// tied to the exact topology they ran on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/xrand"
)

func main() {
	var (
		topoName  = flag.String("topo", "small", "topology: small, medium or large")
		custom    = flag.String("custom", "", "custom parameters as N,x,y (overrides -topo)")
		seed      = flag.Uint64("seed", 1, "construction seed")
		save      = flag.String("save", "", "write the instance to this file")
		load      = flag.String("load", "", "read the instance from this file instead of generating")
		metrics   = flag.Bool("metrics", false, "print distance metrics (Table I row)")
		bisection = flag.Int("bisection", 0, "estimate bisection width with this many trials")
		disjoint  = flag.String("disjoint", "", "verify k edge-disjoint paths exist, comma-separated ks")
		pairs     = flag.Int("pairs", 2000, "pair sample size for -disjoint (0 = all pairs)")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")

		warmPaths   = flag.String("warm-paths", "", "pre-build the path cache for these selectors (comma-separated, or all)")
		warmK       = flag.Int("k", 8, "paths per switch pair for -warm-paths")
		topoSamples = flag.Int("topo-samples", 1, "RRG instances to warm for -warm-paths")
		pathCache   = cliflags.PathCache()
		stats       = cliflags.Stats()
	)
	flag.Parse()

	if *pairs < 0 {
		fatal(fmt.Errorf("-pairs must be non-negative, got %d", *pairs))
	}
	var topo *jellyfish.Topology
	var err error
	buildStart := time.Now()
	switch {
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			fatal(ferr)
		}
		topo, err = jellyfish.Read(f)
		f.Close()
	default:
		params, perr := resolveParams(*topoName, *custom)
		if perr != nil {
			fatal(perr)
		}
		topo, err = jellyfish.New(params, xrand.New(*seed))
	}
	buildTime := time.Since(buildStart)
	if err != nil {
		fatal(err)
	}
	p := topo.Params()
	fmt.Printf("%v: %d switches, %d compute nodes, %d links\n",
		p, topo.N, topo.NumTerminals(), topo.G.NumEdges())

	if *stats {
		cliflags.PrintGraphStats(os.Stdout, topo.G, buildTime)
	}

	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			fatal(ferr)
		}
		if err := topo.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("saved to", *save)
	}
	if *metrics {
		m := topo.Metrics(*workers)
		fmt.Printf("avg shortest path %.2f, diameter %d, connected %v\n",
			m.AvgShortestPath, m.Diameter, m.Connected)
	}
	if *bisection > 0 {
		w := graph.BisectionEstimate(topo.G, *bisection, *seed, *workers)
		fmt.Printf("bisection width <= %d (%d trials); full bisection bandwidth ratio %.2f\n",
			w, *bisection, float64(w)/float64(topo.G.NumEdges()))
	}
	if *warmPaths != "" {
		if *load != "" {
			fatal(fmt.Errorf("-warm-paths derives topologies from -topo/-custom and -seed; it cannot warm a -load archive"))
		}
		if *pathCache == "" {
			fatal(fmt.Errorf("-warm-paths needs -path-cache"))
		}
		algs, aerr := parseSelectors(*warmPaths)
		if aerr != nil {
			fatal(aerr)
		}
		err := exp.WarmPathCache([]jellyfish.Params{p}, algs, exp.Scale{
			TopoSamples: *topoSamples, K: *warmK, Seed: *seed,
			Workers: *workers, PathCache: *pathCache,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("warmed %s for %d selector(s) x %d sample(s) in %s\n",
			p, len(algs), *topoSamples, *pathCache)
	}
	if *disjoint != "" {
		ks, kerr := parseInts(*disjoint)
		if kerr != nil {
			fatal(kerr)
		}
		res, derr := exp.DisjointExistence(p, ks, exp.Scale{
			PairSample: *pairs, Seed: *seed, Workers: *workers, K: 8,
		})
		if derr != nil {
			fatal(derr)
		}
		fmt.Println(res.Table(fmt.Sprintf(
			"Edge-disjoint path existence over %d pairs", res.Pairs)).String())
	}
}

// parseSelectors resolves a comma-separated selector list ("all" = every
// selector) through ksp.ByName.
func parseSelectors(spec string) ([]ksp.Algorithm, error) {
	if strings.TrimSpace(spec) == "all" {
		return ksp.Algorithms[:], nil
	}
	var algs []ksp.Algorithm
	for _, name := range strings.Split(spec, ",") {
		alg, err := ksp.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		algs = append(algs, alg)
	}
	return algs, nil
}

func resolveParams(name, custom string) (jellyfish.Params, error) {
	if custom != "" {
		vals, err := parseInts(custom)
		if err != nil || len(vals) != 3 {
			return jellyfish.Params{}, fmt.Errorf("bad -custom %q (want N,x,y)", custom)
		}
		p := jellyfish.Params{N: vals[0], X: vals[1], Y: vals[2]}
		return p, p.Validate()
	}
	return jellyfish.ByName(name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jftopo:", err)
	os.Exit(1)
}
