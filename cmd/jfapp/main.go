// Command jfapp reproduces the application-simulation tables:
//
//	jfapp -mapping linear   # Table V
//	jfapp -mapping random   # Table VI
//
// It replays the four Stencil workloads (2DNN, 2DNNdiag, 3DNN, 3DNNdiag;
// 15 MB per rank by default) over the selected topology and reports the
// communication time of rEDKSP(k) alongside KSP(k) and rKSP(k) with
// improvement percentages, exactly as the paper lays the tables out.
//
// jfapp can also emit the synthetic DUMPI-style traces it simulates:
//
//	jfapp -dump-traces dir/ -topo medium
//
// With -telemetry it runs one instrumented replay of a single stencil and
// exports per-link counters, path-choice counters and injection-stall
// counters (see docs/TELEMETRY.md):
//
//	jfapp -telemetry out/ -selector rEDKSP -stencils 2DNNdiag -topo small
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/dumpi"
	"repro/internal/exp"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/traffic"
)

func main() {
	var (
		topoName     = flag.String("topo", "small", "topology: small, medium or large (the paper uses medium)")
		mapping      = flag.String("mapping", "linear", "process-to-node mapping: linear or random")
		mechanism    = cliflags.Mechanism("ksp-adaptive")
		stencils     = flag.String("stencils", "", "comma-separated stencil subset (default all four)")
		bytesPerRank = flag.Int64("bytes-per-rank", traffic.DefaultTotalBytes, "bytes each rank sends")
		k            = flag.Int("k", 8, "paths per switch pair")
		topoSamples  = flag.Int("topo-samples", 1, "RRG instances")
		mapSamples   = flag.Int("map-samples", 3, "random-mapping instances per RRG instance")
		seed         = flag.Uint64("seed", 1, "experiment seed")
		workers      = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		csv          = flag.Bool("csv", false, "emit CSV instead of aligned text")
		dumpTraces   = flag.String("dump-traces", "", "write the synthetic DUMPI traces to this directory and exit")
		tel          = cliflags.TelemetryFlags("one instrumented replay (first of -stencils, default 2DNN)")
		faultFlags   = cliflags.FaultFlags()
		pathCache    = cliflags.PathCache()
		prof         = cliflags.ProfileFlags()
	)
	flag.Parse()

	if *k < 1 {
		fatal(fmt.Errorf("-k must be at least 1, got %d", *k))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()
	if *bytesPerRank <= 0 {
		fatal(fmt.Errorf("-bytes-per-rank must be positive, got %d", *bytesPerRank))
	}
	params, err := jellyfish.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	nTerms := params.N * (params.X - params.Y)

	if *dumpTraces != "" {
		if err := os.MkdirAll(*dumpTraces, 0o755); err != nil {
			fatal(err)
		}
		for _, kind := range traffic.StencilKinds {
			tr := dumpi.Generate(kind, nTerms, *bytesPerRank)
			path := filepath.Join(*dumpTraces, fmt.Sprintf("%s-%d.trace", kind, nTerms))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tr.Write(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
		return
	}

	mech, err := cliflags.ResolveMechanism(*mechanism)
	if err != nil {
		fatal(err)
	}
	cfg := exp.AppConfig{
		Params:       params,
		Mapping:      *mapping,
		BytesPerRank: *bytesPerRank,
		Mechanism:    mech,
		FaultSpec:    *faultFlags.Spec,
		FaultPolicy:  *faultFlags.Policy,
	}
	if *stencils != "" {
		for _, name := range strings.Split(*stencils, ",") {
			kind, kerr := traffic.StencilByName(strings.TrimSpace(name))
			if kerr != nil {
				fatal(kerr)
			}
			cfg.Stencils = append(cfg.Stencils, kind)
		}
	}

	if *tel.Dir != "" {
		alg, err := ksp.ByName(*tel.Selector)
		if err != nil {
			fatal(err)
		}
		kind := traffic.Stencil2DNN
		if len(cfg.Stencils) > 0 {
			kind = cfg.Stencils[0]
		}
		res, col, manifest, err := exp.AppTelemetryRun(exp.AppTelemetryConfig{
			Params:       params,
			Selector:     alg,
			Mechanism:    mech,
			Stencil:      kind,
			Mapping:      *mapping,
			BytesPerRank: *bytesPerRank,
			FaultSpec:    *faultFlags.Spec,
			FaultPolicy:  *faultFlags.Policy,
		}, exp.Scale{K: *k, Seed: *seed, Workers: *workers, PathCache: *pathCache})
		if err != nil {
			fatal(err)
		}
		if err := col.Export(*tel.Dir, manifest); err != nil {
			fatal(err)
		}
		fmt.Printf("%v %s/%s %s mapping %s: %.2f ms, %d packets\n",
			params, alg, mech.Name(), *mapping, kind, res.Seconds*1e3, res.Packets)
		if res.FaultEvents > 0 {
			fmt.Printf("faults: %d events, %d dropped, %d rerouted, %d path repairs\n",
				res.FaultEvents, res.Dropped, res.Rerouted, res.PathRepairs)
		}
		fmt.Println("wrote", *tel.Dir)
		return
	}

	res, err := exp.AppCommTimes(cfg, exp.Scale{
		TopoSamples:    *topoSamples,
		PatternSamples: *mapSamples,
		K:              *k,
		Seed:           *seed,
		Workers:        *workers,
		PathCache:      *pathCache,
	})
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Communication time, %s mapping on %v (%s, %d bytes/rank)",
		*mapping, params, mech.Name(), *bytesPerRank)
	t := res.Table(title)
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfapp:", err)
	os.Exit(1)
}
