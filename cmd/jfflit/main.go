// Command jfflit reproduces the cycle-level simulation results:
//
//	jfflit -experiment saturation -pattern permutation -topo small  # Figure 7
//	jfflit -experiment saturation -pattern permutation -topo medium # Figure 8
//	jfflit -experiment saturation -pattern shift -topo small        # Figure 9
//	jfflit -experiment saturation -pattern shift -topo medium       # Figure 10
//	jfflit -experiment latency -pattern uniform -topo medium        # Figure 11
//	jfflit -experiment latency -pattern permutation -topo medium    # Figure 12
//	jfflit -experiment latency -pattern shift -topo medium          # Figure 13
//
// Saturation runs sweep offered load per (selector, mechanism) pair and
// report the last load before saturation; latency runs emit latency-vs-load
// series per selector under one mechanism (default KSP-adaptive, matching
// the paper's Section IV-D text; pass -mechanism random to match the
// Figure 11 caption instead).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/exp"
	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/stats"
)

func main() {
	var (
		experiment     = flag.String("experiment", "saturation", "saturation or latency")
		topoName       = flag.String("topo", "small", "topology: small, medium or large")
		pattern        = flag.String("pattern", "permutation", "permutation, shift or uniform")
		mechanism      = cliflags.Mechanism("ksp-adaptive")
		k              = flag.Int("k", 8, "paths per switch pair")
		topoSamples    = flag.Int("topo-samples", 1, "RRG instances")
		patternSamples = flag.Int("pattern-samples", 3, "traffic instances per RRG instance")
		rateStart      = flag.Float64("rate-start", 0.05, "lowest offered load")
		rateStop       = flag.Float64("rate-stop", 1.0, "highest offered load")
		rateStep       = flag.Float64("rate-step", 0.05, "offered load step")
		seed           = flag.Uint64("seed", 1, "experiment seed")
		workers        = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		csv            = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart          = flag.Bool("chart", false, "render saturation results as a text bar chart")
		pathCache      = cliflags.PathCache()
		eventDriven    = cliflags.EventDriven()
		prof           = cliflags.ProfileFlags()
	)
	flag.Parse()

	if *k < 1 {
		fatal(fmt.Errorf("-k must be at least 1, got %d", *k))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()
	if *rateStep <= 0 {
		fatal(fmt.Errorf("-rate-step must be positive, got %g", *rateStep))
	}
	if *rateStart <= 0 || *rateStart > *rateStop || *rateStop > 1 {
		fatal(fmt.Errorf("offered-load range (%g, %g) must satisfy 0 < start <= stop <= 1", *rateStart, *rateStop))
	}
	params, err := jellyfish.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	cfg := exp.FlitConfig{
		Params:  params,
		Pattern: *pattern,
		Rates:   flitsim.Rates(*rateStart, *rateStop, *rateStep),
	}
	sc := exp.Scale{
		TopoSamples:    *topoSamples,
		PatternSamples: *patternSamples,
		K:              *k,
		Seed:           *seed,
		Workers:        *workers,
		PathCache:      *pathCache,
		EventDriven:    *eventDriven,
	}

	var t *stats.Table
	switch *experiment {
	case "saturation":
		res, err := exp.FlitSaturation(cfg, sc)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("Saturation throughput, %s traffic on %v (k=%d)",
			*pattern, params, *k)
		if *chart {
			fmt.Println(stats.FromTableData(title, res.Selectors, res.Mechanisms, res.Mean).String())
			return
		}
		t = res.Table(title)
	case "latency":
		mech, err := cliflags.ResolveMechanism(*mechanism)
		if err != nil {
			fatal(err)
		}
		res, err := exp.FlitLatencyCurve(cfg, mech, sc)
		if err != nil {
			fatal(err)
		}
		t = res.Table(fmt.Sprintf("Average packet latency vs load, %s traffic on %v, %s (k=%d)",
			*pattern, params, mech.Name(), *k))
	default:
		fatal(fmt.Errorf("unknown experiment %q (want saturation or latency)", *experiment))
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfflit:", err)
	os.Exit(1)
}
