// Command jfmodel reproduces the throughput-model figures (Figures 4-6):
// the average per-node normalized throughput of SP, KSP, rKSP, EDKSP and
// rEDKSP under permutation, shift, Random(X) and all-to-all traffic.
//
//	jfmodel -topo small                      # Figure 4
//	jfmodel -topo medium                     # Figure 5
//	jfmodel -topo large -pattern permutation # one Figure 6 group
//
// The paper averages 10 RRG instances x 50 pattern instances; that is
// -topo-samples 10 -pattern-samples 50 (hours of compute on the large
// topology — defaults are smaller).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/jellyfish"
	"repro/internal/stats"
)

func main() {
	var (
		topoName       = flag.String("topo", "small", "topology: small, medium or large")
		pattern        = flag.String("pattern", "all", "pattern: permutation, shift, random(X), all-to-all or all")
		randomX        = flag.Int("random-x", 50, "X of the Random(X) pattern")
		k              = flag.Int("k", 8, "paths per switch pair")
		topoSamples    = flag.Int("topo-samples", 2, "RRG instances")
		patternSamples = flag.Int("pattern-samples", 5, "traffic instances per RRG instance")
		seed           = flag.Uint64("seed", 1, "experiment seed")
		workers        = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		csv            = flag.Bool("csv", false, "emit CSV instead of aligned text")
		noSP           = flag.Bool("no-sp", false, "omit the single-path baseline")
		method         = flag.String("method", "model", "throughput methodology: model (Eq.1) or validate (Eq.1 vs max-min fairness)")
		chart          = flag.Bool("chart", false, "render a text bar chart instead of a table")
	)
	flag.Parse()

	if *k < 1 {
		fatal(fmt.Errorf("-k must be at least 1, got %d", *k))
	}
	if *randomX < 1 {
		fatal(fmt.Errorf("-random-x must be at least 1, got %d", *randomX))
	}
	params, err := jellyfish.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	cfg := exp.ModelConfig{
		Params:    params,
		RandomX:   *randomX,
		IncludeSP: !*noSP,
	}
	if *pattern != "all" {
		cfg.Patterns = strings.Split(*pattern, ",")
	}
	sc := exp.Scale{
		TopoSamples:    *topoSamples,
		PatternSamples: *patternSamples,
		K:              *k,
		Seed:           *seed,
		Workers:        *workers,
	}
	if *method == "validate" {
		res, err := exp.ValidateModel(params, sc)
		if err != nil {
			fatal(err)
		}
		t := res.Table(fmt.Sprintf("Model vs max-min fairness on %v (k=%d)", params, *k))
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
		return
	}
	res, err := exp.ModelThroughput(cfg, sc)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Model throughput on %v (k=%d, %d topo x %d pattern samples)",
		params, *k, *topoSamples, *patternSamples)
	if *chart {
		fmt.Println(stats.FromTableData(title, res.Patterns, res.Selectors, res.Mean).String())
		return
	}
	t := res.Table(title)
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfmodel:", err)
	os.Exit(1)
}
