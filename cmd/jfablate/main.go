// Command jfablate runs the ablation studies DESIGN.md calls out, on top
// of the paper's experiments:
//
//	jfablate -study k           # model throughput vs k per selector
//	jfablate -study ugal-bias   # saturation vs UGAL MIN-bias
//	jfablate -study imbalance   # link-load statistics per selector
//	jfablate -study faults      # path survival under random link failures
//	jfablate -study scaling     # path structure + throughput vs system size
//	jfablate -study validate    # Eq.1 model vs exact max-min fairness
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/exp"
	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/stats"
)

func main() {
	var (
		study          = flag.String("study", "k", "ablation study: k, ugal-bias, imbalance, faults, scaling or validate")
		topoName       = flag.String("topo", "small", "topology: small, medium or large")
		ks             = flag.String("ks", "1,2,4,8,16", "comma-separated k values for -study k")
		biases         = flag.String("biases", "0,1,4,16,64", "comma-separated MIN biases for -study ugal-bias")
		failures       = flag.String("failures", "0,1,2,4,8,16", "comma-separated failed-link counts for -study faults")
		pairs          = flag.Int("pairs", 2000, "pair sample for -study faults (0 = all)")
		k              = flag.Int("k", 8, "paths per pair (non-k studies)")
		topoSamples    = flag.Int("topo-samples", 1, "RRG instances")
		patternSamples = flag.Int("pattern-samples", 3, "traffic instances")
		seed           = flag.Uint64("seed", 1, "experiment seed")
		workers        = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		csv            = flag.Bool("csv", false, "emit CSV instead of aligned text")
		eventDriven    = cliflags.EventDriven()
	)
	flag.Parse()

	if *k < 1 {
		fatal(fmt.Errorf("-k must be at least 1, got %d", *k))
	}
	if *pairs < 0 {
		fatal(fmt.Errorf("-pairs must be non-negative, got %d", *pairs))
	}
	params, err := jellyfish.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	sc := exp.Scale{
		TopoSamples:    *topoSamples,
		PatternSamples: *patternSamples,
		K:              *k,
		Seed:           *seed,
		Workers:        *workers,
		EventDriven:    *eventDriven,
	}

	var t *stats.Table
	switch *study {
	case "k":
		kvals, err := parseInts(*ks)
		if err != nil {
			fatal(err)
		}
		res, err := exp.AblationKSweep(params, kvals, sc)
		if err != nil {
			fatal(err)
		}
		t = res.Table(fmt.Sprintf("Model throughput vs k, shift traffic on %v", params))
	case "ugal-bias":
		bvals, err := parseInts(*biases)
		if err != nil {
			fatal(err)
		}
		res, err := exp.AblationUGALBias(params, bvals, flitsim.Rates(0.05, 1.0, 0.05), sc)
		if err != nil {
			fatal(err)
		}
		t = res.Table(fmt.Sprintf("Saturation throughput vs UGAL MIN-bias on %v (rEDKSP(%d))", params, *k))
	case "imbalance":
		res, err := exp.LoadImbalance(params, sc)
		if err != nil {
			fatal(err)
		}
		t = res.Table(fmt.Sprintf("Link-load imbalance, %s traffic on %v (k=%d)", res.Pattern, params, *k))
	case "faults":
		fvals, err := parseInts(*failures)
		if err != nil {
			fatal(err)
		}
		fsc := sc
		fsc.PairSample = *pairs
		res, err := exp.FaultResilience(params, fvals, fsc)
		if err != nil {
			fatal(err)
		}
		t = res.Table(fmt.Sprintf("Fraction of pairs with a surviving path, %v (k=%d, %d trials)",
			params, *k, res.Trials))
		fmt.Println(res.PathsTable(fmt.Sprintf("Mean surviving paths per pair, %v", params)).String())
	case "validate":
		res, err := exp.ValidateModel(params, sc)
		if err != nil {
			fatal(err)
		}
		t = res.Table(fmt.Sprintf("Throughput model vs max-min fairness, shift traffic on %v (k=%d)", params, *k))
	case "scaling":
		rows, err := exp.ScalingStudy(exp.DefaultScalingSizes, sc)
		if err != nil {
			fatal(err)
		}
		t = exp.RenderScaling(rows)
	default:
		fatal(fmt.Errorf("unknown study %q", *study))
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jfablate:", err)
	os.Exit(1)
}
