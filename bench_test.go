// Package repro's root benchmark suite regenerates every table and figure
// of the paper at benchmark scale: one Benchmark function per artifact,
// each reporting the headline metric(s) as custom testing.B metrics in
// addition to wall time. The paper-scale runs use the cmd/ binaries (see
// EXPERIMENTS.md); these benches use reduced topologies and sampling so
// `go test -bench=. -benchmem` completes on a laptop while still
// exercising the full experiment pipeline end to end.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/xrand"
)

// Benchmark topologies: scaled-down versions of the paper's small/medium
// systems that preserve the ~2:1 network-port to terminal ratio.
var (
	benchSmall  = jellyfish.Params{N: 24, X: 18, Y: 12} // 144 nodes
	benchMedium = jellyfish.Params{N: 60, X: 12, Y: 9}  // 180 nodes, higher hop counts
)

func benchScale(k int) exp.Scale {
	return exp.Scale{TopoSamples: 1, PatternSamples: 2, K: k, Seed: 1}
}

// --- Table I -----------------------------------------------------------------

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableI([]jellyfish.Params{benchSmall, benchMedium}, benchScale(8))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].AvgShortest, "avg-sp-small")
			b.ReportMetric(rows[1].AvgShortest, "avg-sp-medium")
		}
	}
}

// --- Tables II-IV -------------------------------------------------------------

func benchPathProps(b *testing.B, metric func(q [][]float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := exp.PathProps([]jellyfish.Params{benchSmall}, ksp.Algorithms, benchScale(8))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && metric != nil {
			vals := make([][]float64, 1)
			vals[0] = []float64{
				res.Q[0][0].AvgLen, res.Q[0][0].DisjointFraction, float64(res.Q[0][0].MaxShare),
				res.Q[0][3].AvgLen, res.Q[0][3].DisjointFraction, float64(res.Q[0][3].MaxShare),
			}
			metric(vals)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	benchPathProps(b, func(v [][]float64) {
		b.ReportMetric(v[0][0], "avglen-KSP")
		b.ReportMetric(v[0][3], "avglen-rEDKSP")
	})
}

func BenchmarkTableIII(b *testing.B) {
	benchPathProps(b, func(v [][]float64) {
		b.ReportMetric(100*v[0][1], "disjoint%-KSP")
		b.ReportMetric(100*v[0][4], "disjoint%-rEDKSP")
	})
}

func BenchmarkTableIV(b *testing.B) {
	benchPathProps(b, func(v [][]float64) {
		b.ReportMetric(v[0][2], "maxshare-KSP")
		b.ReportMetric(v[0][5], "maxshare-rEDKSP")
	})
}

// --- Figures 4-6 (throughput model) --------------------------------------------

func benchModelFigure(b *testing.B, params jellyfish.Params) {
	b.Helper()
	cfg := exp.ModelConfig{Params: params, RandomX: 10, IncludeSP: true}
	for i := 0; i < b.N; i++ {
		res, err := exp.ModelThroughput(cfg, benchScale(8))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Pattern 0 = permutation; selector columns: SP, KSP, ..., rEDKSP.
			b.ReportMetric(res.Mean[0][1], "perm-KSP")
			b.ReportMetric(res.Mean[0][4], "perm-rEDKSP")
		}
	}
}

func BenchmarkFigure4(b *testing.B) { benchModelFigure(b, benchSmall) }
func BenchmarkFigure5(b *testing.B) { benchModelFigure(b, benchMedium) }

// BenchmarkFigure6 uses pair-level structure of the large topology scaled
// down further (the paper's RRG(2880,48,38) takes hours even on a
// cluster); the shape — rEDKSP above KSP — is what the bench verifies.
func BenchmarkFigure6(b *testing.B) {
	benchModelFigure(b, jellyfish.Params{N: 96, X: 12, Y: 8})
}

// --- Figures 7-10 (saturation throughput) ----------------------------------------

func benchSaturation(b *testing.B, params jellyfish.Params, pattern string) {
	b.Helper()
	cfg := exp.FlitConfig{
		Params:  params,
		Pattern: pattern,
		Rates:   flitsim.Rates(0.2, 1.0, 0.2),
	}
	sc := exp.Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 1}
	for i := 0; i < b.N; i++ {
		res, err := exp.FlitSaturation(cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// KSP-adaptive is mechanism column 4; selectors KSP row 0,
			// rEDKSP row 3.
			b.ReportMetric(res.Mean[0][4], "KSP/adaptive")
			b.ReportMetric(res.Mean[3][4], "rEDKSP/adaptive")
		}
	}
}

func BenchmarkFigure7(b *testing.B)  { benchSaturation(b, benchSmall, "permutation") }
func BenchmarkFigure8(b *testing.B)  { benchSaturation(b, benchMedium, "permutation") }
func BenchmarkFigure9(b *testing.B)  { benchSaturation(b, benchSmall, "shift") }
func BenchmarkFigure10(b *testing.B) { benchSaturation(b, benchMedium, "shift") }

// --- Figures 11-13 (latency vs load) ---------------------------------------------

func benchLatencyCurve(b *testing.B, pattern string) {
	b.Helper()
	cfg := exp.FlitConfig{
		Params:  benchSmall,
		Pattern: pattern,
		Rates:   []float64{0.2, 0.5, 0.8},
	}
	sc := exp.Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 1}
	for i := 0; i < b.N; i++ {
		res, err := exp.FlitLatencyCurve(cfg, routing.KSPAdaptive(), sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Latency[0][0], "KSP-lowload-lat")
			b.ReportMetric(res.Latency[3][0], "rEDKSP-lowload-lat")
		}
	}
}

func BenchmarkFigure11(b *testing.B) { benchLatencyCurve(b, "uniform") }
func BenchmarkFigure12(b *testing.B) { benchLatencyCurve(b, "permutation") }
func BenchmarkFigure13(b *testing.B) { benchLatencyCurve(b, "shift") }

// --- Tables V-VI (application simulation) -------------------------------------------

func benchAppTable(b *testing.B, mapping string) {
	b.Helper()
	cfg := exp.AppConfig{
		Params:       benchSmall,
		Mapping:      mapping,
		BytesPerRank: 200 * 1500,
		Mechanism:    routing.KSPAdaptive(),
	}
	sc := exp.Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 1}
	for i := 0; i < b.N; i++ {
		res, err := exp.AppCommTimes(cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Row 0 = 2DNN; columns rEDKSP, KSP, rKSP.
			b.ReportMetric(res.Seconds[0][0]*1e3, "2DNN-rEDKSP-ms")
			b.ReportMetric(res.Seconds[0][1]*1e3, "2DNN-KSP-ms")
		}
	}
}

func BenchmarkTableV(b *testing.B)  { benchAppTable(b, "linear") }
func BenchmarkTableVI(b *testing.B) { benchAppTable(b, "random") }

// --- Ablations ----------------------------------------------------------------------
//
// DESIGN.md calls out two design decisions worth isolating: the tie-break
// policy inside the shortest-path search (the whole difference between KSP
// and rKSP), and UGAL's latency-estimate form.

// BenchmarkAblationTieBreak measures the path-computation cost of
// deterministic versus randomized tie-breaking (the rKSP heuristic is not
// free: it shuffles frontiers and reservoir-samples parents).
func BenchmarkAblationTieBreak(b *testing.B) {
	topo := jellyfish.MustNew(benchSmall, xrand.New(1))
	for _, alg := range []ksp.Algorithm{ksp.KSP, ksp.RKSP, ksp.EDKSP, ksp.REDKSP} {
		b.Run(alg.String(), func(b *testing.B) {
			c := ksp.NewComputer(topo.G, ksp.Config{Alg: alg, K: 8}, xrand.New(2))
			n := int32(topo.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := int32(i) % n
				dst := (src + 1 + int32(i)%(n-1)) % n
				if got := c.Paths(src, dst); len(got) == 0 {
					b.Fatal("no paths")
				}
			}
		})
	}
}

// BenchmarkAblationUGALBias compares KSP-UGAL (minimal-biased candidate
// set) with KSP-adaptive (two symmetric random candidates) at a fixed load
// near saturation, reporting accepted throughput.
func BenchmarkAblationUGALBias(b *testing.B) {
	sc := exp.Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 1}
	cfg := exp.FlitConfig{Params: benchSmall, Pattern: "shift", Rates: []float64{0.6}}
	for i := 0; i < b.N; i++ {
		for _, mech := range []routing.Mechanism{routing.KSPUGAL(), routing.KSPAdaptive()} {
			res, err := exp.FlitLatencyCurve(cfg, mech, sc)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.Latency[3][0], fmt.Sprintf("rEDKSP-%s-lat", mech.Name()))
			}
		}
	}
}
