# Pre-PR gate (documented in docs/ARCHITECTURE.md): formatting, vet,
# race-detector runs of the concurrency-heavy packages, full build.
.PHONY: check build test bench fmt

check: fmt
	go vet ./...
	go test -race ./internal/telemetry/... ./internal/par/...
	go build ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...
