# Pre-PR gate (documented in docs/ARCHITECTURE.md): formatting, vet,
# optional linters, race-detector runs of the concurrency-heavy packages
# and the fault-injection paths, full build. gofmt and go vet always run;
# staticcheck/govulncheck are optional-when-installed (see lint).
#
# check does not run benchmarks (too noisy for a gate). When a change
# touches internal/flitsim's step loop or internal/routing's Choose path,
# run `make bench-flit` / `make bench-routing` and compare the fresh
# "current" numbers against the committed BENCH_*.json baselines the way
# benchstat compares runs — several repetitions, interleaved, on an idle
# machine — before trusting a delta (docs/PERFORMANCE.md).
.PHONY: check build test bench bench-graph bench-routing bench-flit bench-paths bench-serve fmt lint race-graph race-faults race-paths race-serve race-serve-v2 race-chaos race-flit-events flit-event-smoke fuzz-paths fuzz-serve serve-smoke chaos-smoke docs-check

check: fmt lint
	go vet ./...
	go test -race ./internal/telemetry/... ./internal/par/...
	$(MAKE) race-graph
	$(MAKE) race-faults
	$(MAKE) race-paths
	$(MAKE) race-serve
	$(MAKE) race-serve-v2
	$(MAKE) race-chaos
	$(MAKE) race-flit-events
	$(MAKE) flit-event-smoke
	$(MAKE) fuzz-paths
	$(MAKE) serve-smoke
	$(MAKE) docs-check
	go build ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck and govulncheck run only when installed — the gate must
# stay usable on minimal containers without network access.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; fi

# Every layer shares one immutable packed graph across worker pools; build
# RRG(2000,24,19) — past the old dense-link-table gate — and run a parallel
# all-pairs BFS plus concurrent link-table readers over it under the race
# detector. The CSR arrays must be strictly read-only once frozen.
race-graph:
	go test -race -run 'ParallelAllPairsBFS|FingerprintGolden' ./internal/jellyfish ./internal/graph

# Fault injection touches shared simulator state from par.For workers;
# run every fault test under the race detector as a smoke gate.
race-faults:
	go test -race -run Fault ./...

# The path DB mixes lock-free packed-store reads with mutex-guarded lazy
# fills; run its concurrency regression tests under the race detector.
race-paths:
	go test -race -run 'Race|Concurrent' ./internal/paths

# jfserve serves one goroutine per connection over shared DBs; hammer
# routes-batch from concurrent clients and exercise shutdown draining
# under the race detector.
race-serve:
	go test -race -run 'Concurrent|Shutdown' ./internal/serve

# The binary v2 protocol surface under the race detector: the codec and
# negotiation tests, the JSON/binary differential suite, streaming
# sweeps, the striped-routing-state equivalence test, and the binary
# chaos swarm. This is the gate pinning that sharded adaptive choice
# stays race-free and both codecs answer identically.
race-serve-v2:
	go test -race -count=1 -run 'Binary|Differential|Sweep|Stripe' ./internal/serve ./internal/serve/chaos

# The chaos swarm — rogue clients (slow loris, mid-frame disconnects,
# garbage floods, deadline overruns, injected panics) and retrying
# well-behaved clients against one limited daemon — under the race
# detector: the daemon must stay live and its health counters must
# reconcile with the injected fault schedule.
race-chaos:
	go test -race -count=1 -run Chaos ./internal/serve/chaos

# The event-driven advance jumps the clock over idle spans while the
# fault schedule mutates link state; run the low-load event-driven fault
# test under the race detector so clock jumps and fault events stay
# correctly ordered.
race-flit-events:
	go test -race -count=1 -run 'EventDrivenFault|EventCycle|StepContract' ./internal/flitsim

# Golden-equivalence smoke: event-driven vs cycle-stepped at the three
# golden loads (0.05, 0.30, 0.90) must agree on saturation verdicts and
# delivered throughput, and the exact-equivalence run (rate-1 SP, where
# both modes consume zero injection randomness) must be bit-identical.
flit-event-smoke:
	go test -count=1 -run 'EventCycleEquivalence|ResultGolden' ./internal/flitsim

# End-to-end daemon smoke: in-process server on a real Unix socket,
# every protocol op through the Go client, one raw error frame, clean
# drain on Stop (exits non-zero on any mismatch).
serve-smoke:
	go run ./internal/serve/smoke

# The same chaos swarm without the race detector: the quick liveness
# gate to run after touching the server's limits or shedding paths.
chaos-smoke:
	go test -count=1 -run Chaos -v ./internal/serve/chaos

# Relative links in README.md and docs/*.md must point at real files.
docs-check:
	go run ./internal/docscheck

# Short fuzz smoke of both path deserializers (text archive and binary
# cache): 10s each on top of the committed corpus under
# internal/paths/testdata/fuzz. Longer sessions: raise -fuzztime.
fuzz-paths:
	go test -fuzz=FuzzPathsRead -fuzztime=10s -run '^$$' ./internal/paths
	go test -fuzz=FuzzCacheRead -fuzztime=10s -run '^$$' ./internal/paths

# Short fuzz smoke of the binary v2 wire decoders on top of the
# committed corpus under internal/serve/testdata/fuzz (seeded from the
# golden fixtures plus truncations, oversized length prefixes and
# version-skew bytes). Longer sessions: raise -fuzztime.
fuzz-serve:
	go test -fuzz=FuzzBinaryFrame -fuzztime=10s -run '^$$' ./internal/serve
	go test -fuzz=FuzzBinaryBatch -fuzztime=10s -run '^$$' ./internal/serve

build:
	go build ./...

test:
	go test ./...

bench: bench-graph bench-routing bench-flit bench-paths bench-serve
	go test -bench=. -benchmem ./...

# Graph-substrate benchmark: CSR build time vs the old map builder,
# packed bytes/node vs the slice+dense-table representation it replaced,
# BFS all-pairs rate (must not regress vs the slice adjacency) and
# LinkID/LinkEndpoints throughput on RRG(720,24,19) and RRG(2000,24,19),
# written to BENCH_graph.json (committed baseline; methodology in the
# harness doc comment and docs/PERFORMANCE.md).
bench-graph:
	go run ./internal/graph/benchjson -o BENCH_graph.json

# Routing-engine microbenchmarks: ns/op and allocs/op of one Choose call
# per mechanism on k=8 candidate sets, written to BENCH_routing.json (the
# committed file is the baseline to diff against).
bench-routing:
	go run ./internal/routing/benchjson -o BENCH_routing.json

# Cycle-level simulator stepping throughput (cycles/sec, ns/cycle at a
# low, mid and saturating load), written to BENCH_flitsim.json. The file
# keeps its stored "baseline" run across reruns, benchstat-style: compare
# "current" against "baseline" (and against the committed file's
# "current") before and after touching the hot loop; see
# docs/PERFORMANCE.md for the workflow and what the loads exercise.
bench-flit:
	go run ./internal/flitsim/benchjson -o BENCH_flitsim.json

# Path-store benchmark: eager-build throughput, on-disk cache load
# speedup and packed-vs-slice bytes/pair on the medium topology, written
# to BENCH_paths.json (committed baseline; methodology in docs/PATHS.md).
# Takes a minute or two: the build leg recomputes 50k pairs.
bench-paths:
	go run ./internal/paths/benchjson -o BENCH_paths.json

# Serving-layer benchmark: sustained batched lookups/sec and single-op
# round trips/sec against an in-process jfserve on a Unix socket,
# written to BENCH_serve.json (committed baseline; capacity-planning
# notes in docs/SERVICE.md). Client and server share the machine, so
# run it idle and read the number as a per-host floor.
bench-serve:
	go run ./internal/serve/benchjson -o BENCH_serve.json
