package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fairshare"
	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// TestEndToEndPipeline drives the whole stack on one small system and
// checks that the three evaluation methodologies — the Eq.1 throughput
// model, exact max-min fairness, and the cycle-level simulator — agree on
// the paper's headline ordering: rEDKSP(k) with KSP-adaptive routing beats
// vanilla KSP.
func TestEndToEndPipeline(t *testing.T) {
	params := jellyfish.Params{N: 16, X: 9, Y: 6}
	const k, seed = 4, 2026

	nets := map[ksp.Algorithm]*core.Network{}
	for _, alg := range []ksp.Algorithm{ksp.KSP, ksp.REDKSP} {
		n, err := core.NewNetwork(params, core.Options{Selector: alg, K: k, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		nets[alg] = n
	}
	nTerms := nets[ksp.KSP].Topology().NumTerminals()

	// Average the comparison over several shift patterns to avoid
	// single-instance noise.
	rng := xrand.New(7)
	var modelK, modelR, fairK, fairR float64
	const rounds = 5
	for i := 0; i < rounds; i++ {
		pat := traffic.RandomShift(nTerms, rng)
		modelK += nets[ksp.KSP].ModelThroughput(pat).MeanNode
		modelR += nets[ksp.REDKSP].ModelThroughput(pat).MeanNode
		aK, err := fairshare.Compute(nets[ksp.KSP].Topology(), nets[ksp.KSP].PathDB(), pat)
		if err != nil {
			t.Fatal(err)
		}
		aR, err := fairshare.Compute(nets[ksp.REDKSP].Topology(), nets[ksp.REDKSP].PathDB(), pat)
		if err != nil {
			t.Fatal(err)
		}
		fairK += aK.MeanNode
		fairR += aR.MeanNode
	}
	if modelR <= modelK {
		t.Fatalf("model: rEDKSP %v <= KSP %v", modelR/rounds, modelK/rounds)
	}
	if fairR <= fairK {
		t.Fatalf("max-min: rEDKSP %v <= KSP %v", fairR/rounds, fairK/rounds)
	}

	// Cycle-level: at a moderate load under one shift pattern, rEDKSP +
	// KSP-adaptive must deliver at least as much as vanilla KSP and not
	// saturate earlier.
	pat := traffic.RandomShift(nTerms, xrand.New(11))
	simOf := func(n *core.Network) flitsim.Result {
		return n.Simulate(core.SimOptions{
			Mechanism:     routing.KSPAdaptive(),
			Traffic:       traffic.NewFixedSampler(pat),
			InjectionRate: 0.35,
			Seed:          5,
		})
	}
	resK, resR := simOf(nets[ksp.KSP]), simOf(nets[ksp.REDKSP])
	if resR.Saturated && !resK.Saturated {
		t.Fatalf("rEDKSP saturated where KSP did not (lat %v vs %v)",
			resR.SampleLatencies, resK.SampleLatencies)
	}
	if resR.DeliveredRate < resK.DeliveredRate*0.95 {
		t.Fatalf("rEDKSP delivered %v, KSP %v", resR.DeliveredRate, resK.DeliveredRate)
	}

	// Application level: a stencil phase must complete no slower under
	// rEDKSP than under KSP.
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNNDiag, Ranks: nTerms, TotalBytes: 150 * 1500,
	})
	flows := w.Apply(traffic.LinearMapping(nTerms))
	appK, err := nets[ksp.KSP].ReplayWorkload(flows, core.AppOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	appR, err := nets[ksp.REDKSP].ReplayWorkload(flows, core.AppOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if appR.Cycles > appK.Cycles*11/10 {
		t.Fatalf("rEDKSP stencil %d cycles, KSP %d", appR.Cycles, appK.Cycles)
	}
}

// TestSeedReproducibility checks the repository-wide guarantee: the same
// seed reproduces identical results across independent constructions.
func TestSeedReproducibility(t *testing.T) {
	params := jellyfish.Params{N: 12, X: 9, Y: 6}
	build := func() (float64, float64) {
		n, err := core.NewNetwork(params, core.Options{Selector: ksp.REDKSP, K: 4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		pat := traffic.RandomShift(n.Topology().NumTerminals(), xrand.New(3))
		m := n.ModelThroughput(pat)
		s := n.Simulate(core.SimOptions{
			Traffic:       traffic.NewFixedSampler(pat),
			InjectionRate: 0.3,
			Seed:          4,
		})
		return m.MeanNode, s.AvgLatency
	}
	m1, l1 := build()
	m2, l2 := build()
	if m1 != m2 || l1 != l2 {
		t.Fatalf("seeded pipeline not reproducible: (%v,%v) vs (%v,%v)", m1, l1, m2, l2)
	}
}
