package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForWorkerStateIsolation(t *testing.T) {
	// Each worker's state must be private: the counters summed at the end
	// must equal n without any atomic in the body.
	n := 10000
	var total atomic.Int64
	ForWorkerFinish(n, 8,
		func() *int64 { v := int64(0); return &v },
		func(_ int, c *int64) { *c++ },
		func(c *int64) { total.Add(*c) })
	if total.Load() != int64(n) {
		t.Fatalf("total = %d, want %d", total.Load(), n)
	}
}

func TestMapReduce(t *testing.T) {
	n := 5000
	sum := 0
	MapReduce(n, 6,
		func() *int { v := 0; return &v },
		func(i int, acc *int) { *acc += i },
		func(acc *int) { sum += *acc })
	want := n * (n - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestMapReduceSingleWorker(t *testing.T) {
	count := 0
	MapReduce(100, 1,
		func() *int { v := 0; return &v },
		func(_ int, acc *int) { *acc++ },
		func(acc *int) { count += *acc })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestMoreWorkersThanWork(t *testing.T) {
	var hits atomic.Int32
	For(3, 100, func(int) { hits.Add(1) })
	if hits.Load() != 3 {
		t.Fatalf("hits = %d", hits.Load())
	}
}
