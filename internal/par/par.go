// Package par provides the small data-parallel helpers used by the
// all-pairs path computations, the throughput model and the experiment
// sweeps: a bounded worker pool over an index range with per-worker state,
// in the style HPC codes use for embarrassingly parallel loops.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0, n) across the given number of workers
// (workers <= 0 selects DefaultWorkers). Iterations are distributed
// dynamically in chunks, so uneven per-iteration cost still balances.
func For(n, workers int, body func(i int)) {
	ForWorker(n, workers, func() any { return nil }, func(i int, _ any) { body(i) })
}

// ForWorker is For with per-worker state: setup runs once in each worker
// goroutine and its result is passed to every body invocation in that
// worker. This is how callers give each worker a private RNG, scratch
// buffer, or search engine without locking.
func ForWorker[S any](n, workers int, setup func() S, body func(i int, state S)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		s := setup()
		for i := 0; i < n; i++ {
			body(i, s)
		}
		return
	}
	// Chunked dynamic scheduling: amortizes the atomic per chunk while
	// keeping tail imbalance low.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := setup()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i, s)
				}
			}
		}()
	}
	wg.Wait()
}

// ForShards splits [0, n) into one contiguous shard per worker and runs
// body(lo, hi) once per shard, concurrently. Unlike For's dynamic
// chunking, every worker owns one contiguous index range, so callers can
// write disjoint precomputed regions of shared output (e.g. a packed
// arena behind prefix-summed offsets) without locking. Shard boundaries
// depend only on (n, workers), never on scheduling.
func ForShards(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	wg.Wait()
}

// MapReduce runs body(i) for every i in [0, n) and merges per-worker
// partial results. setup creates a worker-local accumulator; merge folds
// each accumulator into the final result under a lock, in worker-completion
// order.
func MapReduce[S any](n, workers int, setup func() S, body func(i int, state S), merge func(state S)) {
	var mu sync.Mutex
	type wrapped struct{ s S }
	ForWorkerFinish(n, workers,
		func() *wrapped { return &wrapped{s: setup()} },
		func(i int, w *wrapped) { body(i, w.s) },
		func(w *wrapped) {
			mu.Lock()
			defer mu.Unlock()
			merge(w.s)
		})
}

// ForWorkerFinish is ForWorker plus a finish hook that runs once per worker
// after that worker's last iteration.
func ForWorkerFinish[S any](n, workers int, setup func() S, body func(i int, state S), finish func(state S)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		s := setup()
		for i := 0; i < n; i++ {
			body(i, s)
		}
		finish(s)
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := setup()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					finish(s)
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i, s)
				}
			}
		}()
	}
	wg.Wait()
}
