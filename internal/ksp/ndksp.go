package ksp

import (
	"repro/internal/graph"
)

// Node-disjoint path selection (NDKSP / rNDKSP) extends the paper's
// edge-disjoint heuristic to the stronger property the Remove-Find paper
// (Guo, Kuipers, Van Mieghem) also studies: paths sharing no intermediate
// switch at all. Node-disjointness buys fault isolation — a switch failure
// kills at most one path of the set — at the cost of fewer available paths
// (at most min degree). The IPPS'21 paper evaluates only edge-disjointness;
// this is the natural extension its Section III hints at, provided for
// study.

const (
	// NDKSP is deterministic node-disjoint Remove-Find.
	NDKSP Algorithm = iota + 100
	// RNDKSP is randomized node-disjoint Remove-Find.
	RNDKSP
)

// nodeDisjoint reports whether the algorithm is a node-disjoint variant.
func (a Algorithm) nodeDisjoint() bool { return a == NDKSP || a == RNDKSP }

// removeFindNodes is Remove-Find with node removal: after each shortest
// path is found, its intermediate nodes are banned (endpoints stay), which
// also bans all their edges, guaranteeing internally node-disjoint paths.
// The direct src-dst edge, if it exists, can be used by at most one path
// by edge-banning it after use.
func (c *Computer) removeFindNodes(src, dst graph.NodeID) []graph.Path {
	c.eng.ClearBans()
	out := make([]graph.Path, 0, c.cfg.K)
	for len(out) < c.cfg.K {
		p, ok := c.eng.ShortestPath(src, dst)
		if !ok {
			break
		}
		out = append(out, p)
		if len(p) == 2 {
			// Direct edge: ban just the edge so other paths can still pass
			// through other neighbors.
			c.eng.BanUndirectedEdge(p[0], p[1])
			continue
		}
		for _, u := range p[1 : len(p)-1] {
			c.eng.BanNode(u)
		}
	}
	c.eng.ClearBans()
	if len(out) == 0 {
		return nil
	}
	if len(out) < c.cfg.K && !c.cfg.DisableEDFallback {
		c.fallbacks++
		have := make(map[string]struct{}, len(out))
		for _, p := range out {
			have[pathKey(p)] = struct{}{}
		}
		for _, p := range c.yen(src, dst, c.cfg.K+len(out)) {
			if _, dup := have[pathKey(p)]; dup {
				continue
			}
			out = append(out, p)
			if len(out) == c.cfg.K {
				break
			}
		}
		sortByHops(out)
	}
	return out
}
