package ksp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func assertPairwiseNodeDisjoint(t *testing.T, paths []graph.Path) {
	t.Helper()
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			seen := map[graph.NodeID]bool{}
			for _, u := range paths[i][1 : len(paths[i])-1] {
				seen[u] = true
			}
			for _, u := range paths[j][1 : len(paths[j])-1] {
				if seen[u] {
					t.Fatalf("paths %d and %d share node %d: %v / %v",
						i, j, u, paths[i], paths[j])
				}
			}
		}
	}
}

func TestNDKSPFigure3(t *testing.T) {
	// Figure 3's example has exactly 3 internally node-disjoint paths
	// (through A, B-or-E... actually through the three first-hop branches).
	c := NewComputer(figure3(), Config{Alg: NDKSP, K: 3, DisableEDFallback: true}, nil)
	paths := c.Paths(s1, d1)
	if len(paths) != 3 {
		t.Fatalf("got %d node-disjoint paths: %v", len(paths), paths)
	}
	assertPairwiseNodeDisjoint(t, paths)
	assertPairwiseDisjoint(t, paths) // node-disjoint implies edge-disjoint
}

func TestNDKSPOnJellyfish(t *testing.T) {
	g := smallJellyfish(t, 5)
	for _, alg := range []Algorithm{NDKSP, RNDKSP} {
		c := NewComputer(g, Config{Alg: alg, K: 4, DisableEDFallback: true}, xrand.New(3))
		for src := graph.NodeID(0); src < 24; src += 4 {
			for dst := graph.NodeID(0); dst < 24; dst += 5 {
				if src == dst {
					continue
				}
				paths := c.Paths(src, dst)
				if len(paths) == 0 {
					t.Fatalf("%v: no paths %d->%d", alg, src, dst)
				}
				assertPairwiseNodeDisjoint(t, paths)
				for _, p := range paths {
					if !p.ValidIn(g) || !p.Loopless() {
						t.Fatalf("%v: invalid path %v", alg, p)
					}
				}
			}
		}
	}
}

func TestNDKSPFallback(t *testing.T) {
	// Line graph: only one path exists at all; with the fallback enabled the
	// selector still returns it (and only it) and counts one fallback.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	c := NewComputer(b.Graph(), Config{Alg: NDKSP, K: 3}, nil)
	paths := c.Paths(0, 3)
	if len(paths) != 1 {
		t.Fatalf("line graph produced %d paths", len(paths))
	}
	if c.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d", c.Fallbacks())
	}
}

func TestNDKSPNames(t *testing.T) {
	if NDKSP.String() != "NDKSP" || RNDKSP.String() != "rNDKSP" {
		t.Fatal("names wrong")
	}
	if a, err := ByName("ndksp"); err != nil || a != NDKSP {
		t.Fatal("ByName(ndksp) failed")
	}
	if !NDKSP.EdgeDisjoint() || !RNDKSP.Randomized() || NDKSP.Randomized() {
		t.Fatal("predicates wrong")
	}
}

// --- Menger cross-checks: the greedy Remove-Find result never exceeds the
// max-flow optimum, and on Jellyfish with k <= y it achieves exactly k.

func TestEDKSPNeverExceedsMaxFlow(t *testing.T) {
	g := smallJellyfish(t, 6)
	c := NewComputer(g, Config{Alg: EDKSP, K: 16, DisableEDFallback: true}, nil)
	for src := graph.NodeID(0); src < 24; src += 3 {
		for dst := graph.NodeID(0); dst < 24; dst += 7 {
			if src == dst {
				continue
			}
			got := len(c.Paths(src, dst))
			max := graph.MaxEdgeDisjointPaths(g, src, dst)
			if got > max {
				t.Fatalf("%d->%d: Remove-Find found %d disjoint paths, max-flow says %d",
					src, dst, got, max)
			}
		}
	}
}

func TestJellyfishHasFullFlowBetweenAllPairs(t *testing.T) {
	// The paper's claim behind Table III: with practical y, k=8 <= y
	// edge-disjoint paths exist between all pairs. Verify via max flow on a
	// y=8 instance: every pair admits y disjoint paths (RRGs are whp
	// y-connected).
	g := smallJellyfish(t, 7)
	for src := graph.NodeID(0); src < 24; src += 5 {
		for dst := graph.NodeID(0); dst < 24; dst += 6 {
			if src == dst {
				continue
			}
			if flow := graph.MaxEdgeDisjointPaths(g, src, dst); flow != 8 {
				t.Fatalf("%d->%d: max flow %d, want 8 on a y=8 RRG", src, dst, flow)
			}
		}
	}
}

func TestNDKSPNeverExceedsNodeFlow(t *testing.T) {
	g := smallJellyfish(t, 8)
	c := NewComputer(g, Config{Alg: NDKSP, K: 16, DisableEDFallback: true}, nil)
	for src := graph.NodeID(0); src < 24; src += 6 {
		for dst := graph.NodeID(0); dst < 24; dst += 7 {
			if src == dst {
				continue
			}
			got := len(c.Paths(src, dst))
			max := graph.MaxNodeDisjointPaths(g, src, dst)
			if got > max {
				t.Fatalf("%d->%d: node Remove-Find found %d, max-flow says %d",
					src, dst, got, max)
			}
		}
	}
}
