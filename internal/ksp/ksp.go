// Package ksp implements the paper's path-selection schemes for multi-path
// routing on Jellyfish:
//
//   - KSP     — vanilla Yen k-shortest loopless paths with deterministic
//     (node-id) tie-breaking, reproducing the bias the paper analyses;
//   - rKSP    — Yen with randomized tie-breaking inside the shortest-path
//     searches and random selection among equally short candidates;
//   - EDKSP   — edge-disjoint paths via the Remove-Find method of Guo,
//     Kuipers and Van Mieghem: find a shortest path, remove its edges,
//     repeat;
//   - rEDKSP  — Remove-Find driven by the randomized shortest-path search,
//     the paper's best performing selector;
//   - LLSKR   — the Limited Length Spread k-shortest Path Routing of Yuan
//     et al. (SC'13), included as the related-work baseline the paper
//     discusses.
//
// All schemes are exposed through Computer, a per-worker object that owns
// reusable search engines so all-pairs computations over hundreds of
// thousands of switch pairs stay allocation-light.
package ksp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Algorithm identifies a path-selection scheme.
type Algorithm int

const (
	// KSP is vanilla Yen with deterministic tie-breaking.
	KSP Algorithm = iota
	// RKSP is Yen with randomized tie-breaking (the paper's rKSP).
	RKSP
	// EDKSP is deterministic Remove-Find edge-disjoint selection.
	EDKSP
	// REDKSP is randomized Remove-Find (the paper's rEDKSP).
	REDKSP
	// LLSKR is Limited Length Spread k-shortest path routing.
	LLSKR
)

// Algorithms lists the paper's four selectors in presentation order.
var Algorithms = []Algorithm{KSP, RKSP, EDKSP, REDKSP}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case KSP:
		return "KSP"
	case RKSP:
		return "rKSP"
	case EDKSP:
		return "EDKSP"
	case REDKSP:
		return "rEDKSP"
	case LLSKR:
		return "LLSKR"
	case NDKSP:
		return "NDKSP"
	case RNDKSP:
		return "rNDKSP"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ByName resolves a selector name as used on command lines.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "ksp", "KSP":
		return KSP, nil
	case "rksp", "rKSP":
		return RKSP, nil
	case "edksp", "EDKSP":
		return EDKSP, nil
	case "redksp", "rEDKSP":
		return REDKSP, nil
	case "llskr", "LLSKR":
		return LLSKR, nil
	case "ndksp", "NDKSP":
		return NDKSP, nil
	case "rndksp", "rNDKSP":
		return RNDKSP, nil
	}
	return 0, fmt.Errorf("ksp: unknown algorithm %q", name)
}

// Randomized reports whether the algorithm uses randomized tie-breaking.
func (a Algorithm) Randomized() bool { return a == RKSP || a == REDKSP || a == RNDKSP }

// EdgeDisjoint reports whether the algorithm guarantees edge-disjoint paths
// (up to the disjoint-exhaustion fallback). Node-disjoint paths are a
// fortiori edge-disjoint.
func (a Algorithm) EdgeDisjoint() bool {
	return a == EDKSP || a == REDKSP || a.nodeDisjoint()
}

// Config parameterizes path computation.
type Config struct {
	// Alg selects the scheme.
	Alg Algorithm
	// K is the number of paths per pair (for LLSKR, the maximum).
	K int
	// LLSKRSpread is the extra hop budget over the shortest path length
	// within which LLSKR admits paths (default 1 when zero).
	LLSKRSpread int
	// LLSKRMin is the minimum number of paths LLSKR keeps even if they
	// exceed the length budget (default 2 when zero).
	LLSKRMin int
	// DisableEDFallback, when set, lets EDKSP/rEDKSP return fewer than K
	// paths once the source and destination disconnect instead of topping
	// up with Yen paths. The paper observes the fallback is never needed
	// on practical Jellyfish configurations; the Computer counts uses so
	// experiments can verify that claim.
	DisableEDFallback bool
}

// Canonical renders the configuration as the canonical string used to
// derive path-cache keys (see internal/paths): two Configs map to the
// same string exactly when they select identical path sets on every
// graph. LLSKR's zero-value defaults are normalized, and the LLSKR knobs
// are omitted for the other algorithms, which ignore them.
func (c Config) Canonical() string {
	spread, minPaths := 0, 0
	if c.Alg == LLSKR {
		spread = c.LLSKRSpread
		if spread == 0 {
			spread = 1
		}
		minPaths = c.LLSKRMin
		if minPaths == 0 {
			minPaths = 2
		}
		if minPaths > c.K {
			minPaths = c.K
		}
	}
	return fmt.Sprintf("alg=%s k=%d spread=%d min=%d nofb=%t",
		c.Alg, c.K, spread, minPaths, c.DisableEDFallback)
}

// Computer computes path sets for one graph under one Config. It is not
// safe for concurrent use; parallel workers each create their own Computer
// over the shared graph (see paths.BuildDB).
type Computer struct {
	cfg Config
	g   *graph.Graph
	eng *graph.SPEngine // tie-break mode fixed by cfg.Alg
	rng *xrand.RNG

	// fallbacks counts source-destination pairs for which Remove-Find
	// disconnected before K paths were found.
	fallbacks int

	// Yen scratch.
	candidates []candidate
	seen       map[string]struct{}
}

type candidate struct {
	p    graph.Path
	hops int
}

// NewComputer returns a Computer for g under cfg. rng is required for
// randomized algorithms and may be nil otherwise.
func NewComputer(g *graph.Graph, cfg Config, rng *xrand.RNG) *Computer {
	if cfg.K < 1 {
		panic("ksp: K must be >= 1")
	}
	tie := graph.TieDeterministic
	if cfg.Alg.Randomized() {
		tie = graph.TieRandom
		if rng == nil {
			panic(fmt.Sprintf("ksp: %v requires an RNG", cfg.Alg))
		}
	}
	return &Computer{
		cfg:  cfg,
		g:    g,
		eng:  graph.NewSPEngine(g, tie, rng),
		rng:  rng,
		seen: make(map[string]struct{}),
	}
}

// Config returns the computer's configuration.
func (c *Computer) Config() Config { return c.cfg }

// Reseed resets the computer's random stream from the two seed words, so a
// long-lived computer can give each work item (e.g. each switch pair) a
// deterministic, schedule-independent stream. It is a no-op for
// deterministic algorithms.
func (c *Computer) Reseed(hi, lo uint64) {
	if c.rng != nil {
		c.rng.Reseed(xrand.Mix64(hi), xrand.Mix64(lo^0x9e3779b97f4a7c15))
	}
}

// Fallbacks returns how many pairs required the Yen top-up fallback because
// Remove-Find disconnected early. Zero on all of the paper's topologies.
func (c *Computer) Fallbacks() int { return c.fallbacks }

// Paths computes the path set for the ordered pair (src, dst). The result
// is sorted by nondecreasing hop count, each path is loopless and valid,
// and the first path is always a shortest path. For src == dst it returns
// nil.
func (c *Computer) Paths(src, dst graph.NodeID) []graph.Path {
	if src == dst {
		return nil
	}
	switch c.cfg.Alg {
	case KSP, RKSP:
		return c.yen(src, dst, c.cfg.K)
	case EDKSP, REDKSP:
		return c.removeFind(src, dst)
	case NDKSP, RNDKSP:
		return c.removeFindNodes(src, dst)
	case LLSKR:
		return c.llskr(src, dst)
	}
	panic(fmt.Sprintf("ksp: unknown algorithm %v", c.cfg.Alg))
}

// yen computes up to k shortest loopless paths (Yen 1971) using the
// engine's tie-break policy for both the underlying searches and the
// selection among equally short candidates.
func (c *Computer) yen(src, dst graph.NodeID, k int) []graph.Path {
	c.eng.ClearBans()
	first, ok := c.eng.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	a := make([]graph.Path, 0, k)
	a = append(a, first)
	c.candidates = c.candidates[:0]
	clear(c.seen)
	c.seen[pathKey(first)] = struct{}{}

	for len(a) < k {
		prev := a[len(a)-1]
		for j := 0; j+1 < len(prev); j++ {
			spur := prev[j]
			rootPath := prev[:j+1]

			c.eng.ClearBans()
			// Ban the next edge of every accepted path that shares this
			// root, so the spur search cannot rediscover a known path.
			for _, p := range a {
				if len(p) > j && samePrefix(p, rootPath) {
					c.eng.BanDirectedEdge(p[j], p[j+1])
				}
			}
			// Ban root nodes (except the spur node) to keep the total path
			// loopless.
			for _, u := range rootPath[:j] {
				c.eng.BanNode(u)
			}

			spurPath, ok := c.eng.ShortestPath(spur, dst)
			if !ok {
				continue
			}
			total := make(graph.Path, 0, j+len(spurPath))
			total = append(total, rootPath[:j]...)
			total = append(total, spurPath...)
			key := pathKey(total)
			if _, dup := c.seen[key]; dup {
				continue
			}
			c.seen[key] = struct{}{}
			c.candidates = append(c.candidates, candidate{p: total, hops: total.Hops()})
		}
		if len(c.candidates) == 0 {
			break
		}
		a = append(a, c.popBest())
	}
	c.eng.ClearBans()
	return a
}

// popBest removes and returns the best candidate: the minimum hop count,
// with ties broken lexicographically (deterministic mode) or uniformly at
// random (randomized mode).
func (c *Computer) popBest() graph.Path {
	best := 0
	ties := 1
	for i := 1; i < len(c.candidates); i++ {
		ci, cb := c.candidates[i], c.candidates[best]
		switch {
		case ci.hops < cb.hops:
			best, ties = i, 1
		case ci.hops == cb.hops:
			if c.cfg.Alg.Randomized() {
				// Reservoir-sample uniformly among ties.
				ties++
				if c.rng.IntN(ties) == 0 {
					best = i
				}
			} else if lexLess(ci.p, cb.p) {
				best = i
			}
		}
	}
	p := c.candidates[best].p
	c.candidates[best] = c.candidates[len(c.candidates)-1]
	c.candidates = c.candidates[:len(c.candidates)-1]
	return p
}

// removeFind implements the Remove-Find edge-disjoint method: repeatedly
// find a shortest path, then ban its undirected edges. When the pair
// disconnects before K paths are found, the remaining slots are topped up
// with Yen paths over the original graph (excluding exact duplicates)
// unless the fallback is disabled.
func (c *Computer) removeFind(src, dst graph.NodeID) []graph.Path {
	c.eng.ClearBans()
	out := make([]graph.Path, 0, c.cfg.K)
	for len(out) < c.cfg.K {
		p, ok := c.eng.ShortestPath(src, dst)
		if !ok {
			break
		}
		out = append(out, p)
		for i := 0; i+1 < len(p); i++ {
			c.eng.BanUndirectedEdge(p[i], p[i+1])
		}
	}
	c.eng.ClearBans()
	if len(out) == 0 {
		return nil
	}
	if len(out) == c.cfg.K || c.cfg.DisableEDFallback {
		return out
	}
	// Top up with Yen paths not already present.
	c.fallbacks++
	have := make(map[string]struct{}, len(out))
	for _, p := range out {
		have[pathKey(p)] = struct{}{}
	}
	for _, p := range c.yen(src, dst, c.cfg.K+len(out)) {
		if _, dup := have[pathKey(p)]; dup {
			continue
		}
		out = append(out, p)
		if len(out) == c.cfg.K {
			break
		}
	}
	sortByHops(out)
	return out
}

// llskr approximates LLSKR (Yuan et al., SC'13): admit every Yen path whose
// length is within LLSKRSpread hops of the shortest, capped at K paths and
// floored at LLSKRMin paths.
func (c *Computer) llskr(src, dst graph.NodeID) []graph.Path {
	spread := c.cfg.LLSKRSpread
	if spread == 0 {
		spread = 1
	}
	minPaths := c.cfg.LLSKRMin
	if minPaths == 0 {
		minPaths = 2
	}
	if minPaths > c.cfg.K {
		minPaths = c.cfg.K
	}
	all := c.yen(src, dst, c.cfg.K)
	if len(all) == 0 {
		return nil
	}
	budget := all[0].Hops() + spread
	keep := len(all)
	for i, p := range all {
		if p.Hops() > budget {
			keep = i
			break
		}
	}
	if keep < minPaths {
		keep = minPaths
		if keep > len(all) {
			keep = len(all)
		}
	}
	return all[:keep]
}

// pathKey serializes a path into a map key.
func pathKey(p graph.Path) string {
	b := make([]byte, 0, 4*len(p))
	for _, u := range p {
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return string(b)
}

func samePrefix(p, prefix graph.Path) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func lexLess(p, q graph.Path) bool {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// sortByHops sorts paths by nondecreasing hop count, stably.
func sortByHops(ps []graph.Path) {
	// Insertion sort: path sets are tiny (k <= 16).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Hops() < ps[j-1].Hops(); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
