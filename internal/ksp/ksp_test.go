package ksp

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/xrand"
)

// figure3 builds the example network from the paper's Figure 3.
// Node ids: S1=0, A=1, B=2, C=3, E=4, F=5, G=6, H=7, I=8, D1=9.
// From S1 to D1 there is one 3-hop path (S1-A-G-D1) and six 4-hop paths.
func figure3() *graph.Graph {
	b := graph.NewBuilder(10)
	edges := [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 3}, // S1-A, S1-B, S1-C
		{1, 6}, {1, 4}, // A-G, A-E
		{2, 4},         // B-E
		{3, 5},         // C-F
		{4, 6}, {4, 7}, // E-G, E-H
		{5, 7}, {5, 8}, // F-H, F-I
		{6, 9}, {7, 9}, {8, 9}, // G-D1, H-D1, I-D1
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}

const s1, d1 = graph.NodeID(0), graph.NodeID(9)

func TestVanillaKSPFigure3Bias(t *testing.T) {
	// The paper: vanilla KSP(3) finds P0 = S1-A-G-D1, P1 = S1-A-E-G-D1,
	// P2 = S1-A-E-H-D1 — all three sharing the link S1-A.
	c := NewComputer(figure3(), Config{Alg: KSP, K: 3}, nil)
	paths := c.Paths(s1, d1)
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	want := []graph.Path{
		{0, 1, 6, 9},
		{0, 1, 4, 6, 9},
		{0, 1, 4, 7, 9},
	}
	for i := range want {
		if !paths[i].Equal(want[i]) {
			t.Fatalf("path %d = %v, want %v (all %v)", i, paths[i], want[i], paths)
		}
	}
	// The bias: every path uses S1->A.
	for _, p := range paths {
		if p[1] != 1 {
			t.Fatalf("expected the S1->A bias, got %v", p)
		}
	}
}

func TestEDKSPFigure3(t *testing.T) {
	// The paper: EDKSP(3) finds P0, P4 = S1-B-E-H-D1 and P6 = S1-C-F-I-D1.
	c := NewComputer(figure3(), Config{Alg: EDKSP, K: 3}, nil)
	paths := c.Paths(s1, d1)
	if len(paths) != 3 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	want := []graph.Path{
		{0, 1, 6, 9},
		{0, 2, 4, 7, 9},
		{0, 3, 5, 8, 9},
	}
	for i := range want {
		if !paths[i].Equal(want[i]) {
			t.Fatalf("path %d = %v, want %v", i, paths[i], want[i])
		}
	}
	if c.Fallbacks() != 0 {
		t.Fatalf("fallbacks = %d", c.Fallbacks())
	}
	assertPairwiseDisjoint(t, paths)
}

func TestRKSPFigure3ExploresAlternatives(t *testing.T) {
	// rKSP(3) must still return the 3-hop path first and two 4-hop paths,
	// but across repetitions the 4-hop choices should cover several of the
	// six candidates instead of always P1, P2.
	g := figure3()
	seenSecondHop := map[graph.NodeID]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		c := NewComputer(g, Config{Alg: RKSP, K: 3}, xrand.New(seed))
		paths := c.Paths(s1, d1)
		if len(paths) != 3 {
			t.Fatalf("seed %d: got %d paths", seed, len(paths))
		}
		if paths[0].Hops() != 3 || paths[1].Hops() != 4 || paths[2].Hops() != 4 {
			t.Fatalf("seed %d: hop profile %v", seed, paths)
		}
		for _, p := range paths[1:] {
			seenSecondHop[p[1]] = true
		}
	}
	if len(seenSecondHop) < 2 {
		t.Fatalf("randomized KSP never varied the first hop: %v", seenSecondHop)
	}
}

func TestKSPDeterministicRepeatable(t *testing.T) {
	g := figure3()
	a := NewComputer(g, Config{Alg: KSP, K: 5}, nil).Paths(s1, d1)
	b := NewComputer(g, Config{Alg: KSP, K: 5}, nil).Paths(s1, d1)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("path %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestYenFindsAllSevenPaths(t *testing.T) {
	// Figure 3 has exactly 7 loopless paths of length <= 4 from S1 to D1;
	// asking for many paths must enumerate them in nondecreasing length
	// without duplicates.
	c := NewComputer(figure3(), Config{Alg: KSP, K: 20}, nil)
	paths := c.Paths(s1, d1)
	if len(paths) < 7 {
		t.Fatalf("only %d paths found", len(paths))
	}
	seen := map[string]bool{}
	for i, p := range paths {
		if !p.Loopless() || !p.ValidIn(figure3()) {
			t.Fatalf("path %d invalid: %v", i, p)
		}
		if p.Src() != s1 || p.Dst() != d1 {
			t.Fatalf("path %d endpoints wrong: %v", i, p)
		}
		if i > 0 && p.Hops() < paths[i-1].Hops() {
			t.Fatalf("paths not sorted at %d: %v", i, paths)
		}
		if seen[p.String()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.String()] = true
	}
	// The first 7 are the 3-hop path plus six 4-hop paths.
	if paths[0].Hops() != 3 {
		t.Fatal("first path not the shortest")
	}
	four := 0
	for _, p := range paths[1:7] {
		if p.Hops() == 4 {
			four++
		}
	}
	if four != 6 {
		t.Fatalf("expected six 4-hop paths, got %d: %v", four, paths[:7])
	}
}

func assertPairwiseDisjoint(t *testing.T, paths []graph.Path) {
	t.Helper()
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if !paths[i].EdgeDisjoint(paths[j]) {
				t.Fatalf("paths %d and %d share an edge: %v / %v", i, j, paths[i], paths[j])
			}
		}
	}
}

func smallJellyfish(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: 24, X: 12, Y: 8}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo.G
}

func TestSelectorsPropertyOnJellyfish(t *testing.T) {
	g := smallJellyfish(t, 1)
	eng := graph.NewSPEngine(g, graph.TieDeterministic, nil)
	for _, alg := range []Algorithm{KSP, RKSP, EDKSP, REDKSP, LLSKR} {
		c := NewComputer(g, Config{Alg: alg, K: 4}, xrand.New(9))
		for src := graph.NodeID(0); src < 24; src += 5 {
			for dst := graph.NodeID(0); dst < 24; dst += 7 {
				if src == dst {
					if got := c.Paths(src, dst); got != nil {
						t.Fatalf("%v: self pair returned paths", alg)
					}
					continue
				}
				paths := c.Paths(src, dst)
				if len(paths) == 0 || len(paths) > 4 {
					t.Fatalf("%v %d->%d: %d paths", alg, src, dst, len(paths))
				}
				sp, _ := eng.ShortestPath(src, dst)
				if paths[0].Hops() != sp.Hops() {
					t.Fatalf("%v %d->%d: first path %d hops, shortest is %d",
						alg, src, dst, paths[0].Hops(), sp.Hops())
				}
				for i, p := range paths {
					if p.Src() != src || p.Dst() != dst {
						t.Fatalf("%v: endpoints wrong: %v", alg, p)
					}
					if !p.Loopless() || !p.ValidIn(g) {
						t.Fatalf("%v: invalid path %v", alg, p)
					}
					if i > 0 && p.Hops() < paths[i-1].Hops() {
						t.Fatalf("%v: not sorted: %v", alg, paths)
					}
				}
				if alg.EdgeDisjoint() && c.Fallbacks() == 0 {
					assertPairwiseDisjoint(t, paths)
				}
			}
		}
	}
}

func TestKSPAndRKSPSameLengthProfile(t *testing.T) {
	// The multiset of k-shortest path lengths is unique even though the
	// paths are not; randomization must not change it.
	g := smallJellyfish(t, 3)
	det := NewComputer(g, Config{Alg: KSP, K: 6}, nil)
	rnd := NewComputer(g, Config{Alg: RKSP, K: 6}, xrand.New(5))
	for src := graph.NodeID(0); src < 24; src += 3 {
		for dst := graph.NodeID(0); dst < 24; dst += 4 {
			if src == dst {
				continue
			}
			a, b := det.Paths(src, dst), rnd.Paths(src, dst)
			if len(a) != len(b) {
				t.Fatalf("%d->%d: count %d vs %d", src, dst, len(a), len(b))
			}
			for i := range a {
				if a[i].Hops() != b[i].Hops() {
					t.Fatalf("%d->%d: length profile differs at %d: %v vs %v",
						src, dst, i, a, b)
				}
			}
		}
	}
}

func TestYenPathsAreDistinct(t *testing.T) {
	g := smallJellyfish(t, 4)
	c := NewComputer(g, Config{Alg: RKSP, K: 8}, xrand.New(6))
	for src := graph.NodeID(0); src < 24; src += 6 {
		for dst := graph.NodeID(0); dst < 24; dst += 5 {
			if src == dst {
				continue
			}
			paths := c.Paths(src, dst)
			seen := map[string]bool{}
			for _, p := range paths {
				if seen[p.String()] {
					t.Fatalf("%d->%d: duplicate %v", src, dst, p)
				}
				seen[p.String()] = true
			}
		}
	}
}

func TestEDFallback(t *testing.T) {
	// 0-1-2 / 0-3-2 / 0-3-4-2: only two edge-disjoint paths exist, but a
	// third distinct path does.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Graph()

	with := NewComputer(g, Config{Alg: EDKSP, K: 3}, nil)
	paths := with.Paths(0, 2)
	if len(paths) != 3 {
		t.Fatalf("fallback returned %d paths: %v", len(paths), paths)
	}
	if with.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", with.Fallbacks())
	}

	without := NewComputer(g, Config{Alg: EDKSP, K: 3, DisableEDFallback: true}, nil)
	paths = without.Paths(0, 2)
	if len(paths) != 2 {
		t.Fatalf("without fallback got %d paths: %v", len(paths), paths)
	}
	assertPairwiseDisjoint(t, paths)
}

func TestEDKSPNoFallbackOnJellyfish(t *testing.T) {
	// The paper: with k=8 and practical y, edge-disjoint paths always
	// exist. Verify on a y=8 instance with k=4 (k <= y is the requirement).
	g := smallJellyfish(t, 8)
	c := NewComputer(g, Config{Alg: EDKSP, K: 4, DisableEDFallback: true}, nil)
	for src := graph.NodeID(0); src < 24; src++ {
		for dst := graph.NodeID(0); dst < 24; dst++ {
			if src == dst {
				continue
			}
			if got := len(c.Paths(src, dst)); got != 4 {
				t.Fatalf("%d->%d: only %d disjoint paths", src, dst, got)
			}
		}
	}
}

func TestLLSKRLengthBudget(t *testing.T) {
	g := figure3()
	// Shortest is 3 hops; spread 1 admits the six 4-hop paths, capped by K.
	c := NewComputer(g, Config{Alg: LLSKR, K: 10, LLSKRSpread: 1, LLSKRMin: 2}, nil)
	paths := c.Paths(s1, d1)
	if len(paths) != 7 {
		t.Fatalf("got %d paths, want 7 (1 three-hop + 6 four-hop)", len(paths))
	}
	for _, p := range paths {
		if p.Hops() > 4 {
			t.Fatalf("path over budget: %v", p)
		}
	}
	// Spread 0 keeps only the shortest... but the floor of 2 wins.
	c = NewComputer(g, Config{Alg: LLSKR, K: 10, LLSKRSpread: -1, LLSKRMin: 2}, nil)
	_ = c
}

func TestLLSKRMinFloor(t *testing.T) {
	// On a long line there is exactly one path; the floor cannot create
	// paths that do not exist.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	c := NewComputer(b.Graph(), Config{Alg: LLSKR, K: 8}, nil)
	paths := c.Paths(0, 3)
	if len(paths) != 1 {
		t.Fatalf("line graph produced %d paths", len(paths))
	}
}

func TestUnreachablePair(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Graph()
	for _, alg := range []Algorithm{KSP, RKSP, EDKSP, REDKSP, LLSKR} {
		c := NewComputer(g, Config{Alg: alg, K: 3}, xrand.New(1))
		if got := c.Paths(0, 3); got != nil {
			t.Fatalf("%v: unreachable pair returned %v", alg, got)
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	for _, c := range []struct {
		a    Algorithm
		want string
	}{{KSP, "KSP"}, {RKSP, "rKSP"}, {EDKSP, "EDKSP"}, {REDKSP, "rEDKSP"}, {LLSKR, "LLSKR"}} {
		if c.a.String() != c.want {
			t.Errorf("String(%d) = %q", int(c.a), c.a.String())
		}
		back, err := ByName(c.want)
		if err != nil || back != c.a {
			t.Errorf("ByName(%q) = %v, %v", c.want, back, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted bogus name")
	}
}

func TestNewComputerValidation(t *testing.T) {
	g := figure3()
	mustPanic(t, func() { NewComputer(g, Config{Alg: KSP, K: 0}, nil) })
	mustPanic(t, func() { NewComputer(g, Config{Alg: RKSP, K: 2}, nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSelectorsPropertyOnIrregularGraphs(t *testing.T) {
	// The selectors must stay correct on arbitrary (non-regular, possibly
	// low-connectivity) graphs, not just Jellyfish RRGs.
	rng := xrand.New(2027)
	f := func(seedRaw uint16, nRaw, algRaw uint8) bool {
		n := int(nRaw%30) + 5
		// Erdos-Renyi-ish graph with moderate density.
		b := graph.NewBuilder(n)
		grng := xrand.New(uint64(seedRaw))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if grng.Float64() < 0.15 {
					b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		g := b.Graph()
		algs := []Algorithm{KSP, RKSP, EDKSP, REDKSP, NDKSP, RNDKSP, LLSKR}
		alg := algs[int(algRaw)%len(algs)]
		c := NewComputer(g, Config{Alg: alg, K: 3}, rng.Split())
		src := graph.NodeID(grng.IntN(n))
		dst := graph.NodeID(grng.IntN(n))
		ps := c.Paths(src, dst)
		if src == dst {
			return ps == nil
		}
		for i, p := range ps {
			if p.Src() != src || p.Dst() != dst || !p.Loopless() || !p.ValidIn(g) {
				return false
			}
			if i > 0 && p.Hops() < ps[i-1].Hops() {
				return false
			}
		}
		return len(ps) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
