// Package cliflags centralizes the flag wiring shared by the jfnet,
// jfapp and jfflit front ends: the -mechanism flag (parsed through the
// unified routing.ByName), the -telemetry/-selector pair, and the
// -faults/-fault-policy pair. A new mechanism name, fault policy or
// telemetry knob then lands in one place instead of three.
//
// All helpers register on the process-wide flag.CommandLine, matching
// how the cmd/ binaries define their remaining flags; call them before
// flag.Parse.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Mechanism registers the shared -mechanism flag with the given default
// (a canonical name accepted by routing.ByName, e.g. "ksp-adaptive").
func Mechanism(def string) *string {
	return flag.String("mechanism", def,
		"routing mechanism: sp, random, round-robin, ugal, ksp-ugal or ksp-adaptive")
}

// ResolveMechanism parses a -mechanism value through routing.ByName, so
// every binary accepts the same name set and emits the same error
// listing the valid names.
func ResolveMechanism(name string) (routing.Mechanism, error) {
	return routing.ByName(name)
}

// Telemetry is the flag pair behind instrumented single runs.
type Telemetry struct {
	// Dir is the -telemetry export directory ("" = telemetry off).
	Dir *string
	// Selector is the -selector path-selection scheme name.
	Selector *string
}

// TelemetryFlags registers -telemetry and -selector. runDesc describes
// the instrumented run in the -telemetry usage string (e.g. "one
// instrumented flit-level simulation").
func TelemetryFlags(runDesc string) Telemetry {
	return Telemetry{
		Dir: flag.String("telemetry", "",
			"run "+runDesc+" and write telemetry files to this directory"),
		Selector: flag.String("selector", "rEDKSP",
			"path selector for -telemetry: KSP, rKSP, EDKSP or rEDKSP"),
	}
}

// Profile is the flag pair behind CPU and heap profiling of a whole
// invocation (see docs/PERFORMANCE.md for the workflow):
//
//	jfflit -experiment latency -topo small -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
type Profile struct {
	cpu, mem *string
	f        *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile.
func ProfileFlags() *Profile {
	return &Profile{
		cpu: flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file"),
		mem: flag.String("memprofile", "", "write a heap profile at exit to this file"),
	}
}

// Start begins CPU profiling if -cpuprofile was given. Call after
// flag.Parse; pair with a deferred Stop.
func (p *Profile) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.f = f
	return nil
}

// Stop flushes the CPU profile started by Start and, if -memprofile was
// given, writes a heap profile after a final GC. Errors are reported on
// stderr rather than returned: profiling must never turn a successful
// run into a failing one.
func (p *Profile) Stop() {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
		}
		p.f = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}
}

// Stats registers the -stats flag: a one-look summary of a built
// topology's graph substrate (node/edge counts, packed CSR byte
// footprint, construction time), shared so any binary that builds a
// graph can report it identically.
func Stats() *bool {
	return flag.Bool("stats", false,
		"print graph substrate stats: node/edge counts, packed byte footprint, build time")
}

// PrintGraphStats writes the -stats block for a frozen graph. build is
// the wall time spent constructing (or loading) it.
func PrintGraphStats(w io.Writer, g *graph.Graph, build time.Duration) {
	fmt.Fprintf(w, "graph: %d nodes, %d edges, %d directed links\n",
		g.NumNodes(), g.NumEdges(), g.NumDirectedLinks())
	fb := g.FootprintBytes()
	perNode := 0.0
	if g.NumNodes() > 0 {
		perNode = float64(fb) / float64(g.NumNodes())
	}
	fmt.Fprintf(w, "packed footprint: %d bytes (%.1f B/node: CSR arena + offsets + link tables)\n",
		fb, perNode)
	fmt.Fprintf(w, "build time: %s\n", build.Round(time.Microsecond))
}

// PathCache registers the shared -path-cache flag: a directory for the
// on-disk path-DB cache. Empty (the default) leaves caching off and the
// binaries computing path sets lazily as before; a directory makes every
// experiment load its packed all-pairs DB from disk when a matching
// cache file exists and build-then-store it when not. The cache key
// covers topology, selector, k and seed, so a shared directory is safe
// across binaries and invocations (see docs/PATHS.md).
func PathCache() *string {
	return flag.String("path-cache", "",
		"directory for the on-disk path-DB cache (empty = recompute paths in-process)")
}

// EventDriven registers the -event-driven flag shared by the binaries
// that run the cycle-level simulator. When set, every simulation uses
// flitsim's event-driven advance: the clock jumps over idle spans and
// injection comes from a geometric next-arrival sampler instead of the
// per-cycle Bernoulli scan. Results are statistically equivalent to the
// cycle-stepped default but not bit-identical (the injection RNG stream
// differs); see docs/PERFORMANCE.md ("Event-driven advance").
func EventDriven() *bool {
	return flag.Bool("event-driven", false,
		"advance the flit simulator event-to-event instead of cycle-by-cycle (statistically equivalent, faster at low load)")
}

// Listen registers the -listen flag used by the serving binaries: a
// listener spec of the form "unix:<socket path>" or "tcp:<host:port>",
// parsed by serve.SplitListenSpec (wire protocol: docs/SERVICE.md).
func Listen(def string) *string {
	return flag.String("listen", def,
		"listener spec: unix:<socket path> or tcp:<host:port>")
}

// ServeLimits is the flag set behind the jfserve resilience knobs
// (docs/SERVICE.md "Capacity planning"). The defaults are the
// production posture: bounded connections and in-flight work, generous
// I/O deadlines, and no handler timeout (a cold topo-load legitimately
// runs for minutes; enable -handler-timeout only with a warm -path-cache
// or -preload).
type ServeLimits struct {
	MaxConns       *int
	MaxInFlight    *int
	MaxSweeps      *int
	Stripes        *int
	ReadTimeout    *time.Duration
	WriteTimeout   *time.Duration
	HandlerTimeout *time.Duration
}

// ServeLimitFlags registers -max-conns, -max-inflight, -max-sweeps,
// -stripes, -read-timeout, -write-timeout and -handler-timeout. Zero
// disables the corresponding limit (for -stripes, zero means one stripe
// per GOMAXPROCS).
func ServeLimitFlags() ServeLimits {
	return ServeLimits{
		MaxConns: flag.Int("max-conns", 1024,
			"maximum concurrent connections; extras get one overloaded frame and are closed (0 = unlimited)"),
		MaxInFlight: flag.Int("max-inflight", 256,
			"maximum concurrently executing requests; extras are answered overloaded (0 = unlimited)"),
		MaxSweeps: flag.Int("max-sweeps", 16,
			"maximum concurrently streaming sweeps; extras are answered overloaded (0 = unlimited)"),
		Stripes: flag.Int("stripes", 0,
			"routing-state stripes per topology for parallel adaptive choice (0 = GOMAXPROCS)"),
		ReadTimeout: flag.Duration("read-timeout", 5*time.Minute,
			"per-request frame read deadline, doubling as the idle timeout (0 = none)"),
		WriteTimeout: flag.Duration("write-timeout", time.Minute,
			"per-response write deadline; a client not draining is disconnected (0 = none)"),
		HandlerTimeout: flag.Duration("handler-timeout", 0,
			"per-request handler execution bound, answered with the timeout code when exceeded (0 = none; cold topo-load can run minutes)"),
	}
}

// Faults is the flag pair behind fault injection.
type Faults struct {
	// Spec is the -faults schedule spec ("" = no faults).
	Spec *string
	// Policy is the -fault-policy name.
	Policy *string
}

// FaultFlags registers -faults and -fault-policy.
func FaultFlags() Faults {
	return Faults{
		Spec: flag.String("faults", "",
			"fault schedule: none, random:<n>@<cycle>[,...] or a schedule file (see docs/FAULTS.md)"),
		Policy: flag.String("fault-policy", "reroute",
			"fault policy: reroute, drop, reroute-norepair or drop-norepair"),
	}
}
