// Package cliflags centralizes the flag wiring shared by the jfnet,
// jfapp and jfflit front ends: the -mechanism flag (parsed through the
// unified routing.ByName), the -telemetry/-selector pair, and the
// -faults/-fault-policy pair. A new mechanism name, fault policy or
// telemetry knob then lands in one place instead of three.
//
// All helpers register on the process-wide flag.CommandLine, matching
// how the cmd/ binaries define their remaining flags; call them before
// flag.Parse.
package cliflags

import (
	"flag"

	"repro/internal/routing"
)

// Mechanism registers the shared -mechanism flag with the given default
// (a canonical name accepted by routing.ByName, e.g. "ksp-adaptive").
func Mechanism(def string) *string {
	return flag.String("mechanism", def,
		"routing mechanism: sp, random, round-robin, ugal, ksp-ugal or ksp-adaptive")
}

// ResolveMechanism parses a -mechanism value through routing.ByName, so
// every binary accepts the same name set and emits the same error
// listing the valid names.
func ResolveMechanism(name string) (routing.Mechanism, error) {
	return routing.ByName(name)
}

// Telemetry is the flag pair behind instrumented single runs.
type Telemetry struct {
	// Dir is the -telemetry export directory ("" = telemetry off).
	Dir *string
	// Selector is the -selector path-selection scheme name.
	Selector *string
}

// TelemetryFlags registers -telemetry and -selector. runDesc describes
// the instrumented run in the -telemetry usage string (e.g. "one
// instrumented flit-level simulation").
func TelemetryFlags(runDesc string) Telemetry {
	return Telemetry{
		Dir: flag.String("telemetry", "",
			"run "+runDesc+" and write telemetry files to this directory"),
		Selector: flag.String("selector", "rEDKSP",
			"path selector for -telemetry: KSP, rKSP, EDKSP or rEDKSP"),
	}
}

// Faults is the flag pair behind fault injection.
type Faults struct {
	// Spec is the -faults schedule spec ("" = no faults).
	Spec *string
	// Policy is the -fault-policy name.
	Policy *string
}

// FaultFlags registers -faults and -fault-policy.
func FaultFlags() Faults {
	return Faults{
		Spec: flag.String("faults", "",
			"fault schedule: none, random:<n>@<cycle>[,...] or a schedule file (see docs/FAULTS.md)"),
		Policy: flag.String("fault-policy", "reroute",
			"fault policy: reroute, drop, reroute-norepair or drop-norepair"),
	}
}
