// Package fairshare computes the exact max-min fair rate allocation for a
// set of sub-flows over capacitated links, by progressive filling
// (water-filling): repeatedly saturate the most contended link, freeze the
// rates of the sub-flows crossing it, and continue with the residual
// network.
//
// It exists as a cross-check of the paper's Equation-1 throughput model
// (internal/model), which *approximates* MPTCP behaviour by giving every
// sub-flow the reciprocal of its bottleneck link's static load. Max-min
// fairness is what an idealized congestion-controlled transport actually
// converges to; comparing the two quantifies the model's approximation
// error and — more importantly for the paper — confirms that the ordering
// of the path-selection schemes is not an artifact of the approximation.
package fairshare

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/traffic"
)

// PathProvider supplies the k candidate paths per ordered switch pair.
type PathProvider interface {
	Paths(s, d graph.NodeID) []graph.Path
}

// Allocation is the result of a max-min fair computation.
type Allocation struct {
	// SubflowRates[i][j] is the rate of flow i's j-th sub-flow, in units
	// of link capacity.
	SubflowRates [][]float64
	// FlowRates[i] is the total rate of flow i (sum over its sub-flows).
	FlowRates []float64
	// PerNode[t] is the sum of FlowRates over flows sourced at terminal t.
	PerNode []float64
	// MeanFlow and MeanNode aggregate like the model package.
	MeanFlow, MeanNode float64
	// Iterations is the number of filling rounds (== number of distinct
	// bottleneck levels).
	Iterations int
}

// subflow is one (flow, path) pair in the filling process.
type subflow struct {
	flow   int
	links  []int32
	frozen bool
	rate   float64
}

// Compute runs progressive filling for the pattern over the provider's
// path sets. Link capacities are 1 per directed switch link and per
// terminal injection/ejection channel, matching the model package's
// normalization, so results are directly comparable with
// model.Throughput.
func Compute(topo *jellyfish.Topology, db PathProvider, pat traffic.Pattern) (Allocation, error) {
	if pat.NumTerminals != topo.NumTerminals() {
		return Allocation{}, fmt.Errorf("fairshare: pattern has %d terminals, topology %d",
			pat.NumTerminals, topo.NumTerminals())
	}
	g := topo.G
	nLinks := g.NumDirectedLinks()
	nTerms := topo.NumTerminals()
	totalLinks := nLinks + 2*nTerms
	inj := func(t int) int32 { return int32(nLinks + t) }
	ej := func(t int) int32 { return int32(nLinks + nTerms + t) }

	// Build sub-flows.
	var subs []subflow
	flowSubs := make([][]int, len(pat.Flows))
	for fi, f := range pat.Flows {
		s, d := topo.SwitchOf(f.Src), topo.SwitchOf(f.Dst)
		var pathSets []graph.Path
		if s != d {
			pathSets = db.Paths(s, d)
		}
		if len(pathSets) == 0 {
			// Same-switch flow: single sub-flow over inject+eject.
			links := []int32{inj(f.Src), ej(f.Dst)}
			flowSubs[fi] = append(flowSubs[fi], len(subs))
			subs = append(subs, subflow{flow: fi, links: links})
			continue
		}
		for _, p := range pathSets {
			links := make([]int32, 0, p.Hops()+2)
			links = append(links, inj(f.Src))
			links = p.Links(g, links)
			links = append(links, ej(f.Dst))
			flowSubs[fi] = append(flowSubs[fi], len(subs))
			subs = append(subs, subflow{flow: fi, links: links})
		}
	}

	// Progressive filling.
	capacity := make([]float64, totalLinks)
	active := make([]int, totalLinks) // unfrozen sub-flows per link
	for i := range capacity {
		capacity[i] = 1
	}
	for si := range subs {
		for _, l := range subs[si].links {
			active[l]++
		}
	}
	remaining := len(subs)
	iterations := 0
	for remaining > 0 {
		iterations++
		if iterations > len(subs)+totalLinks+1 {
			return Allocation{}, fmt.Errorf("fairshare: filling did not converge")
		}
		// The binding link is the one minimizing residual/active.
		minShare := math.Inf(1)
		for l := 0; l < totalLinks; l++ {
			if active[l] == 0 {
				continue
			}
			share := capacity[l] / float64(active[l])
			if share < minShare {
				minShare = share
			}
		}
		if math.IsInf(minShare, 1) {
			break // no active links left (cannot happen with inj/ej links)
		}
		// Raise every unfrozen sub-flow by minShare, reduce capacities,
		// freeze the sub-flows crossing now-saturated links.
		for si := range subs {
			if !subs[si].frozen {
				subs[si].rate += minShare
			}
		}
		for l := 0; l < totalLinks; l++ {
			if active[l] > 0 {
				capacity[l] -= minShare * float64(active[l])
			}
		}
		const eps = 1e-12
		for l := 0; l < totalLinks; l++ {
			if active[l] > 0 && capacity[l] <= eps {
				// Freeze all unfrozen sub-flows through l.
				for si := range subs {
					if subs[si].frozen {
						continue
					}
					for _, sl := range subs[si].links {
						if int(sl) == l {
							subs[si].frozen = true
							remaining--
							for _, l2 := range subs[si].links {
								active[l2]--
							}
							break
						}
					}
				}
			}
		}
	}

	// Aggregate.
	alloc := Allocation{
		SubflowRates: make([][]float64, len(pat.Flows)),
		FlowRates:    make([]float64, len(pat.Flows)),
		PerNode:      make([]float64, nTerms),
		Iterations:   iterations,
	}
	for fi := range pat.Flows {
		rates := make([]float64, len(flowSubs[fi]))
		for j, si := range flowSubs[fi] {
			rates[j] = subs[si].rate
			alloc.FlowRates[fi] += subs[si].rate
		}
		alloc.SubflowRates[fi] = rates
	}
	var flowSum float64
	sends := make([]bool, nTerms)
	for fi, f := range pat.Flows {
		alloc.PerNode[f.Src] += alloc.FlowRates[fi]
		sends[f.Src] = true
		flowSum += alloc.FlowRates[fi]
	}
	if len(pat.Flows) > 0 {
		alloc.MeanFlow = flowSum / float64(len(pat.Flows))
	}
	var nodeSum float64
	senders := 0
	for t, s := range sends {
		if s {
			nodeSum += alloc.PerNode[t]
			senders++
		}
	}
	if senders > 0 {
		alloc.MeanNode = nodeSum / float64(senders)
	}
	return alloc, nil
}
