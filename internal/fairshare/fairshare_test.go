package fairshare

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/model"
	"repro/internal/paths"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

func twoSwitch(terminalsPer int) *jellyfish.Topology {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	return &jellyfish.Topology{G: b.Graph(), N: 2, X: terminalsPer + 1, Y: 1}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSingleFlowGetsFullRate(t *testing.T) {
	topo := twoSwitch(1)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 1}, 1, 1)
	pat := traffic.Pattern{NumTerminals: 2, Flows: []traffic.Flow{{Src: 0, Dst: 1}}}
	a, err := Compute(topo, db, pat)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a.FlowRates[0], 1) {
		t.Fatalf("rate = %v, want 1", a.FlowRates[0])
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	topo := twoSwitch(2)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 1}, 1, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	}}
	a, err := Compute(topo, db, pat)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a.FlowRates[0], 0.5) || !approx(a.FlowRates[1], 0.5) {
		t.Fatalf("rates = %v, want 0.5 each", a.FlowRates)
	}
}

func TestMaxMinBeatsBottleneckOnAsymmetry(t *testing.T) {
	// Three flows: two share the 0->1 link, the third rides 1->0 alone.
	// Max-min gives 0.5, 0.5, 1.0 — a strictly better allocation than any
	// uniform rate.
	topo := twoSwitch(2)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 1}, 1, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 0},
	}}
	a, err := Compute(topo, db, pat)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.5, 1.0}
	for i := range want {
		if !approx(a.FlowRates[i], want[i]) {
			t.Fatalf("rates = %v, want %v", a.FlowRates, want)
		}
	}
	if a.Iterations < 2 {
		t.Fatalf("iterations = %d, expected at least 2 bottleneck levels", a.Iterations)
	}
}

func TestSameSwitchFlow(t *testing.T) {
	topo := twoSwitch(2)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 1}, 1, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{{Src: 0, Dst: 1}}}
	a, err := Compute(topo, db, pat)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a.FlowRates[0], 1) {
		t.Fatalf("same-switch rate = %v", a.FlowRates[0])
	}
}

func jelly(t *testing.T) *jellyfish.Topology {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: 16, X: 9, Y: 6}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFeasibility(t *testing.T) {
	// The allocation must respect every link capacity: recompute per-link
	// usage from the sub-flow rates and check <= 1.
	topo := jelly(t)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 7, 0)
	pat := traffic.RandomShift(topo.NumTerminals(), xrand.New(9))
	a, err := Compute(topo, db, pat)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.G
	usage := make([]float64, g.NumDirectedLinks())
	injUse := make([]float64, topo.NumTerminals())
	ejUse := make([]float64, topo.NumTerminals())
	for fi, f := range pat.Flows {
		s, d := topo.SwitchOf(f.Src), topo.SwitchOf(f.Dst)
		ps := db.Paths(s, d)
		for j, rate := range a.SubflowRates[fi] {
			injUse[f.Src] += rate
			ejUse[f.Dst] += rate
			if s != d {
				p := ps[j]
				for h := 0; h+1 < len(p); h++ {
					usage[g.LinkID(p[h], p[h+1])] += rate
				}
			}
		}
	}
	for l, u := range usage {
		if u > 1+1e-6 {
			t.Fatalf("link %d overloaded: %v", l, u)
		}
	}
	for tm := range injUse {
		if injUse[tm] > 1+1e-6 || ejUse[tm] > 1+1e-6 {
			t.Fatalf("terminal %d channels overloaded: %v / %v", tm, injUse[tm], ejUse[tm])
		}
	}
	// Per-node throughput bounded by 1.
	for tm, v := range a.PerNode {
		if v > 1+1e-6 {
			t.Fatalf("node %d rate %v > 1", tm, v)
		}
	}
}

func TestAgreesWithModelOrdering(t *testing.T) {
	// The Eq.1 model approximates max-min fairness; the two must agree on
	// the ordering KSP <= rEDKSP (averaged over patterns) and be within a
	// reasonable band of each other per selector.
	topo := jelly(t)
	rng := xrand.New(21)
	for _, alg := range []ksp.Algorithm{ksp.KSP, ksp.REDKSP} {
		db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: alg, K: 4}, 3, 0)
		var mmSum, modelSum float64
		for i := 0; i < 4; i++ {
			pat := traffic.RandomShift(topo.NumTerminals(), rng)
			a, err := Compute(topo, db, pat)
			if err != nil {
				t.Fatal(err)
			}
			mmSum += a.MeanNode
			modelSum += model.Throughput(topo, db, pat, 0).MeanNode
		}
		ratio := mmSum / modelSum
		if ratio < 0.7 || ratio > 1.5 {
			t.Fatalf("%v: max-min %v vs model %v (ratio %v) — approximation broke",
				alg, mmSum/4, modelSum/4, ratio)
		}
	}
}

func TestMaxMinREDKSPBeatsKSP(t *testing.T) {
	// Ground truth check of the paper's ordering under exact fairness.
	topo := jelly(t)
	rng := xrand.New(33)
	dbK := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 4}, 3, 0)
	dbR := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 3, 0)
	var sumK, sumR float64
	for i := 0; i < 6; i++ {
		pat := traffic.RandomShift(topo.NumTerminals(), rng)
		aK, err := Compute(topo, dbK, pat)
		if err != nil {
			t.Fatal(err)
		}
		aR, err := Compute(topo, dbR, pat)
		if err != nil {
			t.Fatal(err)
		}
		sumK += aK.MeanNode
		sumR += aR.MeanNode
	}
	if sumR <= sumK {
		t.Fatalf("max-min fairness reverses the paper's ordering: rEDKSP %v <= KSP %v",
			sumR/6, sumK/6)
	}
}

func TestPatternMismatch(t *testing.T) {
	topo := twoSwitch(1)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 1}, 1, 1)
	if _, err := Compute(topo, db, traffic.Pattern{NumTerminals: 99}); err == nil {
		t.Fatal("terminal mismatch accepted")
	}
}
