package traffic

import (
	"fmt"

	"repro/internal/xrand"
)

// Additional synthetic patterns from the Booksim/interconnect literature.
// The paper evaluates permutation, shift, Random(X), all-to-all and
// uniform; these extras round out the simulator substrate so it covers the
// standard suite a Booksim replacement is expected to have.

// BitComplement sends from node i to node (n-1-i): the classic worst-ish
// case that forces traffic across the network's "middle".
func BitComplement(n int) Pattern {
	flows := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		d := n - 1 - i
		if d != i {
			flows = append(flows, Flow{Src: i, Dst: d})
		}
	}
	return Pattern{Name: "bit-complement", NumTerminals: n, Flows: flows}
}

// Transpose views nodes as an r x r matrix (r = floor(sqrt(n))) and sends
// (row, col) -> (col, row); nodes beyond r*r and diagonal entries stay
// silent. On Jellyfish this is simply another fixed permutation-like
// pattern, provided for cross-topology comparisons.
func Transpose(n int) Pattern {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	flows := make([]Flow, 0, r*r)
	for row := 0; row < r; row++ {
		for col := 0; col < r; col++ {
			src := row*r + col
			dst := col*r + row
			if src != dst {
				flows = append(flows, Flow{Src: src, Dst: dst})
			}
		}
	}
	return Pattern{Name: "transpose", NumTerminals: n, Flows: flows}
}

// Tornado sends from node i to node (i + ceil(n/2) - 1) mod n, the
// adversarial pattern for ring-like topologies; on an RRG it behaves like
// a fixed shift and is provided for completeness.
func Tornado(n int) Pattern {
	if n < 3 {
		panic(fmt.Sprintf("traffic: tornado needs n >= 3, got %d", n))
	}
	off := (n+1)/2 - 1
	if off < 1 {
		off = 1
	}
	flows := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		flows = append(flows, Flow{Src: i, Dst: (i + off) % n})
	}
	return Pattern{Name: "tornado", NumTerminals: n, Flows: flows}
}

// Hotspot sends all traffic from every node to h randomly chosen hotspot
// destinations (each sender picks one hotspot uniformly per packet via
// NewFixedSampler, or one fixed hotspot per sender here): the incast
// pattern that stresses ejection bandwidth.
func Hotspot(n, h int, rng *xrand.RNG) Pattern {
	if h < 1 || h >= n {
		panic(fmt.Sprintf("traffic: hotspot needs 1 <= h < n, got h=%d n=%d", h, n))
	}
	hot := rng.SampleK(n, h)
	flows := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		d := hot[rng.IntN(len(hot))]
		if d == i {
			d = hot[(indexOf(hot, d)+1)%len(hot)]
			if d == i { // single hotspot that is the sender itself
				continue
			}
		}
		flows = append(flows, Flow{Src: i, Dst: d})
	}
	return Pattern{Name: fmt.Sprintf("hotspot(%d)", h), NumTerminals: n, Flows: flows}
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// ByName builds a fixed pattern by name, for command-line use. Names:
// permutation, shift, random(X) (x param), all-to-all, bit-complement,
// transpose, tornado, hotspot (x param = hotspot count).
func ByName(name string, n, x int, rng *xrand.RNG) (Pattern, error) {
	switch name {
	case "permutation":
		return RandomPermutation(n, rng), nil
	case "shift":
		return RandomShift(n, rng), nil
	case "random", "random(X)":
		if x <= 0 {
			x = 50
		}
		return RandomX(n, x, rng), nil
	case "all-to-all":
		return AllToAll(n), nil
	case "bit-complement":
		return BitComplement(n), nil
	case "transpose":
		return Transpose(n), nil
	case "tornado":
		return Tornado(n), nil
	case "hotspot":
		if x <= 0 {
			x = 4
		}
		return Hotspot(n, x, rng), nil
	}
	return Pattern{}, fmt.Errorf("traffic: unknown pattern %q", name)
}
