// Package traffic generates the communication patterns the paper evaluates:
//
//   - random permutation — each terminal sends to at most one terminal and
//     receives from at most one;
//   - shift-N — terminal i sends to (i+N) mod #terminals, with random N;
//   - Random(X) — each terminal sends to X random distinct destinations;
//   - all-to-all — every terminal sends to every other terminal;
//   - uniform-random — per-packet uniformly random destinations (a sampler,
//     not a fixed flow set), used by the flit-level simulator;
//   - the four Stencil workloads (2DNN, 2DNNdiag, 3DNN, 3DNNdiag) with
//     linear or random process-to-node mapping and per-flow byte volumes,
//     used by the application simulator.
//
// Fixed patterns are value objects (Pattern); per-packet traffic is a
// Sampler. Both operate on terminal (compute node) ids; mapping terminals
// to switches is the topology's job.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Flow is one source→destination terminal communication.
type Flow struct {
	Src, Dst int
}

// Pattern is a fixed set of flows over n terminals.
type Pattern struct {
	Name         string
	NumTerminals int
	Flows        []Flow
}

// Validate checks that every flow endpoint is a valid terminal and no flow
// is a self-send.
func (p Pattern) Validate() error {
	for _, f := range p.Flows {
		if f.Src < 0 || f.Src >= p.NumTerminals || f.Dst < 0 || f.Dst >= p.NumTerminals {
			return fmt.Errorf("traffic: flow %v out of range [0,%d)", f, p.NumTerminals)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("traffic: self flow at terminal %d", f.Src)
		}
	}
	return nil
}

// DestOf returns the destinations terminal src sends to.
func (p Pattern) DestOf(src int) []int {
	var out []int
	for _, f := range p.Flows {
		if f.Src == src {
			out = append(out, f.Dst)
		}
	}
	return out
}

// RandomPermutation generates a random permutation pattern: a uniform
// permutation of the terminals with fixed points dropped, so each terminal
// sends to at most one other terminal and receives from at most one.
func RandomPermutation(n int, rng *xrand.RNG) Pattern {
	perm := rng.Perm(n)
	flows := make([]Flow, 0, n)
	for i, d := range perm {
		if i != d {
			flows = append(flows, Flow{Src: i, Dst: d})
		}
	}
	return Pattern{Name: "permutation", NumTerminals: n, Flows: flows}
}

// Shift generates the shift-N pattern: terminal i sends to (i+shift) mod n.
// shift must be in [1, n).
func Shift(n, shift int) Pattern {
	if shift <= 0 || shift >= n {
		panic(fmt.Sprintf("traffic: shift %d out of range [1,%d)", shift, n))
	}
	flows := make([]Flow, n)
	for i := 0; i < n; i++ {
		flows[i] = Flow{Src: i, Dst: (i + shift) % n}
	}
	return Pattern{Name: fmt.Sprintf("shift-%d", shift), NumTerminals: n, Flows: flows}
}

// RandomShift generates shift-N with N drawn uniformly from [1, n).
func RandomShift(n int, rng *xrand.RNG) Pattern {
	return Shift(n, 1+rng.IntN(n-1))
}

// RandomX generates the Random(X) pattern: every terminal sends to x
// distinct random destinations other than itself.
func RandomX(n, x int, rng *xrand.RNG) Pattern {
	if x < 1 || x >= n {
		panic(fmt.Sprintf("traffic: Random(%d) needs 1 <= X < n=%d", x, n))
	}
	flows := make([]Flow, 0, n*x)
	for s := 0; s < n; s++ {
		for _, d := range rng.SampleK(n-1, x) {
			if d >= s {
				d++ // skip self
			}
			flows = append(flows, Flow{Src: s, Dst: d})
		}
	}
	return Pattern{Name: fmt.Sprintf("random(%d)", x), NumTerminals: n, Flows: flows}
}

// AllToAll generates the all-to-all pattern over n terminals.
func AllToAll(n int) Pattern {
	flows := make([]Flow, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				flows = append(flows, Flow{Src: s, Dst: d})
			}
		}
	}
	return Pattern{Name: "all-to-all", NumTerminals: n, Flows: flows}
}

// Sampler draws per-packet destinations, the form of traffic the
// cycle-level simulator injects.
type Sampler interface {
	// Name identifies the traffic for reports.
	Name() string
	// Dest returns the destination terminal for a packet injected at the
	// src terminal, or ok=false if src never sends (e.g. a permutation
	// fixed point).
	Dest(src int, rng *xrand.RNG) (dst int, ok bool)
}

// Uniform is the uniform-random Sampler over n terminals.
type Uniform struct{ N int }

// Name implements Sampler.
func (u Uniform) Name() string { return "uniform" }

// Dest implements Sampler: a uniform destination different from src.
func (u Uniform) Dest(src int, rng *xrand.RNG) (int, bool) {
	if u.N <= 1 {
		return 0, false
	}
	return rng.IntNExcept(u.N, src), true
}

// FixedSampler adapts a fixed Pattern into a Sampler: each packet from src
// goes to one of src's pattern destinations (uniformly when there are
// several, as in Random(X)).
type FixedSampler struct {
	name  string
	dests [][]int
}

// NewFixedSampler builds a Sampler from p.
func NewFixedSampler(p Pattern) *FixedSampler {
	dests := make([][]int, p.NumTerminals)
	for _, f := range p.Flows {
		dests[f.Src] = append(dests[f.Src], f.Dst)
	}
	return &FixedSampler{name: p.Name, dests: dests}
}

// Name implements Sampler.
func (s *FixedSampler) Name() string { return s.name }

// Dest implements Sampler.
func (s *FixedSampler) Dest(src int, rng *xrand.RNG) (int, bool) {
	d := s.dests[src]
	switch len(d) {
	case 0:
		return 0, false
	case 1:
		return d[0], true
	default:
		return d[rng.IntN(len(d))], true
	}
}

// --- Stencil workloads -----------------------------------------------------

// SizedFlow is a flow with a byte volume, used by the application-level
// simulator.
type SizedFlow struct {
	Src, Dst int
	Bytes    int64
}

// Workload is a rank-level communication phase: every rank sends
// TotalBytes split evenly across its stencil neighbours.
type Workload struct {
	Name     string
	NumRanks int
	Flows    []SizedFlow
}

// StencilKind enumerates the paper's four CODES workloads.
type StencilKind int

const (
	// Stencil2DNN is the 2D nearest-neighbour pattern (4 neighbours).
	Stencil2DNN StencilKind = iota
	// Stencil2DNNDiag adds the diagonals (8 neighbours).
	Stencil2DNNDiag
	// Stencil3DNN is the 3D nearest-neighbour pattern (6 neighbours).
	Stencil3DNN
	// Stencil3DNNDiag adds all 3D diagonals (26 neighbours).
	Stencil3DNNDiag
)

// String returns the paper's name for the stencil.
func (k StencilKind) String() string {
	switch k {
	case Stencil2DNN:
		return "2DNN"
	case Stencil2DNNDiag:
		return "2DNNdiag"
	case Stencil3DNN:
		return "3DNN"
	case Stencil3DNNDiag:
		return "3DNNdiag"
	}
	return fmt.Sprintf("StencilKind(%d)", int(k))
}

// StencilKinds lists the four workloads in the paper's table order.
var StencilKinds = []StencilKind{Stencil2DNN, Stencil2DNNDiag, Stencil3DNN, Stencil3DNNDiag}

// StencilByName resolves a stencil name.
func StencilByName(name string) (StencilKind, error) {
	for _, k := range StencilKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown stencil %q", name)
}

// Dims2D factors n into the most square a×b grid (a >= b). It panics if n
// has no nontrivial factorization... which cannot happen: 1×n always works.
func Dims2D(n int) (a, b int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return n / best, best
}

// Dims3D factors n into the most cubic a×b×c box (a >= b >= c).
func Dims3D(n int) (a, b, c int) {
	bestScore := math.MaxFloat64
	a, b, c = n, 1, 1
	for x := 1; x*x*x <= n; x++ {
		if n%x != 0 {
			continue
		}
		rem := n / x
		for y := x; y*y <= rem; y++ {
			if rem%y != 0 {
				continue
			}
			z := rem / y
			// Score by aspect ratio: lower is more cubic.
			score := float64(z) / float64(x)
			if score < bestScore {
				bestScore = score
				dims := []int{x, y, z}
				sort.Sort(sort.Reverse(sort.IntSlice(dims)))
				a, b, c = dims[0], dims[1], dims[2]
			}
		}
	}
	return a, b, c
}

// StencilConfig parameterizes stencil workload generation.
type StencilConfig struct {
	// Kind selects the stencil.
	Kind StencilKind
	// Ranks is the number of MPI ranks; it must equal the network's
	// terminal count in the paper's methodology.
	Ranks int
	// TotalBytes is the number of bytes each rank sends, split evenly
	// across its neighbours (the paper uses 15 MB).
	TotalBytes int64
}

// DefaultTotalBytes is the paper's per-rank send volume: 15 MB.
const DefaultTotalBytes = 15 * 1000 * 1000

// Stencil generates the workload: a torus-wrapped nearest-neighbour
// exchange over a balanced process grid, each rank sending
// TotalBytes/#neighbours to each neighbour.
func Stencil(cfg StencilConfig) Workload {
	if cfg.Ranks < 2 {
		panic("traffic: stencil needs at least 2 ranks")
	}
	bytes := cfg.TotalBytes
	if bytes == 0 {
		bytes = DefaultTotalBytes
	}
	var flows []SizedFlow
	switch cfg.Kind {
	case Stencil2DNN, Stencil2DNNDiag:
		nx, ny := Dims2D(cfg.Ranks)
		diag := cfg.Kind == Stencil2DNNDiag
		flows = stencil2D(nx, ny, diag, bytes)
	case Stencil3DNN, Stencil3DNNDiag:
		nx, ny, nz := Dims3D(cfg.Ranks)
		diag := cfg.Kind == Stencil3DNNDiag
		flows = stencil3D(nx, ny, nz, diag, bytes)
	default:
		panic(fmt.Sprintf("traffic: unknown stencil kind %v", cfg.Kind))
	}
	return Workload{Name: cfg.Kind.String(), NumRanks: cfg.Ranks, Flows: flows}
}

func stencil2D(nx, ny int, diag bool, totalBytes int64) []SizedFlow {
	rank := func(x, y int) int { return ((x+nx)%nx)*ny + (y+ny)%ny }
	var offs [][2]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if !diag && dx != 0 && dy != 0 {
				continue
			}
			offs = append(offs, [2]int{dx, dy})
		}
	}
	flows := make([]SizedFlow, 0, nx*ny*len(offs))
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			src := rank(x, y)
			dests := uniqueDests(src, func(yield func(int)) {
				for _, o := range offs {
					yield(rank(x+o[0], y+o[1]))
				}
			})
			per := totalBytes / int64(len(dests))
			for _, d := range dests {
				flows = append(flows, SizedFlow{Src: src, Dst: d, Bytes: per})
			}
		}
	}
	return flows
}

func stencil3D(nx, ny, nz int, diag bool, totalBytes int64) []SizedFlow {
	rank := func(x, y, z int) int {
		return (((x+nx)%nx)*ny+(y+ny)%ny)*nz + (z+nz)%nz
	}
	var offs [][3]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				nonzero := 0
				for _, d := range []int{dx, dy, dz} {
					if d != 0 {
						nonzero++
					}
				}
				if !diag && nonzero != 1 {
					continue
				}
				offs = append(offs, [3]int{dx, dy, dz})
			}
		}
	}
	flows := make([]SizedFlow, 0, nx*ny*nz*len(offs))
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				src := rank(x, y, z)
				dests := uniqueDests(src, func(yield func(int)) {
					for _, o := range offs {
						yield(rank(x+o[0], y+o[1], z+o[2]))
					}
				})
				per := totalBytes / int64(len(dests))
				for _, d := range dests {
					flows = append(flows, SizedFlow{Src: src, Dst: d, Bytes: per})
				}
			}
		}
	}
	return flows
}

// uniqueDests collects distinct destinations excluding self: on small grid
// dimensions torus wraparound can alias two offsets to the same rank (or
// back to the sender).
func uniqueDests(src int, gen func(yield func(int))) []int {
	seen := map[int]struct{}{}
	var out []int
	gen(func(d int) {
		if d == src {
			return
		}
		if _, dup := seen[d]; dup {
			return
		}
		seen[d] = struct{}{}
		out = append(out, d)
	})
	sort.Ints(out)
	return out
}

// --- Process-to-node mappings -----------------------------------------------

// Mapping assigns rank r to terminal Mapping[r].
type Mapping []int

// LinearMapping maps rank r to terminal r.
func LinearMapping(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// RandomMapping maps ranks to terminals by a uniform permutation.
func RandomMapping(n int, rng *xrand.RNG) Mapping {
	return Mapping(rng.Perm(n))
}

// Apply translates the workload's rank-level flows to terminal-level flows
// under the mapping. It panics if the mapping is shorter than the rank
// count.
func (w Workload) Apply(m Mapping) []SizedFlow {
	if len(m) < w.NumRanks {
		panic(fmt.Sprintf("traffic: mapping covers %d ranks, workload has %d", len(m), w.NumRanks))
	}
	out := make([]SizedFlow, len(w.Flows))
	for i, f := range w.Flows {
		out[i] = SizedFlow{Src: m[f.Src], Dst: m[f.Dst], Bytes: f.Bytes}
	}
	return out
}

// TotalBytes sums the byte volume of all flows.
func (w Workload) TotalBytes() int64 {
	var sum int64
	for _, f := range w.Flows {
		sum += f.Bytes
	}
	return sum
}
