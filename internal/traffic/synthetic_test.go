package traffic

import (
	"testing"

	"repro/internal/xrand"
)

func TestBitComplement(t *testing.T) {
	p := BitComplement(8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 8 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	for _, f := range p.Flows {
		if f.Dst != 7-f.Src {
			t.Fatalf("bad flow %v", f)
		}
	}
	// Odd n: the middle node is its own complement and stays silent.
	p = BitComplement(7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 6 {
		t.Fatalf("odd-n flows = %d", len(p.Flows))
	}
}

func TestTranspose(t *testing.T) {
	p := Transpose(16) // 4x4
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 16 cells minus 4 diagonal entries.
	if len(p.Flows) != 12 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	// (row 1, col 2) = node 6 -> (row 2, col 1) = node 9.
	found := false
	for _, f := range p.Flows {
		if f.Src == 6 && f.Dst == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("transpose mapping wrong")
	}
	// Non-square n uses the largest embedded square.
	p = Transpose(20)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Flows {
		if f.Src >= 16 || f.Dst >= 16 {
			t.Fatalf("flow outside the 4x4 square: %v", f)
		}
	}
}

func TestTornado(t *testing.T) {
	p := Tornado(10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 10 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	// Offset is (n+1)/2 - 1 = 4 for n = 10.
	for _, f := range p.Flows {
		if f.Dst != (f.Src+4)%10 {
			t.Fatalf("bad tornado flow %v", f)
		}
	}
	mustPanicT(t, func() { Tornado(2) })
}

func TestHotspot(t *testing.T) {
	rng := xrand.New(5)
	p := Hotspot(50, 3, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dests := map[int]bool{}
	for _, f := range p.Flows {
		dests[f.Dst] = true
	}
	if len(dests) > 3 {
		t.Fatalf("hotspot used %d destinations, want <= 3", len(dests))
	}
	mustPanicT(t, func() { Hotspot(10, 0, rng) })
	mustPanicT(t, func() { Hotspot(10, 10, rng) })
}

func TestPatternByName(t *testing.T) {
	rng := xrand.New(7)
	for _, name := range []string{
		"permutation", "shift", "random", "all-to-all",
		"bit-complement", "transpose", "tornado", "hotspot",
	} {
		p, err := ByName(name, 30, 4, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Flows) == 0 {
			t.Fatalf("%s: no flows", name)
		}
	}
	if _, err := ByName("mystery", 10, 1, rng); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func mustPanicT(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
