package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestRandomPermutation(t *testing.T) {
	rng := xrand.New(1)
	p := RandomPermutation(100, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sendCount := map[int]int{}
	recvCount := map[int]int{}
	for _, f := range p.Flows {
		sendCount[f.Src]++
		recvCount[f.Dst]++
	}
	for term, c := range sendCount {
		if c > 1 {
			t.Fatalf("terminal %d sends %d times", term, c)
		}
	}
	for term, c := range recvCount {
		if c > 1 {
			t.Fatalf("terminal %d receives %d times", term, c)
		}
	}
	// A uniform permutation of 100 has about 1 fixed point; almost all
	// terminals communicate.
	if len(p.Flows) < 90 {
		t.Fatalf("only %d flows", len(p.Flows))
	}
}

func TestShift(t *testing.T) {
	p := Shift(10, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 10 {
		t.Fatalf("flows = %d", len(p.Flows))
	}
	for _, f := range p.Flows {
		if f.Dst != (f.Src+3)%10 {
			t.Fatalf("bad shift flow %v", f)
		}
	}
}

func TestShiftPanicsOnBadN(t *testing.T) {
	for _, bad := range []int{0, 10, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Shift(10,%d) did not panic", bad)
				}
			}()
			Shift(10, bad)
		}()
	}
}

func TestRandomShiftRange(t *testing.T) {
	rng := xrand.New(2)
	for i := 0; i < 50; i++ {
		p := RandomShift(17, rng)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(p.Flows) != 17 {
			t.Fatalf("flows = %d", len(p.Flows))
		}
	}
}

func TestRandomX(t *testing.T) {
	rng := xrand.New(3)
	p := RandomX(50, 5, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	perSrc := map[int]map[int]bool{}
	for _, f := range p.Flows {
		if perSrc[f.Src] == nil {
			perSrc[f.Src] = map[int]bool{}
		}
		if perSrc[f.Src][f.Dst] {
			t.Fatalf("duplicate destination for %d", f.Src)
		}
		perSrc[f.Src][f.Dst] = true
	}
	for s := 0; s < 50; s++ {
		if len(perSrc[s]) != 5 {
			t.Fatalf("terminal %d has %d destinations, want 5", s, len(perSrc[s]))
		}
	}
}

func TestAllToAll(t *testing.T) {
	p := AllToAll(6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 30 {
		t.Fatalf("flows = %d, want 30", len(p.Flows))
	}
}

func TestUniformSampler(t *testing.T) {
	u := Uniform{N: 10}
	rng := xrand.New(4)
	counts := map[int]int{}
	for i := 0; i < 9000; i++ {
		d, ok := u.Dest(3, rng)
		if !ok || d == 3 || d < 0 || d >= 10 {
			t.Fatalf("bad dest %d ok=%v", d, ok)
		}
		counts[d]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform sampler skewed at %d: %d", d, c)
		}
	}
	if _, ok := (Uniform{N: 1}).Dest(0, rng); ok {
		t.Fatal("single-terminal uniform should not send")
	}
}

func TestFixedSampler(t *testing.T) {
	p := Shift(8, 2)
	s := NewFixedSampler(p)
	rng := xrand.New(5)
	for src := 0; src < 8; src++ {
		d, ok := s.Dest(src, rng)
		if !ok || d != (src+2)%8 {
			t.Fatalf("src %d -> %d ok=%v", src, d, ok)
		}
	}
	// Fixed point in a permutation: no destination.
	perm := Pattern{Name: "perm", NumTerminals: 3, Flows: []Flow{{0, 1}}}
	fs := NewFixedSampler(perm)
	if _, ok := fs.Dest(2, rng); ok {
		t.Fatal("terminal without flows returned a destination")
	}
	// Multi-destination source samples all destinations.
	multi := NewFixedSampler(Pattern{NumTerminals: 4, Flows: []Flow{{0, 1}, {0, 2}, {0, 3}}})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		d, _ := multi.Dest(0, rng)
		seen[d] = true
	}
	if len(seen) != 3 {
		t.Fatalf("multi-dest sampler covered %d destinations", len(seen))
	}
}

func TestDims2D(t *testing.T) {
	cases := []struct{ n, a, b int }{
		{3600, 60, 60},
		{288, 18, 16},
		{12, 4, 3},
		{7, 7, 1},
	}
	for _, c := range cases {
		a, b := Dims2D(c.n)
		if a != c.a || b != c.b {
			t.Errorf("Dims2D(%d) = (%d,%d), want (%d,%d)", c.n, a, b, c.a, c.b)
		}
		if a*b != c.n {
			t.Errorf("Dims2D(%d) does not factor", c.n)
		}
	}
}

func TestDims3D(t *testing.T) {
	// The paper uses 16x15x15 for 3600 ranks.
	a, b, c := Dims3D(3600)
	if a != 16 || b != 15 || c != 15 {
		t.Fatalf("Dims3D(3600) = (%d,%d,%d), want (16,15,15)", a, b, c)
	}
	f := func(raw uint16) bool {
		n := int(raw%2000) + 2
		x, y, z := Dims3D(n)
		return x*y*z == n && x >= y && y >= z && z >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStencil2DNN(t *testing.T) {
	w := Stencil(StencilConfig{Kind: Stencil2DNN, Ranks: 36, TotalBytes: 1000})
	// 6x6 grid, 4 neighbours each, all distinct.
	if len(w.Flows) != 36*4 {
		t.Fatalf("flows = %d, want 144", len(w.Flows))
	}
	for _, f := range w.Flows {
		if f.Bytes != 250 {
			t.Fatalf("flow bytes = %d, want 250", f.Bytes)
		}
		if f.Src == f.Dst {
			t.Fatalf("self flow %v", f)
		}
	}
	// Symmetry: every flow has a reverse (stencil exchange is symmetric).
	set := map[[2]int]bool{}
	for _, f := range w.Flows {
		set[[2]int{f.Src, f.Dst}] = true
	}
	for _, f := range w.Flows {
		if !set[[2]int{f.Dst, f.Src}] {
			t.Fatalf("flow %v has no reverse", f)
		}
	}
}

func TestStencil2DNNdiag(t *testing.T) {
	w := Stencil(StencilConfig{Kind: Stencil2DNNDiag, Ranks: 36, TotalBytes: 800})
	if len(w.Flows) != 36*8 {
		t.Fatalf("flows = %d, want 288", len(w.Flows))
	}
	if w.Flows[0].Bytes != 100 {
		t.Fatalf("bytes = %d, want 100", w.Flows[0].Bytes)
	}
}

func TestStencil3DNN(t *testing.T) {
	w := Stencil(StencilConfig{Kind: Stencil3DNN, Ranks: 27, TotalBytes: 600})
	// 3x3x3 torus: +1 and -1 in each dimension alias (3-cycle), still 6
	// distinct neighbours per rank.
	if w.NumRanks != 27 {
		t.Fatalf("ranks = %d", w.NumRanks)
	}
	perRank := map[int]int{}
	for _, f := range w.Flows {
		perRank[f.Src]++
	}
	for r, c := range perRank {
		if c != 6 {
			t.Fatalf("rank %d has %d neighbours, want 6", r, c)
		}
	}
}

func TestStencil3DNNdiag(t *testing.T) {
	w := Stencil(StencilConfig{Kind: Stencil3DNNDiag, Ranks: 64, TotalBytes: 2600})
	// 4x4x4: all 26 neighbours distinct.
	perRank := map[int]int{}
	for _, f := range w.Flows {
		perRank[f.Src]++
	}
	for r, c := range perRank {
		if c != 26 {
			t.Fatalf("rank %d has %d neighbours, want 26", r, c)
		}
	}
	if w.Flows[0].Bytes != 100 {
		t.Fatalf("bytes = %d, want 100", w.Flows[0].Bytes)
	}
}

func TestStencilWraparoundAliasing(t *testing.T) {
	// 2x2 grid: +1 and -1 alias in both dimensions; each rank has only 2
	// distinct neighbours and bytes split between them.
	w := Stencil(StencilConfig{Kind: Stencil2DNN, Ranks: 4, TotalBytes: 1000})
	perRank := map[int]int{}
	for _, f := range w.Flows {
		perRank[f.Src]++
		if f.Bytes != 500 {
			t.Fatalf("bytes = %d, want 500", f.Bytes)
		}
	}
	for r, c := range perRank {
		if c != 2 {
			t.Fatalf("rank %d has %d neighbours, want 2", r, c)
		}
	}
}

func TestDefaultTotalBytes(t *testing.T) {
	w := Stencil(StencilConfig{Kind: Stencil2DNN, Ranks: 16})
	var perSrc int64
	for _, f := range w.Flows {
		if f.Src == 0 {
			perSrc += f.Bytes
		}
	}
	if perSrc != DefaultTotalBytes {
		t.Fatalf("rank 0 sends %d bytes, want %d", perSrc, DefaultTotalBytes)
	}
}

func TestMappings(t *testing.T) {
	lin := LinearMapping(5)
	for i, v := range lin {
		if v != i {
			t.Fatalf("linear mapping not identity: %v", lin)
		}
	}
	rng := xrand.New(6)
	rm := RandomMapping(100, rng)
	seen := make([]bool, 100)
	for _, v := range rm {
		if seen[v] {
			t.Fatal("random mapping not a permutation")
		}
		seen[v] = true
	}
}

func TestWorkloadApply(t *testing.T) {
	w := Workload{Name: "x", NumRanks: 3, Flows: []SizedFlow{{0, 1, 10}, {1, 2, 20}}}
	m := Mapping{5, 6, 7}
	out := w.Apply(m)
	if out[0] != (SizedFlow{5, 6, 10}) || out[1] != (SizedFlow{6, 7, 20}) {
		t.Fatalf("apply = %v", out)
	}
}

func TestWorkloadTotalBytes(t *testing.T) {
	w := Stencil(StencilConfig{Kind: Stencil2DNN, Ranks: 16, TotalBytes: 1000})
	if w.TotalBytes() != 16*1000 {
		t.Fatalf("total = %d", w.TotalBytes())
	}
}

func TestStencilByName(t *testing.T) {
	for _, k := range StencilKinds {
		got, err := StencilByName(k.String())
		if err != nil || got != k {
			t.Errorf("StencilByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := StencilByName("4DNN"); err == nil {
		t.Error("bogus stencil accepted")
	}
}

func TestPatternValidateCatchesBadFlows(t *testing.T) {
	bad := Pattern{NumTerminals: 3, Flows: []Flow{{0, 3}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range flow accepted")
	}
	self := Pattern{NumTerminals: 3, Flows: []Flow{{1, 1}}}
	if self.Validate() == nil {
		t.Fatal("self flow accepted")
	}
}

func TestDestOf(t *testing.T) {
	p := Pattern{NumTerminals: 4, Flows: []Flow{{0, 1}, {0, 2}, {3, 0}}}
	d := p.DestOf(0)
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("DestOf(0) = %v", d)
	}
	if p.DestOf(1) != nil {
		t.Fatal("DestOf(1) should be empty")
	}
}
