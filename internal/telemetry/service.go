package telemetry

import "sync/atomic"

// ServiceCounters aggregates the resilience telemetry of a serving
// process (jfserve, internal/serve): how often it refused work to stay
// alive and how often it survived a failure that would otherwise have
// taken it down. All fields are lock-free atomics, updated from
// per-connection goroutines and read by the health endpoint; like the
// rest of this package, recording never blocks the hot path.
type ServiceCounters struct {
	// Shed counts requests refused with the overloaded error code
	// because the in-flight limit was reached.
	Shed atomic.Int64
	// ConnShed counts connections refused at the connection limit (the
	// client sees one overloaded error frame, then the close).
	ConnShed atomic.Int64
	// Panics counts recovered handler panics. Each one poisoned exactly
	// one connection; the process survived.
	Panics atomic.Int64
	// HandlerTimeouts counts requests answered with the timeout error
	// code because the handler exceeded its deadline.
	HandlerTimeouts atomic.Int64
	// IOTimeouts counts connections closed because a read or write
	// deadline expired (slow-loris senders, clients not draining
	// responses).
	IOTimeouts atomic.Int64
}

// ServiceSnapshot is a point-in-time copy of a ServiceCounters, in
// plain int64s for marshaling.
type ServiceSnapshot struct {
	Shed            int64
	ConnShed        int64
	Panics          int64
	HandlerTimeouts int64
	IOTimeouts      int64
}

// Snapshot returns the current counter values. The fields are read
// independently, so a snapshot taken under concurrent updates is
// per-field consistent, not globally atomic — fine for health reporting.
func (c *ServiceCounters) Snapshot() ServiceSnapshot {
	return ServiceSnapshot{
		Shed:            c.Shed.Load(),
		ConnShed:        c.ConnShed.Load(),
		Panics:          c.Panics.Load(),
		HandlerTimeouts: c.HandlerTimeouts.Load(),
		IOTimeouts:      c.IOTimeouts.Load(),
	}
}
