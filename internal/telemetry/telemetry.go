// Package telemetry instruments the flit-level and application-level
// simulators with the observability the end-of-run Result structs cannot
// provide: where congestion forms, which links saturate under a given
// selector/mechanism pair, and how queue depths evolve toward saturation.
//
// The building blocks are deliberately simple and lock-free:
//
//   - CounterVec — a fixed-length vector of atomic counters (per-link
//     flits forwarded, stall cycles, queue-depth sums and peaks);
//   - Histogram — fixed-width buckets plus an overflow bucket, with
//     percentile extraction (p50/p90/p99);
//   - Collector — bundles the vectors and histograms for one run and
//     takes periodic window snapshots, so the approach to saturation is
//     visible over time, not just in aggregate.
//
// All updates use atomic operations, so a Collector may be shared across
// goroutines (e.g. sub-simulations run under par.For). The simulators
// guard every hook behind a nil check: a run with no Collector attached
// pays nothing and allocates nothing.
//
// Export (export.go) writes links.csv, latency_hist.json, queue_hist.json,
// windows.csv, choices.csv and a manifest.json recording the exact run
// configuration, so any figure built from the files can be traced back to
// the topology parameters, selector, mechanism and seed that produced it.
// docs/TELEMETRY.md documents every column and bucket boundary.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CounterVec is a fixed-length vector of independently updatable
// counters. All methods are safe for concurrent use.
type CounterVec struct {
	v []atomic.Int64
}

// NewCounterVec returns a vector of n zeroed counters.
func NewCounterVec(n int) *CounterVec {
	return &CounterVec{v: make([]atomic.Int64, n)}
}

// Len returns the number of counters.
func (c *CounterVec) Len() int { return len(c.v) }

// Inc adds 1 to counter i.
func (c *CounterVec) Inc(i int) { c.v[i].Add(1) }

// Add adds d to counter i.
func (c *CounterVec) Add(i int, d int64) { c.v[i].Add(d) }

// Get returns the current value of counter i.
func (c *CounterVec) Get(i int) int64 { return c.v[i].Load() }

// SetMax raises counter i to x if x is larger (an atomic running
// maximum).
func (c *CounterVec) SetMax(i int, x int64) {
	for {
		cur := c.v[i].Load()
		if x <= cur || c.v[i].CompareAndSwap(cur, x) {
			return
		}
	}
}

// Total returns the sum over all counters.
func (c *CounterVec) Total() int64 {
	var t int64
	for i := range c.v {
		t += c.v[i].Load()
	}
	return t
}

// Link kinds, as exported in the "kind" column of links.csv.
const (
	// KindNet is a switch-to-switch network link.
	KindNet = "net"
	// KindInject is a terminal's injection link (terminal → switch).
	KindInject = "inj"
	// KindEject is a terminal's ejection link (switch → terminal).
	KindEject = "ej"
)

// LinkInfo labels one instrumented link. For network links Src and Dst
// are switch ids; for injection links Src is the terminal and Dst its
// switch; for ejection links Src is the switch and Dst the terminal.
type LinkInfo struct {
	Kind string
	Src  int
	Dst  int
}

// Config sizes a Collector for one simulation run. The simulator — not
// the caller — fills it in via Collector.Init, because only the simulator
// knows its link layout and histogram caps.
type Config struct {
	// Links labels every instrumented link, in link-id order.
	Links []LinkInfo
	// LatencyCap is the highest tracked packet latency in cycles;
	// observations above it land in the overflow bucket. 0 disables the
	// latency histogram (the application simulator does not track
	// per-packet latency).
	LatencyCap int64
	// QueueCap is the highest tracked per-link queue depth; deeper
	// samples land in the overflow bucket. 0 disables queue sampling.
	QueueCap int64
	// PathChoices sizes the per-candidate-index choice counter (how
	// often the mechanism picked candidate path i). 0 disables it;
	// indices at or above the size are clamped into the last counter.
	PathChoices int
}

// Window is one periodic snapshot of the run's cumulative totals. Deltas
// between consecutive windows give per-window rates; export.go computes
// them when writing windows.csv.
type Window struct {
	// Cycle is the simulation clock at the snapshot.
	Cycle int64
	// Flits is the cumulative flits forwarded over all links.
	Flits int64
	// Delivered is the cumulative measured deliveries (latency
	// observations).
	Delivered int64
	// LatencySum is the cumulative sum of observed latencies.
	LatencySum int64
	// FaultEvents is the cumulative count of applied link-down/link-up
	// events; Drops, Reroutes and Repairs are the cumulative fault
	// consequences (packets discarded, packets moved to a surviving
	// path, path-set recomputations).
	FaultEvents int64
	Drops       int64
	Reroutes    int64
	Repairs     int64
	// DownLinks is the instantaneous number of failed links at the
	// snapshot (a gauge, not a cumulative total).
	DownLinks int64
}

// Collector gathers one run's telemetry. Create it empty with
// NewCollector, hand it to a simulator (which calls Init), and export
// after the run. All recording methods are lock-free; Snapshot takes a
// mutex but is called only at window boundaries.
type Collector struct {
	links []LinkInfo

	// Forwarded counts flits sent per link; Stalled counts cycles a
	// link's head flit was blocked by downstream backpressure (for
	// injection links: cycles the terminal's source queue head could not
	// enter the network).
	Forwarded *CounterVec
	Stalled   *CounterVec
	// QueueSum accumulates each link's committed occupancy once per
	// sampled cycle; QueuePeak tracks its maximum. Average depth is
	// QueueSum / Cycles.
	QueueSum  *CounterVec
	QueuePeak *CounterVec

	// Latency is the per-packet latency histogram (nil when disabled).
	Latency *Histogram
	// Queue is the queue-depth distribution over all (link, sampled
	// cycle) pairs (nil when disabled).
	Queue *Histogram
	// PathChoice counts, per candidate index, how often the routing
	// mechanism picked that candidate (nil when disabled).
	PathChoice *CounterVec

	cycles atomic.Int64

	// Fault-injection telemetry (see internal/faults). Plain scalar
	// atomics rather than vectors, so they work even on a collector
	// whose Init has not run yet.
	faultEvents   atomic.Int64
	faultDrops    atomic.Int64
	faultReroutes atomic.Int64
	faultRepairs  atomic.Int64
	linksDown     atomic.Int64 // gauge: currently failed links

	mu      sync.Mutex
	windows []Window
}

// NewCollector returns an empty Collector ready to be attached to a
// simulator configuration.
func NewCollector() *Collector { return &Collector{} }

// Init sizes the collector. The simulator calls it exactly once at
// construction; a second Init panics, because merging two runs into one
// collector would silently corrupt both.
func (c *Collector) Init(cfg Config) {
	if c.Ready() {
		panic("telemetry: Collector already initialized")
	}
	n := len(cfg.Links)
	c.links = cfg.Links
	c.Forwarded = NewCounterVec(n)
	c.Stalled = NewCounterVec(n)
	c.QueueSum = NewCounterVec(n)
	c.QueuePeak = NewCounterVec(n)
	if cfg.LatencyCap > 0 {
		c.Latency = NewHistogram(1, int(cfg.LatencyCap))
	}
	if cfg.QueueCap > 0 {
		c.Queue = NewHistogram(1, int(cfg.QueueCap))
	}
	if cfg.PathChoices > 0 {
		c.PathChoice = NewCounterVec(cfg.PathChoices)
	}
}

// Ready reports whether Init has run.
func (c *Collector) Ready() bool { return c.Forwarded != nil }

// Links returns the link labels, in link-id order.
func (c *Collector) Links() []LinkInfo { return c.links }

// Cycles returns the number of sampled cycles.
func (c *Collector) Cycles() int64 { return c.cycles.Load() }

// CountForward records one flit sent on the link.
func (c *Collector) CountForward(link int32) { c.Forwarded.Inc(int(link)) }

// CountStall records one blocked cycle on the link.
func (c *Collector) CountStall(link int32) { c.Stalled.Inc(int(link)) }

// ObserveLatency records one delivered packet's latency in cycles.
func (c *Collector) ObserveLatency(lat int64) { c.Latency.Observe(lat) }

// CountChoice records that the routing mechanism picked candidate path
// idx; indices beyond the configured size clamp into the last counter.
func (c *Collector) CountChoice(idx int) {
	if idx >= c.PathChoice.Len() {
		idx = c.PathChoice.Len() - 1
	}
	c.PathChoice.Inc(idx)
}

// CountFaultEvents records n applied link-down/link-up events.
func (c *Collector) CountFaultEvents(n int64) { c.faultEvents.Add(n) }

// CountFaultDrop records one packet discarded because of a link failure.
func (c *Collector) CountFaultDrop() { c.faultDrops.Add(1) }

// CountFaultReroute records one packet requeued onto a surviving path.
func (c *Collector) CountFaultReroute() { c.faultReroutes.Add(1) }

// CountFaultRepair records one path-set recomputation on the
// failed-edge-filtered graph.
func (c *Collector) CountFaultRepair() { c.faultRepairs.Add(1) }

// SetLinksDown records the current number of failed links (a gauge).
func (c *Collector) SetLinksDown(n int64) { c.linksDown.Store(n) }

// FaultCounts returns the cumulative fault-event, drop, reroute and
// repair totals.
func (c *Collector) FaultCounts() (events, drops, reroutes, repairs int64) {
	return c.faultEvents.Load(), c.faultDrops.Load(), c.faultReroutes.Load(), c.faultRepairs.Load()
}

// LinksDown returns the current number of failed links.
func (c *Collector) LinksDown() int64 { return c.linksDown.Load() }

// SampleQueues records one cycle's committed occupancy for every link in
// occ (occ may cover a prefix of the links; trailing pseudo-links keep
// only stall counters) and advances the sampled-cycle count.
func (c *Collector) SampleQueues(occ []int32) {
	for i, o := range occ {
		d := int64(o)
		if d > 0 {
			c.QueueSum.Add(i, d)
			c.QueuePeak.SetMax(i, d)
		}
		if c.Queue != nil {
			c.Queue.Observe(d)
		}
	}
	c.cycles.Add(1)
}

// SampleQueuesN records n consecutive cycles that all observed the same
// committed occupancy — the event-driven simulator's accounting for a
// slept span, during which occupancy is provably frozen. It is equivalent
// to calling SampleQueues(occ) n times.
func (c *Collector) SampleQueuesN(occ []int32, n int64) {
	if n <= 0 {
		return
	}
	for i, o := range occ {
		d := int64(o)
		if d > 0 {
			c.QueueSum.Add(i, d*n)
			c.QueuePeak.SetMax(i, d)
		}
		if c.Queue != nil {
			c.Queue.ObserveN(d, n)
		}
	}
	c.cycles.Add(n)
}

// Snapshot appends a window capturing the run's cumulative totals at the
// given cycle. Simulators call it at measurement-window boundaries.
func (c *Collector) Snapshot(cycle int64) {
	w := Window{
		Cycle:       cycle,
		Flits:       c.Forwarded.Total(),
		FaultEvents: c.faultEvents.Load(),
		Drops:       c.faultDrops.Load(),
		Reroutes:    c.faultReroutes.Load(),
		Repairs:     c.faultRepairs.Load(),
		DownLinks:   c.linksDown.Load(),
	}
	if c.Latency != nil {
		w.Delivered = c.Latency.Count()
		w.LatencySum = c.Latency.Sum()
	}
	c.mu.Lock()
	c.windows = append(c.windows, w)
	c.mu.Unlock()
}

// Windows returns a copy of the snapshots taken so far.
func (c *Collector) Windows() []Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Window, len(c.windows))
	copy(out, c.windows)
	return out
}

// Utilization returns link i's fraction of sampled cycles spent
// forwarding a flit (0 when no cycles were sampled).
func (c *Collector) Utilization(i int) float64 {
	cy := c.cycles.Load()
	if cy == 0 {
		return 0
	}
	return float64(c.Forwarded.Get(i)) / float64(cy)
}

// AvgQueue returns link i's mean sampled queue depth.
func (c *Collector) AvgQueue(i int) float64 {
	cy := c.cycles.Load()
	if cy == 0 {
		return 0
	}
	return float64(c.QueueSum.Get(i)) / float64(cy)
}

// HottestLink returns the index of the link with the most forwarded
// flits, restricted to the given kind ("" for any), and its utilization.
// It returns index -1 when no link matches.
func (c *Collector) HottestLink(kind string) (int, float64) {
	best, bestFlits := -1, int64(-1)
	for i, li := range c.links {
		if kind != "" && li.Kind != kind {
			continue
		}
		if f := c.Forwarded.Get(i); f > bestFlits {
			best, bestFlits = i, f
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, c.Utilization(best)
}

// String summarizes the collector for logs.
func (c *Collector) String() string {
	if !c.Ready() {
		return "telemetry.Collector(uninitialized)"
	}
	return fmt.Sprintf("telemetry.Collector(%d links, %d cycles, %d flits)",
		len(c.links), c.cycles.Load(), c.Forwarded.Total())
}
