package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCollector builds a small deterministic collector: two network
// links, one injection and one ejection link, a handful of packets.
func goldenCollector() *Collector {
	c := NewCollector()
	c.Init(Config{
		Links: []LinkInfo{
			{Kind: KindNet, Src: 0, Dst: 1},
			{Kind: KindNet, Src: 1, Dst: 0},
			{Kind: KindInject, Src: 0, Dst: 0},
			{Kind: KindEject, Src: 1, Dst: 1},
		},
		LatencyCap:  16,
		QueueCap:    4,
		PathChoices: 2,
	})
	c.CountForward(2) // inject
	c.CountForward(0) // hop
	c.CountForward(3) // eject
	c.CountForward(0)
	c.CountStall(1)
	c.ObserveLatency(3)
	c.ObserveLatency(5)
	c.ObserveLatency(99) // overflow
	c.CountChoice(0)
	c.CountChoice(1)
	c.CountChoice(1)
	c.SampleQueues([]int32{2, 0, 1, 0})
	c.SampleQueues([]int32{1, 1, 0, 0})
	c.Snapshot(1)
	c.CountFaultEvents(2)
	c.CountFaultDrop()
	c.CountFaultReroute()
	c.CountFaultReroute()
	c.CountFaultRepair()
	c.SetLinksDown(2)
	c.Snapshot(2)
	return c
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestExportGolden(t *testing.T) {
	c := goldenCollector()
	var buf bytes.Buffer
	if err := c.WriteLinksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "links_golden.csv", buf.Bytes())

	buf.Reset()
	if err := WriteHistogramJSON(&buf, c.Latency); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "latency_hist_golden.json", buf.Bytes())

	buf.Reset()
	if err := c.WriteWindowsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "windows_golden.csv", buf.Bytes())

	buf.Reset()
	if err := c.WriteChoicesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "choices_golden.csv", buf.Bytes())
}

func TestExportDir(t *testing.T) {
	dir := t.TempDir()
	c := goldenCollector()
	m := Manifest{
		Tool: "test", Topology: "RRG(2,3,1)", N: 2, X: 3, Y: 1,
		Selector: "rEDKSP", Mechanism: "KSP-adaptive", Pattern: "uniform",
		K: 8, Seed: 1, InjectionRate: 0.5,
	}
	if err := c.Export(dir, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", got.Schema, SchemaVersion)
	}
	if got.Cycles != c.Cycles() {
		t.Fatalf("cycles = %d, want %d", got.Cycles, c.Cycles())
	}
	for _, name := range got.Files {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("manifest lists %s but: %v", name, err)
		}
	}
	// The disabled-instrument path: a latency-less collector (app-sim
	// style) must not list or write latency_hist.json.
	c2 := NewCollector()
	c2.Init(Config{Links: []LinkInfo{{Kind: KindNet}}})
	dir2 := t.TempDir()
	if err := c2.Export(dir2, Manifest{Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "latency_hist.json")); !os.IsNotExist(err) {
		t.Fatalf("latency_hist.json written for disabled latency instrument (err=%v)", err)
	}
	// Uninitialized collectors refuse to export.
	if err := NewCollector().Export(t.TempDir(), Manifest{}); err == nil {
		t.Fatal("export of uninitialized collector succeeded")
	}
}
