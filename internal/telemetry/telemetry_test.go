package telemetry

import (
	"testing"

	"repro/internal/par"
)

func TestCounterVecBasics(t *testing.T) {
	c := NewCounterVec(3)
	c.Inc(0)
	c.Add(1, 5)
	c.SetMax(2, 7)
	c.SetMax(2, 3) // lower: no effect
	if c.Get(0) != 1 || c.Get(1) != 5 || c.Get(2) != 7 {
		t.Fatalf("counters = %d,%d,%d", c.Get(0), c.Get(1), c.Get(2))
	}
	if c.Total() != 13 {
		t.Fatalf("total = %d, want 13", c.Total())
	}
}

// TestCounterVecConcurrent hammers counters from par.For workers; with
// -race this also proves the counters are data-race free.
func TestCounterVecConcurrent(t *testing.T) {
	const iters = 4096
	adds := NewCounterVec(4)
	maxes := NewCounterVec(4)
	par.For(iters, 0, func(i int) {
		adds.Inc(i % 4)
		maxes.SetMax(i%4, int64(i))
	})
	if adds.Total() != iters {
		t.Fatalf("total = %d, want %d", adds.Total(), iters)
	}
	// The per-index maximum of 0..4095 striped by i%4 is 4092+idx.
	for idx := 0; idx < 4; idx++ {
		if got := maxes.Get(idx); got != int64(4092+idx) {
			t.Fatalf("max[%d] = %d, want %d", idx, got, 4092+idx)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 64)
	const iters = 10000
	par.For(iters, 0, func(i int) {
		h.Observe(int64(i % 80)) // some overflow the 64-bucket range
	})
	if h.Count() != iters {
		t.Fatalf("count = %d, want %d", h.Count(), iters)
	}
	var want int64
	for i := 0; i < iters; i++ {
		want += int64(i % 80)
	}
	if h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
}

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector()
	if c.Ready() {
		t.Fatal("fresh collector reports Ready")
	}
	c.Init(Config{
		Links: []LinkInfo{
			{Kind: KindNet, Src: 0, Dst: 1},
			{Kind: KindNet, Src: 1, Dst: 0},
			{Kind: KindInject, Src: 0, Dst: 0},
		},
		LatencyCap:  100,
		QueueCap:    8,
		PathChoices: 4,
	})
	if !c.Ready() {
		t.Fatal("initialized collector not Ready")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Init did not panic")
		}
	}()

	c.CountForward(0)
	c.CountForward(0)
	c.CountStall(1)
	c.ObserveLatency(42)
	c.CountChoice(1)
	c.CountChoice(9) // clamps into last counter
	c.SampleQueues([]int32{3, 0, 1})
	c.SampleQueues([]int32{5, 2, 0})
	c.Snapshot(2)

	if got := c.Forwarded.Get(0); got != 2 {
		t.Fatalf("forwarded[0] = %d, want 2", got)
	}
	if got := c.Stalled.Get(1); got != 1 {
		t.Fatalf("stalled[1] = %d, want 1", got)
	}
	if got := c.Cycles(); got != 2 {
		t.Fatalf("cycles = %d, want 2", got)
	}
	if got := c.AvgQueue(0); got != 4 {
		t.Fatalf("avgQueue[0] = %v, want 4", got)
	}
	if got := c.QueuePeak.Get(0); got != 5 {
		t.Fatalf("peak[0] = %d, want 5", got)
	}
	if got := c.Utilization(0); got != 1 {
		t.Fatalf("util[0] = %v, want 1", got)
	}
	if got := c.PathChoice.Get(3); got != 1 {
		t.Fatalf("clamped choice not in last counter: %d", got)
	}
	if link, _ := c.HottestLink(KindNet); link != 0 {
		t.Fatalf("hottest = %d, want 0", link)
	}
	if link, _ := c.HottestLink("nope"); link != -1 {
		t.Fatalf("hottest of unknown kind = %d, want -1", link)
	}
	ws := c.Windows()
	if len(ws) != 1 || ws[0].Cycle != 2 || ws[0].Delivered != 1 || ws[0].Flits != 2 {
		t.Fatalf("windows = %+v", ws)
	}

	c.Init(Config{}) // must panic (checked by the deferred recover)
}
