package telemetry

import "sync/atomic"

// Histogram is a fixed-bucket histogram over non-negative int64
// observations. Bucket i counts values in [i*width, (i+1)*width); values
// at or above numBuckets*width land in a dedicated overflow bucket, so
// deep saturation reads as "at least the cap" rather than being lost.
// All methods are safe for concurrent use.
type Histogram struct {
	width   int64
	counts  []atomic.Int64 // len numBuckets+1; last is overflow
	sum     atomic.Int64
	samples atomic.Int64
}

// NewHistogram returns a histogram of numBuckets buckets of the given
// width (both must be positive; width is clamped to 1).
func NewHistogram(width int64, numBuckets int) *Histogram {
	if width < 1 {
		width = 1
	}
	if numBuckets < 1 {
		numBuckets = 1
	}
	return &Histogram{width: width, counts: make([]atomic.Int64, numBuckets+1)}
}

// Width returns the bucket width.
func (h *Histogram) Width() int64 { return h.width }

// NumBuckets returns the in-range bucket count (excluding overflow).
func (h *Histogram) NumBuckets() int { return len(h.counts) - 1 }

// Cap returns the lowest value that lands in the overflow bucket.
func (h *Histogram) Cap() int64 { return int64(h.NumBuckets()) * h.width }

// Observe records one value. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := v / h.width
	if b >= int64(h.NumBuckets()) {
		b = int64(h.NumBuckets())
	}
	h.counts[b].Add(1)
	h.sum.Add(v)
	h.samples.Add(1)
}

// ObserveN records the value n times, equivalent to n Observe(v) calls
// (no-op for n <= 0).
func (h *Histogram) ObserveN(v, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	b := v / h.width
	if b >= int64(h.NumBuckets()) {
		b = int64(h.NumBuckets())
	}
	h.counts[b].Add(n)
	h.sum.Add(v * n)
	h.samples.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.samples.Load() }

// Sum returns the sum of all observed values (uncapped).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.samples.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Overflow returns the overflow-bucket count.
func (h *Histogram) Overflow() int64 { return h.counts[len(h.counts)-1].Load() }

// Bucket returns the count of in-range bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.counts[i].Load() }

// Counts returns a snapshot of the in-range bucket counts (the overflow
// bucket is reported separately by Overflow).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, h.NumBuckets())
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Summary is a compact percentile snapshot of a histogram, the shape
// service endpoints report (jfserve's stats response embeds one for its
// request-service latency).
type Summary struct {
	Count    int64
	Mean     float64
	P50      float64
	P90      float64
	P99      float64
	Overflow int64
}

// Summarize snapshots the histogram's count, mean and p50/p90/p99. The
// histogram may be observed concurrently; the snapshot is then
// approximate in the usual racy-read sense, never invalid.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:    h.Count(),
		Mean:     h.Mean(),
		P50:      h.Percentile(0.50),
		P90:      h.Percentile(0.90),
		P99:      h.Percentile(0.99),
		Overflow: h.Overflow(),
	}
}

// Percentile returns the q-th percentile (q in [0,1]) as the lower bound
// of the bucket holding that rank — the same convention the simulator's
// Result percentiles use. An empty histogram returns 0; ranks that fall
// in the overflow bucket return Cap, so saturated tails read as "at
// least the cap".
func (h *Histogram) Percentile(q float64) float64 {
	n := h.samples.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < h.NumBuckets(); i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			return float64(int64(i) * h.width)
		}
	}
	return float64(h.Cap())
}
