package telemetry

import "testing"

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 10)
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	if got := h.Percentile(0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	if h.Mean() != 0 || h.Count() != 0 || h.Overflow() != 0 {
		t.Fatalf("empty histogram: mean=%v count=%d overflow=%d", h.Mean(), h.Count(), h.Overflow())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// One in-range bucket: everything below width lands in it, the rest
	// overflows.
	h := NewHistogram(5, 1)
	h.Observe(0)
	h.Observe(4)
	if h.Overflow() != 0 {
		t.Fatalf("overflow = %d, want 0", h.Overflow())
	}
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("p50 = %v, want 0 (bucket lower bound)", got)
	}
	h.Observe(5) // at cap: overflow
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if got := h.Percentile(1.0); got != float64(h.Cap()) {
		t.Fatalf("p100 = %v, want cap %d", got, h.Cap())
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := int64(0); i < 100; i++ {
		h.Observe(i)
	}
	h.Observe(1_000_000) // far past the cap
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
	// The overflowed value still contributes its true magnitude to the
	// mean (sum is uncapped).
	wantMean := (99.0*100/2 + 1_000_000) / 101
	if got := h.Mean(); got != wantMean {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
	// p99 rank: target = floor(0.99*101) = 99, and the 99th observation
	// in bucket order is value 98; the max rank lands in overflow and
	// reads as the cap.
	if got := h.Percentile(0.99); got != 98 {
		t.Fatalf("p99 = %v, want 98", got)
	}
	if got := h.Percentile(1.0); got != 100 {
		t.Fatalf("p100 = %v, want cap 100", got)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram(1, 4)
	h.Observe(-7)
	if h.Bucket(0) != 1 {
		t.Fatalf("negative observation not clamped to bucket 0")
	}
	if h.Sum() != 0 {
		t.Fatalf("sum = %d, want 0 (clamped)", h.Sum())
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewHistogram(2, 50)
	for i := int64(0); i < 200; i++ {
		h.Observe(i % 97)
	}
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("percentile not monotone: q=%v gives %v after %v", q, p, prev)
		}
		prev = p
	}
}
