package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Manifest records the exact configuration of an instrumented run, so
// every exported file can be traced back to the topology parameters,
// selector, mechanism and seed that produced it.
type Manifest struct {
	// Schema versions the export layout.
	Schema string `json:"schema"`
	// Tool is the producing binary (jfnet, jfapp, ...).
	Tool string `json:"tool"`
	// Topology is the human-readable form, e.g. "RRG(36,24,16)".
	Topology string `json:"topology"`
	N        int    `json:"n"`
	X        int    `json:"x"`
	Y        int    `json:"y"`
	// Selector is the path-selection scheme (KSP, rKSP, EDKSP, rEDKSP).
	Selector string `json:"selector"`
	// Mechanism is the per-packet routing mechanism.
	Mechanism string `json:"mechanism"`
	// Pattern is the traffic pattern (flit runs) and Mapping/Stencil the
	// workload (app runs); unused fields stay empty.
	Pattern string `json:"pattern,omitempty"`
	Mapping string `json:"mapping,omitempty"`
	Stencil string `json:"stencil,omitempty"`
	// K is the candidate paths per switch pair.
	K int `json:"k"`
	// Seed drove all randomness in the run.
	Seed uint64 `json:"seed"`
	// InjectionRate is the offered load (flit runs only).
	InjectionRate float64 `json:"injection_rate,omitempty"`
	// Cycles is the run length in sampled cycles.
	Cycles int64 `json:"cycles"`
	// Files lists the sibling files this manifest describes.
	Files []string `json:"files"`
}

// SchemaVersion is the current export layout version.
const SchemaVersion = "telemetry/v1"

// Export writes the collector's contents to dir (created if needed):
// manifest.json, links.csv, windows.csv, and — when the corresponding
// instrument is enabled — latency_hist.json, queue_hist.json and
// choices.csv. The manifest's Schema, Cycles and Files fields are filled
// in here.
func (c *Collector) Export(dir string, m Manifest) error {
	if !c.Ready() {
		return fmt.Errorf("telemetry: export of uninitialized Collector")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m.Schema = SchemaVersion
	m.Cycles = c.Cycles()
	m.Files = []string{"links.csv", "windows.csv"}
	if c.Latency != nil {
		m.Files = append(m.Files, "latency_hist.json")
	}
	if c.Queue != nil {
		m.Files = append(m.Files, "queue_hist.json")
	}
	if c.PathChoice != nil {
		m.Files = append(m.Files, "choices.csv")
	}

	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("links.csv", c.WriteLinksCSV); err != nil {
		return err
	}
	if err := write("windows.csv", c.WriteWindowsCSV); err != nil {
		return err
	}
	if c.Latency != nil {
		if err := write("latency_hist.json", func(w io.Writer) error {
			return WriteHistogramJSON(w, c.Latency)
		}); err != nil {
			return err
		}
	}
	if c.Queue != nil {
		if err := write("queue_hist.json", func(w io.Writer) error {
			return WriteHistogramJSON(w, c.Queue)
		}); err != nil {
			return err
		}
	}
	if c.PathChoice != nil {
		if err := write("choices.csv", c.WriteChoicesCSV); err != nil {
			return err
		}
	}
	return write("manifest.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// WriteLinksCSV writes one row per instrumented link:
//
//	link,kind,src,dst,flits,stalls,util,avg_queue,peak_queue
//
// flits is the count forwarded, stalls the blocked cycles, util the
// fraction of sampled cycles spent forwarding, avg_queue/peak_queue the
// mean and maximum committed occupancy over sampled cycles.
func (c *Collector) WriteLinksCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "link,kind,src,dst,flits,stalls,util,avg_queue,peak_queue"); err != nil {
		return err
	}
	for i, li := range c.links {
		_, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%.6f,%.4f,%d\n",
			i, li.Kind, li.Src, li.Dst,
			c.Forwarded.Get(i), c.Stalled.Get(i),
			c.Utilization(i), c.AvgQueue(i), c.QueuePeak.Get(i))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteWindowsCSV writes one row per snapshot window with per-window
// deltas:
//
//	cycle,flits,delivered,mean_latency,fault_events,drops,reroutes,repairs,links_down
//
// flits, delivered, fault_events, drops, reroutes and repairs are the
// counts within the window (since the previous snapshot); mean_latency is
// the mean latency of packets delivered within it (empty when none were);
// links_down is the gauge value at the snapshot, not a delta.
func (c *Collector) WriteWindowsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,flits,delivered,mean_latency,fault_events,drops,reroutes,repairs,links_down"); err != nil {
		return err
	}
	var prev Window
	for _, win := range c.Windows() {
		flits := win.Flits - prev.Flits
		delivered := win.Delivered - prev.Delivered
		mean := ""
		if delivered > 0 {
			mean = fmt.Sprintf("%.2f", float64(win.LatencySum-prev.LatencySum)/float64(delivered))
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%s,%d,%d,%d,%d,%d\n",
			win.Cycle, flits, delivered, mean,
			win.FaultEvents-prev.FaultEvents, win.Drops-prev.Drops,
			win.Reroutes-prev.Reroutes, win.Repairs-prev.Repairs,
			win.DownLinks); err != nil {
			return err
		}
		prev = win
	}
	return nil
}

// WriteChoicesCSV writes the candidate-index choice counters:
//
//	candidate,chosen
//
// The last row aggregates any indices clamped into it.
func (c *Collector) WriteChoicesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "candidate,chosen"); err != nil {
		return err
	}
	for i := 0; i < c.PathChoice.Len(); i++ {
		if _, err := fmt.Fprintf(w, "%d,%d\n", i, c.PathChoice.Get(i)); err != nil {
			return err
		}
	}
	return nil
}

// histogramJSON is the on-disk form of a Histogram. Counts holds the
// in-range buckets with trailing zeros trimmed; bucket i covers
// [i*bucket_width, (i+1)*bucket_width) and observations at or above cap
// are in overflow.
type histogramJSON struct {
	BucketWidth int64   `json:"bucket_width"`
	NumBuckets  int     `json:"num_buckets"`
	Cap         int64   `json:"cap"`
	Count       int64   `json:"count"`
	Overflow    int64   `json:"overflow"`
	Mean        float64 `json:"mean"`
	P50         float64 `json:"p50"`
	P90         float64 `json:"p90"`
	P99         float64 `json:"p99"`
	Counts      []int64 `json:"counts"`
}

// WriteHistogramJSON serializes a histogram with its percentiles.
func WriteHistogramJSON(w io.Writer, h *Histogram) error {
	counts := h.Counts()
	for len(counts) > 0 && counts[len(counts)-1] == 0 {
		counts = counts[:len(counts)-1]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(histogramJSON{
		BucketWidth: h.Width(),
		NumBuckets:  h.NumBuckets(),
		Cap:         h.Cap(),
		Count:       h.Count(),
		Overflow:    h.Overflow(),
		Mean:        h.Mean(),
		P50:         h.Percentile(0.50),
		P90:         h.Percentile(0.90),
		P99:         h.Percentile(0.99),
		Counts:      counts,
	})
}
