package telemetry

import "testing"

func TestSummarize(t *testing.T) {
	h := NewHistogram(1, 100)
	if s := h.Summarize(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v % 100) // values 0..99, uniform
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean < 49 || s.Mean > 50 {
		t.Fatalf("mean = %v, want ~49.5", s.Mean)
	}
	if s.P50 < 48 || s.P50 > 51 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P90 < 88 || s.P90 > 91 {
		t.Fatalf("p90 = %v", s.P90)
	}
	if s.P99 < 97 || s.P99 > 99 {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.Overflow != 0 {
		t.Fatalf("overflow = %d", s.Overflow)
	}

	// Saturated samples land in the overflow bucket and pull the tail
	// percentile to the cap, so stats never under-report slow requests.
	for i := 0; i < 1000; i++ {
		h.Observe(10_000)
	}
	s = h.Summarize()
	if s.Overflow != 1000 {
		t.Fatalf("overflow = %d, want 1000", s.Overflow)
	}
	if s.P99 != float64(h.Cap()) {
		t.Fatalf("saturated p99 = %v, want cap %d", s.P99, h.Cap())
	}
}
