package telemetry

import (
	"sync"
	"testing"
)

func TestServiceCountersSnapshot(t *testing.T) {
	var c ServiceCounters
	if s := c.Snapshot(); s != (ServiceSnapshot{}) {
		t.Fatalf("fresh counters snapshot to %+v, want zeros", s)
	}
	c.Shed.Add(3)
	c.ConnShed.Add(1)
	c.Panics.Add(2)
	c.HandlerTimeouts.Add(4)
	c.IOTimeouts.Add(5)
	want := ServiceSnapshot{Shed: 3, ConnShed: 1, Panics: 2, HandlerTimeouts: 4, IOTimeouts: 5}
	if s := c.Snapshot(); s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}

// Concurrent updates must never lose a count (this also runs under the
// telemetry package's -race gate in make check).
func TestServiceCountersConcurrent(t *testing.T) {
	var c ServiceCounters
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Shed.Add(1)
				c.Panics.Add(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Shed != workers*per || s.Panics != workers*per {
		t.Fatalf("lost updates: %+v", s)
	}
}
