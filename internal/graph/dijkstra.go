package graph

import (
	"container/heap"
	"math"

	"repro/internal/xrand"
)

// WeightFunc returns the nonnegative cost of traversing the directed link
// u→v. The Yen description in the paper is phrased over Dijkstra; on
// Jellyfish all link weights are 1 and the BFS engine is used instead, but
// the weighted form is provided for general graphs (and exercised by the
// cross-check tests).
type WeightFunc func(u, v NodeID) float64

// UnitWeights assigns cost 1 to every link.
func UnitWeights(NodeID, NodeID) float64 { return 1 }

// Dijkstra computes a least-cost src→dst path under w with the given
// tie-breaking policy. It returns the path, its cost, and whether dst is
// reachable. rng may be nil for TieDeterministic.
func Dijkstra(g *Graph, src, dst NodeID, w WeightFunc, tie TieBreak, rng *xrand.RNG) (Path, float64, bool) {
	if tie == TieRandom && rng == nil {
		panic("graph: TieRandom requires an RNG")
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	parent := make([]NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	done := make([]bool, n)
	var tieCnt []int32 // equal-distance discoverers per node (TieRandom only)
	if tie == TieRandom {
		tieCnt = make([]int32, n)
	}

	pq := &dijkstraHeap{}
	heap.Init(pq)
	dist[src] = 0
	heap.Push(pq, dijkstraItem{node: src, dist: 0, tie: tieKey(src, tie, rng)})

	for pq.Len() > 0 {
		it := heap.Pop(pq).(dijkstraItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, v := range g.nbr[g.start[u]:g.start[u+1]] {
			if done[v] {
				continue
			}
			nd := dist[u] + w(u, v)
			switch {
			case nd < dist[v]:
				dist[v] = nd
				parent[v] = u
				if tie == TieRandom {
					tieCnt[v] = 1
				}
				heap.Push(pq, dijkstraItem{node: v, dist: nd, tie: tieKey(v, tie, rng)})
			case nd == dist[v] && tie == TieRandom:
				// Reservoir-sample a uniform predecessor among all
				// equal-distance discoverers (as SPEngine does): the i-th
				// discoverer replaces the incumbent with probability 1/i,
				// so each of k ties ends up chosen with probability 1/k. A
				// plain coin flip here would hand later discoverers up to
				// 1/2 regardless of the tie count. The heap entry need not
				// change since the distance is equal.
				tieCnt[v]++
				if rng.IntN(int(tieCnt[v])) == 0 {
					parent[v] = u
				}
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, false
	}
	// Reconstruct.
	var rev Path
	for u := dst; u != -1; u = parent[u] {
		rev = append(rev, u)
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p, dist[dst], true
}

func tieKey(u NodeID, tie TieBreak, rng *xrand.RNG) uint64 {
	if tie == TieRandom {
		return rng.Uint64()
	}
	return uint64(uint32(u))
}

type dijkstraItem struct {
	node NodeID
	dist float64
	tie  uint64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].tie < h[j].tie
}
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
