package graph

import (
	"fmt"
	"strings"
)

// Path is a node sequence; a valid path has at least one node and each
// consecutive pair is an edge of the graph it was computed on.
type Path []NodeID

// Hops returns the number of edges on the path (len-1), the "path length"
// in the paper's sense. An empty path has -1 hops.
func (p Path) Hops() int { return len(p) - 1 }

// Src returns the first node. It panics on an empty path.
func (p Path) Src() NodeID { return p[0] }

// Dst returns the last node. It panics on an empty path.
func (p Path) Dst() NodeID { return p[len(p)-1] }

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Equal reports whether two paths visit exactly the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Loopless reports whether no node repeats on the path.
func (p Path) Loopless() bool {
	seen := make(map[NodeID]struct{}, len(p))
	for _, u := range p {
		if _, dup := seen[u]; dup {
			return false
		}
		seen[u] = struct{}{}
	}
	return true
}

// ValidIn reports whether every consecutive pair of nodes on p is an edge
// of g and p is nonempty.
func (p Path) ValidIn(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// Links appends the directed link IDs traversed by p in g to dst and
// returns the extended slice. It panics if p uses a non-edge.
func (p Path) Links(g *Graph, dst []int32) []int32 {
	for i := 0; i+1 < len(p); i++ {
		id := g.LinkID(p[i], p[i+1])
		if id < 0 {
			panic(fmt.Sprintf("graph: path uses non-edge %d-%d", p[i], p[i+1]))
		}
		dst = append(dst, id)
	}
	return dst
}

// UndirectedEdgeKey packs the undirected edge {u, v} into a 64-bit key with
// min(u,v) in the high word, so (u,v) and (v,u) map to the same key.
func UndirectedEdgeKey(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// DirectedEdgeKey packs the directed edge u→v into a 64-bit key.
func DirectedEdgeKey(u, v NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// String renders the path as "0->5->12".
func (p Path) String() string {
	var sb strings.Builder
	for i, u := range p {
		if i > 0 {
			sb.WriteString("->")
		}
		fmt.Fprintf(&sb, "%d", u)
	}
	return sb.String()
}

// SharedEdges returns the number of undirected edges that appear in both
// paths.
func (p Path) SharedEdges(q Path) int {
	if len(p) < 2 || len(q) < 2 {
		return 0
	}
	set := make(map[uint64]struct{}, len(p))
	for i := 0; i+1 < len(p); i++ {
		set[UndirectedEdgeKey(p[i], p[i+1])] = struct{}{}
	}
	shared := 0
	for i := 0; i+1 < len(q); i++ {
		if _, ok := set[UndirectedEdgeKey(q[i], q[i+1])]; ok {
			shared++
		}
	}
	return shared
}

// EdgeDisjoint reports whether the two paths share no undirected edge.
func (p Path) EdgeDisjoint(q Path) bool { return p.SharedEdges(q) == 0 }
