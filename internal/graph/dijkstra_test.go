package graph

import (
	"testing"

	"repro/internal/xrand"
)

// TestDijkstraTieUniform checks that TieRandom samples a predecessor
// uniformly among all equal-cost alternatives. The weighted diamond below
// gives the sink three cost-3 paths whose relaxation order is forced:
//
//	0 --1-- 1 --2-- 4
//	0 --1-- 2 --2-- 4
//	0 --2-- 3 --1-- 4
//
// Nodes 1 and 2 settle at distance 1 and relax the sink first; node 3
// settles at distance 2 and always votes last. The pre-reservoir coin
// flip handed the last voter probability 1/2 (and 1/4 to each earlier
// one) regardless of the tie count; reservoir sampling with a per-node
// tie counter restores 1/3 each.
func TestDijkstraTieUniform(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(2, 4)
	b.AddEdge(3, 4)
	g := b.Graph()
	weights := map[[2]NodeID]float64{
		{0, 1}: 1, {0, 2}: 1, {0, 3}: 2,
		{1, 4}: 2, {2, 4}: 2, {3, 4}: 1,
	}
	w := func(u, v NodeID) float64 {
		if u > v {
			u, v = v, u
		}
		return weights[[2]NodeID{u, v}]
	}

	const trials = 3000
	rng := xrand.New(1)
	counts := map[NodeID]int{}
	for i := 0; i < trials; i++ {
		p, cost, ok := Dijkstra(g, 0, 4, w, TieRandom, rng)
		if !ok || cost != 3 || len(p) != 3 {
			t.Fatalf("path %v cost %v ok %v", p, cost, ok)
		}
		counts[p[1]]++
	}
	for _, mid := range []NodeID{1, 2, 3} {
		frac := float64(counts[mid]) / trials
		// 1/3 each; the old coin flip put the late voter (node 3) at 1/2
		// and the early ones at 1/4, both far outside these bounds.
		if frac < 0.29 || frac > 0.38 {
			t.Errorf("predecessor %d chosen %.3f of trials, want ~0.333 (counts %v)",
				mid, frac, counts)
		}
	}
}
