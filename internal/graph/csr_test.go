package graph

// Differential suite pinning the CSR-packed graph against the
// representation it replaced. refGraph below is a faithful copy of the
// pre-CSR layout — per-node slice adjacency built through per-node hash
// maps, LinkID by binary search, LinkEndpoints by binary-searching the
// start array — kept here as the oracle. Every public accessor must agree
// with it on random graphs, and Fingerprint must reproduce golden values
// captured from the old implementation so path-cache keys and jfserve
// topology keys provably survive the refactor.

import (
	"sort"
	"testing"

	"repro/internal/xrand"
)

// refGraph is the pre-CSR slice representation, used as the test oracle.
type refGraph struct {
	n     int
	adj   [][]NodeID
	start []int32
	m     int
}

// refBuilder mirrors the old map-based Builder.
type refBuilder struct {
	n   int
	adj []map[NodeID]struct{}
}

func newRefBuilder(n int) *refBuilder {
	adj := make([]map[NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[NodeID]struct{})
	}
	return &refBuilder{n: n, adj: adj}
}

func (b *refBuilder) addEdge(u, v NodeID) bool {
	if _, ok := b.adj[u][v]; ok {
		return false
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
	return true
}

func (b *refBuilder) removeEdge(u, v NodeID) bool {
	if _, ok := b.adj[u][v]; !ok {
		return false
	}
	delete(b.adj[u], v)
	delete(b.adj[v], u)
	return true
}

func (b *refBuilder) hasEdge(u, v NodeID) bool {
	_, ok := b.adj[u][v]
	return ok
}

func (b *refBuilder) graph() *refGraph {
	g := &refGraph{n: b.n, adj: make([][]NodeID, b.n), start: make([]int32, b.n+1)}
	total := 0
	for u := range b.adj {
		lst := make([]NodeID, 0, len(b.adj[u]))
		for v := range b.adj[u] {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		g.adj[u] = lst
		g.start[u] = int32(total)
		total += len(lst)
	}
	g.start[b.n] = int32(total)
	g.m = total / 2
	return g
}

func (g *refGraph) linkID(u, v NodeID) int32 {
	lst := g.adj[u]
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if lst[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lst) && lst[lo] == v {
		return g.start[u] + int32(lo)
	}
	return -1
}

func (g *refGraph) linkEndpoints(link int32) (u, v NodeID) {
	u = NodeID(sort.Search(g.n, func(i int) bool { return g.start[i+1] > link }))
	v = g.adj[u][link-g.start[u]]
	return u, v
}

// randomEdges draws a random simple edge set on n nodes.
func randomEdges(rng *xrand.RNG, n int, p float64) [][2]NodeID {
	var edges [][2]NodeID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
			}
		}
	}
	return edges
}

// buildBoth constructs the CSR graph and the reference oracle from the
// same edge list.
func buildBoth(n int, edges [][2]NodeID) (*Graph, *refGraph) {
	b := NewBuilder(n)
	rb := newRefBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
		rb.addEdge(e[0], e[1])
	}
	return b.Graph(), rb.graph()
}

// differentialCases returns a spread of shapes: random densities, isolated
// nodes, stars, a complete graph and an empty one.
func differentialCases(t *testing.T) map[string][2]interface{} {
	t.Helper()
	rng := xrand.New(99)
	cases := map[string][2]interface{}{}
	add := func(name string, n int, edges [][2]NodeID) {
		g, ref := buildBoth(n, edges)
		cases[name] = [2]interface{}{g, ref}
	}
	add("empty", 7, nil)
	add("single-edge", 2, [][2]NodeID{{0, 1}})
	add("sparse", 60, randomEdges(rng, 60, 0.05))
	add("medium", 45, randomEdges(rng, 45, 0.3))
	add("dense", 25, randomEdges(rng, 25, 0.8))
	var star [][2]NodeID
	for i := 1; i < 30; i++ {
		star = append(star, [2]NodeID{0, NodeID(i)})
	}
	add("star", 30, star)
	var comp [][2]NodeID
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			comp = append(comp, [2]NodeID{NodeID(i), NodeID(j)})
		}
	}
	add("complete", 12, comp)
	// Isolated high-id nodes after the last edge.
	add("isolated-tail", 20, [][2]NodeID{{3, 4}, {4, 5}})
	return cases
}

func TestCSRMatchesSliceRepresentation(t *testing.T) {
	for name, pair := range differentialCases(t) {
		g, ref := pair[0].(*Graph), pair[1].(*refGraph)
		if g.NumNodes() != ref.n || g.NumEdges() != ref.m {
			t.Fatalf("%s: size mismatch: (%d,%d) vs (%d,%d)", name, g.NumNodes(), g.NumEdges(), ref.n, ref.m)
		}
		for u := NodeID(0); int(u) < ref.n; u++ {
			nb := g.Neighbors(u)
			if len(nb) != len(ref.adj[u]) {
				t.Fatalf("%s: Neighbors(%d) length %d, want %d", name, u, len(nb), len(ref.adj[u]))
			}
			for i, v := range nb {
				if v != ref.adj[u][i] {
					t.Fatalf("%s: Neighbors(%d)[%d] = %d, want %d", name, u, i, v, ref.adj[u][i])
				}
				if i > 0 && nb[i-1] >= v {
					t.Fatalf("%s: Neighbors(%d) not strictly sorted: %v", name, u, nb)
				}
			}
			if g.Degree(u) != len(ref.adj[u]) {
				t.Fatalf("%s: Degree(%d) = %d, want %d", name, u, g.Degree(u), len(ref.adj[u]))
			}
			if lo, hi := g.LinkRange(u); lo != ref.start[u] || hi != ref.start[u+1] {
				t.Fatalf("%s: LinkRange(%d) = [%d,%d), want [%d,%d)", name, u, lo, hi, ref.start[u], ref.start[u+1])
			}
		}
	}
}

func TestCSRLinkRoundTripEveryLink(t *testing.T) {
	for name, pair := range differentialCases(t) {
		g, ref := pair[0].(*Graph), pair[1].(*refGraph)
		for l := int32(0); int(l) < g.NumDirectedLinks(); l++ {
			u, v := g.LinkEndpoints(l)
			ru, rv := ref.linkEndpoints(l)
			if u != ru || v != rv {
				t.Fatalf("%s: LinkEndpoints(%d) = (%d,%d), ref (%d,%d)", name, l, u, v, ru, rv)
			}
			if got := g.LinkID(u, v); got != l {
				t.Fatalf("%s: LinkID(LinkEndpoints(%d)) = %d", name, l, got)
			}
			if g.LinkSource(l) != u || g.LinkTarget(l) != v {
				t.Fatalf("%s: LinkSource/LinkTarget(%d) = (%d,%d), want (%d,%d)",
					name, l, g.LinkSource(l), g.LinkTarget(l), u, v)
			}
			r := g.ReverseLink(l)
			if want := g.LinkID(v, u); r != want {
				t.Fatalf("%s: ReverseLink(%d) = %d, want %d", name, l, r, want)
			}
			if g.ReverseLink(r) != l {
				t.Fatalf("%s: ReverseLink not an involution at %d", name, l)
			}
		}
	}
}

func TestCSRHasEdgeRandomProbes(t *testing.T) {
	rng := xrand.New(123)
	for name, pair := range differentialCases(t) {
		g, ref := pair[0].(*Graph), pair[1].(*refGraph)
		if ref.n == 0 {
			continue
		}
		for probe := 0; probe < 2000; probe++ {
			u := NodeID(rng.IntN(ref.n))
			v := NodeID(rng.IntN(ref.n))
			want := u != v && ref.linkID(u, v) >= 0
			if g.HasEdge(u, v) != want {
				t.Fatalf("%s: HasEdge(%d,%d) = %v, want %v", name, u, v, g.HasEdge(u, v), want)
			}
			if wantID := ref.linkID(u, v); g.LinkID(u, v) != wantID {
				t.Fatalf("%s: LinkID(%d,%d) = %d, ref %d", name, u, v, g.LinkID(u, v), wantID)
			}
		}
	}
}

func TestCSREdgesIterator(t *testing.T) {
	for name, pair := range differentialCases(t) {
		g, ref := pair[0].(*Graph), pair[1].(*refGraph)
		var got [][2]NodeID
		for u, v := range g.Edges() {
			got = append(got, [2]NodeID{u, v})
		}
		var want [][2]NodeID
		for u := NodeID(0); int(u) < ref.n; u++ {
			for _, v := range ref.adj[u] {
				if u < v {
					want = append(want, [2]NodeID{u, v})
				}
			}
		}
		if len(got) != len(want) || len(got) != ref.m {
			t.Fatalf("%s: Edges() yielded %d, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: Edges()[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
		// Early termination must not panic or over-yield.
		stopped := 0
		for range g.Edges() {
			stopped++
			break
		}
		if ref.m > 0 && stopped != 1 {
			t.Fatalf("%s: early break yielded %d edges", name, stopped)
		}
	}
}

// TestBuilderDifferentialOps drives the sorted-slice Builder and the old
// map-based builder through the same random add/remove sequence and
// demands identical answers throughout, then identical frozen graphs.
func TestBuilderDifferentialOps(t *testing.T) {
	rng := xrand.New(2024)
	const n = 40
	b := NewBuilder(n)
	rb := newRefBuilder(n)
	for op := 0; op < 5000; op++ {
		u := NodeID(rng.IntN(n))
		v := NodeID(rng.IntN(n))
		if u == v {
			continue
		}
		if rng.Float64() < 0.6 {
			if b.AddEdge(u, v) != rb.addEdge(u, v) {
				t.Fatalf("op %d: AddEdge(%d,%d) disagreement", op, u, v)
			}
		} else {
			if b.RemoveEdge(u, v) != rb.removeEdge(u, v) {
				t.Fatalf("op %d: RemoveEdge(%d,%d) disagreement", op, u, v)
			}
		}
		if b.HasEdge(u, v) != rb.hasEdge(u, v) {
			t.Fatalf("op %d: HasEdge(%d,%d) disagreement", op, u, v)
		}
		if b.Degree(u) != len(rb.adj[u]) {
			t.Fatalf("op %d: Degree(%d) = %d, want %d", op, u, b.Degree(u), len(rb.adj[u]))
		}
	}
	g, ref := b.Graph(), rb.graph()
	if g.NumEdges() != ref.m {
		t.Fatalf("frozen edge counts differ: %d vs %d", g.NumEdges(), ref.m)
	}
	for u := NodeID(0); int(u) < n; u++ {
		nb := g.Neighbors(u)
		for i, v := range nb {
			if ref.adj[u][i] != v {
				t.Fatalf("frozen Neighbors(%d) differ: %v vs %v", u, nb, ref.adj[u])
			}
		}
	}
}

// TestCloneDirectCopy pins the direct-CSR Clone: the clone must reproduce
// the edge set (fingerprint-equal after freezing) and stay fully
// independent of both the original graph and later clone edits.
func TestCloneDirectCopy(t *testing.T) {
	g := randomGraph(xrand.New(17), 50, 0.2)
	cb := g.Clone()
	c := cb.Graph()
	if c.Fingerprint() != g.Fingerprint() {
		t.Fatalf("clone fingerprint 0x%x, want 0x%x", c.Fingerprint(), g.Fingerprint())
	}
	// Mutating the clone builder must not disturb the original.
	fp := g.Fingerprint()
	mutated := false
	for u := NodeID(0); int(u) < g.NumNodes() && !mutated; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				cb.RemoveEdge(u, v)
				mutated = true
				break
			}
		}
	}
	if !mutated {
		t.Fatal("test graph had no edges")
	}
	if g.Fingerprint() != fp {
		t.Fatal("mutating a clone builder changed the original graph")
	}
	if cb.Graph().Fingerprint() == fp {
		t.Fatal("clone builder edit had no effect")
	}
}

// TestFingerprintGolden pins Fingerprint to values captured from the
// pre-CSR implementation (commit 95046a2). These are load-bearing: JFPC
// path-cache keys and jfserve topology keys embed the fingerprint, so any
// drift here silently invalidates every archived cache.
func TestFingerprintGolden(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 0)
	b.AddEdge(1, 3)
	fixed := []struct {
		name string
		g    *Graph
		want uint64
	}{
		{"ring5+chord", b.Graph(), 0xfd469be2b1255f5c},
		{"empty(3)", NewBuilder(3).Graph(), 0xf9e0a189f05e174e},
		{"empty(0)", NewBuilder(0).Graph(), 0x88201fb960ff6465},
	}
	for _, c := range fixed {
		if got := c.g.Fingerprint(); got != c.want {
			t.Errorf("%s: Fingerprint = 0x%016x, want 0x%016x", c.name, got, c.want)
		}
	}
	// Insertion order must not matter.
	b2 := NewBuilder(5)
	b2.AddEdge(1, 3)
	b2.AddEdge(4, 0)
	b2.AddEdge(2, 3)
	b2.AddEdge(1, 2)
	b2.AddEdge(0, 1)
	b2.AddEdge(3, 4)
	if b2.Graph().Fingerprint() != 0xfd469be2b1255f5c {
		t.Error("fingerprint depends on edge insertion order")
	}
}
