package graph

import (
	"testing"

	"repro/internal/xrand"
)

func TestShortestPathLine(t *testing.T) {
	g := line(6)
	e := NewSPEngine(g, TieDeterministic, nil)
	p, ok := e.ShortestPath(0, 5)
	if !ok || p.Hops() != 5 {
		t.Fatalf("path = %v ok=%v", p, ok)
	}
	if !p.Equal(Path{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("unexpected path %v", p)
	}
}

func TestShortestPathSelf(t *testing.T) {
	e := NewSPEngine(line(3), TieDeterministic, nil)
	p, ok := e.ShortestPath(2, 2)
	if !ok || !p.Equal(Path{2}) {
		t.Fatalf("self path = %v ok=%v", p, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	e := NewSPEngine(b.Graph(), TieDeterministic, nil)
	if _, ok := e.ShortestPath(0, 3); ok {
		t.Fatal("found a path between components")
	}
}

func TestDeterministicTieBreakPrefersSmallIDs(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3 are both shortest; deterministic mode must
	// choose the path through node 1 every time.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	e := NewSPEngine(b.Graph(), TieDeterministic, nil)
	for i := 0; i < 20; i++ {
		p, ok := e.ShortestPath(0, 3)
		if !ok || !p.Equal(Path{0, 1, 3}) {
			t.Fatalf("deterministic tie-break picked %v", p)
		}
	}
}

func TestRandomTieBreakCoversAlternatives(t *testing.T) {
	// Same diamond: random mode must eventually use both middles.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	e := NewSPEngine(b.Graph(), TieRandom, xrand.New(1))
	seen := map[NodeID]int{}
	for i := 0; i < 400; i++ {
		p, ok := e.ShortestPath(0, 3)
		if !ok || p.Hops() != 2 {
			t.Fatalf("bad path %v", p)
		}
		seen[p[1]]++
	}
	if seen[1] < 100 || seen[2] < 100 {
		t.Fatalf("tie-break badly skewed: %v", seen)
	}
}

func TestRandomTieBreakSameLengthAsDeterministic(t *testing.T) {
	g := randomGraph(xrand.New(77), 60, 0.08)
	det := NewSPEngine(g, TieDeterministic, nil)
	rnd := NewSPEngine(g, TieRandom, xrand.New(3))
	for s := NodeID(0); s < 60; s += 7 {
		for d := NodeID(0); d < 60; d += 5 {
			pd, okd := det.ShortestPath(s, d)
			pr, okr := rnd.ShortestPath(s, d)
			if okd != okr {
				t.Fatalf("reachability differs for %d->%d", s, d)
			}
			if okd && pd.Hops() != pr.Hops() {
				t.Fatalf("length differs for %d->%d: %d vs %d", s, d, pd.Hops(), pr.Hops())
			}
			if okr && (!pr.ValidIn(g) || !pr.Loopless()) {
				t.Fatalf("random path invalid: %v", pr)
			}
		}
	}
}

func TestNodeBans(t *testing.T) {
	// Cycle of 6: banning node 1 forces the long way around from 0 to 2.
	e := NewSPEngine(cycle(6), TieDeterministic, nil)
	e.BanNode(1)
	p, ok := e.ShortestPath(0, 2)
	if !ok || p.Hops() != 4 {
		t.Fatalf("banned search returned %v", p)
	}
	e.ClearBans()
	p, ok = e.ShortestPath(0, 2)
	if !ok || p.Hops() != 2 {
		t.Fatalf("bans did not clear: %v", p)
	}
}

func TestBannedEndpointsFail(t *testing.T) {
	e := NewSPEngine(line(3), TieDeterministic, nil)
	e.BanNode(0)
	if _, ok := e.ShortestPath(0, 2); ok {
		t.Fatal("search from banned source succeeded")
	}
	e.ClearBans()
	e.BanNode(2)
	if _, ok := e.ShortestPath(0, 2); ok {
		t.Fatal("search to banned destination succeeded")
	}
}

func TestDirectedEdgeBans(t *testing.T) {
	e := NewSPEngine(cycle(4), TieDeterministic, nil)
	e.BanDirectedEdge(0, 1)
	p, ok := e.ShortestPath(0, 1)
	if !ok || p.Hops() != 3 {
		t.Fatalf("directed ban ignored: %v", p)
	}
	// The reverse direction must still work.
	p, ok = e.ShortestPath(1, 0)
	if !ok || p.Hops() != 1 {
		t.Fatalf("reverse direction banned too: %v", p)
	}
}

func TestUndirectedEdgeBans(t *testing.T) {
	e := NewSPEngine(cycle(4), TieDeterministic, nil)
	e.BanUndirectedEdge(0, 1)
	if p, _ := e.ShortestPath(1, 0); p.Hops() != 3 {
		t.Fatalf("undirected ban not applied both ways: %v", p)
	}
}

func TestEngineReuseManyQueries(t *testing.T) {
	g := randomGraph(xrand.New(10), 50, 0.1)
	e := NewSPEngine(g, TieDeterministic, nil)
	ref := NewSPEngine(g, TieDeterministic, nil)
	// Interleave banned and unbanned queries; results of unbanned queries
	// must match a fresh engine every time.
	for i := 0; i < 200; i++ {
		s, d := NodeID(i%50), NodeID((i*7+3)%50)
		if i%3 == 0 {
			e.BanNode(NodeID((i * 11) % 50))
			e.ShortestPath(s, d)
			e.ClearBans()
		}
		p1, ok1 := e.ShortestPath(s, d)
		p2, ok2 := ref.ShortestPath(s, d)
		if ok1 != ok2 || (ok1 && !p1.Equal(p2)) {
			t.Fatalf("engine state leaked at query %d: %v vs %v", i, p1, p2)
		}
	}
}

func TestAllDistancesFrom(t *testing.T) {
	g := cycle(8)
	e := NewSPEngine(g, TieDeterministic, nil)
	dist := make([]int32, 8)
	e.AllDistancesFrom(0, dist)
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestAllDistancesRespectBans(t *testing.T) {
	g := line(5)
	e := NewSPEngine(g, TieDeterministic, nil)
	e.BanNode(2)
	dist := make([]int32, 5)
	e.AllDistancesFrom(0, dist)
	if dist[1] != 1 || dist[3] != -1 || dist[4] != -1 {
		t.Fatalf("banned distances wrong: %v", dist)
	}
}

func TestBFSMatchesDijkstraOnUnitWeights(t *testing.T) {
	g := randomGraph(xrand.New(99), 80, 0.06)
	e := NewSPEngine(g, TieDeterministic, nil)
	for s := NodeID(0); s < 80; s += 11 {
		for d := NodeID(0); d < 80; d += 13 {
			pb, okb := e.ShortestPath(s, d)
			pd, cost, okd := Dijkstra(g, s, d, UnitWeights, TieDeterministic, nil)
			if okb != okd {
				t.Fatalf("reachability mismatch %d->%d", s, d)
			}
			if okb {
				if pb.Hops() != pd.Hops() || float64(pb.Hops()) != cost {
					t.Fatalf("length mismatch %d->%d: bfs %d dijkstra %d cost %v",
						s, d, pb.Hops(), pd.Hops(), cost)
				}
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle with a heavy direct edge: 0-2 costs 10, 0-1-2 costs 2.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Graph()
	w := func(u, v NodeID) float64 {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 10
		}
		return 1
	}
	p, cost, ok := Dijkstra(g, 0, 2, w, TieDeterministic, nil)
	if !ok || cost != 2 || !p.Equal(Path{0, 1, 2}) {
		t.Fatalf("weighted dijkstra = %v cost %v", p, cost)
	}
}

func TestDijkstraRandomTiesValid(t *testing.T) {
	g := randomGraph(xrand.New(12), 40, 0.15)
	rng := xrand.New(4)
	for i := 0; i < 50; i++ {
		s, d := NodeID(rng.IntN(40)), NodeID(rng.IntN(40))
		p, cost, ok := Dijkstra(g, s, d, UnitWeights, TieRandom, rng)
		if !ok {
			continue
		}
		if !p.ValidIn(g) || !p.Loopless() || float64(p.Hops()) != cost {
			t.Fatalf("random dijkstra invalid: %v cost %v", p, cost)
		}
	}
}

func TestComputeMetricsCycle(t *testing.T) {
	m := ComputeMetrics(cycle(8), 2)
	if !m.Connected || m.Diameter != 4 {
		t.Fatalf("metrics = %+v", m)
	}
	// Ring of 8: distances from any node are 1,2,3,4,3,2,1 → mean 16/7.
	want := 16.0 / 7.0
	if diff := m.AvgShortestPath - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("avg = %v, want %v", m.AvgShortestPath, want)
	}
}

func TestComputeMetricsDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	m := ComputeMetrics(b.Graph(), 0)
	if m.Connected {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestComputeMetricsComplete(t *testing.T) {
	m := ComputeMetrics(complete(10), 4)
	if !m.Connected || m.Diameter != 1 || m.AvgShortestPath != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestEngineGraphAccessor(t *testing.T) {
	g := line(3)
	e := NewSPEngine(g, TieDeterministic, nil)
	if e.Graph() != g {
		t.Fatal("Graph accessor wrong")
	}
}

func TestEngineDistance(t *testing.T) {
	e := NewSPEngine(cycle(8), TieDeterministic, nil)
	if d := e.Distance(0, 4); d != 4 {
		t.Fatalf("Distance = %d, want 4", d)
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	e2 := NewSPEngine(b.Graph(), TieDeterministic, nil)
	if d := e2.Distance(0, 3); d != -1 {
		t.Fatalf("unreachable Distance = %d, want -1", d)
	}
}
