package graph

import (
	"repro/internal/par"
)

// Metrics aggregates the whole-graph distance statistics the paper's
// Table I reports.
type Metrics struct {
	// AvgShortestPath is the mean hop distance over all ordered node pairs
	// (src != dst). NaN-free: unreachable pairs make Connected false and
	// are excluded from the mean.
	AvgShortestPath float64
	// Diameter is the maximum finite hop distance between any pair.
	Diameter int32
	// Connected reports whether every ordered pair is reachable.
	Connected bool
}

// ComputeMetrics runs a BFS from every node (in parallel over workers;
// workers <= 0 selects the default pool size) and aggregates distance
// statistics.
func ComputeMetrics(g *Graph, workers int) Metrics {
	n := g.NumNodes()
	if n <= 1 {
		return Metrics{Connected: true}
	}
	type acc struct {
		eng       *SPEngine
		dist      []int32
		sum       int64
		pairs     int64
		diameter  int32
		unreached int64
	}
	var total acc
	par.MapReduce(n, workers,
		func() *acc {
			return &acc{eng: NewSPEngine(g, TieDeterministic, nil), dist: make([]int32, n)}
		},
		func(i int, a *acc) {
			a.eng.AllDistancesFrom(NodeID(i), a.dist)
			for j, d := range a.dist {
				if j == i {
					continue
				}
				if d < 0 {
					a.unreached++
					continue
				}
				a.sum += int64(d)
				a.pairs++
				if d > a.diameter {
					a.diameter = d
				}
			}
		},
		func(a *acc) {
			total.sum += a.sum
			total.pairs += a.pairs
			total.unreached += a.unreached
			if a.diameter > total.diameter {
				total.diameter = a.diameter
			}
		})
	m := Metrics{Diameter: total.diameter, Connected: total.unreached == 0}
	if total.pairs > 0 {
		m.AvgShortestPath = float64(total.sum) / float64(total.pairs)
	}
	return m
}
