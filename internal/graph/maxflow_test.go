package graph

import (
	"testing"

	"repro/internal/xrand"
)

func TestMaxEdgeDisjointLine(t *testing.T) {
	if got := MaxEdgeDisjointPaths(line(5), 0, 4); got != 1 {
		t.Fatalf("line flow = %d, want 1", got)
	}
}

func TestMaxEdgeDisjointCycle(t *testing.T) {
	if got := MaxEdgeDisjointPaths(cycle(6), 0, 3); got != 2 {
		t.Fatalf("cycle flow = %d, want 2", got)
	}
}

func TestMaxEdgeDisjointComplete(t *testing.T) {
	// K_n has n-1 edge-disjoint paths between any pair.
	for n := 3; n <= 7; n++ {
		if got := MaxEdgeDisjointPaths(complete(n), 0, NodeID(n-1)); got != n-1 {
			t.Fatalf("K%d flow = %d, want %d", n, got, n-1)
		}
	}
}

func TestMaxEdgeDisjointDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if got := MaxEdgeDisjointPaths(b.Graph(), 0, 3); got != 0 {
		t.Fatalf("flow across components = %d", got)
	}
	if got := MaxEdgeDisjointPaths(b.Graph(), 1, 1); got != 0 {
		t.Fatalf("self flow = %d", got)
	}
}

func TestMaxEdgeDisjointBoundedByMinDegree(t *testing.T) {
	g := randomGraph(xrand.New(21), 30, 0.25)
	for s := NodeID(0); s < 30; s += 5 {
		for d := NodeID(1); d < 30; d += 7 {
			if s == d {
				continue
			}
			flow := MaxEdgeDisjointPaths(g, s, d)
			min := g.Degree(s)
			if dd := g.Degree(d); dd < min {
				min = dd
			}
			if flow > min {
				t.Fatalf("%d->%d: flow %d exceeds min degree %d", s, d, flow, min)
			}
		}
	}
}

func TestMaxEdgeDisjointSymmetric(t *testing.T) {
	g := randomGraph(xrand.New(22), 25, 0.3)
	for s := NodeID(0); s < 25; s += 3 {
		for d := NodeID(1); d < 25; d += 4 {
			if s == d {
				continue
			}
			if a, b := MaxEdgeDisjointPaths(g, s, d), MaxEdgeDisjointPaths(g, d, s); a != b {
				t.Fatalf("%d<->%d: asymmetric flow %d vs %d", s, d, a, b)
			}
		}
	}
}

func TestMaxNodeDisjointBasics(t *testing.T) {
	// Cycle: exactly 2 node-disjoint paths between opposite nodes.
	if got := MaxNodeDisjointPaths(cycle(6), 0, 3); got != 2 {
		t.Fatalf("cycle node-disjoint = %d, want 2", got)
	}
	// Line: 1.
	if got := MaxNodeDisjointPaths(line(5), 0, 4); got != 1 {
		t.Fatalf("line node-disjoint = %d, want 1", got)
	}
	// K5: direct edge + 3 two-hop paths = 4.
	if got := MaxNodeDisjointPaths(complete(5), 0, 4); got != 4 {
		t.Fatalf("K5 node-disjoint = %d, want 4", got)
	}
}

func TestNodeDisjointAtMostEdgeDisjoint(t *testing.T) {
	g := randomGraph(xrand.New(23), 28, 0.2)
	for s := NodeID(0); s < 28; s += 4 {
		for d := NodeID(1); d < 28; d += 5 {
			if s == d {
				continue
			}
			nd := MaxNodeDisjointPaths(g, s, d)
			ed := MaxEdgeDisjointPaths(g, s, d)
			if nd > ed {
				t.Fatalf("%d->%d: node-disjoint %d > edge-disjoint %d", s, d, nd, ed)
			}
		}
	}
}

func TestBisectionCycle(t *testing.T) {
	// A cycle's bisection width is exactly 2.
	if got := BisectionEstimate(cycle(16), 20, 1, 2); got != 2 {
		t.Fatalf("cycle bisection = %d, want 2", got)
	}
}

func TestBisectionCompleteGraph(t *testing.T) {
	// K8 split 4/4 always cuts 16 edges regardless of the split.
	if got := BisectionEstimate(complete(8), 5, 1, 1); got != 16 {
		t.Fatalf("K8 bisection = %d, want 16", got)
	}
}

func TestBisectionUpperBoundAndDeterminism(t *testing.T) {
	g := randomGraph(xrand.New(24), 40, 0.15)
	a := BisectionEstimate(g, 10, 7, 3)
	b := BisectionEstimate(g, 10, 7, 1)
	if a != b {
		t.Fatalf("bisection not deterministic across worker counts: %d vs %d", a, b)
	}
	if a < 0 || a > g.NumEdges() {
		t.Fatalf("bisection %d out of range", a)
	}
	// More trials can only improve (lower or equal) the estimate.
	more := BisectionEstimate(g, 40, 7, 3)
	if more > a {
		t.Fatalf("more trials worsened the estimate: %d > %d", more, a)
	}
}

func TestBisectionDegenerate(t *testing.T) {
	if BisectionEstimate(line(1), 5, 1, 1) != 0 {
		t.Fatal("single node bisection should be 0")
	}
	if BisectionEstimate(cycle(4), 0, 1, 1) != 0 {
		t.Fatal("zero trials should be 0")
	}
}
