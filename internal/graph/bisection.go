package graph

import (
	"repro/internal/par"
	"repro/internal/xrand"
)

// BisectionEstimate estimates the graph's bisection width — the minimum
// number of edges crossing any balanced node bipartition — by sampling
// random balanced bipartitions and greedily improving each with
// Kernighan-Lin-style single swaps until a local minimum. The true
// bisection width is NP-hard; the estimate is an upper bound that tightens
// with more trials. The paper cites high bisection bandwidth as one of
// Jellyfish's defining properties; this makes the claim checkable.
//
// trials random starts are distributed over workers (<= 0 for the default
// pool). The result for a fixed seed is deterministic.
func BisectionEstimate(g *Graph, trials int, seed uint64, workers int) int {
	n := g.NumNodes()
	if n < 2 || trials < 1 {
		return 0
	}
	best := make([]int, trials)
	par.ForWorker(trials, workers,
		func() *bisectScratch { return newBisectScratch(n) },
		func(t int, s *bisectScratch) {
			rng := xrand.NewPair(xrand.Mix64(seed^uint64(t)), uint64(t))
			best[t] = s.localMin(g, rng)
		})
	min := best[0]
	for _, b := range best[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

type bisectScratch struct {
	side []bool // true = partition A
	perm []int
}

func newBisectScratch(n int) *bisectScratch {
	return &bisectScratch{side: make([]bool, n), perm: make([]int, n)}
}

// localMin starts from a random balanced bipartition and performs greedy
// improving swaps (one node from each side) until none improves, then
// returns the cut size.
func (s *bisectScratch) localMin(g *Graph, rng *xrand.RNG) int {
	n := g.NumNodes()
	for i := range s.perm {
		s.perm[i] = i
	}
	xrand.ShuffleSlice(rng, s.perm)
	half := n / 2
	for i, v := range s.perm {
		s.side[v] = i < half
	}
	cut := s.cutSize(g)
	// Greedy pass: repeatedly scan random swap candidates; stop after a
	// full pass without improvement.
	for improved := true; improved; {
		improved = false
		xrand.ShuffleSlice(rng, s.perm)
		for _, u := range s.perm {
			// gain of flipping u alone isn't balanced; pair it with the
			// best opposite-side neighbor candidate drawn at random.
			v := s.perm[rng.IntN(n)]
			if s.side[u] == s.side[v] {
				continue
			}
			delta := s.swapDelta(g, NodeID(u), NodeID(v))
			if delta < 0 {
				s.side[u], s.side[v] = s.side[v], s.side[u]
				cut += delta
				improved = true
			}
		}
	}
	return cut
}

func (s *bisectScratch) cutSize(g *Graph) int {
	cut := 0
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v && s.side[u] != s.side[v] {
				cut++
			}
		}
	}
	return cut
}

// swapDelta computes the cut-size change from swapping the sides of u and
// v (which are on opposite sides).
func (s *bisectScratch) swapDelta(g *Graph, u, v NodeID) int {
	delta := 0
	for _, w := range g.Neighbors(u) {
		if w == v {
			continue
		}
		if s.side[w] != s.side[u] {
			delta-- // edge was cut, becomes internal
		} else {
			delta++
		}
	}
	for _, w := range g.Neighbors(v) {
		if w == u {
			continue
		}
		if s.side[w] != s.side[v] {
			delta--
		} else {
			delta++
		}
	}
	return delta
}
