package graph

// MaxEdgeDisjointPaths returns the maximum number of pairwise edge-disjoint
// paths between src and dst: by Menger's theorem, the value of a maximum
// flow with unit capacity on every undirected edge. It is the exact upper
// bound against which the greedy Remove-Find method (ksp.EDKSP) can be
// verified, and is used by the test suite for exactly that.
//
// The implementation is Edmonds-Karp specialized to unit capacities on an
// undirected graph: each undirected edge {u, v} becomes a pair of directed
// arcs with one shared unit of capacity in each direction (flow u→v cancels
// flow v→u). Complexity O(E * maxflow), ample for the graph sizes here.
//
// src == dst returns 0.
func MaxEdgeDisjointPaths(g *Graph, src, dst NodeID) int {
	if src == dst {
		return 0
	}
	n := g.NumNodes()
	// Residual capacity per directed link id: initially 1 each way.
	resid := make([]int8, g.NumDirectedLinks())
	for i := range resid {
		resid[i] = 1
	}
	parentLink := make([]int32, n)
	visited := make([]bool, n)
	queue := make([]NodeID, 0, n)

	flow := 0
	for {
		// BFS for an augmenting path in the residual graph.
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		queue = append(queue, src)
		visited[src] = true
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			// Walk u's outgoing links straight off the arena: the link id is
			// the loop index, so no per-neighbor LinkID search is needed.
			lo, hi := g.LinkRange(u)
			for id := lo; id < hi; id++ {
				v := g.nbr[id]
				if visited[v] || resid[id] <= 0 {
					continue
				}
				visited[v] = true
				parentLink[v] = id
				if v == dst {
					found = true
					break bfs
				}
				queue = append(queue, v)
			}
		}
		if !found {
			return flow
		}
		// Augment one unit along the path: push forward, restore reverse.
		for v := dst; v != src; {
			id := parentLink[v]
			resid[id]--
			resid[g.rev[id]]++
			v = g.owner[id]
		}
		flow++
	}
}

// MaxNodeDisjointPaths returns the maximum number of internally
// node-disjoint src→dst paths (paths sharing no intermediate node), via
// the standard node-splitting reduction run as unit-capacity max flow.
// Directly adjacent endpoints contribute one path through the direct edge.
func MaxNodeDisjointPaths(g *Graph, src, dst NodeID) int {
	if src == dst {
		return 0
	}
	n := g.NumNodes()
	// Node splitting: node u becomes u_in (2u) and u_out (2u+1) with a
	// unit arc u_in→u_out; each edge {u,v} becomes u_out→v_in and
	// v_out→u_in. src and dst have infinite node capacity.
	type arc struct {
		to  int32
		cap int8
		rev int32 // index of reverse arc in adj[to]
	}
	adj := make([][]arc, 2*n)
	addArc := func(from, to int32, cap int8) {
		adj[from] = append(adj[from], arc{to: to, cap: cap, rev: int32(len(adj[to]))})
		adj[to] = append(adj[to], arc{to: from, cap: 0, rev: int32(len(adj[from]) - 1)})
	}
	in := func(u NodeID) int32 { return int32(2 * u) }
	out := func(u NodeID) int32 { return int32(2*u + 1) }
	for u := NodeID(0); int(u) < n; u++ {
		cap := int8(1)
		if u == src || u == dst {
			cap = 127
		}
		addArc(in(u), out(u), cap)
		for _, v := range g.Neighbors(u) {
			addArc(out(u), in(v), 1)
		}
	}
	// Edmonds-Karp on the split graph.
	source, sink := out(src), in(dst)
	parentNode := make([]int32, 2*n)
	parentArc := make([]int32, 2*n)
	flow := 0
	for {
		for i := range parentNode {
			parentNode[i] = -1
		}
		parentNode[source] = source
		queue := []int32{source}
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for ai, a := range adj[u] {
				if a.cap <= 0 || parentNode[a.to] >= 0 {
					continue
				}
				parentNode[a.to] = u
				parentArc[a.to] = int32(ai)
				if a.to == sink {
					found = true
					break bfs
				}
				queue = append(queue, a.to)
			}
		}
		if !found {
			return flow
		}
		for v := sink; v != source; {
			u := parentNode[v]
			a := &adj[u][parentArc[v]]
			a.cap--
			adj[v][a.rev].cap++
			v = u
		}
		flow++
	}
}
