package graph

import (
	"repro/internal/xrand"
)

// TieBreak selects how a shortest-path search chooses among equally short
// alternatives. This is the knob behind the paper's KSP-vs-rKSP distinction.
type TieBreak int

const (
	// TieDeterministic reproduces the textbook bias the paper analyses:
	// nodes are explored in ascending id order, and a node keeps the first
	// (smallest-id) predecessor that discovers it. Repeated searches return
	// the identical path.
	TieDeterministic TieBreak = iota
	// TieRandom explores each frontier in random order and picks a
	// predecessor uniformly among all equal-distance discoverers via
	// reservoir sampling, so equally short paths are sampled without the
	// node-id bias.
	TieRandom
)

// SPEngine runs repeated single-pair shortest-path searches on one graph
// with O(1) amortized reset cost. It supports banning nodes and (directed
// or undirected) edges, which is how Yen's algorithm and the Remove-Find
// method express their temporary graph modifications without copying the
// graph.
//
// An SPEngine is not safe for concurrent use; parallel workers each create
// their own engine over the shared immutable Graph.
type SPEngine struct {
	g   *Graph
	tie TieBreak
	rng *xrand.RNG

	dist      []int32
	parent    []NodeID
	parentCnt []int32
	seenEpoch []uint32
	epoch     uint32

	banEpoch []uint32
	banCur   uint32
	edgeBans map[uint64]struct{}

	frontier, next []NodeID
}

// NewSPEngine returns an engine over g. rng is required for TieRandom and
// ignored for TieDeterministic.
func NewSPEngine(g *Graph, tie TieBreak, rng *xrand.RNG) *SPEngine {
	if tie == TieRandom && rng == nil {
		panic("graph: TieRandom requires an RNG")
	}
	n := g.NumNodes()
	return &SPEngine{
		g:         g,
		tie:       tie,
		rng:       rng,
		dist:      make([]int32, n),
		parent:    make([]NodeID, n),
		parentCnt: make([]int32, n),
		seenEpoch: make([]uint32, n),
		banEpoch:  make([]uint32, n),
		banCur:    1,
		edgeBans:  make(map[uint64]struct{}),
	}
}

// Graph returns the graph the engine searches.
func (e *SPEngine) Graph() *Graph { return e.g }

// BanNode excludes u from subsequent searches until ClearBans.
func (e *SPEngine) BanNode(u NodeID) { e.banEpoch[u] = e.banCur }

// NodeBanned reports whether u is currently banned.
func (e *SPEngine) NodeBanned(u NodeID) bool { return e.banEpoch[u] == e.banCur }

// BanDirectedEdge excludes traversals u→v (but not v→u) until ClearBans.
func (e *SPEngine) BanDirectedEdge(u, v NodeID) {
	e.edgeBans[DirectedEdgeKey(u, v)] = struct{}{}
}

// BanUndirectedEdge excludes the edge {u, v} in both directions until
// ClearBans.
func (e *SPEngine) BanUndirectedEdge(u, v NodeID) {
	e.edgeBans[DirectedEdgeKey(u, v)] = struct{}{}
	e.edgeBans[DirectedEdgeKey(v, u)] = struct{}{}
}

// ClearBans removes all node and edge bans in O(1) + O(#edge bans).
func (e *SPEngine) ClearBans() {
	e.banCur++
	if len(e.edgeBans) > 0 {
		clear(e.edgeBans)
	}
}

// ShortestPath returns a shortest src→dst path respecting current bans, and
// whether one exists. With TieDeterministic the same arguments always yield
// the same path; with TieRandom ties are broken randomly.
//
// A banned src or dst makes the search fail, except that searches from a
// banned src are still permitted when src == dst is not involved — Yen's
// algorithm never needs that case, so we keep the simple rule: bans win.
func (e *SPEngine) ShortestPath(src, dst NodeID) (Path, bool) {
	if e.NodeBanned(src) || e.NodeBanned(dst) {
		return nil, false
	}
	if src == dst {
		return Path{src}, true
	}
	e.epoch++
	e.seenEpoch[src] = e.epoch
	e.dist[src] = 0
	e.parent[src] = -1
	e.frontier = append(e.frontier[:0], src)

	useEdgeBans := len(e.edgeBans) > 0
	for level := int32(0); len(e.frontier) > 0; level++ {
		if e.tie == TieRandom {
			xrand.ShuffleSlice(e.rng, e.frontier)
		}
		e.next = e.next[:0]
		for _, u := range e.frontier {
			for _, v := range e.g.nbr[e.g.start[u]:e.g.start[u+1]] {
				if e.banEpoch[v] == e.banCur {
					continue
				}
				if useEdgeBans {
					if _, banned := e.edgeBans[DirectedEdgeKey(u, v)]; banned {
						continue
					}
				}
				if e.seenEpoch[v] != e.epoch {
					e.seenEpoch[v] = e.epoch
					e.dist[v] = level + 1
					e.parent[v] = u
					e.parentCnt[v] = 1
					e.next = append(e.next, v)
				} else if e.tie == TieRandom && e.dist[v] == level+1 {
					// Reservoir-sample a uniform predecessor among all
					// equal-distance discoverers.
					e.parentCnt[v]++
					if e.rng.IntN(int(e.parentCnt[v])) == 0 {
						e.parent[v] = u
					}
				}
			}
		}
		if e.seenEpoch[dst] == e.epoch {
			// dst was discovered in the level just expanded; all its
			// potential predecessors have voted, so the parent choice is
			// final.
			return e.extract(src, dst), true
		}
		e.frontier, e.next = e.next, e.frontier
	}
	return nil, false
}

// Distance returns the banned-aware shortest distance src→dst in hops, or
// -1 if unreachable.
func (e *SPEngine) Distance(src, dst NodeID) int32 {
	p, ok := e.ShortestPath(src, dst)
	if !ok {
		return -1
	}
	return int32(p.Hops())
}

func (e *SPEngine) extract(src, dst NodeID) Path {
	n := int(e.dist[dst]) + 1
	p := make(Path, n)
	u := dst
	for i := n - 1; i >= 0; i-- {
		p[i] = u
		u = e.parent[u]
	}
	if p[0] != src {
		panic("graph: path extraction lost the source")
	}
	return p
}

// AllDistancesFrom fills dist with hop distances from src to every node,
// using -1 for unreachable nodes. Bans are respected. dist must have length
// NumNodes.
func (e *SPEngine) AllDistancesFrom(src NodeID, dist []int32) {
	if len(dist) != e.g.NumNodes() {
		panic("graph: dist slice has wrong length")
	}
	for i := range dist {
		dist[i] = -1
	}
	if e.NodeBanned(src) {
		return
	}
	e.epoch++
	e.seenEpoch[src] = e.epoch
	dist[src] = 0
	e.frontier = append(e.frontier[:0], src)
	useEdgeBans := len(e.edgeBans) > 0
	for level := int32(0); len(e.frontier) > 0; level++ {
		e.next = e.next[:0]
		for _, u := range e.frontier {
			for _, v := range e.g.nbr[e.g.start[u]:e.g.start[u+1]] {
				if e.banEpoch[v] == e.banCur || e.seenEpoch[v] == e.epoch {
					continue
				}
				if useEdgeBans {
					if _, banned := e.edgeBans[DirectedEdgeKey(u, v)]; banned {
						continue
					}
				}
				e.seenEpoch[v] = e.epoch
				dist[v] = level + 1
				e.next = append(e.next, v)
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}
}
