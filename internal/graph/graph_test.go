package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// line returns the path graph 0-1-2-...-(n-1).
func line(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Graph()
}

// cycle returns the ring graph on n nodes.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.Graph()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.Graph()
}

// randomGraph returns an Erdos-Renyi-ish graph for property tests.
func randomGraph(rng *xrand.RNG, n int, p float64) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return b.Graph()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if !b.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) should be new")
	}
	if b.AddEdge(1, 0) {
		t.Fatal("AddEdge(1,0) duplicates {0,1}")
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if b.Degree(0) != 1 || b.Degree(2) != 0 {
		t.Fatal("degree wrong after one edge")
	}
	if !b.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report success")
	}
	if b.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge of missing edge should report false")
	}
	if b.HasEdge(0, 1) {
		t.Fatal("edge survived removal")
	}
}

func TestBuilderSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self loop did not panic")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestGraphFreeze(t *testing.T) {
	b := NewBuilder(5)
	edges := [][2]NodeID{{0, 3}, {0, 1}, {3, 4}, {1, 2}, {2, 3}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Graph()
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(edges))
	}
	if g.NumDirectedLinks() != 2*len(edges) {
		t.Fatalf("NumDirectedLinks = %d", g.NumDirectedLinks())
	}
	// Neighbors sorted ascending.
	nb := g.Neighbors(3)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors of 3 not sorted: %v", nb)
		}
	}
	// Frozen graph unaffected by later builder edits.
	b.AddEdge(0, 4)
	if g.HasEdge(0, 4) {
		t.Fatal("frozen graph saw a later builder edit")
	}
}

func TestLinkIDsAreDenseAndInvertible(t *testing.T) {
	g := randomGraph(xrand.New(5), 40, 0.2)
	seen := make([]bool, g.NumDirectedLinks())
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			id := g.LinkID(u, v)
			if id < 0 || int(id) >= g.NumDirectedLinks() {
				t.Fatalf("LinkID(%d,%d) = %d out of range", u, v, id)
			}
			if seen[id] {
				t.Fatalf("link id %d assigned twice", id)
			}
			seen[id] = true
			uu, vv := g.LinkEndpoints(id)
			if uu != u || vv != v {
				t.Fatalf("LinkEndpoints(%d) = (%d,%d), want (%d,%d)", id, uu, vv, u, v)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("link id %d never assigned", id)
		}
	}
	if g.LinkID(0, 0) != -1 {
		t.Fatal("LinkID of non-edge should be -1")
	}
}

func TestIsRegular(t *testing.T) {
	if d, ok := cycle(6).IsRegular(); !ok || d != 2 {
		t.Fatalf("cycle: IsRegular = (%d,%v)", d, ok)
	}
	if _, ok := line(5).IsRegular(); ok {
		t.Fatal("line graph reported regular")
	}
	if d, ok := complete(7).IsRegular(); !ok || d != 6 {
		t.Fatalf("K7: IsRegular = (%d,%v)", d, ok)
	}
}

func TestIsConnected(t *testing.T) {
	if !line(10).IsConnected() {
		t.Fatal("line should be connected")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if b.Graph().IsConnected() {
		t.Fatal("two components reported connected")
	}
	if !NewBuilder(1).Graph().IsConnected() {
		t.Fatal("single node should count as connected")
	}
}

func TestClone(t *testing.T) {
	g := randomGraph(xrand.New(8), 25, 0.3)
	c := g.Clone().Graph()
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone edges = %d, want %d", c.NumEdges(), g.NumEdges())
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if !c.HasEdge(u, v) {
				t.Fatalf("clone missing edge %d-%d", u, v)
			}
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g := line(5)
	p := Path{0, 1, 2, 3}
	if p.Hops() != 3 || p.Src() != 0 || p.Dst() != 3 {
		t.Fatal("basic accessors wrong")
	}
	if !p.ValidIn(g) {
		t.Fatal("valid path rejected")
	}
	if (Path{0, 2}).ValidIn(g) {
		t.Fatal("invalid path accepted")
	}
	if !p.Loopless() || (Path{0, 1, 0}).Loopless() {
		t.Fatal("Loopless wrong")
	}
	q := p.Clone()
	q[0] = 4
	if p[0] == 4 {
		t.Fatal("Clone aliases")
	}
	if !p.Equal(Path{0, 1, 2, 3}) || p.Equal(Path{0, 1, 2}) || p.Equal(Path{0, 1, 2, 4}) {
		t.Fatal("Equal wrong")
	}
	if p.String() != "0->1->2->3" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPathLinks(t *testing.T) {
	g := cycle(4)
	p := Path{0, 1, 2}
	links := p.Links(g, nil)
	if len(links) != 2 {
		t.Fatalf("Links count = %d", len(links))
	}
	if links[0] != g.LinkID(0, 1) || links[1] != g.LinkID(1, 2) {
		t.Fatal("wrong link ids")
	}
}

func TestSharedEdgesAndDisjoint(t *testing.T) {
	p := Path{0, 1, 2, 3}
	q := Path{5, 2, 1, 6} // shares {1,2} regardless of direction
	if p.SharedEdges(q) != 1 {
		t.Fatalf("SharedEdges = %d, want 1", p.SharedEdges(q))
	}
	if p.EdgeDisjoint(q) {
		t.Fatal("EdgeDisjoint wrong")
	}
	r := Path{4, 5, 6}
	if !p.EdgeDisjoint(r) {
		t.Fatal("disjoint paths reported sharing")
	}
	if (Path{0}).SharedEdges(p) != 0 {
		t.Fatal("degenerate path should share nothing")
	}
}

func TestEdgeKeys(t *testing.T) {
	if UndirectedEdgeKey(3, 7) != UndirectedEdgeKey(7, 3) {
		t.Fatal("undirected key not symmetric")
	}
	if DirectedEdgeKey(3, 7) == DirectedEdgeKey(7, 3) {
		t.Fatal("directed key should be asymmetric")
	}
	f := func(a, b uint16, c, d uint16) bool {
		u1, v1, u2, v2 := NodeID(a), NodeID(b), NodeID(c), NodeID(d)
		if u1 == u2 && v1 == v2 {
			return true
		}
		return DirectedEdgeKey(u1, v1) != DirectedEdgeKey(u2, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
