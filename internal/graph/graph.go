// Package graph implements the graph substrate used by every other package
// in this repository: a compact undirected graph with sorted adjacency
// lists, breadth-first shortest-path machinery with pluggable tie-breaking
// (deterministic-by-id and randomized — the heart of the paper's rKSP
// heuristic), weighted Dijkstra, and whole-graph metrics such as average
// shortest path length and diameter.
//
// Graphs are immutable once built via Builder.Graph, which makes them safe
// to share across the worker pools used for all-pairs path computation and
// simulation. Algorithms that conceptually "remove" nodes or edges (Yen's
// algorithm, the Remove-Find edge-disjoint method) express removals as ban
// predicates on a search engine rather than by mutating the graph.
//
// # Representation
//
// The graph is stored in CSR (compressed sparse row) form: one flat
// neighbor arena shared by all nodes, indexed by per-node start offsets.
// The directed link index of u→v is simply that neighbor's position in the
// arena, so every per-link array in the simulators indexes the same dense
// id space the arena defines. Two packed side tables make link ids fully
// navigable in O(1): owner[l] is the source node of link l (LinkEndpoints
// needs no search) and rev[l] is the id of the opposite direction
// (ReverseLink). There is no per-node slice header and no per-node
// allocation: a graph is six flat arrays regardless of node count, which
// is what lets a 10k-switch Jellyfish instance stay a few megabytes.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"iter"
)

// NodeID identifies a node (switch) in a graph. IDs are dense in [0, N).
type NodeID = int32

// Graph is an immutable undirected graph with nodes 0..N-1 in CSR form.
// Adjacency lists are sorted ascending, which fixes the deterministic
// exploration order that the paper's "vanilla KSP" bias analysis depends
// on.
//
// Every directed link (u,v) — one direction of an undirected edge — has a
// dense link index in [0, NumDirectedLinks()), used by the throughput model
// and the simulators for O(1) per-link state arrays. Link l runs from
// owner[l] to nbr[l]; rev[l] is the link of the opposite direction.
type Graph struct {
	n     int
	m     int      // number of undirected edges
	nbr   []NodeID // neighbor arena: nbr[start[u]:start[u+1]] sorted ascending
	start []int32  // start[u] is the link index of u's first outgoing link
	owner []NodeID // owner[l] is the source node of directed link l
	rev   []int32  // rev[l] is the link id of the reverse direction
}

// Builder accumulates edges and produces an immutable Graph. Adjacency is
// kept as per-node sorted slices, so freezing is a straight concatenation
// and build memory stays within a small constant of the final graph
// (unlike the per-node hash maps this replaced, which cost several times
// the frozen size at Jellyfish scale).
// The zero value is not usable; call NewBuilder.
type Builder struct {
	n   int
	adj [][]NodeID // sorted ascending, no duplicates
}

// NewBuilder returns a Builder for a graph with n nodes and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, adj: make([][]NodeID, n)}
}

// searchSorted returns the position of v in the sorted list, or the
// position it would be inserted at if absent.
func searchSorted(lst []NodeID, v NodeID) int {
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lst[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AddEdge inserts the undirected edge {u, v}. Inserting an existing edge is
// a no-op and returns false. Self loops are rejected with a panic: neither
// Jellyfish construction nor any algorithm here tolerates them.
func (b *Builder) AddEdge(u, v NodeID) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self loop on node %d", u))
	}
	b.check(u)
	b.check(v)
	lst, ok := insertSorted(b.adj[u], v)
	if !ok {
		return false
	}
	b.adj[u] = lst
	b.adj[v], _ = insertSorted(b.adj[v], u)
	return true
}

func insertSorted(lst []NodeID, v NodeID) ([]NodeID, bool) {
	i := searchSorted(lst, v)
	if i < len(lst) && lst[i] == v {
		return lst, false
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = v
	return lst, true
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it existed.
func (b *Builder) RemoveEdge(u, v NodeID) bool {
	b.check(u)
	b.check(v)
	lst, ok := deleteSorted(b.adj[u], v)
	if !ok {
		return false
	}
	b.adj[u] = lst
	b.adj[v], _ = deleteSorted(b.adj[v], u)
	return true
}

func deleteSorted(lst []NodeID, v NodeID) ([]NodeID, bool) {
	i := searchSorted(lst, v)
	if i >= len(lst) || lst[i] != v {
		return lst, false
	}
	copy(lst[i:], lst[i+1:])
	return lst[:len(lst)-1], true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (b *Builder) HasEdge(u, v NodeID) bool {
	b.check(u)
	b.check(v)
	lst := b.adj[u]
	i := searchSorted(lst, v)
	return i < len(lst) && lst[i] == v
}

// Degree returns the current degree of u.
func (b *Builder) Degree(u NodeID) int {
	b.check(u)
	return len(b.adj[u])
}

// NumNodes returns the node count.
func (b *Builder) NumNodes() int { return b.n }

func (b *Builder) check(u NodeID) {
	if u < 0 || int(u) >= b.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, b.n))
	}
}

// Graph freezes the builder's current edge set into an immutable Graph.
// The builder remains usable afterwards.
func (b *Builder) Graph() *Graph {
	total := 0
	for u := range b.adj {
		total += len(b.adj[u])
	}
	g := &Graph{
		n:     b.n,
		m:     total / 2,
		nbr:   make([]NodeID, total),
		start: make([]int32, b.n+1),
		owner: make([]NodeID, total),
		rev:   make([]int32, total),
	}
	pos := int32(0)
	for u := range b.adj {
		g.start[u] = pos
		copy(g.nbr[pos:], b.adj[u])
		for i := range b.adj[u] {
			g.owner[pos+int32(i)] = NodeID(u)
		}
		pos += int32(len(b.adj[u]))
	}
	g.start[b.n] = pos
	g.fillReverse()
	return g
}

// fillReverse populates rev from nbr/start/owner: the reverse of link
// l = u→v sits at v's offset of u in the arena.
func (g *Graph) fillReverse() {
	for l := range g.nbr {
		v := g.nbr[l]
		seg := g.nbr[g.start[v]:g.start[v+1]]
		g.rev[l] = g.start[v] + int32(searchSorted(seg, g.owner[l]))
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// Fingerprint returns a 64-bit FNV-1a hash of the graph's structure: the
// node count and every (sorted) adjacency list. Two graphs are
// fingerprint-equal exactly when they have the same node count and edge
// set, so the on-disk path cache can key archived databases to the exact
// topology instance they were computed on.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.n))
	put(uint64(g.m))
	for u := 0; u < g.n; u++ {
		for _, v := range g.nbr[g.start[u]:g.start[u+1]] {
			put(uint64(uint32(v)))
		}
		put(^uint64(0)) // per-list terminator: [0,1],[2] != [0],[1,2]
	}
	return h.Sum64()
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// NumDirectedLinks returns the number of directed links (2 × NumEdges).
func (g *Graph) NumDirectedLinks() int { return 2 * g.m }

// Neighbors returns u's neighbor list, sorted ascending: a view into the
// shared arena, valid for the life of the graph, that must not be
// modified. Neighbor i of the returned slice is the target of directed
// link LinkRange(u).lo + i.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	return g.nbr[g.start[u]:g.start[u+1]:g.start[u+1]]
}

// LinkRange returns the half-open range [lo, hi) of u's outgoing directed
// link ids. Iterating it visits u's neighbors in ascending order via
// LinkTarget, with the link id in hand — the allocation-free way hot loops
// walk the arena without chasing per-node slice headers.
func (g *Graph) LinkRange(u NodeID) (lo, hi int32) {
	return g.start[u], g.start[u+1]
}

// LinkTarget returns the destination node of a directed link: v for
// l = LinkID(u, v).
func (g *Graph) LinkTarget(l int32) NodeID { return g.nbr[l] }

// LinkSource returns the source node of a directed link: u for
// l = LinkID(u, v), via the packed owner table in O(1).
func (g *Graph) LinkSource(l int32) NodeID { return g.owner[l] }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return int(g.start[u+1] - g.start[u]) }

// HasEdge reports whether {u, v} is an edge, by binary search over u's
// arena segment.
func (g *Graph) HasEdge(u, v NodeID) bool {
	return g.neighborIndex(u, v) >= 0
}

// LinkID returns the dense index of the directed link u→v, or -1 if {u, v}
// is not an edge. Cost is a binary search over u's sorted neighbors (≤ 5
// probes at Jellyfish degrees, all within one or two cache lines of the
// arena).
func (g *Graph) LinkID(u, v NodeID) int32 {
	i := g.neighborIndex(u, v)
	if i < 0 {
		return -1
	}
	return g.start[u] + int32(i)
}

// LinkEndpoints is the inverse of LinkID: it returns (u, v) for a directed
// link index, in O(1) via the packed owner table. It panics on an
// out-of-range index.
func (g *Graph) LinkEndpoints(l int32) (u, v NodeID) {
	if l < 0 || int(l) >= len(g.nbr) {
		panic(fmt.Sprintf("graph: link %d out of range", l))
	}
	return g.owner[l], g.nbr[l]
}

// ReverseLink returns the link id of the opposite direction: LinkID(v, u)
// for l = LinkID(u, v), in O(1). It panics on an out-of-range index.
func (g *Graph) ReverseLink(l int32) int32 {
	if l < 0 || int(l) >= len(g.nbr) {
		panic(fmt.Sprintf("graph: link %d out of range", l))
	}
	return g.rev[l]
}

func (g *Graph) neighborIndex(u, v NodeID) int {
	seg := g.nbr[g.start[u]:g.start[u+1]]
	i := searchSorted(seg, v)
	if i < len(seg) && seg[i] == v {
		return i
	}
	return -1
}

// Edges iterates every undirected edge exactly once as (u, v) pairs with
// u < v, in ascending (u, v) order, straight off the arena.
func (g *Graph) Edges() iter.Seq2[NodeID, NodeID] {
	return func(yield func(NodeID, NodeID) bool) {
		for u := 0; u < g.n; u++ {
			for _, v := range g.nbr[g.start[u]:g.start[u+1]] {
				if NodeID(u) < v && !yield(NodeID(u), v) {
					return
				}
			}
		}
	}
}

// FootprintBytes returns the retained heap size of the packed
// representation: the neighbor arena, the start offsets and the two link
// tables. It is exact (the arrays are allocated tight) and what
// `jftopo -stats` and the graph benchmark report.
func (g *Graph) FootprintBytes() int64 {
	return int64(4 * (len(g.nbr) + len(g.start) + len(g.owner) + len(g.rev)))
}

// Clone returns a Builder pre-populated with g's edges, for algorithms that
// genuinely need destructive edits (e.g. the fault machinery building a
// failed-edge-filtered view). The adjacency is copied directly out of the
// CSR arena segment by segment — already sorted, no re-hashing, no
// re-sorting — so cloning costs one pass over the arena.
func (g *Graph) Clone() *Builder {
	b := &Builder{n: g.n, adj: make([][]NodeID, g.n)}
	for u := 0; u < g.n; u++ {
		seg := g.nbr[g.start[u]:g.start[u+1]]
		if len(seg) == 0 {
			continue
		}
		lst := make([]NodeID, len(seg))
		copy(lst, seg)
		b.adj[u] = lst
	}
	return b
}

// IsRegular reports whether every node has the same degree, and that degree.
func (g *Graph) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if g.Degree(NodeID(u)) != d {
			return 0, false
		}
	}
	return d, true
}

// IsConnected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	visited := make([]bool, g.n)
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, 0)
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.nbr[g.start[u]:g.start[u+1]] {
			if !visited[v] {
				visited[v] = true
				seen++
				queue = append(queue, v)
			}
		}
	}
	return seen == g.n
}
