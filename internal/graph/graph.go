// Package graph implements the graph substrate used by every other package
// in this repository: a compact undirected graph with sorted adjacency
// lists, breadth-first shortest-path machinery with pluggable tie-breaking
// (deterministic-by-id and randomized — the heart of the paper's rKSP
// heuristic), weighted Dijkstra, and whole-graph metrics such as average
// shortest path length and diameter.
//
// Graphs are immutable once built via Builder.Graph, which makes them safe
// to share across the worker pools used for all-pairs path computation and
// simulation. Algorithms that conceptually "remove" nodes or edges (Yen's
// algorithm, the Remove-Find edge-disjoint method) express removals as ban
// predicates on a search engine rather than by mutating the graph.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// NodeID identifies a node (switch) in a graph. IDs are dense in [0, N).
type NodeID = int32

// Graph is an immutable undirected graph with nodes 0..N-1. Adjacency lists
// are sorted ascending, which fixes the deterministic exploration order that
// the paper's "vanilla KSP" bias analysis depends on.
//
// Every directed link (u,v) — one direction of an undirected edge — has a
// dense link index in [0, NumDirectedLinks()), used by the throughput model
// and the simulators for O(1) per-link state arrays.
type Graph struct {
	n     int
	adj   [][]NodeID
	start []int32 // start[u] is the link index of u's first outgoing link
	m     int     // number of undirected edges
}

// Builder accumulates edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	n   int
	adj []map[NodeID]struct{}
}

// NewBuilder returns a Builder for a graph with n nodes and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	adj := make([]map[NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[NodeID]struct{})
	}
	return &Builder{n: n, adj: adj}
}

// AddEdge inserts the undirected edge {u, v}. Inserting an existing edge is
// a no-op and returns false. Self loops are rejected with a panic: neither
// Jellyfish construction nor any algorithm here tolerates them.
func (b *Builder) AddEdge(u, v NodeID) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self loop on node %d", u))
	}
	b.check(u)
	b.check(v)
	if _, ok := b.adj[u][v]; ok {
		return false
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
	return true
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it existed.
func (b *Builder) RemoveEdge(u, v NodeID) bool {
	b.check(u)
	b.check(v)
	if _, ok := b.adj[u][v]; !ok {
		return false
	}
	delete(b.adj[u], v)
	delete(b.adj[v], u)
	return true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (b *Builder) HasEdge(u, v NodeID) bool {
	b.check(u)
	b.check(v)
	_, ok := b.adj[u][v]
	return ok
}

// Degree returns the current degree of u.
func (b *Builder) Degree(u NodeID) int {
	b.check(u)
	return len(b.adj[u])
}

// NumNodes returns the node count.
func (b *Builder) NumNodes() int { return b.n }

func (b *Builder) check(u NodeID) {
	if u < 0 || int(u) >= b.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, b.n))
	}
}

// Graph freezes the builder's current edge set into an immutable Graph.
// The builder remains usable afterwards.
func (b *Builder) Graph() *Graph {
	g := &Graph{
		n:     b.n,
		adj:   make([][]NodeID, b.n),
		start: make([]int32, b.n+1),
	}
	total := 0
	for u := range b.adj {
		lst := make([]NodeID, 0, len(b.adj[u]))
		for v := range b.adj[u] {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		g.adj[u] = lst
		g.start[u] = int32(total)
		total += len(lst)
	}
	g.start[b.n] = int32(total)
	g.m = total / 2
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// Fingerprint returns a 64-bit FNV-1a hash of the graph's structure: the
// node count and every (sorted) adjacency list. Two graphs are
// fingerprint-equal exactly when they have the same node count and edge
// set, so the on-disk path cache can key archived databases to the exact
// topology instance they were computed on.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.n))
	put(uint64(g.m))
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			put(uint64(uint32(v)))
		}
		put(^uint64(0)) // per-list terminator: [0,1],[2] != [0],[1,2]
	}
	return h.Sum64()
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// NumDirectedLinks returns the number of directed links (2 × NumEdges).
func (g *Graph) NumDirectedLinks() int { return 2 * g.m }

// Neighbors returns u's neighbor list, sorted ascending. The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v NodeID) bool {
	return g.neighborIndex(u, v) >= 0
}

// LinkID returns the dense index of the directed link u→v, or -1 if {u, v}
// is not an edge.
func (g *Graph) LinkID(u, v NodeID) int32 {
	i := g.neighborIndex(u, v)
	if i < 0 {
		return -1
	}
	return g.start[u] + int32(i)
}

// LinkEndpoints is the inverse of LinkID: it returns (u, v) for a directed
// link index. It panics on an out-of-range index.
func (g *Graph) LinkEndpoints(link int32) (u, v NodeID) {
	if link < 0 || int(link) >= g.NumDirectedLinks() {
		panic(fmt.Sprintf("graph: link %d out of range", link))
	}
	// Binary search the start array for the owning node.
	u = NodeID(sort.Search(g.n, func(i int) bool { return g.start[i+1] > link }))
	v = g.adj[u][link-g.start[u]]
	return u, v
}

func (g *Graph) neighborIndex(u, v NodeID) int {
	lst := g.adj[u]
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if lst[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lst) && lst[lo] == v {
		return lo
	}
	return -1
}

// Clone returns a Builder pre-populated with g's edges, for algorithms that
// genuinely need destructive edits (e.g. the Remove-Find disjoint-path
// method operating on a private copy).
func (g *Graph) Clone() *Builder {
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				b.AddEdge(NodeID(u), v)
			}
		}
	}
	return b
}

// IsRegular reports whether every node has the same degree, and that degree.
func (g *Graph) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if g.Degree(NodeID(u)) != d {
			return 0, false
		}
	}
	return d, true
}

// IsConnected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	visited := make([]bool, g.n)
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, 0)
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				seen++
				queue = append(queue, v)
			}
		}
	}
	return seen == g.n
}
