// Command benchjson benchmarks the CSR-packed graph core on the paper's
// medium topology and the 10k-scale-track RRG(2000,24,19), writing the
// results as JSON so `make bench` can track the substrate across commits
// (BENCH_graph.json at the repo root is the committed baseline):
//
//	go run ./internal/graph/benchjson -o BENCH_graph.json
//
// Four quantities matter:
//
//   - build time: NewBuilder + AddEdge over the full edge list + Graph(),
//     for the sorted-slice builder versus the per-node-map builder it
//     replaced (replicated here as the baseline);
//   - bytes/node: exact resident size of the packed graph versus the
//     modeled footprint of the representation it replaced. The baseline is
//     what the old stack had to keep resident for the same O(1) link-id
//     service: the per-node slice adjacency (headers + size-class-rounded
//     backings + start array) PLUS flitsim's dense n² (u,v)→link table,
//     which the old code allocated for every topology up to its 16 MB gate
//     (both benchmarked topologies are under it; past ~2048 switches the
//     old stack had no O(1) path at all — that cliff is what this PR
//     removes). slice_graph_bytes_per_node reports the graph-only slice
//     footprint separately so both comparisons stay visible;
//   - BFS all-pairs rate: sources/sec of a full all-pairs sweep on the
//     packed arena versus an identical BFS over a materialized [][]NodeID
//     adjacency (the acceptance bar: no regression);
//   - link-op throughput: LinkID (binary search both before and after —
//     the arena just drops the header chase) and LinkEndpoints (old:
//     binary search of the start array; new: O(1) owner-table load).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/xrand"
)

type topoReport struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`

	BuildSeconds    float64 `json:"build_seconds"`
	MapBuildSeconds float64 `json:"map_build_seconds"`
	BuildSpeedup    float64 `json:"build_speedup"`

	PackedBytesPerNode     float64 `json:"packed_bytes_per_node"`
	SliceGraphBytesPerNode float64 `json:"slice_graph_bytes_per_node"`
	DenseTableBytesPerNode float64 `json:"dense_table_bytes_per_node"`
	SliceBytesPerNode      float64 `json:"slice_bytes_per_node"`
	PackedFraction         float64 `json:"packed_fraction"`

	BFSAllPairsSourcesPerSec      float64 `json:"bfs_allpairs_sources_per_sec"`
	SliceBFSAllPairsSourcesPerSec float64 `json:"slice_bfs_allpairs_sources_per_sec"`
	BFSSpeedup                    float64 `json:"bfs_speedup"`

	LinkIDMops           float64 `json:"linkid_mops"`
	SliceLinkIDMops      float64 `json:"slice_linkid_mops"`
	LinkEndpointsMops    float64 `json:"linkendpoints_mops"`
	SliceEndpointsMops   float64 `json:"slice_linkendpoints_mops"`
	LinkEndpointsSpeedup float64 `json:"linkendpoints_speedup"`
}

type report struct {
	Topologies []topoReport `json:"topologies"`
}

func main() {
	var (
		out  = flag.String("o", "BENCH_graph.json", "output file")
		reps = flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	)
	flag.Parse()

	cases := []struct {
		p    jellyfish.Params
		seed uint64
	}{
		{jellyfish.Medium, 1},                        // RRG(720,24,19)
		{jellyfish.Params{N: 2000, X: 24, Y: 19}, 1}, // past the old dense-table comfort zone
	}
	var rep report
	for _, c := range cases {
		rep.Topologies = append(rep.Topologies, benchTopology(c.p, c.seed, *reps))
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func benchTopology(p jellyfish.Params, seed uint64, reps int) topoReport {
	topo, err := jellyfish.New(p, xrand.New(seed))
	if err != nil {
		fatal(err)
	}
	g := topo.G
	n := g.NumNodes()
	var edges [][2]graph.NodeID
	for u, v := range g.Edges() {
		edges = append(edges, [2]graph.NodeID{u, v})
	}
	r := topoReport{Topology: p.String(), Nodes: n, Edges: len(edges)}

	// Build time: sorted-slice builder vs the map builder it replaced.
	r.BuildSeconds = best(reps, func() {
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		sink(b.Graph().NumEdges())
	})
	r.MapBuildSeconds = best(reps, func() {
		b := newMapBuilder(n)
		for _, e := range edges {
			b.addEdge(e[0], e[1])
		}
		sink(b.graph().m)
	})
	r.BuildSpeedup = r.MapBuildSeconds / r.BuildSeconds

	// Footprints. Packed is exact; the slice baseline is modeled from the
	// allocations that representation performed, size-class rounded the
	// way the runtime rounds them (deterministic, no GC wobble).
	r.PackedBytesPerNode = float64(g.FootprintBytes()) / float64(n)
	var sliceBytes int64 = roundSizeClass(int64((n + 1) * 4)) // start array
	sliceBytes += roundSizeClass(int64(n * 24))               // outer slice headers
	for u := 0; u < n; u++ {
		sliceBytes += roundSizeClass(int64(4 * g.Degree(graph.NodeID(u))))
	}
	r.SliceGraphBytesPerNode = float64(sliceBytes) / float64(n)
	if int64(n)*int64(n) <= 4<<20 {
		r.DenseTableBytesPerNode = float64(4 * n) // n² int32 entries over n nodes
	}
	r.SliceBytesPerNode = r.SliceGraphBytesPerNode + r.DenseTableBytesPerNode
	r.PackedFraction = r.PackedBytesPerNode / r.SliceBytesPerNode

	// Reference slice adjacency for the old-representation legs.
	ref := newSliceRep(g)

	// BFS all-pairs: every source, packed arena vs slice adjacency.
	eng := graph.NewSPEngine(g, graph.TieDeterministic, nil)
	seng := newSliceEngine(ref)
	dist := make([]int32, n)
	packedSec := best(reps, func() {
		for s := 0; s < n; s++ {
			eng.AllDistancesFrom(graph.NodeID(s), dist)
		}
		sink(int(dist[n-1]))
	})
	sliceSec := best(reps, func() {
		for s := 0; s < n; s++ {
			seng.allDistancesFrom(graph.NodeID(s), dist)
		}
		sink(int(dist[n-1]))
	})
	r.BFSAllPairsSourcesPerSec = float64(n) / packedSec
	r.SliceBFSAllPairsSourcesPerSec = float64(n) / sliceSec
	r.BFSSpeedup = sliceSec / packedSec

	// Link-op throughput over a shuffled probe set of real links.
	probes := make([]int32, g.NumDirectedLinks())
	for i := range probes {
		probes[i] = int32(i)
	}
	xrand.ShuffleSlice(xrand.New(3), probes)
	pairs := make([][2]graph.NodeID, len(probes))
	for i, l := range probes {
		u, v := g.LinkEndpoints(l)
		pairs[i] = [2]graph.NodeID{u, v}
	}
	const passes = 20
	r.LinkIDMops = mops(passes, len(pairs), best(reps, func() {
		acc := int32(0)
		for pass := 0; pass < passes; pass++ {
			for _, pr := range pairs {
				acc ^= g.LinkID(pr[0], pr[1])
			}
		}
		sink(int(acc))
	}))
	r.SliceLinkIDMops = mops(passes, len(pairs), best(reps, func() {
		acc := int32(0)
		for pass := 0; pass < passes; pass++ {
			for _, pr := range pairs {
				acc ^= ref.linkID(pr[0], pr[1])
			}
		}
		sink(int(acc))
	}))
	r.LinkEndpointsMops = mops(passes, len(probes), best(reps, func() {
		acc := graph.NodeID(0)
		for pass := 0; pass < passes; pass++ {
			for _, l := range probes {
				u, v := g.LinkEndpoints(l)
				acc ^= u ^ v
			}
		}
		sink(int(acc))
	}))
	r.SliceEndpointsMops = mops(passes, len(probes), best(reps, func() {
		acc := graph.NodeID(0)
		for pass := 0; pass < passes; pass++ {
			for _, l := range probes {
				u, v := ref.linkEndpoints(l)
				acc ^= u ^ v
			}
		}
		sink(int(acc))
	}))
	r.LinkEndpointsSpeedup = r.LinkEndpointsMops / r.SliceEndpointsMops

	fmt.Printf("%s: build %.1fx vs map builder; %.0f B/node packed vs %.0f B/node slice+dense (%.0f%%); "+
		"BFS %.0f src/s (slice %.0f, %.2fx); LinkEndpoints %.0f Mops (slice %.0f, %.1fx)\n",
		r.Topology, r.BuildSpeedup, r.PackedBytesPerNode, r.SliceBytesPerNode, 100*r.PackedFraction,
		r.BFSAllPairsSourcesPerSec, r.SliceBFSAllPairsSourcesPerSec, r.BFSSpeedup,
		r.LinkEndpointsMops, r.SliceEndpointsMops, r.LinkEndpointsSpeedup)
	return r
}

// sliceRep replicates the pre-CSR representation: per-node slice
// adjacency with binary-search LinkID and start-array-search endpoints.
type sliceRep struct {
	n     int
	adj   [][]graph.NodeID
	start []int32
}

func newSliceRep(g *graph.Graph) *sliceRep {
	n := g.NumNodes()
	r := &sliceRep{n: n, adj: make([][]graph.NodeID, n), start: make([]int32, n+1)}
	pos := int32(0)
	for u := 0; u < n; u++ {
		src := g.Neighbors(graph.NodeID(u))
		lst := make([]graph.NodeID, len(src))
		copy(lst, src)
		r.adj[u] = lst
		r.start[u] = pos
		pos += int32(len(lst))
	}
	r.start[n] = pos
	return r
}

func (r *sliceRep) linkID(u, v graph.NodeID) int32 {
	lst := r.adj[u]
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if lst[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lst) && lst[lo] == v {
		return r.start[u] + int32(lo)
	}
	return -1
}

func (r *sliceRep) linkEndpoints(link int32) (u, v graph.NodeID) {
	u = graph.NodeID(sort.Search(r.n, func(i int) bool { return r.start[i+1] > link }))
	v = r.adj[u][link-r.start[u]]
	return u, v
}

// sliceEngine replicates SPEngine.AllDistancesFrom field for field and
// branch for branch — epochs, ban checks, edge-ban gate — with only the
// adjacency access swapped from the arena to per-node slices, so the
// measured delta isolates the representation.
type sliceEngine struct {
	r         *sliceRep
	dist      []int32
	seenEpoch []uint32
	epoch     uint32
	banEpoch  []uint32
	banCur    uint32
	edgeBans  map[uint64]struct{}

	frontier, next []graph.NodeID
}

func newSliceEngine(r *sliceRep) *sliceEngine {
	return &sliceEngine{
		r:         r,
		dist:      make([]int32, r.n),
		seenEpoch: make([]uint32, r.n),
		banEpoch:  make([]uint32, r.n),
		banCur:    1,
		edgeBans:  make(map[uint64]struct{}),
	}
}

func (e *sliceEngine) allDistancesFrom(src graph.NodeID, dist []int32) {
	for i := range dist {
		dist[i] = -1
	}
	if e.banEpoch[src] == e.banCur {
		return
	}
	e.epoch++
	e.seenEpoch[src] = e.epoch
	dist[src] = 0
	e.frontier = append(e.frontier[:0], src)
	useEdgeBans := len(e.edgeBans) > 0
	for level := int32(0); len(e.frontier) > 0; level++ {
		e.next = e.next[:0]
		for _, u := range e.frontier {
			for _, v := range e.r.adj[u] {
				if e.banEpoch[v] == e.banCur || e.seenEpoch[v] == e.epoch {
					continue
				}
				if useEdgeBans {
					if _, banned := e.edgeBans[graph.DirectedEdgeKey(u, v)]; banned {
						continue
					}
				}
				e.seenEpoch[v] = e.epoch
				dist[v] = level + 1
				e.next = append(e.next, v)
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}
}

// mapBuilder replicates the pre-CSR per-node-map Builder for the build
// benchmark.
type mapBuilder struct {
	n   int
	adj []map[graph.NodeID]struct{}
}

type mapGraph struct{ m int }

func newMapBuilder(n int) *mapBuilder {
	adj := make([]map[graph.NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[graph.NodeID]struct{})
	}
	return &mapBuilder{n: n, adj: adj}
}

func (b *mapBuilder) addEdge(u, v graph.NodeID) {
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
}

func (b *mapBuilder) graph() mapGraph {
	total := 0
	for u := range b.adj {
		lst := make([]graph.NodeID, 0, len(b.adj[u]))
		for v := range b.adj[u] {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		total += len(lst)
	}
	return mapGraph{m: total / 2}
}

// best runs f reps times and returns the fastest wall time, benchstat's
// "pick the least noisy sample" convention.
func best(reps int, f func()) float64 {
	bestSec := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if s := time.Since(start).Seconds(); i == 0 || s < bestSec {
			bestSec = s
		}
	}
	return bestSec
}

func mops(passes, ops int, sec float64) float64 {
	return float64(passes) * float64(ops) / sec / 1e6
}

var sinkVar int

// sink defeats dead-code elimination of benchmark loops.
func sink(v int) { sinkVar += v }

// roundSizeClass rounds a small-object allocation up the way the Go
// allocator does: to the next size class below 1 KiB, to 8-byte alignment
// above.
func roundSizeClass(n int64) int64 {
	classes := []int64{8, 16, 24, 32, 48, 64, 80, 96, 112, 128,
		144, 160, 176, 192, 208, 224, 240, 256, 288, 320, 352, 384,
		416, 448, 480, 512, 576, 640, 704, 768, 896, 1024}
	for _, c := range classes {
		if n <= c {
			return c
		}
	}
	return (n + 7) &^ 7
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
