package exp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/par"
	"repro/internal/paths"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// DisjointExistenceResult verifies the paper's Section III-A claim that
// "with k = 8 and k = 16, edge-disjoint paths between all pairs of
// switches exist in all of the topologies": for sampled (or all) pairs it
// computes the exact max-flow number of edge-disjoint paths and reports
// the minimum, plus the fraction of pairs meeting each k.
type DisjointExistenceResult struct {
	Params jellyfish.Params
	Pairs  int
	// MinDisjoint is the smallest max-flow value over the pairs; the claim
	// holds for every k <= MinDisjoint.
	MinDisjoint int
	// MeetsK[i] is the fraction of pairs with at least Ks[i] disjoint paths.
	Ks     []int
	MeetsK []float64
}

// DisjointExistence runs the verification. With Scale.PairSample == 0 all
// ordered pairs are checked (use sampling on the large topology).
func DisjointExistence(params jellyfish.Params, ks []int, sc Scale) (*DisjointExistenceResult, error) {
	sc = sc.withDefaults()
	topo, err := sc.buildTopo(params, 0)
	if err != nil {
		return nil, err
	}
	var prs []paths.Pair
	if sc.PairSample > 0 {
		prs = paths.SamplePairs(params.N, sc.PairSample, xrand.New(sc.Seed^0xd15))
	} else {
		prs = paths.AllOrderedPairs(params.N)
	}
	flows := make([]int, len(prs))
	par.For(len(prs), sc.Workers, func(i int) {
		flows[i] = graph.MaxEdgeDisjointPaths(topo.G, prs[i].Src, prs[i].Dst)
	})
	res := &DisjointExistenceResult{Params: params, Pairs: len(prs), Ks: ks}
	res.MinDisjoint = flows[0]
	for _, f := range flows {
		if f < res.MinDisjoint {
			res.MinDisjoint = f
		}
	}
	for _, k := range ks {
		meet := 0
		for _, f := range flows {
			if f >= k {
				meet++
			}
		}
		res.MeetsK = append(res.MeetsK, float64(meet)/float64(len(prs)))
	}
	return res, nil
}

// Table renders the verification.
func (r *DisjointExistenceResult) Table(title string) *stats.Table {
	t := stats.NewTable(title, "k", "Pairs with >= k disjoint paths")
	for i, k := range r.Ks {
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.2f%%", 100*r.MeetsK[i]))
	}
	t.AddRow("min over pairs", fmt.Sprintf("%d", r.MinDisjoint))
	return t
}
