package exp

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
)

// cacheDirEntries counts the cache files a run left behind.
func cacheDirEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestFlitResultsIdenticalWithPathCache is the acceptance check for the
// cache wiring: the cycle-level experiment must produce identical
// results whether its path DBs are computed lazily in-process, built
// eagerly on a cache miss, or streamed back in on a cache hit.
func TestFlitResultsIdenticalWithPathCache(t *testing.T) {
	cfg := FlitConfig{
		Params:  tiny,
		Pattern: "uniform",
		Rates:   []float64{0.3},
	}
	sc := Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 3, Workers: 4}

	plain, err := FlitLatencyCurve(cfg, routing.KSPAdaptive(), sc)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sc.PathCache = dir
	miss, err := FlitLatencyCurve(cfg, routing.KSPAdaptive(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if n := cacheDirEntries(t, dir); n != len(ksp.Algorithms) {
		t.Fatalf("cache dir has %d files after the miss run, want %d", n, len(ksp.Algorithms))
	}
	hit, err := FlitLatencyCurve(cfg, routing.KSPAdaptive(), sc)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, miss) {
		t.Errorf("cache-miss run differs from uncached run:\n%+v\nvs\n%+v", miss, plain)
	}
	if !reflect.DeepEqual(plain, hit) {
		t.Errorf("cache-hit run differs from uncached run:\n%+v\nvs\n%+v", hit, plain)
	}
}

// TestAppResultsIdenticalWithPathCache is the same acceptance check for
// the application-level replay.
func TestAppResultsIdenticalWithPathCache(t *testing.T) {
	cfg := AppConfig{
		Params:       tiny,
		Mapping:      "linear",
		BytesPerRank: 100 * 1500,
		Mechanism:    routing.KSPAdaptive(),
	}
	sc := Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 3, Workers: 4}

	plain, err := AppCommTimes(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.PathCache = t.TempDir()
	miss, err := AppCommTimes(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := AppCommTimes(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, miss) {
		t.Errorf("cache-miss run differs from uncached run")
	}
	if !reflect.DeepEqual(plain, hit) {
		t.Errorf("cache-hit run differs from uncached run")
	}
}

// TestWarmPathCacheServesPathProps checks the jftopo warming workflow:
// WarmPathCache populates the directory with the same derivation the
// experiments use, and a warmed PathProps run reproduces the uncached
// numbers exactly.
func TestWarmPathCacheServesPathProps(t *testing.T) {
	sc := tinyScale()
	plain, err := PathProps([]jellyfish.Params{tiny}, ksp.Algorithms, sc)
	if err != nil {
		t.Fatal(err)
	}

	sc.PathCache = t.TempDir()
	if err := WarmPathCache([]jellyfish.Params{tiny}, ksp.Algorithms, sc); err != nil {
		t.Fatal(err)
	}
	if n := cacheDirEntries(t, sc.PathCache); n != len(ksp.Algorithms) {
		t.Fatalf("warm left %d files, want %d", n, len(ksp.Algorithms))
	}
	cached, err := PathProps([]jellyfish.Params{tiny}, ksp.Algorithms, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Errorf("warmed path-property tables differ from uncached:\n%+v\nvs\n%+v", cached, plain)
	}
}

func TestWarmPathCacheNeedsDir(t *testing.T) {
	if err := WarmPathCache([]jellyfish.Params{tiny}, ksp.Algorithms, tinyScale()); err == nil {
		t.Fatal("WarmPathCache without a directory did not error")
	}
}
