package exp

import (
	"fmt"

	"repro/internal/appsim"
	"repro/internal/faults"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// AppConfig parameterizes the application-simulation experiments
// (Tables V and VI).
type AppConfig struct {
	Params jellyfish.Params
	// Mapping is "linear" or "random".
	Mapping string
	// BytesPerRank is the per-rank send volume (default 15 MB, the
	// paper's setting).
	BytesPerRank int64
	// Mechanism is the per-packet routing mechanism (default KSP-adaptive).
	Mechanism routing.Mechanism
	// Stencils to run (default all four).
	Stencils []traffic.StencilKind
	// Selectors to compare (default rEDKSP, KSP, rKSP — the paper's
	// column order).
	Selectors []ksp.Algorithm
	// FaultSpec optionally injects the same link-failure schedule into
	// every replay (see faults.ParseSpec); random specs are drawn once per
	// topology instance, so all selectors face identical failures.
	FaultSpec string
	// FaultPolicy names the fault policy ("" = reroute with repair).
	FaultPolicy string
}

// AppResult holds the communication times: Seconds[stencil][selector].
type AppResult struct {
	Config    AppConfig
	Stencils  []string
	Selectors []string
	Seconds   [][]float64
}

// AppCommTimes reproduces Table V (linear mapping) or Table VI (random
// mapping): the communication time of each stencil workload under each
// path-selection scheme, averaged over TopoSamples topology instances and
// PatternSamples mapping instances (mapping instances only matter for
// random mapping).
func AppCommTimes(cfg AppConfig, sc Scale) (*AppResult, error) {
	sc = sc.withDefaults()
	if cfg.BytesPerRank == 0 {
		cfg.BytesPerRank = traffic.DefaultTotalBytes
	}
	if len(cfg.Stencils) == 0 {
		cfg.Stencils = traffic.StencilKinds
	}
	if len(cfg.Selectors) == 0 {
		cfg.Selectors = []ksp.Algorithm{ksp.REDKSP, ksp.KSP, ksp.RKSP}
	}
	if cfg.Mapping != "linear" && cfg.Mapping != "random" {
		return nil, fmt.Errorf("exp: unknown mapping %q (want linear or random)", cfg.Mapping)
	}
	policy, err := faults.PolicyByName(cfg.FaultPolicy)
	if err != nil {
		return nil, err
	}
	res := &AppResult{Config: cfg}
	for _, k := range cfg.Stencils {
		res.Stencils = append(res.Stencils, k.String())
	}
	for _, a := range cfg.Selectors {
		res.Selectors = append(res.Selectors, fmt.Sprintf("%s(%d)", a, sc.K))
	}

	sums := make([][]float64, len(cfg.Stencils))
	counts := make([][]int, len(cfg.Stencils))
	for i := range sums {
		sums[i] = make([]float64, len(cfg.Selectors))
		counts[i] = make([]int, len(cfg.Selectors))
	}

	mapSamples := sc.PatternSamples
	if cfg.Mapping == "linear" {
		mapSamples = 1
	}
	for ti := 0; ti < sc.TopoSamples; ti++ {
		topo, err := sc.buildTopo(cfg.Params, ti)
		if err != nil {
			return nil, err
		}
		nTerms := topo.NumTerminals()
		sched, err := faults.ParseSpec(cfg.FaultSpec, topo.G, xrand.Mix64(sc.Seed^uint64(ti)))
		if err != nil {
			return nil, err
		}
		dbs := make([]*paths.DB, len(cfg.Selectors))
		for ai, alg := range cfg.Selectors {
			if dbs[ai], err = sc.pathDB(topo, alg, ti); err != nil {
				return nil, err
			}
		}
		for si, kind := range cfg.Stencils {
			w := traffic.Stencil(traffic.StencilConfig{
				Kind: kind, Ranks: nTerms, TotalBytes: cfg.BytesPerRank,
			})
			for mi := 0; mi < mapSamples; mi++ {
				var mapping traffic.Mapping
				if cfg.Mapping == "linear" {
					mapping = traffic.LinearMapping(nTerms)
				} else {
					mapping = traffic.RandomMapping(nTerms, sc.patternSeed(ti, mi))
				}
				flows := w.Apply(mapping)
				for ai := range cfg.Selectors {
					r, err := appsim.Run(appsim.Config{
						Topo:        topo,
						Paths:       dbs[ai],
						Mechanism:   cfg.Mechanism,
						Flows:       flows,
						Seed:        xrand.Mix64(sc.Seed ^ uint64(ti)<<40 ^ uint64(si)<<24 ^ uint64(mi)<<8 ^ uint64(ai)),
						Faults:      sched,
						FaultPolicy: policy,
					})
					if err != nil {
						return nil, fmt.Errorf("exp: %s/%s: %w", kind, cfg.Selectors[ai], err)
					}
					sums[si][ai] += r.Seconds
					counts[si][ai]++
				}
			}
		}
	}
	res.Seconds = make([][]float64, len(cfg.Stencils))
	for si := range sums {
		res.Seconds[si] = make([]float64, len(cfg.Selectors))
		for ai := range sums[si] {
			if counts[si][ai] > 0 {
				res.Seconds[si][ai] = sums[si][ai] / float64(counts[si][ai])
			}
		}
	}
	return res, nil
}

// Table renders the paper's Table V/VI layout: per stencil, the reference
// selector's time (column 0) and each other selector's time plus the
// reference's improvement over it.
func (r *AppResult) Table(title string) *stats.Table {
	headers := []string{"Application", r.Selectors[0] + " time(ms)"}
	for _, s := range r.Selectors[1:] {
		headers = append(headers, s+" time(ms)", "imp.")
	}
	t := stats.NewTable(title, headers...)
	var sumImp []float64
	if len(r.Selectors) > 1 {
		sumImp = make([]float64, len(r.Selectors)-1)
	}
	for si, st := range r.Stencils {
		ref := r.Seconds[si][0]
		row := []string{st, fmt.Sprintf("%.2f", ref*1e3)}
		for ai := 1; ai < len(r.Selectors); ai++ {
			v := r.Seconds[si][ai]
			imp := stats.Improvement(v, ref)
			sumImp[ai-1] += imp
			row = append(row, fmt.Sprintf("%.2f", v*1e3), fmt.Sprintf("%.1f%%", imp))
		}
		t.AddRow(row...)
	}
	if len(r.Stencils) > 0 && len(r.Selectors) > 1 {
		row := []string{"Average", ""}
		for _, s := range sumImp {
			row = append(row, "", fmt.Sprintf("%.1f%%", s/float64(len(r.Stencils))))
		}
		t.AddRow(row...)
	}
	return t
}
