package exp

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/flitsim"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/par"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// FaultResilienceResult quantifies the reliability benefit of disjoint
// paths that motivates the Remove-Find literature the paper builds on:
// after failing random links, what fraction of switch pairs still has at
// least one usable precomputed path (without recomputing routes)?
//
// Survive[f][selector] is that fraction at FailedLinks[f] failures,
// averaged over trials. Edge-disjoint selectors degrade gracefully — one
// link failure kills at most one of the k paths — while vanilla KSP's
// clustered paths can lose most of the set to a single failure.
type FaultResilienceResult struct {
	Params      jellyfish.Params
	K           int
	FailedLinks []int
	Trials      int
	Selectors   []string
	Survive     [][]float64
	// MeanSurvivingPaths[f][selector] is the mean number of intact paths
	// per pair.
	MeanSurvivingPaths [][]float64
}

// FaultResilience runs the study on one topology instance. Pairs are
// sampled with Scale.PairSample (0 = all ordered pairs); trials =
// Scale.PatternSamples random failure sets per failure count.
func FaultResilience(params jellyfish.Params, failedLinks []int, sc Scale) (*FaultResilienceResult, error) {
	sc = sc.withDefaults()
	topo, err := sc.buildTopo(params, 0)
	if err != nil {
		return nil, err
	}
	var prs []paths.Pair
	if sc.PairSample > 0 {
		prs = paths.SamplePairs(params.N, sc.PairSample, xrand.New(sc.Seed^0xfa17))
	} else {
		prs = paths.AllOrderedPairs(params.N)
	}
	res := &FaultResilienceResult{
		Params:      params,
		K:           sc.K,
		FailedLinks: failedLinks,
		Trials:      sc.PatternSamples,
		Selectors:   SelectorNames(false),
	}
	// Precompute all path sets once per selector.
	dbs := make([]*paths.DB, len(ksp.Algorithms))
	for ai, alg := range ksp.Algorithms {
		if dbs[ai], err = sc.pathDBPairs(topo, alg, 0, prs); err != nil {
			return nil, err
		}
	}
	nEdges := topo.G.NumEdges()
	res.Survive = make([][]float64, len(failedLinks))
	res.MeanSurvivingPaths = make([][]float64, len(failedLinks))
	for fi, f := range failedLinks {
		res.Survive[fi] = make([]float64, len(ksp.Algorithms))
		res.MeanSurvivingPaths[fi] = make([]float64, len(ksp.Algorithms))
		if f > nEdges {
			return nil, fmt.Errorf("exp: cannot fail %d of %d links", f, nEdges)
		}
		for trial := 0; trial < sc.Trials(); trial++ {
			failed := failureSet(topo, f, xrand.NewPair(sc.Seed^uint64(fi)<<32, uint64(trial)))
			for ai := range ksp.Algorithms {
				alive, meanPaths := survival(dbs[ai], prs, failed, sc.Workers)
				res.Survive[fi][ai] += alive
				res.MeanSurvivingPaths[fi][ai] += meanPaths
			}
		}
		for ai := range ksp.Algorithms {
			res.Survive[fi][ai] /= float64(sc.Trials())
			res.MeanSurvivingPaths[fi][ai] /= float64(sc.Trials())
		}
	}
	return res, nil
}

// Trials aliases PatternSamples for readability in fault studies.
func (sc Scale) Trials() int { return sc.PatternSamples }

// failureSet picks f distinct undirected edges to fail.
func failureSet(topo *jellyfish.Topology, f int, rng *xrand.RNG) map[uint64]struct{} {
	g := topo.G
	// Enumerate undirected edges once.
	edges := make([][2]graph.NodeID, 0, g.NumEdges())
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]graph.NodeID{u, v})
			}
		}
	}
	failed := make(map[uint64]struct{}, f)
	for _, idx := range rng.SampleK(len(edges), f) {
		e := edges[idx]
		failed[graph.UndirectedEdgeKey(e[0], e[1])] = struct{}{}
	}
	return failed
}

// survival returns (fraction of pairs with >= 1 intact path, mean intact
// paths per pair) under the failure set.
func survival(db *paths.DB, prs []paths.Pair, failed map[uint64]struct{}, workers int) (float64, float64) {
	aliveCnt := make([]int32, len(prs))
	pathCnt := make([]int32, len(prs))
	par.For(len(prs), workers, func(i int) {
		ps := db.Paths(prs[i].Src, prs[i].Dst)
		intact := int32(0)
		for _, p := range ps {
			ok := true
			for h := 0; h+1 < len(p); h++ {
				if _, dead := failed[graph.UndirectedEdgeKey(p[h], p[h+1])]; dead {
					ok = false
					break
				}
			}
			if ok {
				intact++
			}
		}
		pathCnt[i] = intact
		if intact > 0 {
			aliveCnt[i] = 1
		}
	})
	var alive, total int64
	for i := range prs {
		alive += int64(aliveCnt[i])
		total += int64(pathCnt[i])
	}
	return float64(alive) / float64(len(prs)), float64(total) / float64(len(prs))
}

// Table renders the survival fractions.
func (r *FaultResilienceResult) Table(title string) *stats.Table {
	headers := append([]string{"Failed links"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for fi, f := range r.FailedLinks {
		row := []string{fmt.Sprintf("%d", f)}
		for ai := range r.Selectors {
			row = append(row, fmt.Sprintf("%.3f", r.Survive[fi][ai]))
		}
		t.AddRow(row...)
	}
	return t
}

// FaultRunConfig parameterizes the dynamic fault-injection experiment: a
// flit-level run in which a random set of links fails mid-measurement and
// the routing mechanisms degrade (or not) live.
type FaultRunConfig struct {
	Params jellyfish.Params
	// Pattern is "permutation", "shift" or "uniform" (default "uniform").
	Pattern string
	// FailedLinks is the sweep of failure counts (default {0, 1, 2, 4, 8});
	// 0 is the fault-free baseline.
	FailedLinks []int
	// FaultAt is the cycle the failures strike (default 1000: after the
	// simulator's default warmup plus one measurement window).
	FaultAt int64
	// InjectionRate is the offered load (default 0.3).
	InjectionRate float64
	// Policy is the fault policy applied to caught packets (zero value:
	// reroute with path repair).
	Policy faults.Policy
	// NumVCs overrides the VC count (0 = derive from the topology).
	NumVCs int
}

func (c FaultRunConfig) withDefaults() FaultRunConfig {
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if len(c.FailedLinks) == 0 {
		c.FailedLinks = []int{0, 1, 2, 4, 8}
	}
	if c.FaultAt == 0 {
		c.FaultAt = 1000
	}
	if c.InjectionRate == 0 {
		c.InjectionRate = 0.3
	}
	return c
}

// FaultRunResult holds delivered throughput versus failed-link count for
// every (selector, mechanism) combination.
type FaultRunResult struct {
	Config      FaultRunConfig
	Selectors   []string
	Mechanisms  []string
	FailedLinks []int
	// Delivered[f][selector][mechanism] is the mean delivered throughput
	// (fraction of terminal capacity over the measurement phase) at
	// FailedLinks[f] failures, averaged over topology and pattern samples.
	Delivered [][][]float64
	// Dropped[f][selector][mechanism] is the mean packets dropped per run.
	Dropped [][][]float64
}

// FaultRun sweeps failure counts over all path selectors and routing
// mechanisms. The failure set at a given (topology sample, pattern sample,
// failure count) is shared by every selector and mechanism, so the columns
// are directly comparable.
func FaultRun(cfg FaultRunConfig, sc Scale) (*FaultRunResult, error) {
	cfg = cfg.withDefaults()
	sc = sc.withDefaults()
	mechs := routing.Mechanisms()
	res := &FaultRunResult{
		Config:      cfg,
		Selectors:   SelectorNames(false),
		FailedLinks: cfg.FailedLinks,
	}
	for _, m := range mechs {
		res.Mechanisms = append(res.Mechanisms, m.Name())
	}

	// Shared per-topology state: the topology, its VC count, one path DB
	// per selector, and one fault schedule per (pattern sample, failure
	// count).
	topos := make([]*jellyfish.Topology, sc.TopoSamples)
	numVCs := make([]int, sc.TopoSamples)
	dbs := make([][]*paths.DB, sc.TopoSamples)
	scheds := make([][][]*faults.Schedule, sc.TopoSamples)
	for ti := 0; ti < sc.TopoSamples; ti++ {
		topo, err := sc.buildTopo(cfg.Params, ti)
		if err != nil {
			return nil, err
		}
		topos[ti] = topo
		if cfg.NumVCs > 0 {
			numVCs[ti] = cfg.NumVCs
		} else {
			m := graph.ComputeMetrics(topo.G, sc.Workers)
			numVCs[ti] = 3*int(m.Diameter) + 2
		}
		dbs[ti] = make([]*paths.DB, len(ksp.Algorithms))
		for ai, alg := range ksp.Algorithms {
			if dbs[ti][ai], err = sc.pathDB(topo, alg, ti); err != nil {
				return nil, err
			}
		}
		scheds[ti] = make([][]*faults.Schedule, sc.PatternSamples)
		for pi := 0; pi < sc.PatternSamples; pi++ {
			scheds[ti][pi] = make([]*faults.Schedule, len(cfg.FailedLinks))
			for fi, f := range cfg.FailedLinks {
				if f > topo.G.NumEdges() {
					return nil, fmt.Errorf("exp: cannot fail %d of %d links", f, topo.G.NumEdges())
				}
				sched, err := faults.Random(topo.G, f, cfg.FaultAt,
					xrand.Mix64(sc.Seed^uint64(ti)<<40^uint64(pi)<<20^uint64(fi)))
				if err != nil {
					return nil, err
				}
				scheds[ti][pi][fi] = sched
			}
		}
	}

	type job struct {
		ti, pi, fi, ai, mi int
	}
	var jobs []job
	for ti := 0; ti < sc.TopoSamples; ti++ {
		for pi := 0; pi < sc.PatternSamples; pi++ {
			for fi := range cfg.FailedLinks {
				for ai := range ksp.Algorithms {
					for mi := range mechs {
						jobs = append(jobs, job{ti, pi, fi, ai, mi})
					}
				}
			}
		}
	}
	delivered := make([]float64, len(jobs))
	dropped := make([]float64, len(jobs))
	errs := make([]error, len(jobs))
	par.For(len(jobs), sc.Workers, func(i int) {
		j := jobs[i]
		topo := topos[j.ti]
		sampler, err := samplerFor(cfg.Pattern, topo.NumTerminals(), sc.patternSeed(j.ti, j.pi))
		if err != nil {
			errs[i] = err
			return
		}
		sim, err := flitsim.NewSim(flitsim.Config{
			Topo:          topo,
			Paths:         dbs[j.ti][j.ai],
			Mechanism:     mechs[j.mi],
			Traffic:       sampler,
			InjectionRate: cfg.InjectionRate,
			NumVCs:        numVCs[j.ti],
			Seed:          xrand.Mix64(sc.Seed ^ uint64(j.ti)<<32 ^ uint64(j.pi)<<16 ^ uint64(j.fi)),
			Faults:        scheds[j.ti][j.pi][j.fi],
			FaultPolicy:   cfg.Policy,
			EventDriven:   sc.EventDriven,
		})
		if err != nil {
			errs[i] = err
			return
		}
		r := sim.Run()
		delivered[i] = r.DeliveredRate
		dropped[i] = float64(r.Dropped)
	})
	sums := make([][][]float64, len(cfg.FailedLinks))
	drops := make([][][]float64, len(cfg.FailedLinks))
	counts := make([][][]int, len(cfg.FailedLinks))
	for fi := range cfg.FailedLinks {
		sums[fi] = make([][]float64, len(ksp.Algorithms))
		drops[fi] = make([][]float64, len(ksp.Algorithms))
		counts[fi] = make([][]int, len(ksp.Algorithms))
		for ai := range ksp.Algorithms {
			sums[fi][ai] = make([]float64, len(mechs))
			drops[fi][ai] = make([]float64, len(mechs))
			counts[fi][ai] = make([]int, len(mechs))
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		j := jobs[i]
		sums[j.fi][j.ai][j.mi] += delivered[i]
		drops[j.fi][j.ai][j.mi] += dropped[i]
		counts[j.fi][j.ai][j.mi]++
	}
	res.Delivered = sums
	res.Dropped = drops
	for fi := range sums {
		for ai := range sums[fi] {
			for mi := range sums[fi][ai] {
				if n := counts[fi][ai][mi]; n > 0 {
					res.Delivered[fi][ai][mi] /= float64(n)
					res.Dropped[fi][ai][mi] /= float64(n)
				}
			}
		}
	}
	return res, nil
}

// MechTable renders delivered throughput for one mechanism: one row per
// failure count, one column per selector.
func (r *FaultRunResult) MechTable(title string, mi int) *stats.Table {
	headers := append([]string{"Failed links"}, r.Selectors...)
	t := stats.NewTable(fmt.Sprintf("%s [%s]", title, r.Mechanisms[mi]), headers...)
	for fi, f := range r.FailedLinks {
		row := []string{fmt.Sprintf("%d", f)}
		for ai := range r.Selectors {
			row = append(row, fmt.Sprintf("%.3f", r.Delivered[fi][ai][mi]))
		}
		t.AddRow(row...)
	}
	return t
}

// Tables renders one MechTable per mechanism.
func (r *FaultRunResult) Tables(title string) []*stats.Table {
	out := make([]*stats.Table, len(r.Mechanisms))
	for mi := range r.Mechanisms {
		out[mi] = r.MechTable(title, mi)
	}
	return out
}

// PathsTable renders the mean surviving path counts.
func (r *FaultResilienceResult) PathsTable(title string) *stats.Table {
	headers := append([]string{"Failed links"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for fi, f := range r.FailedLinks {
		row := []string{fmt.Sprintf("%d", f)}
		for ai := range r.Selectors {
			row = append(row, fmt.Sprintf("%.2f", r.MeanSurvivingPaths[fi][ai]))
		}
		t.AddRow(row...)
	}
	return t
}
