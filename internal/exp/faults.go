package exp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/par"
	"repro/internal/paths"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// FaultResilienceResult quantifies the reliability benefit of disjoint
// paths that motivates the Remove-Find literature the paper builds on:
// after failing random links, what fraction of switch pairs still has at
// least one usable precomputed path (without recomputing routes)?
//
// Survive[f][selector] is that fraction at FailedLinks[f] failures,
// averaged over trials. Edge-disjoint selectors degrade gracefully — one
// link failure kills at most one of the k paths — while vanilla KSP's
// clustered paths can lose most of the set to a single failure.
type FaultResilienceResult struct {
	Params      jellyfish.Params
	K           int
	FailedLinks []int
	Trials      int
	Selectors   []string
	Survive     [][]float64
	// MeanSurvivingPaths[f][selector] is the mean number of intact paths
	// per pair.
	MeanSurvivingPaths [][]float64
}

// FaultResilience runs the study on one topology instance. Pairs are
// sampled with Scale.PairSample (0 = all ordered pairs); trials =
// Scale.PatternSamples random failure sets per failure count.
func FaultResilience(params jellyfish.Params, failedLinks []int, sc Scale) (*FaultResilienceResult, error) {
	sc = sc.withDefaults()
	topo, err := sc.buildTopo(params, 0)
	if err != nil {
		return nil, err
	}
	var prs []paths.Pair
	if sc.PairSample > 0 {
		prs = paths.SamplePairs(params.N, sc.PairSample, xrand.New(sc.Seed^0xfa17))
	} else {
		prs = paths.AllOrderedPairs(params.N)
	}
	res := &FaultResilienceResult{
		Params:      params,
		K:           sc.K,
		FailedLinks: failedLinks,
		Trials:      sc.PatternSamples,
		Selectors:   SelectorNames(false),
	}
	// Precompute all path sets once per selector.
	dbs := make([]*paths.DB, len(ksp.Algorithms))
	for ai, alg := range ksp.Algorithms {
		dbs[ai] = paths.Build(topo.G, ksp.Config{Alg: alg, K: sc.K}, sc.pathSeed(0, alg), prs, sc.Workers)
	}
	nEdges := topo.G.NumEdges()
	res.Survive = make([][]float64, len(failedLinks))
	res.MeanSurvivingPaths = make([][]float64, len(failedLinks))
	for fi, f := range failedLinks {
		res.Survive[fi] = make([]float64, len(ksp.Algorithms))
		res.MeanSurvivingPaths[fi] = make([]float64, len(ksp.Algorithms))
		if f > nEdges {
			return nil, fmt.Errorf("exp: cannot fail %d of %d links", f, nEdges)
		}
		for trial := 0; trial < sc.Trials(); trial++ {
			failed := failureSet(topo, f, xrand.NewPair(sc.Seed^uint64(fi)<<32, uint64(trial)))
			for ai := range ksp.Algorithms {
				alive, meanPaths := survival(dbs[ai], prs, failed, sc.Workers)
				res.Survive[fi][ai] += alive
				res.MeanSurvivingPaths[fi][ai] += meanPaths
			}
		}
		for ai := range ksp.Algorithms {
			res.Survive[fi][ai] /= float64(sc.Trials())
			res.MeanSurvivingPaths[fi][ai] /= float64(sc.Trials())
		}
	}
	return res, nil
}

// Trials aliases PatternSamples for readability in fault studies.
func (sc Scale) Trials() int { return sc.PatternSamples }

// failureSet picks f distinct undirected edges to fail.
func failureSet(topo *jellyfish.Topology, f int, rng *xrand.RNG) map[uint64]struct{} {
	g := topo.G
	// Enumerate undirected edges once.
	edges := make([][2]graph.NodeID, 0, g.NumEdges())
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]graph.NodeID{u, v})
			}
		}
	}
	failed := make(map[uint64]struct{}, f)
	for _, idx := range rng.SampleK(len(edges), f) {
		e := edges[idx]
		failed[graph.UndirectedEdgeKey(e[0], e[1])] = struct{}{}
	}
	return failed
}

// survival returns (fraction of pairs with >= 1 intact path, mean intact
// paths per pair) under the failure set.
func survival(db *paths.DB, prs []paths.Pair, failed map[uint64]struct{}, workers int) (float64, float64) {
	aliveCnt := make([]int32, len(prs))
	pathCnt := make([]int32, len(prs))
	par.For(len(prs), workers, func(i int) {
		ps := db.Paths(prs[i].Src, prs[i].Dst)
		intact := int32(0)
		for _, p := range ps {
			ok := true
			for h := 0; h+1 < len(p); h++ {
				if _, dead := failed[graph.UndirectedEdgeKey(p[h], p[h+1])]; dead {
					ok = false
					break
				}
			}
			if ok {
				intact++
			}
		}
		pathCnt[i] = intact
		if intact > 0 {
			aliveCnt[i] = 1
		}
	})
	var alive, total int64
	for i := range prs {
		alive += int64(aliveCnt[i])
		total += int64(pathCnt[i])
	}
	return float64(alive) / float64(len(prs)), float64(total) / float64(len(prs))
}

// Table renders the survival fractions.
func (r *FaultResilienceResult) Table(title string) *stats.Table {
	headers := append([]string{"Failed links"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for fi, f := range r.FailedLinks {
		row := []string{fmt.Sprintf("%d", f)}
		for ai := range r.Selectors {
			row = append(row, fmt.Sprintf("%.3f", r.Survive[fi][ai]))
		}
		t.AddRow(row...)
	}
	return t
}

// PathsTable renders the mean surviving path counts.
func (r *FaultResilienceResult) PathsTable(title string) *stats.Table {
	headers := append([]string{"Failed links"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for fi, f := range r.FailedLinks {
		row := []string{fmt.Sprintf("%d", f)}
		for ai := range r.Selectors {
			row = append(row, fmt.Sprintf("%.2f", r.MeanSurvivingPaths[fi][ai]))
		}
		t.AddRow(row...)
	}
	return t
}
