package exp

import (
	"fmt"

	"repro/internal/jellyfish"
	"repro/internal/stats"
)

// ScalingRow is one topology size in a scaling study.
type ScalingRow struct {
	Params      jellyfish.Params
	Terminals   int
	AvgShortest float64
	Diameter    int32
	// Throughput[selector] is the mean modeled per-node throughput for a
	// random permutation.
	Throughput []float64
}

// ScalingStudy evaluates how path structure and modeled throughput evolve
// with system size — the scalability angle of the Jellyfish literature
// (Yuan et al. SC'13) that frames the paper. Each row gets TopoSamples
// instances and PatternSamples permutations.
func ScalingStudy(paramsList []jellyfish.Params, sc Scale) ([]ScalingRow, error) {
	sc = sc.withDefaults()
	rows := make([]ScalingRow, 0, len(paramsList))
	for _, p := range paramsList {
		metrics, err := TableI([]jellyfish.Params{p}, sc)
		if err != nil {
			return nil, err
		}
		mt, err := ModelThroughput(ModelConfig{
			Params:   p,
			Patterns: []string{"permutation"},
		}, sc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Params:      p,
			Terminals:   metrics[0].NumTerminals,
			AvgShortest: metrics[0].AvgShortest,
			Diameter:    metrics[0].Diameter,
			Throughput:  mt.Mean[0],
		})
	}
	return rows, nil
}

// RenderScaling renders the study.
func RenderScaling(rows []ScalingRow) *stats.Table {
	headers := []string{"Topology", "Terminals", "Avg SP", "Diameter"}
	headers = append(headers, SelectorNames(false)...)
	t := stats.NewTable("Scaling study: permutation model throughput vs system size", headers...)
	for _, r := range rows {
		row := []string{
			r.Params.String(),
			fmt.Sprintf("%d", r.Terminals),
			fmt.Sprintf("%.2f", r.AvgShortest),
			fmt.Sprintf("%d", r.Diameter),
		}
		for _, v := range r.Throughput {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(row...)
	}
	return t
}

// DefaultScalingSizes is a laptop-friendly size ladder preserving the
// paper's port ratios.
var DefaultScalingSizes = []jellyfish.Params{
	{N: 16, X: 12, Y: 8},
	{N: 32, X: 12, Y: 8},
	{N: 64, X: 12, Y: 8},
	{N: 128, X: 12, Y: 8},
}
