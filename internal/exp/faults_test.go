package exp

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// TestFailureSetGolden pins the exact failure set drawn for a fixed seed:
// the schedule-replay and comparability guarantees of the fault studies
// rest on this never drifting across refactors.
func TestFailureSetGolden(t *testing.T) {
	topo, err := tinyScale().buildTopo(tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	failed := failureSet(topo, 5, xrand.NewPair(7, 0))
	got := make([]string, 0, len(failed))
	for k := range failed {
		got = append(got, fmt.Sprintf("%d-%d", k>>32, k&0xffffffff))
	}
	sort.Strings(got)
	want := []string{"0-11", "0-7", "1-9", "6-11", "7-10"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("failure set drifted:\n got %v\nwant %v", got, want)
	}
	// Determinism: the same seed redraws the same set.
	again := failureSet(topo, 5, xrand.NewPair(7, 0))
	if len(again) != len(failed) {
		t.Fatal("redraw differs")
	}
	for k := range failed {
		if _, ok := again[k]; !ok {
			t.Fatal("redraw differs")
		}
	}
}

// TestFaultSurvivalEDKSPBeatsKSP is the property behind the study: an
// edge-disjoint path set loses at most one path per failed link, so EDKSP
// pairs keep a usable path at least as often as vanilla KSP pairs, whose
// clustered paths can all die together.
func TestFaultSurvivalEDKSPBeatsKSP(t *testing.T) {
	sc := Scale{TopoSamples: 1, PatternSamples: 8, K: 4, Seed: 3, Workers: 4}
	res, err := FaultResilience(tiny, []int{1, 2, 4, 8, 16}, sc)
	if err != nil {
		t.Fatal(err)
	}
	// ksp.Algorithms order: KSP, rKSP, EDKSP, rEDKSP.
	const ikspIdx, edkspIdx = 0, 2
	for fi, f := range res.FailedLinks {
		ksps, eds := res.Survive[fi][ikspIdx], res.Survive[fi][edkspIdx]
		if eds+1e-9 < ksps {
			t.Errorf("%d failures: EDKSP survival %.4f below KSP %.4f", f, eds, ksps)
		}
		if eds < 0 || eds > 1 || ksps < 0 || ksps > 1 {
			t.Errorf("%d failures: survival out of range (%v, %v)", f, ksps, eds)
		}
	}
	// More failures never help: survival is non-increasing in f.
	for fi := 1; fi < len(res.FailedLinks); fi++ {
		for ai := range res.Selectors {
			if res.Survive[fi][ai] > res.Survive[fi-1][ai]+1e-9 {
				t.Errorf("%s: survival rose from %.4f to %.4f as failures grew",
					res.Selectors[ai], res.Survive[fi-1][ai], res.Survive[fi][ai])
			}
		}
	}
	if out := res.Table("survival").String(); !strings.Contains(out, "EDKSP") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestFaultRunSmoke exercises the dynamic fault sweep end to end on a tiny
// topology: every (selector, mechanism) cell must be populated, the
// fault-free baseline must move traffic without drops, and rendering must
// include every mechanism.
func TestFaultRunSmoke(t *testing.T) {
	cfg := FaultRunConfig{Params: tiny, FailedLinks: []int{0, 3}}
	sc := Scale{TopoSamples: 1, PatternSamples: 1, K: 4, Seed: 3, Workers: 8}
	res, err := FaultRun(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 2 || len(res.Delivered[0]) != 4 || len(res.Delivered[0][0]) != len(res.Mechanisms) {
		t.Fatalf("shape wrong: %dx%dx%d", len(res.Delivered), len(res.Delivered[0]), len(res.Delivered[0][0]))
	}
	for fi := range res.Delivered {
		for ai := range res.Delivered[fi] {
			for mi := range res.Delivered[fi][ai] {
				d := res.Delivered[fi][ai][mi]
				if d <= 0 || d > 1 {
					t.Errorf("delivered[%d][%s][%s] = %v out of range",
						res.FailedLinks[fi], res.Selectors[ai], res.Mechanisms[mi], d)
				}
				if fi == 0 && res.Dropped[fi][ai][mi] != 0 {
					t.Errorf("fault-free baseline dropped %v packets (%s/%s)",
						res.Dropped[fi][ai][mi], res.Selectors[ai], res.Mechanisms[mi])
				}
			}
		}
	}
	tables := res.Tables("fault sweep")
	if len(tables) != len(res.Mechanisms) {
		t.Fatalf("tables = %d", len(tables))
	}
	for mi, tb := range tables {
		if out := tb.String(); !strings.Contains(out, res.Mechanisms[mi]) {
			t.Fatalf("table %d missing mechanism name:\n%s", mi, out)
		}
	}
}
