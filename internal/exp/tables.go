package exp

import (
	"fmt"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/stats"
)

// TopoMetricsRow is one row of Table I.
type TopoMetricsRow struct {
	Params       jellyfish.Params
	SwitchSize   int
	NumSwitches  int
	NumTerminals int
	AvgShortest  float64
	Diameter     int32
}

// TableI computes the topology metrics of the paper's Table I, averaged
// over Scale.TopoSamples instances.
func TableI(paramsList []jellyfish.Params, sc Scale) ([]TopoMetricsRow, error) {
	sc = sc.withDefaults()
	rows := make([]TopoMetricsRow, 0, len(paramsList))
	for _, p := range paramsList {
		var avg float64
		var diam int32
		for i := 0; i < sc.TopoSamples; i++ {
			topo, err := sc.buildTopo(p, i)
			if err != nil {
				return nil, err
			}
			m := topo.Metrics(sc.Workers)
			if !m.Connected {
				return nil, fmt.Errorf("exp: %v sample %d disconnected", p, i)
			}
			avg += m.AvgShortestPath
			if m.Diameter > diam {
				diam = m.Diameter
			}
		}
		rows = append(rows, TopoMetricsRow{
			Params:       p,
			SwitchSize:   p.X,
			NumSwitches:  p.N,
			NumTerminals: p.N * (p.X - p.Y),
			AvgShortest:  avg / float64(sc.TopoSamples),
			Diameter:     diam,
		})
	}
	return rows, nil
}

// RenderTableI renders Table I.
func RenderTableI(rows []TopoMetricsRow) *stats.Table {
	t := stats.NewTable("Table I: Jellyfish topologies",
		"Topology", "Switch size", "No. of switches", "No. of compute nodes", "Avg shortest path len.")
	for _, r := range rows {
		t.AddRowf(r.Params.String(), r.SwitchSize, r.NumSwitches, r.NumTerminals,
			fmt.Sprintf("%.2f", r.AvgShortest))
	}
	return t
}

// PathPropsResult holds the per-(topology, selector) path quality metrics
// behind Tables II, III and IV.
type PathPropsResult struct {
	Params []jellyfish.Params
	Algs   []ksp.Algorithm
	K      int
	// Q[p][a] is the quality aggregated over topology samples: AvgLen and
	// DisjointFraction are means, MaxShare is the maximum.
	Q [][]paths.Quality
}

// PathProps analyzes path quality for every topology and selector. With
// Scale.PairSample > 0 a uniform pair sample is analyzed instead of all
// ordered pairs.
func PathProps(paramsList []jellyfish.Params, algs []ksp.Algorithm, sc Scale) (*PathPropsResult, error) {
	sc = sc.withDefaults()
	res := &PathPropsResult{Params: paramsList, Algs: algs, K: sc.K}
	for _, p := range paramsList {
		row := make([]paths.Quality, len(algs))
		for i := 0; i < sc.TopoSamples; i++ {
			topo, err := sc.buildTopo(p, i)
			if err != nil {
				return nil, err
			}
			var pairs []paths.Pair
			if sc.PairSample > 0 {
				pairs = paths.SamplePairs(p.N, sc.PairSample, sc.topoSeed(i).Split())
			} else {
				pairs = paths.AllOrderedPairs(p.N)
			}
			for a, alg := range algs {
				var q paths.Quality
				if sc.PathCache == "" {
					q = paths.Analyze(topo.G, ksp.Config{Alg: alg, K: sc.K},
						sc.pathSeed(i, alg), pairs, sc.Workers)
				} else {
					// Cache-backed: load (or build once and store) the
					// packed DB for these exact pairs, then aggregate
					// from it. Same numbers as Analyze, minus the
					// recomputation on repeat runs.
					db, err := sc.pathDBPairs(topo, alg, i, pairs)
					if err != nil {
						return nil, err
					}
					q = paths.AnalyzeDB(db, pairs, sc.Workers)
				}
				row[a].Pairs += q.Pairs
				row[a].AvgLen += q.AvgLen
				row[a].DisjointFraction += q.DisjointFraction
				row[a].AvgPaths += q.AvgPaths
				row[a].Fallbacks += q.Fallbacks
				if q.MaxShare > row[a].MaxShare {
					row[a].MaxShare = q.MaxShare
				}
			}
		}
		for a := range row {
			row[a].AvgLen /= float64(sc.TopoSamples)
			row[a].DisjointFraction /= float64(sc.TopoSamples)
			row[a].AvgPaths /= float64(sc.TopoSamples)
		}
		res.Q = append(res.Q, row)
	}
	return res, nil
}

func (r *PathPropsResult) header() []string {
	h := []string{"Topology"}
	for _, a := range r.Algs {
		h = append(h, fmt.Sprintf("%s(%d)", a, r.K))
	}
	return h
}

// TableII renders the average path length table.
func (r *PathPropsResult) TableII() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Table II: Average path length (k = %d)", r.K), r.header()...)
	for p, params := range r.Params {
		row := []string{params.String()}
		for a := range r.Algs {
			row = append(row, fmt.Sprintf("%.2f", r.Q[p][a].AvgLen))
		}
		t.AddRow(row...)
	}
	return t
}

// TableIII renders the percent-disjoint-pairs table.
func (r *PathPropsResult) TableIII() *stats.Table {
	t := stats.NewTable(fmt.Sprintf(
		"Table III: Percentage of switch pairs whose k paths do not share any link (k = %d)", r.K),
		r.header()...)
	for p, params := range r.Params {
		row := []string{params.String()}
		for a := range r.Algs {
			row = append(row, fmt.Sprintf("%.0f%%", 100*r.Q[p][a].DisjointFraction))
		}
		t.AddRow(row...)
	}
	return t
}

// TableIV renders the maximum link-sharing table.
func (r *PathPropsResult) TableIV() *stats.Table {
	t := stats.NewTable(fmt.Sprintf(
		"Table IV: Maximum number of times one link is shared by the k paths of one switch pair (k = %d)", r.K),
		r.header()...)
	for p, params := range r.Params {
		row := []string{params.String()}
		for a := range r.Algs {
			row = append(row, fmt.Sprintf("%d", r.Q[p][a].MaxShare))
		}
		t.AddRow(row...)
	}
	return t
}
