package exp

import (
	"fmt"

	"repro/internal/appsim"
	"repro/internal/faults"
	"repro/internal/flitsim"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Instrumented single runs: where the table/figure experiments aggregate
// many simulations into one number, these run exactly one simulation with
// a telemetry.Collector attached, so per-link utilization, queue-depth
// evolution and latency distributions can be exported and inspected.
// cmd/jfnet and cmd/jfapp surface them behind the -telemetry flag.

// FlitTelemetryConfig parameterizes one instrumented cycle-level run.
type FlitTelemetryConfig struct {
	Params jellyfish.Params
	// Selector is the path-selection scheme.
	Selector ksp.Algorithm
	// Mechanism is the per-packet routing mechanism.
	Mechanism routing.Mechanism
	// Pattern is "permutation", "shift" or "uniform".
	Pattern string
	// Rate is the offered load in [0, 1].
	Rate float64
	// FaultSpec optionally injects link failures: "", "none",
	// "random:<n>@<cycle>[,...]" or a schedule file path (see
	// faults.ParseSpec).
	FaultSpec string
	// FaultPolicy names the fault policy ("" = reroute with repair).
	FaultPolicy string
}

// FlitTelemetryRun executes one cycle-level simulation with telemetry
// attached, using the same topology/path/traffic derivation as the
// figure experiments (so a telemetry run at the same Scale.Seed sees the
// same instance the figures did). It returns the run's Result, the
// populated collector, and a manifest describing the configuration.
func FlitTelemetryRun(cfg FlitTelemetryConfig, sc Scale) (flitsim.Result, *telemetry.Collector, telemetry.Manifest, error) {
	sc = sc.withDefaults()
	var zero flitsim.Result
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return zero, nil, telemetry.Manifest{}, fmt.Errorf("exp: injection rate %v outside (0, 1]", cfg.Rate)
	}
	if cfg.Mechanism == nil {
		cfg.Mechanism = routing.KSPAdaptive()
	}
	topo, err := sc.buildTopo(cfg.Params, 0)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	sampler, err := samplerFor(cfg.Pattern, topo.NumTerminals(), sc.patternSeed(0, 0))
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	sched, err := faults.ParseSpec(cfg.FaultSpec, topo.G, sc.Seed)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	policy, err := faults.PolicyByName(cfg.FaultPolicy)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	m := graph.ComputeMetrics(topo.G, sc.Workers)
	db, err := sc.pathDB(topo, cfg.Selector, 0)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	col := telemetry.NewCollector()
	sim, err := flitsim.NewSim(flitsim.Config{
		Topo:          topo,
		Paths:         db,
		Mechanism:     cfg.Mechanism,
		Traffic:       sampler,
		InjectionRate: cfg.Rate,
		NumVCs:        3*int(m.Diameter) + 2,
		Seed:          xrand.Mix64(sc.Seed ^ 0x74656c),
		Telemetry:     col,
		Faults:        sched,
		FaultPolicy:   policy,
		EventDriven:   sc.EventDriven,
	})
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	res := sim.Run()
	manifest := telemetry.Manifest{
		Tool:          "jfnet",
		Topology:      cfg.Params.String(),
		N:             cfg.Params.N,
		X:             cfg.Params.X,
		Y:             cfg.Params.Y,
		Selector:      cfg.Selector.String(),
		Mechanism:     cfg.Mechanism.Name(),
		Pattern:       cfg.Pattern,
		K:             sc.K,
		Seed:          sc.Seed,
		InjectionRate: cfg.Rate,
	}
	return res, col, manifest, nil
}

// AppTelemetryConfig parameterizes one instrumented application-level
// run.
type AppTelemetryConfig struct {
	Params jellyfish.Params
	// Selector is the path-selection scheme.
	Selector ksp.Algorithm
	// Mechanism is the per-packet routing mechanism.
	Mechanism routing.Mechanism
	// Stencil is the workload kind.
	Stencil traffic.StencilKind
	// Mapping is "linear" or "random".
	Mapping string
	// BytesPerRank is the per-rank send volume (default 15 MB).
	BytesPerRank int64
	// FaultSpec optionally injects link failures (see faults.ParseSpec).
	FaultSpec string
	// FaultPolicy names the fault policy ("" = reroute with repair).
	FaultPolicy string
}

// AppTelemetryRun replays one stencil workload with telemetry attached,
// deriving topology, paths and mapping exactly as AppCommTimes does for
// its first sample.
func AppTelemetryRun(cfg AppTelemetryConfig, sc Scale) (appsim.Result, *telemetry.Collector, telemetry.Manifest, error) {
	sc = sc.withDefaults()
	var zero appsim.Result
	if cfg.Mechanism == nil {
		cfg.Mechanism = routing.KSPAdaptive()
	}
	if cfg.BytesPerRank == 0 {
		cfg.BytesPerRank = traffic.DefaultTotalBytes
	}
	topo, err := sc.buildTopo(cfg.Params, 0)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	nTerms := topo.NumTerminals()
	var mapping traffic.Mapping
	switch cfg.Mapping {
	case "linear":
		mapping = traffic.LinearMapping(nTerms)
	case "random":
		mapping = traffic.RandomMapping(nTerms, sc.patternSeed(0, 0))
	default:
		return zero, nil, telemetry.Manifest{}, fmt.Errorf("exp: unknown mapping %q (want linear or random)", cfg.Mapping)
	}
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: cfg.Stencil, Ranks: nTerms, TotalBytes: cfg.BytesPerRank,
	})
	sched, err := faults.ParseSpec(cfg.FaultSpec, topo.G, sc.Seed)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	policy, err := faults.PolicyByName(cfg.FaultPolicy)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	db, err := sc.pathDB(topo, cfg.Selector, 0)
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	col := telemetry.NewCollector()
	res, err := appsim.Run(appsim.Config{
		Topo:        topo,
		Paths:       db,
		Mechanism:   cfg.Mechanism,
		Flows:       w.Apply(mapping),
		Seed:        xrand.Mix64(sc.Seed ^ 0x617070),
		Telemetry:   col,
		Faults:      sched,
		FaultPolicy: policy,
	})
	if err != nil {
		return zero, nil, telemetry.Manifest{}, err
	}
	manifest := telemetry.Manifest{
		Tool:      "jfapp",
		Topology:  cfg.Params.String(),
		N:         cfg.Params.N,
		X:         cfg.Params.X,
		Y:         cfg.Params.Y,
		Selector:  cfg.Selector.String(),
		Mechanism: cfg.Mechanism.Name(),
		Mapping:   cfg.Mapping,
		Stencil:   cfg.Stencil.String(),
		K:         sc.K,
		Seed:      sc.Seed,
	}
	return res, col, manifest, nil
}
