package exp

import (
	"fmt"

	"repro/internal/flitsim"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/model"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Ablation experiments isolate the design decisions DESIGN.md calls out:
// how much each heuristic contributes at different k, how UGAL's MIN bias
// changes the adaptive comparison, and how directly the selectors shape
// link-load imbalance.

// KSweepResult holds modeled throughput as a function of k for each
// selector: Mean[kIndex][selector].
type KSweepResult struct {
	Params    jellyfish.Params
	Pattern   string
	Ks        []int
	Selectors []string
	Mean      [][]float64
}

// AblationKSweep evaluates the model throughput of every selector at each
// k in ks, under random shift traffic (the paper's most demanding fixed
// pattern). It quantifies the paper's observation that the heuristics
// matter more as path diversity grows.
func AblationKSweep(params jellyfish.Params, ks []int, sc Scale) (*KSweepResult, error) {
	sc = sc.withDefaults()
	res := &KSweepResult{
		Params:    params,
		Pattern:   "shift",
		Ks:        ks,
		Selectors: SelectorNames(false),
	}
	res.Mean = make([][]float64, len(ks))
	for ki, k := range ks {
		res.Mean[ki] = make([]float64, len(ksp.Algorithms))
		kc := sc
		kc.K = k
		cfg := ModelConfig{Params: params, Patterns: []string{"shift"}}
		r, err := ModelThroughput(cfg, kc)
		if err != nil {
			return nil, err
		}
		copy(res.Mean[ki], r.Mean[0])
	}
	return res, nil
}

// Table renders the k sweep.
func (r *KSweepResult) Table(title string) *stats.Table {
	headers := append([]string{"k"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for ki, k := range r.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for si := range r.Selectors {
			row = append(row, fmt.Sprintf("%.3f", r.Mean[ki][si]))
		}
		t.AddRow(row...)
	}
	return t
}

// BiasSweepResult holds saturation throughput versus UGAL MIN-bias:
// Sat[biasIndex][mechanism] with mechanisms {UGAL, KSP-UGAL}.
type BiasSweepResult struct {
	Params     jellyfish.Params
	Biases     []int
	Mechanisms []string
	Sat        [][]float64
}

// AblationUGALBias sweeps the additive MIN bias of both UGAL forms under
// random permutation traffic with rEDKSP paths, reproducing the paper's
// "no bias towards MIN or VLB" configuration at bias 0 and quantifying
// what other biases would have done.
func AblationUGALBias(params jellyfish.Params, biases []int, rates []float64, sc Scale) (*BiasSweepResult, error) {
	sc = sc.withDefaults()
	if len(rates) == 0 {
		rates = flitsim.Rates(0.1, 1.0, 0.1)
	}
	res := &BiasSweepResult{
		Params:     params,
		Biases:     biases,
		Mechanisms: []string{"UGAL", "KSP-UGAL"},
	}
	topo, err := sc.buildTopo(params, 0)
	if err != nil {
		return nil, err
	}
	m := graph.ComputeMetrics(topo.G, sc.Workers)
	numVC := 3*int(m.Diameter) + 2
	db, err := sc.pathDB(topo, ksp.REDKSP, 0)
	if err != nil {
		return nil, err
	}
	sampler := traffic.NewFixedSampler(
		traffic.RandomPermutation(topo.NumTerminals(), sc.patternSeed(0, 0)))
	res.Sat = make([][]float64, len(biases))
	for bi, bias := range biases {
		res.Sat[bi] = make([]float64, 2)
		for mi, mech := range []routing.Mechanism{
			routing.VanillaUGALBiased(bias), routing.KSPUGALBiased(bias),
		} {
			base := flitsim.Config{
				Topo:        topo,
				Paths:       db,
				Mechanism:   mech,
				Traffic:     sampler,
				NumVCs:      numVC,
				Seed:        xrand.Mix64(sc.Seed ^ uint64(bi)<<16 ^ uint64(mi)),
				EventDriven: sc.EventDriven,
			}
			res.Sat[bi][mi] = saturationSeq(base, rates)
		}
	}
	return res, nil
}

// Table renders the bias sweep.
func (r *BiasSweepResult) Table(title string) *stats.Table {
	headers := append([]string{"MIN bias"}, r.Mechanisms...)
	t := stats.NewTable(title, headers...)
	for bi, b := range r.Biases {
		row := []string{fmt.Sprintf("%d", b)}
		for mi := range r.Mechanisms {
			row = append(row, fmt.Sprintf("%.3f", r.Sat[bi][mi]))
		}
		t.AddRow(row...)
	}
	return t
}

// LoadImbalanceResult holds per-selector link-load statistics for one
// pattern: Stats[selector].
type LoadImbalanceResult struct {
	Params    jellyfish.Params
	Pattern   string
	Selectors []string
	Stats     []model.LoadStats
}

// LoadImbalance measures, per selector, how unevenly one random shift
// pattern's sub-flows land on the links — the quantity the paper's
// Section III argues about qualitatively.
func LoadImbalance(params jellyfish.Params, sc Scale) (*LoadImbalanceResult, error) {
	sc = sc.withDefaults()
	topo, err := sc.buildTopo(params, 0)
	if err != nil {
		return nil, err
	}
	pat := traffic.RandomShift(topo.NumTerminals(), sc.patternSeed(0, 0))
	res := &LoadImbalanceResult{
		Params:    params,
		Pattern:   pat.Name,
		Selectors: SelectorNames(false),
	}
	for _, alg := range ksp.Algorithms {
		db, err := sc.pathDB(topo, alg, 0)
		if err != nil {
			return nil, err
		}
		res.Stats = append(res.Stats, model.LoadImbalance(topo, db, pat, sc.Workers))
	}
	return res, nil
}

// Table renders the load-imbalance comparison.
func (r *LoadImbalanceResult) Table(title string) *stats.Table {
	t := stats.NewTable(title, "Selector", "Mean load", "Max load", "P99", "StdDev", "Top-1% share", "Unused links")
	for si, sel := range r.Selectors {
		s := r.Stats[si]
		t.AddRow(sel,
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%.0f", s.P99),
			fmt.Sprintf("%.2f", s.StdDev),
			fmt.Sprintf("%.3f", s.Top1Share),
			fmt.Sprintf("%d", s.Unused))
	}
	return t
}
