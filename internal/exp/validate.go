package exp

import (
	"fmt"

	"repro/internal/fairshare"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/stats"
	"repro/internal/traffic"

	"repro/internal/model"
)

// ModelValidationResult compares the paper's Equation-1 throughput model
// against the exact max-min fair allocation an idealized MPTCP converges
// to, per selector: the model is an approximation, and this experiment
// quantifies its error and confirms that selector ordering is not an
// artifact of the approximation.
type ModelValidationResult struct {
	Params    jellyfish.Params
	Pattern   string
	Selectors []string
	// ModelMean[s] and FairMean[s] are per-node throughputs under the two
	// methodologies, averaged over pattern instances.
	ModelMean, FairMean []float64
}

// ValidateModel runs both methodologies on PatternSamples random shift
// instances over one topology sample.
func ValidateModel(params jellyfish.Params, sc Scale) (*ModelValidationResult, error) {
	sc = sc.withDefaults()
	topo, err := sc.buildTopo(params, 0)
	if err != nil {
		return nil, err
	}
	res := &ModelValidationResult{
		Params:    params,
		Pattern:   "shift",
		Selectors: SelectorNames(false),
		ModelMean: make([]float64, len(ksp.Algorithms)),
		FairMean:  make([]float64, len(ksp.Algorithms)),
	}
	for ai, alg := range ksp.Algorithms {
		db, err := sc.pathDB(topo, alg, 0)
		if err != nil {
			return nil, err
		}
		for inst := 0; inst < sc.PatternSamples; inst++ {
			pat := traffic.RandomShift(topo.NumTerminals(), sc.patternSeed(0, inst))
			res.ModelMean[ai] += model.Throughput(topo, db, pat, sc.Workers).MeanNode
			alloc, err := fairshare.Compute(topo, db, pat)
			if err != nil {
				return nil, err
			}
			res.FairMean[ai] += alloc.MeanNode
		}
		res.ModelMean[ai] /= float64(sc.PatternSamples)
		res.FairMean[ai] /= float64(sc.PatternSamples)
	}
	return res, nil
}

// Table renders the comparison with per-selector relative error.
func (r *ModelValidationResult) Table(title string) *stats.Table {
	t := stats.NewTable(title, "Selector", "Eq.1 model", "Max-min fair", "Model error")
	for ai, sel := range r.Selectors {
		errPct := 0.0
		if r.FairMean[ai] > 0 {
			errPct = (r.ModelMean[ai] - r.FairMean[ai]) / r.FairMean[ai] * 100
		}
		t.AddRow(sel,
			fmt.Sprintf("%.3f", r.ModelMean[ai]),
			fmt.Sprintf("%.3f", r.FairMean[ai]),
			fmt.Sprintf("%+.1f%%", errPct))
	}
	return t
}
