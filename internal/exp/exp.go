// Package exp is the experiment harness: one function per table/figure of
// the paper, mapping the substrate packages (jellyfish, ksp, paths, model,
// flitsim, appsim) onto the paper's exact experimental protocol. The cmd/
// binaries and the root benchmark suite are thin wrappers over this
// package.
//
// Every experiment takes a Scale that controls how much statistical
// repetition to run: the paper's full protocol (10 topology samples, 50
// pattern instances for the model, 10 for the cycle simulator) or any
// cheaper setting for quick runs and benchmarks. All randomness derives
// from Scale.Seed, so every number is reproducible.
package exp

import (
	"fmt"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/seeds"
	"repro/internal/xrand"
)

// Scale controls experiment effort.
type Scale struct {
	// TopoSamples is the number of RRG instances per topology (paper: 10).
	TopoSamples int
	// PatternSamples is the number of random traffic instances per
	// topology sample (paper: 50 for the model, 10 for Booksim).
	PatternSamples int
	// PairSample bounds the switch pairs analyzed for path-property tables
	// (0 = all ordered pairs; the paper's cluster runs used all pairs, a
	// laptop will want sampling on RRG(2880,48,38)).
	PairSample int
	// K is the paths per pair (paper: 8).
	K int
	// Workers bounds parallelism (<= 0 = GOMAXPROCS).
	Workers int
	// Seed derives all randomness.
	Seed uint64
	// PathCache is a directory for the on-disk path-DB cache ("" = off).
	// When set, experiments obtain their path DBs through
	// paths.LoadOrBuild: the first run on a (topology, selector, k, seed)
	// combination pays an eager all-pairs build and writes a cache file;
	// every later run streams the packed store back in. See docs/PATHS.md.
	PathCache string
	// EventDriven selects the simulator's event-driven advance
	// (flitsim.Config.EventDriven) for every cycle-level run the
	// experiment spawns. Statistically equivalent, not bit-identical; see
	// docs/PERFORMANCE.md ("Event-driven advance").
	EventDriven bool
}

// PaperModelScale is the paper's protocol for the throughput-model figures.
func PaperModelScale() Scale {
	return Scale{TopoSamples: 10, PatternSamples: 50, K: 8, Seed: 1}
}

// PaperSimScale is the paper's protocol for the Booksim figures.
func PaperSimScale() Scale {
	return Scale{TopoSamples: 1, PatternSamples: 10, K: 8, Seed: 1}
}

// QuickScale is a cheap setting for smoke runs.
func QuickScale() Scale {
	return Scale{TopoSamples: 2, PatternSamples: 3, K: 4, Seed: 1}
}

func (sc Scale) withDefaults() Scale {
	if sc.TopoSamples == 0 {
		sc.TopoSamples = 1
	}
	if sc.PatternSamples == 0 {
		sc.PatternSamples = 1
	}
	if sc.K == 0 {
		sc.K = 8
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc
}

// topoSeed derives the RNG for the i-th topology sample (the shared
// derivation in internal/seeds, so jfserve builds identical graphs).
func (sc Scale) topoSeed(i int) *xrand.RNG {
	return seeds.TopoRNG(sc.Seed, i)
}

// patternSeed derives the RNG for the j-th pattern instance on the i-th
// topology sample.
func (sc Scale) patternSeed(i, j int) *xrand.RNG {
	return xrand.NewPair(xrand.Mix64(sc.Seed^0x706174), uint64(i)<<32|uint64(j))
}

// pathSeed derives the path-DB seed for a selector on the i-th topology
// sample (shared derivation, see internal/seeds).
func (sc Scale) pathSeed(i int, alg ksp.Algorithm) uint64 {
	return seeds.PathSeed(sc.Seed, i, alg)
}

// buildTopo constructs the i-th topology sample.
func (sc Scale) buildTopo(p jellyfish.Params, i int) (*jellyfish.Topology, error) {
	return jellyfish.New(p, sc.topoSeed(i))
}

// pathDB returns the path DB for one selector on the i-th topology
// sample. Without a cache directory this is the historical lazy DB
// (pairs computed on first use); with Scale.PathCache set it is a
// cache-backed all-ordered-pairs DB via paths.LoadOrBuild. Both fill
// identical path sets for any pair — per-pair reseeding makes lazy and
// eager computation interchangeable — so results do not depend on
// whether the cache is enabled.
func (sc Scale) pathDB(topo *jellyfish.Topology, alg ksp.Algorithm, ti int) (*paths.DB, error) {
	cfg := ksp.Config{Alg: alg, K: sc.K}
	seed := sc.pathSeed(ti, alg)
	if sc.PathCache == "" {
		return paths.NewDB(topo.G, cfg, seed), nil
	}
	db, _, err := paths.LoadOrBuild(sc.PathCache, topo.G, cfg, seed,
		paths.AllOrderedPairs(topo.G.NumNodes()), sc.Workers)
	return db, err
}

// pathDBPairs is pathDB for experiments that precompute an explicit pair
// list (e.g. the static fault-resilience sweep): an eager uncached build
// when no cache directory is set, LoadOrBuild on those exact pairs
// otherwise (the cache key covers the pair list, so a sampled subset
// never aliases an all-pairs entry).
func (sc Scale) pathDBPairs(topo *jellyfish.Topology, alg ksp.Algorithm, ti int, prs []paths.Pair) (*paths.DB, error) {
	cfg := ksp.Config{Alg: alg, K: sc.K}
	seed := sc.pathSeed(ti, alg)
	if sc.PathCache == "" {
		return paths.Build(topo.G, cfg, seed, prs, sc.Workers), nil
	}
	db, _, err := paths.LoadOrBuild(sc.PathCache, topo.G, cfg, seed, prs, sc.Workers)
	return db, err
}

// WarmPathCache eagerly populates Scale.PathCache with the all-pairs
// DBs the experiments on paramsList would build: one cache file per
// (topology sample, selector). Later jfnet/jfflit/jfapp runs with the
// same -seed, -k and -path-cache then start from cache hits instead of
// Dijkstra storms — the intended workflow for the large topology, where
// the build dominates wall time (see docs/PATHS.md).
func WarmPathCache(paramsList []jellyfish.Params, algs []ksp.Algorithm, sc Scale) error {
	sc = sc.withDefaults()
	if sc.PathCache == "" {
		return fmt.Errorf("exp: WarmPathCache needs a cache directory")
	}
	for _, p := range paramsList {
		for ti := 0; ti < sc.TopoSamples; ti++ {
			topo, err := sc.buildTopo(p, ti)
			if err != nil {
				return err
			}
			for _, alg := range algs {
				if _, err := sc.pathDB(topo, alg, ti); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SelectorNames returns the paper's presentation order including the
// single-path baseline used in the model figures.
func SelectorNames(withSP bool) []string {
	names := []string{}
	if withSP {
		names = append(names, "SP")
	}
	for _, a := range ksp.Algorithms {
		names = append(names, a.String())
	}
	return names
}
