package exp

import (
	"fmt"
	"math"

	"repro/internal/flitsim"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/par"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// FlitConfig parameterizes the cycle-level simulation experiments
// (Figures 7-13).
type FlitConfig struct {
	Params jellyfish.Params
	// Pattern is "permutation", "shift" or "uniform".
	Pattern string
	// Rates is the offered-load sweep (default 0.05..1.00 step 0.05).
	Rates []float64
	// NumVCs overrides the VC count (0 = derive once from the topology).
	NumVCs int
}

func (c FlitConfig) withDefaults() FlitConfig {
	if len(c.Rates) == 0 {
		c.Rates = flitsim.Rates(0.05, 1.0, 0.05)
	}
	return c
}

// samplerFor builds the per-instance traffic sampler.
func samplerFor(pattern string, nTerms int, rng *xrand.RNG) (traffic.Sampler, error) {
	switch pattern {
	case "permutation":
		return traffic.NewFixedSampler(traffic.RandomPermutation(nTerms, rng)), nil
	case "shift":
		return traffic.NewFixedSampler(traffic.RandomShift(nTerms, rng)), nil
	case "uniform":
		return traffic.Uniform{N: nTerms}, nil
	}
	return nil, fmt.Errorf("exp: unknown simulator pattern %q", pattern)
}

// SaturationResult holds Figures 7-10 data: mean saturation throughput per
// (selector, mechanism).
type SaturationResult struct {
	Config     FlitConfig
	Selectors  []string
	Mechanisms []string
	// Mean[selector][mechanism], averaged over topology and pattern
	// samples.
	Mean [][]float64
}

// FlitSaturation reproduces one of Figures 7-10: the average saturation
// throughput of every path selector under every routing mechanism.
func FlitSaturation(cfg FlitConfig, sc Scale) (*SaturationResult, error) {
	cfg = cfg.withDefaults()
	sc = sc.withDefaults()
	mechs := routing.Mechanisms()
	res := &SaturationResult{Config: cfg, Selectors: SelectorNames(false)}
	for _, m := range mechs {
		res.Mechanisms = append(res.Mechanisms, m.Name())
	}

	type job struct {
		ti, pi, ai, mi int
	}
	var jobs []job
	for ti := 0; ti < sc.TopoSamples; ti++ {
		for pi := 0; pi < sc.PatternSamples; pi++ {
			for ai := range ksp.Algorithms {
				for mi := range mechs {
					jobs = append(jobs, job{ti, pi, ai, mi})
				}
			}
		}
	}

	// Shared per-topology state built once.
	topos := make([]*jellyfish.Topology, sc.TopoSamples)
	numVCs := make([]int, sc.TopoSamples)
	dbs := make([][]*paths.DB, sc.TopoSamples)
	for ti := 0; ti < sc.TopoSamples; ti++ {
		topo, err := sc.buildTopo(cfg.Params, ti)
		if err != nil {
			return nil, err
		}
		topos[ti] = topo
		if cfg.NumVCs > 0 {
			numVCs[ti] = cfg.NumVCs
		} else {
			m := graph.ComputeMetrics(topo.G, sc.Workers)
			numVCs[ti] = 3*int(m.Diameter) + 2
		}
		dbs[ti] = make([]*paths.DB, len(ksp.Algorithms))
		for ai, alg := range ksp.Algorithms {
			if dbs[ti][ai], err = sc.pathDB(topo, alg, ti); err != nil {
				return nil, err
			}
		}
	}

	sums := make([][]float64, len(ksp.Algorithms))
	counts := make([][]int, len(ksp.Algorithms))
	for i := range sums {
		sums[i] = make([]float64, len(mechs))
		counts[i] = make([]int, len(mechs))
	}
	results := make([]float64, len(jobs))
	errs := make([]error, len(jobs))
	par.For(len(jobs), sc.Workers, func(i int) {
		j := jobs[i]
		topo := topos[j.ti]
		sampler, err := samplerFor(cfg.Pattern, topo.NumTerminals(), sc.patternSeed(j.ti, j.pi))
		if err != nil {
			errs[i] = err
			return
		}
		base := flitsim.Config{
			Topo:        topo,
			Paths:       dbs[j.ti][j.ai],
			Mechanism:   mechs[j.mi],
			Traffic:     sampler,
			NumVCs:      numVCs[j.ti],
			Seed:        xrand.Mix64(sc.Seed ^ uint64(i)<<16),
			EventDriven: sc.EventDriven,
		}
		results[i] = saturationSeq(base, cfg.Rates)
	})
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		j := jobs[i]
		sums[j.ai][j.mi] += results[i]
		counts[j.ai][j.mi]++
	}
	res.Mean = make([][]float64, len(ksp.Algorithms))
	for ai := range sums {
		res.Mean[ai] = make([]float64, len(mechs))
		for mi := range sums[ai] {
			if counts[ai][mi] > 0 {
				res.Mean[ai][mi] = sums[ai][mi] / float64(counts[ai][mi])
			}
		}
	}
	return res, nil
}

// saturationSeq scans rates in ascending order and stops at the first
// saturated run, returning the last unsaturated rate (0 if even the first
// rate saturates). Sequential early-stop: the harness parallelizes across
// experiment combinations instead.
func saturationSeq(base flitsim.Config, rates []float64) float64 {
	sat := 0.0
	for ri, rate := range rates {
		c := base
		c.InjectionRate = rate
		c.Seed = xrand.Mix64(base.Seed ^ uint64(ri+1)*0x9e3779b97f4a7c15)
		if flitsim.New(c).Run().Saturated {
			break
		}
		sat = rate
	}
	return sat
}

// Table renders the figure data: selectors as rows, mechanisms as columns.
func (r *SaturationResult) Table(title string) *stats.Table {
	headers := append([]string{"Selector"}, r.Mechanisms...)
	t := stats.NewTable(title, headers...)
	for ai, sel := range r.Selectors {
		row := []string{sel}
		for mi := range r.Mechanisms {
			row = append(row, fmt.Sprintf("%.3f", r.Mean[ai][mi]))
		}
		t.AddRow(row...)
	}
	return t
}

// CurveResult holds Figures 11-13 data: average packet latency versus
// offered load, one series per path selector, NaN where saturated.
type CurveResult struct {
	Config    FlitConfig
	Mechanism string
	Selectors []string
	Rates     []float64
	// Latency[selector][rate]; math.NaN() marks saturated points.
	Latency [][]float64
}

// FlitLatencyCurve reproduces one of Figures 11-13: latency-versus-load
// curves for all four selectors under one routing mechanism.
func FlitLatencyCurve(cfg FlitConfig, mech routing.Mechanism, sc Scale) (*CurveResult, error) {
	cfg = cfg.withDefaults()
	sc = sc.withDefaults()
	res := &CurveResult{
		Config:    cfg,
		Mechanism: mech.Name(),
		Selectors: SelectorNames(false),
		Rates:     cfg.Rates,
		Latency:   make([][]float64, len(ksp.Algorithms)),
	}
	topo, err := sc.buildTopo(cfg.Params, 0)
	if err != nil {
		return nil, err
	}
	numVC := cfg.NumVCs
	if numVC == 0 {
		m := graph.ComputeMetrics(topo.G, sc.Workers)
		numVC = 3*int(m.Diameter) + 2
	}
	sampler, err := samplerFor(cfg.Pattern, topo.NumTerminals(), sc.patternSeed(0, 0))
	if err != nil {
		return nil, err
	}
	for ai, alg := range ksp.Algorithms {
		db, err := sc.pathDB(topo, alg, 0)
		if err != nil {
			return nil, err
		}
		base := flitsim.Config{
			Topo:        topo,
			Paths:       db,
			Mechanism:   mech,
			Traffic:     sampler,
			NumVCs:      numVC,
			Seed:        xrand.Mix64(sc.Seed ^ uint64(ai)<<24),
			EventDriven: sc.EventDriven,
		}
		runs := flitsim.Sweep(base, cfg.Rates, sc.Workers)
		series := make([]float64, len(runs))
		for ri, r := range runs {
			if r.Saturated {
				series[ri] = math.NaN()
			} else {
				series[ri] = r.AvgLatency
			}
		}
		res.Latency[ai] = series
	}
	return res, nil
}

// Table renders the curves: one row per load point, one column per
// selector ("sat" marks saturated points).
func (r *CurveResult) Table(title string) *stats.Table {
	headers := append([]string{"Load"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for ri, rate := range r.Rates {
		row := []string{fmt.Sprintf("%.2f", rate)}
		for ai := range r.Selectors {
			v := r.Latency[ai][ri]
			if math.IsNaN(v) {
				row = append(row, "sat")
			} else {
				row = append(row, fmt.Sprintf("%.1f", v))
			}
		}
		t.AddRow(row...)
	}
	return t
}
