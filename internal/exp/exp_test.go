package exp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
)

// tiny is a test-sized Jellyfish keeping the paper's ~2:1 ratio of network
// ports to terminals per switch.
var tiny = jellyfish.Params{N: 12, X: 9, Y: 6}

func tinyScale() Scale {
	return Scale{TopoSamples: 1, PatternSamples: 2, K: 4, Seed: 3, Workers: 4}
}

func TestTableI(t *testing.T) {
	rows, err := TableI([]jellyfish.Params{tiny}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.SwitchSize != 9 || r.NumSwitches != 12 || r.NumTerminals != 36 {
		t.Fatalf("row = %+v", r)
	}
	if r.AvgShortest <= 1 || r.AvgShortest >= 3 {
		t.Fatalf("avg shortest = %v", r.AvgShortest)
	}
	out := RenderTableI(rows).String()
	if !strings.Contains(out, "RRG(12,9,6)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestPathProps(t *testing.T) {
	res, err := PathProps([]jellyfish.Params{tiny}, ksp.Algorithms, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Q) != 1 || len(res.Q[0]) != 4 {
		t.Fatalf("shape wrong: %+v", res.Q)
	}
	// Columns: KSP, rKSP, EDKSP, rEDKSP.
	ed, red := res.Q[0][2], res.Q[0][3]
	if ed.DisjointFraction != 1 || red.DisjointFraction != 1 {
		t.Fatalf("edge-disjoint selectors not 100%%: %v %v", ed.DisjointFraction, red.DisjointFraction)
	}
	if ed.MaxShare != 1 || red.MaxShare != 1 {
		t.Fatalf("edge-disjoint max share != 1: %d %d", ed.MaxShare, red.MaxShare)
	}
	vanilla := res.Q[0][0]
	if vanilla.MaxShare < 2 {
		t.Fatalf("vanilla KSP shows no sharing (max %d)", vanilla.MaxShare)
	}
	if ed.AvgLen+1e-9 < vanilla.AvgLen {
		t.Fatalf("EDKSP avg len %v below KSP %v", ed.AvgLen, vanilla.AvgLen)
	}
	for _, render := range []string{res.TableII().String(), res.TableIII().String(), res.TableIV().String()} {
		if !strings.Contains(render, "rEDKSP(4)") {
			t.Fatalf("render missing selector column:\n%s", render)
		}
	}
}

func TestPathPropsPairSampling(t *testing.T) {
	sc := tinyScale()
	sc.PairSample = 20
	res, err := PathProps([]jellyfish.Params{tiny}, []ksp.Algorithm{ksp.KSP}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q[0][0].Pairs != 20 {
		t.Fatalf("pairs analyzed = %d, want 20", res.Q[0][0].Pairs)
	}
}

func TestModelThroughput(t *testing.T) {
	res, err := ModelThroughput(ModelConfig{
		Params:    tiny,
		RandomX:   5,
		IncludeSP: true,
	}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selectors) != 5 || res.Selectors[0] != "SP" {
		t.Fatalf("selectors = %v", res.Selectors)
	}
	if len(res.Mean) != 4 {
		t.Fatalf("patterns = %d", len(res.Mean))
	}
	for pi, pat := range res.Patterns {
		for si, sel := range res.Selectors {
			v := res.Mean[pi][si]
			if v <= 0 || v > 1+1e-9 || math.IsNaN(v) {
				t.Fatalf("%s/%s = %v", pat, sel, v)
			}
		}
	}
	out := res.Table("Figure X").String()
	if !strings.Contains(out, "all-to-all") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestModelMultiPathBeatsSP(t *testing.T) {
	res, err := ModelThroughput(ModelConfig{
		Params:    tiny,
		Patterns:  []string{"shift"},
		IncludeSP: true,
	}, Scale{TopoSamples: 2, PatternSamples: 4, K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Mean[0][0]
	for si := 1; si < len(res.Selectors); si++ {
		if res.Mean[0][si] <= sp {
			t.Fatalf("%s (%v) not above SP (%v)", res.Selectors[si], res.Mean[0][si], sp)
		}
	}
}

func TestFlitSaturation(t *testing.T) {
	cfg := FlitConfig{
		Params:  tiny,
		Pattern: "permutation",
		Rates:   flitsim.Rates(0.2, 1.0, 0.2),
	}
	sc := Scale{TopoSamples: 1, PatternSamples: 2, K: 4, Seed: 7, Workers: 4}
	res, err := FlitSaturation(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mean) != 4 || len(res.Mean[0]) != 5 {
		t.Fatalf("shape = %dx%d", len(res.Mean), len(res.Mean[0]))
	}
	for ai, sel := range res.Selectors {
		for mi, mech := range res.Mechanisms {
			v := res.Mean[ai][mi]
			if v < 0 || v > 1 {
				t.Fatalf("%s/%s = %v", sel, mech, v)
			}
		}
	}
	out := res.Table("Figure Y").String()
	if !strings.Contains(out, "KSP-adaptive") || !strings.Contains(out, "rEDKSP") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFlitSaturationRejectsBadPattern(t *testing.T) {
	_, err := FlitSaturation(FlitConfig{Params: tiny, Pattern: "nope"},
		Scale{TopoSamples: 1, PatternSamples: 1, K: 2, Seed: 1})
	if err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestFlitLatencyCurve(t *testing.T) {
	cfg := FlitConfig{
		Params:  tiny,
		Pattern: "uniform",
		Rates:   []float64{0.1, 0.5, 1.0},
	}
	res, err := FlitLatencyCurve(cfg, routing.KSPAdaptive(), tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latency) != 4 || len(res.Latency[0]) != 3 {
		t.Fatalf("shape wrong")
	}
	// Low load must be unsaturated with a sane latency for every selector.
	for ai, sel := range res.Selectors {
		v := res.Latency[ai][0]
		if math.IsNaN(v) || v < 10 || v > 400 {
			t.Fatalf("%s low-load latency = %v", sel, v)
		}
	}
	out := res.Table("Figure Z").String()
	if !strings.Contains(out, "0.10") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAppCommTimes(t *testing.T) {
	for _, mapping := range []string{"linear", "random"} {
		res, err := AppCommTimes(AppConfig{
			Params:       tiny,
			Mapping:      mapping,
			BytesPerRank: 100 * 1500, // keep runtime small
			Mechanism:    routing.KSPAdaptive(),
		}, tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", mapping, err)
		}
		if len(res.Stencils) != 4 || len(res.Selectors) != 3 {
			t.Fatalf("%s: shape %v x %v", mapping, res.Stencils, res.Selectors)
		}
		for si, st := range res.Stencils {
			for ai, sel := range res.Selectors {
				v := res.Seconds[si][ai]
				if v <= 0 || math.IsNaN(v) {
					t.Fatalf("%s %s/%s = %v", mapping, st, sel, v)
				}
				// Lower bound: serialization of 100 packets at 75ns each.
				if v < 100*75e-9 {
					t.Fatalf("%s %s/%s = %v below serialization bound", mapping, st, sel, v)
				}
			}
		}
		out := res.Table("Table V-ish").String()
		if !strings.Contains(out, "rEDKSP(4)") || !strings.Contains(out, "Average") {
			t.Fatalf("render:\n%s", out)
		}
	}
}

func TestAppCommTimesRejectsBadMapping(t *testing.T) {
	_, err := AppCommTimes(AppConfig{Params: tiny, Mapping: "diagonal"},
		Scale{TopoSamples: 1, PatternSamples: 1, K: 2, Seed: 1})
	if err == nil {
		t.Fatal("bad mapping accepted")
	}
}

func TestScaleDeterminism(t *testing.T) {
	sc := tinyScale()
	a, err := PathProps([]jellyfish.Params{tiny}, []ksp.Algorithm{ksp.REDKSP}, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PathProps([]jellyfish.Params{tiny}, []ksp.Algorithm{ksp.REDKSP}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Q[0][0] != b.Q[0][0] {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Q[0][0], b.Q[0][0])
	}
}

func TestSelectorNames(t *testing.T) {
	if got := SelectorNames(true); len(got) != 5 || got[0] != "SP" || got[4] != "rEDKSP" {
		t.Fatalf("names = %v", got)
	}
	if got := SelectorNames(false); len(got) != 4 || got[0] != "KSP" {
		t.Fatalf("names = %v", got)
	}
}
