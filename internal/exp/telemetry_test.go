package exp

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ksp"
	"repro/internal/traffic"
)

func TestFlitTelemetryRun(t *testing.T) {
	res, col, m, err := FlitTelemetryRun(FlitTelemetryConfig{
		Params:   tiny,
		Selector: ksp.REDKSP,
		Pattern:  "uniform",
		Rate:     0.3,
	}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if m.Tool != "jfnet" || m.Selector != "rEDKSP" || m.Mechanism != "KSP-adaptive" {
		t.Fatalf("manifest = %+v", m)
	}
	dir := t.TempDir()
	if err := col.Export(dir, m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "links.csv", "latency_hist.json", "windows.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing export %s: %v", name, err)
		}
	}
}

func TestAppTelemetryRun(t *testing.T) {
	res, col, m, err := AppTelemetryRun(AppTelemetryConfig{
		Params:       tiny,
		Selector:     ksp.RKSP,
		Stencil:      traffic.Stencil2DNN,
		Mapping:      "linear",
		BytesPerRank: 10 * 1500,
	}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("no packets delivered")
	}
	if m.Tool != "jfapp" || m.Stencil != "2DNN" || m.Mapping != "linear" {
		t.Fatalf("manifest = %+v", m)
	}
	dir := t.TempDir()
	if err := col.Export(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "choices.csv")); err != nil {
		t.Fatalf("missing choices.csv: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "latency_hist.json")); !os.IsNotExist(err) {
		t.Fatal("app run should not export a latency histogram")
	}

	if _, _, _, err := AppTelemetryRun(AppTelemetryConfig{
		Params: tiny, Selector: ksp.KSP, Stencil: traffic.Stencil2DNN, Mapping: "nope",
	}, tinyScale()); err == nil {
		t.Fatal("bad mapping accepted")
	}
}
