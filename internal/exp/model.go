package exp

import (
	"fmt"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/model"
	"repro/internal/paths"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ModelPatterns are the four traffic patterns of Figures 4-6, in the
// paper's order. "random(X)" uses ModelConfig.RandomX destinations.
var ModelPatterns = []string{"permutation", "shift", "random(X)", "all-to-all"}

// ModelConfig parameterizes the throughput-model figures.
type ModelConfig struct {
	Params jellyfish.Params
	// Patterns to evaluate (default ModelPatterns).
	Patterns []string
	// RandomX is the X of Random(X) (paper: 50).
	RandomX int
	// IncludeSP adds the single-path baseline column.
	IncludeSP bool
}

// ModelFigureResult holds the mean per-node normalized throughput for one
// topology: Mean[pattern][selector], selectors ordered as Selectors.
type ModelFigureResult struct {
	Config    ModelConfig
	Patterns  []string
	Selectors []string
	Mean      [][]float64
}

// ModelThroughput reproduces one of Figures 4-6: the average model
// throughput over TopoSamples topology instances and PatternSamples
// traffic instances for every path selection scheme.
func ModelThroughput(cfg ModelConfig, sc Scale) (*ModelFigureResult, error) {
	sc = sc.withDefaults()
	if cfg.RandomX == 0 {
		cfg.RandomX = 50
	}
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = ModelPatterns
	}
	res := &ModelFigureResult{
		Config:    cfg,
		Patterns:  cfg.Patterns,
		Selectors: SelectorNames(cfg.IncludeSP),
	}
	sums := make([][]float64, len(cfg.Patterns))
	counts := make([][]int, len(cfg.Patterns))
	for i := range sums {
		sums[i] = make([]float64, len(res.Selectors))
		counts[i] = make([]int, len(res.Selectors))
	}

	for ti := 0; ti < sc.TopoSamples; ti++ {
		topo, err := sc.buildTopo(cfg.Params, ti)
		if err != nil {
			return nil, err
		}
		nTerms := topo.NumTerminals()
		// One DB per selector per topology sample: patterns share it.
		dbs := make([]*paths.DB, len(ksp.Algorithms))
		for ai, alg := range ksp.Algorithms {
			if dbs[ai], err = sc.pathDB(topo, alg, ti); err != nil {
				return nil, err
			}
		}
		for pi, patName := range cfg.Patterns {
			nInst := sc.PatternSamples
			if patName == "all-to-all" {
				nInst = 1 // deterministic pattern
			}
			for inst := 0; inst < nInst; inst++ {
				rng := sc.patternSeed(ti, inst)
				var pat traffic.Pattern
				switch patName {
				case "permutation":
					pat = traffic.RandomPermutation(nTerms, rng)
				case "shift":
					pat = traffic.RandomShift(nTerms, rng)
				case "random(X)":
					pat = traffic.RandomX(nTerms, cfg.RandomX, rng)
				case "all-to-all":
					pat = traffic.AllToAll(nTerms)
				default:
					return nil, fmt.Errorf("exp: unknown model pattern %q", patName)
				}
				col := 0
				if cfg.IncludeSP {
					r := model.SinglePath(topo, dbs[0], pat, sc.Workers)
					sums[pi][0] += r.MeanNode
					counts[pi][0]++
					col = 1
				}
				for ai := range ksp.Algorithms {
					r := model.Throughput(topo, dbs[ai], pat, sc.Workers)
					sums[pi][col+ai] += r.MeanNode
					counts[pi][col+ai]++
				}
			}
		}
	}
	res.Mean = make([][]float64, len(cfg.Patterns))
	for pi := range sums {
		res.Mean[pi] = make([]float64, len(res.Selectors))
		for si := range sums[pi] {
			if counts[pi][si] > 0 {
				res.Mean[pi][si] = sums[pi][si] / float64(counts[pi][si])
			}
		}
	}
	return res, nil
}

// Table renders the figure's data as a table (patterns as rows, selectors
// as columns), the textual equivalent of the paper's grouped bar charts.
func (r *ModelFigureResult) Table(title string) *stats.Table {
	headers := append([]string{"Pattern"}, r.Selectors...)
	t := stats.NewTable(title, headers...)
	for pi, pat := range r.Patterns {
		row := []string{pat}
		for si := range r.Selectors {
			row = append(row, fmt.Sprintf("%.3f", r.Mean[pi][si]))
		}
		t.AddRow(row...)
	}
	return t
}
