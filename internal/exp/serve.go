package exp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/xrand"
)

// ServeBenchConfig sizes a jfserve serving benchmark: an in-process
// server on a temp Unix socket, hammered by concurrent clients issuing
// batched route lookups (the daemon's intended bulk shape), then single
// route round trips (the latency shape), then an overload phase against
// a second, deliberately under-provisioned server that measures the
// load-shedding path (the resilience shape).
type ServeBenchConfig struct {
	// Topo names the topology (default small — the build must fit in
	// the bench budget; pass PairSample to bench bigger ones).
	Topo string
	// K is paths per pair (default 8).
	K int
	// Seed derives the path DB and the query streams (default 1).
	Seed uint64
	// Mechanism and Estimator configure the serving choice (defaults
	// ksp-adaptive / link-load).
	Mechanism string
	Estimator string
	// PairSample bounds the stored pairs (0 = all ordered pairs).
	PairSample int
	// Clients is the number of concurrent connections (default
	// GOMAXPROCS).
	Clients int
	// BatchSize is pairs per routes-batch frame (default 512).
	BatchSize int
	// Batches is frames per client (default 100).
	Batches int
	// SingleOps is single-route round trips per client (default 2000).
	SingleOps int
	// Workers bounds the server-side build (0 = GOMAXPROCS).
	Workers int

	// OverloadInFlight is the second server's in-flight request limit
	// (default 1 — every concurrent request past the first sheds).
	OverloadInFlight int
	// OverloadClients hammer the overloaded server concurrently
	// (default 4 × GOMAXPROCS, at least 4).
	OverloadClients int
	// OverloadBatches is frames per overload client (default 50).
	OverloadBatches int
	// OverloadBatchPairs is pairs per overload frame (default 4096 —
	// large enough that handlers run long and concurrent requests
	// genuinely collide with the in-flight limit, even at GOMAXPROCS=1
	// where short handlers serialize without ever overlapping).
	OverloadBatchPairs int
}

// OverloadResult reports the load-shedding phase: an under-provisioned
// server (in-flight limit far below the offered concurrency) must shed
// with the overloaded code rather than queue or fall over, and the
// requests it does accept must stay fast.
type OverloadResult struct {
	Clients     int   `json:"clients"`
	MaxInFlight int   `json:"max_in_flight"`
	Requests    int64 `json:"requests"`
	// Shed counts requests refused with the overloaded code; ShedRate
	// is Shed / Requests.
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// Routed counts route lookups that succeeded despite the storm.
	Routed  int64   `json:"routed_lookups"`
	Seconds float64 `json:"seconds"`
	// LatencyP99Micros is the server-side p99 service time under
	// overload — shedding must keep it flat.
	LatencyP99Micros float64 `json:"latency_p99_us"`
}

// ServeBenchResult reports a serving benchmark run. LookupsPerSec is
// the headline number docs/SERVICE.md's capacity-planning notes quote.
type ServeBenchResult struct {
	Topo     string `json:"topology"`
	Key      string `json:"key"`
	Switches int    `json:"switches"`
	Pairs    int    `json:"pairs"`
	K        int    `json:"k"`

	Clients   int `json:"clients"`
	BatchSize int `json:"batch_size"`
	Batches   int `json:"batches_per_client"`

	LoadSeconds float64 `json:"load_seconds"`

	Lookups       int64   `json:"batched_lookups"`
	Seconds       float64 `json:"batched_seconds"`
	LookupsPerSec float64 `json:"batched_lookups_per_sec"`

	SingleOps     int64   `json:"single_ops"`
	SingleSeconds float64 `json:"single_seconds"`
	SinglesPerSec float64 `json:"single_ops_per_sec"`

	ServerLatency serve.LatencySummary `json:"server_latency"`

	Overload *OverloadResult `json:"overload,omitempty"`
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Topo == "" {
		c.Topo = "small"
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients == 0 {
		c.Clients = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
	if c.Batches == 0 {
		c.Batches = 100
	}
	if c.SingleOps == 0 {
		c.SingleOps = 2000
	}
	if c.OverloadInFlight == 0 {
		c.OverloadInFlight = 1
	}
	if c.OverloadClients == 0 {
		c.OverloadClients = max(4, 4*runtime.GOMAXPROCS(0))
	}
	if c.OverloadBatches == 0 {
		c.OverloadBatches = 50
	}
	if c.OverloadBatchPairs == 0 {
		c.OverloadBatchPairs = 4096
	}
	return c
}

// ServeBench starts a jfserve server on a temp Unix socket, loads the
// configured topology, and drives it with concurrent batched and
// single route lookups, reporting sustained lookups/sec, then measures
// the shed rate and latency of an under-provisioned server under
// overload (the BENCH_serve.json quantities; run via `make bench-serve`).
func ServeBench(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	if cfg.BatchSize > serve.MaxBatchPairs || cfg.OverloadBatchPairs > serve.MaxBatchPairs {
		return nil, fmt.Errorf("exp: batch size %d exceeds the protocol's %d-pair limit",
			max(cfg.BatchSize, cfg.OverloadBatchPairs), serve.MaxBatchPairs)
	}
	dir, err := os.MkdirTemp("", "jfserve-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "jfserve.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Options{Workers: cfg.Workers})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Stop()
		<-serveDone
	}()

	ctl, err := client.Dial(ctx, "unix", sock)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	topo, err := ctl.TopoLoad(ctx, serve.TopoParams{
		Topo: cfg.Topo, K: cfg.K, Seed: cfg.Seed,
		Mechanism: cfg.Mechanism, Estimator: cfg.Estimator,
		PairSample: cfg.PairSample,
	})
	if err != nil {
		return nil, err
	}

	res := &ServeBenchResult{
		Topo: cfg.Topo, Key: topo.Key, Switches: topo.Switches,
		Pairs: topo.Pairs, K: topo.K,
		Clients: cfg.Clients, BatchSize: cfg.BatchSize, Batches: cfg.Batches,
		LoadSeconds: topo.LoadSeconds,
	}

	// Phase 1: batched lookups, every client its own seeded pair stream.
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		if clients[i], err = client.Dial(ctx, "unix", sock); err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}
	errs := make(chan error, cfg.Clients)
	var routed int64
	var routedMu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			rng := xrand.NewPair(cfg.Seed^0x73657276, uint64(i)) // "serv"
			pairs := make([][2]int32, cfg.BatchSize)
			var mine int64
			for b := 0; b < cfg.Batches; b++ {
				for j := range pairs {
					s := rng.IntN(topo.Switches)
					d := rng.IntNExcept(topo.Switches, s)
					pairs[j] = [2]int32{int32(s), int32(d)}
				}
				br, err := cl.RoutesBatch(ctx, topo.Key, pairs)
				if err != nil {
					errs <- err
					return
				}
				mine += int64(br.Routed)
			}
			routedMu.Lock()
			routed += mine
			routedMu.Unlock()
		}(i, cl)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	res.Lookups = routed
	res.LookupsPerSec = float64(routed) / res.Seconds

	// Phase 2: single-route round trips (per-request latency shape).
	start = time.Now()
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			rng := xrand.NewPair(cfg.Seed^0x73676c, uint64(i)) // "sgl"
			for op := 0; op < cfg.SingleOps; op++ {
				s := rng.IntN(topo.Switches)
				d := rng.IntNExcept(topo.Switches, s)
				if _, err := cl.Route(ctx, topo.Key, int32(s), int32(d)); err != nil {
					errs <- err
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	res.SingleSeconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	res.SingleOps = int64(cfg.Clients) * int64(cfg.SingleOps)
	res.SinglesPerSec = float64(res.SingleOps) / res.SingleSeconds

	stats, err := ctl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.ServerLatency = stats.Latency

	over, err := serveOverloadBench(ctx, dir, cfg)
	if err != nil {
		return nil, err
	}
	res.Overload = over
	return res, nil
}

// serveOverloadBench runs the shed-rate phase: a fresh server with a
// tiny in-flight limit, hammered by pipelined batch clients with no
// retry policy while one "slow tenant" issues requests that hold an
// in-flight slot without burning CPU (the test-sleep op). The slow
// tenant is what makes the phase meaningful on any machine: CPU-bound
// handlers on a single-core box serialize and never overlap, but
// slot-holding slow requests force the batch traffic onto the shedding
// path, so the row measures the daemon saying overloaded — and staying
// fast — rather than quietly queueing behind a stalled tenant.
func serveOverloadBench(ctx context.Context, dir string, cfg ServeBenchConfig) (*OverloadResult, error) {
	sock := filepath.Join(dir, "jfserve-overload.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Options{
		Workers: cfg.Workers, MaxInFlight: cfg.OverloadInFlight, EnableTestOps: true,
	})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Stop()
		<-serveDone
	}()

	ctl, err := client.Dial(ctx, "unix", sock)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	topo, err := ctl.TopoLoad(ctx, serve.TopoParams{
		Topo: cfg.Topo, K: cfg.K, Seed: cfg.Seed,
		Mechanism: cfg.Mechanism, Estimator: cfg.Estimator,
		PairSample: cfg.PairSample,
	})
	if err != nil {
		return nil, err
	}

	res := &OverloadResult{Clients: cfg.OverloadClients, MaxInFlight: cfg.OverloadInFlight}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 2*cfg.OverloadClients+1)
	start := time.Now()

	// The slow tenant: synchronous 5ms slot-holders for the whole phase.
	// Its own requests may shed too when batch handlers hold the slots;
	// those are not counted — it exists to generate contention.
	stopSlow := make(chan struct{})
	var slowWG sync.WaitGroup
	slowWG.Add(1)
	go func() {
		defer slowWG.Done()
		cl, err := client.Dial(ctx, "unix", sock)
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		for {
			select {
			case <-stopSlow:
				return
			default:
			}
			_, err := cl.Do(ctx, serve.Request{Op: serve.OpTestSleep, SleepMS: 5})
			if err != nil && ctx.Err() != nil {
				return
			}
		}
	}()

	for i := 0; i < cfg.OverloadClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Pipelined raw connection: all frames are written without
			// waiting for responses, so requests from different
			// connections genuinely contend for the in-flight limit (a
			// synchronous client self-clocks and never overloads a
			// single-CPU server).
			conn, err := net.Dial("unix", sock)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			rng := xrand.NewPair(cfg.Seed^0x6f766572, uint64(i)) // "over"
			pairs := make([][2]int32, cfg.OverloadBatchPairs)
			var writeWG sync.WaitGroup
			writeWG.Add(1)
			go func() {
				defer writeWG.Done()
				bw := bufio.NewWriterSize(conn, 64<<10)
				enc := json.NewEncoder(bw)
				for b := 0; b < cfg.OverloadBatches; b++ {
					for j := range pairs {
						s := rng.IntN(topo.Switches)
						d := rng.IntNExcept(topo.Switches, s)
						pairs[j] = [2]int32{int32(s), int32(d)}
					}
					// Encode marshals before returning, so reusing pairs
					// across iterations is safe.
					if err := enc.Encode(serve.Request{
						V: serve.ProtocolVersion, ID: fmt.Sprintf("o%d-%d", i, b),
						Op: serve.OpRoutesBatch, Topo: topo.Key, Pairs: pairs,
					}); err != nil {
						errs <- err
						return
					}
				}
				if err := bw.Flush(); err != nil {
					errs <- err
				}
			}()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
			var requests, shed, routedHere int64
			for b := 0; b < cfg.OverloadBatches; b++ {
				if !sc.Scan() {
					errs <- fmt.Errorf("exp: overload conn closed after %d of %d responses: %v",
						b, cfg.OverloadBatches, sc.Err())
					break
				}
				var resp serve.Response
				if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
					errs <- err
					break
				}
				requests++
				switch {
				case resp.OK && resp.Batch != nil:
					routedHere += int64(resp.Batch.Routed)
				case resp.Error != nil && resp.Error.Code == serve.CodeOverloaded:
					shed++
				default:
					errs <- fmt.Errorf("exp: overload response %+v", resp)
				}
			}
			writeWG.Wait()
			mu.Lock()
			res.Requests += requests
			res.Shed += shed
			res.Routed += routedHere
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(stopSlow)
	slowWG.Wait()
	res.Seconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	stats, err := ctl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.LatencyP99Micros = stats.Latency.P99Micros
	return res, nil
}
