package exp

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/xrand"
)

// ServeBenchConfig sizes a jfserve serving benchmark: an in-process
// server on a temp Unix socket, hammered by concurrent clients issuing
// batched route lookups (the daemon's intended bulk shape) and then
// single route round trips (the latency shape).
type ServeBenchConfig struct {
	// Topo names the topology (default small — the build must fit in
	// the bench budget; pass PairSample to bench bigger ones).
	Topo string
	// K is paths per pair (default 8).
	K int
	// Seed derives the path DB and the query streams (default 1).
	Seed uint64
	// Mechanism and Estimator configure the serving choice (defaults
	// ksp-adaptive / link-load).
	Mechanism string
	Estimator string
	// PairSample bounds the stored pairs (0 = all ordered pairs).
	PairSample int
	// Clients is the number of concurrent connections (default
	// GOMAXPROCS).
	Clients int
	// BatchSize is pairs per routes-batch frame (default 512).
	BatchSize int
	// Batches is frames per client (default 100).
	Batches int
	// SingleOps is single-route round trips per client (default 2000).
	SingleOps int
	// Workers bounds the server-side build (0 = GOMAXPROCS).
	Workers int
}

// ServeBenchResult reports a serving benchmark run. LookupsPerSec is
// the headline number docs/SERVICE.md's capacity-planning notes quote.
type ServeBenchResult struct {
	Topo     string `json:"topology"`
	Key      string `json:"key"`
	Switches int    `json:"switches"`
	Pairs    int    `json:"pairs"`
	K        int    `json:"k"`

	Clients   int `json:"clients"`
	BatchSize int `json:"batch_size"`
	Batches   int `json:"batches_per_client"`

	LoadSeconds float64 `json:"load_seconds"`

	Lookups       int64   `json:"batched_lookups"`
	Seconds       float64 `json:"batched_seconds"`
	LookupsPerSec float64 `json:"batched_lookups_per_sec"`

	SingleOps     int64   `json:"single_ops"`
	SingleSeconds float64 `json:"single_seconds"`
	SinglesPerSec float64 `json:"single_ops_per_sec"`

	ServerLatency serve.LatencySummary `json:"server_latency"`
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Topo == "" {
		c.Topo = "small"
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients == 0 {
		c.Clients = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
	if c.Batches == 0 {
		c.Batches = 100
	}
	if c.SingleOps == 0 {
		c.SingleOps = 2000
	}
	return c
}

// ServeBench starts a jfserve server on a temp Unix socket, loads the
// configured topology, and drives it with concurrent batched and
// single route lookups, reporting sustained lookups/sec (the
// BENCH_serve.json quantities; run via `make bench-serve`).
func ServeBench(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	if cfg.BatchSize > serve.MaxBatchPairs {
		return nil, fmt.Errorf("exp: batch size %d exceeds the protocol's %d-pair limit",
			cfg.BatchSize, serve.MaxBatchPairs)
	}
	dir, err := os.MkdirTemp("", "jfserve-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "jfserve.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Options{Workers: cfg.Workers})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Stop()
		<-serveDone
	}()

	ctl, err := client.Dial("unix", sock)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	topo, err := ctl.TopoLoad(serve.TopoParams{
		Topo: cfg.Topo, K: cfg.K, Seed: cfg.Seed,
		Mechanism: cfg.Mechanism, Estimator: cfg.Estimator,
		PairSample: cfg.PairSample,
	})
	if err != nil {
		return nil, err
	}

	res := &ServeBenchResult{
		Topo: cfg.Topo, Key: topo.Key, Switches: topo.Switches,
		Pairs: topo.Pairs, K: topo.K,
		Clients: cfg.Clients, BatchSize: cfg.BatchSize, Batches: cfg.Batches,
		LoadSeconds: topo.LoadSeconds,
	}

	// Phase 1: batched lookups, every client its own seeded pair stream.
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		if clients[i], err = client.Dial("unix", sock); err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}
	errs := make(chan error, cfg.Clients)
	var routed int64
	var routedMu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			rng := xrand.NewPair(cfg.Seed^0x73657276, uint64(i)) // "serv"
			pairs := make([][2]int32, cfg.BatchSize)
			var mine int64
			for b := 0; b < cfg.Batches; b++ {
				for j := range pairs {
					s := rng.IntN(topo.Switches)
					d := rng.IntNExcept(topo.Switches, s)
					pairs[j] = [2]int32{int32(s), int32(d)}
				}
				br, err := cl.RoutesBatch(topo.Key, pairs)
				if err != nil {
					errs <- err
					return
				}
				mine += int64(br.Routed)
			}
			routedMu.Lock()
			routed += mine
			routedMu.Unlock()
		}(i, cl)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	res.Lookups = routed
	res.LookupsPerSec = float64(routed) / res.Seconds

	// Phase 2: single-route round trips (per-request latency shape).
	start = time.Now()
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			rng := xrand.NewPair(cfg.Seed^0x73676c, uint64(i)) // "sgl"
			for op := 0; op < cfg.SingleOps; op++ {
				s := rng.IntN(topo.Switches)
				d := rng.IntNExcept(topo.Switches, s)
				if _, err := cl.Route(topo.Key, int32(s), int32(d)); err != nil {
					errs <- err
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	res.SingleSeconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	res.SingleOps = int64(cfg.Clients) * int64(cfg.SingleOps)
	res.SinglesPerSec = float64(res.SingleOps) / res.SingleSeconds

	stats, err := ctl.Stats()
	if err != nil {
		return nil, err
	}
	res.ServerLatency = stats.Latency
	return res, nil
}
