package exp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/xrand"
)

// ServeBenchConfig sizes a jfserve serving benchmark: an in-process
// server on a temp Unix socket, hammered by concurrent clients issuing
// batched route lookups (the daemon's intended bulk shape), then single
// route round trips (the latency shape), then an overload phase against
// a second, deliberately under-provisioned server that measures the
// load-shedding path (the resilience shape).
type ServeBenchConfig struct {
	// Topo names the topology (default small — the build must fit in
	// the bench budget; pass PairSample to bench bigger ones).
	Topo string
	// K is paths per pair (default 8).
	K int
	// Seed derives the path DB and the query streams (default 1).
	Seed uint64
	// Mechanism and Estimator configure the serving choice (defaults
	// ksp-adaptive / link-load).
	Mechanism string
	Estimator string
	// PairSample bounds the stored pairs (0 = all ordered pairs).
	PairSample int
	// Clients is the number of concurrent connections (default
	// GOMAXPROCS).
	Clients int
	// BatchSize is pairs per routes-batch frame (default 512).
	BatchSize int
	// Batches is frames per client (default 100).
	Batches int
	// SingleOps is single-route round trips per client (default 2000).
	SingleOps int
	// Workers bounds the server-side build (0 = GOMAXPROCS).
	Workers int
	// SweepPairs is the generated-pair count for the streaming sweep
	// phase (default 100000; must stay within serve.MaxSweepPairs).
	SweepPairs int
	// MultiCoreProcs is the GOMAXPROCS setting for the multi-core
	// series: a fresh server with one routing stripe per proc, driven
	// by that many clients (default 4; negative skips the series).
	MultiCoreProcs int

	// OverloadInFlight is the second server's in-flight request limit
	// (default 1 — every concurrent request past the first sheds).
	OverloadInFlight int
	// OverloadClients hammer the overloaded server concurrently
	// (default 4 × GOMAXPROCS, at least 4).
	OverloadClients int
	// OverloadBatches is frames per overload client (default 50).
	OverloadBatches int
	// OverloadBatchPairs is pairs per overload frame (default 4096 —
	// large enough that handlers run long and concurrent requests
	// genuinely collide with the in-flight limit, even at GOMAXPROCS=1
	// where short handlers serialize without ever overlapping).
	OverloadBatchPairs int
}

// OverloadResult reports the load-shedding phase: an under-provisioned
// server (in-flight limit far below the offered concurrency) must shed
// with the overloaded code rather than queue or fall over, and the
// requests it does accept must stay fast.
type OverloadResult struct {
	Clients     int   `json:"clients"`
	MaxInFlight int   `json:"max_in_flight"`
	Requests    int64 `json:"requests"`
	// Shed counts requests refused with the overloaded code; ShedRate
	// is Shed / Requests.
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// Routed counts route lookups that succeeded despite the storm.
	Routed  int64   `json:"routed_lookups"`
	Seconds float64 `json:"seconds"`
	// LatencyP99Micros is the server-side p99 service time under
	// overload — shedding must keep it flat.
	LatencyP99Micros float64 `json:"latency_p99_us"`
}

// ServeBenchResult reports a serving benchmark run. LookupsPerSec is
// the headline number docs/SERVICE.md's capacity-planning notes quote.
type ServeBenchResult struct {
	Topo     string `json:"topology"`
	Key      string `json:"key"`
	Switches int    `json:"switches"`
	Pairs    int    `json:"pairs"`
	K        int    `json:"k"`

	Clients   int `json:"clients"`
	BatchSize int `json:"batch_size"`
	Batches   int `json:"batches_per_client"`

	LoadSeconds float64 `json:"load_seconds"`

	Lookups       int64   `json:"batched_lookups"`
	Seconds       float64 `json:"batched_seconds"`
	LookupsPerSec float64 `json:"batched_lookups_per_sec"`

	// The binary series repeats the batched phase over protocol v2
	// connections routing the identical pair streams, so the two rates
	// compare codec against codec on the same traffic. BinarySpeedup is
	// BinaryLookupsPerSec / LookupsPerSec.
	BinaryLookups       int64   `json:"binary_batched_lookups"`
	BinarySeconds       float64 `json:"binary_batched_seconds"`
	BinaryLookupsPerSec float64 `json:"binary_batched_lookups_per_sec"`
	BinarySpeedup       float64 `json:"binary_speedup_vs_json"`

	SingleOps     int64   `json:"single_ops"`
	SingleSeconds float64 `json:"single_seconds"`
	SinglesPerSec float64 `json:"single_ops_per_sec"`

	// The sweep series streams one server-generated sweep over a binary
	// connection: pairs/sec with the server driving pair generation and
	// chunked result framing instead of per-batch round trips.
	SweepPairs       int64   `json:"sweep_pairs"`
	SweepChunks      int     `json:"sweep_chunks"`
	SweepSeconds     float64 `json:"sweep_seconds"`
	SweepPairsPerSec float64 `json:"sweep_pairs_per_sec"`

	ServerLatency serve.LatencySummary `json:"server_latency"`

	MultiCore *MultiCoreResult `json:"multi_core,omitempty"`

	Overload *OverloadResult `json:"overload,omitempty"`
}

// MultiCoreResult reports the GOMAXPROCS≥4 series: a fresh server with
// one routing stripe per proc, driven by one client per proc over both
// codecs. NumCPU records the hardware threads actually present — on a
// single-CPU box the series measures stripe overhead under forced
// scheduling, not true parallel speedup, and readers need to know which.
type MultiCoreResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Stripes    int `json:"stripes"`
	Clients    int `json:"clients"`

	Lookups       int64   `json:"batched_lookups"`
	Seconds       float64 `json:"batched_seconds"`
	LookupsPerSec float64 `json:"batched_lookups_per_sec"`

	BinaryLookups       int64   `json:"binary_batched_lookups"`
	BinarySeconds       float64 `json:"binary_batched_seconds"`
	BinaryLookupsPerSec float64 `json:"binary_batched_lookups_per_sec"`
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Topo == "" {
		c.Topo = "small"
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients == 0 {
		c.Clients = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
	if c.Batches == 0 {
		c.Batches = 100
	}
	if c.SingleOps == 0 {
		c.SingleOps = 2000
	}
	if c.SweepPairs == 0 {
		c.SweepPairs = 100000
	}
	if c.MultiCoreProcs == 0 {
		c.MultiCoreProcs = 4
	}
	if c.OverloadInFlight == 0 {
		c.OverloadInFlight = 1
	}
	if c.OverloadClients == 0 {
		c.OverloadClients = max(4, 4*runtime.GOMAXPROCS(0))
	}
	if c.OverloadBatches == 0 {
		c.OverloadBatches = 50
	}
	if c.OverloadBatchPairs == 0 {
		c.OverloadBatchPairs = 4096
	}
	return c
}

// ServeBench starts a jfserve server on a temp Unix socket, loads the
// configured topology, and drives it with concurrent batched lookups
// over both codecs (JSON v1 then binary v2 on identical pair streams),
// single route round trips, and one server-driven streaming sweep,
// then repeats the batched series against a striped GOMAXPROCS≥4
// server and finally measures the shed rate and latency of an
// under-provisioned server under overload (the BENCH_serve.json
// quantities; run via `make bench-serve`).
func ServeBench(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	if cfg.BatchSize > serve.MaxBatchPairs || cfg.OverloadBatchPairs > serve.MaxBatchPairs {
		return nil, fmt.Errorf("exp: batch size %d exceeds the protocol's %d-pair limit",
			max(cfg.BatchSize, cfg.OverloadBatchPairs), serve.MaxBatchPairs)
	}
	if cfg.SweepPairs > serve.MaxSweepPairs {
		return nil, fmt.Errorf("exp: sweep size %d exceeds the protocol's %d-pair limit",
			cfg.SweepPairs, serve.MaxSweepPairs)
	}
	dir, err := os.MkdirTemp("", "jfserve-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "jfserve.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Options{Workers: cfg.Workers})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Stop()
		<-serveDone
	}()

	ctl, err := client.Dial(ctx, "unix", sock)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	topo, err := ctl.TopoLoad(ctx, serve.TopoParams{
		Topo: cfg.Topo, K: cfg.K, Seed: cfg.Seed,
		Mechanism: cfg.Mechanism, Estimator: cfg.Estimator,
		PairSample: cfg.PairSample,
	})
	if err != nil {
		return nil, err
	}

	res := &ServeBenchResult{
		Topo: cfg.Topo, Key: topo.Key, Switches: topo.Switches,
		Pairs: topo.Pairs, K: topo.K,
		Clients: cfg.Clients, BatchSize: cfg.BatchSize, Batches: cfg.Batches,
		LoadSeconds: topo.LoadSeconds,
	}

	// Phase 1: batched lookups over JSON, every client its own seeded
	// pair stream.
	res.Lookups, res.Seconds, err = batchedPhase(ctx, sock, cfg, topo.Key, topo.Switches, cfg.Clients, false)
	if err != nil {
		return nil, err
	}
	res.LookupsPerSec = float64(res.Lookups) / res.Seconds

	// Phase 1b: the same batched traffic over binary protocol v2 — the
	// identical pair streams, so the delta is pure codec + fast path.
	res.BinaryLookups, res.BinarySeconds, err = batchedPhase(ctx, sock, cfg, topo.Key, topo.Switches, cfg.Clients, true)
	if err != nil {
		return nil, err
	}
	res.BinaryLookupsPerSec = float64(res.BinaryLookups) / res.BinarySeconds
	if res.LookupsPerSec > 0 {
		res.BinarySpeedup = res.BinaryLookupsPerSec / res.LookupsPerSec
	}

	// Phase 2: single-route round trips (per-request latency shape).
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		if clients[i], err = client.Dial(ctx, "unix", sock); err != nil {
			return nil, err
		}
		defer clients[i].Close()
	}
	errs := make(chan error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			rng := xrand.NewPair(cfg.Seed^0x73676c, uint64(i)) // "sgl"
			for op := 0; op < cfg.SingleOps; op++ {
				s := rng.IntN(topo.Switches)
				d := rng.IntNExcept(topo.Switches, s)
				if _, err := cl.Route(ctx, topo.Key, int32(s), int32(d)); err != nil {
					errs <- err
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	res.SingleSeconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	res.SingleOps = int64(cfg.Clients) * int64(cfg.SingleOps)
	res.SinglesPerSec = float64(res.SingleOps) / res.SingleSeconds

	// Phase 3: one streaming sweep over a binary connection. The client
	// only acknowledges chunks; the server generates pairs, routes them
	// and frames results, so this is the server-driven bulk ceiling.
	sw, err := client.DialBinary(ctx, "unix", sock)
	if err != nil {
		return nil, err
	}
	defer sw.Close()
	start = time.Now()
	_, done, err := sw.Sweep(ctx, topo.Key, serve.SweepParams{
		Count: cfg.SweepPairs, Seed: cfg.Seed ^ 0x73777065, // "swpe"
	}, func(serve.SweepChunk) error { return nil })
	if err != nil {
		return nil, err
	}
	res.SweepSeconds = time.Since(start).Seconds()
	res.SweepPairs = done.Routed + done.Failed
	res.SweepChunks = done.Chunks
	res.SweepPairsPerSec = float64(res.SweepPairs) / res.SweepSeconds

	stats, err := ctl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.ServerLatency = stats.Latency

	if cfg.MultiCoreProcs > 0 {
		mc, err := serveMultiCoreBench(ctx, dir, cfg)
		if err != nil {
			return nil, err
		}
		res.MultiCore = mc
	}

	over, err := serveOverloadBench(ctx, dir, cfg)
	if err != nil {
		return nil, err
	}
	res.Overload = over
	return res, nil
}

// batchedPhase drives nclients concurrent connections, each issuing
// cfg.Batches routes-batch frames of cfg.BatchSize seeded random pairs,
// and reports total routed lookups and wall seconds. The pair streams
// depend only on (cfg.Seed, client index), never on the codec, so the
// JSON and binary series route identical traffic and their rates
// compare like for like.
func batchedPhase(ctx context.Context, sock string, cfg ServeBenchConfig, topoKey string, switches, nclients int, binary bool) (lookups int64, seconds float64, err error) {
	dial := client.Dial
	if binary {
		dial = client.DialBinary
	}
	clients := make([]*client.Client, nclients)
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	for i := range clients {
		if clients[i], err = dial(ctx, "unix", sock); err != nil {
			return 0, 0, err
		}
	}
	errs := make(chan error, nclients)
	var mu sync.Mutex
	var routed int64
	var wg sync.WaitGroup
	start := time.Now()
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			rng := xrand.NewPair(cfg.Seed^0x73657276, uint64(i)) // "serv"
			pairs := make([][2]int32, cfg.BatchSize)
			var mine int64
			for b := 0; b < cfg.Batches; b++ {
				for j := range pairs {
					s := rng.IntN(switches)
					d := rng.IntNExcept(switches, s)
					pairs[j] = [2]int32{int32(s), int32(d)}
				}
				br, err := cl.RoutesBatch(ctx, topoKey, pairs)
				if err != nil {
					errs <- err
					return
				}
				mine += int64(br.Routed)
			}
			mu.Lock()
			routed += mine
			mu.Unlock()
		}(i, cl)
	}
	wg.Wait()
	seconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return 0, 0, err
	default:
	}
	return routed, seconds, nil
}

// serveMultiCoreBench runs the GOMAXPROCS≥4 series: it raises
// GOMAXPROCS for the duration (restored on return), starts a fresh
// server with one routing stripe per proc, and repeats both batched
// series with one client per proc, so the adaptive choice path
// genuinely runs striped rather than serialized on one state mutex.
func serveMultiCoreBench(ctx context.Context, dir string, cfg ServeBenchConfig) (*MultiCoreResult, error) {
	procs := cfg.MultiCoreProcs
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	sock := filepath.Join(dir, "jfserve-mc.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Options{Workers: cfg.Workers, Stripes: procs})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Stop()
		<-serveDone
	}()

	ctl, err := client.Dial(ctx, "unix", sock)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	topo, err := ctl.TopoLoad(ctx, serve.TopoParams{
		Topo: cfg.Topo, K: cfg.K, Seed: cfg.Seed,
		Mechanism: cfg.Mechanism, Estimator: cfg.Estimator,
		PairSample: cfg.PairSample,
	})
	if err != nil {
		return nil, err
	}

	nclients := max(cfg.Clients, procs)
	res := &MultiCoreResult{
		GOMAXPROCS: procs, NumCPU: runtime.NumCPU(),
		Stripes: procs, Clients: nclients,
	}
	res.Lookups, res.Seconds, err = batchedPhase(ctx, sock, cfg, topo.Key, topo.Switches, nclients, false)
	if err != nil {
		return nil, err
	}
	res.LookupsPerSec = float64(res.Lookups) / res.Seconds
	res.BinaryLookups, res.BinarySeconds, err = batchedPhase(ctx, sock, cfg, topo.Key, topo.Switches, nclients, true)
	if err != nil {
		return nil, err
	}
	res.BinaryLookupsPerSec = float64(res.BinaryLookups) / res.BinarySeconds
	return res, nil
}

// serveOverloadBench runs the shed-rate phase: a fresh server with a
// tiny in-flight limit, hammered by pipelined batch clients with no
// retry policy while one "slow tenant" issues requests that hold an
// in-flight slot without burning CPU (the test-sleep op). The slow
// tenant is what makes the phase meaningful on any machine: CPU-bound
// handlers on a single-core box serialize and never overlap, but
// slot-holding slow requests force the batch traffic onto the shedding
// path, so the row measures the daemon saying overloaded — and staying
// fast — rather than quietly queueing behind a stalled tenant.
func serveOverloadBench(ctx context.Context, dir string, cfg ServeBenchConfig) (*OverloadResult, error) {
	sock := filepath.Join(dir, "jfserve-overload.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Options{
		Workers: cfg.Workers, MaxInFlight: cfg.OverloadInFlight, EnableTestOps: true,
	})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Stop()
		<-serveDone
	}()

	ctl, err := client.Dial(ctx, "unix", sock)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	topo, err := ctl.TopoLoad(ctx, serve.TopoParams{
		Topo: cfg.Topo, K: cfg.K, Seed: cfg.Seed,
		Mechanism: cfg.Mechanism, Estimator: cfg.Estimator,
		PairSample: cfg.PairSample,
	})
	if err != nil {
		return nil, err
	}

	res := &OverloadResult{Clients: cfg.OverloadClients, MaxInFlight: cfg.OverloadInFlight}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 2*cfg.OverloadClients+1)
	start := time.Now()

	// The slow tenant: synchronous 5ms slot-holders for the whole phase.
	// Its own requests may shed too when batch handlers hold the slots;
	// those are not counted — it exists to generate contention.
	stopSlow := make(chan struct{})
	var slowWG sync.WaitGroup
	slowWG.Add(1)
	go func() {
		defer slowWG.Done()
		cl, err := client.Dial(ctx, "unix", sock)
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		for {
			select {
			case <-stopSlow:
				return
			default:
			}
			_, err := cl.Do(ctx, serve.Request{Op: serve.OpTestSleep, SleepMS: 5})
			if err != nil && ctx.Err() != nil {
				return
			}
		}
	}()

	for i := 0; i < cfg.OverloadClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Pipelined raw connection: all frames are written without
			// waiting for responses, so requests from different
			// connections genuinely contend for the in-flight limit (a
			// synchronous client self-clocks and never overloads a
			// single-CPU server).
			conn, err := net.Dial("unix", sock)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			rng := xrand.NewPair(cfg.Seed^0x6f766572, uint64(i)) // "over"
			pairs := make([][2]int32, cfg.OverloadBatchPairs)
			var writeWG sync.WaitGroup
			writeWG.Add(1)
			go func() {
				defer writeWG.Done()
				bw := bufio.NewWriterSize(conn, 64<<10)
				enc := json.NewEncoder(bw)
				for b := 0; b < cfg.OverloadBatches; b++ {
					for j := range pairs {
						s := rng.IntN(topo.Switches)
						d := rng.IntNExcept(topo.Switches, s)
						pairs[j] = [2]int32{int32(s), int32(d)}
					}
					// Encode marshals before returning, so reusing pairs
					// across iterations is safe.
					if err := enc.Encode(serve.Request{
						V: serve.ProtocolVersion, ID: fmt.Sprintf("o%d-%d", i, b),
						Op: serve.OpRoutesBatch, Topo: topo.Key, Pairs: pairs,
					}); err != nil {
						errs <- err
						return
					}
				}
				if err := bw.Flush(); err != nil {
					errs <- err
				}
			}()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
			var requests, shed, routedHere int64
			for b := 0; b < cfg.OverloadBatches; b++ {
				if !sc.Scan() {
					errs <- fmt.Errorf("exp: overload conn closed after %d of %d responses: %v",
						b, cfg.OverloadBatches, sc.Err())
					break
				}
				var resp serve.Response
				if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
					errs <- err
					break
				}
				requests++
				switch {
				case resp.OK && resp.Batch != nil:
					routedHere += int64(resp.Batch.Routed)
				case resp.Error != nil && resp.Error.Code == serve.CodeOverloaded:
					shed++
				default:
					errs <- fmt.Errorf("exp: overload response %+v", resp)
				}
			}
			writeWG.Wait()
			mu.Lock()
			res.Requests += requests
			res.Shed += shed
			res.Routed += routedHere
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(stopSlow)
	slowWG.Wait()
	res.Seconds = time.Since(start).Seconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	stats, err := ctl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.LatencyP99Micros = stats.Latency.P99Micros
	return res, nil
}
