package exp

import (
	"strings"
	"testing"

	"repro/internal/jellyfish"
)

func TestAblationKSweep(t *testing.T) {
	res, err := AblationKSweep(tiny, []int{1, 2, 4}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mean) != 3 || len(res.Mean[0]) != 4 {
		t.Fatalf("shape = %dx%d", len(res.Mean), len(res.Mean[0]))
	}
	// More paths never hurt modeled throughput for the randomized
	// edge-disjoint selector (column 3).
	if res.Mean[2][3] < res.Mean[0][3] {
		t.Fatalf("rEDKSP k=4 (%v) below k=1 (%v)", res.Mean[2][3], res.Mean[0][3])
	}
	// At k=1 all selectors degenerate to (a) shortest path; deterministic
	// variants must agree exactly.
	if res.Mean[0][0] != res.Mean[0][2] {
		t.Fatalf("k=1 KSP %v != EDKSP %v", res.Mean[0][0], res.Mean[0][2])
	}
	out := res.Table("k sweep").String()
	if !strings.Contains(out, "rEDKSP") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationUGALBias(t *testing.T) {
	res, err := AblationUGALBias(tiny, []int{0, 1000000}, []float64{0.2, 0.4, 0.6}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sat) != 2 || len(res.Sat[0]) != 2 {
		t.Fatalf("shape wrong: %+v", res.Sat)
	}
	for bi := range res.Sat {
		for mi := range res.Sat[bi] {
			if res.Sat[bi][mi] < 0 || res.Sat[bi][mi] > 1 {
				t.Fatalf("sat[%d][%d] = %v", bi, mi, res.Sat[bi][mi])
			}
		}
	}
	out := res.Table("bias").String()
	if !strings.Contains(out, "KSP-UGAL") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestLoadImbalance(t *testing.T) {
	res, err := LoadImbalance(tiny, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	for si, s := range res.Stats {
		if s.Links != tiny.N*tiny.Y {
			t.Fatalf("%s: links = %d", res.Selectors[si], s.Links)
		}
		if s.Max < s.Mean {
			t.Fatalf("%s: max %v < mean %v", res.Selectors[si], s.Max, s.Mean)
		}
	}
	// rEDKSP (index 3) should not have a worse max load than KSP (0).
	if res.Stats[3].Max > res.Stats[0].Max {
		t.Fatalf("rEDKSP max %v above KSP %v", res.Stats[3].Max, res.Stats[0].Max)
	}
	out := res.Table("imbalance").String()
	if !strings.Contains(out, "Top-1% share") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestDisjointExistence(t *testing.T) {
	sc := tinyScale()
	sc.PairSample = 40
	res, err := DisjointExistence(tiny, []int{2, 4, 100}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 40 {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	// On a connected y-regular RRG the max-flow between any pair is
	// exactly y (the topology is whp y-connected), so every pair meets
	// k <= y and none meets k = 100.
	if res.MinDisjoint != tiny.Y {
		t.Fatalf("min disjoint = %d, want %d", res.MinDisjoint, tiny.Y)
	}
	if res.MeetsK[0] != 1 || res.MeetsK[1] != 1 {
		t.Fatalf("k=2/4 fractions = %v", res.MeetsK)
	}
	if res.MeetsK[2] != 0 {
		t.Fatalf("k=100 fraction = %v, want 0", res.MeetsK[2])
	}
	out := res.Table("existence").String()
	if !strings.Contains(out, "min over pairs") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFaultResilience(t *testing.T) {
	sc := tinyScale()
	sc.PairSample = 40
	res, err := FaultResilience(tiny, []int{0, 5, 20}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survive) != 3 || len(res.Survive[0]) != 4 {
		t.Fatalf("shape wrong")
	}
	for ai := range res.Selectors {
		// Zero failures: everything survives with all k paths intact.
		if res.Survive[0][ai] != 1 {
			t.Fatalf("%s: survival at 0 failures = %v", res.Selectors[ai], res.Survive[0][ai])
		}
		if res.MeanSurvivingPaths[0][ai] != float64(sc.K) {
			t.Fatalf("%s: %v paths at 0 failures", res.Selectors[ai], res.MeanSurvivingPaths[0][ai])
		}
		// Monotone: more failures, fewer survivors.
		if res.Survive[2][ai] > res.Survive[1][ai]+1e-9 {
			t.Fatalf("%s: survival increased with failures", res.Selectors[ai])
		}
	}
	// Surviving path counts are within [0, k] and decrease with failures.
	for fi := range res.FailedLinks {
		for ai := range res.Selectors {
			v := res.MeanSurvivingPaths[fi][ai]
			if v < 0 || v > float64(sc.K) {
				t.Fatalf("surviving paths out of range: %v", v)
			}
		}
	}
	out := res.Table("faults").String()
	if !strings.Contains(out, "Failed links") {
		t.Fatalf("render:\n%s", out)
	}
	out2 := res.PathsTable("paths").String()
	if !strings.Contains(out2, "rEDKSP") {
		t.Fatalf("render:\n%s", out2)
	}
}

func TestFaultResilienceTooManyFailures(t *testing.T) {
	sc := tinyScale()
	sc.PairSample = 10
	if _, err := FaultResilience(tiny, []int{10000}, sc); err == nil {
		t.Fatal("overlarge failure count accepted")
	}
}

func TestScalingStudy(t *testing.T) {
	sizes := []jellyfish.Params{{N: 8, X: 9, Y: 6}, {N: 16, X: 9, Y: 6}}
	rows, err := ScalingStudy(sizes, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Bigger network, longer average shortest path.
	if rows[1].AvgShortest <= rows[0].AvgShortest {
		t.Fatalf("avg SP did not grow: %v vs %v", rows[0].AvgShortest, rows[1].AvgShortest)
	}
	for _, r := range rows {
		if len(r.Throughput) != 4 {
			t.Fatalf("throughput columns = %d", len(r.Throughput))
		}
		for _, v := range r.Throughput {
			if v <= 0 || v > 1+1e-9 {
				t.Fatalf("throughput %v out of range", v)
			}
		}
	}
	out := RenderScaling(rows).String()
	if !strings.Contains(out, "Terminals") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestValidateModel(t *testing.T) {
	res, err := ValidateModel(tiny, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for ai, sel := range res.Selectors {
		if res.ModelMean[ai] <= 0 || res.ModelMean[ai] > 1+1e-9 {
			t.Fatalf("%s model mean = %v", sel, res.ModelMean[ai])
		}
		if res.FairMean[ai] <= 0 || res.FairMean[ai] > 1+1e-9 {
			t.Fatalf("%s fair mean = %v", sel, res.FairMean[ai])
		}
		// The approximation should stay within a factor band.
		ratio := res.ModelMean[ai] / res.FairMean[ai]
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("%s: model/fair ratio %v out of band", sel, ratio)
		}
	}
	// Both methodologies agree rEDKSP >= KSP.
	if res.FairMean[3] < res.FairMean[0] {
		t.Fatalf("max-min reverses ordering: %v vs %v", res.FairMean[3], res.FairMean[0])
	}
	out := res.Table("validation").String()
	if !strings.Contains(out, "Model error") {
		t.Fatalf("render:\n%s", out)
	}
}
