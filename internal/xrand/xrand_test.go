package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams appear identical")
	}

	// Splitting again from an identically seeded parent must reproduce the
	// same children.
	parentA, parentB := New(7), New(7)
	a1, a2 := parentA.Split(), parentA.Split()
	b1, b2 := parentB.Split(), parentB.Split()
	for i := 0; i < 100; i++ {
		if a1.Uint64() != b1.Uint64() {
			t.Fatal("child 1 not reproducible")
		}
		if a2.Uint64() != b2.Uint64() {
			t.Fatal("child 2 not reproducible")
		}
	}
}

func TestIntNExcept(t *testing.T) {
	g := New(3)
	for n := 2; n < 10; n++ {
		for excl := 0; excl < n; excl++ {
			for trial := 0; trial < 50; trial++ {
				v := g.IntNExcept(n, excl)
				if v == excl {
					t.Fatalf("IntNExcept(%d, %d) returned the excluded value", n, excl)
				}
				if v < 0 || v >= n {
					t.Fatalf("IntNExcept(%d, %d) = %d out of range", n, excl, v)
				}
			}
		}
	}
}

func TestIntNExceptUniform(t *testing.T) {
	g := New(9)
	const n, excl, trials = 5, 2, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[g.IntNExcept(n, excl)]++
	}
	if counts[excl] != 0 {
		t.Fatalf("excluded value drawn %d times", counts[excl])
	}
	want := trials / (n - 1)
	for v, c := range counts {
		if v == excl {
			continue
		}
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("value %d drawn %d times, want about %d", v, c, want)
		}
	}
}

func TestTwoDistinct(t *testing.T) {
	g := New(11)
	for trial := 0; trial < 1000; trial++ {
		a, b := g.TwoDistinct(4)
		if a == b {
			t.Fatal("TwoDistinct returned equal values")
		}
		if a < 0 || a >= 4 || b < 0 || b >= 4 {
			t.Fatalf("TwoDistinct out of range: %d %d", a, b)
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	g := New(13)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := g.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKFull(t *testing.T) {
	g := New(17)
	s := g.SampleK(10, 10)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("SampleK(10,10) is not a permutation: %v", s)
	}
}

func TestSampleKZero(t *testing.T) {
	g := New(19)
	if s := g.SampleK(5, 0); len(s) != 0 {
		t.Fatalf("SampleK(5,0) = %v, want empty", s)
	}
}

func TestPickAndShuffleSlice(t *testing.T) {
	g := New(23)
	s := []string{"a", "b", "c", "d"}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[Pick(g, s)]++
	}
	for _, v := range s {
		if counts[v] < 700 {
			t.Fatalf("Pick is badly skewed: %v", counts)
		}
	}
	orig := append([]string(nil), s...)
	ShuffleSlice(g, s)
	if len(s) != len(orig) {
		t.Fatal("shuffle changed length")
	}
	seen := map[string]bool{}
	for _, v := range s {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %q", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(29)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(31)
	p := g.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestReseed(t *testing.T) {
	a := New(5)
	a.Uint64()
	a.Reseed(10, 20)
	b := NewPair(10, 20)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed does not match NewPair")
		}
	}
	// Children derived after a reseed restart from index zero.
	a.Reseed(10, 20)
	c1 := a.Uint64()
	if c1 != NewPair(10, 20).Uint64() {
		t.Fatal("reseed did not reset the stream")
	}
}

func TestMix64(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix64(i)
		if seen[v] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[v] = true
	}
	if Mix64(0) == 0 {
		t.Fatal("Mix64(0) should not be 0")
	}
}

func TestBoolBalance(t *testing.T) {
	g := New(37)
	trues := 0
	for i := 0; i < 10000; i++ {
		if g.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Fatalf("Bool heavily skewed: %d/10000", trues)
	}
}

func TestInt64N(t *testing.T) {
	g := New(41)
	for i := 0; i < 1000; i++ {
		v := g.Int64N(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int64N out of range: %d", v)
		}
	}
}
