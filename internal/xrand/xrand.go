// Package xrand provides small, deterministic pseudo-random utilities used
// throughout the repository.
//
// All randomized algorithms in this module (RRG construction, randomized
// Dijkstra tie-breaking, traffic pattern generation, adaptive routing
// candidate sampling, ...) draw from explicitly seeded sources so that every
// experiment is reproducible from its seed. The package wraps math/rand/v2
// PCG sources and adds a few helpers that the standard library does not
// provide: stream splitting (independent child streams derived from a parent
// seed), slice shuffling for arbitrary element types, and weighted and
// exclusive integer sampling.
package xrand

import (
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random number generator. It is a thin wrapper
// around *rand.Rand (PCG) adding split and sampling helpers. RNG is not safe
// for concurrent use; use Split to derive independent per-goroutine streams.
type RNG struct {
	r *rand.Rand
	// seed material retained so children can be derived deterministically.
	hi, lo  uint64
	nextKid uint64
}

// New returns an RNG seeded from a single 64-bit seed.
func New(seed uint64) *RNG {
	return NewPair(seed, 0x9e3779b97f4a7c15)
}

// NewPair returns an RNG seeded from two 64-bit words.
func NewPair(hi, lo uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Split derives a new, statistically independent RNG from this one. Children
// derived from the same parent in the same order are identical across runs,
// which lets parallel workers each own a deterministic stream.
func (g *RNG) Split() *RNG {
	g.nextKid++
	// Mix the parent seed with the child index through splitmix64 so child
	// streams do not overlap the parent's.
	return NewPair(splitmix64(g.hi^g.nextKid), splitmix64(g.lo+g.nextKid*0x9e3779b97f4a7c15))
}

// Reseed resets the generator to a fresh stream derived from the two seed
// words, as if created by NewPair. It lets long-lived worker objects give
// every work item (e.g. every source-destination pair) its own
// schedule-independent stream.
func (g *RNG) Reseed(hi, lo uint64) {
	g.r = rand.New(rand.NewPCG(hi, lo))
	g.hi, g.lo = hi, lo
	g.nextKid = 0
}

// Mix64 is a strong 64-bit mixing function (the SplitMix64 finalizer),
// exported for callers that derive stream seeds from structured values
// such as pair keys.
func Mix64(x uint64) uint64 { return splitmix64(x) }

// splitmix64 is the finalizer of the SplitMix64 generator; it is a strong
// 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Int64N returns a uniform int64 in [0, n). It panics if n <= 0.
func (g *RNG) Int64N(n int64) int64 { return g.r.Int64N(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability 1/2.
func (g *RNG) Bool() bool { return g.r.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// IntNExcept returns a uniform int in [0, n) that is different from excl.
// It panics if n <= 1.
func (g *RNG) IntNExcept(n, excl int) int {
	if n <= 1 {
		panic("xrand: IntNExcept needs n > 1")
	}
	v := g.r.IntN(n - 1)
	if v >= excl {
		v++
	}
	return v
}

// TwoDistinct returns two distinct uniform ints in [0, n). It panics if
// n <= 1.
func (g *RNG) TwoDistinct(n int) (int, int) {
	a := g.r.IntN(n)
	return a, g.IntNExcept(n, a)
}

// SampleK returns k distinct uniform values from [0, n) in random order.
// It panics if k > n or k < 0.
func (g *RNG) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleK needs 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation for small k.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := g.r.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	g.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ShuffleSlice shuffles s in place.
func ShuffleSlice[T any](g *RNG, s []T) {
	g.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Pick returns a uniformly chosen element of s. It panics on an empty slice.
func Pick[T any](g *RNG, s []T) T {
	return s[g.IntN(len(s))]
}
