package paths

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The corruption fixtures are committed alongside the v1 golden cache
// (testdata/pathdb_v1.jfpc) and derived from it deterministically:
//
//	badsum     the golden bytes with the trailing checksum flipped —
//	           structurally valid, so only the checksum catches it
//	truncated  the golden bytes cut off mid-arena — a torn write or a
//	           partially copied cache file
//
// Regenerate with `go test -run Golden -update-golden` (they follow the
// golden fixture automatically).
const (
	badsumFixture    = "testdata/pathdb_v1_badsum.jfpc"
	truncatedFixture = "testdata/pathdb_v1_truncated.jfpc"
)

func corruptFixtureBytes(t *testing.T, golden []byte) (badsum, truncated []byte) {
	t.Helper()
	if len(golden) < 32 {
		t.Fatalf("golden fixture implausibly short: %d bytes", len(golden))
	}
	badsum = bytes.Clone(golden)
	badsum[len(badsum)-1] ^= 0xff // inside the u64 checksum footer
	truncated = bytes.Clone(golden[:len(golden)-11])
	return badsum, truncated
}

func TestCorruptFixturesUpToDate(t *testing.T) {
	golden, err := os.ReadFile(goldenCacheFixture)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	badsum, truncated := corruptFixtureBytes(t, golden)
	if *updateGolden {
		for file, data := range map[string][]byte{badsumFixture: badsum, truncatedFixture: truncated} {
			if err := os.WriteFile(file, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("rewrote corruption fixtures")
		return
	}
	for file, want := range map[string][]byte{badsumFixture: badsum, truncatedFixture: truncated} {
		got, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%v (run with -update-golden to generate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from its derivation off the golden fixture", file)
		}
	}
}

func TestReadCacheRejectsCorruptFixtures(t *testing.T) {
	g := goldenGraph(t)
	for _, tc := range []struct {
		file string
		want string
	}{
		{badsumFixture, "checksum mismatch"},
		{truncatedFixture, "truncated"},
	} {
		raw, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = ReadCache(bytes.NewReader(raw), g)
		if err == nil {
			t.Fatalf("%s loaded successfully, want %q error", tc.file, tc.want)
		}
		if errors.Is(err, ErrCacheVersion) {
			t.Fatalf("%s misreported corruption as version skew: %v", tc.file, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.file, err, tc.want)
		}
	}
}

// TestReadCacheNeverPanicsOnShortReads feeds ReadCache every prefix of
// the golden fixture (stepping a few bytes at a time to stay fast): all
// must fail cleanly — an error, never a panic or a success.
func TestReadCacheNeverPanicsOnShortReads(t *testing.T) {
	g := goldenGraph(t)
	raw, err := os.ReadFile(goldenCacheFixture)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut += 3 {
		if _, _, err := ReadCache(bytes.NewReader(raw[:cut]), g); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded successfully", cut, len(raw))
		}
	}
}

// loadOrBuildFallback plants a bad cache file at the key LoadOrBuild
// will consult and asserts it falls back to a clean rebuild: the
// returned DB matches a fresh build, the stats record the discard, and
// the poisoned file is replaced by a valid entry (the next load hits).
func loadOrBuildFallback(t *testing.T, fixture, wantErr string) {
	g := goldenGraph(t)
	fresh := goldenDB(t, g)
	key := goldenKey(g, fresh)
	dir := t.TempDir()

	bad, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, CacheFileName(key)), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	db, stats, err := LoadOrBuild(dir, g, fresh.Config(), fresh.Seed(), goldenPairs, 1)
	if err != nil {
		t.Fatalf("LoadOrBuild failed instead of rebuilding: %v", err)
	}
	if stats.Hit {
		t.Fatal("corrupt cache file reported as a hit")
	}
	if stats.LoadErr == nil || !strings.Contains(stats.LoadErr.Error(), wantErr) {
		t.Fatalf("LoadErr = %v, want mention of %q", stats.LoadErr, wantErr)
	}
	if !bytes.Equal(textBytes(t, db), textBytes(t, fresh)) {
		t.Fatal("rebuilt DB differs from a fresh build")
	}

	// The rebuild must have replaced the poisoned file with a valid one.
	db2, stats2, err := LoadOrBuild(dir, g, fresh.Config(), fresh.Seed(), goldenPairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Hit || stats2.LoadErr != nil {
		t.Fatalf("second load after rebuild: %+v, want a clean hit", stats2)
	}
	if !bytes.Equal(textBytes(t, db2), textBytes(t, fresh)) {
		t.Fatal("cache round trip after rebuild differs from a fresh build")
	}
}

func TestLoadOrBuildFallsBackOnChecksumMismatch(t *testing.T) {
	loadOrBuildFallback(t, badsumFixture, "checksum mismatch")
}

func TestLoadOrBuildFallsBackOnTruncation(t *testing.T) {
	loadOrBuildFallback(t, truncatedFixture, "truncated")
}
