package paths

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/xrand"
)

// fuzzGraph is the fixed small RRG every fuzz execution parses against.
// Built once: the fuzz engine calls the target millions of times.
var fuzzGraphOnce = sync.OnceValue(func() *graph.Graph {
	topo, err := jellyfish.New(jellyfish.Params{N: 12, X: 8, Y: 5}, xrand.New(3))
	if err != nil {
		panic(err)
	}
	return topo.G
})

// fuzzSeedDB is a small deterministic DB used to derive valid seed
// inputs for both fuzz targets.
func fuzzSeedDB() *DB {
	g := fuzzGraphOnce()
	return Build(g, ksp.Config{Alg: ksp.REDKSP, K: 3}, 17,
		[]Pair{{0, 1}, {0, 5}, {3, 7}, {11, 2}}, 1)
}

// FuzzPathsRead hammers the line-oriented archive reader: whatever the
// bytes, Read must either load a DB or return an error — never panic,
// and never allocate proportionally to a declared (rather than actual)
// size. A successfully loaded DB must survive a Write/Read round trip
// byte-identically.
func FuzzPathsRead(f *testing.F) {
	db := fuzzSeedDB()
	var valid bytes.Buffer
	if err := db.Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("PATHDB 1\nconfig rEDKSP 3 17\n"))
	f.Add([]byte("PATHDB 1\nconfig rEDKSP 3 17\npair 0 1 1\npath 0 1\n"))
	f.Add([]byte("PATHDB 1\nconfig rEDKSP 3 17\npair 0 1 2000000000\n"))
	f.Add([]byte("PATHDB 1\nconfig KSP 4 1\npair 0 1 1\npath -1 99999999999\n"))
	f.Add([]byte("PATHDB 2\nconfig KSP 4 1\n"))
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("NOPE\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraphOnce()
		got, err := Read(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := got.Write(&out); werr != nil {
			t.Fatalf("Write after successful Read failed: %v", werr)
		}
		again, rerr := Read(bytes.NewReader(out.Bytes()), g)
		if rerr != nil {
			t.Fatalf("re-Read of Write output failed: %v", rerr)
		}
		var out2 bytes.Buffer
		if werr := again.Write(&out2); werr != nil {
			t.Fatal(werr)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("Write/Read round trip is not a fixed point")
		}
	})
}

// FuzzCacheRead is FuzzPathsRead for the binary cache loader: corrupted,
// truncated, version-skewed and checksum-flipped inputs must all return
// errors without panicking or over-allocating, and accepted inputs must
// re-serialize byte-identically.
func FuzzCacheRead(f *testing.F) {
	db := fuzzSeedDB()
	g := fuzzGraphOnce()
	key := CacheKey(g, db.Config(), db.Seed(), []Pair{{0, 1}, {0, 5}, {3, 7}, {11, 2}})
	var valid bytes.Buffer
	if err := db.WriteCache(&valid, key); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	skew := bytes.Clone(valid.Bytes())
	skew[4] = 2 // version field
	f.Add(skew)
	sumFlip := bytes.Clone(valid.Bytes())
	sumFlip[len(sumFlip)-1] ^= 0x80
	f.Add(sumFlip)
	f.Add(valid.Bytes()[:20])
	f.Add([]byte("JFPC"))
	f.Add([]byte("not a cache at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraphOnce()
		got, gotKey, err := ReadCache(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := got.WriteCache(&out, gotKey); werr != nil {
			t.Fatalf("WriteCache after successful ReadCache failed: %v", werr)
		}
		again, againKey, rerr := ReadCache(bytes.NewReader(out.Bytes()), g)
		if rerr != nil {
			t.Fatalf("re-ReadCache of WriteCache output failed: %v", rerr)
		}
		if againKey != gotKey {
			t.Fatalf("key changed across round trip: %016x vs %016x", againKey, gotKey)
		}
		var out2 bytes.Buffer
		if werr := again.WriteCache(&out2, againKey); werr != nil {
			t.Fatal(werr)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("WriteCache/ReadCache round trip is not a fixed point")
		}
	})
}
