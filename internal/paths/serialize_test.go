package paths

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ksp"
)

func TestDBRoundTrip(t *testing.T) {
	g := testGraph(t)
	orig := BuildAllPairs(g, ksp.Config{Alg: ksp.REDKSP, K: 4}, 77, 4)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != orig.NumPairs() {
		t.Fatalf("pairs = %d, want %d", got.NumPairs(), orig.NumPairs())
	}
	if got.Config() != orig.Config() {
		t.Fatalf("config = %+v", got.Config())
	}
	for s := graph.NodeID(0); s < 24; s += 3 {
		for d := graph.NodeID(0); d < 24; d += 5 {
			if s == d {
				continue
			}
			a, b := orig.Paths(s, d), got.Paths(s, d)
			if len(a) != len(b) {
				t.Fatalf("%d->%d: %d vs %d paths", s, d, len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("%d->%d path %d: %v vs %v", s, d, i, a[i], b[i])
				}
			}
		}
	}
}

func TestDBWriteDeterministicAcrossWorkers(t *testing.T) {
	// Eager builds split work across goroutines; per-pair seed splitting
	// plus sorted emission must make the archive byte-identical no matter
	// the worker count. rEDKSP exercises the randomized selector.
	g := testGraph(t)
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		db := BuildAllPairs(g, ksp.Config{Alg: ksp.REDKSP, K: 4}, 42, workers)
		var buf bytes.Buffer
		if err := db.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: archive differs from workers=1 output", workers)
		}
	}
	// Two independent writes of the same DB must also match byte-for-byte
	// (map iteration order must not leak into the output).
	db := BuildAllPairs(g, ksp.Config{Alg: ksp.REDKSP, K: 4}, 42, 4)
	var a, b bytes.Buffer
	if err := db.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated Write of the same DB differs")
	}
}

func TestDBReadLazyConsistency(t *testing.T) {
	// A partially-populated archive must keep producing the same paths
	// lazily for pairs that were not archived.
	g := testGraph(t)
	partial := Build(g, ksp.Config{Alg: ksp.RKSP, K: 3}, 9,
		[]Pair{{0, 1}, {2, 3}}, 1)
	var buf bytes.Buffer
	if err := partial.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewDB(g, ksp.Config{Alg: ksp.RKSP, K: 3}, 9)
	// Unarchived pair computed lazily must match a fresh DB.
	a, b := loaded.Paths(5, 9), fresh.Paths(5, 9)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("lazy path %d differs after reload", i)
		}
	}
}

func TestDBReadRejectsGarbage(t *testing.T) {
	g := testGraph(t)
	cases := []string{
		"NOPE\n",
		"PATHDB 1\nconfig bogus 4 1\n",
		"PATHDB 1\nconfig rEDKSP 4 1\npath 0 1\n",               // path before pair
		"PATHDB 1\nconfig rEDKSP 4 1\npair 0 1 1\npath 0 99\n",  // invalid node
		"PATHDB 1\nconfig rEDKSP 4 1\npair 0 1 2\npath 0 1\n",   // count mismatch
		"PATHDB 1\nconfig rEDKSP 4 1\npair 0 1 1\npath 1 0\n",   // endpoints reversed
		"PATHDB 1\nconfig rEDKSP 4 1\npair 0 1 1\nfrobnicate\n", // unknown record
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in), g); err == nil {
			t.Errorf("case %d accepted garbage", i)
		}
	}
}

func TestDBWriteEmptyIsLoadable(t *testing.T) {
	g := testGraph(t)
	empty := NewDB(g, ksp.Config{Alg: ksp.KSP, K: 2}, 3)
	var buf bytes.Buffer
	if err := empty.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != 0 {
		t.Fatalf("pairs = %d", got.NumPairs())
	}
}
