package paths

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/xrand"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the committed path-archive fixtures under testdata/")

// goldenGraph and goldenDB pin the exact inputs the committed fixtures
// were generated from. Changing the selectors, the RRG construction or
// the serializers in a way that shifts bytes will fail the golden tests;
// regenerate deliberately with `go test -run Golden -update-golden` and
// bump the cache format version if the on-disk layout changed.
func goldenGraph(t *testing.T) *graph.Graph {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: 12, X: 8, Y: 5}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return topo.G
}

var goldenPairs = []Pair{{0, 1}, {0, 5}, {3, 7}, {11, 2}, {9, 4}}

func goldenDB(t *testing.T, g *graph.Graph) *DB {
	t.Helper()
	return Build(g, ksp.Config{Alg: ksp.REDKSP, K: 3}, 17, goldenPairs, 1)
}

const (
	goldenTextFixture  = "testdata/pathdb_v1.txt"
	goldenCacheFixture = "testdata/pathdb_v1.jfpc"
)

func goldenKey(g *graph.Graph, db *DB) uint64 {
	return CacheKey(g, db.Config(), db.Seed(), goldenPairs)
}

func TestGoldenFixturesUpToDate(t *testing.T) {
	g := goldenGraph(t)
	db := goldenDB(t, g)
	var text, bin bytes.Buffer
	if err := db.Write(&text); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCache(&bin, goldenKey(g, db)); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTextFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTextFixture, text.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCacheFixture, bin.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("rewrote golden fixtures")
		return
	}
	wantText, err := os.ReadFile(goldenTextFixture)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	if !bytes.Equal(text.Bytes(), wantText) {
		t.Error("text archive bytes drifted from the committed fixture")
	}
	wantBin, err := os.ReadFile(goldenCacheFixture)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	if !bytes.Equal(bin.Bytes(), wantBin) {
		t.Error("cache bytes drifted from the committed fixture")
	}
}

// TestGoldenTextFixtureLoads asserts this reader still loads archives
// written by the version that generated the committed fixture, and that
// the loaded DB reproduces the committed bytes exactly.
func TestGoldenTextFixtureLoads(t *testing.T) {
	g := goldenGraph(t)
	raw, err := os.ReadFile(goldenTextFixture)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Read(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatalf("committed text fixture no longer loads: %v", err)
	}
	var out bytes.Buffer
	if err := db.Write(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatal("loaded fixture does not re-serialize byte-identically")
	}
}

// TestGoldenCacheFixtureLoads is the cross-version contract for the
// binary cache: the committed v1 file must load (or, for a future
// incompatible reader, be rejected with ErrCacheVersion — never
// misparsed), reproduce the freshly built DB bit-identically, and agree
// with the recomputed cache key.
func TestGoldenCacheFixtureLoads(t *testing.T) {
	g := goldenGraph(t)
	raw, err := os.ReadFile(goldenCacheFixture)
	if err != nil {
		t.Fatal(err)
	}
	db, key, err := ReadCache(bytes.NewReader(raw), g)
	if err != nil {
		if errors.Is(err, ErrCacheVersion) {
			t.Skip("fixture is from an older format version; regenerate with -update-golden")
		}
		t.Fatalf("committed cache fixture no longer loads: %v", err)
	}
	fresh := goldenDB(t, g)
	if want := goldenKey(g, fresh); key != want {
		t.Fatalf("fixture key %016x, recomputed %016x", key, want)
	}
	if !bytes.Equal(textBytes(t, db), textBytes(t, fresh)) {
		t.Fatal("cache-loaded DB differs from a fresh build")
	}
	var out bytes.Buffer
	if err := db.WriteCache(&out, key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatal("cache hit does not re-serialize bit-identically")
	}
}

// TestGoldenCacheFixtureVersionSkew rewrites the fixture's version field
// and asserts the reader rejects it with the dedicated sentinel error —
// the behavior future format bumps rely on.
func TestGoldenCacheFixtureVersionSkew(t *testing.T) {
	g := goldenGraph(t)
	raw, err := os.ReadFile(goldenCacheFixture)
	if err != nil {
		t.Fatal(err)
	}
	skew := bytes.Clone(raw)
	skew[4]++ // little-endian version word follows the magic
	if _, _, err := ReadCache(bytes.NewReader(skew), g); !errors.Is(err, ErrCacheVersion) {
		t.Fatalf("version-skewed fixture: err = %v, want ErrCacheVersion", err)
	}
}
