package paths

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// store is the CSR-style packed representation of a bulk of path sets:
// every node of every path lives in one flat arena, each path is a view
// (sub-slice) into that arena, and each pair owns a contiguous run of
// those views. Compared with the map-of-slices representation this
// replaces one heap allocation per path (plus one slice per pair) with
// four large allocations for the whole bulk, which is what lets the
// all-pairs databases of the medium and large topologies fit in memory.
//
// A store is immutable after construction and therefore safe to read from
// any number of goroutines without locking. Pairs are kept in ascending
// pairKey order, so iterating the store yields the same order Write
// emits.
type store struct {
	// keys holds the pair keys (pairKey(src, dst)) in strictly ascending
	// order.
	keys []uint64
	// pairOff indexes heads: pair i's paths are
	// heads[pairOff[i]:pairOff[i+1]]. len(pairOff) == len(keys)+1.
	pairOff []int32
	// heads holds one path header per path, all pointing into arena.
	heads []graph.Path
	// arena is the flat node storage for every path.
	arena []graph.NodeID
	// index maps a pair key to its position in keys for O(1) lookup on
	// the routing hot path.
	index map[uint64]int32
	// fallbacks is the number of pairs that needed the edge-disjoint
	// top-up fallback during the build that produced this store.
	fallbacks int
}

// paths returns the pair's packed path set and whether the pair is
// present. The returned slice and its paths are views into the store and
// must not be modified.
func (st *store) paths(key uint64) ([]graph.Path, bool) {
	i, ok := st.index[key]
	if !ok {
		return nil, false
	}
	return st.heads[st.pairOff[i]:st.pairOff[i+1]], true
}

// numPairs returns the number of pairs in the store.
func (st *store) numPairs() int {
	if st == nil {
		return 0
	}
	return len(st.keys)
}

// StoreStats reports the memory footprint of a DB's packed store.
type StoreStats struct {
	// Pairs, Paths and Nodes count the packed entities.
	Pairs, Paths, Nodes int
	// ArenaBytes, HeadBytes, IndexBytes and OffsetBytes break down the
	// resident size; TotalBytes is their sum.
	ArenaBytes, HeadBytes, IndexBytes, OffsetBytes, TotalBytes int64
}

// StoreStats returns the packed store's footprint and whether the DB has
// a packed store at all (lazy-only DBs do not).
func (db *DB) StoreStats() (StoreStats, bool) {
	st := db.st
	if st == nil {
		return StoreStats{}, false
	}
	s := StoreStats{
		Pairs: len(st.keys),
		Paths: len(st.heads),
		Nodes: len(st.arena),
	}
	const (
		nodeBytes   = 4  // graph.NodeID = int32
		headerBytes = 24 // slice header
		// Go map overhead per entry is roughly 2x the key+value payload
		// once bucket metadata and load factor are accounted for.
		indexEntryBytes = 2 * (8 + 4)
	)
	s.ArenaBytes = int64(len(st.arena)) * nodeBytes
	s.HeadBytes = int64(len(st.heads)) * headerBytes
	s.OffsetBytes = int64(len(st.keys))*8 + int64(len(st.pairOff))*4
	s.IndexBytes = int64(len(st.index)) * indexEntryBytes
	s.TotalBytes = s.ArenaBytes + s.HeadBytes + s.OffsetBytes + s.IndexBytes
	return s, true
}

// pack builds a store from per-pair results. keys[i] is the pair key of
// results[i]; entries need not be sorted but must be unique. The node
// copy — the bulk of the work on an all-pairs build — is sharded across
// workers; the output is independent of the worker count.
func pack(keys []uint64, results [][]graph.Path, fallbacks, workers int) *store {
	if len(keys) != len(results) {
		panic("paths: pack keys/results length mismatch")
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	st := &store{
		keys:      make([]uint64, len(keys)),
		pairOff:   make([]int32, len(keys)+1),
		index:     make(map[uint64]int32, len(keys)),
		fallbacks: fallbacks,
	}
	numPaths := 0
	numNodes := 0
	for i, oi := range order {
		ps := results[oi]
		st.keys[i] = keys[oi]
		st.index[keys[oi]] = int32(i)
		st.pairOff[i] = int32(numPaths)
		numPaths += len(ps)
		for _, p := range ps {
			numNodes += len(p)
		}
	}
	st.pairOff[len(keys)] = int32(numPaths)
	st.heads = make([]graph.Path, numPaths)
	st.arena = make([]graph.NodeID, numNodes)

	// Per-pair arena offsets, then a sharded copy: each worker owns a
	// contiguous range of pairs and writes disjoint arena regions.
	nodeOff := make([]int, len(keys)+1)
	for i, oi := range order {
		n := 0
		for _, p := range results[oi] {
			n += len(p)
		}
		nodeOff[i+1] = nodeOff[i] + n
	}
	par.ForShards(len(keys), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off := nodeOff[i]
			first := int(st.pairOff[i])
			for pi, p := range results[order[i]] {
				copy(st.arena[off:], p)
				st.heads[first+pi] = st.arena[off : off+len(p) : off+len(p)]
				off += len(p)
			}
		}
	})
	return st
}
