// Package paths stores and analyzes the multi-path sets computed by the
// ksp selectors. It provides:
//
//   - DB, a concurrency-safe store of the k paths per ordered switch pair,
//     filled eagerly in parallel (all pairs or a sampled subset) or lazily
//     on first use, with per-pair deterministic randomness so results are
//     independent of worker scheduling;
//   - Quality, the path-quality metrics behind the paper's Tables II-IV:
//     average path length, the percentage of switch pairs whose k paths
//     share no link, and the maximum number of one pair's paths that share
//     a single link.
package paths

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/ksp"
	"repro/internal/par"
	"repro/internal/xrand"
)

// Pair is an ordered (source switch, destination switch) pair.
type Pair struct {
	Src, Dst graph.NodeID
}

func pairKey(s, d graph.NodeID) uint64 {
	return uint64(uint32(s))<<32 | uint64(uint32(d))
}

// DB holds the computed path sets for one graph, one selector config and
// one seed. Eagerly built (or cache-loaded) pairs live in an immutable
// CSR-packed store — one flat node arena plus per-pair offsets — and are
// read without any locking; missing pairs are computed lazily under a
// lock, yielding exactly the same paths an eager build would have
// produced (per-pair reseeding).
type DB struct {
	g    *graph.Graph
	cfg  ksp.Config
	seed uint64

	// st is the packed bulk from Build/LoadOrBuild/Read; nil for a
	// purely lazy DB. Immutable once set, so reads skip the mutex.
	st *store

	mu        sync.RWMutex
	m         map[uint64][]graph.Path // lazy fills on top of st
	computers sync.Pool
	fallbacks int // fallbacks from lazy fills; st keeps the build's own
}

// NewDB creates an empty DB for lazy use.
func NewDB(g *graph.Graph, cfg ksp.Config, seed uint64) *DB {
	db := &DB{
		g:    g,
		cfg:  cfg,
		seed: seed,
		m:    make(map[uint64][]graph.Path),
	}
	db.computers.New = func() any {
		return ksp.NewComputer(g, cfg, xrand.New(seed))
	}
	return db
}

// Build eagerly computes the path sets for the given pairs in parallel
// (workers <= 0 selects the default pool) and packs them into the DB's
// CSR store. Duplicate pairs are computed once.
func Build(g *graph.Graph, cfg ksp.Config, seed uint64, pairs []Pair, workers int) *DB {
	db := NewDB(g, cfg, seed)
	keys := make([]uint64, 0, len(pairs))
	seen := make(map[uint64]struct{}, len(pairs))
	for _, p := range pairs {
		k := pairKey(p.Src, p.Dst)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	results := make([][]graph.Path, len(keys))
	fallbacks := 0
	par.MapReduce(len(keys), workers,
		func() *ksp.Computer { return ksp.NewComputer(g, cfg, xrand.New(seed)) },
		func(i int, c *ksp.Computer) {
			results[i] = db.computeWith(c, graph.NodeID(keys[i]>>32), graph.NodeID(uint32(keys[i])))
		},
		func(c *ksp.Computer) { fallbacks += c.Fallbacks() })
	db.st = pack(keys, results, fallbacks, workers)
	return db
}

// BuildAllPairs eagerly computes path sets for every ordered switch pair.
func BuildAllPairs(g *graph.Graph, cfg ksp.Config, seed uint64, workers int) *DB {
	return Build(g, cfg, seed, AllOrderedPairs(g.NumNodes()), workers)
}

// computeWith computes the pair's path set with per-pair deterministic
// randomness: the computer's RNG is reseeded from (db.seed, src, dst), so
// the result does not depend on which worker or call order produced it.
//
// This is the DB's seed-splitting scheme. The base seed is not consumed
// sequentially — doing so would make each pair's paths depend on how the
// preceding pairs were scheduled across workers. Instead every pair gets
// its own PCG stream keyed (db.seed, pairKey(src, dst)): the 64-bit pair
// key (src in the high word, dst in the low) is the second seed word, and
// the PCG initializer mixes both words, so streams for different pairs are
// statistically independent. Build with workers=1, workers=N, lazy Paths
// calls in any order, and fault-time repair on a filtered graph all
// reproduce the identical path set for a pair.
func (db *DB) computeWith(c *ksp.Computer, src, dst graph.NodeID) []graph.Path {
	c.Reseed(db.seed, pairKey(src, dst))
	return c.Paths(src, dst)
}

// Graph returns the graph the DB routes on.
func (db *DB) Graph() *graph.Graph { return db.g }

// Config returns the selector configuration.
func (db *DB) Config() ksp.Config { return db.cfg }

// Seed returns the DB's base seed. Together with Config and Graph it is
// everything needed to recompute any pair's set identically — the fault
// machinery uses it to repair path sets on a failed-edge-filtered graph
// (see internal/faults.RepairConfig).
func (db *DB) Seed() uint64 { return db.seed }

// K returns the configured number of paths per pair.
func (db *DB) K() int { return db.cfg.K }

// NumPairs returns how many pairs are currently stored.
func (db *DB) NumPairs() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.st.numPairs() + len(db.m)
}

// Fallbacks returns the number of pairs that needed the edge-disjoint
// top-up fallback so far (the packed build's count plus lazy fills).
func (db *DB) Fallbacks() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := db.fallbacks
	if db.st != nil {
		total += db.st.fallbacks
	}
	return total
}

// Paths returns the path set for (src, dst), computing it on first use.
// The returned slice is shared and must not be modified. Self pairs return
// nil.
func (db *DB) Paths(src, dst graph.NodeID) []graph.Path {
	if src == dst {
		return nil
	}
	key := pairKey(src, dst)
	// Packed bulk first: immutable, so no lock is needed — this is the
	// routing hot path when an eager or cache-loaded DB is in play.
	if db.st != nil {
		if ps, ok := db.st.paths(key); ok {
			return ps
		}
	}
	db.mu.RLock()
	ps, ok := db.m[key]
	db.mu.RUnlock()
	if ok {
		return ps
	}
	c := db.computers.Get().(*ksp.Computer)
	before := c.Fallbacks()
	ps = db.computeWith(c, src, dst)
	extra := c.Fallbacks() - before
	db.computers.Put(c)

	db.mu.Lock()
	if prev, ok := db.m[key]; ok {
		ps = prev // another goroutine won the race; results are identical anyway
	} else {
		db.m[key] = ps
		db.fallbacks += extra
	}
	db.mu.Unlock()
	return ps
}

// Typed lookup errors. Paths deliberately keeps its historical contract —
// lazy computation for missing pairs, nil for self pairs — because the
// simulators and the throughput model rely on it (an empty set there
// means "same switch" or "drop", both deliberate). Callers that must
// distinguish those cases — above all the jfserve daemon, which turns
// each of them into a distinct protocol error code — use Lookup instead.
var (
	// ErrSelfPair marks a lookup of a (s, s) pair, which has no network
	// path by definition.
	ErrSelfPair = errors.New("paths: self pair has no network path")
	// ErrOutOfRange marks a switch id outside the DB's graph.
	ErrOutOfRange = errors.New("paths: switch id out of range")
	// ErrNotStored marks a pair absent from the DB's stored sets (packed
	// store and lazy fills). Lookup never computes; use Paths to fill
	// lazily.
	ErrNotStored = errors.New("paths: pair not stored")
	// ErrNoPath marks a pair that is stored but whose path set is empty
	// (the selector found no route — only possible on disconnected
	// graphs).
	ErrNoPath = errors.New("paths: pair has no path")
)

// Lookup returns the stored path set for (src, dst) without computing
// anything: unlike Paths it never falls back to a lazy ksp run, and it
// reports *why* a lookup fails through typed errors (ErrSelfPair,
// ErrOutOfRange, ErrNotStored, ErrNoPath) instead of returning an
// empty or zero-value path set. The returned slice is shared and must
// not be modified.
func (db *DB) Lookup(src, dst graph.NodeID) ([]graph.Path, error) {
	n := graph.NodeID(db.g.NumNodes())
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("%w: pair %d->%d on %d switches", ErrOutOfRange, src, dst, n)
	}
	if src == dst {
		return nil, fmt.Errorf("%w: %d->%d", ErrSelfPair, src, dst)
	}
	key := pairKey(src, dst)
	ps, ok := func() ([]graph.Path, bool) {
		if db.st != nil {
			if ps, ok := db.st.paths(key); ok {
				return ps, true
			}
		}
		db.mu.RLock()
		defer db.mu.RUnlock()
		ps, ok := db.m[key]
		return ps, ok
	}()
	if !ok {
		return nil, fmt.Errorf("%w: pair %d->%d", ErrNotStored, src, dst)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("%w: pair %d->%d", ErrNoPath, src, dst)
	}
	return ps, nil
}

// AllOrderedPairs enumerates every (s, d) with s != d over n switches.
func AllOrderedPairs(n int) []Pair {
	out := make([]Pair, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				out = append(out, Pair{graph.NodeID(s), graph.NodeID(d)})
			}
		}
	}
	return out
}

// SamplePairs draws count distinct ordered pairs (s != d) uniformly at
// random. If count exceeds the number of distinct pairs it returns all of
// them.
func SamplePairs(n, count int, rng *xrand.RNG) []Pair {
	total := n * (n - 1)
	if count >= total {
		return AllOrderedPairs(n)
	}
	idx := rng.SampleK(total, count)
	out := make([]Pair, len(idx))
	for i, v := range idx {
		s := v / (n - 1)
		d := v % (n - 1)
		if d >= s {
			d++
		}
		out[i] = Pair{graph.NodeID(s), graph.NodeID(d)}
	}
	return out
}

// Quality aggregates the path-quality metrics of Tables II, III and IV.
type Quality struct {
	// Pairs is the number of (connected) pairs analyzed.
	Pairs int
	// AvgLen is the mean hop count over every path of every pair
	// (Table II).
	AvgLen float64
	// DisjointFraction is the fraction of pairs whose paths share no
	// undirected link (Table III).
	DisjointFraction float64
	// MaxShare is the maximum, over pairs, of the number of one pair's
	// paths that traverse a single undirected link (Table IV). 1 means
	// fully disjoint.
	MaxShare int
	// AvgPaths is the mean number of paths per pair (== k unless the
	// selector ran out of paths).
	AvgPaths float64
	// Fallbacks counts pairs that used the edge-disjoint top-up fallback.
	Fallbacks int
}

// Analyze computes path sets for the given pairs under cfg and aggregates
// their quality metrics, in parallel.
func Analyze(g *graph.Graph, cfg ksp.Config, seed uint64, pairs []Pair, workers int) Quality {
	type acc struct {
		c         *ksp.Computer
		scratch   map[uint64]int
		pathCount int64
		hopCount  int64
		pairs     int
		disjoint  int
		maxShare  int
	}
	var q Quality
	var totHops, totPaths int64
	par.MapReduce(len(pairs), workers,
		func() *acc {
			return &acc{
				c:       ksp.NewComputer(g, cfg, xrand.New(seed)),
				scratch: make(map[uint64]int, 64),
			}
		},
		func(i int, a *acc) {
			p := pairs[i]
			a.c.Reseed(seed, pairKey(p.Src, p.Dst))
			ps := a.c.Paths(p.Src, p.Dst)
			if len(ps) == 0 {
				return
			}
			a.pairs++
			share := pairMaxShare(ps, a.scratch)
			if share <= 1 {
				a.disjoint++
			}
			if share > a.maxShare {
				a.maxShare = share
			}
			for _, path := range ps {
				a.pathCount++
				a.hopCount += int64(path.Hops())
			}
		},
		func(a *acc) {
			q.Pairs += a.pairs
			q.Fallbacks += a.c.Fallbacks()
			totHops += a.hopCount
			totPaths += a.pathCount
			q.DisjointFraction += float64(a.disjoint) // running count, normalized below
			if a.maxShare > q.MaxShare {
				q.MaxShare = a.maxShare
			}
		})
	if totPaths > 0 {
		q.AvgLen = float64(totHops) / float64(totPaths)
	}
	if q.Pairs > 0 {
		q.DisjointFraction /= float64(q.Pairs)
		q.AvgPaths = float64(totPaths) / float64(q.Pairs)
	}
	return q
}

// AnalyzeDB aggregates the same quality metrics as Analyze from an
// existing DB — typically one loaded from the on-disk cache via
// LoadOrBuild — so the path-property tables can reuse a stored all-pairs
// computation instead of re-running the selectors. Pairs absent from the
// DB are computed lazily (and count toward the metrics exactly as in
// Analyze, thanks to per-pair reseeding). Fallbacks reports the DB's own
// build-time accounting.
func AnalyzeDB(db *DB, pairs []Pair, workers int) Quality {
	type acc struct {
		scratch   map[uint64]int
		pathCount int64
		hopCount  int64
		pairs     int
		disjoint  int
		maxShare  int
	}
	var q Quality
	var totHops, totPaths int64
	par.MapReduce(len(pairs), workers,
		func() *acc {
			return &acc{scratch: make(map[uint64]int, 64)}
		},
		func(i int, a *acc) {
			p := pairs[i]
			ps := db.Paths(p.Src, p.Dst)
			if len(ps) == 0 {
				return
			}
			a.pairs++
			share := pairMaxShare(ps, a.scratch)
			if share <= 1 {
				a.disjoint++
			}
			if share > a.maxShare {
				a.maxShare = share
			}
			for _, path := range ps {
				a.pathCount++
				a.hopCount += int64(path.Hops())
			}
		},
		func(a *acc) {
			q.Pairs += a.pairs
			totHops += a.hopCount
			totPaths += a.pathCount
			q.DisjointFraction += float64(a.disjoint) // running count, normalized below
			if a.maxShare > q.MaxShare {
				q.MaxShare = a.maxShare
			}
		})
	q.Fallbacks = db.Fallbacks()
	if totPaths > 0 {
		q.AvgLen = float64(totHops) / float64(totPaths)
	}
	if q.Pairs > 0 {
		q.DisjointFraction /= float64(q.Pairs)
		q.AvgPaths = float64(totPaths) / float64(q.Pairs)
	}
	return q
}

// MaxShare returns the maximum number of the given paths that traverse
// any single undirected link (1 = fully link-disjoint, 0 for an empty
// set) — the per-pair quantity behind Table IV, exposed for callers
// that analyze one pair at a time (e.g. jfserve's estimate endpoint).
func MaxShare(ps []graph.Path) int {
	return pairMaxShare(ps, make(map[uint64]int, 64))
}

// pairMaxShare returns the maximum number of the pair's paths that use any
// single undirected link. scratch is reused across calls.
func pairMaxShare(ps []graph.Path, scratch map[uint64]int) int {
	clear(scratch)
	maxShare := 0
	for _, p := range ps {
		for i := 0; i+1 < len(p); i++ {
			k := graph.UndirectedEdgeKey(p[i], p[i+1])
			scratch[k]++
			if scratch[k] > maxShare {
				maxShare = scratch[k]
			}
		}
	}
	return maxShare
}
