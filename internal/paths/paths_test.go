package paths

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/xrand"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: 24, X: 12, Y: 8}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return topo.G
}

func TestAllOrderedPairs(t *testing.T) {
	pairs := AllOrderedPairs(4)
	if len(pairs) != 12 {
		t.Fatalf("len = %d, want 12", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatalf("self pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestSamplePairs(t *testing.T) {
	rng := xrand.New(1)
	pairs := SamplePairs(10, 30, rng)
	if len(pairs) != 30 {
		t.Fatalf("len = %d", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.Src == p.Dst || p.Src < 0 || p.Src >= 10 || p.Dst < 0 || p.Dst >= 10 {
			t.Fatalf("bad pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	// Requesting at least the full population returns all pairs.
	if got := SamplePairs(5, 100, rng); len(got) != 20 {
		t.Fatalf("oversample returned %d pairs, want 20", len(got))
	}
}

func TestBuildAndLookup(t *testing.T) {
	g := testGraph(t)
	db := BuildAllPairs(g, ksp.Config{Alg: ksp.KSP, K: 4}, 7, 4)
	if db.NumPairs() != 24*23 {
		t.Fatalf("NumPairs = %d", db.NumPairs())
	}
	ps := db.Paths(0, 5)
	if len(ps) != 4 {
		t.Fatalf("got %d paths", len(ps))
	}
	for _, p := range ps {
		if p.Src() != 0 || p.Dst() != 5 || !p.ValidIn(g) {
			t.Fatalf("bad path %v", p)
		}
	}
	if db.Paths(3, 3) != nil {
		t.Fatal("self pair should be nil")
	}
}

func TestLazyEqualsEager(t *testing.T) {
	// Lazily computed paths must be identical to an eager build: the
	// per-pair reseeding makes results schedule-independent.
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 4}
	eager := BuildAllPairs(g, cfg, 99, 4)
	lazy := NewDB(g, cfg, 99)
	for s := graph.NodeID(0); s < 24; s += 3 {
		for d := graph.NodeID(0); d < 24; d += 5 {
			if s == d {
				continue
			}
			a, b := eager.Paths(s, d), lazy.Paths(s, d)
			if len(a) != len(b) {
				t.Fatalf("%d->%d: count %d vs %d", s, d, len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("%d->%d path %d: %v vs %v", s, d, i, a[i], b[i])
				}
			}
		}
	}
}

func TestConcurrentLazyAccess(t *testing.T) {
	g := testGraph(t)
	db := NewDB(g, ksp.Config{Alg: ksp.RKSP, K: 3}, 5)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := graph.NodeID(0); s < 24; s++ {
				for d := graph.NodeID(0); d < 24; d++ {
					if s == d {
						continue
					}
					ps := db.Paths(s, d)
					if len(ps) == 0 {
						errs <- "empty path set"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if db.NumPairs() != 24*23 {
		t.Fatalf("NumPairs = %d", db.NumPairs())
	}
}

func TestAnalyzeEdgeDisjointIs100Percent(t *testing.T) {
	// Table III property: EDKSP and rEDKSP give 100% disjoint pairs and
	// MaxShare 1 when k <= y.
	g := testGraph(t)
	pairs := AllOrderedPairs(24)
	for _, alg := range []ksp.Algorithm{ksp.EDKSP, ksp.REDKSP} {
		q := Analyze(g, ksp.Config{Alg: alg, K: 4}, 13, pairs, 4)
		if q.Pairs != len(pairs) {
			t.Fatalf("%v: pairs = %d", alg, q.Pairs)
		}
		if q.DisjointFraction != 1 {
			t.Fatalf("%v: disjoint fraction = %v, want 1", alg, q.DisjointFraction)
		}
		if q.MaxShare != 1 {
			t.Fatalf("%v: max share = %d, want 1", alg, q.MaxShare)
		}
		if q.Fallbacks != 0 {
			t.Fatalf("%v: fallbacks = %d", alg, q.Fallbacks)
		}
		if q.AvgPaths != 4 {
			t.Fatalf("%v: avg paths = %v", alg, q.AvgPaths)
		}
	}
}

func TestAnalyzeKSPSharesLinks(t *testing.T) {
	// Table III/IV property: vanilla KSP has a low disjoint fraction and a
	// MaxShare well above 1 on Jellyfish.
	g := testGraph(t)
	pairs := AllOrderedPairs(24)
	q := Analyze(g, ksp.Config{Alg: ksp.KSP, K: 4}, 13, pairs, 4)
	if q.DisjointFraction > 0.9 {
		t.Fatalf("vanilla KSP disjoint fraction suspiciously high: %v", q.DisjointFraction)
	}
	if q.MaxShare < 2 {
		t.Fatalf("vanilla KSP max share = %d, expected sharing", q.MaxShare)
	}
	if q.AvgLen <= 1 {
		t.Fatalf("avg len = %v", q.AvgLen)
	}
}

func TestAnalyzeAvgLenOrdering(t *testing.T) {
	// Edge-disjoint paths can be longer but never shorter on average than
	// the k shortest paths.
	g := testGraph(t)
	pairs := AllOrderedPairs(24)
	ksp8 := Analyze(g, ksp.Config{Alg: ksp.KSP, K: 4}, 13, pairs, 4)
	ed8 := Analyze(g, ksp.Config{Alg: ksp.EDKSP, K: 4}, 13, pairs, 4)
	if ed8.AvgLen+1e-9 < ksp8.AvgLen {
		t.Fatalf("EDKSP avg len %v < KSP avg len %v", ed8.AvgLen, ksp8.AvgLen)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	g := testGraph(t)
	pairs := AllOrderedPairs(24)
	a := Analyze(g, ksp.Config{Alg: ksp.REDKSP, K: 4}, 21, pairs, 4)
	b := Analyze(g, ksp.Config{Alg: ksp.REDKSP, K: 4}, 21, pairs, 2)
	if a != b {
		t.Fatalf("Analyze not deterministic across worker counts:\n%+v\n%+v", a, b)
	}
}

func TestPairMaxShare(t *testing.T) {
	ps := []graph.Path{
		{0, 1, 2},
		{0, 1, 3},
		{0, 1, 4},
		{5, 6},
	}
	if got := pairMaxShare(ps, map[uint64]int{}); got != 3 {
		t.Fatalf("maxShare = %d, want 3", got)
	}
	disjoint := []graph.Path{{0, 1}, {2, 3}}
	if got := pairMaxShare(disjoint, map[uint64]int{}); got != 1 {
		t.Fatalf("maxShare = %d, want 1", got)
	}
}

func TestFallbackCounting(t *testing.T) {
	// Graph with only 2 disjoint paths but K=3 forces the fallback.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Graph()
	db := Build(g, ksp.Config{Alg: ksp.EDKSP, K: 3}, 1, []Pair{{0, 2}}, 1)
	if db.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", db.Fallbacks())
	}
}
