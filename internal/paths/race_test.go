package paths

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/ksp"
)

// TestLazyFillRaceIdenticalPathSets is the regression test for the
// lazy-fill race in DB.Paths: when several goroutines miss on the same
// cold pair simultaneously, each computes the set privately and exactly
// one install wins ("another goroutine won the race" branch). Run under
// -race via `make check`. Every racer must observe a path set identical
// to the eager build — the per-pair reseeding is what makes the losing
// computations interchangeable with the winning one.
func TestLazyFillRaceIdenticalPathSets(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 3}
	const seed = 31
	want := BuildAllPairs(g, cfg, seed, 2)

	// A focused pair list keeps every goroutine colliding on the same
	// cold keys instead of spreading out.
	var pairs []Pair
	for s := graph.NodeID(0); s < 8; s++ {
		for d := graph.NodeID(0); d < 8; d++ {
			if s != d {
				pairs = append(pairs, Pair{s, d})
			}
		}
	}

	cold := NewDB(g, cfg, seed)
	const racers = 16
	results := make([][][]graph.Path, racers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(racers)
	for r := 0; r < racers; r++ {
		go func() {
			defer done.Done()
			start.Wait() // maximize simultaneous cold misses
			out := make([][]graph.Path, len(pairs))
			for i, pr := range pairs {
				out[i] = cold.Paths(pr.Src, pr.Dst)
			}
			results[r] = out
		}()
	}
	start.Done()
	done.Wait()

	for r, out := range results {
		for i, pr := range pairs {
			ref := want.Paths(pr.Src, pr.Dst)
			got := out[i]
			if len(got) != len(ref) {
				t.Fatalf("racer %d pair %d->%d: %d paths, want %d",
					r, pr.Src, pr.Dst, len(got), len(ref))
			}
			for pi := range ref {
				if !got[pi].Equal(ref[pi]) {
					t.Fatalf("racer %d pair %d->%d path %d: %v, want %v",
						r, pr.Src, pr.Dst, pi, got[pi], ref[pi])
				}
			}
		}
	}
	// Fallback accounting must not double-count racing losers.
	if cold.Fallbacks() > want.Fallbacks() {
		t.Fatalf("lazy fallbacks %d exceed eager %d", cold.Fallbacks(), want.Fallbacks())
	}
}

// TestConcurrentReadsOnCacheLoadedDB races lock-free packed-store reads
// with lazy fills of uncached pairs on one DB, the access mix flitsim
// workers produce when fed a cache-loaded DB. Run under -race.
func TestConcurrentReadsOnCacheLoadedDB(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.RKSP, K: 3}
	packed := Build(g, cfg, 5, AllOrderedPairs(12), 2) // switches 0..11 packed
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := graph.NodeID(0); s < 24; s++ {
				for d := graph.NodeID(0); d < 24; d++ {
					if s == d {
						continue
					}
					if ps := packed.Paths(s, d); len(ps) == 0 {
						t.Error("empty path set")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if packed.NumPairs() != 24*23 {
		t.Fatalf("NumPairs = %d", packed.NumPairs())
	}
}
