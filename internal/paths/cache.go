package paths

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/ksp"
	"repro/internal/par"
)

// The on-disk path-cache format, version 1 (see docs/PATHS.md). All
// integers are little-endian:
//
//	magic    "JFPC"
//	version  uint32 (= 1)
//	key      uint64  cache key (CacheKey of config+seed+topology+pairs)
//	alg      uint8 length + bytes (selector name, ksp.ByName form)
//	k        uint32
//	spread   uint32  LLSKR spread (0 unless alg is LLSKR)
//	min      uint32  LLSKR minimum paths (0 unless alg is LLSKR)
//	flags    uint8   bit 0: DisableEDFallback
//	seed     uint64
//	fallback uint64  pairs that used the edge-disjoint top-up fallback
//	numPairs uint64
//	numPaths uint64
//	arenaLen uint64  total node count over all paths
//	pairs    numPairs × (src uint32, dst uint32, npaths uint32),
//	         strictly ascending (src, dst)
//	lens     numPaths × uint32 (nodes per path, pair-major order)
//	arena    arenaLen × uint32 (node ids, concatenated paths)
//	checksum uint64  FNV-1a 64 over every preceding byte
//
// Writes are sorted and single-streamed, so the bytes are identical no
// matter how many workers built the DB. Loads stream through bufio with
// allocation growth tied to the bytes actually read, so a truncated or
// hostile header cannot cause a large allocation, and every path is
// re-validated against the graph before the DB is returned.
const (
	cacheMagic   = "JFPC"
	cacheVersion = 1

	// maxAlgNameLen bounds the selector-name field.
	maxAlgNameLen = 64
	// growChunk caps how far ahead of the consumed input the loader's
	// slices may be grown.
	growChunk = 1 << 16
)

// hashWriter tees every written byte into an FNV-1a 64 running checksum.
type hashWriter struct {
	w io.Writer
	h hash.Hash64
}

func (hw *hashWriter) Write(p []byte) (int, error) {
	hw.h.Write(p)
	return hw.w.Write(p)
}

// leWriter encodes little-endian integers through a scratch buffer.
type leWriter struct {
	w   io.Writer
	buf [8]byte
	err error
}

func (e *leWriter) u8(v uint8) {
	if e.err != nil {
		return
	}
	e.buf[0] = v
	_, e.err = e.w.Write(e.buf[:1])
}

func (e *leWriter) u32(v uint32) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	_, e.err = e.w.Write(e.buf[:4])
}

func (e *leWriter) u64(v uint64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *leWriter) bytes(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

// leReader decodes little-endian integers, teeing every consumed byte
// into the running checksum until hashing is stopped for the footer.
type leReader struct {
	r       *bufio.Reader
	h       hash.Hash64
	hashing bool
	buf     [8]byte
	err     error
}

func (d *leReader) read(n int) []byte {
	if d.err != nil {
		return nil
	}
	if _, err := io.ReadFull(d.r, d.buf[:n]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("paths: cache truncated")
		}
		d.err = err
		return nil
	}
	if d.hashing {
		d.h.Write(d.buf[:n])
	}
	return d.buf[:n]
}

func (d *leReader) u8() uint8 {
	b := d.read(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *leReader) u32() uint32 {
	b := d.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *leReader) u64() uint64 {
	b := d.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *leReader) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(d.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("paths: cache truncated")
		}
		d.err = err
		return nil
	}
	if d.hashing {
		d.h.Write(p)
	}
	return p
}

// CacheKey derives the 64-bit key identifying one cached database: the
// cache format version, the selector configuration in canonical form,
// the build seed, the exact topology (graph fingerprint) and the exact
// pair set (sorted, deduplicated). Any change to any input yields a new
// key, which is the cache's only invalidation rule — stale entries are
// simply never looked up again.
func CacheKey(g *graph.Graph, cfg ksp.Config, seed uint64, pairs []Pair) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "jf-pathdb-v%d|%s|seed=%d|graph=%016x|pairs=",
		cacheVersion, cfg.Canonical(), seed, g.Fingerprint())
	keys := make([]uint64, 0, len(pairs))
	for _, p := range pairs {
		keys = append(keys, pairKey(p.Src, p.Dst))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// CacheFileName returns the file name a cached database is stored under
// inside a cache directory. The format version is part of the name, so a
// reader never even opens an incompatible file.
func CacheFileName(key uint64) string {
	return fmt.Sprintf("pathdb-v%d-%016x.jfpc", cacheVersion, key)
}

// WriteCache serializes the DB's stored path sets in the binary cache
// format under the given cache key. Pairs are emitted in ascending
// (src, dst) order and the stream is checksummed, so output bytes are
// identical for any two DBs holding the same path sets — eager builds at
// any worker count, lazy fills in any order, or a prior cache load.
func (db *DB) WriteCache(w io.Writer, key uint64) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	var numPairs, numPaths, arenaLen uint64
	countErr := db.forEachSortedLocked(func(_ uint64, ps []graph.Path) error {
		numPairs++
		numPaths += uint64(len(ps))
		for _, p := range ps {
			arenaLen += uint64(len(p))
		}
		return nil
	})
	if countErr != nil {
		return countErr
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	hw := &hashWriter{w: bw, h: fnv.New64a()}
	e := &leWriter{w: hw}

	e.bytes([]byte(cacheMagic))
	e.u32(cacheVersion)
	e.u64(key)
	alg := db.cfg.Alg.String()
	e.u8(uint8(len(alg)))
	e.bytes([]byte(alg))
	e.u32(uint32(db.cfg.K))
	spread, minPaths := uint32(0), uint32(0)
	if db.cfg.Alg == ksp.LLSKR {
		spread, minPaths = uint32(db.cfg.LLSKRSpread), uint32(db.cfg.LLSKRMin)
	}
	e.u32(spread)
	e.u32(minPaths)
	var flags uint8
	if db.cfg.DisableEDFallback {
		flags |= 1
	}
	e.u8(flags)
	e.u64(db.seed)
	fallbacks := uint64(db.fallbacks)
	if db.st != nil {
		fallbacks += uint64(db.st.fallbacks)
	}
	e.u64(fallbacks)
	e.u64(numPairs)
	e.u64(numPaths)
	e.u64(arenaLen)

	err := db.forEachSortedLocked(func(k uint64, ps []graph.Path) error {
		e.u32(uint32(k >> 32))
		e.u32(uint32(k))
		e.u32(uint32(len(ps)))
		return e.err
	})
	if err != nil {
		return err
	}
	err = db.forEachSortedLocked(func(_ uint64, ps []graph.Path) error {
		for _, p := range ps {
			e.u32(uint32(len(p)))
		}
		return e.err
	})
	if err != nil {
		return err
	}
	err = db.forEachSortedLocked(func(_ uint64, ps []graph.Path) error {
		for _, p := range ps {
			for _, u := range p {
				e.u32(uint32(u))
			}
		}
		return e.err
	})
	if err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	// The checksum covers everything before it and is itself unhashed.
	sum := hw.h.Sum64()
	e.w = bw
	e.u64(sum)
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// ErrCacheVersion marks a cache file written by a different format
// version; errors.Is(err, ErrCacheVersion) distinguishes version skew
// from corruption.
var ErrCacheVersion = errors.New("paths: unsupported cache version")

// ReadCache loads a database written by WriteCache onto graph g and
// returns it with the cache key stored in the file. Every declared count
// is bounds-checked against the graph before use, slice growth is tied
// to the bytes actually consumed, every path is re-validated against the
// graph (edges, endpoints, monotone pair order), and the trailing
// checksum must match: corrupted, truncated, version-skewed or hostile
// input returns an error — never a panic or an outsized allocation.
func ReadCache(r io.Reader, g *graph.Graph) (*DB, uint64, error) {
	d := &leReader{r: bufio.NewReaderSize(r, 1<<16), h: fnv.New64a(), hashing: true}
	n := g.NumNodes()

	magic := make([]byte, 4)
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, 0, fmt.Errorf("paths: cache too short for magic")
	}
	d.h.Write(magic)
	if string(magic) != cacheMagic {
		return nil, 0, fmt.Errorf("paths: not a path-cache file (magic %q)", magic)
	}
	version := d.u32()
	if d.err == nil && version != cacheVersion {
		return nil, 0, fmt.Errorf("%w: file has version %d, this reader supports version %d",
			ErrCacheVersion, version, cacheVersion)
	}
	key := d.u64()
	algLen := int(d.u8())
	if d.err == nil && algLen > maxAlgNameLen {
		return nil, 0, fmt.Errorf("paths: cache selector name length %d out of range", algLen)
	}
	algName := d.bytes(algLen)
	if d.err != nil {
		return nil, 0, d.err
	}
	alg, err := ksp.ByName(string(algName))
	if err != nil {
		return nil, 0, fmt.Errorf("paths: cache: %v", err)
	}
	k := int(d.u32())
	spread := int(d.u32())
	minPaths := int(d.u32())
	flags := d.u8()
	seed := d.u64()
	fallbacks := d.u64()
	numPairs := d.u64()
	numPaths := d.u64()
	arenaLen := d.u64()
	if d.err != nil {
		return nil, 0, d.err
	}
	if k < 1 || k > maxPathsPerPair {
		return nil, 0, fmt.Errorf("paths: cache k %d out of range [1, %d]", k, maxPathsPerPair)
	}
	if spread > 1<<20 || minPaths > 1<<20 {
		return nil, 0, fmt.Errorf("paths: cache LLSKR knobs out of range")
	}
	if flags > 1 {
		return nil, 0, fmt.Errorf("paths: cache has unknown flag bits %#x", flags)
	}
	maxPairs := uint64(n) * uint64(n-1)
	if numPairs > maxPairs {
		return nil, 0, fmt.Errorf("paths: cache declares %d pairs, graph allows at most %d", numPairs, maxPairs)
	}
	if numPaths > numPairs*uint64(k) || numPaths >= 1<<31 {
		return nil, 0, fmt.Errorf("paths: cache declares %d paths for %d pairs at k=%d", numPaths, numPairs, k)
	}
	if arenaLen > numPaths*uint64(n) {
		return nil, 0, fmt.Errorf("paths: cache declares %d arena nodes for %d paths", arenaLen, numPaths)
	}
	if fallbacks > numPairs {
		return nil, 0, fmt.Errorf("paths: cache declares %d fallbacks over %d pairs", fallbacks, numPairs)
	}

	cfg := ksp.Config{Alg: alg, K: k, DisableEDFallback: flags&1 != 0}
	if alg == ksp.LLSKR {
		cfg.LLSKRSpread, cfg.LLSKRMin = spread, minPaths
	}

	// Pairs section. Slices grow with the input rather than trusting the
	// declared totals, so truncation costs at most one growth chunk.
	st := &store{
		keys:      make([]uint64, 0, min(numPairs, growChunk)),
		fallbacks: int(fallbacks),
	}
	counts := make([]uint32, 0, min(numPairs, growChunk))
	var prevKey uint64
	var sumPaths uint64
	for i := uint64(0); i < numPairs; i++ {
		src := d.u32()
		dst := d.u32()
		np := d.u32()
		if d.err != nil {
			return nil, 0, d.err
		}
		if src >= uint32(n) || dst >= uint32(n) || src == dst {
			return nil, 0, fmt.Errorf("paths: cache pair %d->%d out of range", src, dst)
		}
		if np > uint32(k) {
			return nil, 0, fmt.Errorf("paths: cache pair %d->%d declares %d paths, k is %d", src, dst, np, k)
		}
		pk := pairKey(graph.NodeID(src), graph.NodeID(dst))
		if i > 0 && pk <= prevKey {
			return nil, 0, fmt.Errorf("paths: cache pairs not in ascending order at %d->%d", src, dst)
		}
		prevKey = pk
		st.keys = append(st.keys, pk)
		counts = append(counts, np)
		sumPaths += uint64(np)
	}
	if sumPaths != numPaths {
		return nil, 0, fmt.Errorf("paths: cache pair counts sum to %d, header said %d", sumPaths, numPaths)
	}

	// Path-length section.
	lens := make([]uint32, 0, min(numPaths, growChunk))
	var sumNodes uint64
	for i := uint64(0); i < numPaths; i++ {
		l := d.u32()
		if d.err != nil {
			return nil, 0, d.err
		}
		if l < 2 || l > uint32(n) {
			return nil, 0, fmt.Errorf("paths: cache path length %d out of range [2, %d]", l, n)
		}
		lens = append(lens, l)
		sumNodes += uint64(l)
	}
	if sumNodes != arenaLen {
		return nil, 0, fmt.Errorf("paths: cache path lengths sum to %d, header said %d", sumNodes, arenaLen)
	}

	// Arena section, decoded in bulk chunks.
	st.arena = make([]graph.NodeID, 0, min(arenaLen, growChunk))
	chunk := make([]byte, 4*growChunk)
	for remaining := arenaLen; remaining > 0; {
		want := min(remaining, growChunk)
		buf := chunk[:4*want]
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return nil, 0, fmt.Errorf("paths: cache truncated")
		}
		d.h.Write(buf)
		for i := uint64(0); i < want; i++ {
			v := binary.LittleEndian.Uint32(buf[4*i:])
			if v >= uint32(n) {
				return nil, 0, fmt.Errorf("paths: cache node id %d out of range", v)
			}
			st.arena = append(st.arena, graph.NodeID(v))
		}
		remaining -= want
	}

	// Footer checksum (not part of the hashed stream), then EOF.
	wantSum := d.h.Sum64()
	d.hashing = false
	gotSum := d.u64()
	if d.err != nil {
		return nil, 0, d.err
	}
	if gotSum != wantSum {
		return nil, 0, fmt.Errorf("paths: cache checksum mismatch (file %016x, computed %016x)", gotSum, wantSum)
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return nil, 0, fmt.Errorf("paths: trailing data after cache checksum")
	}

	// Assemble the CSR index and validate every path against the graph.
	st.pairOff = make([]int32, len(st.keys)+1)
	st.heads = make([]graph.Path, numPaths)
	st.index = make(map[uint64]int32, len(st.keys))
	pathIdx := 0
	nodeOff := 0
	for i, pk := range st.keys {
		st.pairOff[i] = int32(pathIdx)
		st.index[pk] = int32(i)
		src := graph.NodeID(pk >> 32)
		dst := graph.NodeID(uint32(pk))
		for c := uint32(0); c < counts[i]; c++ {
			l := int(lens[pathIdx])
			p := graph.Path(st.arena[nodeOff : nodeOff+l : nodeOff+l])
			st.heads[pathIdx] = p
			if p[0] != src || p[l-1] != dst {
				return nil, 0, fmt.Errorf("paths: cache path endpoints do not match pair %d->%d", src, dst)
			}
			pathIdx++
			nodeOff += l
		}
	}
	st.pairOff[len(st.keys)] = int32(pathIdx)
	if verr := validateStorePaths(st, g); verr != nil {
		return nil, 0, verr
	}

	db := NewDB(g, cfg, seed)
	db.st = st
	return db, key, nil
}

// validateStorePaths checks that every packed path only traverses edges
// of g, sharded across workers — on an all-pairs medium-topology load
// this is the dominant cost of a cache hit.
func validateStorePaths(st *store, g *graph.Graph) error {
	var mu sync.Mutex
	var bad error
	par.ForShards(len(st.heads), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := st.heads[i]
			for j := 0; j+1 < len(p); j++ {
				if !g.HasEdge(p[j], p[j+1]) {
					mu.Lock()
					bad = fmt.Errorf("paths: cache path uses non-edge %d-%d", p[j], p[j+1])
					mu.Unlock()
					return
				}
			}
		}
	})
	return bad
}

// CacheStats reports what LoadOrBuild did.
type CacheStats struct {
	// Hit is true when the DB was loaded from the cache file.
	Hit bool
	// File is the cache file path consulted ("" when no directory was
	// given).
	File string
	// LoadErr records why an existing cache file was discarded and
	// rebuilt (nil on a clean hit or a plain miss).
	LoadErr error
}

// LoadOrBuild returns the path DB for (g, cfg, seed, pairs), loading it
// from the versioned cache under dir when a valid entry exists and
// building it (shard-parallel) and writing the entry back otherwise. An
// empty dir disables caching and is exactly Build. A corrupt, truncated
// or key-mismatched cache file is discarded and rebuilt, never trusted;
// the write is atomic (temp file + rename), so concurrent processes can
// share a cache directory.
func LoadOrBuild(dir string, g *graph.Graph, cfg ksp.Config, seed uint64, pairs []Pair, workers int) (*DB, CacheStats, error) {
	if dir == "" {
		return Build(g, cfg, seed, pairs, workers), CacheStats{}, nil
	}
	key := CacheKey(g, cfg, seed, pairs)
	file := filepath.Join(dir, CacheFileName(key))
	stats := CacheStats{File: file}
	if f, err := os.Open(file); err == nil {
		db, storedKey, rerr := ReadCache(f, g)
		f.Close()
		switch {
		case rerr != nil:
			stats.LoadErr = rerr
		case storedKey != key:
			stats.LoadErr = fmt.Errorf("paths: cache key mismatch (file %016x, want %016x)", storedKey, key)
		case db.Config().Canonical() != cfg.Canonical() || db.Seed() != seed:
			stats.LoadErr = fmt.Errorf("paths: cache config/seed mismatch")
		default:
			stats.Hit = true
			return db, stats, nil
		}
	}
	db := Build(g, cfg, seed, pairs, workers)
	if err := writeCacheFile(dir, file, db, key); err != nil {
		return nil, stats, err
	}
	return db, stats, nil
}

// writeCacheFile writes the DB to file atomically via a temp file in the
// same directory.
func writeCacheFile(dir, file string, db *DB, key uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("paths: cache dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(file)+".tmp*")
	if err != nil {
		return fmt.Errorf("paths: cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := db.WriteCache(tmp, key); err != nil {
		tmp.Close()
		return fmt.Errorf("paths: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("paths: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), file); err != nil {
		return fmt.Errorf("paths: cache write: %w", err)
	}
	return nil
}
