package paths

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/ksp"
)

// TestLookupTypedErrors is the regression test for the serving-layer
// bugfix: absent pairs must answer a typed error, never an empty or
// lazily computed path set.
func TestLookupTypedErrors(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 4}
	db := Build(g, cfg, 1, []Pair{{Src: 0, Dst: 1}}, 1)

	ps, err := db.Lookup(0, 1)
	if err != nil || len(ps) == 0 {
		t.Fatalf("stored pair: got %d paths, err %v", len(ps), err)
	}

	cases := []struct {
		src, dst graph.NodeID
		want     error
	}{
		{1, 0, ErrNotStored}, // pairs are directed; the reverse was not built
		{2, 3, ErrNotStored},
		{5, 5, ErrSelfPair},
		{-1, 1, ErrOutOfRange},
		{0, graph.NodeID(g.NumNodes()), ErrOutOfRange},
	}
	for _, c := range cases {
		ps, err := db.Lookup(c.src, c.dst)
		if !errors.Is(err, c.want) {
			t.Fatalf("Lookup(%d, %d) = %v, want %v", c.src, c.dst, err, c.want)
		}
		if ps != nil {
			t.Fatalf("Lookup(%d, %d) returned paths alongside the error", c.src, c.dst)
		}
	}

	// Lookup never computes lazily — but it does see pairs that Paths
	// has since cached, so servers and simulators agree on what exists.
	if _, err := db.Lookup(1, 0); !errors.Is(err, ErrNotStored) {
		t.Fatalf("pre-compute Lookup(1, 0) = %v, want %v", err, ErrNotStored)
	}
	if got := db.Paths(1, 0); len(got) == 0 {
		t.Fatal("lazy Paths(1, 0) computed nothing")
	}
	if ps, err := db.Lookup(1, 0); err != nil || len(ps) == 0 {
		t.Fatalf("post-compute Lookup(1, 0) = %d paths, err %v", len(ps), err)
	}
}

func TestLookupNoPath(t *testing.T) {
	// A disconnected pair is stored with zero paths and must answer
	// ErrNoPath, distinguishable from "not stored".
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Graph()
	cfg := ksp.Config{Alg: ksp.KSP, K: 2}
	db := Build(g, cfg, 1, []Pair{{Src: 0, Dst: 2}}, 1)

	_, err := db.Lookup(0, 2)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("disconnected stored pair: %v, want %v", err, ErrNoPath)
	}
	if _, err := db.Lookup(0, 3); !errors.Is(err, ErrNotStored) {
		t.Fatalf("unstored pair: %v, want %v", err, ErrNotStored)
	}
}
