package paths

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ksp"
)

// textBytes renders the DB through the line-oriented Write format — the
// canonical "same path sets" comparison used across the cache tests.
func textBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCacheRoundTrip(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 4}
	orig := BuildAllPairs(g, cfg, 77, 4)
	key := CacheKey(g, cfg, 77, AllOrderedPairs(g.NumNodes()))

	var buf bytes.Buffer
	if err := orig.WriteCache(&buf, key); err != nil {
		t.Fatal(err)
	}
	got, gotKey, err := ReadCache(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("key = %016x, want %016x", gotKey, key)
	}
	if got.NumPairs() != orig.NumPairs() {
		t.Fatalf("pairs = %d, want %d", got.NumPairs(), orig.NumPairs())
	}
	if got.Config() != orig.Config() {
		t.Fatalf("config = %+v, want %+v", got.Config(), orig.Config())
	}
	if got.Seed() != orig.Seed() {
		t.Fatalf("seed = %d, want %d", got.Seed(), orig.Seed())
	}
	if got.Fallbacks() != orig.Fallbacks() {
		t.Fatalf("fallbacks = %d, want %d", got.Fallbacks(), orig.Fallbacks())
	}
	if !bytes.Equal(textBytes(t, got), textBytes(t, orig)) {
		t.Fatal("loaded DB's Write output differs from the original")
	}
}

func TestCacheBytesDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 4}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		db := BuildAllPairs(g, cfg, 42, workers)
		var buf bytes.Buffer
		if err := db.WriteCache(&buf, 123); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: cache bytes differ", workers)
		}
	}
}

func TestCacheRoundTripPreservesFallbacks(t *testing.T) {
	// The fallback count survives the binary round trip (the text format
	// does not carry it).
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Graph()
	db := Build(g, ksp.Config{Alg: ksp.EDKSP, K: 3}, 1, []Pair{{0, 2}}, 1)
	if db.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", db.Fallbacks())
	}
	var buf bytes.Buffer
	if err := db.WriteCache(&buf, 9); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadCache(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fallbacks() != 1 {
		t.Fatalf("loaded fallbacks = %d, want 1", got.Fallbacks())
	}
}

func TestLoadOrBuildHitIsBitIdentical(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 4}
	pairs := AllOrderedPairs(g.NumNodes())
	dir := t.TempDir()

	fresh, stats, err := LoadOrBuild(dir, g, cfg, 7, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hit {
		t.Fatal("first LoadOrBuild reported a hit on an empty directory")
	}
	if _, err := os.Stat(stats.File); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	loaded, stats2, err := LoadOrBuild(dir, g, cfg, 7, pairs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Hit {
		t.Fatalf("second LoadOrBuild missed (load error: %v)", stats2.LoadErr)
	}
	if !bytes.Equal(textBytes(t, loaded), textBytes(t, fresh)) {
		t.Fatal("cache-hit DB's Write output differs from the fresh build")
	}
	// A cache hit re-serialized to the binary format is also byte-equal.
	key := CacheKey(g, cfg, 7, pairs)
	var a, b bytes.Buffer
	if err := fresh.WriteCache(&a, key); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteCache(&b, key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cache-hit DB re-serializes differently")
	}
}

func TestLoadOrBuildEmptyDirIsBuild(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.KSP, K: 3}
	pairs := []Pair{{0, 1}, {4, 9}}
	db, stats, err := LoadOrBuild("", g, cfg, 3, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hit || stats.File != "" {
		t.Fatalf("stats = %+v, want zero", stats)
	}
	want := Build(g, cfg, 3, pairs, 1)
	if !bytes.Equal(textBytes(t, db), textBytes(t, want)) {
		t.Fatal("LoadOrBuild(\"\") differs from Build")
	}
}

func TestLoadOrBuildDifferentKeysDifferentFiles(t *testing.T) {
	g := testGraph(t)
	pairs := []Pair{{0, 1}, {2, 3}}
	dir := t.TempDir()
	for _, cfg := range []ksp.Config{
		{Alg: ksp.KSP, K: 2},
		{Alg: ksp.KSP, K: 3},
		{Alg: ksp.REDKSP, K: 2},
	} {
		if _, _, err := LoadOrBuild(dir, g, cfg, 1, pairs, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := LoadOrBuild(dir, g, ksp.Config{Alg: ksp.KSP, K: 2}, 2, pairs, 1); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("got %d cache files, want 4 (config and seed must key separately)", len(ents))
	}
}

func TestLoadOrBuildRecoversFromCorruptFile(t *testing.T) {
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.RKSP, K: 3}
	pairs := AllOrderedPairs(12)
	dir := t.TempDir()
	fresh, stats, err := LoadOrBuild(dir, g, cfg, 5, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file.
	raw, err := os.ReadFile(stats.File)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(stats.File, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, stats2, err := LoadOrBuild(dir, g, cfg, 5, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Hit {
		t.Fatal("corrupt cache file reported as a hit")
	}
	if stats2.LoadErr == nil {
		t.Fatal("corrupt cache file produced no load error")
	}
	if !bytes.Equal(textBytes(t, db), textBytes(t, fresh)) {
		t.Fatal("rebuild after corruption differs from the original build")
	}
	// The rebuild must have replaced the file with a loadable one.
	f, err := os.Open(stats2.File)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := ReadCache(f, g); err != nil {
		t.Fatalf("rewritten cache file does not load: %v", err)
	}
}

func TestReadCacheRejectsVersionSkew(t *testing.T) {
	g := testGraph(t)
	db := Build(g, ksp.Config{Alg: ksp.KSP, K: 2}, 1, []Pair{{0, 1}}, 1)
	var buf bytes.Buffer
	if err := db.WriteCache(&buf, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version field follows the 4-byte magic
	_, _, err := ReadCache(bytes.NewReader(raw), g)
	if !errors.Is(err, ErrCacheVersion) {
		t.Fatalf("version-skewed file: err = %v, want ErrCacheVersion", err)
	}
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version error does not name the file's version: %v", err)
	}
}

func TestReadCacheRejectsChecksumFlip(t *testing.T) {
	g := testGraph(t)
	db := Build(g, ksp.Config{Alg: ksp.KSP, K: 2}, 1, []Pair{{0, 1}, {0, 2}}, 1)
	var buf bytes.Buffer
	if err := db.WriteCache(&buf, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 1 // footer checksum byte
	if _, _, err := ReadCache(bytes.NewReader(raw), g); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped checksum: err = %v, want checksum mismatch", err)
	}
}

func TestReadCacheRejectsTruncation(t *testing.T) {
	g := testGraph(t)
	db := BuildAllPairs(g, ksp.Config{Alg: ksp.REDKSP, K: 3}, 2, 1)
	var buf bytes.Buffer
	if err := db.WriteCache(&buf, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 4, 7, 8, 20, 40, len(raw) / 2, len(raw) - 1} {
		if _, _, err := ReadCache(bytes.NewReader(raw[:cut]), g); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage after a valid stream must also be rejected.
	if _, _, err := ReadCache(bytes.NewReader(append(raw, 0)), g); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: err = %v, want trailing-data error", err)
	}
}

func TestReadCacheRejectsWrongGraph(t *testing.T) {
	g := testGraph(t)
	db := BuildAllPairs(g, ksp.Config{Alg: ksp.KSP, K: 2}, 1, 1)
	var buf bytes.Buffer
	if err := db.WriteCache(&buf, 1); err != nil {
		t.Fatal(err)
	}
	// A path graph 0-1-2-...: almost none of the RRG's paths are valid.
	b := graph.NewBuilder(g.NumNodes())
	for i := 0; i+1 < g.NumNodes(); i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	if _, _, err := ReadCache(bytes.NewReader(buf.Bytes()), b.Graph()); err == nil {
		t.Fatal("cache for a different graph accepted")
	}
}

func TestReadCacheEmptyDB(t *testing.T) {
	g := testGraph(t)
	empty := NewDB(g, ksp.Config{Alg: ksp.KSP, K: 2}, 3)
	var buf bytes.Buffer
	if err := empty.WriteCache(&buf, 5); err != nil {
		t.Fatal(err)
	}
	got, key, err := ReadCache(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if key != 5 || got.NumPairs() != 0 {
		t.Fatalf("key = %d, pairs = %d", key, got.NumPairs())
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	g := testGraph(t)
	base := CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 4}, 1, []Pair{{0, 1}})
	variants := []uint64{
		CacheKey(g, ksp.Config{Alg: ksp.RKSP, K: 4}, 1, []Pair{{0, 1}}),
		CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 5}, 1, []Pair{{0, 1}}),
		CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 4}, 2, []Pair{{0, 1}}),
		CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 4}, 1, []Pair{{0, 2}}),
		CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 4, DisableEDFallback: true}, 1, []Pair{{0, 1}}),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
	// Pair order and duplicates do not change the key (the set does).
	a := CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 4}, 1, []Pair{{0, 1}, {2, 3}})
	b := CacheKey(g, ksp.Config{Alg: ksp.KSP, K: 4}, 1, []Pair{{2, 3}, {0, 1}, {2, 3}})
	if a != b {
		t.Error("pair order/duplicates changed the cache key")
	}
	// A different topology instance changes the key.
	bld := graph.NewBuilder(g.NumNodes())
	for i := 0; i+1 < g.NumNodes(); i++ {
		bld.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	if CacheKey(bld.Graph(), ksp.Config{Alg: ksp.KSP, K: 4}, 1, []Pair{{0, 1}}) == base {
		t.Error("different graph produced the same cache key")
	}
}

func TestLoadedDBLazyFillMatchesFresh(t *testing.T) {
	// Pairs outside the cached bulk are computed lazily and must match a
	// fresh DB (per-pair reseeding is independent of the store).
	g := testGraph(t)
	cfg := ksp.Config{Alg: ksp.RKSP, K: 3}
	partial := Build(g, cfg, 9, []Pair{{0, 1}, {2, 3}}, 1)
	var buf bytes.Buffer
	if err := partial.WriteCache(&buf, 4); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := ReadCache(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewDB(g, cfg, 9)
	a, b := loaded.Paths(5, 9), fresh.Paths(5, 9)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lazy fill: %d vs %d paths", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("lazy path %d differs after cache load", i)
		}
	}
	if loaded.NumPairs() != 3 {
		t.Fatalf("NumPairs = %d, want 3 (2 packed + 1 lazy)", loaded.NumPairs())
	}
}
