package paths

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/ksp"
)

// Write serializes the DB's currently stored path sets in a line-oriented
// format, so an expensive all-pairs computation (minutes on the medium
// topology, hours on the large one) can be archived and reloaded:
//
//	PATHDB 1
//	config <alg> <k> <seed>
//	pair <src> <dst> <npaths>
//	path <n0> <n1> ... <nm>
//	...
//
// Pairs are emitted in ascending (src, dst) order, so two DBs holding the
// same path sets serialize byte-identically regardless of how they were
// filled (eager builds at any worker count, lazy fills in any order).
func (db *DB) Write(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "PATHDB 1\nconfig %s %d %d\n",
		db.cfg.Alg, db.cfg.K, db.seed); err != nil {
		return err
	}
	keys := make([]uint64, 0, len(db.m))
	for key := range db.m {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	for _, key := range keys {
		ps := db.m[key]
		src := graph.NodeID(key >> 32)
		dst := graph.NodeID(uint32(key))
		if _, err := fmt.Fprintf(bw, "pair %d %d %d\n", src, dst, len(ps)); err != nil {
			return err
		}
		for _, p := range ps {
			bw.WriteString("path")
			for _, u := range p {
				fmt.Fprintf(bw, " %d", u)
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Read loads a DB written by Write onto graph g, validating every path
// against the graph. The DB's config (selector, k, seed) is restored, so
// lazily computed additions remain consistent with the original.
func Read(r io.Reader, g *graph.Graph) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 256*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	hdr, ok := next()
	if !ok || hdr != "PATHDB 1" {
		return nil, fmt.Errorf("paths: bad header %q", hdr)
	}
	cfgLine, ok := next()
	if !ok || !strings.HasPrefix(cfgLine, "config ") {
		return nil, fmt.Errorf("paths: missing config line")
	}
	fields := strings.Fields(cfgLine)
	if len(fields) != 4 {
		return nil, fmt.Errorf("paths: bad config line %q", cfgLine)
	}
	alg, err := ksp.ByName(fields[1])
	if err != nil {
		return nil, err
	}
	k, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, fmt.Errorf("paths: bad k: %v", err)
	}
	seed, err := strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("paths: bad seed: %v", err)
	}
	db := NewDB(g, ksp.Config{Alg: alg, K: k}, seed)

	var curSrc, curDst graph.NodeID
	var want int
	var cur []graph.Path
	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur) != want {
			return fmt.Errorf("paths: pair %d->%d has %d paths, header said %d",
				curSrc, curDst, len(cur), want)
		}
		db.m[pairKey(curSrc, curDst)] = cur
		cur = nil
		return nil
	}
	for {
		s, ok := next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(s, "pair "):
			if err := flush(); err != nil {
				return nil, err
			}
			var np int
			if _, err := fmt.Sscanf(s, "pair %d %d %d", &curSrc, &curDst, &np); err != nil {
				return nil, fmt.Errorf("paths: line %d: %v", line, err)
			}
			want = np
			cur = make([]graph.Path, 0, np)
		case strings.HasPrefix(s, "path"):
			if cur == nil {
				return nil, fmt.Errorf("paths: line %d: path before pair", line)
			}
			fields := strings.Fields(s)[1:]
			p := make(graph.Path, len(fields))
			for i, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("paths: line %d: %v", line, err)
				}
				p[i] = graph.NodeID(v)
			}
			if !p.ValidIn(g) {
				return nil, fmt.Errorf("paths: line %d: path %v not valid in graph", line, p)
			}
			if p.Src() != curSrc || p.Dst() != curDst {
				return nil, fmt.Errorf("paths: line %d: path endpoints do not match pair", line)
			}
			cur = append(cur, p)
		default:
			return nil, fmt.Errorf("paths: line %d: unknown record %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return db, nil
}
