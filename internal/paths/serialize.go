package paths

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/ksp"
)

// maxPathsPerPair bounds the per-pair path count a serialized input may
// declare. No selector produces more than K paths and practical K is a
// few dozen; the bound exists so corrupted or hostile inputs cannot make
// the readers allocate unbounded memory from a tiny file.
const maxPathsPerPair = 1 << 16

// forEachSorted calls fn for every stored pair in ascending
// (src, dst) key order, merging the packed store with the lazy fills.
// It holds the DB's read lock for the duration.
func (db *DB) forEachSorted(fn func(key uint64, ps []graph.Path) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.forEachSortedLocked(fn)
}

// forEachSortedLocked is forEachSorted with db.mu already held (read or
// write), for callers that need a stable view across several passes.
func (db *DB) forEachSortedLocked(fn func(key uint64, ps []graph.Path) error) error {
	lazy := make([]uint64, 0, len(db.m))
	for key := range db.m {
		lazy = append(lazy, key)
	}
	slices.Sort(lazy)
	var packed []uint64
	if db.st != nil {
		packed = db.st.keys
	}
	i, j := 0, 0
	for i < len(packed) || j < len(lazy) {
		switch {
		case j >= len(lazy) || (i < len(packed) && packed[i] <= lazy[j]):
			if j < len(lazy) && packed[i] == lazy[j] {
				j++ // defensive: store wins if a key is somehow in both
			}
			ps, _ := db.st.paths(packed[i])
			if err := fn(packed[i], ps); err != nil {
				return err
			}
			i++
		default:
			if err := fn(lazy[j], db.m[lazy[j]]); err != nil {
				return err
			}
			j++
		}
	}
	return nil
}

// Write serializes the DB's currently stored path sets in a line-oriented
// format, so an expensive all-pairs computation (minutes on the medium
// topology, hours on the large one) can be archived and reloaded:
//
//	PATHDB 1
//	config <alg> <k> <seed>
//	pair <src> <dst> <npaths>
//	path <n0> <n1> ... <nm>
//	...
//
// Pairs are emitted in ascending (src, dst) order, so two DBs holding the
// same path sets serialize byte-identically regardless of how they were
// filled (eager builds at any worker count, cache loads, lazy fills in
// any order). For the compact binary format used by the on-disk cache see
// WriteCache.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "PATHDB 1\nconfig %s %d %d\n",
		db.cfg.Alg, db.cfg.K, db.seed); err != nil {
		return err
	}
	err := db.forEachSorted(func(key uint64, ps []graph.Path) error {
		src := graph.NodeID(key >> 32)
		dst := graph.NodeID(uint32(key))
		if _, err := fmt.Fprintf(bw, "pair %d %d %d\n", src, dst, len(ps)); err != nil {
			return err
		}
		for _, p := range ps {
			bw.WriteString("path")
			for _, u := range p {
				fmt.Fprintf(bw, " %d", u)
			}
			bw.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read loads a DB written by Write onto graph g, validating every path
// against the graph and packing the result into the DB's CSR store. The
// DB's config (selector, k, seed) is restored, so lazily computed
// additions remain consistent with the original. Malformed input of any
// kind — truncation, unknown records, invalid paths, absurd counts —
// returns an error; Read never panics on bad input.
func Read(r io.Reader, g *graph.Graph) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 256*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	hdr, ok := next()
	if !ok || hdr != "PATHDB 1" {
		return nil, fmt.Errorf("paths: bad header %q", hdr)
	}
	cfgLine, ok := next()
	if !ok || !strings.HasPrefix(cfgLine, "config ") {
		return nil, fmt.Errorf("paths: missing config line")
	}
	fields := strings.Fields(cfgLine)
	if len(fields) != 4 {
		return nil, fmt.Errorf("paths: bad config line %q", cfgLine)
	}
	alg, err := ksp.ByName(fields[1])
	if err != nil {
		return nil, err
	}
	k, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, fmt.Errorf("paths: bad k: %v", err)
	}
	if k < 1 || k > maxPathsPerPair {
		return nil, fmt.Errorf("paths: k %d out of range [1, %d]", k, maxPathsPerPair)
	}
	seed, err := strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("paths: bad seed: %v", err)
	}
	db := NewDB(g, ksp.Config{Alg: alg, K: k}, seed)

	var keys []uint64
	var results [][]graph.Path
	seen := make(map[uint64]struct{})
	var curSrc, curDst graph.NodeID
	var want int
	var cur []graph.Path
	started := false
	flush := func() error {
		if !started {
			return nil
		}
		if len(cur) != want {
			return fmt.Errorf("paths: pair %d->%d has %d paths, header said %d",
				curSrc, curDst, len(cur), want)
		}
		key := pairKey(curSrc, curDst)
		if _, dup := seen[key]; dup {
			return fmt.Errorf("paths: duplicate pair %d->%d", curSrc, curDst)
		}
		seen[key] = struct{}{}
		keys = append(keys, key)
		results = append(results, cur)
		cur = nil
		started = false
		return nil
	}
	for {
		s, ok := next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(s, "pair "):
			if err := flush(); err != nil {
				return nil, err
			}
			var np int
			if _, err := fmt.Sscanf(s, "pair %d %d %d", &curSrc, &curDst, &np); err != nil {
				return nil, fmt.Errorf("paths: line %d: %v", line, err)
			}
			if np < 0 || np > maxPathsPerPair {
				return nil, fmt.Errorf("paths: line %d: path count %d out of range", line, np)
			}
			if curSrc < 0 || int(curSrc) >= g.NumNodes() || curDst < 0 || int(curDst) >= g.NumNodes() {
				return nil, fmt.Errorf("paths: line %d: pair %d->%d out of range", line, curSrc, curDst)
			}
			want = np
			// Capacity is clamped: the declared count is only trusted
			// once the actual path lines have arrived.
			cur = make([]graph.Path, 0, min(np, 1024))
			started = true
		case strings.HasPrefix(s, "path"):
			if !started {
				return nil, fmt.Errorf("paths: line %d: path before pair", line)
			}
			if len(cur) >= want {
				return nil, fmt.Errorf("paths: line %d: more paths than the pair header declared", line)
			}
			fields := strings.Fields(s)[1:]
			p := make(graph.Path, len(fields))
			for i, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("paths: line %d: %v", line, err)
				}
				// Range-check before the NodeID cast: an out-of-range id
				// would otherwise index the graph's adjacency arrays.
				if v < 0 || v >= g.NumNodes() {
					return nil, fmt.Errorf("paths: line %d: node %d out of range", line, v)
				}
				p[i] = graph.NodeID(v)
			}
			if !p.ValidIn(g) {
				return nil, fmt.Errorf("paths: line %d: path %v not valid in graph", line, p)
			}
			if p.Src() != curSrc || p.Dst() != curDst {
				return nil, fmt.Errorf("paths: line %d: path endpoints do not match pair", line)
			}
			cur = append(cur, p)
		default:
			return nil, fmt.Errorf("paths: line %d: unknown record %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(keys) > 0 {
		db.st = pack(keys, results, 0, 1)
	}
	return db, nil
}
