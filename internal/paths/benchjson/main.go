// Command benchjson benchmarks the packed path store and its on-disk
// cache on the paper's medium topology and writes the results as JSON,
// so `make bench` can track the path pipeline across commits
// (BENCH_paths.json at the repo root is the committed baseline):
//
//	go run ./internal/paths/benchjson -o BENCH_paths.json
//
// Three quantities matter (methodology in docs/PATHS.md):
//
//   - build throughput: pairs/sec of a shard-parallel eager build on a
//     sampled pair set of RRG(720,24,19);
//   - cache-load speedup: wall time of streaming the packed store back
//     from a cache file versus recomputing it (the win -path-cache buys);
//   - bytes/pair: resident size of the CSR-packed store versus the
//     per-path slice representation it replaced, modeled from the
//     allocations that representation performs (size-class rounded).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/xrand"
)

type report struct {
	Topology string `json:"topology"`
	Selector string `json:"selector"`
	K        int    `json:"k"`
	Pairs    int    `json:"pairs"`
	Workers  int    `json:"workers"`

	BuildSeconds     float64 `json:"build_seconds"`
	BuildPairsPerSec float64 `json:"build_pairs_per_sec"`

	CacheFileBytes   int64   `json:"cache_file_bytes"`
	CacheLoadSeconds float64 `json:"cache_load_seconds"`
	CacheSpeedup     float64 `json:"cache_speedup"`

	PackedBytesPerPair float64 `json:"packed_bytes_per_pair"`
	SliceBytesPerPair  float64 `json:"slice_bytes_per_pair"`
	PackedFraction     float64 `json:"packed_fraction"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_paths.json", "output file")
		topoName = flag.String("topo", "medium", "topology: small, medium or large")
		nPairs   = flag.Int("pairs", 50000, "sampled switch pairs (0 = all ordered pairs)")
		k        = flag.Int("k", 8, "paths per pair")
		selector = flag.String("selector", "rEDKSP", "path selector")
		seed     = flag.Uint64("seed", 1, "build seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	params, err := jellyfish.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	alg, err := ksp.ByName(*selector)
	if err != nil {
		fatal(err)
	}
	topo, err := jellyfish.New(params, xrand.New(7))
	if err != nil {
		fatal(err)
	}
	g := topo.G
	var prs []paths.Pair
	if *nPairs > 0 {
		prs = paths.SamplePairs(params.N, *nPairs, xrand.New(11))
	} else {
		prs = paths.AllOrderedPairs(params.N)
	}
	cfg := ksp.Config{Alg: alg, K: *k}

	fmt.Printf("building %s %s k=%d over %d pairs...\n", params, alg, *k, len(prs))
	start := time.Now()
	db := paths.Build(g, cfg, *seed, prs, *workers)
	buildSec := time.Since(start).Seconds()

	dir, err := os.MkdirTemp("", "jfpc-bench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	key := paths.CacheKey(g, cfg, *seed, prs)
	file := filepath.Join(dir, paths.CacheFileName(key))
	f, err := os.Create(file)
	if err != nil {
		fatal(err)
	}
	if err := db.WriteCache(f, key); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(file)
	if err != nil {
		fatal(err)
	}

	start = time.Now()
	loaded, cs, err := paths.LoadOrBuild(dir, g, cfg, *seed, prs, *workers)
	loadSec := time.Since(start).Seconds()
	if err != nil {
		fatal(err)
	}
	if !cs.Hit {
		fatal(fmt.Errorf("expected a cache hit, got a rebuild (%v)", cs.LoadErr))
	}

	st, ok := loaded.StoreStats()
	if !ok {
		fatal(fmt.Errorf("cache-loaded DB has no packed store"))
	}

	rep := report{
		Topology:           params.String(),
		Selector:           alg.String(),
		K:                  *k,
		Pairs:              len(prs),
		Workers:            *workers,
		BuildSeconds:       buildSec,
		BuildPairsPerSec:   float64(len(prs)) / buildSec,
		CacheFileBytes:     fi.Size(),
		CacheLoadSeconds:   loadSec,
		CacheSpeedup:       buildSec / loadSec,
		PackedBytesPerPair: float64(st.TotalBytes) / float64(st.Pairs),
		SliceBytesPerPair:  sliceBytesPerPair(db, prs),
	}
	rep.PackedFraction = rep.PackedBytesPerPair / rep.SliceBytesPerPair

	fmt.Printf("build: %.1fs (%.0f pairs/sec, workers=%d)\n", rep.BuildSeconds, rep.BuildPairsPerSec, *workers)
	fmt.Printf("cache: %d bytes on disk, load %.2fs -> %.1fx faster than rebuild\n",
		rep.CacheFileBytes, rep.CacheLoadSeconds, rep.CacheSpeedup)
	fmt.Printf("store: %.1f bytes/pair packed vs %.1f bytes/pair as slices (%.0f%%)\n",
		rep.PackedBytesPerPair, rep.SliceBytesPerPair, rep.PackedFraction*100)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// sliceBytesPerPair computes the resident footprint of the pre-CSR
// representation — a map from pair key to a slice of individually
// allocated paths — from the allocations that representation performs:
// one map entry, one []graph.Path backing array and one node array per
// path, each rounded up to the allocator's size class the way the
// runtime would round it. Deterministic by construction, so the
// committed baseline does not wobble with GC timing.
func sliceBytesPerPair(db *paths.DB, prs []paths.Pair) float64 {
	if len(prs) == 0 {
		return 0
	}
	const (
		pathHeaderBytes = 24       // slice header in the []graph.Path array
		nodeBytes       = 4        // graph.NodeID
		mapEntryBytes   = 2*8 + 24 // key + value header, ~2x for buckets
	)
	var total int64
	for _, pr := range prs {
		ps := db.Paths(pr.Src, pr.Dst)
		total += 2 * mapEntryBytes
		total += roundSizeClass(int64(len(ps)) * pathHeaderBytes)
		for _, p := range ps {
			total += roundSizeClass(int64(len(p)) * nodeBytes)
		}
	}
	return float64(total) / float64(len(prs))
}

// roundSizeClass rounds a small-object allocation up the way the Go
// allocator does: to the next size class below 1 KiB (the classes path
// node arrays and header arrays land in), to 8-byte alignment above.
func roundSizeClass(n int64) int64 {
	classes := []int64{8, 16, 24, 32, 48, 64, 80, 96, 112, 128,
		144, 160, 176, 192, 208, 224, 240, 256, 288, 320, 352, 384,
		416, 448, 480, 512, 576, 640, 704, 768, 896, 1024}
	for _, c := range classes {
		if n <= c {
			return c
		}
	}
	return (n + 7) &^ 7
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
