package paths

import (
	"bytes"
	"testing"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/xrand"
)

// TestSelectorInvariantsProperty sweeps the paper's four selectors over
// several seeded small RRGs and checks every invariant the rest of the
// pipeline (routing, simulators, serialization) silently relies on:
//
//   - every path is valid in the graph, simple (loop-free) and connects
//     exactly the requested (src, dst);
//   - path lengths within one pair's set are non-decreasing;
//   - EDKSP/rEDKSP sets are pairwise link-disjoint (checked with the
//     Yen top-up fallback disabled, which is the disjointness contract);
//   - builds at workers = 1, 2 and 8 produce byte-identical archives.
func TestSelectorInvariantsProperty(t *testing.T) {
	type instance struct {
		params jellyfish.Params
		seed   uint64
	}
	instances := []instance{
		{jellyfish.Params{N: 14, X: 10, Y: 6}, 2},
		{jellyfish.Params{N: 18, X: 10, Y: 7}, 5},
		{jellyfish.Params{N: 24, X: 12, Y: 8}, 11},
	}
	const k = 4
	for _, inst := range instances {
		topo, err := jellyfish.New(inst.params, xrand.New(inst.seed))
		if err != nil {
			t.Fatal(err)
		}
		g := topo.G
		pairs := AllOrderedPairs(g.NumNodes())
		for _, alg := range ksp.Algorithms {
			cfg := ksp.Config{Alg: alg, K: k}
			if alg.EdgeDisjoint() {
				// The disjointness property is only guaranteed without
				// the Yen top-up; k <= y keeps the fallback unnecessary
				// on these instances anyway, and disabling it makes the
				// check unconditional.
				cfg.DisableEDFallback = true
			}
			buildSeed := inst.seed * 1000003

			// Worker-count independence: byte-identical archives.
			var archive []byte
			var db *DB
			for _, workers := range []int{1, 2, 8} {
				cand := Build(g, cfg, buildSeed, pairs, workers)
				var buf bytes.Buffer
				if err := cand.Write(&buf); err != nil {
					t.Fatal(err)
				}
				if archive == nil {
					archive, db = buf.Bytes(), cand
					continue
				}
				if !bytes.Equal(buf.Bytes(), archive) {
					t.Fatalf("%v on %v: workers=%d build differs from workers=1",
						alg, inst.params, workers)
				}
			}

			for _, pr := range pairs {
				ps := db.Paths(pr.Src, pr.Dst)
				if len(ps) == 0 {
					t.Fatalf("%v on %v: pair %d->%d has no paths",
						alg, inst.params, pr.Src, pr.Dst)
				}
				prevHops := -1
				for pi, p := range ps {
					if !p.ValidIn(g) {
						t.Fatalf("%v on %v: %d->%d path %d invalid: %v",
							alg, inst.params, pr.Src, pr.Dst, pi, p)
					}
					if !p.Loopless() {
						t.Fatalf("%v on %v: %d->%d path %d has a loop: %v",
							alg, inst.params, pr.Src, pr.Dst, pi, p)
					}
					if p.Src() != pr.Src || p.Dst() != pr.Dst {
						t.Fatalf("%v on %v: %d->%d path %d endpoints %d->%d",
							alg, inst.params, pr.Src, pr.Dst, pi, p.Src(), p.Dst())
					}
					if p.Hops() < prevHops {
						t.Fatalf("%v on %v: %d->%d lengths decrease at path %d",
							alg, inst.params, pr.Src, pr.Dst, pi)
					}
					prevHops = p.Hops()
				}
				if alg.EdgeDisjoint() {
					for i := 0; i < len(ps); i++ {
						for j := i + 1; j < len(ps); j++ {
							if !ps[i].EdgeDisjoint(ps[j]) {
								t.Fatalf("%v on %v: %d->%d paths %d and %d share a link",
									alg, inst.params, pr.Src, pr.Dst, i, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestPackedViewsAliasArena pins the representation promise of the CSR
// store: the paths returned for a packed pair are views into one shared
// arena, not per-path allocations.
func TestPackedViewsAliasArena(t *testing.T) {
	g := testGraph(t)
	db := BuildAllPairs(g, ksp.Config{Alg: ksp.KSP, K: 4}, 7, 2)
	if db.st == nil {
		t.Fatal("eager build did not produce a packed store")
	}
	stats, ok := db.StoreStats()
	if !ok {
		t.Fatal("StoreStats reported no store")
	}
	if stats.Pairs != 24*23 {
		t.Fatalf("stats.Pairs = %d", stats.Pairs)
	}
	if stats.Nodes != len(db.st.arena) || stats.Paths != len(db.st.heads) {
		t.Fatalf("stats inconsistent with store: %+v", stats)
	}
	ps := db.Paths(0, 5)
	arena := db.st.arena
	for _, p := range ps {
		if len(p) == 0 {
			t.Fatal("empty packed path")
		}
		first := &p[0]
		inArena := false
		for i := range arena {
			if &arena[i] == first {
				inArena = true
				break
			}
		}
		if !inArena {
			t.Fatal("packed path does not alias the arena")
		}
		// Views are capped: appending must not clobber the neighbor path.
		if cap(p) != len(p) {
			t.Fatalf("packed path view not three-index capped: len %d cap %d", len(p), cap(p))
		}
	}
}
