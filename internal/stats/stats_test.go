package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !approx(s.Mean, 3) || !approx(s.Min, 1) || !approx(s.Max, 5) || !approx(s.P50, 3) {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of 1..5 is sqrt(2.5).
	if !approx(s.Std, math.Sqrt(2.5)) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CI95 != 0 || s.P50 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestMedianEven(t *testing.T) {
	if s := Summarize([]float64{4, 1, 3, 2}); !approx(s.P50, 2.5) {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestImprovementAndSpeedup(t *testing.T) {
	if !approx(Improvement(1.0, 0.9), 10) {
		t.Fatalf("improvement = %v", Improvement(1.0, 0.9))
	}
	if !approx(Speedup(0.8, 0.88), 10) {
		t.Fatalf("speedup = %v", Speedup(0.8, 0.88))
	}
	if Improvement(0, 5) != 0 || Speedup(0, 5) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable("Table X", "name", "value")
	tb.AddRowf("alpha", 1.5)
	tb.AddRowf("b", 42)
	out := tb.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "alpha") {
		t.Fatalf("output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `quote"d`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"d\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{2, 4}), 3) {
		t.Fatal("Mean wrong")
	}
}
