package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders grouped horizontal bars as text — the terminal
// equivalent of the paper's grouped bar figures. Groups map to the
// figures' x-axis categories (traffic patterns, path selectors) and
// series to the bar colors (selectors, routing mechanisms).
type BarChart struct {
	Title  string
	Groups []string
	Series []string
	// Values[group][series].
	Values [][]float64
	// Width is the maximum bar width in characters (default 40).
	Width int
	// Unit is appended to each printed value.
	Unit string
}

// NewBarChart creates a chart; fill Values as Values[group][series].
func NewBarChart(title string, groups, series []string) *BarChart {
	v := make([][]float64, len(groups))
	for i := range v {
		v[i] = make([]float64, len(series))
	}
	return &BarChart{Title: title, Groups: groups, Series: series, Values: v}
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	for _, row := range c.Values {
		for _, v := range row {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	labelW := 0
	for _, s := range c.Series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for gi, g := range c.Groups {
		fmt.Fprintf(&sb, "%s\n", g)
		for si, s := range c.Series {
			v := c.Values[gi][si]
			bar := 0
			if maxVal > 0 && !math.IsNaN(v) {
				bar = int(math.Round(v / maxVal * float64(width)))
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&sb, "  %-*s | %s\n", labelW, s, "n/a")
				continue
			}
			fmt.Fprintf(&sb, "  %-*s |%s %.3f%s\n", labelW, s,
				strings.Repeat("#", bar), v, c.Unit)
		}
	}
	return sb.String()
}

// FromTableData builds a chart from row-major data with group labels as
// rows and series labels as columns (the layout the exp package produces).
func FromTableData(title string, groups, series []string, values [][]float64) *BarChart {
	c := NewBarChart(title, groups, series)
	for gi := range groups {
		copy(c.Values[gi], values[gi])
	}
	return c
}
