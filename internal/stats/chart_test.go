package stats

import (
	"math"
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := NewBarChart("Figure X", []string{"perm", "shift"}, []string{"KSP", "rEDKSP"})
	c.Values[0][0] = 0.8
	c.Values[0][1] = 1.0
	c.Values[1][0] = 0.5
	c.Values[1][1] = 0.6
	c.Width = 10
	out := c.String()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "perm") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// The max value gets the full width of '#'.
	if !strings.Contains(out, strings.Repeat("#", 10)+" 1.000") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	// 0.5 of max renders as half the width.
	if !strings.Contains(out, strings.Repeat("#", 5)+" 0.500") {
		t.Fatalf("half bar wrong:\n%s", out)
	}
}

func TestBarChartNaN(t *testing.T) {
	c := NewBarChart("", []string{"g"}, []string{"a"})
	c.Values[0][0] = math.NaN()
	if !strings.Contains(c.String(), "n/a") {
		t.Fatalf("NaN not rendered as n/a:\n%s", c.String())
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("", []string{"g"}, []string{"a", "b"})
	out := c.String() // all zeros: no panic, no bars
	if strings.Contains(out, "#") {
		t.Fatalf("zero chart has bars:\n%s", out)
	}
}

func TestFromTableData(t *testing.T) {
	c := FromTableData("t", []string{"g1"}, []string{"s1", "s2"}, [][]float64{{1, 2}})
	if c.Values[0][1] != 2 {
		t.Fatal("values not copied")
	}
}

func TestBarChartUnit(t *testing.T) {
	c := NewBarChart("", []string{"g"}, []string{"a"})
	c.Values[0][0] = 3
	c.Unit = "ms"
	if !strings.Contains(c.String(), "3.000ms") {
		t.Fatalf("unit missing:\n%s", c.String())
	}
}
