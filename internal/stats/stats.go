// Package stats provides the small statistical aggregation and report
// formatting used by the experiment harness: summaries with confidence
// intervals, and aligned-text / CSV table rendering for reproducing the
// paper's tables and figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary aggregates a sample of float64 observations.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	CI95      float64 // half-width of the 95% confidence interval
	P50       float64
}

// Summarize computes a Summary. An empty input returns the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
		// Normal approximation: adequate for the >= 10-sample experiment
		// repetitions used here.
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(len(xs)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.P50 = sorted[mid]
	} else {
		s.P50 = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean is a convenience for Summarize(xs).Mean.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Improvement returns the percentage by which newVal improves over
// baseline when smaller is better (e.g. communication time):
// (baseline-new)/baseline * 100.
func Improvement(baseline, newVal float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - newVal) / baseline * 100
}

// Speedup returns the percentage by which newVal improves over baseline
// when larger is better (e.g. throughput): (new-baseline)/baseline * 100.
func Speedup(baseline, newVal float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (newVal - baseline) / baseline * 100
}

// Table accumulates rows and renders them as aligned text or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with 3 decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(row...)
}

// String renders the aligned-text form.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the comma-separated form (quoting cells that contain commas
// or quotes).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
