// Package jellyfish builds the Jellyfish interconnect topology of Singla et
// al. (NSDI'12): a random regular graph (RRG) at the switch level with a
// fixed number of compute terminals per switch.
//
// A topology RRG(N, x, y) has N switches of x ports each; y ports per
// switch connect to other switches and x-y ports connect to compute nodes.
// Construction uses the configuration (stub-matching) model with swap
// repair: every switch contributes y port stubs, a uniform random perfect
// matching over the stubs proposes the edges, and conflicting proposals
// (self loops, parallel edges) are repaired by swapping endpoints with
// randomly chosen good edges — the same repair move Jellyfish's
// incremental-growth description uses. The result is exactly y-regular and
// is retried until connected, which for y >= 3 virtually always succeeds on
// the first try.
package jellyfish

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Topology is an immutable Jellyfish instance: the switch-level RRG plus
// the terminal (compute node) attachment.
type Topology struct {
	// G is the switch-level random regular graph.
	G *graph.Graph
	// N is the switch count, X the ports per switch, Y the network ports
	// per switch.
	N, X, Y int
}

// Params mirrors the paper's RRG(N, x, y) notation.
type Params struct {
	N int // switches
	X int // ports per switch
	Y int // ports per switch used for switch-to-switch links
}

// String renders the parameters in the paper's notation.
func (p Params) String() string { return fmt.Sprintf("RRG(%d,%d,%d)", p.N, p.X, p.Y) }

// Validate reports whether the parameters describe a constructible
// Jellyfish.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return errors.New("jellyfish: need at least 2 switches")
	case p.Y < 1:
		return errors.New("jellyfish: need at least 1 network port per switch")
	case p.Y >= p.N:
		return fmt.Errorf("jellyfish: degree y=%d must be < N=%d", p.Y, p.N)
	case p.X < p.Y:
		return fmt.Errorf("jellyfish: ports x=%d must be >= network ports y=%d", p.X, p.Y)
	case p.N*p.Y%2 != 0:
		return fmt.Errorf("jellyfish: N*y = %d*%d must be even", p.N, p.Y)
	}
	return nil
}

// maxBuildAttempts bounds the retry loop for disconnected instances. With
// y >= 3 a random regular graph is connected with overwhelming probability,
// so hitting this bound indicates a pathological parameter choice.
const maxBuildAttempts = 64

// New constructs a Jellyfish topology from the given parameters using rng.
// The same parameters and RNG state always produce the same instance.
func New(p Params, rng *xrand.RNG) (*Topology, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < maxBuildAttempts; attempt++ {
		g, err := buildRRG(p.N, p.Y, rng)
		if err != nil {
			// Swap repair can lock up on tiny, near-complete graphs; a
			// fresh random matching almost always succeeds.
			lastErr = err
			continue
		}
		if g.IsConnected() {
			return &Topology{G: g, N: p.N, X: p.X, Y: p.Y}, nil
		}
		lastErr = fmt.Errorf("jellyfish: %v instance disconnected", p)
	}
	return nil, fmt.Errorf("jellyfish: giving up after %d attempts: %w", maxBuildAttempts, lastErr)
}

// MustNew is New for parameters known to be valid; it panics on error.
func MustNew(p Params, rng *xrand.RNG) *Topology {
	t, err := New(p, rng)
	if err != nil {
		panic(err)
	}
	return t
}

// buildRRG creates one y-regular graph on n nodes with the configuration
// model: a random perfect matching over n*y port stubs, followed by swap
// repair of self loops and parallel edges.
func buildRRG(n, y int, rng *xrand.RNG) (*graph.Graph, error) {
	stubs := make([]graph.NodeID, 0, n*y)
	for i := 0; i < n; i++ {
		for j := 0; j < y; j++ {
			stubs = append(stubs, graph.NodeID(i))
		}
	}
	xrand.ShuffleSlice(rng, stubs)

	type pair struct{ u, v graph.NodeID }
	pairs := make([]pair, 0, n*y/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		pairs = append(pairs, pair{stubs[i], stubs[i+1]})
	}

	// Edge multiset: counts how many proposed pairs map to each undirected
	// edge key (self loops keyed on (u,u)).
	counts := make(map[uint64]int, len(pairs))
	key := func(p pair) uint64 { return graph.UndirectedEdgeKey(p.u, p.v) }
	for _, p := range pairs {
		counts[key(p)]++
	}
	isBad := func(p pair) bool { return p.u == p.v || counts[key(p)] > 1 }

	// Repair: for every conflicting pair, swap one endpoint with a random
	// other pair when the two resulting edges are both simple and new.
	maxAttempts := 256 * len(pairs)
	attempts := 0
	for {
		badIdx := -1
		for i, p := range pairs {
			if isBad(p) {
				badIdx = i
				break
			}
		}
		if badIdx < 0 {
			break
		}
		for ; ; attempts++ {
			if attempts >= maxAttempts {
				return nil, fmt.Errorf("jellyfish: swap repair did not converge (n=%d, y=%d)", n, y)
			}
			j := rng.IntNExcept(len(pairs), badIdx)
			a, b := pairs[badIdx], pairs[j]
			// Candidate rewiring: (a.u, b.u) and (a.v, b.v), with the
			// other orientation as fallback.
			cand := [2][2]pair{
				{{a.u, b.u}, {a.v, b.v}},
				{{a.u, b.v}, {a.v, b.u}},
			}
			swapped := false
			for _, c := range cand {
				n1, n2 := c[0], c[1]
				if n1.u == n1.v || n2.u == n2.v {
					continue
				}
				k1, k2 := key(n1), key(n2)
				if k1 == k2 || counts[k1] > 0 || counts[k2] > 0 {
					continue
				}
				counts[key(a)]--
				counts[key(b)]--
				counts[k1]++
				counts[k2]++
				pairs[badIdx], pairs[j] = n1, n2
				swapped = true
				break
			}
			if swapped {
				break
			}
		}
	}

	gb := graph.NewBuilder(n)
	for _, p := range pairs {
		if !gb.AddEdge(p.u, p.v) {
			return nil, fmt.Errorf("jellyfish: internal error, duplicate edge %d-%d after repair", p.u, p.v)
		}
	}
	return gb.Graph(), nil
}

// TerminalsPerSwitch returns x-y, the number of compute nodes attached to
// each switch.
func (t *Topology) TerminalsPerSwitch() int { return t.X - t.Y }

// NumTerminals returns the total number of compute nodes.
func (t *Topology) NumTerminals() int { return t.N * (t.X - t.Y) }

// SwitchOf returns the switch that terminal term attaches to. Terminals are
// numbered 0..NumTerminals-1 with terminal i on switch i/(x-y).
func (t *Topology) SwitchOf(term int) graph.NodeID {
	if term < 0 || term >= t.NumTerminals() {
		panic(fmt.Sprintf("jellyfish: terminal %d out of range [0,%d)", term, t.NumTerminals()))
	}
	return graph.NodeID(term / (t.X - t.Y))
}

// FirstTerminalOf returns the lowest terminal id attached to sw; terminals
// of sw are FirstTerminalOf(sw) .. FirstTerminalOf(sw)+TerminalsPerSwitch-1.
func (t *Topology) FirstTerminalOf(sw graph.NodeID) int {
	return int(sw) * (t.X - t.Y)
}

// Params returns the construction parameters.
func (t *Topology) Params() Params { return Params{N: t.N, X: t.X, Y: t.Y} }

// Metrics computes the switch-level distance metrics reported in the
// paper's Table I.
func (t *Topology) Metrics(workers int) graph.Metrics {
	return graph.ComputeMetrics(t.G, workers)
}

// Paper topologies (Table I).
var (
	// Small is RRG(36, 24, 16): 36 switches, 288 compute nodes.
	Small = Params{N: 36, X: 24, Y: 16}
	// Medium is RRG(720, 24, 19): 720 switches, 3600 compute nodes.
	Medium = Params{N: 720, X: 24, Y: 19}
	// Large is RRG(2880, 48, 38): 2880 switches, 28800 compute nodes.
	Large = Params{N: 2880, X: 48, Y: 38}
)

// ByName resolves "small", "medium" or "large" to the paper's topologies.
func ByName(name string) (Params, error) {
	switch name {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return Params{}, fmt.Errorf("jellyfish: unknown topology %q (want small, medium or large)", name)
}
