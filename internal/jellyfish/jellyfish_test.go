package jellyfish

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{N: 36, X: 24, Y: 16}, true},
		{Params{N: 720, X: 24, Y: 19}, true},
		{Params{N: 2880, X: 48, Y: 38}, true},
		{Params{N: 1, X: 4, Y: 3}, false},  // too few switches
		{Params{N: 10, X: 4, Y: 0}, false}, // no network ports
		{Params{N: 10, X: 3, Y: 4}, false}, // x < y
		{Params{N: 4, X: 8, Y: 5}, false},  // N*y odd
		{Params{N: 4, X: 10, Y: 4}, false}, // y >= N
		{Params{N: 10, X: 4, Y: 4}, true},  // zero terminals is legal
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%v: Validate = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestNewSmallIsRegularAndConnected(t *testing.T) {
	topo := MustNew(Small, xrand.New(1))
	d, reg := topo.G.IsRegular()
	if !reg || d != Small.Y {
		t.Fatalf("degree = %d regular=%v, want %d", d, reg, Small.Y)
	}
	if !topo.G.IsConnected() {
		t.Fatal("small topology disconnected")
	}
	if topo.G.NumNodes() != 36 {
		t.Fatalf("nodes = %d", topo.G.NumNodes())
	}
	if topo.G.NumEdges() != 36*16/2 {
		t.Fatalf("edges = %d, want %d", topo.G.NumEdges(), 36*16/2)
	}
}

func TestNewMediumIsRegularAndConnected(t *testing.T) {
	topo := MustNew(Medium, xrand.New(2))
	d, reg := topo.G.IsRegular()
	if !reg || d != Medium.Y {
		t.Fatalf("degree = %d regular=%v", d, reg)
	}
	if !topo.G.IsConnected() {
		t.Fatal("medium topology disconnected")
	}
}

func TestRegularityProperty(t *testing.T) {
	rng := xrand.New(7)
	f := func(nRaw, yRaw uint8) bool {
		n := int(nRaw%40) + 4
		y := int(yRaw%6) + 3
		if y >= n {
			y = n - 1
		}
		if n*y%2 != 0 {
			n++
		}
		p := Params{N: n, X: y + 2, Y: y}
		if p.Validate() != nil {
			return true // skip invalid combos
		}
		topo, err := New(p, rng.Split())
		if err != nil {
			t.Logf("build %v failed: %v", p, err)
			return false
		}
		d, reg := topo.G.IsRegular()
		return reg && d == y && topo.G.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := MustNew(Small, xrand.New(99))
	b := MustNew(Small, xrand.New(99))
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for u := graph.NodeID(0); int(u) < a.N; u++ {
		na, nb := a.G.Neighbors(u), b.G.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("degrees differ at %d", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency differs at %d", u)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := MustNew(Small, xrand.New(1))
	b := MustNew(Small, xrand.New(2))
	same := true
	for u := graph.NodeID(0); int(u) < a.N && same; u++ {
		na, nb := a.G.Neighbors(u), b.G.Neighbors(u)
		for i := range na {
			if na[i] != nb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two seeds produced identical instances")
	}
}

func TestTerminals(t *testing.T) {
	topo := MustNew(Small, xrand.New(3))
	if topo.TerminalsPerSwitch() != 8 {
		t.Fatalf("terminals per switch = %d", topo.TerminalsPerSwitch())
	}
	if topo.NumTerminals() != 288 {
		t.Fatalf("total terminals = %d", topo.NumTerminals())
	}
	if topo.SwitchOf(0) != 0 || topo.SwitchOf(7) != 0 || topo.SwitchOf(8) != 1 {
		t.Fatal("terminal-to-switch mapping wrong")
	}
	if topo.SwitchOf(287) != 35 {
		t.Fatalf("last terminal on switch %d", topo.SwitchOf(287))
	}
	if topo.FirstTerminalOf(2) != 16 {
		t.Fatalf("FirstTerminalOf(2) = %d", topo.FirstTerminalOf(2))
	}
}

func TestSwitchOfPanicsOutOfRange(t *testing.T) {
	topo := MustNew(Small, xrand.New(3))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range terminal")
		}
	}()
	topo.SwitchOf(288)
}

func TestMetricsSmallMatchesTableI(t *testing.T) {
	// Table I: RRG(36,24,16) has average shortest path length 1.54. RRG
	// instances vary, so accept a small band around the paper's value.
	topo := MustNew(Small, xrand.New(4))
	m := topo.Metrics(0)
	if !m.Connected {
		t.Fatal("disconnected")
	}
	if m.AvgShortestPath < 1.45 || m.AvgShortestPath > 1.65 {
		t.Fatalf("avg shortest path = %.3f, paper reports 1.54", m.AvgShortestPath)
	}
	if m.Diameter > 3 {
		t.Fatalf("diameter = %d, implausible for RRG(36,24,16)", m.Diameter)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("huge"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}

func TestParamsString(t *testing.T) {
	if s := Small.String(); s != "RRG(36,24,16)" {
		t.Fatalf("String = %q", s)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Params{N: 4, X: 8, Y: 5}, xrand.New(1)); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestNoSelfLoopsOrParallelEdges(t *testing.T) {
	// The graph.Builder would panic on self loops and silently dedupe
	// parallel edges; exact regularity plus edge count proves neither
	// occurred.
	for seed := uint64(0); seed < 5; seed++ {
		topo := MustNew(Params{N: 20, X: 8, Y: 6}, xrand.New(seed))
		if topo.G.NumEdges() != 20*6/2 {
			t.Fatalf("seed %d: edges = %d, want 60", seed, topo.G.NumEdges())
		}
		if d, reg := topo.G.IsRegular(); !reg || d != 6 {
			t.Fatalf("seed %d: not 6-regular", seed)
		}
	}
}

func TestParamsAccessor(t *testing.T) {
	topo := MustNew(Params{N: 10, X: 6, Y: 4}, xrand.New(1))
	if topo.Params() != (Params{N: 10, X: 6, Y: 4}) {
		t.Fatalf("Params = %+v", topo.Params())
	}
}
