package jellyfish

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestTopologyRoundTrip(t *testing.T) {
	orig := MustNew(Params{N: 20, X: 10, Y: 6}, xrand.New(9))
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != orig.N || got.X != orig.X || got.Y != orig.Y {
		t.Fatalf("params changed: %+v", got.Params())
	}
	for u := graph.NodeID(0); int(u) < orig.N; u++ {
		a, b := orig.G.Neighbors(u), got.G.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("degree differs at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency differs at %d", u)
			}
		}
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("WHAT 1\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadRejectsIrregular(t *testing.T) {
	in := "JELLYFISH 1\nparams 4 4 2\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 0\nedge 0 2\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("irregular graph accepted")
	}
}

func TestReadRejectsDuplicateEdge(t *testing.T) {
	in := "JELLYFISH 1\nparams 4 4 2\nedge 0 1\nedge 1 0\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestReadRejectsDisconnected(t *testing.T) {
	// Two disjoint squares: 2-regular but disconnected.
	in := "JELLYFISH 1\nparams 8 4 2\n" +
		"edge 0 1\nedge 1 2\nedge 2 3\nedge 0 3\n" +
		"edge 4 5\nedge 5 6\nedge 6 7\nedge 4 7\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestReadRejectsBadParams(t *testing.T) {
	if _, err := Read(strings.NewReader("JELLYFISH 1\nparams 4 2 3\n")); err == nil {
		t.Fatal("invalid params accepted")
	}
}
