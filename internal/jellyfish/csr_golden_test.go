package jellyfish

// Golden fingerprints and the shared-graph concurrency smoke for the
// CSR-packed graph core. The fingerprint values were captured from the
// pre-CSR slice implementation (commit 95046a2): JFPC path-cache keys and
// jfserve topology keys embed Graph.Fingerprint, so these constants must
// never move — a drift means every archived path cache silently misses.

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestFingerprintGoldenInstances(t *testing.T) {
	cases := []struct {
		p    Params
		seed uint64
		want uint64
	}{
		{Params{N: 36, X: 24, Y: 16}, 1, 0x598287c2a37cdb06},
		{Params{N: 36, X: 24, Y: 16}, 7, 0x688ce37223559bf6},
		{Params{N: 720, X: 24, Y: 19}, 1, 0x28f4c2a7a2389171},
		{Params{N: 100, X: 12, Y: 8}, 42, 0xcf6dc4e6eb2544c6},
		{Params{N: 250, X: 16, Y: 11}, 3, 0xcbdf40e9874c62a6},
	}
	for _, c := range cases {
		topo := MustNew(c.p, xrand.New(c.seed))
		if got := topo.G.Fingerprint(); got != c.want {
			t.Errorf("%v seed %d: Fingerprint = 0x%016x, want 0x%016x (cache keys broken)",
				c.p, c.seed, got, c.want)
		}
	}
}

// TestParallelAllPairsBFSSharedGraph builds a 10k-scale-track instance —
// RRG(2000,24,19), past the old dense-link-table gate — and runs a
// parallel all-pairs BFS plus concurrent link-table readers over the one
// shared packed graph. Run under -race by `make check` (race-graph): the
// packed arrays must be read-only after Builder.Graph freezes them.
func TestParallelAllPairsBFSSharedGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("builds RRG(2000,24,19); skipped in -short")
	}
	p := Params{N: 2000, X: 24, Y: 19}
	topo := MustNew(p, xrand.New(1))
	g := topo.G
	if d, reg := g.IsRegular(); !reg || d != p.Y {
		t.Fatalf("instance not %d-regular", p.Y)
	}

	// Concurrent link-table readers race against the BFS workers: every
	// link resolved through the O(1) tables and back.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			n := int32(g.NumDirectedLinks())
			for i := 0; ; i++ {
				if i%1024 == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
				l := int32(rng.IntN(int(n)))
				u, v := g.LinkEndpoints(l)
				if g.LinkID(u, v) != l {
					panic("link round trip failed")
				}
				if g.ReverseLink(g.ReverseLink(l)) != l {
					panic("reverse link not an involution")
				}
			}
		}(uint64(w) + 11)
	}

	m := graph.ComputeMetrics(g, runtime.GOMAXPROCS(0))
	close(stop)
	wg.Wait()

	if !m.Connected {
		t.Fatal("RRG(2000,24,19) reported disconnected")
	}
	if m.Diameter < 2 || m.Diameter > 6 {
		t.Fatalf("implausible diameter %d", m.Diameter)
	}
	if m.AvgShortestPath < 1.5 || m.AvgShortestPath > float64(m.Diameter) {
		t.Fatalf("implausible average shortest path %.3f", m.AvgShortestPath)
	}
}
