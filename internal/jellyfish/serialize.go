package jellyfish

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// Write serializes the topology in a line-oriented, diff-friendly format:
//
//	JELLYFISH 1
//	params <N> <x> <y>
//	edge <u> <v>      (one per undirected edge, u < v)
//
// so a specific RRG instance can be archived next to experiment results
// and reloaded bit-identically.
func (t *Topology) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "JELLYFISH 1\nparams %d %d %d\n", t.N, t.X, t.Y); err != nil {
		return err
	}
	for u, v := range t.G.Edges() {
		if _, err := fmt.Fprintf(bw, "edge %d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a topology written by Write, validating regularity and
// connectivity.
func Read(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	hdr, ok := next()
	if !ok || hdr != "JELLYFISH 1" {
		return nil, fmt.Errorf("jellyfish: bad header %q", hdr)
	}
	ps, ok := next()
	if !ok {
		return nil, fmt.Errorf("jellyfish: missing params line")
	}
	var p Params
	if _, err := fmt.Sscanf(ps, "params %d %d %d", &p.N, &p.X, &p.Y); err != nil {
		return nil, fmt.Errorf("jellyfish: line %d: %v", line, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(p.N)
	for {
		s, ok := next()
		if !ok {
			break
		}
		var u, v graph.NodeID
		if _, err := fmt.Sscanf(s, "edge %d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("jellyfish: line %d: %v", line, err)
		}
		if u < 0 || int(u) >= p.N || v < 0 || int(v) >= p.N || u == v {
			return nil, fmt.Errorf("jellyfish: line %d: bad edge %d-%d", line, u, v)
		}
		if !b.AddEdge(u, v) {
			return nil, fmt.Errorf("jellyfish: line %d: duplicate edge %d-%d", line, u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Graph()
	if d, reg := g.IsRegular(); !reg || d != p.Y {
		return nil, fmt.Errorf("jellyfish: graph is not %d-regular", p.Y)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("jellyfish: graph is disconnected")
	}
	return &Topology{G: g, N: p.N, X: p.X, Y: p.Y}, nil
}
