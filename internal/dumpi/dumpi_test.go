package dumpi

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/traffic"
)

func TestGenerate(t *testing.T) {
	tr := Generate(traffic.Stencil2DNN, 36, 1000)
	if tr.App != "2DNN" || tr.Ranks != 36 {
		t.Fatalf("trace = %+v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Sends) != 36*4 {
		t.Fatalf("sends = %d", len(tr.Sends))
	}
	if tr.TotalBytes() != 36*1000 {
		t.Fatalf("total = %d", tr.TotalBytes())
	}
}

func TestRoundTrip(t *testing.T) {
	for _, kind := range traffic.StencilKinds {
		orig := Generate(kind, 64, 5000)
		var buf bytes.Buffer
		if err := orig.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got.App != orig.App || got.Ranks != orig.Ranks || len(got.Sends) != len(orig.Sends) {
			t.Fatalf("%v: header mismatch: %+v", kind, got)
		}
		for i := range got.Sends {
			if got.Sends[i] != orig.Sends[i] {
				t.Fatalf("%v: send %d: %+v vs %+v", kind, i, got.Sends[i], orig.Sends[i])
			}
		}
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("NOT-A-TRACE\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadRejectsBadRecord(t *testing.T) {
	in := "DUMPI-SYNTH 1\napp x\nranks 4\nfrobnicate 1 2 3\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("unknown record accepted")
	}
}

func TestReadRejectsOutOfRangeSend(t *testing.T) {
	in := "DUMPI-SYNTH 1\napp x\nranks 4\nsend 0 9 100\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("out-of-range send accepted")
	}
}

func TestValidateSelfSend(t *testing.T) {
	tr := Trace{App: "x", Ranks: 3, Sends: []traffic.SizedFlow{{Src: 1, Dst: 1, Bytes: 5}}}
	if tr.Validate() == nil {
		t.Fatal("self send accepted")
	}
}

func TestWorkloadConversion(t *testing.T) {
	tr := Generate(traffic.Stencil3DNN, 27, 600)
	w := tr.Workload()
	if w.Name != "3DNN" || w.NumRanks != 27 || len(w.Flows) != len(tr.Sends) {
		t.Fatalf("workload = %+v", w)
	}
}

func TestSkipsBlankLines(t *testing.T) {
	in := "DUMPI-SYNTH 1\n\napp x\n\nranks 2\nsend 0 1 7\n\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sends) != 1 || tr.Sends[0].Bytes != 7 {
		t.Fatalf("trace = %+v", tr)
	}
}
