// Package dumpi generates and (de)serializes synthetic communication
// traces standing in for the SST/DUMPI MPI traces the paper collects for
// its CODES experiments. The paper's methodology uses only two properties
// of those traces — the logical stencil communication pattern (which
// neighbour ranks each rank sends to) and the per-rank send volume (15 MB
// split across neighbours) — both of which are fully specified in the
// text, so a synthetic trace exercises the same simulator code paths.
//
// The on-disk format is line-oriented and self-describing:
//
//	DUMPI-SYNTH 1
//	app 2DNN
//	ranks 3600
//	send <src> <dst> <bytes>
//	...
package dumpi

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/traffic"
)

// Trace is a synthetic communication trace: one communication phase of an
// application, as rank-level sized sends.
type Trace struct {
	// App names the application/pattern (e.g. "2DNN").
	App string
	// Ranks is the number of MPI ranks.
	Ranks int
	// Sends lists every rank-level send of the phase.
	Sends []traffic.SizedFlow
}

// Generate builds the trace for one of the paper's stencil workloads.
func Generate(kind traffic.StencilKind, ranks int, totalBytes int64) Trace {
	w := traffic.Stencil(traffic.StencilConfig{Kind: kind, Ranks: ranks, TotalBytes: totalBytes})
	return Trace{App: w.Name, Ranks: w.NumRanks, Sends: w.Flows}
}

// Workload converts the trace back into a traffic.Workload.
func (t Trace) Workload() traffic.Workload {
	return traffic.Workload{Name: t.App, NumRanks: t.Ranks, Flows: t.Sends}
}

// TotalBytes sums all send volumes.
func (t Trace) TotalBytes() int64 {
	var sum int64
	for _, s := range t.Sends {
		sum += s.Bytes
	}
	return sum
}

// Validate checks rank bounds and self-sends.
func (t Trace) Validate() error {
	if t.Ranks < 1 {
		return fmt.Errorf("dumpi: invalid rank count %d", t.Ranks)
	}
	for i, s := range t.Sends {
		if s.Src < 0 || s.Src >= t.Ranks || s.Dst < 0 || s.Dst >= t.Ranks {
			return fmt.Errorf("dumpi: send %d endpoints out of range: %+v", i, s)
		}
		if s.Src == s.Dst {
			return fmt.Errorf("dumpi: send %d is a self send", i)
		}
		if s.Bytes < 0 {
			return fmt.Errorf("dumpi: send %d has negative volume", i)
		}
	}
	return nil
}

// Write serializes the trace.
func (t Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "DUMPI-SYNTH 1\napp %s\nranks %d\n", t.App, t.Ranks); err != nil {
		return err
	}
	for _, s := range t.Sends {
		if _, err := fmt.Fprintf(bw, "send %d %d %d\n", s.Src, s.Dst, s.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var t Trace
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	hdr, ok := next()
	if !ok || hdr != "DUMPI-SYNTH 1" {
		return t, fmt.Errorf("dumpi: bad header %q", hdr)
	}
	for {
		s, ok := next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(s, "app "):
			t.App = strings.TrimSpace(s[4:])
		case strings.HasPrefix(s, "ranks "):
			if _, err := fmt.Sscanf(s, "ranks %d", &t.Ranks); err != nil {
				return t, fmt.Errorf("dumpi: line %d: %v", line, err)
			}
		case strings.HasPrefix(s, "send "):
			var f traffic.SizedFlow
			if _, err := fmt.Sscanf(s, "send %d %d %d", &f.Src, &f.Dst, &f.Bytes); err != nil {
				return t, fmt.Errorf("dumpi: line %d: %v", line, err)
			}
			t.Sends = append(t.Sends, f)
		default:
			return t, fmt.Errorf("dumpi: line %d: unknown record %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	return t, t.Validate()
}
