package faults

import (
	"testing"
)

// FuzzScheduleParse feeds arbitrary text through Parse. Valid inputs must
// round-trip — formatting the parsed schedule and parsing again yields the
// identical schedule — and invalid inputs must produce an error, never a
// panic.
func FuzzScheduleParse(f *testing.F) {
	f.Add("FAULTS 1\n")
	f.Add("FAULTS 1\ndown 100 0 1\nup 200 0 1\n")
	f.Add("FAULTS 1\n# comment\n\n  down 5 3 4\n")
	f.Add("FAULTS 1\ndown 9223372036854775807 2147483647 0\n")
	f.Add("PATHS 1\ndown 1 0 1\n")
	f.Add("FAULTS 1\ndown -1 0 1\n")
	f.Add("FAULTS 1\nup 0 7 7\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseString(input)
		if err != nil {
			return
		}
		text := s.Format()
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("Format output failed to parse: %v\n%s", err, text)
		}
		if back.Format() != text {
			t.Fatalf("round trip not fixed:\n%q\nvs\n%q", text, back.Format())
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed event count: %d vs %d", s.Len(), back.Len())
		}
	})
}
