package faults

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// ring builds a cycle graph 0-1-...-(n-1)-0.
func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Graph()
}

func TestFaultScheduleSorting(t *testing.T) {
	s, err := NewSchedule([]Event{
		{At: 300, U: 0, V: 1},
		{At: 100, U: 1, V: 2},
		{At: 300, Up: true, U: 1, V: 2},
		{At: 200, U: 2, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events()
	wantAt := []int64{100, 200, 300, 300}
	for i, e := range ev {
		if e.At != wantAt[i] {
			t.Fatalf("event %d at %d, want %d", i, e.At, wantAt[i])
		}
	}
	// Stable: the two cycle-300 events keep their given order.
	if ev[2].Up || !ev[3].Up {
		t.Fatalf("same-cycle events reordered: %v, %v", ev[2], ev[3])
	}
}

func TestFaultScheduleValidation(t *testing.T) {
	for _, bad := range [][]Event{
		{{At: -1, U: 0, V: 1}},
		{{At: 0, U: 3, V: 3}},
		{{At: 0, U: -2, V: 1}},
	} {
		if _, err := NewSchedule(bad); err == nil {
			t.Fatalf("NewSchedule(%v) succeeded", bad)
		}
	}
	var nilSched *Schedule
	if nilSched.Len() != 0 || !nilSched.Empty() || nilSched.Events() != nil {
		t.Fatal("nil schedule is not empty")
	}
}

func TestFaultRandomDeterministic(t *testing.T) {
	g := ring(16)
	a, err := Random(g, 4, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Random(g, 4, 1000, 42)
	if a.Format() != b.Format() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a.Format(), b.Format())
	}
	c, _ := Random(g, 4, 1000, 43)
	if a.Format() == c.Format() {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Len() != 4 {
		t.Fatalf("got %d events, want 4", a.Len())
	}
	seen := map[uint64]struct{}{}
	for _, e := range a.Events() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("event %v on non-edge", e)
		}
		key := graph.UndirectedEdgeKey(e.U, e.V)
		if _, dup := seen[key]; dup {
			t.Fatalf("edge {%d,%d} failed twice", e.U, e.V)
		}
		seen[key] = struct{}{}
	}
	if _, err := Random(g, 17, 0, 1); err == nil {
		t.Fatal("failing more links than exist succeeded")
	}
}

func TestFaultTargeted(t *testing.T) {
	col := telemetry.NewCollector()
	col.Init(telemetry.Config{Links: []telemetry.LinkInfo{
		{Kind: telemetry.KindNet, Src: 0, Dst: 1},
		{Kind: telemetry.KindNet, Src: 1, Dst: 0},
		{Kind: telemetry.KindNet, Src: 1, Dst: 2},
		{Kind: telemetry.KindNet, Src: 2, Dst: 1},
		{Kind: telemetry.KindInject, Src: 0, Dst: 0},
	}})
	// Edge {1,2} is hotter (5 flits on its hottest direction) than {0,1}
	// (3 flits); the injection link must be ignored.
	for i := 0; i < 3; i++ {
		col.CountForward(1)
	}
	for i := 0; i < 5; i++ {
		col.CountForward(3)
	}
	for i := 0; i < 9; i++ {
		col.CountForward(4)
	}
	s, err := Targeted(col, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	ev := s.Events()
	if len(ev) != 1 || ev[0].U != 1 || ev[0].V != 2 || ev[0].At != 500 {
		t.Fatalf("Targeted picked %v, want down 500 1 2", ev)
	}
	if _, err := Targeted(telemetry.NewCollector(), 1, 0); err == nil {
		t.Fatal("Targeted on uninitialized collector succeeded")
	}
}

func TestFaultRoundTrip(t *testing.T) {
	g := ring(8)
	s, err := Random(g, 3, 250, 7)
	if err != nil {
		t.Fatal(err)
	}
	up, _ := NewSchedule(append(s.Events(), Event{At: 900, Up: true, U: s.Events()[0].U, V: s.Events()[0].V}))
	text := up.Format()
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Format() != text {
		t.Fatalf("round trip changed schedule:\n%s\nvs\n%s", text, back.Format())
	}
}

func TestFaultParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"PATHS 1\n",
		"FAULTS 1\ndown 5 0\n",
		"FAULTS 1\nsideways 5 0 1\n",
		"FAULTS 1\ndown x 0 1\n",
		"FAULTS 1\ndown 5 x 1\n",
		"FAULTS 1\ndown 5 0 x\n",
		"FAULTS 1\ndown -5 0 1\n",
		"FAULTS 1\ndown 5 0 0\n",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Fatalf("ParseString(%q) succeeded", bad)
		}
	}
	// Comments and blank lines are fine.
	s, err := ParseString("# header comment\n\nFAULTS 1\n# event\n  down 5 0 1  \n\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("got %d events, want 1", s.Len())
	}
}

func TestFaultParseSpec(t *testing.T) {
	g := ring(10)
	for _, spec := range []string{"", "none"} {
		s, err := ParseSpec(spec, g, 1)
		if err != nil || !s.Empty() {
			t.Fatalf("ParseSpec(%q) = %v, %v; want empty", spec, s, err)
		}
	}
	s, err := ParseSpec("random:2@100,3@200", g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("got %d events, want 5", s.Len())
	}
	again, _ := ParseSpec("random:2@100,3@200", g, 5)
	if s.Format() != again.Format() {
		t.Fatal("ParseSpec random form is not deterministic")
	}
	for _, bad := range []string{"random:x@100", "random:2@x", "random:2", "/nonexistent/file"} {
		if _, err := ParseSpec(bad, g, 1); err == nil {
			t.Fatalf("ParseSpec(%q) succeeded", bad)
		}
	}
}

func TestFaultStateAdvance(t *testing.T) {
	g := ring(6)
	sched := MustSchedule([]Event{
		{At: 10, U: 0, V: 1},
		{At: 10, U: 2, V: 3},
		{At: 50, Up: true, U: 0, V: 1},
	})
	st, err := NewState(g, sched, Policy{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Active() || st.NextEventAt() != 10 {
		t.Fatal("state active before any event")
	}
	if got := st.Advance(9); got != nil {
		t.Fatalf("Advance(9) fired %v", got)
	}
	fired := st.Advance(10)
	if len(fired) != 2 || !st.Active() || st.DownCount() != 2 {
		t.Fatalf("Advance(10): fired=%v down=%d", fired, st.DownCount())
	}
	if !st.LinkDown(g.LinkID(0, 1)) || !st.LinkDown(g.LinkID(1, 0)) {
		t.Fatal("directed links of failed edge not down")
	}
	if !st.EdgeDown(3, 2) {
		t.Fatal("edge {2,3} not down")
	}
	if st.LinkDown(g.LinkID(4, 5)) {
		t.Fatal("healthy link reported down")
	}
	fired = st.Advance(100)
	if len(fired) != 1 || st.DownCount() != 1 || st.EdgeDown(0, 1) {
		t.Fatalf("up event not applied: fired=%v down=%d", fired, st.DownCount())
	}
	if st.Done() {
		t.Fatal("Done() true while edge {2,3} is still down")
	}
	if st.NextEventAt() != -1 {
		t.Fatal("events remain after the schedule drained")
	}
	downs, ups, _ := st.Counters()
	if downs != 2 || ups != 1 {
		t.Fatalf("counters = %d downs, %d ups", downs, ups)
	}
	// Events on non-edges are rejected at construction.
	if _, err := NewState(g, MustSchedule([]Event{{U: 0, V: 3}}), Policy{}, nil, 0); err == nil {
		t.Fatal("NewState accepted event on non-edge")
	}
}

func TestFaultLiveMaskAndCandidates(t *testing.T) {
	g := ring(6)
	// Two candidate 0→3 paths: clockwise 0-1-2-3 and counterclockwise
	// 0-5-4-3.
	cw := graph.Path{0, 1, 2, 3}
	ccw := graph.Path{0, 5, 4, 3}
	ps := []graph.Path{cw, ccw}
	sched := MustSchedule([]Event{
		{At: 10, U: 1, V: 2},
		{At: 20, U: 4, V: 5},
		{At: 30, Up: true, U: 1, V: 2},
	})
	st, err := NewState(g, sched, Policy{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mask := st.LiveMask(0, 3, ps); mask != 0b11 {
		t.Fatalf("pre-fault mask %b, want 11", mask)
	}
	st.Advance(10)
	if mask := st.LiveMask(0, 3, ps); mask != 0b10 {
		t.Fatalf("mask after killing cw %b, want 10", mask)
	}
	// Cached: same epoch returns the same mask.
	if mask := st.LiveMask(0, 3, ps); mask != 0b10 {
		t.Fatal("cached mask differs")
	}
	cand, mask := st.Candidates(0, 3, ps)
	if len(cand) != 2 || mask != 0b10 {
		t.Fatalf("Candidates = %d paths, mask %b", len(cand), mask)
	}
	st.Advance(20) // both paths dead, no repair configured
	cand, mask = st.Candidates(0, 3, ps)
	if cand != nil || mask != 0 {
		t.Fatalf("dead pair without repair: %v, %b", cand, mask)
	}
	st.Advance(30) // cw revives
	if mask := st.LiveMask(0, 3, ps); mask != 0b01 {
		t.Fatalf("mask after revival %b, want 01", mask)
	}
}

func TestFaultRepair(t *testing.T) {
	topo := jellyfish.MustNew(jellyfish.Params{N: 20, X: 8, Y: 6}, xrand.New(9))
	g := topo.G
	cfg := ksp.Config{Alg: ksp.REDKSP, K: 4}
	comp := ksp.NewComputer(g, cfg, xrand.New(77))
	comp.Reseed(77, pairKey(0, 5))
	ps := comp.Paths(0, 5)
	if len(ps) == 0 {
		t.Fatal("no baseline paths")
	}
	// Fail every link of every baseline path so the pair's whole set dies.
	var events []Event
	seen := map[uint64]struct{}{}
	for _, p := range ps {
		for i := 0; i+1 < len(p); i++ {
			key := graph.UndirectedEdgeKey(p[i], p[i+1])
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			events = append(events, Event{At: 5, U: p[i], V: p[i+1]})
		}
	}
	st, err := NewState(g, MustSchedule(events), Policy{}, &RepairConfig{KSP: cfg, Seed: 77}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Advance(5)
	if st.LiveMask(0, 5, ps) != 0 {
		t.Fatal("some baseline path survived the full kill")
	}
	cand, mask := st.Candidates(0, 5, ps)
	if len(cand) == 0 || mask == 0 {
		t.Fatal("repair produced no paths on a degraded but connected graph")
	}
	for _, p := range cand {
		if !st.PathAlive(p) {
			t.Fatalf("repaired path %v crosses a failed link", p)
		}
		if !p.ValidIn(g) {
			t.Fatalf("repaired path %v invalid in the base graph", p)
		}
	}
	// Deterministic and cached per epoch.
	again, _ := st.Candidates(0, 5, ps)
	if &again[0][0] != &cand[0][0] {
		t.Fatal("second Candidates call recomputed instead of using the cache")
	}
	if _, _, repairs := st.Counters(); repairs != 1 {
		t.Fatalf("repairs = %d, want 1", repairs)
	}
	// NoRepair policy disables recomputation even with a RepairConfig.
	st2, _ := NewState(g, MustSchedule(events), Policy{NoRepair: true}, &RepairConfig{KSP: cfg, Seed: 77}, 0)
	st2.Advance(5)
	if got := st2.Repaired(0, 5); got != nil {
		t.Fatalf("NoRepair state repaired anyway: %v", got)
	}
}

func TestFaultMaskHelpers(t *testing.T) {
	if FullMask(0) != 0 || FullMask(3) != 0b111 || FullMask(64) != ^uint64(0) || FullMask(200) != ^uint64(0) {
		t.Fatal("FullMask wrong")
	}
	if PopCount(0b1011) != 3 {
		t.Fatal("PopCount wrong")
	}
	if FirstSet(0b1000) != 3 || FirstSet(0) != 64 {
		t.Fatal("FirstSet wrong")
	}
	if NthSet(0b10110, 0) != 1 || NthSet(0b10110, 1) != 2 || NthSet(0b10110, 2) != 4 {
		t.Fatal("NthSet wrong")
	}
	if NextSet(0b0100, 2, 4) != 2 || NextSet(0b0100, 3, 4) != 2 || NextSet(0b0011, 1, 4) != 1 {
		t.Fatal("NextSet wrong")
	}
}

func TestFaultPolicyNames(t *testing.T) {
	for _, name := range []string{"reroute", "drop", "reroute-norepair", "drop-norepair"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Fatalf("PolicyByName(%q).String() = %q", name, p.String())
		}
	}
	if p, err := PolicyByName(""); err != nil || p != (Policy{}) {
		t.Fatal("empty policy name is not the default")
	}
	if _, err := PolicyByName("explode"); err == nil || !strings.Contains(err.Error(), "explode") {
		t.Fatalf("unknown policy error = %v", err)
	}
}
