// Package faults injects dynamic link failures into the simulators. Where
// exp.FaultResilience answers the *static* question — how many precomputed
// paths survive a set of dead links — this package supplies the *dynamic*
// machinery: a deterministic, seeded Schedule of timed link-down/link-up
// events that both simulators (flitsim, appsim) apply while a run is in
// flight, and a State that tracks which links are currently dead so every
// routing mechanism can degrade gracefully instead of panicking or
// stranding packets.
//
// The pieces:
//
//   - Event / Schedule — a sorted list of timed link-down/link-up events on
//     undirected edges, built from explicit scripts, seeded random edge
//     sets (Random), or hot links observed by a telemetry.Collector
//     (Targeted). Schedules serialize to a compact line-oriented text
//     format (format.go) so a failure scenario can be archived and
//     replayed bit-identically.
//
//   - State (state.go) — per-run fault tracking: an O(1) failed-bit per
//     directed link, a per-pair path-liveness bitmap cache invalidated by
//     an epoch counter bumped on every fault event, and Remove-Find repair
//     of fully-dead path sets on a failed-edge-filtered copy of the graph.
//
// Everything is deterministic: schedules derive from explicit seeds,
// repair reseeds per pair exactly like paths.DB, and a simulator given an
// empty schedule makes no extra RNG draws, so its results stay
// bit-identical to a run with no fault machinery attached.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// Event is one timed change to a single undirected link {U, V}. At is the
// absolute simulation cycle (cycle 0 is the first cycle of the run,
// including any warmup) at which the event takes effect, before any
// traffic moves in that cycle.
type Event struct {
	At int64
	// Up is false for link-down and true for link-up (restoration).
	Up   bool
	U, V graph.NodeID
}

// String renders the event in the schedule text format.
func (e Event) String() string {
	verb := "down"
	if e.Up {
		verb = "up"
	}
	return fmt.Sprintf("%s %d %d %d", verb, e.At, e.U, e.V)
}

// Schedule is an immutable, time-sorted list of fault events. The zero
// value and nil are both valid empty schedules.
type Schedule struct {
	events []Event
}

// NewSchedule builds a schedule from events, sorting them by time (stable,
// so same-cycle events keep their given order). It returns an error for
// negative times, self-loop edges, or negative node ids; edge existence is
// checked later against the concrete graph by NewState.
func NewSchedule(events []Event) (*Schedule, error) {
	out := make([]Event, len(events))
	copy(out, events)
	for _, e := range out {
		if e.At < 0 {
			return nil, fmt.Errorf("faults: negative event time %d", e.At)
		}
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("faults: negative node in event %v", e)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("faults: self-loop event on node %d", e.U)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return &Schedule{events: out}, nil
}

// MustSchedule is NewSchedule for events known valid; it panics on error.
func MustSchedule(events []Event) *Schedule {
	s, err := NewSchedule(events)
	if err != nil {
		panic(err)
	}
	return s
}

// Events returns the sorted events. The returned slice is owned by the
// schedule and must not be modified. A nil schedule returns nil.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// Len returns the event count (0 for a nil schedule).
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Empty reports whether the schedule has no events.
func (s *Schedule) Empty() bool { return s.Len() == 0 }

// undirectedEdges enumerates g's undirected edges once, ordered by
// (min endpoint, max endpoint) — the deterministic order Random samples
// from.
func undirectedEdges(g *graph.Graph) [][2]graph.NodeID {
	edges := make([][2]graph.NodeID, 0, g.NumEdges())
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]graph.NodeID{u, v})
			}
		}
	}
	return edges
}

// Random builds a schedule failing n distinct uniformly random links of g
// at cycle at, deterministically from seed. It returns an error if n
// exceeds the edge count.
func Random(g *graph.Graph, n int, at int64, seed uint64) (*Schedule, error) {
	edges := undirectedEdges(g)
	if n < 0 || n > len(edges) {
		return nil, fmt.Errorf("faults: cannot fail %d of %d links", n, len(edges))
	}
	rng := xrand.New(seed)
	events := make([]Event, 0, n)
	for _, idx := range rng.SampleK(len(edges), n) {
		e := edges[idx]
		events = append(events, Event{At: at, U: e[0], V: e[1]})
	}
	return NewSchedule(events)
}

// Targeted builds a schedule failing the n hottest network links observed
// by a populated telemetry.Collector at cycle at — the adversarial "kill
// the busiest links" scenario. Parallel directed links collapse onto their
// undirected edge (the hotter direction counts); ties break toward the
// lower link index, so the result is deterministic for a given collector.
func Targeted(col *telemetry.Collector, n int, at int64) (*Schedule, error) {
	if col == nil || !col.Ready() {
		return nil, fmt.Errorf("faults: Targeted needs a populated telemetry collector")
	}
	type hot struct {
		u, v  graph.NodeID
		flits int64
	}
	byEdge := make(map[uint64]*hot)
	for i, li := range col.Links() {
		if li.Kind != telemetry.KindNet {
			continue
		}
		u, v := graph.NodeID(li.Src), graph.NodeID(li.Dst)
		key := graph.UndirectedEdgeKey(u, v)
		f := col.Forwarded.Get(i)
		if h, ok := byEdge[key]; ok {
			if f > h.flits {
				h.flits = f
			}
			continue
		}
		byEdge[key] = &hot{u: min(u, v), v: max(u, v), flits: f}
	}
	hots := make([]*hot, 0, len(byEdge))
	for _, h := range byEdge {
		hots = append(hots, h)
	}
	if n < 0 || n > len(hots) {
		return nil, fmt.Errorf("faults: cannot fail %d of %d observed links", n, len(hots))
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].flits != hots[j].flits {
			return hots[i].flits > hots[j].flits
		}
		if hots[i].u != hots[j].u {
			return hots[i].u < hots[j].u
		}
		return hots[i].v < hots[j].v
	})
	events := make([]Event, 0, n)
	for _, h := range hots[:n] {
		events = append(events, Event{At: at, U: h.u, V: h.v})
	}
	return NewSchedule(events)
}

// PathDown builds a schedule failing every link of the given path at cycle
// at — the "kill one whole candidate path" scenario the edge-disjoint
// selectors are designed to survive.
func PathDown(p graph.Path, at int64) (*Schedule, error) {
	events := make([]Event, 0, p.Hops())
	for i := 0; i+1 < len(p); i++ {
		events = append(events, Event{At: at, U: p[i], V: p[i+1]})
	}
	return NewSchedule(events)
}

// Policy selects what the simulators do with traffic caught on a failed
// link and with pairs whose entire candidate set dies. The zero value is
// the graceful default: requeue affected packets onto a surviving path and
// repair dead pairs by recomputing on the failed-edge-filtered graph.
type Policy struct {
	// Drop discards packets queued on or in flight over a failed link
	// instead of requeueing them onto a surviving path. (Packets whose
	// requeue fails — no surviving path, no buffer space, or a repaired
	// path longer than the VC budget — are dropped under either setting.)
	Drop bool
	// NoRepair disables recomputing a pair's path set when every candidate
	// is dead; such pairs become unroutable until a link-up event revives
	// one of their paths.
	NoRepair bool
}

// String names the policy as accepted by PolicyByName.
func (p Policy) String() string {
	s := "reroute"
	if p.Drop {
		s = "drop"
	}
	if p.NoRepair {
		s += "-norepair"
	}
	return s
}

// PolicyByName resolves a command-line policy name: "reroute" (default),
// "drop", "reroute-norepair" or "drop-norepair".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "reroute":
		return Policy{}, nil
	case "drop":
		return Policy{Drop: true}, nil
	case "reroute-norepair":
		return Policy{NoRepair: true}, nil
	case "drop-norepair":
		return Policy{Drop: true, NoRepair: true}, nil
	}
	return Policy{}, fmt.Errorf("faults: unknown policy %q (want reroute, drop, reroute-norepair or drop-norepair)", name)
}
