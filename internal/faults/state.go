package faults

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/ksp"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// RepairConfig tells a State how to recompute a pair's path set when every
// candidate dies: the same selector configuration and seed the pair's
// paths.DB was built with, so repaired paths are exactly what an eager
// build on the degraded graph would have produced.
type RepairConfig struct {
	KSP  ksp.Config
	Seed uint64
}

// repairSource is implemented by path providers (paths.DB) that can tell
// the fault machinery how to recompute a pair's set on a degraded graph.
type repairSource interface {
	Config() ksp.Config
	Seed() uint64
}

// RepairConfigOf extracts a repair recipe from a path provider, or nil
// when the provider cannot supply one (repair is then disabled). Both
// simulators call it when attaching a fault schedule.
func RepairConfigOf(p any) *RepairConfig {
	src, ok := p.(repairSource)
	if !ok {
		return nil
	}
	return &RepairConfig{KSP: src.Config(), Seed: src.Seed()}
}

// State is one simulation run's fault tracker. It applies a Schedule's
// events as the clock advances and answers, in O(1) on the hot path,
// whether a directed link is down and which of a pair's candidate paths
// are still alive.
//
// The liveness cache: per ordered pair, a bitmap with bit i set when
// candidate path i crosses no failed link, stamped with the epoch it was
// computed at. Every fault event bumps the epoch, so stale bitmaps are
// recomputed lazily on next use — O(k · path length) per pair per fault
// event, O(1) otherwise. At most 64 candidates are tracked; later paths
// (far beyond the paper's k = 8) are treated as dead during fault
// episodes.
//
// State is not safe for concurrent use; give each simulator instance its
// own (schedules are immutable and may be shared).
type State struct {
	g      *graph.Graph
	events []Event
	next   int
	policy Policy
	repair *RepairConfig
	maxLen int

	epoch    uint64
	numDown  int
	downDir  []bool // per directed link id
	downEdge map[uint64]struct{}

	live     map[uint64]liveEntry
	repaired map[uint64]repairEntry

	filtered      *graph.Graph
	filteredEpoch uint64
	comp          *ksp.Computer

	tel *telemetry.Collector

	downs, ups, repairs int64
}

type liveEntry struct {
	epoch uint64
	mask  uint64
}

type repairEntry struct {
	epoch uint64
	ps    []graph.Path
}

// NewState builds the per-run tracker. Every scheduled event must
// reference an existing edge of g. repair may be nil, which disables
// path-set recomputation regardless of policy (the path provider is not a
// *paths.DB, so there is no selector config to recompute with). maxLen,
// when positive, discards repaired or fallback paths longer than that
// many hops (the simulators pass their VC budget so a repaired path can
// never exceed the deadlock-freedom allocation).
func NewState(g *graph.Graph, sched *Schedule, policy Policy, repair *RepairConfig, maxLen int) (*State, error) {
	st := &State{
		g:        g,
		events:   sched.Events(),
		policy:   policy,
		repair:   repair,
		maxLen:   maxLen,
		downDir:  make([]bool, g.NumDirectedLinks()),
		downEdge: make(map[uint64]struct{}),
		live:     make(map[uint64]liveEntry),
		repaired: make(map[uint64]repairEntry),
	}
	if policy.NoRepair {
		st.repair = nil
	}
	for _, e := range st.events {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("faults: scheduled event %v references a non-edge", e)
		}
	}
	return st, nil
}

// SetTelemetry attaches a collector; fault events and repairs are counted
// into it. A nil collector is allowed (and costs nothing).
func (st *State) SetTelemetry(col *telemetry.Collector) { st.tel = col }

// Policy returns the configured policy.
func (st *State) Policy() Policy { return st.policy }

// NextEventAt returns the cycle of the next unapplied event, or -1 when
// the schedule is exhausted.
func (st *State) NextEventAt() int64 {
	if st.next >= len(st.events) {
		return -1
	}
	return st.events[st.next].At
}

// Advance applies every event scheduled at or before clock and returns
// the slice of newly applied events (nil when none fired). Down events on
// an already-down edge and up events on an already-up edge are applied as
// no-ops but still reported, so callers can flush affected queues
// unconditionally.
func (st *State) Advance(clock int64) []Event {
	if st.next >= len(st.events) || st.events[st.next].At > clock {
		return nil
	}
	start := st.next
	for st.next < len(st.events) && st.events[st.next].At <= clock {
		e := st.events[st.next]
		st.apply(e)
		st.next++
	}
	fired := st.events[start:st.next]
	st.epoch++
	if st.tel != nil {
		st.tel.CountFaultEvents(int64(len(fired)))
		st.tel.SetLinksDown(int64(st.numDown))
	}
	return fired
}

func (st *State) apply(e Event) {
	key := graph.UndirectedEdgeKey(e.U, e.V)
	_, isDown := st.downEdge[key]
	if e.Up {
		st.ups++
		if !isDown {
			return
		}
		delete(st.downEdge, key)
		st.numDown--
	} else {
		st.downs++
		if isDown {
			return
		}
		st.downEdge[key] = struct{}{}
		st.numDown++
	}
	down := !e.Up
	id := st.g.LinkID(e.U, e.V)
	st.downDir[id] = down
	st.downDir[st.g.ReverseLink(id)] = down
}

// Active reports whether any link is currently down. When false, every
// liveness query is a trivial full mask and simulators can skip all fault
// handling.
func (st *State) Active() bool { return st.numDown > 0 }

// Done reports whether no link is down and no event remains — the state
// can no longer affect the run.
func (st *State) Done() bool { return st.numDown == 0 && st.next >= len(st.events) }

// LinkDown reports whether the directed network link id is down. Ids at
// or beyond the graph's link count (the simulators' injection/ejection
// pseudo-links) are never down.
func (st *State) LinkDown(link int32) bool {
	return int(link) < len(st.downDir) && st.downDir[link]
}

// EdgeDown reports whether the undirected edge {u, v} is down.
func (st *State) EdgeDown(u, v graph.NodeID) bool {
	_, down := st.downEdge[graph.UndirectedEdgeKey(u, v)]
	return down
}

// DownCount returns the number of currently failed undirected links.
func (st *State) DownCount() int { return st.numDown }

// Counters returns the cumulative applied down events, up events and
// path-set repairs.
func (st *State) Counters() (downs, ups, repairs int64) {
	return st.downs, st.ups, st.repairs
}

// PathAlive reports whether p crosses no failed link.
func (st *State) PathAlive(p graph.Path) bool {
	if st.numDown == 0 {
		return true
	}
	for i := 0; i+1 < len(p); i++ {
		if st.downDir[st.g.LinkID(p[i], p[i+1])] {
			return false
		}
	}
	return true
}

func pairKey(s, d graph.NodeID) uint64 {
	return uint64(uint32(s))<<32 | uint64(uint32(d))
}

// LiveMask returns the liveness bitmap for the pair's candidate list: bit
// i set when ps[i] crosses no failed link. Results are cached per pair
// and invalidated when a fault event changes the epoch. Candidates past
// index 63 are reported dead (see the type comment).
func (st *State) LiveMask(src, dst graph.NodeID, ps []graph.Path) uint64 {
	if st.numDown == 0 {
		return FullMask(len(ps))
	}
	key := pairKey(src, dst)
	if e, ok := st.live[key]; ok && e.epoch == st.epoch {
		return e.mask
	}
	var mask uint64
	for i, p := range ps {
		if i >= 64 {
			break
		}
		if st.PathAlive(p) {
			mask |= 1 << uint(i)
		}
	}
	st.live[key] = liveEntry{epoch: st.epoch, mask: mask}
	return mask
}

// Candidates returns the routable candidate set for the pair and its
// liveness mask. With no active faults it returns ps with a full mask
// (and touches no cache). When some candidates survive, it returns ps
// with the live-bit mask. When every candidate is dead it falls back to
// the repair path: recompute the pair's set on the failed-edge-filtered
// graph (nil, 0 when repair is disabled or the pair is disconnected).
func (st *State) Candidates(src, dst graph.NodeID, ps []graph.Path) ([]graph.Path, uint64) {
	if st.numDown == 0 {
		return ps, FullMask(len(ps))
	}
	if mask := st.LiveMask(src, dst, ps); mask != 0 {
		return ps, mask
	}
	rp := st.Repaired(src, dst)
	if len(rp) == 0 {
		return nil, 0
	}
	return rp, FullMask(len(rp))
}

// Repaired returns the pair's recomputed path set on the current
// failed-edge-filtered graph, computing and caching it on first use per
// epoch. It returns nil when repair is disabled or the pair is
// disconnected in the degraded graph.
func (st *State) Repaired(src, dst graph.NodeID) []graph.Path {
	if st.repair == nil {
		return nil
	}
	key := pairKey(src, dst)
	if e, ok := st.repaired[key]; ok && e.epoch == st.epoch {
		return e.ps
	}
	st.ensureFiltered()
	// Per-pair reseeding mirrors paths.DB.computeWith, so a repaired set
	// depends only on (seed, pair, failed edges) — never on discovery
	// order.
	st.comp.Reseed(st.repair.Seed, pairKey(src, dst))
	ps := st.comp.Paths(src, dst)
	if st.maxLen > 0 {
		kept := ps[:0]
		for _, p := range ps {
			if p.Hops() <= st.maxLen {
				kept = append(kept, p)
			}
		}
		ps = kept
	}
	if len(ps) == 0 {
		ps = nil
	}
	st.repaired[key] = repairEntry{epoch: st.epoch, ps: ps}
	st.repairs++
	if st.tel != nil {
		st.tel.CountFaultRepair()
	}
	return ps
}

// ensureFiltered rebuilds the failed-edge-filtered graph view and its
// path computer when the epoch has moved since the last rebuild.
func (st *State) ensureFiltered() {
	if st.filtered != nil && st.filteredEpoch == st.epoch {
		return
	}
	b := st.g.Clone()
	for key := range st.downEdge {
		b.RemoveEdge(graph.NodeID(key>>32), graph.NodeID(uint32(key)))
	}
	st.filtered = b.Graph()
	st.filteredEpoch = st.epoch
	st.comp = ksp.NewComputer(st.filtered, st.repair.KSP, xrand.New(st.repair.Seed))
}

// FullMask returns a mask with the low n bits set (all 64 for n >= 64).
func FullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// PopCount returns the number of set bits.
func PopCount(mask uint64) int { return bits.OnesCount64(mask) }

// FirstSet returns the index of the lowest set bit (64 when mask is 0).
func FirstSet(mask uint64) int { return bits.TrailingZeros64(mask) }

// NthSet returns the index of the n-th (0-based) set bit of mask. It
// panics if mask has fewer than n+1 set bits.
func NthSet(mask uint64, n int) int {
	for i := 0; i < n; i++ {
		mask &= mask - 1 // clear lowest set bit
	}
	if mask == 0 {
		panic("faults: NthSet beyond population")
	}
	return bits.TrailingZeros64(mask)
}

// NextSet returns the index of the first set bit at or after from,
// wrapping around within the low n bits. It panics if mask is 0.
func NextSet(mask uint64, from, n int) int {
	if mask == 0 {
		panic("faults: NextSet on empty mask")
	}
	for i := 0; i < n; i++ {
		idx := (from + i) % n
		if mask&(1<<uint(idx)) != 0 {
			return idx
		}
	}
	panic("faults: NextSet found no bit within n")
}
