package faults

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// The schedule text format, in the same line-oriented family as the
// PATHDB and topology archives:
//
//	FAULTS 1
//	# comment
//	down <cycle> <u> <v>
//	up <cycle> <u> <v>
//
// Events may appear in any order; parsing sorts them by cycle. Blank
// lines and '#' comments are ignored. Format always emits events sorted,
// so Parse(s.Format()) reproduces s exactly.

// Format renders the schedule in the text format.
func (s *Schedule) Format() string {
	var sb strings.Builder
	sb.WriteString("FAULTS 1\n")
	for _, e := range s.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Write writes the schedule in the text format.
func (s *Schedule) Write(w io.Writer) error {
	_, err := io.WriteString(w, s.Format())
	return err
}

// Parse reads a schedule in the text format.
func Parse(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	hdr, ok := next()
	if !ok || hdr != "FAULTS 1" {
		return nil, fmt.Errorf("faults: bad header %q (want \"FAULTS 1\")", hdr)
	}
	var events []Event
	for {
		s, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		if len(fields) != 4 {
			return nil, fmt.Errorf("faults: line %d: want \"down|up <cycle> <u> <v>\", got %q", line, s)
		}
		var e Event
		switch fields[0] {
		case "down":
			e.Up = false
		case "up":
			e.Up = true
		default:
			return nil, fmt.Errorf("faults: line %d: unknown verb %q", line, fields[0])
		}
		at, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad cycle: %v", line, err)
		}
		u, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad node: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad node: %v", line, err)
		}
		e.At, e.U, e.V = at, int32(u), int32(v)
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewSchedule(events)
}

// ParseString parses a schedule from a string.
func ParseString(s string) (*Schedule, error) { return Parse(strings.NewReader(s)) }

// ParseSpec resolves a command-line fault specification into a schedule:
//
//	random:<n>@<cycle>[,<n>@<cycle>...]  n seeded-random links down at cycle
//	<path>                               a schedule file in the text format
//	"" or "none"                         an empty schedule
//
// The random form needs the graph (to enumerate links) and a seed; each
// comma-separated group draws an independent edge set, so
// "random:2@1000,2@2000" fails two links at cycle 1000 and two more
// (possibly overlapping) at cycle 2000.
func ParseSpec(spec string, g *graph.Graph, seed uint64) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return MustSchedule(nil), nil
	}
	if rest, ok := strings.CutPrefix(spec, "random:"); ok {
		var events []Event
		for gi, group := range strings.Split(rest, ",") {
			nStr, atStr, ok := strings.Cut(group, "@")
			if !ok {
				return nil, fmt.Errorf("faults: bad random group %q (want n@cycle)", group)
			}
			n, err := strconv.Atoi(strings.TrimSpace(nStr))
			if err != nil {
				return nil, fmt.Errorf("faults: bad link count in %q: %v", group, err)
			}
			at, err := strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad cycle in %q: %v", group, err)
			}
			sub, err := Random(g, n, at, xrand.Mix64(seed^uint64(gi)<<32^0xfa0175))
			if err != nil {
				return nil, err
			}
			events = append(events, sub.Events()...)
		}
		return NewSchedule(events)
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("faults: spec %q is neither random:<n>@<cycle> nor a readable schedule file: %w", spec, err)
	}
	defer f.Close()
	return Parse(f)
}
