package appsim

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// termOn returns some terminal attached to the given switch.
func termOn(topo *jellyfish.Topology, sw graph.NodeID) int {
	for term := 0; term < topo.NumTerminals(); term++ {
		if topo.SwitchOf(term) == sw {
			return term
		}
	}
	panic("switch has no terminals")
}

// TestFaultEmptyScheduleBitIdentical is the regression acceptance
// criterion: attaching a nil or empty fault schedule must leave the Result
// bit-identical to a run without any fault configuration.
func TestFaultEmptyScheduleBitIdentical(t *testing.T) {
	topo := jelly(t, 18, 8, 6, 2)
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNN, Ranks: topo.NumTerminals(), TotalBytes: 40 * 1500,
	})
	flows := w.Apply(traffic.LinearMapping(topo.NumTerminals()))
	for _, mech := range []routing.Mechanism{routing.Random(), routing.KSPAdaptive()} {
		base := Config{
			Topo:       topo,
			Paths:      pdb(topo, ksp.REDKSP, 4),
			Mechanism:  mech,
			Flows:      flows,
			Seed:       21,
			TrackFlows: true,
		}
		ref, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}

		withNil := base
		withNil.Faults = nil
		withNil.FaultPolicy = faults.Policy{Drop: true}
		withNil.Paths = pdb(topo, ksp.REDKSP, 4)

		withEmpty := base
		withEmpty.Faults = faults.MustSchedule(nil)
		withEmpty.Paths = pdb(topo, ksp.REDKSP, 4)

		for name, cfg := range map[string]Config{"nil": withNil, "empty": withEmpty} {
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s %s: %v", mech.Name(), name, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: %s schedule changed the Result:\n got %+v\nwant %+v",
					mech.Name(), name, got, ref)
			}
		}
	}
}

// TestFaultDropDrains kills a single-path flow's only route mid-run under
// the drop policy: the run must still drain, with every undeliverable
// packet accounted for in Dropped and the flow completion recorded.
func TestFaultDropDrains(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(0), graph.NodeID(9)
	db := pdb(topo, ksp.KSP, 1)
	p := db.Paths(srcSw, dstSw)[0]
	sched, err := faults.PathDown(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	const totalPkts = 400
	cfg := Config{
		Topo:        topo,
		Paths:       db,
		Mechanism:   routing.Random(),
		Flows:       []traffic.SizedFlow{{Src: termOn(topo, srcSw), Dst: termOn(topo, dstSw), Bytes: totalPkts * 1500}},
		Faults:      sched,
		FaultPolicy: faults.Policy{Drop: true, NoRepair: true},
		TrackFlows:  true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets+res.Dropped != totalPkts {
		t.Fatalf("conservation broken: delivered %d + dropped %d != %d (%+v)",
			res.Packets, res.Dropped, totalPkts, res)
	}
	if res.Dropped == 0 {
		t.Fatal("drop policy recorded no drops")
	}
	if res.Packets == 0 {
		t.Fatal("pre-fault packets should have been delivered")
	}
	if res.FlowCompletions[0] < 0 {
		t.Fatalf("lossy flow never completed: %+v", res)
	}
	if res.FaultEvents == 0 {
		t.Fatal("schedule did not fire")
	}
}

// TestFaultRerouteCompletes kills one of several candidate paths mid-run
// under the graceful policy: every packet must still be delivered, with
// in-transit ones rerouted around the failure.
func TestFaultRerouteCompletes(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(0), graph.NodeID(9)
	db := pdb(topo, ksp.REDKSP, 4)
	ps := db.Paths(srcSw, dstSw)
	if len(ps) < 2 {
		t.Fatalf("need >= 2 candidates, got %d", len(ps))
	}
	sched, err := faults.PathDown(ps[0], 30)
	if err != nil {
		t.Fatal(err)
	}
	const totalPkts = 400
	cfg := Config{
		Topo:      topo,
		Paths:     db,
		Mechanism: routing.KSPAdaptive(),
		Flows:     []traffic.SizedFlow{{Src: termOn(topo, srcSw), Dst: termOn(topo, dstSw), Bytes: totalPkts * 1500}},
		Seed:      5,
		Faults:    sched,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != totalPkts {
		t.Fatalf("delivered %d of %d (dropped %d)", res.Packets, int64(totalPkts), res.Dropped)
	}
	if res.Rerouted == 0 {
		t.Fatal("no packet was caught on the failed path; move the fault cycle")
	}
	if res.FaultEvents == 0 {
		t.Fatal("schedule did not fire")
	}
}

// TestFaultRepairCompletes kills every candidate path of the flow's pair,
// so only repair (recompute on the failed-edge-filtered graph) can finish
// the run without losses.
func TestFaultRepairCompletes(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(2), graph.NodeID(11)
	db := pdb(topo, ksp.REDKSP, 3)
	var evs []faults.Event
	seen := map[uint64]struct{}{}
	for _, p := range db.Paths(srcSw, dstSw) {
		for i := 0; i+1 < len(p); i++ {
			key := graph.UndirectedEdgeKey(p[i], p[i+1])
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			evs = append(evs, faults.Event{At: 40, U: p[i], V: p[i+1]})
		}
	}
	const totalPkts = 300
	cfg := Config{
		Topo:      topo,
		Paths:     db,
		Mechanism: routing.KSPAdaptive(),
		Flows:     []traffic.SizedFlow{{Src: termOn(topo, srcSw), Dst: termOn(topo, dstSw), Bytes: totalPkts * 1500}},
		Seed:      9,
		Faults:    faults.MustSchedule(evs),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PathRepairs == 0 {
		t.Fatalf("whole-set kill triggered no repair: %+v", res)
	}
	if res.Packets != totalPkts {
		t.Fatalf("delivered %d of %d (dropped %d)", res.Packets, int64(totalPkts), res.Dropped)
	}
}

// TestFaultUnroutableFlowDrains: with repair disabled and every path dead
// from cycle 0, the flow cannot send at all — the run must still drain by
// dropping, not spin to MaxCycles.
func TestFaultUnroutableFlowDrains(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(3), graph.NodeID(12)
	db := pdb(topo, ksp.KSP, 1)
	sched, err := faults.PathDown(db.Paths(srcSw, dstSw)[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	const totalPkts = 50
	cfg := Config{
		Topo:        topo,
		Paths:       db,
		Mechanism:   routing.Random(),
		Flows:       []traffic.SizedFlow{{Src: termOn(topo, srcSw), Dst: termOn(topo, dstSw), Bytes: totalPkts * 1500}},
		Faults:      sched,
		FaultPolicy: faults.Policy{NoRepair: true},
		TrackFlows:  true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 || res.Dropped != totalPkts {
		t.Fatalf("delivered %d dropped %d, want 0/%d", res.Packets, res.Dropped, int64(totalPkts))
	}
	if res.FlowCompletions[0] < 0 {
		t.Fatalf("dropped flow never completed: %+v", res)
	}
}

// liveOnlyMech wraps a routing.Mechanism so every choice made through it
// is audited: while faults are active, a selected path crossing a failed
// link fails the test. The wrapped state does the real choosing, so the
// audit covers both injection-time choices and reroutes of caught packets.
type liveOnlyMech struct {
	routing.Mechanism
	t *testing.T
}

func (m liveOnlyMech) NewState() routing.State {
	return liveOnlyState{inner: m.Mechanism.NewState(), name: m.Name(), t: m.t}
}

type liveOnlyState struct {
	inner routing.State
	name  string
	t     *testing.T
}

func (s liveOnlyState) Choose(v *routing.View, src, dst graph.NodeID, load routing.LoadEstimator, rng *xrand.RNG) (graph.Path, int) {
	p, idx := s.inner.Choose(v, src, dst, load, rng)
	if p != nil && v.Faults != nil && v.Faults.Active() && !v.Faults.PathAlive(p) {
		s.t.Errorf("%s selected dead path %v for %d->%d", s.name, p, src, dst)
	}
	return p, idx
}

// TestFaultMechanismsAvoidDeadPaths kills four random links mid-run and
// checks, mechanism by mechanism, that no selection made while the faults
// are active crosses a failed link: the live-candidate masks must gate
// every injection-time choice and every reroute.
func TestFaultMechanismsAvoidDeadPaths(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	sched, err := faults.Random(topo.G, 4, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNN, Ranks: topo.NumTerminals(), TotalBytes: 40 * 1500,
	})
	flows := w.Apply(traffic.LinearMapping(topo.NumTerminals()))
	for _, mech := range append(routing.Mechanisms(), routing.SP()) {
		t.Run(mech.Name(), func(t *testing.T) {
			cfg := Config{
				Topo:      topo,
				Paths:     pdb(topo, ksp.REDKSP, 4),
				Mechanism: liveOnlyMech{Mechanism: mech, t: t},
				Flows:     flows,
				Seed:      31,
				Faults:    sched,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.FaultEvents == 0 {
				t.Fatal("schedule did not fire")
			}
			if res.Packets == 0 {
				t.Fatal("no traffic delivered")
			}
		})
	}
}

// TestFaultConfigValidation covers Validate and schedule checking.
func TestFaultConfigValidation(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	good := Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.KSP, 2),
		Mechanism: routing.Random(),
		Flows:     []traffic.SizedFlow{{Src: 0, Dst: 4, Bytes: 1500}},
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	nonEdge := faults.Event{U: 0, V: 1}
	for v := graph.NodeID(1); int(v) < topo.G.NumNodes(); v++ {
		if !topo.G.HasEdge(0, v) {
			nonEdge.V = v
			break
		}
	}
	if topo.G.HasEdge(nonEdge.U, nonEdge.V) {
		t.Fatal("switch 0 is connected to everything; shrink y")
	}
	mutate := map[string]func(*Config){
		"no topo":        func(c *Config) { c.Topo = nil },
		"no paths":       func(c *Config) { c.Paths = nil },
		"neg bytes":      func(c *Config) { c.PacketBytes = -1 },
		"neg bandwidth":  func(c *Config) { c.LinkBandwidth = -1 },
		"neg buf":        func(c *Config) { c.BufDepth = -1 },
		"neg vcs":        func(c *Config) { c.NumVCs = -2 },
		"neg max cycles": func(c *Config) { c.MaxCycles = -1 },
		"neg iterations": func(c *Config) { c.Iterations = -1 },
		"neg gap":        func(c *Config) { c.ComputeGap = -1 },
		"fault non-edge": func(c *Config) { c.Faults = faults.MustSchedule([]faults.Event{nonEdge}) },
	}
	for name, f := range mutate {
		c := good
		f(&c)
		if _, err := Run(c); err == nil {
			t.Fatalf("%s: Run accepted invalid config", name)
		}
	}
}
