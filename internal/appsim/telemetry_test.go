package appsim

import (
	"testing"

	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// TestTelemetryReconciles checks that the application simulator's
// telemetry reconciles with its Result: ejection-link forwards equal the
// delivered packet count, injection-side forwards equal it too (the
// workload drains completely), and path-choice counts cover every
// multi-candidate packet.
func TestTelemetryReconciles(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	nt := topo.NumTerminals()
	var flows []traffic.SizedFlow
	for s := 0; s < nt; s++ {
		flows = append(flows, traffic.SizedFlow{Src: s, Dst: (s + 3) % nt, Bytes: 30 * 1500})
	}
	col := telemetry.NewCollector()
	res, err := Run(Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.REDKSP, 4),
		Mechanism: routing.KSPAdaptive(),
		Flows:     flows,
		Seed:      5,
		Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}

	var ejected, injected int64
	for i, li := range col.Links() {
		switch li.Kind {
		case telemetry.KindEject:
			ejected += col.Forwarded.Get(i)
		case telemetry.KindInject:
			injected += col.Forwarded.Get(i)
		}
	}
	if ejected != res.Packets {
		t.Fatalf("ejection-link flits = %d, Result.Packets = %d", ejected, res.Packets)
	}
	if injected != res.Packets {
		t.Fatalf("injection forwards = %d, Result.Packets = %d (workload must drain)", injected, res.Packets)
	}
	// Every packet whose switch pair had multiple candidates recorded a
	// choice; same-switch traffic records none. Here every flow crosses
	// switches, so counts must equal the packet total.
	if got := col.PathChoice.Total(); got != res.Packets {
		t.Fatalf("path choices = %d, want %d", got, res.Packets)
	}
	if col.Cycles() != res.Cycles {
		t.Fatalf("sampled cycles = %d, Result.Cycles = %d", col.Cycles(), res.Cycles)
	}
	// The app simulator tracks no per-packet latency.
	if col.Latency != nil {
		t.Fatal("latency histogram unexpectedly enabled")
	}
}

// TestTelemetryOffIdentical checks the instrumented run is behaviorally
// identical to the plain one.
func TestTelemetryOffIdentical(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 2)
	nt := topo.NumTerminals()
	var flows []traffic.SizedFlow
	for s := 0; s < nt; s++ {
		flows = append(flows, traffic.SizedFlow{Src: s, Dst: (s*7 + 1) % nt, Bytes: 20 * 1500})
	}
	base := Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.RKSP, 4),
		Mechanism: routing.KSPAdaptive(),
		Flows:     flows,
		Seed:      9,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withTel := base
	withTel.Telemetry = telemetry.NewCollector()
	instrumented, err := Run(withTel)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != instrumented.Cycles || plain.Packets != instrumented.Packets {
		t.Fatalf("telemetry perturbed the run: %+v vs %+v", plain, instrumented)
	}
}
