package appsim

import (
	"testing"

	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

func jelly(t testing.TB, n, x, y int, seed uint64) *jellyfish.Topology {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: n, X: x, Y: y}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func pdb(topo *jellyfish.Topology, alg ksp.Algorithm, k int) *paths.DB {
	return paths.NewDB(topo.G, ksp.Config{Alg: alg, K: k}, 1)
}

func TestSingleFlowSerializationBound(t *testing.T) {
	// One flow of exactly 100 packets over an uncontended network finishes
	// in just over 100 cycles (serialization plus a few hops of pipeline).
	topo := jelly(t, 8, 6, 4, 1)
	cfg := Config{
		Topo:        topo,
		Paths:       pdb(topo, ksp.KSP, 2),
		Mechanism:   routing.Random(),
		Flows:       []traffic.SizedFlow{{Src: 0, Dst: topo.NumTerminals() - 1, Bytes: 100 * 1500}},
		PacketBytes: 1500,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 100 {
		t.Fatalf("packets = %d", res.Packets)
	}
	if res.Cycles < 100 || res.Cycles > 120 {
		t.Fatalf("cycles = %d, want about 100-120", res.Cycles)
	}
	// 100 packets x 75ns = 7.5us serialization.
	if res.Seconds < 7.5e-6 || res.Seconds > 10e-6 {
		t.Fatalf("seconds = %v", res.Seconds)
	}
}

func TestSameSwitchFlow(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1) // 2 terminals per switch
	cfg := Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.KSP, 2),
		Mechanism: routing.Random(),
		Flows:     []traffic.SizedFlow{{Src: 0, Dst: 1, Bytes: 10 * 1500}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 10 || res.MaxHops != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPartialPacketRoundsUp(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	cfg := Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.KSP, 2),
		Mechanism: routing.Random(),
		Flows:     []traffic.SizedFlow{{Src: 0, Dst: 4, Bytes: 1501}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 2 {
		t.Fatalf("packets = %d, want 2 (1501 bytes rounds up)", res.Packets)
	}
}

func TestEmptyWorkload(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	res, err := Run(Config{Topo: topo, Paths: pdb(topo, ksp.KSP, 2)})
	if err != nil || res.Cycles != 0 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
}

func TestMissingConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestStencilWorkloadCompletes(t *testing.T) {
	topo := jelly(t, 18, 8, 6, 2) // 36 terminals
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNN, Ranks: topo.NumTerminals(), TotalBytes: 60 * 1500,
	})
	for _, mech := range []routing.Mechanism{routing.Random(), routing.KSPAdaptive()} {
		cfg := Config{
			Topo:      topo,
			Paths:     pdb(topo, ksp.REDKSP, 4),
			Mechanism: mech,
			Flows:     w.Apply(traffic.LinearMapping(topo.NumTerminals())),
			Seed:      5,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		wantPkts := int64(topo.NumTerminals()) * 60
		if res.Packets != wantPkts {
			t.Fatalf("%s: packets = %d, want %d", mech.Name(), res.Packets, wantPkts)
		}
		// Lower bound: each terminal serializes 60 packets.
		if res.Cycles < 60 {
			t.Fatalf("%s: cycles = %d below serialization bound", mech.Name(), res.Cycles)
		}
	}
}

func TestDeterminism(t *testing.T) {
	topo := jelly(t, 18, 8, 6, 2)
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNNDiag, Ranks: topo.NumTerminals(), TotalBytes: 30 * 1500,
	})
	run := func() Result {
		res, err := Run(Config{
			Topo:      topo,
			Paths:     paths.NewDB(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 9),
			Mechanism: routing.KSPAdaptive(),
			Flows:     w.Apply(traffic.LinearMapping(topo.NumTerminals())),
			Seed:      11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Packets != b.Packets || a.Seconds != b.Seconds || a.MaxHops != b.MaxHops {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestAdaptiveNotSlowerThanRandomOnAverage(t *testing.T) {
	// Across several seeds, KSP-adaptive should finish a contended stencil
	// no later on average than oblivious random (the paper's Table V/VI
	// direction).
	topo := jelly(t, 18, 8, 6, 2)
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNN, Ranks: topo.NumTerminals(), TotalBytes: 120 * 1500,
	})
	db := pdb(topo, ksp.REDKSP, 4)
	flows := w.Apply(traffic.RandomMapping(topo.NumTerminals(), xrand.New(3)))
	var sumRand, sumAda int64
	for seed := uint64(0); seed < 3; seed++ {
		for _, m := range []routing.Mechanism{routing.Random(), routing.KSPAdaptive()} {
			res, err := Run(Config{
				Topo: topo, Paths: db, Mechanism: m, Flows: flows, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() == "Random" {
				sumRand += res.Cycles
			} else {
				sumAda += res.Cycles
			}
		}
	}
	if sumAda > sumRand*11/10 {
		t.Fatalf("KSP-adaptive (%d) much slower than random (%d)", sumAda, sumRand)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	cfg := Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.KSP, 2),
		Mechanism: routing.Random(),
		Flows:     []traffic.SizedFlow{{Src: 0, Dst: 4, Bytes: 1000 * 1500}},
		MaxCycles: 10,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("MaxCycles guard did not trip")
	}
}

func TestFlowCompletionTracking(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	flows := []traffic.SizedFlow{
		{Src: 0, Dst: 4, Bytes: 10 * 1500},
		{Src: 2, Dst: 6, Bytes: 50 * 1500},
		{Src: 3, Dst: 3, Bytes: 1500}, // self flow: never sends
	}
	cfg := Config{
		Topo:       topo,
		Paths:      pdb(topo, ksp.KSP, 2),
		Mechanism:  routing.Random(),
		Flows:      flows,
		TrackFlows: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FlowCompletions) != 3 {
		t.Fatalf("completions = %v", res.FlowCompletions)
	}
	if res.FlowCompletions[2] != -1 {
		t.Fatal("self flow should have no completion")
	}
	// The 50-packet flow finishes last and bounds the run.
	if res.FlowCompletions[1] < res.FlowCompletions[0] {
		t.Fatalf("larger flow finished first: %v", res.FlowCompletions)
	}
	if res.FlowCompletions[1] >= res.Cycles {
		t.Fatalf("completion %d beyond run end %d", res.FlowCompletions[1], res.Cycles)
	}
	if s := FlowCompletionSeconds(cfg, res.FlowCompletions[1]); s <= 0 {
		t.Fatalf("seconds = %v", s)
	}
	// Without tracking, the slice stays nil.
	cfg.TrackFlows = false
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FlowCompletions != nil {
		t.Fatal("tracking off but completions recorded")
	}
}

func TestSelfAndZeroByteFlowsIgnored(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	res, err := Run(Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.KSP, 2),
		Mechanism: routing.Random(),
		Flows: []traffic.SizedFlow{
			{Src: 2, Dst: 2, Bytes: 1500},
			{Src: 0, Dst: 4, Bytes: 0},
		},
	})
	if err != nil || res.Packets != 0 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
}

func TestOutOfRangeFlowRejected(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	_, err := Run(Config{
		Topo:  topo,
		Paths: pdb(topo, ksp.KSP, 2),
		Flows: []traffic.SizedFlow{{Src: 0, Dst: 999, Bytes: 1500}},
	})
	if err == nil {
		t.Fatal("out-of-range flow accepted")
	}
}

func TestIterations(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	base := Config{
		Topo:      topo,
		Paths:     pdb(topo, ksp.KSP, 2),
		Mechanism: routing.Random(),
		Flows:     []traffic.SizedFlow{{Src: 0, Dst: 4, Bytes: 20 * 1500}},
		Seed:      3,
	}
	one, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Iterations = 3
	multi.ComputeGap = 100
	three, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}
	if three.Packets != 3*one.Packets {
		t.Fatalf("packets = %d, want %d", three.Packets, 3*one.Packets)
	}
	// Three phases plus two compute gaps: at least 3x the single-phase
	// cycles plus 200 idle cycles.
	if three.Cycles < 3*one.Cycles+200 {
		t.Fatalf("cycles = %d, single phase was %d", three.Cycles, one.Cycles)
	}
	// And not wildly more (phases are identical and independent).
	if three.Cycles > 3*one.Cycles+200+one.Cycles {
		t.Fatalf("cycles = %d, too slow for 3 phases of %d", three.Cycles, one.Cycles)
	}
}
