// Package appsim is a discrete-event, packet-level application simulator
// standing in for CODES 1.0.0, which the paper extends with Jellyfish
// support for its Tables V and VI. It replays one communication phase of a
// trace-driven workload (every flow's bytes packetized and injected
// concurrently) over the switch network and reports the completion time.
//
// The paper's CODES configuration is reproduced: 20 GB/s links, 1500-byte
// packets, 64-packet buffers, and zero router/NIC/soft delays so that link
// bandwidth and contention dominate — which is why time quantizes cleanly:
// one simulation cycle is the transmission time of one packet on one link
// (1500 B / 20 GB/s = 75 ns), every link moves at most one packet per
// cycle, and switches are store-and-forward. Deadlock freedom uses the
// same VC-per-hop discipline as the flit-level simulator.
package appsim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// PathProvider supplies candidate paths per ordered switch pair.
type PathProvider interface {
	Paths(s, d graph.NodeID) []graph.Path
}

// Defaults from the paper's CODES configuration.
const (
	DefaultPacketBytes   = 1500
	DefaultLinkBandwidth = 20e9 // bytes per second
	DefaultBufDepth      = 64   // packets per VC
)

// Config parameterizes one workload replay.
type Config struct {
	// Topo is the network.
	Topo *jellyfish.Topology
	// Paths supplies the candidate paths.
	Paths PathProvider
	// Mechanism selects per-packet path choice (see internal/routing for
	// the paper's six mechanisms and ByName). nil defaults to
	// KSP-adaptive, matching the paper's recommendation.
	Mechanism routing.Mechanism
	// Flows is the terminal-level workload (apply the process-to-node
	// mapping before passing it here).
	Flows []traffic.SizedFlow
	// PacketBytes is the packet size (default 1500).
	PacketBytes int64
	// LinkBandwidth is the per-link bandwidth in bytes/second (default
	// 20 GB/s); it only converts cycles to seconds.
	LinkBandwidth float64
	// BufDepth is the per-VC buffer depth in packets (default 64).
	BufDepth int
	// NumVCs is the VC count (0 = derive from diameter).
	NumVCs int
	// Seed drives path randomization.
	Seed uint64
	// MaxCycles aborts a run that exceeds it (0 = 100x the zero-load lower
	// bound, a generous allowance that still catches livelock bugs).
	MaxCycles int64
	// TrackFlows records per-flow completion cycles in the Result.
	TrackFlows bool
	// Iterations replays the communication phase this many times (default
	// 1), modeling iterative stencil codes; ComputeGap idle cycles separate
	// consecutive phases (a bulk-synchronous compute step).
	Iterations int
	// ComputeGap is the idle-cycle gap between iterations.
	ComputeGap int64
	// Telemetry, when non-nil, receives per-link counters, per-candidate
	// path-choice counters and per-terminal injection-stall counters
	// during the run (Run initializes the collector's link layout). A nil
	// Telemetry costs nothing.
	Telemetry *telemetry.Collector
	// Faults optionally schedules link failures and restorations at
	// absolute cycles. A nil or empty schedule attaches no fault machinery
	// at all, so such runs are bit-identical to runs without the field.
	Faults *faults.Schedule
	// FaultPolicy controls what happens to packets caught by a failure and
	// whether dead path sets are recomputed. The zero value (reroute,
	// repair) is the graceful default.
	FaultPolicy faults.Policy
}

// Validate checks the configuration without running it. Run calls it
// first, so callers only need it to fail fast.
func (cfg Config) Validate() error {
	if cfg.Topo == nil || cfg.Paths == nil {
		return fmt.Errorf("appsim: Topo and Paths are required")
	}
	if cfg.PacketBytes < 0 {
		return fmt.Errorf("appsim: PacketBytes %d is negative", cfg.PacketBytes)
	}
	if cfg.LinkBandwidth < 0 {
		return fmt.Errorf("appsim: LinkBandwidth %g is negative", cfg.LinkBandwidth)
	}
	if cfg.BufDepth < 0 {
		return fmt.Errorf("appsim: BufDepth %d is negative", cfg.BufDepth)
	}
	if cfg.NumVCs < 0 {
		return fmt.Errorf("appsim: NumVCs %d is negative", cfg.NumVCs)
	}
	if cfg.MaxCycles < 0 {
		return fmt.Errorf("appsim: MaxCycles %d is negative", cfg.MaxCycles)
	}
	if cfg.Iterations < 0 {
		return fmt.Errorf("appsim: Iterations %d is negative", cfg.Iterations)
	}
	if cfg.ComputeGap < 0 {
		return fmt.Errorf("appsim: ComputeGap %d is negative", cfg.ComputeGap)
	}
	return nil
}

// Result reports one replay.
type Result struct {
	// Cycles is the cycle count until the last packet ejected.
	Cycles int64
	// Seconds is Cycles converted through the packet transmission time.
	Seconds float64
	// Packets is the total packets delivered.
	Packets int64
	// MaxHops observed.
	MaxHops int
	// FlowCompletions holds, per input flow (same order as Config.Flows),
	// the cycle its last packet was delivered (-1 for flows that sent
	// nothing: self flows or zero bytes). Only populated when
	// Config.TrackFlows is set.
	FlowCompletions []int64
	// Dropped counts packets discarded because of link failures (the drop
	// policy, or no surviving path). Dropped packets count toward flow
	// completion, so a lossy run still drains: Packets + Dropped equals the
	// injected total.
	Dropped int64
	// Rerouted counts packets re-pathed around a failed link.
	Rerouted int64
	// PathRepairs counts pairs whose path set was recomputed on the
	// failed-edge-filtered graph.
	PathRepairs int64
	// FaultEvents counts schedule events (downs and ups) that fired.
	FaultEvents int64
}

// FlowCompletionSeconds converts a completion cycle to seconds under the
// config's packet transmission time.
func FlowCompletionSeconds(cfg Config, cycles int64) float64 {
	pb := cfg.PacketBytes
	if pb == 0 {
		pb = DefaultPacketBytes
	}
	bw := cfg.LinkBandwidth
	if bw == 0 {
		bw = DefaultLinkBandwidth
	}
	return float64(cycles) * float64(pb) / bw
}

// flowState tracks one flow's remaining packets at its source.
type flowState struct {
	dstTerm int32
	dstSw   graph.NodeID
	left    int64 // packets remaining to inject
	inNet   int64 // packets injected but not yet delivered
	flowIdx int32 // index into Config.Flows
}

type pkt struct {
	path    graph.Path
	hop     int32
	dstTerm int32
	flowIdx int32
	next    int32
}

// Run replays the workload and returns the completion time. An error is
// returned for invalid configuration or when MaxCycles is exceeded.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.PacketBytes == 0 {
		cfg.PacketBytes = DefaultPacketBytes
	}
	if cfg.LinkBandwidth == 0 {
		cfg.LinkBandwidth = DefaultLinkBandwidth
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = DefaultBufDepth
	}
	mech := cfg.Mechanism
	if mech == nil {
		mech = routing.KSPAdaptive()
	}
	g := cfg.Topo.G
	numTerm := cfg.Topo.NumTerminals()
	numNet := g.NumDirectedLinks()
	numVC := cfg.NumVCs
	if numVC == 0 {
		m := graph.ComputeMetrics(g, 0)
		numVC = 2*int(m.Diameter) + 2
		if mech.NonMinimal() {
			numVC = 3*int(m.Diameter) + 2
		}
	}

	// Per-terminal flow lists and the total packet budget. Each iteration
	// of the workload rebuilds them from the config.
	var srcFlows [][]flowState
	remaining := make([]int64, len(cfg.Flows)) // undelivered packets per flow
	var totalPkts int64
	setupPhase := func() error {
		srcFlows = make([][]flowState, numTerm)
		totalPkts = 0
		for fi, f := range cfg.Flows {
			if f.Src < 0 || f.Src >= numTerm || f.Dst < 0 || f.Dst >= numTerm {
				return fmt.Errorf("appsim: flow %+v out of range", f)
			}
			if f.Src == f.Dst || f.Bytes <= 0 {
				continue
			}
			n := (f.Bytes + cfg.PacketBytes - 1) / cfg.PacketBytes
			srcFlows[f.Src] = append(srcFlows[f.Src], flowState{
				dstTerm: int32(f.Dst),
				dstSw:   cfg.Topo.SwitchOf(f.Dst),
				left:    n,
				flowIdx: int32(fi),
			})
			remaining[fi] = n
			totalPkts += n
		}
		return nil
	}
	if err := setupPhase(); err != nil {
		return Result{}, err
	}
	res := Result{}
	if cfg.TrackFlows {
		res.FlowCompletions = make([]int64, len(cfg.Flows))
		for i := range res.FlowCompletions {
			res.FlowCompletions[i] = -1
		}
	}
	if totalPkts == 0 {
		return res, nil
	}
	if cfg.MaxCycles == 0 {
		// Zero-load lower bound: the busiest terminal's serialization time.
		var maxPer int64
		for _, fl := range srcFlows {
			var per int64
			for _, f := range fl {
				per += f.left
			}
			if per > maxPer {
				maxPer = per
			}
		}
		iters := int64(cfg.Iterations)
		if iters < 1 {
			iters = 1
		}
		cfg.MaxCycles = 100*iters*(maxPer+int64(numVC*20)+1000) + iters*cfg.ComputeGap
	}

	tel := cfg.Telemetry
	if tel != nil {
		// Link rows: network links, ejection links, then pseudo rows for
		// the terminals' injection points (which carry only stall and
		// forward counters — injection here has no physical queue).
		links := make([]telemetry.LinkInfo, numNet+2*numTerm)
		for id := int32(0); int(id) < numNet; id++ {
			u, v := g.LinkEndpoints(id)
			links[id] = telemetry.LinkInfo{Kind: telemetry.KindNet, Src: int(u), Dst: int(v)}
		}
		for t := 0; t < numTerm; t++ {
			sw := int(cfg.Topo.SwitchOf(t))
			links[numNet+t] = telemetry.LinkInfo{Kind: telemetry.KindEject, Src: sw, Dst: t}
			links[numNet+numTerm+t] = telemetry.LinkInfo{Kind: telemetry.KindInject, Src: t, Dst: sw}
		}
		tel.Init(telemetry.Config{
			Links:       links,
			QueueCap:    int64(cfg.BufDepth) * int64(numVC),
			PathChoices: 32,
		})
	}

	// Fault machinery is only constructed for a non-empty schedule, so
	// fault-free runs take the exact pre-fault code paths (bit-identical
	// results, zero overhead beyond a nil check).
	var fst *faults.State
	if cfg.Faults.Len() > 0 {
		st, err := faults.NewState(g, cfg.Faults, cfg.FaultPolicy, faults.RepairConfigOf(cfg.Paths), numVC)
		if err != nil {
			return Result{}, err
		}
		if tel != nil {
			st.SetTelemetry(tel)
		}
		fst = st
	}

	rng := xrand.New(cfg.Seed)
	queues := make([][]fifo, numNet+numTerm) // network links then ejection links
	for i := range queues {
		queues[i] = make([]fifo, numVC)
	}
	occ := make([]int32, numNet+numTerm)
	occVC := make([]int32, (numNet+numTerm)*numVC)
	rrVC := make([]int32, numNet+numTerm)
	rrFlow := make([]int32, numTerm)
	ejBase := int32(numNet)

	var pkts []pkt
	free := int32(-1)
	alloc := func() int32 {
		if free >= 0 {
			id := free
			free = pkts[id].next
			return id
		}
		pkts = append(pkts, pkt{})
		return int32(len(pkts) - 1)
	}
	release := func(id int32) {
		pkts[id] = pkt{next: free}
		free = id
	}

	pickVC := func(link int32) int32 {
		start := rrVC[link]
		for i := 0; i < numVC; i++ {
			vc := (start + int32(i)) % int32(numVC)
			if queues[link][vc].len() > 0 {
				rrVC[link] = (vc + 1) % int32(numVC)
				return vc
			}
		}
		return -1
	}
	space := func(link, vc int32) bool {
		return int(occVC[int(link)*numVC+int(vc)]) < cfg.BufDepth
	}
	commit := func(link, vc int32) {
		occ[link]++
		occVC[int(link)*numVC+int(vc)]++
	}
	uncommit := func(link, vc int32) {
		occ[link]--
		occVC[int(link)*numVC+int(vc)]--
	}
	// The routing engine sees appsim's congestion through the first-hop
	// queue estimate and its path state through a View over the path DB
	// and the fault tracker; choose wraps the per-run mechanism state.
	// A nil path means no candidate survives the current failures (or the
	// pair has no paths at all); the caller decides between erroring and
	// dropping.
	est := firstHopLoad{g: g, occ: occ}
	view := routing.View{
		Provider: cfg.Paths,
		Faults:   fst,
		NumNodes: g.NumNodes(),
		MaxHops:  numVC,
	}
	mechState := mech.NewState()
	choose := func(srcSw, dstSw graph.NodeID) (graph.Path, int) {
		return mechState.Choose(&view, srcSw, dstSw, est, rng)
	}

	// Because router/NIC delays are zero, channel traversal is immediate:
	// a packet sent on a link this cycle enters the next queue this cycle
	// but cannot be forwarded again until the next cycle (store and
	// forward). We enforce that with a per-packet "moved at" stamp.
	movedAt := make([]int64, 0)
	stamp := func(id int32, clock int64) {
		for int(id) >= len(movedAt) {
			movedAt = append(movedAt, -1)
		}
		movedAt[id] = clock
	}

	var delivered int64
	var clock int64
	var phaseDropped int64 // dropped this phase; counts toward the drain target
	var rerouteQ []int32   // packets awaiting space on their replacement path

	// dropFlowPacket retires one packet of flow fi without delivering it:
	// the flow's completion accounting advances so the run still drains.
	dropFlowPacket := func(fi int32) {
		remaining[fi]--
		if remaining[fi] == 0 && res.FlowCompletions != nil {
			res.FlowCompletions[fi] = clock
		}
		phaseDropped++
		res.Dropped++
		if tel != nil {
			tel.CountFaultDrop()
		}
	}
	dropPkt := func(id int32) {
		dropFlowPacket(pkts[id].flowIdx)
		release(id)
	}
	// handleFault disposes of a packet caught by a link failure while
	// standing at switch cur: drop it, or choose a replacement path from
	// cur (through the same mechanism as injection, so reroutes see the
	// same congestion signals) and park it on the reroute queue.
	handleFault := func(id int32, cur graph.NodeID) {
		if fst.Policy().Drop {
			dropPkt(id)
			return
		}
		p := &pkts[id]
		dstSw := cfg.Topo.SwitchOf(int(p.dstTerm))
		var np graph.Path
		if cur == dstSw {
			np = graph.Path{cur}
		} else {
			np, _ = choose(cur, dstSw)
		}
		if np == nil || np.Hops() > numVC {
			dropPkt(id)
			return
		}
		p.path = np
		p.hop = 0
		rerouteQ = append(rerouteQ, id)
		res.Rerouted++
		if tel != nil {
			tel.CountFaultReroute()
		}
	}
	// flushDown reacts to freshly applied fault events: every packet queued
	// on either direction of a failed edge is pulled out and handled at its
	// current switch. Packets whose path crosses a failed edge further on
	// are caught lazily when they reach it (the forwarding loop).
	flushDown := func(evs []faults.Event) {
		for _, e := range evs {
			if e.Up {
				continue
			}
			down := g.LinkID(e.U, e.V)
			for _, link := range [2]int32{down, g.ReverseLink(down)} {
				for vc := int32(0); int(vc) < numVC; vc++ {
					q := &queues[link][vc]
					for q.len() > 0 {
						id := q.pop()
						uncommit(link, vc)
						p := &pkts[id]
						handleFault(id, p.path[p.hop])
					}
				}
			}
		}
	}
	// processReroutes pushes waiting rerouted packets into the first queue
	// of their replacement path; packets whose replacement died in a later
	// event choose again, and packets that do not fit wait another cycle.
	processReroutes := func() {
		kept := rerouteQ[:0]
		for _, id := range rerouteQ {
			p := &pkts[id]
			if p.path.Hops() > 0 && fst.LinkDown(g.LinkID(p.path[0], p.path[1])) {
				np, _ := choose(p.path[0], cfg.Topo.SwitchOf(int(p.dstTerm)))
				if np == nil || np.Hops() > numVC {
					dropPkt(id)
					continue
				}
				p.path = np
			}
			var link, vc int32
			if p.path.Hops() == 0 {
				link, vc = ejBase+p.dstTerm, 0
			} else {
				link, vc = g.LinkID(p.path[0], p.path[1]), 0
			}
			if !space(link, vc) {
				kept = append(kept, id)
				continue
			}
			commit(link, vc)
			queues[link][vc].push(id)
			stamp(id, clock)
		}
		rerouteQ = kept
	}

	iterations := cfg.Iterations
	if iterations < 1 {
		iterations = 1
	}
	var activeTerms []int32
	for iter := 0; iter < iterations; iter++ {
		if iter > 0 {
			if err := setupPhase(); err != nil {
				return res, err
			}
			clock += cfg.ComputeGap
		}
		delivered = 0
		phaseDropped = 0
		activeTerms = activeTerms[:0]
		for t := 0; t < numTerm; t++ {
			if len(srcFlows[t]) > 0 {
				activeTerms = append(activeTerms, int32(t))
			}
		}

		for delivered+phaseDropped < totalPkts {
			if clock >= cfg.MaxCycles {
				return res, fmt.Errorf("appsim: exceeded %d cycles with %d/%d packets delivered",
					cfg.MaxCycles, delivered, totalPkts)
			}

			// 0. Apply due fault events.
			if fst != nil {
				if evs := fst.Advance(clock); evs != nil {
					flushDown(evs)
				}
			}

			// 1. Ejection links drain one packet per cycle.
			for term := int32(0); int(term) < numTerm; term++ {
				link := ejBase + term
				if vc := pickVC(link); vc >= 0 {
					q := &queues[link][vc]
					id := q.peek()
					if movedAt[id] == clock {
						continue // store-and-forward: arrived this cycle
					}
					q.pop()
					uncommit(link, vc)
					if tel != nil {
						tel.CountForward(link)
					}
					if h := pkts[id].path.Hops(); h > res.MaxHops {
						res.MaxHops = h
					}
					fi := pkts[id].flowIdx
					remaining[fi]--
					if remaining[fi] == 0 && res.FlowCompletions != nil {
						res.FlowCompletions[fi] = clock
					}
					release(id)
					delivered++
				}
			}

			// 2. Network links forward.
			for link := int32(0); link < int32(numNet); link++ {
				if fst != nil && fst.LinkDown(link) {
					continue
				}
				vc := pickVC(link)
				if vc < 0 {
					continue
				}
				q := &queues[link][vc]
				id := q.peek()
				if movedAt[id] == clock {
					continue
				}
				p := &pkts[id]
				var nextLink, nextVC int32
				if int(p.hop)+1 >= p.path.Hops() {
					nextLink, nextVC = ejBase+p.dstTerm, 0
				} else {
					nextLink = g.LinkID(p.path[p.hop+1], p.path[p.hop+2])
					nextVC = p.hop + 1
				}
				if fst != nil && fst.LinkDown(nextLink) {
					// The packet's next hop died while it was queued here:
					// pull it and reroute/drop from its current switch.
					q.pop()
					uncommit(link, vc)
					handleFault(id, p.path[p.hop])
					continue
				}
				if !space(nextLink, nextVC) {
					if tel != nil {
						tel.CountStall(link)
					}
					continue
				}
				q.pop()
				uncommit(link, vc)
				commit(nextLink, nextVC)
				if tel != nil {
					tel.CountForward(link)
				}
				p.hop++
				queues[nextLink][nextVC].push(id)
				stamp(id, clock)
			}

			// 2b. Re-inject packets rerouted around failures.
			if len(rerouteQ) > 0 {
				processReroutes()
			}

			// 3. Injection: each terminal sends one packet per cycle,
			// round-robin over its live flows (MPI sends progress
			// concurrently).
			for _, term := range activeTerms {
				flows := srcFlows[term]
				if len(flows) == 0 {
					continue
				}
				srcSw := cfg.Topo.SwitchOf(int(term))
				start := int(rrFlow[term]) % len(flows)
				sent := false
				for i := 0; i < len(flows); i++ {
					fi := (start + i) % len(flows)
					f := &flows[fi]
					path, choiceIdx := choose(srcSw, f.dstSw)
					if path == nil {
						if fst == nil {
							return res, fmt.Errorf("appsim: no path %d->%d", srcSw, f.dstSw)
						}
						// No surviving path for this flow: drop one packet
						// per attempt so the run drains deterministically
						// instead of spinning to MaxCycles.
						dropFlowPacket(f.flowIdx)
						sent = true
						f.left--
						if f.left == 0 {
							flows[fi] = flows[len(flows)-1]
							srcFlows[term] = flows[:len(flows)-1]
						}
						rrFlow[term] = int32(fi + 1)
						break
					}
					if path.Hops() > numVC {
						return res, fmt.Errorf("appsim: path with %d hops exceeds %d VCs", path.Hops(), numVC)
					}
					var link, vc int32
					if path.Hops() == 0 {
						link, vc = ejBase+f.dstTerm, 0
					} else {
						link, vc = g.LinkID(path[0], path[1]), 0
					}
					if !space(link, vc) {
						continue // head-of-line across flows: try the next flow
					}
					id := alloc()
					pkts[id] = pkt{path: path, dstTerm: f.dstTerm, flowIdx: f.flowIdx, next: -1}
					commit(link, vc)
					queues[link][vc].push(id)
					stamp(id, clock)
					if tel != nil {
						tel.CountForward(int32(numNet + numTerm + int(term)))
						if choiceIdx >= 0 {
							tel.CountChoice(choiceIdx)
						}
					}
					sent = true
					f.left--
					if f.left == 0 {
						flows[fi] = flows[len(flows)-1]
						srcFlows[term] = flows[:len(flows)-1]
					}
					rrFlow[term] = int32(fi + 1)
					break
				}
				if tel != nil && !sent {
					// Every live flow was blocked at its first link: the
					// terminal stalled this cycle.
					tel.CountStall(int32(numNet + numTerm + int(term)))
				}
			}
			// Compact the active terminal list occasionally.
			if clock%1024 == 0 {
				live := activeTerms[:0]
				for _, term := range activeTerms {
					if len(srcFlows[term]) > 0 {
						live = append(live, term)
					}
				}
				activeTerms = live
				if tel != nil {
					tel.Snapshot(clock)
				}
			}
			if tel != nil {
				tel.SampleQueues(occ)
			}
			clock++
		}
		res.Packets += delivered
	}
	if tel != nil {
		tel.Snapshot(clock)
	}

	res.Cycles = clock
	res.Seconds = float64(clock) * float64(cfg.PacketBytes) / cfg.LinkBandwidth
	if fst != nil {
		downs, ups, repairs := fst.Counters()
		res.FaultEvents = downs + ups
		res.PathRepairs = repairs
	}
	return res, nil
}

// firstHopLoad backs routing.LoadEstimator with appsim's congestion
// signal: the occupancy of a path's first network link times its hop
// count (the same UGAL-style estimate flitsim computes from its credit
// counters). Zero-hop (same switch) paths cost 0.
type firstHopLoad struct {
	g   *graph.Graph
	occ []int32
}

func (e firstHopLoad) PathCost(p graph.Path) int {
	h := p.Hops()
	if h <= 0 {
		return 0
	}
	return int(e.occ[e.g.LinkID(p[0], p[1])]) * h
}

// fifo is a slice-backed int32 queue (duplicated from flitsim to keep the
// packages independent; both are small).
type fifo struct {
	buf  []int32
	head int
}

func (f *fifo) len() int { return len(f.buf) - f.head }
func (f *fifo) push(p int32) {
	if f.head > 64 && f.head*2 >= len(f.buf) {
		f.buf = append(f.buf[:0], f.buf[f.head:]...)
		f.head = 0
	}
	f.buf = append(f.buf, p)
}
func (f *fifo) peek() int32 { return f.buf[f.head] }
func (f *fifo) pop() int32 {
	p := f.buf[f.head]
	f.head++
	return p
}
