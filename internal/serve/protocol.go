// Package serve implements jfserve, the long-lived route-oracle daemon:
// warm paths.DBs keyed by (graph fingerprint | selector config | seed)
// are served over a newline-delimited JSON request/response protocol on
// a Unix socket or TCP listener. The wire protocol — framing, every
// request/response type, error codes and compatibility rules — is
// specified in docs/SERVICE.md; a third-party client needs only that
// document. The in-repo Go client lives in internal/serve/client.
//
// This file holds the wire types. They are plain structs marshaled with
// encoding/json, one object per line; field names below are the wire
// names. Any change here must be reflected in docs/SERVICE.md and, if
// incompatible, bump ProtocolVersion.
package serve

import "repro/internal/telemetry"

// ProtocolVersion is the wire protocol version. Every request and
// response carries it in "v"; the server rejects other versions with
// CodeBadVersion, so old clients fail loudly instead of misparsing.
const ProtocolVersion = 1

// MaxFrameBytes bounds one request line. A longer line gets a
// CodeFrameTooLarge error and the connection is closed (the frame
// boundary is unrecoverable once the limit is hit mid-line).
const MaxFrameBytes = 1 << 20

// MaxBatchPairs bounds the pairs of one routes-batch request.
const MaxBatchPairs = 8192

// MaxSweepPairs bounds the total pairs of one sweep request (generated
// or explicit). Larger workloads submit several sweeps.
const MaxSweepPairs = 1 << 20

// DefaultSweepChunk is the sweep result-frame size when the request
// leaves "chunk" unset.
const DefaultSweepChunk = 1024

// Request operations.
const (
	OpRoute       = "route"
	OpRoutesBatch = "routes-batch"
	OpEstimate    = "estimate"
	OpTopoLoad    = "topo-load"
	OpTopoEvict   = "topo-evict"
	OpStats       = "stats"
	// OpHealth reports readiness and resilience counters. It is exempt
	// from load shedding and the handler timeout, so probes get an
	// answer from an overloaded server — that is its whole point.
	OpHealth = "health"
	// OpSweep submits a long route sweep whose results stream back as
	// separate chunk frames (all carrying the sweep request's id) that
	// may interleave with this connection's other responses, so a long
	// sweep never head-of-line blocks lookups. See docs/SERVICE.md
	// "Streaming sweeps".
	OpSweep = "sweep"
)

// Test operations, registered only when Options.EnableTestOps is set
// (the chaos harness, internal/serve/chaos). A production daemon
// answers unknown-op. They are deliberately absent from docs/SERVICE.md
// beyond a footnote: not part of the public protocol.
const (
	// OpTestSleep holds an in-flight slot for the request's sleep_ms
	// milliseconds, to make shedding and handler timeouts deterministic
	// in tests.
	OpTestSleep = "test-sleep"
	// OpTestCrash panics inside the handler, to exercise per-request
	// panic recovery.
	OpTestCrash = "test-crash"
)

// Error codes (docs/SERVICE.md lists the full semantics of each).
const (
	// CodeBadJSON: the line is not a valid JSON object.
	CodeBadJSON = "bad-json"
	// CodeBadVersion: "v" is missing or not ProtocolVersion.
	CodeBadVersion = "bad-version"
	// CodeBadRequest: a required field is missing or malformed.
	CodeBadRequest = "bad-request"
	// CodeUnknownOp: "op" names no operation of this version.
	CodeUnknownOp = "unknown-op"
	// CodeUnknownTopo: "topo" names no currently loaded topology.
	CodeUnknownTopo = "unknown-topo"
	// CodeBadPair: src/dst is out of range or src == dst.
	CodeBadPair = "bad-pair"
	// CodePairNotFound: the pair is valid but absent from the loaded
	// (possibly pair-sampled) path DB.
	CodePairNotFound = "pair-not-found"
	// CodeNoPath: the pair is stored but has no usable path.
	CodeNoPath = "no-path"
	// CodeBatchTooLarge: a routes-batch request exceeds MaxBatchPairs.
	CodeBatchTooLarge = "batch-too-large"
	// CodeFrameTooLarge: the request line exceeds MaxFrameBytes; the
	// connection is closed after this error.
	CodeFrameTooLarge = "frame-too-large"
	// CodeTopoLoad: topo-load failed (bad parameters or build error).
	CodeTopoLoad = "topo-load-failed"
	// CodeOverloaded: the server refused the request (or, with an empty
	// id, the whole connection) to shed load; back off and retry.
	CodeOverloaded = "overloaded"
	// CodeTimeout: the handler exceeded the server's per-request
	// timeout. The connection stays open; the request may or may not
	// have taken effect (route choices advance adaptive state), so only
	// idempotent requests should be retried.
	CodeTimeout = "timeout"
	// CodeInternal: the handler panicked. The panic is recovered and
	// counted, this error frame is the connection's last: the server
	// closes it (the stream's consistency is no longer trusted), while
	// all other connections keep serving.
	CodeInternal = "internal-error"
)

// Request is the envelope of every client frame. Op-specific fields are
// pointers or slices so "absent" is distinguishable from zero values.
type Request struct {
	// V is the protocol version (required, must be ProtocolVersion).
	V int `json:"v"`
	// ID is an opaque client-chosen tag echoed in the response.
	ID string `json:"id,omitempty"`
	// Op selects the operation.
	Op string `json:"op"`

	// Topo is the topology key (route, routes-batch, estimate,
	// topo-evict), as returned by topo-load.
	Topo string `json:"topo,omitempty"`
	// Src and Dst are switch ids (route, estimate).
	Src *int32 `json:"src,omitempty"`
	Dst *int32 `json:"dst,omitempty"`
	// Pairs holds [src, dst] switch-id pairs (routes-batch).
	Pairs [][2]int32 `json:"pairs,omitempty"`
	// Params configures topo-load.
	Params *TopoParams `json:"params,omitempty"`
	// Sweep configures a sweep request.
	Sweep *SweepParams `json:"sweep,omitempty"`
	// SleepMS is the test-sleep hold time in milliseconds (test ops
	// only; ignored — like any unknown field — by production servers).
	SleepMS int `json:"sleep_ms,omitempty"`
}

// SweepParams configures a sweep: either Count seeded random pairs or
// an explicit Pairs list (mutually exclusive), routed through the
// topology's mechanism and streamed back in chunks.
type SweepParams struct {
	// Count routes this many server-generated pairs: uniform random
	// (src, dst != src) draws from a stream seeded by Seed, so a sweep
	// is reproducible across runs and codecs. 1..MaxSweepPairs.
	Count int `json:"count,omitempty"`
	// Seed seeds the generated pair stream (only with Count).
	Seed uint64 `json:"seed,omitempty"`
	// Chunk is the number of results per streamed chunk frame
	// (default DefaultSweepChunk, max MaxBatchPairs).
	Chunk int `json:"chunk,omitempty"`
	// Pairs is the explicit [src, dst] list to sweep instead of a
	// generated stream.
	Pairs [][2]int32 `json:"pairs,omitempty"`
}

// TopoParams configures a topo-load request. Zero values select the
// documented defaults, so {"topo":"small"} is a complete request.
type TopoParams struct {
	// Topo names a paper topology: small, medium or large. Empty
	// selects custom N/X/Y parameters instead.
	Topo string `json:"topo,omitempty"`
	// N, X, Y are the RRG parameters when Topo is empty.
	N int `json:"n,omitempty"`
	X int `json:"x,omitempty"`
	Y int `json:"y,omitempty"`
	// Selector is the path-selection scheme: KSP, rKSP, EDKSP, rEDKSP
	// or LLSKR (default rEDKSP).
	Selector string `json:"selector,omitempty"`
	// K is the number of paths per pair (default 8).
	K int `json:"k,omitempty"`
	// Seed is the experiment seed (default 1). The RRG construction
	// seed and the per-selector path-DB seed derive from it exactly as
	// the experiment binaries' -seed does (internal/seeds), so the
	// daemon serves the same graph instance jfnet/jfflit/jfapp run on
	// and hits the path cache jftopo -warm-paths populated.
	Seed uint64 `json:"seed,omitempty"`
	// TopoSample is the topology sample index within the seed
	// (default 0), matching the experiments' i-th RRG instance.
	TopoSample int `json:"topo_sample,omitempty"`
	// Mechanism is the routing mechanism answering route requests
	// (default ksp-adaptive).
	Mechanism string `json:"mechanism,omitempty"`
	// Estimator is the load estimator the mechanism reads: zero, hops
	// or link-load (default link-load).
	Estimator string `json:"estimator,omitempty"`
	// PairSample bounds the stored pairs: 0 stores all ordered pairs,
	// n > 0 stores a seeded random sample of n pairs (lookups outside
	// the sample answer pair-not-found).
	PairSample int `json:"pair_sample,omitempty"`
}

// Response is the envelope of every server frame. Exactly one payload
// field is set on success, matching the request's op.
type Response struct {
	V  int    `json:"v"`
	ID string `json:"id,omitempty"`
	// OK is false when Error is set.
	OK    bool       `json:"ok"`
	Error *ErrorInfo `json:"error,omitempty"`

	Route    *RouteResult    `json:"route,omitempty"`
	Batch    *BatchResult    `json:"batch,omitempty"`
	Estimate *EstimateResult `json:"estimate,omitempty"`
	Topo     *TopoResult     `json:"topo,omitempty"`
	Stats    *StatsResult    `json:"stats,omitempty"`
	Health   *HealthResult   `json:"health,omitempty"`

	// Sweep acknowledges an accepted sweep; SweepChunk and SweepDone
	// are the frames streamed after it, all carrying the sweep
	// request's id (docs/SERVICE.md "Streaming sweeps").
	Sweep      *SweepStart `json:"sweep,omitempty"`
	SweepChunk *SweepChunk `json:"sweep_chunk,omitempty"`
	SweepDone  *SweepDone  `json:"sweep_done,omitempty"`
}

// SweepStart acknowledges an accepted sweep before any results stream.
type SweepStart struct {
	TotalPairs int `json:"total_pairs"`
	ChunkSize  int `json:"chunk_size"`
	// Chunks is the number of chunk frames that will follow.
	Chunks int `json:"chunks"`
}

// SweepChunk carries one streamed slice of sweep results. Entries align
// with the sweep's pair order (generated or explicit), offset by
// Seq × the acknowledged chunk size.
type SweepChunk struct {
	// Seq numbers the chunk, 0-based and strictly increasing.
	Seq int `json:"seq"`
	// Routed counts this chunk's entries carrying a route.
	Routed  int          `json:"routed"`
	Entries []BatchEntry `json:"entries"`
}

// SweepDone is the sweep's final frame: totals over every chunk.
type SweepDone struct {
	Chunks int   `json:"chunks"`
	Routed int64 `json:"routed"`
	// Failed counts entries that answered a per-pair error code.
	Failed int64 `json:"failed"`
}

// ErrorInfo carries a machine-readable code and a human-readable
// message. Codes are stable API; messages are not.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// RouteResult is one chosen path.
type RouteResult struct {
	// Path is the switch id sequence, source first.
	Path []int32 `json:"path"`
	// Index is the chosen candidate's index in the pair's stored set,
	// or -1 for paths outside it (UGAL's composed detours).
	Index int `json:"index"`
	// Hops is len(Path) - 1.
	Hops int `json:"hops"`
}

// BatchEntry is one routes-batch element: a route or a per-pair error
// code (one bad pair does not fail the rest of the batch).
type BatchEntry struct {
	Route *RouteResult `json:"route,omitempty"`
	// Err is an error code (CodeBadPair, CodePairNotFound, CodeNoPath)
	// when the pair could not be routed, empty otherwise.
	Err string `json:"err,omitempty"`
}

// BatchResult answers routes-batch; Entries is index-aligned with the
// request's Pairs.
type BatchResult struct {
	Entries []BatchEntry `json:"entries"`
	// Routed counts the entries carrying a route.
	Routed int `json:"routed"`
}

// EstimateResult answers estimate: path-set quality of the pair plus
// the isolated-flow Equation-1 throughput estimate (1.0 = the pair's k
// sub-flows are fully link-disjoint and move at full terminal speed;
// lower values mean the set shares links with itself).
type EstimateResult struct {
	Candidates int     `json:"candidates"`
	MinHops    int     `json:"min_hops"`
	AvgHops    float64 `json:"avg_hops"`
	// MaxShare is the maximum number of the pair's paths crossing one
	// undirected link (Table IV's per-pair quantity; 1 = disjoint).
	MaxShare   int     `json:"max_share"`
	Throughput float64 `json:"throughput"`
}

// TopoResult answers topo-load.
type TopoResult struct {
	// Key identifies the loaded topology in later requests:
	// "<graph fingerprint>|<selector canonical form>|<seed>".
	Key string `json:"key"`
	// AlreadyLoaded reports that the key was already resident; the
	// existing DB was kept and no build ran.
	AlreadyLoaded bool `json:"already_loaded,omitempty"`
	Switches      int  `json:"switches"`
	Terminals     int  `json:"terminals"`
	// Pairs is the number of stored switch pairs.
	Pairs int `json:"pairs"`
	K     int `json:"k"`
	// CacheHit reports the DB was streamed from the on-disk path cache
	// rather than built (always false without -path-cache).
	CacheHit bool `json:"cache_hit,omitempty"`
	// LoadSeconds is the wall time of the build or cache load.
	LoadSeconds float64 `json:"load_seconds"`
}

// TopoInfo describes one loaded topology in a stats response.
type TopoInfo struct {
	Key       string `json:"key"`
	Switches  int    `json:"switches"`
	Pairs     int    `json:"pairs"`
	K         int    `json:"k"`
	Mechanism string `json:"mechanism"`
	Estimator string `json:"estimator"`
}

// HealthResult answers health: readiness plus the resilience counters a
// load balancer or operator needs to decide whether the daemon is
// degrading (shedding, timing out) or failing (panicking). Counters are
// cumulative since process start.
type HealthResult struct {
	// Ready is true while the server accepts and serves requests; false
	// once shutdown has begun (draining).
	Ready         bool    `json:"ready"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Topos is the number of warm (resident) topologies.
	Topos int `json:"topos"`
	// Conns is the number of open connections; MaxConns the configured
	// limit (0 = unlimited).
	Conns    int `json:"conns"`
	MaxConns int `json:"max_conns,omitempty"`
	// InFlight is the number of requests currently executing;
	// MaxInFlight the configured limit (0 = unlimited).
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Shed counts requests refused with the overloaded code; ConnShed
	// counts connections refused at the connection limit.
	Shed     int64 `json:"shed"`
	ConnShed int64 `json:"conn_shed"`
	// Panics counts recovered handler panics (each poisoned exactly one
	// connection).
	Panics int64 `json:"panics"`
	// HandlerTimeouts counts requests answered with the timeout code;
	// IOTimeouts counts connections closed on a read/write deadline.
	HandlerTimeouts int64 `json:"handler_timeouts"`
	IOTimeouts      int64 `json:"io_timeouts"`
	// SweepsActive is the number of sweeps currently streaming;
	// MaxSweeps the configured limit (0 = unlimited).
	SweepsActive int `json:"sweeps_active"`
	MaxSweeps    int `json:"max_sweeps,omitempty"`
}

// LatencySummary reports service-latency percentiles in microseconds
// (time from frame decode to response encode, per request).
type LatencySummary struct {
	Count      int64   `json:"count"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
}

// StatsResult answers stats.
type StatsResult struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts every request handled (including failed ones).
	Requests int64 `json:"requests"`
	// RouteLookups counts routed pairs (route counts 1, routes-batch
	// counts its routed entries).
	RouteLookups int64 `json:"route_lookups"`
	// QPS is Requests / UptimeSeconds.
	QPS float64 `json:"qps"`
	// PerOp breaks Requests down by operation name.
	PerOp map[string]int64 `json:"per_op"`
	// Latency summarizes per-request service time.
	Latency LatencySummary `json:"latency"`
	// Topos lists the resident topologies.
	Topos []TopoInfo `json:"topos"`
}

// latencySummaryOf converts a telemetry summary (microsecond buckets)
// to the wire shape.
func latencySummaryOf(s telemetry.Summary) LatencySummary {
	return LatencySummary{
		Count:      s.Count,
		MeanMicros: s.Mean,
		P50Micros:  s.P50,
		P90Micros:  s.P90,
		P99Micros:  s.P99,
	}
}

// errResponse builds a failure response.
func errResponse(id, code, message string) Response {
	return Response{V: ProtocolVersion, ID: id, OK: false,
		Error: &ErrorInfo{Code: code, Message: message}}
}

// okResponse builds a success envelope; the caller fills the payload.
func okResponse(id string) Response {
	return Response{V: ProtocolVersion, ID: id, OK: true}
}
