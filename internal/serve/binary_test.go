package serve_test

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// -update rewrites the golden v2 wire fixtures under testdata/v2. The
// committed bytes pin the wire format: an encoder change that alters
// them is a protocol break and must bump BinaryVersion instead.
var updateGolden = flag.Bool("update", false, "rewrite golden binary fixtures")

func dialBin(t *testing.T) *client.Client {
	t.Helper()
	c, err := client.DialBinary(bg, "unix", testSock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// rawBinConn dials, completes the preamble handshake by hand, and
// returns the connection with a reader positioned after the echo.
func rawBinConn(t *testing.T) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("unix", testSock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	br := bufio.NewReader(conn)
	if _, err := conn.Write(serve.BinaryPreamble[:]); err != nil {
		t.Fatal(err)
	}
	var echo [5]byte
	if _, err := io.ReadFull(br, echo[:]); err != nil {
		t.Fatalf("no preamble echo: %v", err)
	}
	if echo != serve.BinaryPreamble {
		t.Fatalf("preamble echo % x, want % x", echo, serve.BinaryPreamble)
	}
	return conn, br
}

// binRoundTrip writes one binary request frame and reads one response.
func binRoundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, id uint64, req serve.Request) serve.Response {
	t.Helper()
	payload, err := serve.AppendBinaryRequest(nil, id, &req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(serve.AppendFrame(nil, payload)); err != nil {
		t.Fatal(err)
	}
	return readBinResponse(t, br)
}

func readBinResponse(t *testing.T, br *bufio.Reader) serve.Response {
	t.Helper()
	var buf []byte
	p, err := serve.ReadFrame(br, &buf)
	if err != nil {
		t.Fatalf("reading response frame: %v", err)
	}
	resp, err := serve.DecodeBinaryResponse(p)
	if err != nil {
		t.Fatalf("decoding response frame: %v", err)
	}
	return resp
}

func TestBinaryRouteRoundTrip(t *testing.T) {
	c := dialBin(t)
	r, err := c.Route(bg, testKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Path) < 2 || r.Path[0] != 0 || r.Path[len(r.Path)-1] != 1 {
		t.Fatalf("path %v does not connect 0->1", r.Path)
	}
	if r.Hops != len(r.Path)-1 {
		t.Fatalf("hops %d for path of %d nodes", r.Hops, len(r.Path))
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	c := dialBin(t)
	pairs := [][2]int32{{0, 1}, {2, 3}, {5, 5}, {4, 9}}
	br, err := c.RoutesBatch(bg, testKey, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Entries) != len(pairs) || br.Routed != 3 {
		t.Fatalf("got %d entries, routed %d; want 4 entries, 3 routed", len(br.Entries), br.Routed)
	}
	if br.Entries[2].Err != serve.CodeBadPair || br.Entries[2].Route != nil {
		t.Fatalf("self-pair entry = %+v, want err %s", br.Entries[2], serve.CodeBadPair)
	}
	for _, e := range []int{0, 1, 3} {
		ent := br.Entries[e]
		if ent.Route == nil {
			t.Fatalf("entry %d: no route (err %s)", e, ent.Err)
		}
		p := ent.Route.Path
		if p[0] != pairs[e][0] || p[len(p)-1] != pairs[e][1] {
			t.Fatalf("entry %d: path %v does not connect %v", e, p, pairs[e])
		}
		if ent.Route.Hops != len(p)-1 {
			t.Fatalf("entry %d: hops %d for %d-node path (reconstructed wrong)", e, ent.Route.Hops, len(p))
		}
	}
}

func TestBinaryErrorCodes(t *testing.T) {
	c := dialBin(t)
	_, err := c.Route(bg, testKey, 3, 3)
	wantCode(t, err, serve.CodeBadPair)
	_, err = c.Route(bg, "no-such-key", 0, 1)
	wantCode(t, err, serve.CodeUnknownTopo)
	_, err = c.RoutesBatch(bg, testKey, nil)
	wantCode(t, err, serve.CodeBadRequest)
	pairs := make([][2]int32, serve.MaxBatchPairs+1)
	for i := range pairs {
		pairs[i] = [2]int32{0, 1}
	}
	_, err = c.RoutesBatch(bg, testKey, pairs)
	wantCode(t, err, serve.CodeBatchTooLarge)
	wantCode(t, c.TopoEvict(bg, "no-such-key"), serve.CodeUnknownTopo)
	// The connection survives every one of those.
	if _, err := c.Health(bg); err != nil {
		t.Fatalf("connection unusable after error responses: %v", err)
	}
}

// TestBinaryNegotiationWrongVersion pins version skew at the preamble:
// a future-version client gets a binary bad-version error frame and the
// connection closes.
func TestBinaryNegotiationWrongVersion(t *testing.T) {
	conn, err := net.Dial("unix", testSock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pre := serve.BinaryPreamble
	pre[4] = serve.BinaryVersion + 1
	if _, err := conn.Write(pre[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp := readBinResponse(t, br)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadVersion {
		t.Fatalf("got %+v, want %s", resp, serve.CodeBadVersion)
	}
	var one [1]byte
	if _, err := br.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open after version mismatch (read: %v)", err)
	}
}

// TestBinaryNegotiationGarbage covers a NUL first byte that is not the
// preamble: binary bad-request frame, then close.
func TestBinaryNegotiationGarbage(t *testing.T) {
	conn, err := net.Dial("unix", testSock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x00, 'X', 'Y', 'Z', 0x09}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp := readBinResponse(t, br)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadRequest {
		t.Fatalf("got %+v, want %s", resp, serve.CodeBadRequest)
	}
	var one [1]byte
	if _, err := br.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open after bad preamble (read: %v)", err)
	}
}

func TestBinaryZeroLengthFrame(t *testing.T) {
	conn, br := rawBinConn(t)
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	resp := readBinResponse(t, br)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadRequest {
		t.Fatalf("got %+v, want %s", resp, serve.CodeBadRequest)
	}
	var one [1]byte
	if _, err := br.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open after zero-length frame (read: %v)", err)
	}
}

func TestBinaryOversizedLengthPrefix(t *testing.T) {
	conn, br := rawBinConn(t)
	var hdr [4]byte
	hdr[0] = 0x01 // MaxFrameBytes+1 little-endian: 0x00100001
	hdr[2] = 0x10
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp := readBinResponse(t, br)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeFrameTooLarge {
		t.Fatalf("got %+v, want %s", resp, serve.CodeFrameTooLarge)
	}
	var one [1]byte
	if _, err := br.Read(one[:]); err != io.EOF {
		t.Fatalf("connection still open after oversized prefix (read: %v)", err)
	}
}

// TestBinaryUnknownOpcode mirrors JSON's unknown-op tolerance: a future
// opcode answers unknown-op and the connection stays open, even with
// trailing field bytes the server cannot parse.
func TestBinaryUnknownOpcode(t *testing.T) {
	conn, br := rawBinConn(t)
	payload := make([]byte, 0, 16)
	payload = append(payload, 7, 0, 0, 0, 0, 0, 0, 0) // id 7
	payload = append(payload, 99)                     // unknown opcode
	payload = append(payload, 0xde, 0xad, 0xbe)       // a newer client's fields
	if _, err := conn.Write(serve.AppendFrame(nil, payload)); err != nil {
		t.Fatal(err)
	}
	resp := readBinResponse(t, br)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeUnknownOp {
		t.Fatalf("got %+v, want %s", resp, serve.CodeUnknownOp)
	}
	if resp.ID != "7" {
		t.Fatalf("error response dropped the request id: %+v", resp)
	}
	after := binRoundTrip(t, conn, br, 8, serve.Request{Op: serve.OpHealth})
	if !after.OK || after.ID != "8" {
		t.Fatalf("connection unusable after unknown opcode: %+v", after)
	}
}

// TestBinaryMalformedPayload sends a well-framed but truncated payload:
// bad-request, and the connection survives (the frame boundary held).
func TestBinaryMalformedPayload(t *testing.T) {
	conn, br := rawBinConn(t)
	good, err := serve.AppendBinaryRequest(nil, 3, &serve.Request{
		Op: serve.OpRoute, Topo: testKey, Src: ptr(int32(0)), Dst: ptr(int32(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(serve.AppendFrame(nil, good[:len(good)-2])); err != nil {
		t.Fatal(err)
	}
	resp := readBinResponse(t, br)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadRequest {
		t.Fatalf("got %+v, want %s", resp, serve.CodeBadRequest)
	}
	if resp.ID != "3" {
		t.Fatalf("truncated-payload error dropped the id: %+v", resp)
	}
	after := binRoundTrip(t, conn, br, 4, serve.Request{Op: serve.OpStats})
	if !after.OK {
		t.Fatalf("connection unusable after malformed payload: %+v", after)
	}
}

// TestBinaryRefusalAtConnLimit: the connection-limit refusal frame is
// always JSON (written before the server reads the codec preamble); the
// binary client must surface it as the overloaded RemoteError.
func TestBinaryRefusalAtConnLimit(t *testing.T) {
	_, sock := startServer(t, serve.Options{MaxConns: 1})
	held, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	// The held conn must be registered before the second dial; a JSON
	// probe forces the accept loop to have admitted it.
	sc := bufio.NewScanner(held)
	if _, err := fmt.Fprintln(held, `{"v":1,"op":"health"}`); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	_, err = client.DialBinary(bg, "unix", sock)
	wantCode(t, err, serve.CodeOverloaded)
}

func ptr[T any](v T) *T { return &v }

// TestBinaryGoldenFixtures pins the exact v2 wire bytes of one
// representative frame per op and response kind. Run with -update to
// regenerate after an intentional format change (which must also bump
// BinaryVersion and docs/SERVICE.md).
func TestBinaryGoldenFixtures(t *testing.T) {
	reqs := []struct {
		name string
		id   uint64
		req  serve.Request
	}{
		{"req-route", 1, serve.Request{Op: serve.OpRoute, Topo: "topo-A", Src: ptr(int32(3)), Dst: ptr(int32(9))}},
		{"req-batch", 2, serve.Request{Op: serve.OpRoutesBatch, Topo: "topo-A", Pairs: [][2]int32{{0, 1}, {7, 4}, {-1, 2}}}},
		{"req-estimate", 3, serve.Request{Op: serve.OpEstimate, Topo: "topo-A", Src: ptr(int32(0)), Dst: ptr(int32(5))}},
		{"req-topo-load", 4, serve.Request{Op: serve.OpTopoLoad, Params: &serve.TopoParams{
			Topo: "small", Selector: "rEDKSP", K: 4, Seed: 11, Mechanism: "ksp-adaptive",
			Estimator: "link-load", PairSample: 20,
		}}},
		{"req-topo-evict", 5, serve.Request{Op: serve.OpTopoEvict, Topo: "topo-A"}},
		{"req-stats", 6, serve.Request{Op: serve.OpStats}},
		{"req-health", 7, serve.Request{Op: serve.OpHealth}},
		{"req-sweep-count", 8, serve.Request{Op: serve.OpSweep, Topo: "topo-A", Sweep: &serve.SweepParams{Count: 1000, Seed: 5, Chunk: 128}}},
		{"req-sweep-pairs", 9, serve.Request{Op: serve.OpSweep, Topo: "topo-A", Sweep: &serve.SweepParams{Pairs: [][2]int32{{1, 2}, {3, 4}}}}},
		{"req-test-sleep", 10, serve.Request{Op: serve.OpTestSleep, SleepMS: 250}},
	}
	resps := []struct {
		name string
		resp serve.Response
	}{
		{"resp-error", serve.Response{ID: "1", Error: &serve.ErrorInfo{Code: serve.CodeOverloaded, Message: "in-flight limit reached"}}},
		{"resp-ok", serve.Response{ID: "5", OK: true}},
		{"resp-route", serve.Response{ID: "1", OK: true, Route: &serve.RouteResult{Path: []int32{3, 12, 9}, Index: 2, Hops: 2}}},
		{"resp-batch", serve.Response{ID: "2", OK: true, Batch: &serve.BatchResult{Routed: 1, Entries: []serve.BatchEntry{
			{Route: &serve.RouteResult{Path: []int32{0, 1}, Index: 0, Hops: 1}},
			{Err: serve.CodeBadPair},
		}}}},
		{"resp-estimate", serve.Response{ID: "3", OK: true, Estimate: &serve.EstimateResult{
			Candidates: 4, MinHops: 2, AvgHops: 2.5, MaxShare: 2, Throughput: 0.5,
		}}},
		{"resp-topo", serve.Response{ID: "4", OK: true, Topo: &serve.TopoResult{
			Key: "small/rEDKSP/k=4/seed=11/sample=20", AlreadyLoaded: true, CacheHit: false,
			Switches: 20, Terminals: 16, Pairs: 20, K: 4, LoadSeconds: 0.25,
		}}},
		{"resp-health", serve.Response{ID: "7", OK: true, Health: &serve.HealthResult{
			Ready: true, UptimeSeconds: 1.5, Topos: 1, Conns: 2, MaxConns: 64,
			InFlight: 1, MaxInFlight: 8, Shed: 3, ConnShed: 1, Panics: 0,
			HandlerTimeouts: 2, IOTimeouts: 4, SweepsActive: 1, MaxSweeps: 16,
		}}},
		{"resp-sweep-start", serve.Response{ID: "8", OK: true, Sweep: &serve.SweepStart{TotalPairs: 1000, ChunkSize: 128, Chunks: 8}}},
		{"resp-sweep-chunk", serve.Response{ID: "8", OK: true, SweepChunk: &serve.SweepChunk{Seq: 0, Routed: 1, Entries: []serve.BatchEntry{
			{Route: &serve.RouteResult{Path: []int32{1, 2}, Index: -1, Hops: 1}},
		}}}},
		{"resp-sweep-done", serve.Response{ID: "8", OK: true, SweepDone: &serve.SweepDone{Chunks: 8, Routed: 990, Failed: 10}}},
	}

	check := func(t *testing.T, name string, frame []byte) {
		t.Helper()
		path := filepath.Join("testdata", "v2", name+".bin")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, frame, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden fixture (run with -update): %v", err)
		}
		if !bytes.Equal(frame, want) {
			t.Fatalf("wire bytes drifted from %s:\n got  % x\n want % x", path, frame, want)
		}
	}

	for _, tc := range reqs {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := serve.AppendBinaryRequest(nil, tc.id, &tc.req)
			if err != nil {
				t.Fatal(err)
			}
			check(t, tc.name, serve.AppendFrame(nil, payload))

			// Every fixture must decode back to what produced it.
			id, got, err := serve.DecodeBinaryRequest(payload)
			if err != nil {
				t.Fatalf("golden request does not decode: %v", err)
			}
			if id != tc.id {
				t.Fatalf("id %d, want %d", id, tc.id)
			}
			want := tc.req
			want.V = serve.ProtocolVersion
			want.ID = fmt.Sprint(tc.id)
			if want.Op == serve.OpTopoLoad && want.Params == nil {
				want.Params = &serve.TopoParams{}
			}
			if want.Op == serve.OpSweep && want.Sweep == nil {
				want.Sweep = &serve.SweepParams{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("request round trip drifted:\n got  %+v\n want %+v", got, want)
			}
		})
	}
	for _, tc := range resps {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := serve.AppendBinaryResponse(nil, &tc.resp)
			if err != nil {
				t.Fatal(err)
			}
			check(t, tc.name, serve.AppendFrame(nil, payload))

			got, err := serve.DecodeBinaryResponse(payload)
			if err != nil {
				t.Fatalf("golden response does not decode: %v", err)
			}
			want := tc.resp
			want.V = serve.ProtocolVersion
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("response round trip drifted:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

// TestBinaryConcurrentBatches is the binary twin of the JSON race gate:
// concurrent binary clients hammer routes-batch (and with it the striped
// adaptive choice) under -race.
func TestBinaryConcurrentBatches(t *testing.T) {
	const clients = 8
	const batches = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.DialBinary(bg, "unix", testSock)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			pairs := make([][2]int32, 64)
			for b := 0; b < batches; b++ {
				for j := range pairs {
					s := int32((i*37 + b*11 + j) % testSw)
					d := (s + 1 + int32(j%9)) % int32(testSw)
					if d == s {
						d = (d + 1) % int32(testSw)
					}
					pairs[j] = [2]int32{s, d}
				}
				br, err := c.RoutesBatch(bg, testKey, pairs)
				if err != nil {
					errs <- err
					return
				}
				if br.Routed != len(pairs) {
					errs <- fmt.Errorf("client %d: routed %d of %d", i, br.Routed, len(pairs))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBinaryJSONInterleaved verifies codec negotiation is genuinely
// per-connection: JSON and binary clients share one server and neither
// corrupts the other's stream.
func TestBinaryJSONInterleaved(t *testing.T) {
	cj := dial(t)
	cb := dialBin(t)
	for i := 0; i < 10; i++ {
		if _, err := cj.Route(bg, testKey, 0, 1); err != nil {
			t.Fatalf("json op %d: %v", i, err)
		}
		if _, err := cb.Route(bg, testKey, 0, 1); err != nil {
			t.Fatalf("binary op %d: %v", i, err)
		}
	}
}
