package chaos

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// recordConn captures the sizes of the writes it receives.
type recordConn struct {
	net.Conn // nil; only Write/Close are used
	mu       sync.Mutex
	chunks   []int
	buf      bytes.Buffer
	closed   bool
}

func (r *recordConn) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chunks = append(r.chunks, len(p))
	return r.buf.Write(p)
}

func (r *recordConn) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return nil
}

func TestWrapChunkingDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte("jellyfish"), 40)
	run := func() ([]int, []byte) {
		rec := &recordConn{}
		fc := Wrap(rec, ConnConfig{Seed: 42, WriteChunk: 11})
		n, err := fc.Write(payload)
		if err != nil || n != len(payload) {
			t.Fatalf("write = %d, %v; want %d, nil", n, err, len(payload))
		}
		return rec.chunks, rec.buf.Bytes()
	}
	chunks1, out1 := run()
	chunks2, out2 := run()
	if !bytes.Equal(out1, payload) {
		t.Fatal("chunked write corrupted the payload")
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("same seed produced different payloads")
	}
	if len(chunks1) < 2 {
		t.Fatalf("payload of %d bytes written in %d chunks; chunking inactive", len(payload), len(chunks1))
	}
	for i, c := range chunks1 {
		if c < 1 || c > 11 {
			t.Fatalf("chunk %d has size %d outside [1, 11]", i, c)
		}
		if c != chunks2[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", chunks1, chunks2)
		}
	}
}

func TestWrapDropAfterBytes(t *testing.T) {
	rec := &recordConn{}
	fc := Wrap(rec, ConnConfig{Seed: 1, DropAfterBytes: 10})
	payload := []byte("0123456789abcdef")
	n, err := fc.Write(payload)
	if err == nil {
		t.Fatal("write past the drop point succeeded")
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before the drop, want exactly 10", n)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.closed {
		t.Fatal("underlying connection not closed at the drop point")
	}
	if got := rec.buf.String(); got != "0123456789" {
		t.Fatalf("delivered %q, want the first 10 bytes", got)
	}
	// Every later write fails fast.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write after drop succeeded")
	}
}

func TestWrapReadDelay(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := Wrap(a, ConnConfig{Seed: 7, ReadDelay: 20 * time.Millisecond})
	go b.Write([]byte("hi"))
	t0 := time.Now()
	buf := make([]byte, 2)
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("read took %v, delay schedule broken", elapsed)
	}
}
