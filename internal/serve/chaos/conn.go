// Package chaos is the jfserve fault-injection harness: a net.Conn
// wrapper that perturbs I/O on a seeded schedule, a cast of misbehaving
// clients (slow-loris writers, mid-frame disconnects, garbage floods,
// deadline-exceeding batches, crash injectors), and a swarm runner that
// points rogues and well-behaved clients at a live daemon at once. The
// package's own tests double as the chaos gate (`make chaos-smoke` and
// the -race leg in `make check`): the daemon must stay live, keep
// serving the well-behaved clients, and report counters that reconcile
// with the injected fault schedule.
//
// Everything is deterministic from a seed (repo convention: same seed,
// same schedule), so a chaos failure replays exactly.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/xrand"
)

// ConnConfig schedules faults on a wrapped connection. The zero value
// is transparent; each field enables one fault independently.
type ConnConfig struct {
	// Seed derives the fault schedule (0 behaves as 1).
	Seed uint64
	// ReadDelay, when positive, sleeps a uniform random duration in
	// [0, ReadDelay] before each Read.
	ReadDelay time.Duration
	// WriteDelay does the same before each underlying Write.
	WriteDelay time.Duration
	// WriteChunk, when positive, splits each Write into chunks of
	// uniform random size in [1, WriteChunk] — a peer that fragments
	// frames across many small segments.
	WriteChunk int
	// DropAfterBytes, when positive, hard-closes the connection once
	// this many bytes have been written — a peer dying mid-frame.
	DropAfterBytes int64
}

// faultConn wraps a net.Conn with the configured faults. Reads and
// writes each use their own RNG stream so read scheduling does not
// perturb write chunking.
type faultConn struct {
	net.Conn
	cfg ConnConfig

	mu       sync.Mutex
	readRNG  *xrand.RNG
	writeRNG *xrand.RNG
	written  int64
	dropped  bool
}

// Wrap returns conn with cfg's faults layered on top. The result is
// safe for the usual net.Conn discipline (one reader, one writer).
func Wrap(conn net.Conn, cfg ConnConfig) net.Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultConn{
		Conn:     conn,
		cfg:      cfg,
		readRNG:  xrand.NewPair(seed, 0x72656164), // "read"
		writeRNG: xrand.NewPair(seed, 0x77726974), // "writ"
	}
}

func (f *faultConn) delay(max time.Duration, rng *xrand.RNG) {
	if max <= 0 {
		return
	}
	f.mu.Lock()
	d := time.Duration(rng.Int64N(int64(max) + 1))
	f.mu.Unlock()
	time.Sleep(d)
}

func (f *faultConn) Read(p []byte) (int, error) {
	f.delay(f.cfg.ReadDelay, f.readRNG)
	return f.Conn.Read(p)
}

func (f *faultConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		f.mu.Lock()
		if f.dropped {
			f.mu.Unlock()
			return total, fmt.Errorf("chaos: connection dropped after %d bytes", f.written)
		}
		n := len(p)
		if f.cfg.WriteChunk > 0 && f.cfg.WriteChunk < n {
			n = 1 + f.writeRNG.IntN(f.cfg.WriteChunk)
			if n > len(p) {
				n = len(p)
			}
		}
		drop := f.cfg.DropAfterBytes > 0 && f.written+int64(n) > f.cfg.DropAfterBytes
		if drop {
			// Truncate to the drop point, send that, then die.
			if keep := f.cfg.DropAfterBytes - f.written; keep > 0 {
				n = int(keep)
			} else {
				f.dropped = true
				f.mu.Unlock()
				f.Conn.Close()
				return total, fmt.Errorf("chaos: connection dropped after %d bytes", f.written)
			}
		}
		f.mu.Unlock()

		f.delay(f.cfg.WriteDelay, f.writeRNG)
		wn, err := f.Conn.Write(p[:n])
		f.mu.Lock()
		f.written += int64(wn)
		f.mu.Unlock()
		total += wn
		if err != nil {
			return total, err
		}
		p = p[wn:]
		if drop {
			f.mu.Lock()
			f.dropped = true
			f.mu.Unlock()
			f.Conn.Close()
			return total, fmt.Errorf("chaos: connection dropped after %d bytes", f.cfg.DropAfterBytes)
		}
	}
	return total, nil
}
