package chaos

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"repro/internal/serve"
	"repro/internal/xrand"
)

// This file holds the binary-protocol (v2) rogues: clients that abuse
// the length-prefixed framing and the preamble negotiation the way the
// JSON rogues in rogue.go abuse the line protocol.

// binHandshake performs a correct v2 negotiation: send the preamble,
// read the echo.
func binHandshake(conn net.Conn) (*bufio.Reader, error) {
	if _, err := conn.Write(serve.BinaryPreamble[:]); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var echo [5]byte
	if _, err := io.ReadFull(br, echo[:]); err != nil {
		return nil, err
	}
	if echo != serve.BinaryPreamble {
		return nil, fmt.Errorf("handshake echo % x, want % x", echo, serve.BinaryPreamble)
	}
	return br, nil
}

// readBinError reads one binary frame and decodes it, expecting an
// error response.
func readBinError(br *bufio.Reader) (serve.Response, error) {
	var buf []byte
	payload, err := serve.ReadFrame(br, &buf)
	if err != nil {
		return serve.Response{}, err
	}
	resp, err := serve.DecodeBinaryResponse(payload)
	if err != nil {
		return serve.Response{}, fmt.Errorf("unparseable response frame % x: %w", payload, err)
	}
	if resp.OK || resp.Error == nil {
		return resp, fmt.Errorf("server accepted abuse: %+v", resp)
	}
	return resp, nil
}

// BinaryGarbagePrefix negotiates the binary protocol correctly and then
// sends frames with hostile length prefixes — over the frame cap, zero,
// and valid-length frames full of junk. Each must draw an error frame
// (closing the connection where the spec says so, after which it
// redials), never silence or a crash.
type BinaryGarbagePrefix struct {
	// Frames is the number of hostile frames to send (default 15).
	Frames int
	// Seed derives the junk (default 1).
	Seed uint64

	// ErrorFrames counts well-formed binary error responses received.
	ErrorFrames int
}

func (g *BinaryGarbagePrefix) Name() string { return "binary-garbage-prefix" }

func (g *BinaryGarbagePrefix) Run(ctx context.Context, network, addr string) error {
	frames := g.Frames
	if frames <= 0 {
		frames = 15
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	rng := xrand.NewPair(seed, 0x62677066) // "bgpf"
	conn, err := dialCtx(ctx, network, addr)
	if err != nil {
		return err
	}
	defer func() { conn.Close() }()
	br, err := binHandshake(conn)
	if err != nil {
		return fmt.Errorf("binary-garbage-prefix: handshake: %w", err)
	}
	redial := func() error {
		conn.Close()
		if conn, err = dialCtx(ctx, network, addr); err != nil {
			return err
		}
		if br, err = binHandshake(conn); err != nil {
			return fmt.Errorf("binary-garbage-prefix: re-handshake: %w", err)
		}
		return nil
	}
	var hdr [4]byte
	for i := 0; i < frames; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		switch rng.IntN(3) {
		case 0:
			// Length prefix over the cap: one frame-too-large error,
			// then the server closes.
			binary.LittleEndian.PutUint32(hdr[:], uint32(serve.MaxFrameBytes+1+rng.IntN(1<<10)))
			if _, err := conn.Write(hdr[:]); err != nil {
				if err := redial(); err != nil {
					return err
				}
				continue
			}
			resp, err := readBinError(br)
			if err != nil {
				return fmt.Errorf("binary-garbage-prefix: oversized prefix: %w", err)
			}
			if resp.Error.Code != serve.CodeFrameTooLarge {
				return fmt.Errorf("binary-garbage-prefix: oversized prefix drew %s, want %s",
					resp.Error.Code, serve.CodeFrameTooLarge)
			}
			g.ErrorFrames++
			if err := redial(); err != nil {
				return err
			}
		case 1:
			// Zero length prefix: carries nothing to resync on, so one
			// bad-request error and a close.
			binary.LittleEndian.PutUint32(hdr[:], 0)
			if _, err := conn.Write(hdr[:]); err != nil {
				if err := redial(); err != nil {
					return err
				}
				continue
			}
			resp, err := readBinError(br)
			if err != nil {
				return fmt.Errorf("binary-garbage-prefix: zero prefix: %w", err)
			}
			if resp.Error.Code != serve.CodeBadRequest {
				return fmt.Errorf("binary-garbage-prefix: zero prefix drew %s, want %s",
					resp.Error.Code, serve.CodeBadRequest)
			}
			g.ErrorFrames++
			if err := redial(); err != nil {
				return err
			}
		default:
			// Well-framed junk payload: an error frame, connection open.
			payload := make([]byte, 1+rng.IntN(64))
			for j := range payload {
				payload[j] = byte(rng.IntN(256))
			}
			frame := serve.AppendFrame(nil, payload)
			if _, err := conn.Write(frame); err != nil {
				if err := redial(); err != nil {
					return err
				}
				continue
			}
			if _, err := readBinError(br); err != nil {
				return fmt.Errorf("binary-garbage-prefix: junk payload: %w", err)
			}
			g.ErrorFrames++
		}
	}
	return nil
}

// BinaryMidFrameDisconnect negotiates correctly, writes a length prefix
// promising more bytes than it ever sends, and drops the connection.
// The server must clean up silently, exactly like its JSON counterpart.
type BinaryMidFrameDisconnect struct {
	// Conns is the number of connect-abort cycles (default 3).
	Conns int
	// Seed varies the promised length and the bytes delivered.
	Seed uint64
}

func (m *BinaryMidFrameDisconnect) Name() string { return "binary-mid-frame-disconnect" }

func (m *BinaryMidFrameDisconnect) Run(ctx context.Context, network, addr string) error {
	conns := m.Conns
	if conns <= 0 {
		conns = 3
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	rng := xrand.NewPair(seed, 0x626d6664) // "bmfd"
	for i := 0; i < conns; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := dialCtx(ctx, network, addr)
		if err != nil {
			return err
		}
		if _, err := binHandshake(conn); err != nil {
			conn.Close()
			return fmt.Errorf("binary-mid-frame-disconnect: handshake: %w", err)
		}
		promised := 16 + rng.IntN(1024)
		sent := rng.IntN(promised) // always short of the promise
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(promised))
		conn.Write(hdr[:])
		conn.Write(make([]byte, sent))
		conn.Close()
	}
	return nil
}

// NegotiationAbuser attacks the preamble itself: wrong magic, version
// skew, and connections dropped mid-preamble. The malformed preambles
// must draw the documented binary error frame followed by a close; the
// truncated ones must be cleaned up silently.
type NegotiationAbuser struct {
	// Rounds is the number of abuse cycles, each running every variant
	// (default 2).
	Rounds int

	// Rejections counts the error frames received for malformed
	// preambles.
	Rejections int
}

func (n *NegotiationAbuser) Name() string { return "negotiation-abuser" }

func (n *NegotiationAbuser) Run(ctx context.Context, network, addr string) error {
	rounds := n.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	expectReject := func(pre []byte, wantCode string) error {
		conn, err := dialCtx(ctx, network, addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write(pre); err != nil {
			return fmt.Errorf("write preamble: %w", err)
		}
		br := bufio.NewReader(conn)
		resp, err := readBinError(br)
		if err != nil {
			return fmt.Errorf("preamble % x: %w", pre, err)
		}
		if resp.Error.Code != wantCode {
			return fmt.Errorf("preamble % x drew %s, want %s", pre, resp.Error.Code, wantCode)
		}
		// The error frame must be the connection's last breath.
		if extra, err := br.ReadByte(); err == nil {
			return fmt.Errorf("connection alive after rejected preamble (read %#x)", extra)
		}
		n.Rejections++
		return nil
	}
	for i := 0; i < rounds; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := expectReject([]byte{0x00, 'X', 'Y', 'Z', serve.BinaryVersion}, serve.CodeBadRequest); err != nil {
			return fmt.Errorf("negotiation-abuser: bad magic: %w", err)
		}
		if err := expectReject([]byte{0x00, 'J', 'F', 'B', serve.BinaryVersion + 1 + byte(i)}, serve.CodeBadVersion); err != nil {
			return fmt.Errorf("negotiation-abuser: version skew: %w", err)
		}
		// Truncated preamble, then gone: nothing to answer, nothing to
		// crash.
		conn, err := dialCtx(ctx, network, addr)
		if err != nil {
			return err
		}
		conn.Write(serve.BinaryPreamble[:2])
		conn.Close()
	}
	return nil
}
