package chaos_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/chaos"
	"repro/internal/serve/client"
)

// TestChaosBinarySwarm is the binary-protocol chaos gate (`make
// race-serve-v2`; also matched by `make race-chaos`): rogues abusing
// the v2 framing — garbage length prefixes, mid-frame disconnects,
// preamble negotiation abuse — run against a limited daemon alongside
// JSON rogues and a mixed JSON/binary population of well-behaved
// clients. The daemon must stay live for both codecs and its health
// counters must reconcile with the injected schedule.
func TestChaosBinarySwarm(t *testing.T) {
	srv, sock := startServer(t, serve.Options{
		MaxConns:       64,
		MaxInFlight:    4,
		ReadTimeout:    150 * time.Millisecond,
		WriteTimeout:   2 * time.Second,
		HandlerTimeout: 60 * time.Millisecond,
		EnableTestOps:  true,
	})
	topo, err := srv.LoadTopology(serve.TopoParams{Topo: "small", K: 4})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	garbage := &chaos.BinaryGarbagePrefix{Frames: 15, Seed: 21}
	negotiation := &chaos.NegotiationAbuser{Rounds: 3}
	rogues := []chaos.Rogue{
		garbage,
		&chaos.BinaryMidFrameDisconnect{Conns: 4, Seed: 22},
		negotiation,
		&chaos.DeadlineExceeder{Requests: 3, SleepMS: 250},
		&chaos.CrashInjector{Crashes: 2},
	}
	rep := chaos.RunSwarm(ctx, chaos.SwarmConfig{
		Network: "unix", Addr: sock,
		Rogues:            rogues,
		GoodClients:       2,
		BinaryGoodClients: 2,
		GoodRequests:      30,
		TopoKey:           topo.Key,
		Switches:          topo.Switches,
		Seed:              2,
		Retry: client.RetryPolicy{
			MaxAttempts: 12, BaseDelay: 5 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 9,
		},
	})
	for _, e := range rep.RogueErrors {
		t.Errorf("rogue: %s", e)
	}
	for _, e := range rep.GoodErrors {
		t.Errorf("good client: %s", e)
	}
	if want := int64(4 * 30); rep.GoodResponses != want {
		t.Errorf("good responses %d, want %d", rep.GoodResponses, want)
	}

	// Every hostile frame drew an error response, every malformed
	// preamble a rejection.
	if garbage.ErrorFrames != 15 {
		t.Errorf("garbage prefix drew %d error frames of 15", garbage.ErrorFrames)
	}
	if negotiation.Rejections != 2*3 {
		t.Errorf("negotiation abuser drew %d rejections of %d", negotiation.Rejections, 2*3)
	}

	// The daemon is still ready over BOTH codecs, and the resilience
	// counters reconcile with the schedule.
	cb, err := client.DialBinary(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	h, err := cb.Health(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready {
		t.Errorf("daemon not ready after the swarm: %+v", h)
	}
	if msg := chaos.Reconcile(h, rogues); msg != "" {
		t.Errorf("reconcile: %s", msg)
	}
	if msg := chaos.ExactPanics(h, rogues); msg != "" {
		t.Errorf("reconcile: %s", msg)
	}
	cj, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cj.Close()
	if h, err := cj.Health(bg); err != nil || !h.Ready {
		t.Fatalf("JSON codec unhealthy after binary chaos: %+v, %v", h, err)
	}
}
