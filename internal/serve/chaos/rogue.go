package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/xrand"
)

// A Rogue is one misbehaving client. Run connects to the daemon and
// misbehaves until it has executed its schedule, the server cuts it
// off, or the context ends. A nil return means the rogue observed the
// defensive reaction it set out to provoke; injection tallies for
// counter reconciliation land in the rogue's exported fields.
type Rogue interface {
	Name() string
	Run(ctx context.Context, network, addr string) error
}

// dialCtx dials with the context's deadline applied to the connection,
// so a rogue blocked in Read/Write unsticks when the swarm winds down.
func dialCtx(ctx context.Context, network, addr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	return conn, nil
}

// SlowLoris trickles a request frame one byte at a time and never
// finishes it. A server with a read timeout must disconnect it; Run
// returns nil on that disconnect and an error if the server tolerated
// the trickle until the context expired.
type SlowLoris struct {
	// ByteEvery is the trickle interval (default 10ms).
	ByteEvery time.Duration
}

func (s *SlowLoris) Name() string { return "slow-loris" }

func (s *SlowLoris) Run(ctx context.Context, network, addr string) error {
	every := s.ByteEvery
	if every <= 0 {
		every = 10 * time.Millisecond
	}
	conn, err := dialCtx(ctx, network, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// A syntactically plausible prefix, dripped forever.
	frame := `{"v":1,"id":"loris","op":"stats","topo":"` + strings.Repeat("x", 1<<20)
	t := time.NewTicker(every)
	defer t.Stop()
	for i := 0; i < len(frame); i++ {
		select {
		case <-ctx.Done():
			return fmt.Errorf("slow-loris: server never disconnected the trickle")
		case <-t.C:
		}
		if _, err := conn.Write([]byte{frame[i]}); err != nil {
			return nil // the server cut us off: the defense worked
		}
	}
	return fmt.Errorf("slow-loris: ran out of frame before the server reacted")
}

// MidFrameDisconnect repeatedly connects, writes part of a frame, and
// drops the connection without finishing it. The server must clean the
// connection up without logging a response or leaking the goroutine.
type MidFrameDisconnect struct {
	// Conns is the number of connect-abort cycles (default 3).
	Conns int
	// Seed varies the truncation point per cycle.
	Seed uint64
}

func (m *MidFrameDisconnect) Name() string { return "mid-frame-disconnect" }

func (m *MidFrameDisconnect) Run(ctx context.Context, network, addr string) error {
	conns := m.Conns
	if conns <= 0 {
		conns = 3
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	rng := xrand.NewPair(seed, 0x6d696466) // "midf"
	frame := `{"v":1,"id":"gone","op":"route","topo":"k","src":0,"dst":1}`
	for i := 0; i < conns; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := dialCtx(ctx, network, addr)
		if err != nil {
			return err
		}
		cut := 1 + rng.IntN(len(frame)-1) // at least 1 byte, never the full frame
		conn.Write([]byte(frame[:cut]))
		conn.Close()
	}
	return nil
}

// GarbageFlood sends frames of random bytes — including some larger
// than the protocol's frame cap — and expects an error frame (or a
// frame-too-large close) for each, never a crash. Redials after the
// server closes on an oversized frame.
type GarbageFlood struct {
	// Frames is the number of garbage lines to send (default 20).
	Frames int
	// Seed derives the garbage (default 1).
	Seed uint64

	// ErrorFrames counts well-formed error responses received — the
	// server must answer garbage with errors, not silence or a crash.
	ErrorFrames int
}

func (g *GarbageFlood) Name() string { return "garbage-flood" }

func (g *GarbageFlood) Run(ctx context.Context, network, addr string) error {
	frames := g.Frames
	if frames <= 0 {
		frames = 20
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	rng := xrand.NewPair(seed, 0x67726267) // "grbg"
	conn, err := dialCtx(ctx, network, addr)
	if err != nil {
		return err
	}
	defer func() { conn.Close() }()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	for i := 0; i < frames; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var line []byte
		if rng.IntN(5) == 0 {
			// Oversized frame: the server must answer frame-too-large and
			// close; we redial and keep flooding.
			line = make([]byte, serve.MaxFrameBytes+2)
			for j := range line {
				line[j] = byte('a' + rng.IntN(26))
			}
		} else {
			line = make([]byte, 1+rng.IntN(256))
			for j := range line {
				line[j] = byte(32 + rng.IntN(95)) // printable junk, '\n'-free
			}
		}
		if _, err := conn.Write(append(line, '\n')); err != nil {
			// The previous oversized frame closed the connection mid-flood.
			if conn, err = dialCtx(ctx, network, addr); err != nil {
				return err
			}
			sc = bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
			continue
		}
		if !sc.Scan() {
			// Closed after frame-too-large; redial for the rest.
			if conn, err = dialCtx(ctx, network, addr); err != nil {
				return err
			}
			sc = bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
			continue
		}
		var resp serve.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			return fmt.Errorf("garbage-flood: unparseable response %q", sc.Bytes())
		}
		if resp.OK || resp.Error == nil {
			return fmt.Errorf("garbage-flood: server accepted garbage: %q", sc.Bytes())
		}
		g.ErrorFrames++
	}
	return nil
}

// DeadlineExceeder sends requests engineered to overrun the server's
// handler timeout (the test-sleep op, so the server must run with
// EnableTestOps). Each one must come back with the timeout code.
type DeadlineExceeder struct {
	// Requests is how many over-deadline requests to send (default 2).
	Requests int
	// SleepMS must exceed the server's HandlerTimeout.
	SleepMS int

	// TimeoutsSeen counts timeout-code responses — reconcile against the
	// health op's handler_timeouts.
	TimeoutsSeen int
}

func (d *DeadlineExceeder) Name() string { return "deadline-exceeder" }

func (d *DeadlineExceeder) Run(ctx context.Context, network, addr string) error {
	requests := d.Requests
	if requests <= 0 {
		requests = 2
	}
	conn, err := dialCtx(ctx, network, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	for i := 0; i < requests; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		frame := fmt.Sprintf(`{"v":1,"id":"dl%d","op":"test-sleep","sleep_ms":%d}`, i, d.SleepMS)
		if _, err := fmt.Fprintln(conn, frame); err != nil {
			return fmt.Errorf("deadline-exceeder: write: %w", err)
		}
		if !sc.Scan() {
			return fmt.Errorf("deadline-exceeder: no response: %v", sc.Err())
		}
		var resp serve.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			return err
		}
		switch {
		case resp.Error != nil && resp.Error.Code == serve.CodeTimeout:
			d.TimeoutsSeen++
		case resp.Error != nil && resp.Error.Code == serve.CodeOverloaded:
			// A detached predecessor still holds its slot; acceptable.
		default:
			return fmt.Errorf("deadline-exceeder: got %q, want %s", sc.Bytes(), serve.CodeTimeout)
		}
	}
	return nil
}

// CrashInjector sends the test-crash op (server must run with
// EnableTestOps), expecting an internal-error frame followed by a
// connection close each time — panic isolation in action.
type CrashInjector struct {
	// Crashes is how many panics to inject (default 1).
	Crashes int

	// CrashesAcked counts internal-error responses received; reconcile
	// against the health op's panics counter.
	CrashesAcked int
}

func (c *CrashInjector) Name() string { return "crash-injector" }

func (c *CrashInjector) Run(ctx context.Context, network, addr string) error {
	crashes := c.Crashes
	if crashes <= 0 {
		crashes = 1
	}
	for i := 0; i < crashes; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := dialCtx(ctx, network, addr)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
		if _, err := fmt.Fprintf(conn, `{"v":1,"id":"crash%d","op":"test-crash"}`+"\n", i); err != nil {
			conn.Close()
			return fmt.Errorf("crash-injector: write: %w", err)
		}
		if !sc.Scan() {
			conn.Close()
			return fmt.Errorf("crash-injector: no response: %v", sc.Err())
		}
		var resp serve.Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			conn.Close()
			return err
		}
		if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeInternal {
			conn.Close()
			return fmt.Errorf("crash-injector: got %q, want %s", sc.Bytes(), serve.CodeInternal)
		}
		c.CrashesAcked++
		// The server must poison exactly this connection.
		if sc.Scan() {
			conn.Close()
			return fmt.Errorf("crash-injector: connection survived a panic: %q", sc.Bytes())
		}
		conn.Close()
	}
	return nil
}
