package chaos_test

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/chaos"
	"repro/internal/serve/client"
)

var bg = context.Background()

func startServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "chaos.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Stop()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Stop, want nil", err)
		}
	})
	return srv, sock
}

// TestChaosSwarm is the chaos gate (`make chaos-smoke`; also run with
// -race by `make check`): a daemon with production-style limits serves
// a population of rogues and well-behaved clients at once. It must stay
// live — every well-behaved request succeeds (retries absorb shedding),
// every rogue sees the defensive reaction it provokes, the final health
// probe answers ready, and the resilience counters reconcile with the
// injected fault schedule.
func TestChaosSwarm(t *testing.T) {
	srv, sock := startServer(t, serve.Options{
		MaxConns:       64,
		MaxInFlight:    4,
		ReadTimeout:    150 * time.Millisecond,
		WriteTimeout:   2 * time.Second,
		HandlerTimeout: 60 * time.Millisecond,
		EnableTestOps:  true,
	})
	// Warm one small topology (all pairs, so any random pair routes)
	// for the good clients' route traffic.
	topo, err := srv.LoadTopology(serve.TopoParams{Topo: "small", K: 4})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	rogues := []chaos.Rogue{
		&chaos.SlowLoris{ByteEvery: 20 * time.Millisecond},
		&chaos.MidFrameDisconnect{Conns: 4, Seed: 11},
		&chaos.GarbageFlood{Frames: 25, Seed: 12},
		&chaos.DeadlineExceeder{Requests: 3, SleepMS: 250},
		&chaos.CrashInjector{Crashes: 2},
	}
	rep := chaos.RunSwarm(ctx, chaos.SwarmConfig{
		Network: "unix", Addr: sock,
		Rogues:       rogues,
		GoodClients:  4,
		GoodRequests: 40,
		TopoKey:      topo.Key,
		Switches:     topo.Switches,
		Seed:         1,
		Retry: client.RetryPolicy{
			MaxAttempts: 12, BaseDelay: 5 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 9,
		},
	})
	for _, e := range rep.RogueErrors {
		t.Errorf("rogue: %s", e)
	}
	for _, e := range rep.GoodErrors {
		t.Errorf("good client: %s", e)
	}
	if want := int64(4 * 40); rep.GoodResponses != want {
		t.Errorf("good responses %d, want %d", rep.GoodResponses, want)
	}

	// The daemon is still ready and its counters reconcile with the
	// schedule: exactly the injected panics, at least the observed
	// handler timeouts, and at least the slow-loris read-timeout cut.
	c, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Health(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready {
		t.Errorf("daemon not ready after the swarm: %+v", h)
	}
	if msg := chaos.Reconcile(h, rogues); msg != "" {
		t.Errorf("reconcile: %s", msg)
	}
	if msg := chaos.ExactPanics(h, rogues); msg != "" {
		t.Errorf("reconcile: %s", msg)
	}
	if h.IOTimeouts < 1 {
		t.Errorf("io_timeouts %d, want >= 1 (the slow loris)", h.IOTimeouts)
	}
	ack := rogues[4].(*chaos.CrashInjector).CrashesAcked
	if ack != 2 {
		t.Errorf("crash injector acked %d of 2", ack)
	}
	if got := srv.Counters().Panics; got != int64(ack) {
		t.Errorf("server panic counter %d != %d acked crashes", got, ack)
	}
}

// TestChaosFaultyGoodClient runs a well-behaved request stream over a
// fault-injecting connection (latency, fragmentation): correctness must
// survive arbitrarily chunked and delayed frames.
func TestChaosFaultyGoodClient(t *testing.T) {
	_, sock := startServer(t, serve.Options{EnableTestOps: true})
	raw, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(chaos.Wrap(raw, chaos.ConnConfig{
		Seed:       3,
		WriteChunk: 7,
		WriteDelay: time.Millisecond,
		ReadDelay:  time.Millisecond,
	}))
	defer c.Close()
	for i := 0; i < 20; i++ {
		h, err := c.Health(bg)
		if err != nil {
			t.Fatalf("op %d over faulty conn: %v", i, err)
		}
		if !h.Ready {
			t.Fatalf("op %d: %+v", i, h)
		}
	}
}

// TestChaosDroppedConn verifies the drop fault surfaces as a transport
// error on the client and leaves the server healthy.
func TestChaosDroppedConn(t *testing.T) {
	_, sock := startServer(t, serve.Options{})
	raw, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(chaos.Wrap(raw, chaos.ConnConfig{Seed: 5, DropAfterBytes: 50}))
	defer c.Close()
	var failed bool
	for i := 0; i < 5; i++ {
		if _, err := c.Stats(bg); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("connection dropping after 50 bytes never surfaced an error")
	}
	// The daemon itself is unharmed.
	c2, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if h, err := c2.Health(bg); err != nil || !h.Ready {
		t.Fatalf("daemon unhealthy after dropped conn: %+v, %v", h, err)
	}
}
