package chaos

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/xrand"
)

// SwarmConfig points a mixed population — rogues plus well-behaved
// retrying clients — at one daemon.
type SwarmConfig struct {
	Network, Addr string
	// Rogues all run concurrently.
	Rogues []Rogue
	// GoodClients well-behaved clients each issue GoodRequests route or
	// health requests with the retry policy, treating overloaded as
	// backpressure. BinaryGoodClients do the same over the binary v2
	// codec, sharing one connection-level daemon with the JSON
	// population — rogue abuse of either codec must harm neither.
	GoodClients       int
	BinaryGoodClients int
	GoodRequests      int
	// TopoKey and Switches direct the good clients' route lookups; with
	// an empty key they issue health probes instead.
	TopoKey  string
	Switches int
	// Seed derives the good clients' pair streams (0 behaves as 1).
	Seed uint64
	// Retry overrides the good clients' retry policy (zero value =
	// client.DefaultRetry).
	Retry client.RetryPolicy
}

// Report is a swarm run's outcome, for asserting liveness and
// reconciling the daemon's health counters against the schedule.
type Report struct {
	// RogueErrors holds one entry per rogue whose expected defensive
	// reaction did not materialize.
	RogueErrors []string
	// GoodErrors holds one entry per well-behaved request that failed
	// even after retries — under chaos these must stay empty.
	GoodErrors []string
	// GoodResponses counts successful well-behaved round trips.
	GoodResponses int64
}

// RunSwarm runs every rogue and good client concurrently until all
// complete their schedules (or ctx ends) and reports the aggregate.
func RunSwarm(ctx context.Context, cfg SwarmConfig) Report {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	retry := cfg.Retry
	if retry == (client.RetryPolicy{}) {
		retry = client.DefaultRetry
	}

	var mu sync.Mutex
	var rep Report
	var wg sync.WaitGroup

	for _, r := range cfg.Rogues {
		wg.Add(1)
		go func(r Rogue) {
			defer wg.Done()
			if err := r.Run(ctx, cfg.Network, cfg.Addr); err != nil {
				mu.Lock()
				rep.RogueErrors = append(rep.RogueErrors, fmt.Sprintf("%s: %v", r.Name(), err))
				mu.Unlock()
			}
		}(r)
	}

	for i := 0; i < cfg.GoodClients+cfg.BinaryGoodClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := retry
			p.Seed = seed ^ uint64(i+1)
			var c *client.Client
			var err error
			if i < cfg.GoodClients {
				c, err = client.DialRetry(ctx, cfg.Network, cfg.Addr, p)
			} else {
				c, err = client.DialBinaryRetry(ctx, cfg.Network, cfg.Addr, p)
			}
			if err != nil {
				mu.Lock()
				rep.GoodErrors = append(rep.GoodErrors, fmt.Sprintf("good %d: dial: %v", i, err))
				mu.Unlock()
				return
			}
			defer c.Close()
			rng := xrand.NewPair(seed, uint64(i)^0x676f6f64) // "good"
			var good int64
			for op := 0; op < cfg.GoodRequests; op++ {
				if ctx.Err() != nil {
					break
				}
				var err error
				if cfg.TopoKey != "" && cfg.Switches > 1 {
					s := rng.IntN(cfg.Switches)
					d := rng.IntNExcept(cfg.Switches, s)
					_, err = c.Route(ctx, cfg.TopoKey, int32(s), int32(d))
				} else {
					_, err = c.Health(ctx)
				}
				if err != nil {
					mu.Lock()
					rep.GoodErrors = append(rep.GoodErrors, fmt.Sprintf("good %d op %d: %v", i, op, err))
					mu.Unlock()
					return
				}
				good++
			}
			mu.Lock()
			rep.GoodResponses += good
			mu.Unlock()
		}(i)
	}

	wg.Wait()
	return rep
}

// Reconcile compares a post-swarm health snapshot against the injected
// schedule: every acknowledged crash must appear in the panic counter
// and every observed handler timeout in the timeout counter. Counters
// may exceed the tallies (other traffic can trip them too) but never
// fall short. It returns a description of the first mismatch, or "".
func Reconcile(h serve.HealthResult, rogues []Rogue) string {
	var crashes, timeouts int
	for _, r := range rogues {
		switch x := r.(type) {
		case *CrashInjector:
			crashes += x.CrashesAcked
		case *DeadlineExceeder:
			timeouts += x.TimeoutsSeen
		}
	}
	if int(h.Panics) < crashes {
		return fmt.Sprintf("health panics %d < %d acked crash injections", h.Panics, crashes)
	}
	if int(h.HandlerTimeouts) < timeouts {
		return fmt.Sprintf("health handler_timeouts %d < %d observed timeouts", h.HandlerTimeouts, timeouts)
	}
	return ""
}

// ExactPanics is the strict variant for schedules where the crash
// injectors are the only panic source: the counter must match exactly.
func ExactPanics(h serve.HealthResult, rogues []Rogue) string {
	var crashes int
	for _, r := range rogues {
		if x, ok := r.(*CrashInjector); ok {
			crashes += x.CrashesAcked
		}
	}
	if int(h.Panics) != crashes {
		return fmt.Sprintf("health panics %d != %d acked crash injections", h.Panics, crashes)
	}
	return ""
}
