package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/seeds"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// Options configures a Server. The zero value serves without limits —
// every limit and timeout below defaults to off, so embedders (tests,
// benchmarks) opt in; cmd/jfserve turns them on with production
// defaults via its flags.
type Options struct {
	// PathCache is the on-disk path-DB cache directory ("" = build
	// in-process; see docs/PATHS.md). topo-load streams warm DBs from
	// it exactly the way the experiment binaries do.
	PathCache string
	// Workers bounds build parallelism (<= 0 = GOMAXPROCS).
	Workers int
	// Logf receives one line per lifecycle event (nil = silent).
	Logf func(format string, args ...any)

	// Stripes shards each topology's mutable routing state (mechanism
	// State, load estimator, RNG) across this many independently locked
	// stripes; a source switch hashes to one stripe, so concurrent
	// adaptive choices on different stripes never contend
	// (<= 0 = GOMAXPROCS). Each stripe draws from its own
	// seeds.StripeRNG stream. Striping is statistically transparent:
	// route-choice distributions match a single-stripe server (pinned
	// by TestStripedStatisticalEquivalence), though individual choices
	// differ because each stripe has its own RNG stream.
	Stripes int

	// MaxConns bounds concurrent connections (0 = unlimited). A
	// connection over the limit receives one overloaded error frame and
	// is closed.
	MaxConns int
	// MaxInFlight bounds concurrently executing requests across all
	// connections (0 = unlimited). A request over the limit is answered
	// overloaded immediately — explicit load shedding, never queueing —
	// and the connection stays open. health is exempt.
	MaxInFlight int
	// MaxSweeps bounds concurrently streaming sweeps across all
	// connections (0 = unlimited). A sweep over the limit is answered
	// overloaded; accepted sweeps stream without holding an in-flight
	// slot.
	MaxSweeps int
	// ReadTimeout is the maximum time to receive one complete request
	// frame, and doubles as the idle timeout (0 = none). A slow-loris
	// sender trickling bytes never completes a frame in time and is
	// disconnected.
	ReadTimeout time.Duration
	// WriteTimeout is the maximum time to write one response frame
	// (0 = none). A client not draining responses is disconnected once
	// the kernel buffer backs up past the deadline.
	WriteTimeout time.Duration
	// HandlerTimeout bounds one request's handler execution (0 = none).
	// An overrunning request is answered with the timeout code and its
	// handler keeps running detached (still holding its in-flight slot,
	// so load accounting stays honest); its eventual result is dropped.
	// Note a cold topo-load of a large topology legitimately takes
	// minutes — enable this only with warm caches or -preload.
	HandlerTimeout time.Duration
	// EnableTestOps registers the test-sleep and test-crash operations
	// used by the chaos harness (internal/serve/chaos). Never set in
	// production; a normal daemon answers unknown-op.
	EnableTestOps bool
}

// stripe is one shard of a topology's mutable routing state. The
// immutable parts (DB, prewarmed View) live on the entry and are read
// lock-free; everything a Choose call mutates is striped.
type stripe struct {
	mu    sync.Mutex
	state routing.State
	est   routing.LoadEstimator
	// ll is est when the estimator is stateful link-load, nil otherwise
	// (saves a per-link type assertion on the observe path).
	ll  *routing.LinkLoadEstimator
	rng *xrand.RNG
}

// topoEntry is one resident topology: an immutable warm DB and a
// prewarmed (read-only) routing View shared by every connection, plus
// the mutable routing state sharded across stripes — a pair hashes to
// one stripe, so route requests for different stripes proceed in
// parallel while each stripe still sees a consistent choice sequence.
type topoEntry struct {
	key  string
	topo *jellyfish.Topology
	db   *paths.DB
	view *routing.View

	mechName string
	estName  string

	stripes []stripe

	pairs int
}

// stripeOf hashes a source switch onto its stripe. Striping by source
// — not by pair — is load-bearing for statistical fidelity: the
// link-load estimator prices a path by its first link, a link out of
// the source, so every count a Choose for src can read must live on
// src's stripe. observe routes each traversed link's increment to the
// stripe of the link's own source switch accordingly, keeping striped
// servers distributionally equivalent to single-stripe ones.
func (e *topoEntry) stripeOf(n graph.NodeID) *stripe {
	return &e.stripes[xrand.Mix64(uint64(uint32(n)))%uint64(len(e.stripes))]
}

// choose runs one guarded Choose call on the source's stripe, then
// feeds the chosen path to the estimators.
func (e *topoEntry) choose(src, dst graph.NodeID) (graph.Path, int) {
	st := e.stripeOf(src)
	st.mu.Lock()
	p, idx := st.state.Choose(e.view, src, dst, st.est, st.rng)
	st.mu.Unlock()
	if p != nil {
		e.observe(p)
	}
	return p, idx
}

// observe increments each traversed link on the stripe owning the
// link's source switch, one lock at a time, so a later Choose on any
// source sees the pass-through load crossing it regardless of which
// stripe chose the path.
func (e *topoEntry) observe(p graph.Path) {
	if e.stripes[0].ll == nil {
		return
	}
	for i := 0; i+1 < len(p); i++ {
		st := e.stripeOf(p[i])
		st.mu.Lock()
		st.ll.ObserveLink(p[i], p[i+1])
		st.mu.Unlock()
	}
}

// Server is the route-oracle daemon: one goroutine per connection over
// shared read-only path DBs. Create with NewServer, run with Serve
// (usually in a goroutine), stop with Stop — which closes the listener,
// lets in-flight requests finish writing their responses, and then
// closes every connection.
type Server struct {
	opts  Options
	start time.Time

	mu    sync.Mutex // guards topos
	topos map[string]*topoEntry

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	lisMu     sync.Mutex
	listeners map[net.Listener]struct{}

	requests     atomic.Int64
	routeLookups atomic.Int64
	perOp        map[string]*atomic.Int64
	latency      *telemetry.Histogram // microsecond buckets

	// Resilience state: the in-flight semaphore (nil = unlimited), the
	// instantaneous in-flight gauge, and the shed/panic/timeout
	// counters surfaced by the health op.
	inflight    chan struct{}
	inflightNow atomic.Int64
	counters    telemetry.ServiceCounters

	// Sweep state: the concurrent-sweep semaphore (nil = unlimited)
	// and the streaming-sweep gauge surfaced by health.
	sweepSem     chan struct{}
	sweepsActive atomic.Int64
}

// NewServer returns an idle server with no topologies loaded.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:      opts,
		start:     time.Now(),
		topos:     make(map[string]*topoEntry),
		conns:     make(map[net.Conn]struct{}),
		quit:      make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		perOp:     make(map[string]*atomic.Int64),
		// 1 µs buckets up to ~65 ms; slower requests (topo-load builds)
		// land in the overflow bucket and read as "at least the cap".
		latency: telemetry.NewHistogram(1, 1<<16),
	}
	for _, op := range []string{OpRoute, OpRoutesBatch, OpEstimate, OpTopoLoad, OpTopoEvict, OpStats, OpHealth, OpSweep} {
		s.perOp[op] = &atomic.Int64{}
	}
	if opts.EnableTestOps {
		s.perOp[OpTestSleep] = &atomic.Int64{}
		s.perOp[OpTestCrash] = &atomic.Int64{}
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	if opts.MaxSweeps > 0 {
		s.sweepSem = make(chan struct{}, opts.MaxSweeps)
	}
	return s
}

// Counters exposes the resilience counters (shed, panics, timeouts) for
// embedders and tests; the wire-level view is the health op.
func (s *Server) Counters() telemetry.ServiceSnapshot { return s.counters.Snapshot() }

// InFlight reports the number of requests currently executing (the
// health op's in_flight field).
func (s *Server) InFlight() int { return int(s.inflightNow.Load()) }

// SweepsActive reports the number of sweeps currently streaming (the
// health op's sweeps_active field).
func (s *Server) SweepsActive() int { return int(s.sweepsActive.Load()) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on l until Stop is called. It returns nil
// after a clean shutdown and the accept error otherwise. Multiple
// Serve calls on different listeners may run concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.lisMu.Lock()
	s.listeners[l] = struct{}{}
	s.lisMu.Unlock()
	defer func() {
		s.lisMu.Lock()
		delete(s.listeners, l)
		s.lisMu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.connMu.Unlock()
			s.counters.ConnShed.Add(1)
			// Refuse off the accept loop: the refused client may be
			// slow to drain even one frame.
			s.wg.Add(1)
			go s.refuseConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// refuseConn tells a connection over the limit why it is being dropped:
// one overloaded error frame (with an empty id — no request was read),
// then close. The frame is always JSON — the refusal happens before any
// negotiation byte is read, and a binary client is specified to parse a
// JSON line in place of the preamble echo as exactly this refusal
// (docs/SERVICE.md "Negotiation").
func (s *Server) refuseConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	buf, err := json.Marshal(errResponse("", CodeOverloaded,
		fmt.Sprintf("connection limit %d reached; retry with backoff", s.opts.MaxConns)))
	if err != nil {
		return
	}
	conn.Write(append(buf, '\n'))
}

// Stop shuts the server down gracefully: no new connections are
// accepted, each connection finishes the request it is currently
// serving (including writing the response) and then closes, and Stop
// returns once every connection goroutine has exited. Streaming sweeps
// notice the shutdown at their next chunk boundary and abandon the
// stream (their connection is closing with them).
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.quit)
		s.lisMu.Lock()
		for l := range s.listeners {
			l.Close()
		}
		s.lisMu.Unlock()
		// Unblock connections idle in Read with an explicit half-close:
		// CloseRead makes the pending (and every future) Read return
		// EOF while the write side stays open, so a handler mid-request
		// still writes its response in full before its loop observes
		// quit. Conn types without CloseRead (not the unix/tcp
		// listeners we create, but embedders can pass anything) fall
		// back to an already-expired read deadline.
		s.connMu.Lock()
		for c := range s.conns {
			if cr, ok := c.(interface{ CloseRead() error }); ok {
				cr.CloseRead()
			} else {
				c.SetReadDeadline(time.Now())
			}
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	s.logf("jfserve: stopped (%d requests served)", s.requests.Load())
}

// errConnDead is returned by connWriter once a write has failed; the
// connection is closing and later writes are pointless.
var errConnDead = errors.New("serve: connection writer is dead")

// connWriter serializes every response write on one connection: the
// request loop and any streaming-sweep goroutines all write through it,
// so frames never interleave mid-frame. It owns the write deadline, the
// codec (JSON line vs binary frame) and the io-timeout accounting; the
// first failed write marks it dead and fails everything after.
type connWriter struct {
	s    *Server
	conn net.Conn
	bin  bool

	mu      sync.Mutex
	w       *bufio.Writer
	enc     *json.Encoder
	scratch []byte
	dead    bool
}

// write encodes and flushes one response in the connection's codec.
func (cw *connWriter) write(resp *Response) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.dead {
		return errConnDead
	}
	if cw.s.opts.WriteTimeout > 0 {
		cw.conn.SetWriteDeadline(time.Now().Add(cw.s.opts.WriteTimeout))
	}
	var err error
	if cw.bin {
		var payload []byte
		if payload, err = AppendBinaryResponse(cw.scratch[:0], resp); err == nil {
			cw.scratch = payload
			err = cw.writeFrameLocked(payload)
		}
	} else {
		err = cw.enc.Encode(resp)
	}
	return cw.finishLocked(err)
}

// writeRaw flushes one pre-encoded binary response payload. The
// payload's buffer becomes the writer's scratch afterwards, so a fast
// path that built it out of takeScratch keeps reusing one allocation.
func (cw *connWriter) writeRaw(payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.scratch = payload[:0]
	if cw.dead {
		return errConnDead
	}
	if cw.s.opts.WriteTimeout > 0 {
		cw.conn.SetWriteDeadline(time.Now().Add(cw.s.opts.WriteTimeout))
	}
	return cw.finishLocked(cw.writeFrameLocked(payload))
}

func (cw *connWriter) writeFrameLocked(payload []byte) error {
	var hdr [4]byte
	le.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := cw.w.Write(payload)
	return err
}

// writePreamble echoes the binary preamble (negotiation ack).
func (cw *connWriter) writePreamble() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.s.opts.WriteTimeout > 0 {
		cw.conn.SetWriteDeadline(time.Now().Add(cw.s.opts.WriteTimeout))
	}
	_, err := cw.w.Write(BinaryPreamble[:])
	return cw.finishLocked(err)
}

func (cw *connWriter) finishLocked(err error) error {
	if err == nil {
		err = cw.w.Flush()
	}
	if err != nil {
		if isTimeout(err) {
			cw.s.counters.IOTimeouts.Add(1)
		}
		cw.dead = true
	}
	return err
}

// failed reports whether a write has already failed (used by sweep
// streamers to stop routing for a connection that is gone).
func (cw *connWriter) failed() bool {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.dead
}

// writeResult writes one op result (pre-encoded fast-path bytes or a
// Response) in the connection's codec.
func (cw *connWriter) writeResult(res *opResult) error {
	if res.raw != nil {
		return cw.writeRaw(res.raw)
	}
	return cw.write(&res.resp)
}

// opResult is the outcome of one admitted request.
type opResult struct {
	resp Response
	// raw is a pre-encoded binary response payload (the routes-batch
	// fast path); when set, resp is ignored.
	raw []byte
	// poison closes the connection after the response is written (the
	// handler panicked).
	poison bool
	// after runs once the response has been written (a sweep ack
	// starting its streamer); discard runs instead when the response is
	// dropped (write failure, handler timeout), releasing what after
	// would have consumed.
	after   func()
	discard func()
}

// handleConn serves one connection. The first byte picks the codec: a
// NUL byte can only open the binary preamble (no JSON line starts with
// it), anything else is the JSON line protocol. Either way requests are
// answered in order under the configured read/write deadlines, and a
// request whose handler panics poisons only this connection: the error
// frame is written, then the connection closes.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	cw := &connWriter{s: s, conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	cw.enc = json.NewEncoder(cw.w)

	if s.opts.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
	}
	first, err := br.Peek(1)
	if err != nil {
		if isTimeout(err) && !s.stopping() {
			s.counters.IOTimeouts.Add(1)
		}
		return
	}
	if first[0] == BinaryPreamble[0] {
		s.serveBinary(conn, br, cw)
		return
	}
	s.serveJSON(conn, br, cw)
}

// serveJSON runs the newline-delimited JSON v1 loop.
func (s *Server) serveJSON(conn net.Conn, br *bufio.Reader, cw *connWriter) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)
	// Unlike bufio.ScanLines, never deliver an unterminated final frame:
	// a read error (EOF, deadline expiry) mid-frame means the frame never
	// arrived, not that a truncated one did — parsing the fragment would
	// answer bad-json to a peer that sent no complete request.
	sc.Split(scanCompleteLines)
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		if !sc.Scan() {
			err := sc.Err()
			switch {
			case errors.Is(err, bufio.ErrTooLong):
				// The frame boundary is lost; report and drop the
				// connection rather than misparse the stream.
				cw.write(respOf(errResponse("", CodeFrameTooLarge,
					fmt.Sprintf("request exceeds %d bytes", MaxFrameBytes))))
			case isTimeout(err) && !s.stopping():
				// The frame did not complete within ReadTimeout — an
				// idle, stalled or slow-loris sender. Close silently:
				// a mid-frame peer cannot re-sync on an error frame.
				s.counters.IOTimeouts.Add(1)
			}
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		res := s.handleFrame(line, cw)
		if !s.finishResult(cw, &res) {
			return
		}
	}
}

// serveBinary validates the client preamble, echoes it, then runs the
// length-prefixed binary v2 loop.
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader, cw *connWriter) {
	cw.bin = true
	var pre [5]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		if isTimeout(err) && !s.stopping() {
			s.counters.IOTimeouts.Add(1)
		}
		return
	}
	if pre[1] != BinaryPreamble[1] || pre[2] != BinaryPreamble[2] || pre[3] != BinaryPreamble[3] {
		cw.write(respOf(errResponse("", CodeBadRequest,
			"malformed binary preamble; expected NUL + \"JFB\" + version")))
		return
	}
	if pre[4] != BinaryVersion {
		cw.write(respOf(errResponse("", CodeBadVersion,
			fmt.Sprintf("binary protocol version %d, server speaks %d", pre[4], BinaryVersion))))
		return
	}
	if cw.writePreamble() != nil {
		return
	}
	var frame []byte
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		payload, err := ReadFrame(br, &frame)
		if err != nil {
			switch {
			case errors.Is(err, ErrFrameTooLarge):
				cw.write(respOf(errResponse("", CodeFrameTooLarge,
					fmt.Sprintf("frame exceeds %d bytes", MaxFrameBytes))))
			case errors.Is(err, errZeroFrame):
				// A zero length prefix carries no request and leaves
				// nothing to resync on; mirror the frame-boundary-lost
				// policy and drop the connection.
				cw.write(respOf(errResponse("", CodeBadRequest, "zero-length frame")))
			case isTimeout(err) && !s.stopping():
				s.counters.IOTimeouts.Add(1)
			}
			return
		}
		res := s.handleBinaryFrame(payload, cw)
		if !s.finishResult(cw, &res) {
			return
		}
	}
}

// finishResult writes one result and runs its completion hook; false
// means the connection must close.
func (s *Server) finishResult(cw *connWriter, res *opResult) bool {
	if err := cw.writeResult(res); err != nil {
		if res.discard != nil {
			res.discard()
		}
		return false
	}
	if res.after != nil {
		res.after()
	}
	return !res.poison
}

// scanCompleteLines is bufio.ScanLines minus the final-token rule: data
// not terminated by '\n' when the reader errors out is dropped, not
// delivered.
func scanCompleteLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return i + 1, bytes.TrimSuffix(data[:i], []byte{'\r'}), nil
	}
	if atEOF {
		return len(data), nil, nil // discard the fragment
	}
	return 0, nil, nil
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// stopping reports whether Stop has begun.
func (s *Server) stopping() bool {
	select {
	case <-s.quit:
		return true
	default:
	}
	return false
}

// respOf wraps a Response as an opResult (and as a *Response for
// connWriter.write call sites).
func respOf(resp Response) *Response { return &resp }

func result(resp Response) opResult { return opResult{resp: resp} }

// handleFrame decodes, admits, dispatches and times one JSON request.
func (s *Server) handleFrame(line []byte, cw *connWriter) opResult {
	t0 := time.Now()
	res := s.admitJSON(line, cw)
	s.requests.Add(1)
	s.latency.Observe(time.Since(t0).Microseconds())
	return res
}

// handleBinaryFrame decodes, admits, dispatches and times one binary
// request payload.
func (s *Server) handleBinaryFrame(payload []byte, cw *connWriter) opResult {
	t0 := time.Now()
	res := s.admitBinary(payload, cw)
	s.requests.Add(1)
	s.latency.Observe(time.Since(t0).Microseconds())
	return res
}

// admitJSON parses the JSON envelope and checks the version, then runs
// the codec-independent admission path.
func (s *Server) admitJSON(line []byte, cw *connWriter) opResult {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return result(errResponse("", CodeBadJSON, err.Error()))
	}
	if req.V != ProtocolVersion {
		return result(errResponse(req.ID, CodeBadVersion,
			fmt.Sprintf("request version %d, server speaks %d", req.V, ProtocolVersion)))
	}
	return s.admit(req, cw)
}

// admitBinary decodes one binary payload and runs the same admission
// path (the binary protocol's version was negotiated in the preamble,
// so there is no per-request version check). A well-framed payload that
// does not decode answers bad-request and the connection stays open.
// Batched lookups with no handler timeout take an allocation-free fast
// path instead of materializing a Request.
func (s *Server) admitBinary(payload []byte, cw *connWriter) opResult {
	if s.opts.HandlerTimeout <= 0 && len(payload) > 9 && payload[8] == binOpBatch {
		return s.binaryBatch(payload, cw)
	}
	id, req, err := DecodeBinaryRequest(payload)
	if err != nil {
		return result(errResponse(binFormatID(id), CodeBadRequest,
			"malformed binary request: "+err.Error()))
	}
	return s.admit(req, cw)
}

// admit applies the resilience policy — health bypass, load shedding,
// handler timeout, panic recovery — around the op dispatch, identically
// for both codecs.
func (s *Server) admit(req Request, cw *connWriter) opResult {
	if c, ok := s.perOp[req.Op]; ok {
		c.Add(1)
	}
	// health must answer while the server is overloaded, so it is
	// exempt from the in-flight limit and the handler timeout. It only
	// reads atomics — cheap enough to never need shedding.
	if req.Op == OpHealth {
		return result(s.handleHealth(req))
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
		default:
			s.counters.Shed.Add(1)
			return result(errResponse(req.ID, CodeOverloaded,
				fmt.Sprintf("in-flight limit %d reached; retry with backoff", s.opts.MaxInFlight)))
		}
	}
	if s.opts.HandlerTimeout <= 0 {
		// No timeout: run inline, keeping the hot path goroutine-free.
		return s.runOp(req, cw)
	}
	done := make(chan opResult, 1)
	go func() {
		done <- s.runOp(req, cw)
	}()
	timer := time.NewTimer(s.opts.HandlerTimeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r
	case <-timer.C:
		// The handler keeps running detached, holding its in-flight
		// slot until it finishes; its result is dropped — including any
		// completion hook: a timed-out sweep admission never streams,
		// and the drain below releases its sweep slot. A detached panic
		// is still recovered and counted but can no longer poison this
		// connection — the error frame it would ride out on was already
		// replaced by this timeout.
		s.counters.HandlerTimeouts.Add(1)
		go func() {
			if r := <-done; r.discard != nil {
				r.discard()
			}
		}()
		return result(errResponse(req.ID, CodeTimeout,
			fmt.Sprintf("handler exceeded the %s request timeout", s.opts.HandlerTimeout)))
	}
}

// runOp executes one op with panic recovery, accounting it against the
// in-flight gauge and releasing the in-flight slot (if limits are on)
// when the handler returns. A poisoned result closes the connection.
func (s *Server) runOp(req Request, cw *connWriter) (res opResult) {
	s.inflightNow.Add(1)
	defer func() {
		s.inflightNow.Add(-1)
		if s.inflight != nil {
			<-s.inflight
		}
		if r := recover(); r != nil {
			s.counters.Panics.Add(1)
			s.logf("jfserve: recovered panic in %s handler: %v\n%s", req.Op, r, debug.Stack())
			res = opResult{resp: errResponse(req.ID, CodeInternal,
				fmt.Sprintf("handler panicked: %v; closing this connection", r)), poison: true}
		}
	}()
	return s.dispatch(req, cw)
}

func (s *Server) dispatch(req Request, cw *connWriter) opResult {
	switch req.Op {
	case OpRoute:
		return result(s.handleRoute(req))
	case OpRoutesBatch:
		return result(s.handleRoutesBatch(req))
	case OpEstimate:
		return result(s.handleEstimate(req))
	case OpTopoLoad:
		return result(s.handleTopoLoad(req))
	case OpTopoEvict:
		return result(s.handleTopoEvict(req))
	case OpStats:
		return result(s.handleStats(req))
	case OpSweep:
		return s.handleSweep(req, cw)
	case OpTestSleep:
		if s.opts.EnableTestOps {
			time.Sleep(time.Duration(req.SleepMS) * time.Millisecond)
			return result(okResponse(req.ID))
		}
	case OpTestCrash:
		if s.opts.EnableTestOps {
			panic("injected test-crash")
		}
	}
	return result(errResponse(req.ID, CodeUnknownOp, fmt.Sprintf("unknown op %q", req.Op)))
}

// binaryBatch is the binary routes-batch fast path: it routes straight
// off the request payload and encodes the response in place, so a
// batched lookup allocates nothing per pair. It mirrors the generic
// path exactly — same admission order, same error codes, same response
// bytes — which the differential suite pins.
func (s *Server) binaryBatch(payload []byte, cw *connWriter) (res opResult) {
	id := le.Uint64(payload)
	fail := func(code, msg string) opResult {
		return result(errResponse(binFormatID(id), code, msg))
	}
	// Layout after the id and opcode: u16 topo length, topo bytes,
	// u32 pair count, count × (u32 src, u32 dst) — and nothing else.
	p := payload[9:]
	if len(p) < 6 {
		return fail(CodeBadRequest, "malformed binary request: "+errTruncated.Error())
	}
	tlen := int(le.Uint16(p))
	if tlen > maxBinaryString || len(p) < 2+tlen+4 {
		return fail(CodeBadRequest, "malformed binary request: "+errTruncated.Error())
	}
	topo := p[2 : 2+tlen]
	n := int(le.Uint32(p[2+tlen:]))
	body := p[2+tlen+4:]
	if 8*n != len(body) {
		if 8*n > len(body) {
			return fail(CodeBadRequest, "malformed binary request: "+errTruncated.Error())
		}
		return fail(CodeBadRequest, "malformed binary request: "+errTrailing.Error())
	}
	if c := s.perOp[OpRoutesBatch]; c != nil {
		c.Add(1)
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
		default:
			s.counters.Shed.Add(1)
			return fail(CodeOverloaded,
				fmt.Sprintf("in-flight limit %d reached; retry with backoff", s.opts.MaxInFlight))
		}
	}
	s.inflightNow.Add(1)
	defer func() {
		s.inflightNow.Add(-1)
		if s.inflight != nil {
			<-s.inflight
		}
		if r := recover(); r != nil {
			s.counters.Panics.Add(1)
			s.logf("jfserve: recovered panic in %s handler: %v\n%s", OpRoutesBatch, r, debug.Stack())
			res = opResult{resp: errResponse(binFormatID(id), CodeInternal,
				fmt.Sprintf("handler panicked: %v; closing this connection", r)), poison: true}
		}
	}()
	if n == 0 {
		return fail(CodeBadRequest, "routes-batch needs a non-empty pairs array")
	}
	if n > MaxBatchPairs {
		return fail(CodeBatchTooLarge,
			fmt.Sprintf("%d pairs exceed the %d-pair batch limit", n, MaxBatchPairs))
	}
	e, ok := s.entry(string(topo))
	if !ok {
		return fail(CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", topo))
	}
	out := append(cw.takeScratch(), payload[:8]...) // echo the id
	out = append(out, binKindBatch)
	routedOff := len(out)
	out = appendU32(out, 0) // routed, patched below
	out = appendU32(out, uint32(n))
	routed := 0
	for i := 0; i < n; i++ {
		src := int32(le.Uint32(body[8*i:]))
		dst := int32(le.Uint32(body[8*i+4:]))
		r, code, err := s.routeOne(e, src, dst)
		if err != nil {
			out = append(out, 0)
			out = appendU16(out, uint16(len(code)))
			out = append(out, code...)
			continue
		}
		out = append(out, 1)
		out = appendU16(out, uint16(len(r.Path)))
		for _, nd := range r.Path {
			out = appendU32(out, uint32(nd))
		}
		out = appendU32(out, uint32(int32(r.Index)))
		routed++
	}
	le.PutUint32(out[routedOff:], uint32(routed))
	return opResult{raw: out}
}

// takeScratch hands the writer's scratch buffer (empty, capacity
// retained) to the fast path; writeRaw puts the grown buffer back, so
// steady-state batches reuse one allocation. Only the connection's
// request loop calls this, and only for results it immediately writes.
func (cw *connWriter) takeScratch() []byte {
	cw.mu.Lock()
	b := cw.scratch[:0]
	cw.scratch = nil
	cw.mu.Unlock()
	return b
}

func (s *Server) handleHealth(req Request) Response {
	s.connMu.Lock()
	conns := len(s.conns)
	s.connMu.Unlock()
	s.mu.Lock()
	topos := len(s.topos)
	s.mu.Unlock()
	c := s.counters.Snapshot()
	resp := okResponse(req.ID)
	resp.Health = &HealthResult{
		Ready:           !s.stopping(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Topos:           topos,
		Conns:           conns,
		MaxConns:        s.opts.MaxConns,
		InFlight:        int(s.inflightNow.Load()),
		MaxInFlight:     s.opts.MaxInFlight,
		Shed:            c.Shed,
		ConnShed:        c.ConnShed,
		Panics:          c.Panics,
		HandlerTimeouts: c.HandlerTimeouts,
		IOTimeouts:      c.IOTimeouts,
		SweepsActive:    int(s.sweepsActive.Load()),
		MaxSweeps:       s.opts.MaxSweeps,
	}
	return resp
}

// entry resolves the request's topology key.
func (s *Server) entry(key string) (*topoEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.topos[key]
	return e, ok
}

// lookupCode maps a paths.DB lookup error to its protocol error code.
func lookupCode(err error) string {
	switch {
	case errors.Is(err, paths.ErrSelfPair), errors.Is(err, paths.ErrOutOfRange):
		return CodeBadPair
	case errors.Is(err, paths.ErrNotStored):
		return CodePairNotFound
	case errors.Is(err, paths.ErrNoPath):
		return CodeNoPath
	}
	return CodeBadRequest
}

// routeOne validates and routes a single pair on an entry.
func (s *Server) routeOne(e *topoEntry, src, dst int32) (RouteResult, string, error) {
	if _, err := e.db.Lookup(src, dst); err != nil {
		return RouteResult{}, lookupCode(err), err
	}
	p, idx := e.choose(src, dst)
	if p == nil {
		return RouteResult{}, CodeNoPath, fmt.Errorf("no candidate survives for %d->%d", src, dst)
	}
	s.routeLookups.Add(1)
	return RouteResult{Path: p, Index: idx, Hops: p.Hops()}, "", nil
}

func (s *Server) handleRoute(req Request) Response {
	if req.Src == nil || req.Dst == nil {
		return errResponse(req.ID, CodeBadRequest, "route needs src and dst")
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	r, code, err := s.routeOne(e, *req.Src, *req.Dst)
	if err != nil {
		return errResponse(req.ID, code, err.Error())
	}
	resp := okResponse(req.ID)
	resp.Route = &r
	return resp
}

func (s *Server) handleRoutesBatch(req Request) Response {
	if len(req.Pairs) == 0 {
		return errResponse(req.ID, CodeBadRequest, "routes-batch needs a non-empty pairs array")
	}
	if len(req.Pairs) > MaxBatchPairs {
		return errResponse(req.ID, CodeBatchTooLarge,
			fmt.Sprintf("%d pairs exceed the %d-pair batch limit", len(req.Pairs), MaxBatchPairs))
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	out := BatchResult{Entries: make([]BatchEntry, len(req.Pairs))}
	for i, pr := range req.Pairs {
		r, code, err := s.routeOne(e, pr[0], pr[1])
		if err != nil {
			out.Entries[i] = BatchEntry{Err: code}
			continue
		}
		route := r
		out.Entries[i] = BatchEntry{Route: &route}
		out.Routed++
	}
	resp := okResponse(req.ID)
	resp.Batch = &out
	return resp
}

// handleSweep admits one sweep: validates it, claims a sweep slot and
// acknowledges with the chunking plan. The streamer itself starts from
// the result's after hook — only once the ack frame is on the wire, so
// chunk frames can never precede it.
func (s *Server) handleSweep(req Request, cw *connWriter) opResult {
	sp := req.Sweep
	if sp == nil {
		return result(errResponse(req.ID, CodeBadRequest, "sweep needs sweep params"))
	}
	chunk := sp.Chunk
	if chunk == 0 {
		chunk = DefaultSweepChunk
	}
	if chunk < 1 || chunk > MaxBatchPairs {
		return result(errResponse(req.ID, CodeBadRequest,
			fmt.Sprintf("sweep chunk must be 1..%d", MaxBatchPairs)))
	}
	var total int
	switch {
	case sp.Count > 0 && len(sp.Pairs) > 0:
		return result(errResponse(req.ID, CodeBadRequest, "sweep takes count or pairs, not both"))
	case sp.Count > 0:
		if sp.Count > MaxSweepPairs {
			return result(errResponse(req.ID, CodeBadRequest,
				fmt.Sprintf("%d pairs exceed the %d-pair sweep limit", sp.Count, MaxSweepPairs)))
		}
		total = sp.Count
	case len(sp.Pairs) > 0:
		if len(sp.Pairs) > MaxSweepPairs {
			return result(errResponse(req.ID, CodeBadRequest,
				fmt.Sprintf("%d pairs exceed the %d-pair sweep limit", len(sp.Pairs), MaxSweepPairs)))
		}
		total = len(sp.Pairs)
	default:
		return result(errResponse(req.ID, CodeBadRequest, "sweep needs count or pairs"))
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return result(errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo)))
	}
	if sp.Count > 0 && e.topo.N < 2 {
		return result(errResponse(req.ID, CodeBadRequest,
			"generated sweep pairs need a topology with at least 2 switches"))
	}
	if s.sweepSem != nil {
		select {
		case s.sweepSem <- struct{}{}:
		default:
			s.counters.Shed.Add(1)
			return result(errResponse(req.ID, CodeOverloaded,
				fmt.Sprintf("sweep limit %d reached; retry with backoff", s.opts.MaxSweeps)))
		}
	}
	s.sweepsActive.Add(1)
	release := func() {
		s.sweepsActive.Add(-1)
		if s.sweepSem != nil {
			<-s.sweepSem
		}
	}
	chunks := (total + chunk - 1) / chunk
	resp := okResponse(req.ID)
	resp.Sweep = &SweepStart{TotalPairs: total, ChunkSize: chunk, Chunks: chunks}
	id, params := req.ID, *sp
	return opResult{
		resp: resp,
		after: func() {
			s.wg.Add(1)
			go s.runSweep(e, cw, id, params, chunk, total, release)
		},
		discard: release,
	}
}

// runSweep streams one sweep's chunk frames through the connection
// writer, interleaving with the request loop's responses. It stops
// early — abandoning the stream, no SweepDone — when the server is
// stopping or the connection's writer has died; either way the
// connection is going down with it.
func (s *Server) runSweep(e *topoEntry, cw *connWriter, id string, sp SweepParams, chunk, total int, release func()) {
	defer s.wg.Done()
	defer release()
	var rng *xrand.RNG
	if sp.Count > 0 {
		// The generated pair stream is seeded server-side, so the same
		// (seed, count) sweep routes the same pairs on every run and
		// over either codec.
		rng = xrand.NewPair(sp.Seed, 0x73777065) // "swpe"
	}
	nodes := e.topo.N
	// Entries and routes are reused across chunks: the writer encodes
	// synchronously, so nothing references them once write returns.
	entries := make([]BatchEntry, chunk)
	routes := make([]RouteResult, chunk)
	var seq int
	var routed, failed int64
	for off := 0; off < total; off += chunk {
		if s.stopping() || cw.failed() {
			return
		}
		n := chunk
		if total-off < n {
			n = total - off
		}
		chunkRouted, nr := 0, 0
		for i := 0; i < n; i++ {
			var src, dst int32
			if rng != nil {
				src = int32(rng.IntN(nodes))
				dst = int32(rng.IntNExcept(nodes, int(src)))
			} else {
				pr := sp.Pairs[off+i]
				src, dst = pr[0], pr[1]
			}
			r, code, err := s.routeOne(e, src, dst)
			if err != nil {
				entries[i] = BatchEntry{Err: code}
				failed++
				continue
			}
			routes[nr] = r
			entries[i] = BatchEntry{Route: &routes[nr]}
			nr++
			chunkRouted++
			routed++
		}
		resp := okResponse(id)
		resp.SweepChunk = &SweepChunk{Seq: seq, Routed: chunkRouted, Entries: entries[:n]}
		if cw.write(&resp) != nil {
			return
		}
		seq++
	}
	resp := okResponse(id)
	resp.SweepDone = &SweepDone{Chunks: seq, Routed: routed, Failed: failed}
	cw.write(&resp)
}

func (s *Server) handleEstimate(req Request) Response {
	if req.Src == nil || req.Dst == nil {
		return errResponse(req.ID, CodeBadRequest, "estimate needs src and dst")
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	ps, err := e.db.Lookup(*req.Src, *req.Dst)
	if err != nil {
		return errResponse(req.ID, lookupCode(err), err.Error())
	}
	resp := okResponse(req.ID)
	est := estimatePair(ps)
	resp.Estimate = &est
	return resp
}

// estimatePair computes the pair's path-set quality and the
// isolated-flow Equation-1 throughput: the pair's k sub-flows load each
// link they cross (injection/ejection load k by construction, so a
// fully link-disjoint set scores exactly 1.0), each sub-flow moves at
// the reciprocal of its path's maximum load, and the flow's throughput
// is the sum — the model of internal/model restricted to one flow.
func estimatePair(ps []graph.Path) EstimateResult {
	res := EstimateResult{Candidates: len(ps), MaxShare: paths.MaxShare(ps)}
	counts := make(map[uint64]int, 8*len(ps))
	totHops := 0
	for _, p := range ps {
		if h := p.Hops(); res.MinHops == 0 || h < res.MinHops {
			res.MinHops = h
		}
		totHops += p.Hops()
		for i := 0; i+1 < len(p); i++ {
			counts[dirKey(p[i], p[i+1])]++
		}
	}
	if len(ps) > 0 {
		res.AvgHops = float64(totHops) / float64(len(ps))
	}
	k := len(ps)
	for _, p := range ps {
		maxLoad := k // the shared injection/ejection links
		for i := 0; i+1 < len(p); i++ {
			if c := counts[dirKey(p[i], p[i+1])]; c > maxLoad {
				maxLoad = c
			}
		}
		res.Throughput += 1 / float64(maxLoad)
	}
	return res
}

func dirKey(u, v graph.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// TopoKey renders the identity of one loaded topology:
// "<graph fingerprint>|<selector canonical form>|<seed>". The same
// triple keys the on-disk path cache, so one key always denotes one
// exact path DB.
func TopoKey(g *graph.Graph, cfg ksp.Config, seed uint64) string {
	return fmt.Sprintf("%016x|%s|%d", g.Fingerprint(), cfg.Canonical(), seed)
}

func (s *Server) handleTopoLoad(req Request) Response {
	if req.Params == nil {
		return errResponse(req.ID, CodeBadRequest, "topo-load needs params")
	}
	res, err := s.LoadTopology(*req.Params)
	if err != nil {
		code := CodeTopoLoad
		var badParam *paramError
		if errors.As(err, &badParam) {
			code = CodeBadRequest
		}
		return errResponse(req.ID, code, err.Error())
	}
	resp := okResponse(req.ID)
	resp.Topo = &res
	return resp
}

// paramError marks a topo-load failure caused by the request itself.
type paramError struct{ err error }

func (e *paramError) Error() string { return e.err.Error() }
func (e *paramError) Unwrap() error { return e.err }

// LoadTopology builds (or cache-loads) the path DB described by p and
// makes it resident. It is what topo-load calls; cmd/jfserve also calls
// it directly for -preload. Loading an already resident key is
// idempotent: the existing DB is kept.
func (s *Server) LoadTopology(p TopoParams) (TopoResult, error) {
	if p.Selector == "" {
		p.Selector = "rEDKSP"
	}
	if p.K == 0 {
		p.K = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Mechanism == "" {
		p.Mechanism = "ksp-adaptive"
	}
	if p.Estimator == "" {
		p.Estimator = "link-load"
	}
	if p.PairSample < 0 {
		return TopoResult{}, &paramError{fmt.Errorf("pair_sample must be non-negative, got %d", p.PairSample)}
	}
	if p.TopoSample < 0 {
		return TopoResult{}, &paramError{fmt.Errorf("topo_sample must be non-negative, got %d", p.TopoSample)}
	}

	var params jellyfish.Params
	if p.Topo != "" {
		var err error
		if params, err = jellyfish.ByName(p.Topo); err != nil {
			return TopoResult{}, &paramError{err}
		}
	} else {
		params = jellyfish.Params{N: p.N, X: p.X, Y: p.Y}
		if err := params.Validate(); err != nil {
			return TopoResult{}, &paramError{err}
		}
	}
	alg, err := ksp.ByName(p.Selector)
	if err != nil {
		return TopoResult{}, &paramError{err}
	}
	mech, err := routing.ByName(p.Mechanism)
	if err != nil {
		return TopoResult{}, &paramError{err}
	}
	if _, err := routing.EstimatorByName(p.Estimator); err != nil {
		return TopoResult{}, &paramError{err}
	}

	// The experiment-seed derivation (internal/seeds): same -seed, same
	// sample index → bit-identical graph and path DB as the binaries.
	topo, err := jellyfish.New(params, seeds.TopoRNG(p.Seed, p.TopoSample))
	if err != nil {
		return TopoResult{}, err
	}
	cfg := ksp.Config{Alg: alg, K: p.K}
	pathSeed := seeds.PathSeed(p.Seed, p.TopoSample, alg)
	key := TopoKey(topo.G, cfg, pathSeed)

	s.mu.Lock()
	if e, ok := s.topos[key]; ok {
		s.mu.Unlock()
		return TopoResult{Key: key, AlreadyLoaded: true, Switches: params.N,
			Terminals: topo.NumTerminals(), Pairs: e.pairs, K: e.db.K()}, nil
	}
	s.mu.Unlock()

	var prs []paths.Pair
	if p.PairSample > 0 {
		prs = paths.SamplePairs(params.N, p.PairSample, xrand.NewPair(pathSeed, 0x706172)) // "par"
	} else {
		prs = paths.AllOrderedPairs(params.N)
	}
	t0 := time.Now()
	db, cacheStats, err := paths.LoadOrBuild(s.opts.PathCache, topo.G, cfg, pathSeed, prs, s.opts.Workers)
	if err != nil {
		return TopoResult{}, err
	}
	loadSec := time.Since(t0).Seconds()

	// The View is shared by every stripe and prewarmed so Choose calls
	// only ever read it; all mutable routing state is per-stripe, each
	// stripe with its own independently seeded RNG stream and its own
	// estimator instance.
	view := &routing.View{Provider: db, NumNodes: params.N}
	view.Prewarm()
	nstripes := s.opts.Stripes
	if nstripes <= 0 {
		nstripes = runtime.GOMAXPROCS(0)
	}
	stripes := make([]stripe, nstripes)
	for i := range stripes {
		est, err := routing.EstimatorByName(p.Estimator)
		if err != nil {
			return TopoResult{}, &paramError{err}
		}
		ll, _ := est.(*routing.LinkLoadEstimator)
		stripes[i] = stripe{
			state: mech.NewState(),
			est:   est,
			ll:    ll,
			rng:   seeds.StripeRNG(pathSeed, topo.G.Fingerprint(), i),
		}
	}
	e := &topoEntry{
		key:      key,
		topo:     topo,
		db:       db,
		view:     view,
		mechName: mech.Name(),
		estName:  p.Estimator,
		stripes:  stripes,
		pairs:    db.NumPairs(),
	}
	s.mu.Lock()
	if prev, ok := s.topos[key]; ok {
		// A concurrent load won the race; keep its state.
		s.mu.Unlock()
		return TopoResult{Key: key, AlreadyLoaded: true, Switches: params.N,
			Terminals: topo.NumTerminals(), Pairs: prev.pairs, K: prev.db.K()}, nil
	}
	s.topos[key] = e
	s.mu.Unlock()
	s.logf("jfserve: loaded %s as %s (%d pairs, %d stripes, cache hit %v, %.2fs)",
		params, key, e.pairs, nstripes, cacheStats.Hit, loadSec)
	return TopoResult{Key: key, Switches: params.N, Terminals: topo.NumTerminals(),
		Pairs: e.pairs, K: p.K, CacheHit: cacheStats.Hit, LoadSeconds: loadSec}, nil
}

func (s *Server) handleTopoEvict(req Request) Response {
	if req.Topo == "" {
		return errResponse(req.ID, CodeBadRequest, "topo-evict needs topo")
	}
	s.mu.Lock()
	_, ok := s.topos[req.Topo]
	delete(s.topos, req.Topo)
	s.mu.Unlock()
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	s.logf("jfserve: evicted %s", req.Topo)
	return okResponse(req.ID)
}

func (s *Server) handleStats(req Request) Response {
	uptime := time.Since(s.start).Seconds()
	st := StatsResult{
		UptimeSeconds: uptime,
		Requests:      s.requests.Load(),
		RouteLookups:  s.routeLookups.Load(),
		PerOp:         make(map[string]int64, len(s.perOp)),
		Latency:       latencySummaryOf(s.latency.Summarize()),
	}
	if uptime > 0 {
		st.QPS = float64(st.Requests) / uptime
	}
	for op, c := range s.perOp {
		st.PerOp[op] = c.Load()
	}
	s.mu.Lock()
	for _, e := range s.topos {
		st.Topos = append(st.Topos, TopoInfo{
			Key: e.key, Switches: e.topo.N, Pairs: e.pairs, K: e.db.K(),
			Mechanism: e.mechName, Estimator: e.estName,
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Topos, func(i, j int) bool { return st.Topos[i].Key < st.Topos[j].Key })
	resp := okResponse(req.ID)
	resp.Stats = &st
	return resp
}
