package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/seeds"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// Options configures a Server. The zero value serves without limits —
// every limit and timeout below defaults to off, so embedders (tests,
// benchmarks) opt in; cmd/jfserve turns them on with production
// defaults via its flags.
type Options struct {
	// PathCache is the on-disk path-DB cache directory ("" = build
	// in-process; see docs/PATHS.md). topo-load streams warm DBs from
	// it exactly the way the experiment binaries do.
	PathCache string
	// Workers bounds build parallelism (<= 0 = GOMAXPROCS).
	Workers int
	// Logf receives one line per lifecycle event (nil = silent).
	Logf func(format string, args ...any)

	// MaxConns bounds concurrent connections (0 = unlimited). A
	// connection over the limit receives one overloaded error frame and
	// is closed.
	MaxConns int
	// MaxInFlight bounds concurrently executing requests across all
	// connections (0 = unlimited). A request over the limit is answered
	// overloaded immediately — explicit load shedding, never queueing —
	// and the connection stays open. health is exempt.
	MaxInFlight int
	// ReadTimeout is the maximum time to receive one complete request
	// frame, and doubles as the idle timeout (0 = none). A slow-loris
	// sender trickling bytes never completes a frame in time and is
	// disconnected.
	ReadTimeout time.Duration
	// WriteTimeout is the maximum time to write one response frame
	// (0 = none). A client not draining responses is disconnected once
	// the kernel buffer backs up past the deadline.
	WriteTimeout time.Duration
	// HandlerTimeout bounds one request's handler execution (0 = none).
	// An overrunning request is answered with the timeout code and its
	// handler keeps running detached (still holding its in-flight slot,
	// so load accounting stays honest); its eventual result is dropped.
	// Note a cold topo-load of a large topology legitimately takes
	// minutes — enable this only with warm caches or -preload.
	HandlerTimeout time.Duration
	// EnableTestOps registers the test-sleep and test-crash operations
	// used by the chaos harness (internal/serve/chaos). Never set in
	// production; a normal daemon answers unknown-op.
	EnableTestOps bool
}

// topoEntry is one resident topology: an immutable warm DB read
// lock-free by every connection, plus the mutable routing state
// (mechanism State, RNG, load estimator) guarded by mu so concurrent
// route requests see a consistent choice sequence and fault masks.
type topoEntry struct {
	key  string
	topo *jellyfish.Topology
	db   *paths.DB
	view *routing.View

	mechName string
	estName  string

	mu    sync.Mutex
	state routing.State
	est   routing.LoadEstimator
	rng   *xrand.RNG

	pairs int
}

// choose runs one guarded Choose call and feeds the estimator.
func (e *topoEntry) choose(src, dst graph.NodeID) (graph.Path, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, idx := e.state.Choose(e.view, src, dst, e.est, e.rng)
	if p != nil {
		if obs, ok := e.est.(*routing.LinkLoadEstimator); ok {
			obs.Observe(p)
		}
	}
	return p, idx
}

// Server is the route-oracle daemon: one goroutine per connection over
// shared read-only path DBs. Create with NewServer, run with Serve
// (usually in a goroutine), stop with Stop — which closes the listener,
// lets in-flight requests finish writing their responses, and then
// closes every connection.
type Server struct {
	opts  Options
	start time.Time

	mu    sync.Mutex // guards topos
	topos map[string]*topoEntry

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	lisMu     sync.Mutex
	listeners map[net.Listener]struct{}

	requests     atomic.Int64
	routeLookups atomic.Int64
	perOp        map[string]*atomic.Int64
	latency      *telemetry.Histogram // microsecond buckets

	// Resilience state: the in-flight semaphore (nil = unlimited), the
	// instantaneous in-flight gauge, and the shed/panic/timeout
	// counters surfaced by the health op.
	inflight    chan struct{}
	inflightNow atomic.Int64
	counters    telemetry.ServiceCounters
}

// NewServer returns an idle server with no topologies loaded.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:      opts,
		start:     time.Now(),
		topos:     make(map[string]*topoEntry),
		conns:     make(map[net.Conn]struct{}),
		quit:      make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		perOp:     make(map[string]*atomic.Int64),
		// 1 µs buckets up to ~65 ms; slower requests (topo-load builds)
		// land in the overflow bucket and read as "at least the cap".
		latency: telemetry.NewHistogram(1, 1<<16),
	}
	for _, op := range []string{OpRoute, OpRoutesBatch, OpEstimate, OpTopoLoad, OpTopoEvict, OpStats, OpHealth} {
		s.perOp[op] = &atomic.Int64{}
	}
	if opts.EnableTestOps {
		s.perOp[OpTestSleep] = &atomic.Int64{}
		s.perOp[OpTestCrash] = &atomic.Int64{}
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	return s
}

// Counters exposes the resilience counters (shed, panics, timeouts) for
// embedders and tests; the wire-level view is the health op.
func (s *Server) Counters() telemetry.ServiceSnapshot { return s.counters.Snapshot() }

// InFlight reports the number of requests currently executing (the
// health op's in_flight field).
func (s *Server) InFlight() int { return int(s.inflightNow.Load()) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on l until Stop is called. It returns nil
// after a clean shutdown and the accept error otherwise. Multiple
// Serve calls on different listeners may run concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.lisMu.Lock()
	s.listeners[l] = struct{}{}
	s.lisMu.Unlock()
	defer func() {
		s.lisMu.Lock()
		delete(s.listeners, l)
		s.lisMu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.connMu.Unlock()
			s.counters.ConnShed.Add(1)
			// Refuse off the accept loop: the refused client may be
			// slow to drain even one frame.
			s.wg.Add(1)
			go s.refuseConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// refuseConn tells a connection over the limit why it is being dropped:
// one overloaded error frame (with an empty id — no request was read),
// then close.
func (s *Server) refuseConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	buf, err := json.Marshal(errResponse("", CodeOverloaded,
		fmt.Sprintf("connection limit %d reached; retry with backoff", s.opts.MaxConns)))
	if err != nil {
		return
	}
	conn.Write(append(buf, '\n'))
}

// Stop shuts the server down gracefully: no new connections are
// accepted, each connection finishes the request it is currently
// serving (including writing the response) and then closes, and Stop
// returns once every connection goroutine has exited.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.quit)
		s.lisMu.Lock()
		for l := range s.listeners {
			l.Close()
		}
		s.lisMu.Unlock()
		// Unblock connections idle in Read with an explicit half-close:
		// CloseRead makes the pending (and every future) Read return
		// EOF while the write side stays open, so a handler mid-request
		// still writes its response in full before its loop observes
		// quit. Conn types without CloseRead (not the unix/tcp
		// listeners we create, but embedders can pass anything) fall
		// back to an already-expired read deadline.
		s.connMu.Lock()
		for c := range s.conns {
			if cr, ok := c.(interface{ CloseRead() error }); ok {
				cr.CloseRead()
			} else {
				c.SetReadDeadline(time.Now())
			}
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	s.logf("jfserve: stopped (%d requests served)", s.requests.Load())
}

// handleConn serves one connection: newline-delimited JSON requests,
// answered in order under the configured read/write deadlines. A
// request whose handler panics poisons only this connection: the error
// frame is written, then the connection closes.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)
	// Unlike bufio.ScanLines, never deliver an unterminated final frame:
	// a read error (EOF, deadline expiry) mid-frame means the frame never
	// arrived, not that a truncated one did — parsing the fragment would
	// answer bad-json to a peer that sent no complete request.
	sc.Split(scanCompleteLines)
	w := bufio.NewWriterSize(conn, 64<<10)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		if !sc.Scan() {
			err := sc.Err()
			switch {
			case errors.Is(err, bufio.ErrTooLong):
				// The frame boundary is lost; report and drop the
				// connection rather than misparse the stream.
				enc.Encode(errResponse("", CodeFrameTooLarge,
					fmt.Sprintf("request exceeds %d bytes", MaxFrameBytes)))
				w.Flush()
			case isTimeout(err) && !s.stopping():
				// The frame did not complete within ReadTimeout — an
				// idle, stalled or slow-loris sender. Close silently:
				// a mid-frame peer cannot re-sync on an error frame.
				s.counters.IOTimeouts.Add(1)
			}
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp, poison := s.handleFrame(line)
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			if isTimeout(err) {
				s.counters.IOTimeouts.Add(1)
			}
			return
		}
		if err := w.Flush(); err != nil {
			if isTimeout(err) {
				s.counters.IOTimeouts.Add(1)
			}
			return
		}
		if poison {
			return
		}
	}
}

// scanCompleteLines is bufio.ScanLines minus the final-token rule: data
// not terminated by '\n' when the reader errors out is dropped, not
// delivered.
func scanCompleteLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return i + 1, bytes.TrimSuffix(data[:i], []byte{'\r'}), nil
	}
	if atEOF {
		return len(data), nil, nil // discard the fragment
	}
	return 0, nil, nil
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// stopping reports whether Stop has begun.
func (s *Server) stopping() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// handleFrame decodes, admits, dispatches and times one request. poison
// reports that the connection must close after the response is written
// (the handler panicked).
func (s *Server) handleFrame(line []byte) (resp Response, poison bool) {
	t0 := time.Now()
	resp, poison = s.admit(line)
	s.requests.Add(1)
	s.latency.Observe(time.Since(t0).Microseconds())
	return resp, poison
}

// admit parses the envelope and applies the resilience policy — health
// bypass, load shedding, handler timeout, panic recovery — around the
// op dispatch.
func (s *Server) admit(line []byte) (Response, bool) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return errResponse("", CodeBadJSON, err.Error()), false
	}
	if req.V != ProtocolVersion {
		return errResponse(req.ID, CodeBadVersion,
			fmt.Sprintf("request version %d, server speaks %d", req.V, ProtocolVersion)), false
	}
	if c, ok := s.perOp[req.Op]; ok {
		c.Add(1)
	}
	// health must answer while the server is overloaded, so it is
	// exempt from the in-flight limit and the handler timeout. It only
	// reads atomics — cheap enough to never need shedding.
	if req.Op == OpHealth {
		return s.handleHealth(req), false
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
		default:
			s.counters.Shed.Add(1)
			return errResponse(req.ID, CodeOverloaded,
				fmt.Sprintf("in-flight limit %d reached; retry with backoff", s.opts.MaxInFlight)), false
		}
	}
	if s.opts.HandlerTimeout <= 0 {
		// No timeout: run inline, keeping the hot path goroutine-free.
		resp, panicked := s.runOp(req)
		return resp, panicked
	}
	type result struct {
		resp     Response
		panicked bool
	}
	done := make(chan result, 1)
	go func() {
		resp, panicked := s.runOp(req)
		done <- result{resp, panicked}
	}()
	timer := time.NewTimer(s.opts.HandlerTimeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.resp, r.panicked
	case <-timer.C:
		// The handler keeps running detached, holding its in-flight
		// slot until it finishes; its result is dropped. A detached
		// panic is still recovered and counted but can no longer poison
		// this connection — the error frame it would ride out on was
		// already replaced by this timeout.
		s.counters.HandlerTimeouts.Add(1)
		return errResponse(req.ID, CodeTimeout,
			fmt.Sprintf("handler exceeded the %s request timeout", s.opts.HandlerTimeout)), false
	}
}

// runOp executes one op with panic recovery, accounting it against the
// in-flight gauge and releasing the in-flight slot (if limits are on)
// when the handler returns. panicked=true poisons the connection.
func (s *Server) runOp(req Request) (resp Response, panicked bool) {
	s.inflightNow.Add(1)
	defer func() {
		s.inflightNow.Add(-1)
		if s.inflight != nil {
			<-s.inflight
		}
		if r := recover(); r != nil {
			s.counters.Panics.Add(1)
			s.logf("jfserve: recovered panic in %s handler: %v\n%s", req.Op, r, debug.Stack())
			resp = errResponse(req.ID, CodeInternal,
				fmt.Sprintf("handler panicked: %v; closing this connection", r))
			panicked = true
		}
	}()
	return s.dispatch(req), false
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case OpRoute:
		return s.handleRoute(req)
	case OpRoutesBatch:
		return s.handleRoutesBatch(req)
	case OpEstimate:
		return s.handleEstimate(req)
	case OpTopoLoad:
		return s.handleTopoLoad(req)
	case OpTopoEvict:
		return s.handleTopoEvict(req)
	case OpStats:
		return s.handleStats(req)
	case OpTestSleep:
		if s.opts.EnableTestOps {
			time.Sleep(time.Duration(req.SleepMS) * time.Millisecond)
			return okResponse(req.ID)
		}
	case OpTestCrash:
		if s.opts.EnableTestOps {
			panic("injected test-crash")
		}
	}
	return errResponse(req.ID, CodeUnknownOp, fmt.Sprintf("unknown op %q", req.Op))
}

func (s *Server) handleHealth(req Request) Response {
	s.connMu.Lock()
	conns := len(s.conns)
	s.connMu.Unlock()
	s.mu.Lock()
	topos := len(s.topos)
	s.mu.Unlock()
	c := s.counters.Snapshot()
	resp := okResponse(req.ID)
	resp.Health = &HealthResult{
		Ready:           !s.stopping(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Topos:           topos,
		Conns:           conns,
		MaxConns:        s.opts.MaxConns,
		InFlight:        int(s.inflightNow.Load()),
		MaxInFlight:     s.opts.MaxInFlight,
		Shed:            c.Shed,
		ConnShed:        c.ConnShed,
		Panics:          c.Panics,
		HandlerTimeouts: c.HandlerTimeouts,
		IOTimeouts:      c.IOTimeouts,
	}
	return resp
}

// entry resolves the request's topology key.
func (s *Server) entry(key string) (*topoEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.topos[key]
	return e, ok
}

// lookupCode maps a paths.DB lookup error to its protocol error code.
func lookupCode(err error) string {
	switch {
	case errors.Is(err, paths.ErrSelfPair), errors.Is(err, paths.ErrOutOfRange):
		return CodeBadPair
	case errors.Is(err, paths.ErrNotStored):
		return CodePairNotFound
	case errors.Is(err, paths.ErrNoPath):
		return CodeNoPath
	}
	return CodeBadRequest
}

// routeOne validates and routes a single pair on an entry.
func (s *Server) routeOne(e *topoEntry, src, dst int32) (RouteResult, string, error) {
	if _, err := e.db.Lookup(src, dst); err != nil {
		return RouteResult{}, lookupCode(err), err
	}
	p, idx := e.choose(src, dst)
	if p == nil {
		return RouteResult{}, CodeNoPath, fmt.Errorf("no candidate survives for %d->%d", src, dst)
	}
	s.routeLookups.Add(1)
	return RouteResult{Path: p, Index: idx, Hops: p.Hops()}, "", nil
}

func (s *Server) handleRoute(req Request) Response {
	if req.Src == nil || req.Dst == nil {
		return errResponse(req.ID, CodeBadRequest, "route needs src and dst")
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	r, code, err := s.routeOne(e, *req.Src, *req.Dst)
	if err != nil {
		return errResponse(req.ID, code, err.Error())
	}
	resp := okResponse(req.ID)
	resp.Route = &r
	return resp
}

func (s *Server) handleRoutesBatch(req Request) Response {
	if len(req.Pairs) == 0 {
		return errResponse(req.ID, CodeBadRequest, "routes-batch needs a non-empty pairs array")
	}
	if len(req.Pairs) > MaxBatchPairs {
		return errResponse(req.ID, CodeBatchTooLarge,
			fmt.Sprintf("%d pairs exceed the %d-pair batch limit", len(req.Pairs), MaxBatchPairs))
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	out := BatchResult{Entries: make([]BatchEntry, len(req.Pairs))}
	for i, pr := range req.Pairs {
		r, code, err := s.routeOne(e, pr[0], pr[1])
		if err != nil {
			out.Entries[i] = BatchEntry{Err: code}
			continue
		}
		route := r
		out.Entries[i] = BatchEntry{Route: &route}
		out.Routed++
	}
	resp := okResponse(req.ID)
	resp.Batch = &out
	return resp
}

func (s *Server) handleEstimate(req Request) Response {
	if req.Src == nil || req.Dst == nil {
		return errResponse(req.ID, CodeBadRequest, "estimate needs src and dst")
	}
	e, ok := s.entry(req.Topo)
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	ps, err := e.db.Lookup(*req.Src, *req.Dst)
	if err != nil {
		return errResponse(req.ID, lookupCode(err), err.Error())
	}
	resp := okResponse(req.ID)
	est := estimatePair(ps)
	resp.Estimate = &est
	return resp
}

// estimatePair computes the pair's path-set quality and the
// isolated-flow Equation-1 throughput: the pair's k sub-flows load each
// link they cross (injection/ejection load k by construction, so a
// fully link-disjoint set scores exactly 1.0), each sub-flow moves at
// the reciprocal of its path's maximum load, and the flow's throughput
// is the sum — the model of internal/model restricted to one flow.
func estimatePair(ps []graph.Path) EstimateResult {
	res := EstimateResult{Candidates: len(ps), MaxShare: paths.MaxShare(ps)}
	counts := make(map[uint64]int, 8*len(ps))
	totHops := 0
	for _, p := range ps {
		if h := p.Hops(); res.MinHops == 0 || h < res.MinHops {
			res.MinHops = h
		}
		totHops += p.Hops()
		for i := 0; i+1 < len(p); i++ {
			counts[dirKey(p[i], p[i+1])]++
		}
	}
	if len(ps) > 0 {
		res.AvgHops = float64(totHops) / float64(len(ps))
	}
	k := len(ps)
	for _, p := range ps {
		maxLoad := k // the shared injection/ejection links
		for i := 0; i+1 < len(p); i++ {
			if c := counts[dirKey(p[i], p[i+1])]; c > maxLoad {
				maxLoad = c
			}
		}
		res.Throughput += 1 / float64(maxLoad)
	}
	return res
}

func dirKey(u, v graph.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// TopoKey renders the identity of one loaded topology:
// "<graph fingerprint>|<selector canonical form>|<seed>". The same
// triple keys the on-disk path cache, so one key always denotes one
// exact path DB.
func TopoKey(g *graph.Graph, cfg ksp.Config, seed uint64) string {
	return fmt.Sprintf("%016x|%s|%d", g.Fingerprint(), cfg.Canonical(), seed)
}

func (s *Server) handleTopoLoad(req Request) Response {
	if req.Params == nil {
		return errResponse(req.ID, CodeBadRequest, "topo-load needs params")
	}
	res, err := s.LoadTopology(*req.Params)
	if err != nil {
		code := CodeTopoLoad
		var badParam *paramError
		if errors.As(err, &badParam) {
			code = CodeBadRequest
		}
		return errResponse(req.ID, code, err.Error())
	}
	resp := okResponse(req.ID)
	resp.Topo = &res
	return resp
}

// paramError marks a topo-load failure caused by the request itself.
type paramError struct{ err error }

func (e *paramError) Error() string { return e.err.Error() }
func (e *paramError) Unwrap() error { return e.err }

// LoadTopology builds (or cache-loads) the path DB described by p and
// makes it resident. It is what topo-load calls; cmd/jfserve also calls
// it directly for -preload. Loading an already resident key is
// idempotent: the existing DB is kept.
func (s *Server) LoadTopology(p TopoParams) (TopoResult, error) {
	if p.Selector == "" {
		p.Selector = "rEDKSP"
	}
	if p.K == 0 {
		p.K = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Mechanism == "" {
		p.Mechanism = "ksp-adaptive"
	}
	if p.Estimator == "" {
		p.Estimator = "link-load"
	}
	if p.PairSample < 0 {
		return TopoResult{}, &paramError{fmt.Errorf("pair_sample must be non-negative, got %d", p.PairSample)}
	}
	if p.TopoSample < 0 {
		return TopoResult{}, &paramError{fmt.Errorf("topo_sample must be non-negative, got %d", p.TopoSample)}
	}

	var params jellyfish.Params
	if p.Topo != "" {
		var err error
		if params, err = jellyfish.ByName(p.Topo); err != nil {
			return TopoResult{}, &paramError{err}
		}
	} else {
		params = jellyfish.Params{N: p.N, X: p.X, Y: p.Y}
		if err := params.Validate(); err != nil {
			return TopoResult{}, &paramError{err}
		}
	}
	alg, err := ksp.ByName(p.Selector)
	if err != nil {
		return TopoResult{}, &paramError{err}
	}
	mech, err := routing.ByName(p.Mechanism)
	if err != nil {
		return TopoResult{}, &paramError{err}
	}
	est, err := routing.EstimatorByName(p.Estimator)
	if err != nil {
		return TopoResult{}, &paramError{err}
	}

	// The experiment-seed derivation (internal/seeds): same -seed, same
	// sample index → bit-identical graph and path DB as the binaries.
	topo, err := jellyfish.New(params, seeds.TopoRNG(p.Seed, p.TopoSample))
	if err != nil {
		return TopoResult{}, err
	}
	cfg := ksp.Config{Alg: alg, K: p.K}
	pathSeed := seeds.PathSeed(p.Seed, p.TopoSample, alg)
	key := TopoKey(topo.G, cfg, pathSeed)

	s.mu.Lock()
	if e, ok := s.topos[key]; ok {
		s.mu.Unlock()
		return TopoResult{Key: key, AlreadyLoaded: true, Switches: params.N,
			Terminals: topo.NumTerminals(), Pairs: e.pairs, K: e.db.K()}, nil
	}
	s.mu.Unlock()

	var prs []paths.Pair
	if p.PairSample > 0 {
		prs = paths.SamplePairs(params.N, p.PairSample, xrand.NewPair(pathSeed, 0x706172)) // "par"
	} else {
		prs = paths.AllOrderedPairs(params.N)
	}
	t0 := time.Now()
	db, cacheStats, err := paths.LoadOrBuild(s.opts.PathCache, topo.G, cfg, pathSeed, prs, s.opts.Workers)
	if err != nil {
		return TopoResult{}, err
	}
	loadSec := time.Since(t0).Seconds()

	e := &topoEntry{
		key:      key,
		topo:     topo,
		db:       db,
		view:     &routing.View{Provider: db, NumNodes: params.N},
		mechName: mech.Name(),
		estName:  p.Estimator,
		state:    mech.NewState(),
		est:      est,
		rng:      xrand.NewPair(pathSeed, topo.G.Fingerprint()),
		pairs:    db.NumPairs(),
	}
	s.mu.Lock()
	if prev, ok := s.topos[key]; ok {
		// A concurrent load won the race; keep its state.
		s.mu.Unlock()
		return TopoResult{Key: key, AlreadyLoaded: true, Switches: params.N,
			Terminals: topo.NumTerminals(), Pairs: prev.pairs, K: prev.db.K()}, nil
	}
	s.topos[key] = e
	s.mu.Unlock()
	s.logf("jfserve: loaded %s as %s (%d pairs, cache hit %v, %.2fs)",
		params, key, e.pairs, cacheStats.Hit, loadSec)
	return TopoResult{Key: key, Switches: params.N, Terminals: topo.NumTerminals(),
		Pairs: e.pairs, K: p.K, CacheHit: cacheStats.Hit, LoadSeconds: loadSec}, nil
}

func (s *Server) handleTopoEvict(req Request) Response {
	if req.Topo == "" {
		return errResponse(req.ID, CodeBadRequest, "topo-evict needs topo")
	}
	s.mu.Lock()
	_, ok := s.topos[req.Topo]
	delete(s.topos, req.Topo)
	s.mu.Unlock()
	if !ok {
		return errResponse(req.ID, CodeUnknownTopo, fmt.Sprintf("topology %q not loaded", req.Topo))
	}
	s.logf("jfserve: evicted %s", req.Topo)
	return okResponse(req.ID)
}

func (s *Server) handleStats(req Request) Response {
	uptime := time.Since(s.start).Seconds()
	st := StatsResult{
		UptimeSeconds: uptime,
		Requests:      s.requests.Load(),
		RouteLookups:  s.routeLookups.Load(),
		PerOp:         make(map[string]int64, len(s.perOp)),
		Latency:       latencySummaryOf(s.latency.Summarize()),
	}
	if uptime > 0 {
		st.QPS = float64(st.Requests) / uptime
	}
	for op, c := range s.perOp {
		st.PerOp[op] = c.Load()
	}
	s.mu.Lock()
	for _, e := range s.topos {
		st.Topos = append(st.Topos, TopoInfo{
			Key: e.key, Switches: e.topo.N, Pairs: e.pairs, K: e.db.K(),
			Mechanism: e.mechName, Estimator: e.estName,
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Topos, func(i, j int) bool { return st.Topos[i].Key < st.Topos[j].Key })
	resp := okResponse(req.ID)
	resp.Stats = &st
	return resp
}
