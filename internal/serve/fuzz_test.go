package serve_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/serve"
)

// The binary-decoder fuzzers mirror FuzzCacheRead in internal/paths:
// adversarial bytes must never panic, over-allocate ahead of a bounds
// check, or decode into a value that re-encodes differently. The
// committed corpus under testdata/fuzz seeds them with the golden v2
// fixtures plus truncations, oversized length prefixes and version-skew
// bytes (see seedFrames).

// seedFrames returns the corpus starters: every golden fixture frame
// plus hand-built edge cases.
func seedFrames(t interface{ Fatal(...any) }) [][]byte {
	var out [][]byte
	matches, err := filepath.Glob(filepath.Join("testdata", "v2", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	out = append(out,
		[]byte{},                          // empty stream
		[]byte{0, 0, 0, 0},                // zero-length frame
		[]byte{0x01, 0x00, 0x10, 0x00},    // length prefix over MaxFrameBytes
		[]byte{0xff, 0xff, 0xff, 0xff},    // length prefix ~4GiB
		[]byte{5, 0, 0, 0, 1, 2},          // truncated: 5-byte frame, 2 present
		[]byte{1, 0, 0, 0, 99},            // unknown opcode, no id (short payload)
		serve.BinaryPreamble[:],           // preamble bytes as frame data
		[]byte{0x00, 'J', 'F', 'B', 0x03}, // version-skew preamble
	)
	// An estimate response whose float fields are NaN bit patterns (a
	// past crasher: the round-trip check must compare bytes, not floats).
	nanEst := []byte{
		37, 0, 0, 0, // frame length 37
		3, 0, 0, 0, 0, 0, 0, 0, // id 3
		4,          // estimate response kind
		1, 0, 0, 0, // candidates
		2, 0, 0, 0, // min hops
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // avg hops: NaN
		1, 0, 0, 0, // max share
		0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x7f, // throughput: NaN
	}
	out = append(out, nanEst)
	// A frame whose batch count claims more pairs than the payload holds.
	lying := []byte{
		17, 0, 0, 0, // frame length 17
		1, 0, 0, 0, 0, 0, 0, 0, // id 1
		2,    // routes-batch opcode
		0, 0, // empty topo string
		0xff, 0xff, 0xff, 0x7f, // pair count 2^31-1
	}
	out = append(out, lying)
	return out
}

// FuzzBinaryFrame drives the full stream path: frame parsing, request
// decoding and response decoding over arbitrary bytes. Nothing may
// panic; whatever decodes as a request must re-encode and re-decode to
// the same value.
func FuzzBinaryFrame(f *testing.F) {
	for _, s := range seedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			payload, err := serve.ReadFrame(br, &buf)
			if err != nil {
				return
			}
			if len(payload) > serve.MaxFrameBytes {
				t.Fatalf("ReadFrame returned %d bytes past the %d cap", len(payload), serve.MaxFrameBytes)
			}
			checkRequestRoundTrip(t, payload)
			// The response decoder faces the same bytes on the client side.
			if resp, err := serve.DecodeBinaryResponse(payload); err == nil {
				re, err := serve.AppendBinaryResponse(nil, &resp)
				if err != nil {
					return // unencodable decoded value (oversized string); fine
				}
				resp2, err := serve.DecodeBinaryResponse(re)
				if err != nil {
					t.Fatalf("response re-decode failed: %v", err)
				}
				// Byte-level fixed point, not DeepEqual: decoded NaN
				// payloads are legitimate and NaN != NaN.
				re2, err := serve.AppendBinaryResponse(nil, &resp2)
				if err != nil {
					t.Fatalf("response re-encode failed: %v", err)
				}
				if !bytes.Equal(re, re2) {
					t.Fatalf("response round trip drifted:\n first  % x\n second % x", re, re2)
				}
			}
		}
	})
}

// batchSeeds returns FuzzBinaryBatch's corpus starters: routes-batch
// payloads (no frame prefix) plus every golden payload.
func batchSeeds(t interface{ Fatal(...any) }) [][]byte {
	base, err := serve.AppendBinaryRequest(nil, 7, &serve.Request{
		Op: serve.OpRoutesBatch, Topo: "topo-A",
		Pairs: [][2]int32{{0, 1}, {5, 2}, {-3, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := [][]byte{
		base,
		base[:len(base)-3], // truncated mid-pair
		base[:9],           // opcode only, no fields
	}
	for _, s := range seedFrames(t) {
		if len(s) > 4 {
			out = append(out, s[4:]) // golden payloads sans frame prefix
		}
	}
	return out
}

// FuzzBinaryBatch aims the mutator at the routes-batch payload — the
// fast-path op with its own in-place server decoder — via raw payloads
// (no frame prefix).
func FuzzBinaryBatch(f *testing.F) {
	for _, s := range batchSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		checkRequestRoundTrip(t, payload)
	})
}

// TestFuzzCorpusCommitted keeps the on-disk fuzz corpus (the seeds a
// `go test -fuzz` session starts from, committed under testdata/fuzz)
// in lockstep with seedFrames/batchSeeds. Run with -update after adding
// a seed.
func TestFuzzCorpusCommitted(t *testing.T) {
	sync := func(name string, inputs [][]byte) {
		dir := filepath.Join("testdata", "fuzz", name)
		for i, in := range inputs {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(in)) + ")\n"
			if *updateGolden {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus entry (run with -update): %v", err)
			}
			if string(got) != body {
				t.Errorf("%s drifted from its seed definition", path)
			}
		}
	}
	sync("FuzzBinaryFrame", seedFrames(t))
	sync("FuzzBinaryBatch", batchSeeds(t))
}

// checkRequestRoundTrip asserts the decode→encode→decode fixed point
// for any payload the request decoder accepts.
func checkRequestRoundTrip(t *testing.T, payload []byte) {
	t.Helper()
	id, req, err := serve.DecodeBinaryRequest(payload)
	if err != nil {
		return
	}
	re, err := serve.AppendBinaryRequest(nil, id, &req)
	if err != nil {
		// Ops without a binary encoding (unknown opcodes) and oversized
		// strings cannot re-encode; both are legitimate decode results.
		return
	}
	id2, req2, err := serve.DecodeBinaryRequest(re)
	if err != nil {
		t.Fatalf("request re-decode failed: %v (payload % x)", err, payload)
	}
	if id2 != id || !reflect.DeepEqual(req, req2) {
		t.Fatalf("request round trip drifted:\n first  %d %+v\n second %d %+v", id, req, id2, req2)
	}
}
