// Binary protocol v2: the length-prefixed frame codec negotiated
// per-connection alongside the JSON v1 line protocol. The full spec a
// third-party client needs — negotiation, frame layout, every op's
// encoding, a worked hex transcript — is docs/SERVICE.md ("Binary
// protocol v2"); this file is the reference implementation, pinned by
// the golden fixtures under testdata/v2 and fuzzed by FuzzBinaryFrame /
// FuzzBinaryBatch.
//
// Conventions follow the JFPC on-disk path cache (internal/paths):
// little-endian fixed-width integers, length-prefixed strings, every
// count bounds-checked against its remaining bytes before a single
// allocation, floats as IEEE 754 bits. Unlike JFPC there is no
// checksum: frames ride a stream transport whose integrity is the
// kernel's job, exactly as the JSON protocol already assumes.
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// BinaryVersion is the binary protocol generation, carried in the last
// preamble byte. The JSON protocol stays ProtocolVersion 1; the binary
// framing is generation 2 of the wire format.
const BinaryVersion = 2

// BinaryPreamble opens a binary connection: the client sends these five
// bytes immediately after connecting and the server echoes them before
// its first response frame. Byte 0 is NUL — a byte no JSON v1 frame can
// start with — so the server can sniff one byte to pick the codec;
// bytes 1..3 are "JFB"; byte 4 is BinaryVersion.
var BinaryPreamble = [5]byte{0x00, 'J', 'F', 'B', BinaryVersion}

// maxBinaryString bounds one length-prefixed string (topology keys run
// ~90 bytes; error messages a few hundred).
const maxBinaryString = 4096

// Binary opcodes (request payload byte 8). Unknown opcodes answer
// CodeUnknownOp and the connection stays open, mirroring JSON.
const (
	binOpRoute          = 1
	binOpBatch          = 2
	binOpEstimate       = 3
	binOpTopoLoad       = 4
	binOpTopoEvict      = 5
	binOpStats          = 6
	binOpHealth         = 7
	binOpSweep          = 8
	binOpTestSleep      = 9
	binOpTestCrash      = 10
	binOpNameUnknownFmt = "binary-op-%d"
)

// Binary response kinds (response payload byte 8).
const (
	binKindError      = 0
	binKindOK         = 1
	binKindRoute      = 2
	binKindBatch      = 3
	binKindEstimate   = 4
	binKindTopo       = 5
	binKindStats      = 6
	binKindHealth     = 7
	binKindSweepStart = 8
	binKindSweepChunk = 9
	binKindSweepDone  = 10
)

// Topo-result flag bits (binKindTopo).
const (
	binTopoAlreadyLoaded = 1 << 0
	binTopoCacheHit      = 1 << 1
)

var (
	// ErrFrameTooLarge reports a length prefix over MaxFrameBytes (or
	// zero); the peer's framing can no longer be trusted and the
	// connection must close, mirroring the JSON frame-too-large rule.
	ErrFrameTooLarge = errors.New("serve: binary frame length exceeds MaxFrameBytes")
	errZeroFrame     = errors.New("serve: zero-length binary frame")
	errTruncated     = errors.New("serve: truncated binary payload")
	errTrailing      = errors.New("serve: trailing bytes after binary payload")
)

var le = binary.LittleEndian

// AppendFrame appends payload as one length-prefixed binary frame.
func AppendFrame(dst, payload []byte) []byte {
	dst = le.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one length-prefixed frame, reusing *buf when it has
// capacity. It returns ErrFrameTooLarge for a prefix over MaxFrameBytes
// and errZeroFrame for an empty one; both mean the stream is done.
func ReadFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := le.Uint32(hdr[:])
	if n == 0 {
		return nil, errZeroFrame
	}
	if n > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}

// binReader decodes one payload with saturating error state: after the
// first underrun every read returns zero and err is set, so decoders
// read straight through and check once (the JFPC leReader idiom).
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
	r.off = len(r.b)
}

func (r *binReader) need(n int) bool {
	if r.err != nil || len(r.b)-r.off < n {
		r.fail()
		return false
	}
	return true
}

func (r *binReader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := le.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *binReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := le.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := le.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *binReader) i32() int32   { return int32(r.u32()) }
func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *binReader) str() string {
	n := int(r.u16())
	if n > maxBinaryString {
		r.fail()
		return ""
	}
	if !r.need(n) {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// finish asserts the payload was consumed exactly.
func (r *binReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return errTrailing
	}
	return nil
}

// Append-style encoder helpers.
func appendU16(dst []byte, v uint16) []byte { return le.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return le.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return le.AppendUint64(dst, v) }
func appendF64(dst []byte, v float64) []byte {
	return le.AppendUint64(dst, math.Float64bits(v))
}

func appendStr(dst []byte, s string) ([]byte, error) {
	if len(s) > maxBinaryString {
		return dst, fmt.Errorf("serve: string of %d bytes exceeds the %d-byte wire limit", len(s), maxBinaryString)
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// binFormatID renders a binary frame id as the protocol's string id:
// id 0 is reserved for "no id" (pre-parse errors, refused connections)
// and maps to the empty string.
func binFormatID(id uint64) string {
	if id == 0 {
		return ""
	}
	return strconv.FormatUint(id, 10)
}

// binParseID maps a string id back onto the binary frame id; non-numeric
// ids (a JSON-side convention) collapse to 0.
func binParseID(id string) uint64 {
	if id == "" {
		return 0
	}
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// binOpName maps an opcode to the protocol's op string; unknown opcodes
// get a synthetic name so dispatch answers unknown-op, keeping version
// skew non-fatal exactly like an unknown JSON op string.
func binOpName(op byte) string {
	switch op {
	case binOpRoute:
		return OpRoute
	case binOpBatch:
		return OpRoutesBatch
	case binOpEstimate:
		return OpEstimate
	case binOpTopoLoad:
		return OpTopoLoad
	case binOpTopoEvict:
		return OpTopoEvict
	case binOpStats:
		return OpStats
	case binOpHealth:
		return OpHealth
	case binOpSweep:
		return OpSweep
	case binOpTestSleep:
		return OpTestSleep
	case binOpTestCrash:
		return OpTestCrash
	}
	return fmt.Sprintf(binOpNameUnknownFmt, op)
}

// binOpCode is the inverse of binOpName for the ops a client can send.
func binOpCode(op string) (byte, bool) {
	switch op {
	case OpRoute:
		return binOpRoute, true
	case OpRoutesBatch:
		return binOpBatch, true
	case OpEstimate:
		return binOpEstimate, true
	case OpTopoLoad:
		return binOpTopoLoad, true
	case OpTopoEvict:
		return binOpTopoEvict, true
	case OpStats:
		return binOpStats, true
	case OpHealth:
		return binOpHealth, true
	case OpSweep:
		return binOpSweep, true
	case OpTestSleep:
		return binOpTestSleep, true
	case OpTestCrash:
		return binOpTestCrash, true
	}
	return 0, false
}

// AppendBinaryRequest encodes one request as a v2 payload (no length
// prefix — AppendFrame adds it). The id is the binary protocol's
// numeric request tag; 0 means "no id". Request.ID is ignored.
func AppendBinaryRequest(dst []byte, id uint64, req *Request) ([]byte, error) {
	op, ok := binOpCode(req.Op)
	if !ok {
		return dst, fmt.Errorf("serve: op %q has no binary encoding", req.Op)
	}
	dst = appendU64(dst, id)
	dst = append(dst, op)
	var err error
	switch op {
	case binOpRoute, binOpEstimate:
		if req.Src == nil || req.Dst == nil {
			return dst, fmt.Errorf("serve: %s needs src and dst", req.Op)
		}
		if dst, err = appendStr(dst, req.Topo); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(*req.Src))
		dst = appendU32(dst, uint32(*req.Dst))
	case binOpBatch:
		if dst, err = appendStr(dst, req.Topo); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(len(req.Pairs)))
		for _, p := range req.Pairs {
			dst = appendU32(dst, uint32(p[0]))
			dst = appendU32(dst, uint32(p[1]))
		}
	case binOpTopoLoad:
		p := req.Params
		if p == nil {
			p = &TopoParams{}
		}
		if dst, err = appendStr(dst, p.Topo); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(p.N))
		dst = appendU32(dst, uint32(p.X))
		dst = appendU32(dst, uint32(p.Y))
		if dst, err = appendStr(dst, p.Selector); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(p.K))
		dst = appendU64(dst, p.Seed)
		dst = appendU32(dst, uint32(p.TopoSample))
		if dst, err = appendStr(dst, p.Mechanism); err != nil {
			return dst, err
		}
		if dst, err = appendStr(dst, p.Estimator); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(p.PairSample))
	case binOpTopoEvict:
		if dst, err = appendStr(dst, req.Topo); err != nil {
			return dst, err
		}
	case binOpStats, binOpHealth, binOpTestCrash:
		// No fields.
	case binOpSweep:
		sp := req.Sweep
		if sp == nil {
			sp = &SweepParams{}
		}
		if dst, err = appendStr(dst, req.Topo); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(sp.Count))
		dst = appendU64(dst, sp.Seed)
		dst = appendU32(dst, uint32(sp.Chunk))
		dst = appendU32(dst, uint32(len(sp.Pairs)))
		for _, p := range sp.Pairs {
			dst = appendU32(dst, uint32(p[0]))
			dst = appendU32(dst, uint32(p[1]))
		}
	case binOpTestSleep:
		dst = appendU32(dst, uint32(req.SleepMS))
	}
	return dst, nil
}

// DecodeBinaryRequest decodes a v2 request payload into the shared
// Request shape (the op as its protocol string, the binary id rendered
// through binFormatID), so both codecs dispatch through identical
// handlers. The id is returned even when decoding fails mid-payload, so
// the error frame can still echo it.
func DecodeBinaryRequest(payload []byte) (id uint64, req Request, err error) {
	r := &binReader{b: payload}
	id = r.u64()
	op := r.u8()
	if r.err != nil {
		return id, req, r.err
	}
	req.V = ProtocolVersion
	req.ID = binFormatID(id)
	req.Op = binOpName(op)
	switch op {
	case binOpRoute, binOpEstimate:
		req.Topo = r.str()
		src, dst := r.i32(), r.i32()
		req.Src, req.Dst = &src, &dst
	case binOpBatch:
		req.Topo = r.str()
		n := int(r.u32())
		// Bounds: the count must fit the remaining bytes (8 per pair)
		// before a single allocation. The protocol-level batch cap is
		// the handler's call — an oversized-but-well-framed batch must
		// answer batch-too-large exactly like its JSON twin.
		if !r.need(8 * n) {
			return id, req, r.err
		}
		req.Pairs = make([][2]int32, n)
		for i := range req.Pairs {
			req.Pairs[i] = [2]int32{r.i32(), r.i32()}
		}
	case binOpTopoLoad:
		p := &TopoParams{}
		p.Topo = r.str()
		p.N = int(r.i32())
		p.X = int(r.i32())
		p.Y = int(r.i32())
		p.Selector = r.str()
		p.K = int(r.i32())
		p.Seed = r.u64()
		p.TopoSample = int(r.i32())
		p.Mechanism = r.str()
		p.Estimator = r.str()
		p.PairSample = int(r.i32())
		req.Params = p
	case binOpTopoEvict:
		req.Topo = r.str()
	case binOpStats, binOpHealth, binOpTestCrash:
	case binOpTestSleep:
		req.SleepMS = int(r.u32())
	case binOpSweep:
		sp := &SweepParams{}
		req.Topo = r.str()
		sp.Count = int(r.i32())
		sp.Seed = r.u64()
		sp.Chunk = int(r.i32())
		n := int(r.u32())
		if !r.need(8 * n) {
			return id, req, r.err
		}
		if n > 0 {
			sp.Pairs = make([][2]int32, n)
			for i := range sp.Pairs {
				sp.Pairs[i] = [2]int32{r.i32(), r.i32()}
			}
		}
		req.Sweep = sp
	default:
		// Unknown opcode: no fields are decoded; dispatch answers
		// unknown-op. Trailing bytes are tolerated here (a newer
		// client's fields), matching JSON's unknown-field tolerance.
		return id, req, nil
	}
	return id, req, r.finish()
}

// appendRouteResult encodes one route: path length, nodes, then the
// chosen candidate index (two's complement; -1 = outside the stored
// set). Hops is not carried — it is len(path)-1 by definition.
func appendRouteResult(dst []byte, r *RouteResult) []byte {
	dst = appendU16(dst, uint16(len(r.Path)))
	for _, n := range r.Path {
		dst = appendU32(dst, uint32(n))
	}
	return appendU32(dst, uint32(int32(r.Index)))
}

func (r *binReader) routeResult() *RouteResult {
	n := int(r.u16())
	if !r.need(4 * n) {
		return nil
	}
	rr := &RouteResult{Path: make([]int32, n)}
	for i := range rr.Path {
		rr.Path[i] = r.i32()
	}
	rr.Index = int(r.i32())
	rr.Hops = len(rr.Path) - 1
	return rr
}

// appendBatchEntries encodes a batch/sweep-chunk entry list: per entry
// one tag byte (0 = error code string, 1 = route).
func appendBatchEntries(dst []byte, entries []BatchEntry) ([]byte, error) {
	var err error
	dst = appendU32(dst, uint32(len(entries)))
	for i := range entries {
		if e := &entries[i]; e.Route != nil {
			dst = append(dst, 1)
			dst = appendRouteResult(dst, e.Route)
		} else {
			dst = append(dst, 0)
			if dst, err = appendStr(dst, e.Err); err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

func (r *binReader) batchEntries() []BatchEntry {
	n := int(r.u32())
	// Each entry is at least 3 bytes (tag + empty code string), so the
	// count is bounded by the remaining payload before any allocation.
	if !r.need(3 * n) {
		return nil
	}
	entries := make([]BatchEntry, n)
	for i := range entries {
		switch r.u8() {
		case 1:
			entries[i].Route = r.routeResult()
		case 0:
			entries[i].Err = r.str()
		default:
			r.fail()
			return nil
		}
		if r.err != nil {
			return nil
		}
	}
	return entries
}

// AppendBinaryResponse encodes one response as a v2 payload. The kind
// byte is derived from which payload field is set; a bare ok response
// (topo-evict, test-sleep) is binKindOK.
func AppendBinaryResponse(dst []byte, resp *Response) ([]byte, error) {
	dst = appendU64(dst, binParseID(resp.ID))
	var err error
	switch {
	case resp.Error != nil:
		dst = append(dst, binKindError)
		if dst, err = appendStr(dst, resp.Error.Code); err != nil {
			return dst, err
		}
		msg := resp.Error.Message
		if len(msg) > maxBinaryString {
			msg = msg[:maxBinaryString]
		}
		return appendStr(dst, msg)
	case resp.Route != nil:
		dst = append(dst, binKindRoute)
		return appendRouteResult(dst, resp.Route), nil
	case resp.Batch != nil:
		dst = append(dst, binKindBatch)
		dst = appendU32(dst, uint32(resp.Batch.Routed))
		return appendBatchEntries(dst, resp.Batch.Entries)
	case resp.Estimate != nil:
		e := resp.Estimate
		dst = append(dst, binKindEstimate)
		dst = appendU32(dst, uint32(e.Candidates))
		dst = appendU32(dst, uint32(e.MinHops))
		dst = appendF64(dst, e.AvgHops)
		dst = appendU32(dst, uint32(e.MaxShare))
		return appendF64(dst, e.Throughput), nil
	case resp.Topo != nil:
		t := resp.Topo
		dst = append(dst, binKindTopo)
		if dst, err = appendStr(dst, t.Key); err != nil {
			return dst, err
		}
		var flags byte
		if t.AlreadyLoaded {
			flags |= binTopoAlreadyLoaded
		}
		if t.CacheHit {
			flags |= binTopoCacheHit
		}
		dst = append(dst, flags)
		dst = appendU32(dst, uint32(t.Switches))
		dst = appendU32(dst, uint32(t.Terminals))
		dst = appendU32(dst, uint32(t.Pairs))
		dst = appendU32(dst, uint32(t.K))
		return appendF64(dst, t.LoadSeconds), nil
	case resp.Stats != nil:
		return appendStats(dst, resp.Stats)
	case resp.Health != nil:
		h := resp.Health
		dst = append(dst, binKindHealth)
		var ready byte
		if h.Ready {
			ready = 1
		}
		dst = append(dst, ready)
		dst = appendF64(dst, h.UptimeSeconds)
		dst = appendU32(dst, uint32(h.Topos))
		dst = appendU32(dst, uint32(h.Conns))
		dst = appendU32(dst, uint32(h.MaxConns))
		dst = appendU32(dst, uint32(h.InFlight))
		dst = appendU32(dst, uint32(h.MaxInFlight))
		dst = appendU64(dst, uint64(h.Shed))
		dst = appendU64(dst, uint64(h.ConnShed))
		dst = appendU64(dst, uint64(h.Panics))
		dst = appendU64(dst, uint64(h.HandlerTimeouts))
		dst = appendU64(dst, uint64(h.IOTimeouts))
		dst = appendU32(dst, uint32(h.SweepsActive))
		return appendU32(dst, uint32(h.MaxSweeps)), nil
	case resp.Sweep != nil:
		s := resp.Sweep
		dst = append(dst, binKindSweepStart)
		dst = appendU32(dst, uint32(s.TotalPairs))
		dst = appendU32(dst, uint32(s.ChunkSize))
		return appendU32(dst, uint32(s.Chunks)), nil
	case resp.SweepChunk != nil:
		c := resp.SweepChunk
		dst = append(dst, binKindSweepChunk)
		dst = appendU32(dst, uint32(c.Seq))
		dst = appendU32(dst, uint32(c.Routed))
		return appendBatchEntries(dst, c.Entries)
	case resp.SweepDone != nil:
		d := resp.SweepDone
		dst = append(dst, binKindSweepDone)
		dst = appendU32(dst, uint32(d.Chunks))
		dst = appendU64(dst, uint64(d.Routed))
		return appendU64(dst, uint64(d.Failed)), nil
	}
	return append(dst, binKindOK), nil
}

func appendStats(dst []byte, st *StatsResult) ([]byte, error) {
	var err error
	dst = append(dst, binKindStats)
	dst = appendF64(dst, st.UptimeSeconds)
	dst = appendU64(dst, uint64(st.Requests))
	dst = appendU64(dst, uint64(st.RouteLookups))
	dst = appendF64(dst, st.QPS)
	dst = appendU64(dst, uint64(st.Latency.Count))
	dst = appendF64(dst, st.Latency.MeanMicros)
	dst = appendF64(dst, st.Latency.P50Micros)
	dst = appendF64(dst, st.Latency.P90Micros)
	dst = appendF64(dst, st.Latency.P99Micros)
	ops := make([]string, 0, len(st.PerOp))
	for op := range st.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	dst = appendU16(dst, uint16(len(ops)))
	for _, op := range ops {
		if dst, err = appendStr(dst, op); err != nil {
			return dst, err
		}
		dst = appendU64(dst, uint64(st.PerOp[op]))
	}
	dst = appendU16(dst, uint16(len(st.Topos)))
	for _, ti := range st.Topos {
		if dst, err = appendStr(dst, ti.Key); err != nil {
			return dst, err
		}
		dst = appendU32(dst, uint32(ti.Switches))
		dst = appendU32(dst, uint32(ti.Pairs))
		dst = appendU32(dst, uint32(ti.K))
		if dst, err = appendStr(dst, ti.Mechanism); err != nil {
			return dst, err
		}
		if dst, err = appendStr(dst, ti.Estimator); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeBinaryResponse decodes a v2 response payload into the shared
// Response shape (the binary id rendered through binFormatID), the
// exact inverse of AppendBinaryResponse.
func DecodeBinaryResponse(payload []byte) (Response, error) {
	r := &binReader{b: payload}
	resp := Response{V: ProtocolVersion}
	resp.ID = binFormatID(r.u64())
	kind := r.u8()
	if r.err != nil {
		return resp, r.err
	}
	resp.OK = kind != binKindError
	switch kind {
	case binKindError:
		resp.Error = &ErrorInfo{Code: r.str(), Message: r.str()}
	case binKindOK:
	case binKindRoute:
		resp.Route = r.routeResult()
	case binKindBatch:
		b := &BatchResult{Routed: int(r.i32())}
		b.Entries = r.batchEntries()
		resp.Batch = b
	case binKindEstimate:
		e := &EstimateResult{}
		e.Candidates = int(r.i32())
		e.MinHops = int(r.i32())
		e.AvgHops = r.f64()
		e.MaxShare = int(r.i32())
		e.Throughput = r.f64()
		resp.Estimate = e
	case binKindTopo:
		t := &TopoResult{Key: r.str()}
		flags := r.u8()
		t.AlreadyLoaded = flags&binTopoAlreadyLoaded != 0
		t.CacheHit = flags&binTopoCacheHit != 0
		t.Switches = int(r.i32())
		t.Terminals = int(r.i32())
		t.Pairs = int(r.i32())
		t.K = int(r.i32())
		t.LoadSeconds = r.f64()
		resp.Topo = t
	case binKindStats:
		resp.Stats = r.stats()
	case binKindHealth:
		h := &HealthResult{Ready: r.u8() == 1}
		h.UptimeSeconds = r.f64()
		h.Topos = int(r.i32())
		h.Conns = int(r.i32())
		h.MaxConns = int(r.i32())
		h.InFlight = int(r.i32())
		h.MaxInFlight = int(r.i32())
		h.Shed = int64(r.u64())
		h.ConnShed = int64(r.u64())
		h.Panics = int64(r.u64())
		h.HandlerTimeouts = int64(r.u64())
		h.IOTimeouts = int64(r.u64())
		h.SweepsActive = int(r.i32())
		h.MaxSweeps = int(r.i32())
		resp.Health = h
	case binKindSweepStart:
		s := &SweepStart{}
		s.TotalPairs = int(r.i32())
		s.ChunkSize = int(r.i32())
		s.Chunks = int(r.i32())
		resp.Sweep = s
	case binKindSweepChunk:
		c := &SweepChunk{}
		c.Seq = int(r.i32())
		c.Routed = int(r.i32())
		c.Entries = r.batchEntries()
		resp.SweepChunk = c
	case binKindSweepDone:
		d := &SweepDone{}
		d.Chunks = int(r.i32())
		d.Routed = int64(r.u64())
		d.Failed = int64(r.u64())
		resp.SweepDone = d
	default:
		return resp, fmt.Errorf("serve: unknown binary response kind %d", kind)
	}
	return resp, r.finish()
}

func (r *binReader) stats() *StatsResult {
	st := &StatsResult{}
	st.UptimeSeconds = r.f64()
	st.Requests = int64(r.u64())
	st.RouteLookups = int64(r.u64())
	st.QPS = r.f64()
	st.Latency.Count = int64(r.u64())
	st.Latency.MeanMicros = r.f64()
	st.Latency.P50Micros = r.f64()
	st.Latency.P90Micros = r.f64()
	st.Latency.P99Micros = r.f64()
	nops := int(r.u16())
	if !r.need(10 * nops) {
		return st
	}
	st.PerOp = make(map[string]int64, nops)
	for i := 0; i < nops; i++ {
		op := r.str()
		st.PerOp[op] = int64(r.u64())
		if r.err != nil {
			return st
		}
	}
	ntopos := int(r.u16())
	if !r.need(18 * ntopos) {
		return st
	}
	st.Topos = make([]TopoInfo, ntopos)
	for i := range st.Topos {
		ti := &st.Topos[i]
		ti.Key = r.str()
		ti.Switches = int(r.i32())
		ti.Pairs = int(r.i32())
		ti.K = int(r.i32())
		ti.Mechanism = r.str()
		ti.Estimator = r.str()
		if r.err != nil {
			return st
		}
	}
	return st
}
