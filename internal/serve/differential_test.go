package serve_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// The differential suite pins the tentpole invariant: the binary v2
// codec and the JSON v1 codec are two encodings of ONE protocol. Every
// op issued through both against identically configured servers must
// produce equal results — same payloads, same error codes, same
// adaptive routing choices — after normalizing the fields that measure
// wall time.

// normalizeResponse zeroes the timing fields two otherwise identical
// runs legitimately disagree on.
func normalizeResponse(r *serve.Response) {
	if r.Topo != nil {
		r.Topo.LoadSeconds = 0
		// The shared-server cache can hand one run a warm path DB and
		// the other a cold one.
		r.Topo.CacheHit = false
	}
	if r.Stats != nil {
		r.Stats.UptimeSeconds = 0
		r.Stats.QPS = 0
		r.Stats.Latency = serve.LatencySummary{Count: r.Stats.Latency.Count}
	}
	if r.Health != nil {
		r.Health.UptimeSeconds = 0
	}
}

// diffStep is one scripted request; its name keys failure messages.
type diffStep struct {
	name string
	req  serve.Request
}

// runScript drives every step over one client and returns the
// normalized responses (RemoteErrors are part of the record: the
// response carrying the error frame is captured, not the Go error).
func runScript(t *testing.T, c *client.Client, script []diffStep) []serve.Response {
	t.Helper()
	out := make([]serve.Response, 0, len(script))
	for _, st := range script {
		resp, err := c.Do(bg, st.req)
		var re *client.RemoteError
		if err != nil && !errors.As(err, &re) {
			t.Fatalf("step %s: transport error %v", st.name, err)
		}
		resp.ID = "" // ids are per-connection counters, not semantics
		normalizeResponse(&resp)
		out = append(out, resp)
	}
	return out
}

// TestDifferentialOps runs the full op surface — including the
// bad-request, batch-too-large, unknown-topo, bad-pair and pair-not-found
// error paths — through a JSON client and a binary client against two
// identically seeded servers, and requires equal normalized responses
// step by step.
func TestDifferentialOps(t *testing.T) {
	_, sockJSON := startServer(t, serve.Options{})
	_, sockBin := startServer(t, serve.Options{})

	topoParams := serve.TopoParams{Topo: "small", K: 4, Seed: 3}
	oversized := make([][2]int32, serve.MaxBatchPairs+1)
	for i := range oversized {
		oversized[i] = [2]int32{0, 1}
	}
	src0, dst1 := int32(0), int32(1)
	srcSelf := int32(2)
	srcNeg := int32(-1)

	script := []diffStep{
		{"topo-load", serve.Request{Op: serve.OpTopoLoad, Params: &topoParams}},
		{"topo-load-again", serve.Request{Op: serve.OpTopoLoad, Params: &topoParams}},
		{"health", serve.Request{Op: serve.OpHealth}},
		{"batch-empty", serve.Request{Op: serve.OpRoutesBatch, Topo: "pending", Pairs: nil}},
		{"batch-too-large", serve.Request{Op: serve.OpRoutesBatch, Topo: "pending", Pairs: oversized}},
		{"route-unknown-topo", serve.Request{Op: serve.OpRoute, Topo: "no-such-key", Src: &src0, Dst: &dst1}},
		{"bad-topo-params", serve.Request{Op: serve.OpTopoLoad, Params: &serve.TopoParams{Topo: "galactic"}}},
		{"evict-unknown", serve.Request{Op: serve.OpTopoEvict, Topo: "no-such-key"}},
	}

	cj, err := client.Dial(bg, "unix", sockJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer cj.Close()
	cb, err := client.DialBinary(bg, "unix", sockBin)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	jsonResps := runScript(t, cj, script)
	binResps := runScript(t, cb, script)
	key := ""
	if jsonResps[0].Topo != nil {
		key = jsonResps[0].Topo.Key
	}
	if key == "" {
		t.Fatal("topo-load returned no key")
	}
	compareResponses(t, script, jsonResps, binResps)

	// Part two needs the topology key from part one; these steps hit
	// every data-carrying op plus the per-pair error paths.
	script2 := []diffStep{
		{"route", serve.Request{Op: serve.OpRoute, Topo: key, Src: &src0, Dst: &dst1}},
		{"route-self", serve.Request{Op: serve.OpRoute, Topo: key, Src: &srcSelf, Dst: &srcSelf}},
		{"route-negative", serve.Request{Op: serve.OpRoute, Topo: key, Src: &srcNeg, Dst: &dst1}},
		{"batch", serve.Request{Op: serve.OpRoutesBatch, Topo: key, Pairs: [][2]int32{{0, 1}, {2, 2}, {3, 8}, {5, 4}}}},
		{"estimate", serve.Request{Op: serve.OpEstimate, Topo: key, Src: &src0, Dst: &dst1}},
		{"estimate-self", serve.Request{Op: serve.OpEstimate, Topo: key, Src: &srcSelf, Dst: &srcSelf}},
		{"stats", serve.Request{Op: serve.OpStats}},
		{"evict", serve.Request{Op: serve.OpTopoEvict, Topo: key}},
		{"evict-again", serve.Request{Op: serve.OpTopoEvict, Topo: key}},
	}
	jsonResps2 := runScript(t, cj, script2)
	binResps2 := runScript(t, cb, script2)
	compareResponses(t, script2, jsonResps2, binResps2)

	// Sanity: the probe pair genuinely routed in both runs (a script
	// where everything errors out would pass comparison vacuously).
	if jsonResps2[0].Route == nil || len(jsonResps2[0].Route.Path) < 2 {
		t.Fatalf("differential route step returned no path: %+v", jsonResps2[0])
	}

	// Part three: a sampled topology, for the pair-not-found path. Both
	// servers sample with the same seed, so whichever pairs are absent
	// are absent on both; the probes must answer identically either way.
	sampled := serve.TopoParams{Topo: "small", K: 4, Seed: 11, PairSample: 5}
	script3 := []diffStep{{"topo-load-sampled", serve.Request{Op: serve.OpTopoLoad, Params: &sampled}}}
	for s := int32(0); s < 4; s++ {
		for d := int32(4); d < 7; d++ {
			src, dst := s, d
			script3 = append(script3, diffStep{
				fmt.Sprintf("sampled-route-%d-%d", s, d),
				serve.Request{Op: serve.OpRoute, Topo: "SAMPLED", Src: &src, Dst: &dst},
			})
		}
	}
	jsonResps3 := runScript(t, cj, fillTopo(script3, jsonResps2, sampledKey(t, cj, sampled)))
	binResps3 := runScript(t, cb, fillTopo(script3, binResps2, sampledKey(t, cb, sampled)))
	compareResponses(t, script3, jsonResps3, binResps3)
	notFound := 0
	for _, r := range jsonResps3[1:] {
		if r.Error != nil && r.Error.Code == serve.CodePairNotFound {
			notFound++
		}
	}
	if notFound == 0 {
		t.Fatal("a 5-pair sample left none of the 12 probes absent; pair-not-found path untested")
	}
}

// sampledKey resolves the sampled topology's key on one server.
func sampledKey(t *testing.T, c *client.Client, p serve.TopoParams) string {
	t.Helper()
	res, err := c.TopoLoad(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	return res.Key
}

// fillTopo substitutes the placeholder topo key into a script copy.
func fillTopo(script []diffStep, _ []serve.Response, key string) []diffStep {
	out := make([]diffStep, len(script))
	for i, st := range script {
		out[i] = st
		if st.req.Topo == "SAMPLED" {
			req := st.req
			req.Topo = key
			out[i].req = req
		}
	}
	return out
}

func compareResponses(t *testing.T, script []diffStep, jsonResps, binResps []serve.Response) {
	t.Helper()
	for i := range script {
		j, b := jsonResps[i], binResps[i]
		if !reflect.DeepEqual(j, b) {
			jb, _ := json.Marshal(j)
			bb, _ := json.Marshal(b)
			t.Errorf("step %s diverged:\n json   %s\n binary %s", script[i].name, jb, bb)
		}
	}
}

// TestDifferentialSweep streams the same seeded sweep over both codecs
// against twin servers: the ack, every chunk (seq, routed, entries) and
// the final totals must be identical.
func TestDifferentialSweep(t *testing.T) {
	_, sockJSON := startServer(t, serve.Options{})
	_, sockBin := startServer(t, serve.Options{})

	run := func(sock string, bin bool) (serve.SweepStart, []serve.SweepChunk, serve.SweepDone, string) {
		dialf := client.Dial
		if bin {
			dialf = client.DialBinary
		}
		c, err := dialf(bg, "unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		topo, err := c.TopoLoad(bg, serve.TopoParams{Topo: "small", K: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var chunks []serve.SweepChunk
		start, done, err := c.Sweep(bg, topo.Key, serve.SweepParams{Count: 700, Seed: 99, Chunk: 256},
			func(ch serve.SweepChunk) error {
				chunks = append(chunks, ch)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return start, chunks, done, topo.Key
	}

	jStart, jChunks, jDone, jKey := run(sockJSON, false)
	bStart, bChunks, bDone, bKey := run(sockBin, true)
	if jKey != bKey {
		t.Fatalf("twin servers derived different topo keys: %q vs %q", jKey, bKey)
	}
	if jStart != bStart {
		t.Fatalf("sweep acks diverged: json %+v, binary %+v", jStart, bStart)
	}
	if jDone != bDone {
		t.Fatalf("sweep totals diverged: json %+v, binary %+v", jDone, bDone)
	}
	if !reflect.DeepEqual(jChunks, bChunks) {
		t.Fatalf("sweep chunk streams diverged (%d vs %d chunks)", len(jChunks), len(bChunks))
	}
	if jStart.TotalPairs != 700 || jDone.Routed+jDone.Failed != 700 {
		t.Fatalf("sweep accounting wrong: %+v %+v", jStart, jDone)
	}
}

// TestDifferentialOverloaded provokes the overloaded code on both
// codecs: a slow request holds the single in-flight slot while a probe
// arrives on a second connection of the codec under test.
func TestDifferentialOverloaded(t *testing.T) {
	for _, bin := range []bool{false, true} {
		t.Run(map[bool]string{false: "json", true: "binary"}[bin], func(t *testing.T) {
			srv, sock := startServer(t, serve.Options{MaxInFlight: 1, EnableTestOps: true})
			dialf := client.Dial
			if bin {
				dialf = client.DialBinary
			}
			slow, err := dialf(bg, "unix", sock)
			if err != nil {
				t.Fatal(err)
			}
			defer slow.Close()
			slowDone := make(chan error, 1)
			go func() {
				_, err := slow.Do(bg, serve.Request{Op: serve.OpTestSleep, SleepMS: 400})
				slowDone <- err
			}()
			waitFor(t, func() bool { return srv.InFlight() == 1 })

			probe, err := dialf(bg, "unix", sock)
			if err != nil {
				t.Fatal(err)
			}
			defer probe.Close()
			_, err = probe.Do(bg, serve.Request{Op: serve.OpStats})
			wantCode(t, err, serve.CodeOverloaded)
			if err := <-slowDone; err != nil {
				t.Fatalf("slow request failed: %v", err)
			}
		})
	}
}

// TestDifferentialTimeout provokes the timeout code on both codecs via
// a handler deadline the test-sleep op overruns.
func TestDifferentialTimeout(t *testing.T) {
	for _, bin := range []bool{false, true} {
		t.Run(map[bool]string{false: "json", true: "binary"}[bin], func(t *testing.T) {
			_, sock := startServer(t, serve.Options{
				HandlerTimeout: 40 * time.Millisecond, EnableTestOps: true,
			})
			dialf := client.Dial
			if bin {
				dialf = client.DialBinary
			}
			c, err := dialf(bg, "unix", sock)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Do(bg, serve.Request{Op: serve.OpTestSleep, SleepMS: 300})
			wantCode(t, err, serve.CodeTimeout)
		})
	}
}

// TestDifferentialInternalError provokes internal-error (and the
// connection poisoning that follows it) on both codecs via test-crash.
func TestDifferentialInternalError(t *testing.T) {
	for _, bin := range []bool{false, true} {
		t.Run(map[bool]string{false: "json", true: "binary"}[bin], func(t *testing.T) {
			srv, sock := startServer(t, serve.Options{EnableTestOps: true})
			dialf := client.Dial
			if bin {
				dialf = client.DialBinary
			}
			c, err := dialf(bg, "unix", sock)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Do(bg, serve.Request{Op: serve.OpTestCrash})
			wantCode(t, err, serve.CodeInternal)
			if got := srv.Counters().Panics; got != 1 {
				t.Fatalf("panic counter = %d, want 1", got)
			}
			// The poisoned connection redials transparently.
			if _, err := c.Health(bg); err != nil {
				t.Fatalf("health after redial: %v", err)
			}
		})
	}
}

// TestDifferentialBadRequestMessage pins not just the code but the
// message for a shared validation failure: both codecs must route
// through the same handler and produce the same bad-request text.
func TestDifferentialBadRequestMessage(t *testing.T) {
	get := func(bin bool) *client.RemoteError {
		dialf := client.Dial
		if bin {
			dialf = client.DialBinary
		}
		c, err := dialf(bg, "unix", testSock)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.RoutesBatch(bg, testKey, nil)
		var re *client.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("got %v, want RemoteError", err)
		}
		return re
	}
	j, b := get(false), get(true)
	if j.Code != serve.CodeBadRequest || *j != *b {
		t.Fatalf("bad-request divergence: json %+v, binary %+v", j, b)
	}
}
