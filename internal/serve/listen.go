package serve

import (
	"fmt"
	"strings"
)

// SplitListenSpec parses a -listen spec into a (network, address) pair
// for net.Listen / net.Dial: "unix:/tmp/jfserve.sock" selects a Unix
// socket, "tcp:127.0.0.1:9009" a TCP listener.
func SplitListenSpec(spec string) (network, addr string, err error) {
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || addr == "" || (network != "unix" && network != "tcp") {
		return "", "", fmt.Errorf("serve: bad listen spec %q (want unix:<path> or tcp:<host:port>)", spec)
	}
	return network, addr, nil
}
