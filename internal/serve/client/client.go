// Package client is the in-repo Go client for the jfserve wire protocol
// (docs/SERVICE.md): newline-delimited JSON requests (Dial) or
// length-prefixed binary v2 frames (DialBinary) over a Unix socket or
// TCP connection, one response per request, in order — plus streaming
// sweeps, whose chunk frames arrive between a Sweep call's ack and its
// final totals. It exists for the protocol tests, the serve smoke gate,
// the chaos harness and exp.ServeBench; a third-party client should be
// written from docs/SERVICE.md alone.
//
// Every call takes a context.Context: a deadline bounds the dial and
// each request's network I/O, and cancellation interrupts a call that
// is blocked mid-read. An optional RetryPolicy adds capped exponential
// backoff with full jitter for idempotent operations, honoring the
// server's overloaded code as a backpressure signal (docs/SERVICE.md
// "Retrying").
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/xrand"
)

// RemoteError is a protocol-level failure: the server answered with
// ok=false and this code/message. Transport failures surface as plain
// errors instead.
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("jfserve: %s: %s", e.Code, e.Message)
}

// RetryPolicy configures automatic retries of idempotent operations.
// The zero value is not usable; fill at least MaxAttempts or use
// DefaultRetry. Backoff before attempt n (n >= 2) is a uniformly random
// ("full jitter") duration in [0, min(MaxDelay, BaseDelay·2^(n-2))] —
// the AWS-style policy that decorrelates clients a shedding server just
// turned away.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (values < 1 behave as 1 — no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep (default 1s).
	MaxDelay time.Duration
	// Seed makes the jitter stream deterministic for tests; 0 picks 1.
	Seed uint64
}

// DefaultRetry is a reasonable interactive policy: 4 attempts, 5ms
// base, 1s cap.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: time.Second}

// Client is a synchronous jfserve client. Methods may be called from
// multiple goroutines; requests are serialized on the one connection
// (for throughput, open several clients and batch — see exp.ServeBench).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	sc     *bufio.Scanner
	w      *bufio.Writer
	enc    *json.Encoder
	nextID uint64
	closed bool

	// bin selects the binary v2 codec (DialBinary); wbuf and rbuf are
	// its reused frame buffers.
	bin  bool
	wbuf []byte
	rbuf []byte

	// Redial target; empty for New-wrapped connections, which cannot
	// reconnect and therefore never retry transport errors.
	network, addr string

	retry RetryPolicy
	rng   *xrand.RNG
}

// Dial connects to a jfserve listener ("unix", "/tmp/jfserve.sock" or
// "tcp", "host:port"). The context bounds the dial; it does not govern
// later calls (each call takes its own).
func Dial(ctx context.Context, network, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	c := New(conn)
	c.network, c.addr = network, addr
	return c, nil
}

// DialRetry is Dial plus a retry policy: idempotent calls that fail
// with overloaded, timeout or a transport error are retried with capped
// exponential backoff and full jitter, redialing as needed.
func DialRetry(ctx context.Context, network, addr string, p RetryPolicy) (*Client, error) {
	c, err := Dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	c.SetRetry(p)
	return c, nil
}

// DialBinary connects like Dial but negotiates the binary v2 protocol:
// the five-byte preamble is sent and its echo verified before the call
// returns. Every later request rides binary frames; the API is
// otherwise identical to a JSON client's. If the server refuses the
// connection at its connection limit, the refusal arrives as one JSON
// overloaded frame in place of the echo and surfaces as that
// *RemoteError.
func DialBinary(ctx context.Context, network, addr string) (*Client, error) {
	c, err := Dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	c.bin = true
	c.mu.Lock()
	err = c.handshakeLocked(ctx)
	c.mu.Unlock()
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// DialBinaryRetry is DialBinary plus a retry policy (see DialRetry).
func DialBinaryRetry(ctx context.Context, network, addr string, p RetryPolicy) (*Client, error) {
	c, err := DialBinary(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	c.SetRetry(p)
	return c, nil
}

// New wraps an established connection. A wrapped client cannot redial,
// so a retry policy set on it only retries overloaded responses (the
// connection is still good); transport failures are terminal.
func New(conn net.Conn) *Client {
	c := &Client{conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	c.br = bufio.NewReaderSize(conn, 64<<10)
	c.sc = bufio.NewScanner(c.br)
	c.sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	c.enc = json.NewEncoder(c.w)
	return c
}

// handshakeLocked negotiates the binary protocol on a fresh connection:
// send the preamble, require its echo. A JSON byte in place of the echo
// is the server's connection-limit refusal frame (the only thing a
// server ever says before reading the preamble) and is surfaced as its
// RemoteError.
func (c *Client) handshakeLocked(ctx context.Context) error {
	disarm := c.armCtxLocked(ctx)
	defer disarm()
	if _, err := c.w.Write(serve.BinaryPreamble[:]); err != nil {
		c.failLocked()
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.failLocked()
		return err
	}
	first, err := c.br.Peek(1)
	if err != nil {
		c.failLocked()
		return fmt.Errorf("jfserve: binary handshake: %w", err)
	}
	if first[0] != serve.BinaryPreamble[0] {
		line, rerr := c.br.ReadBytes('\n')
		c.failLocked()
		var resp serve.Response
		if rerr == nil && json.Unmarshal(line, &resp) == nil && resp.Error != nil {
			return &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
		}
		return fmt.Errorf("jfserve: binary handshake: unexpected byte %#02x in place of the preamble echo", first[0])
	}
	var echo [5]byte
	if _, err := io.ReadFull(c.br, echo[:]); err != nil {
		c.failLocked()
		return fmt.Errorf("jfserve: binary handshake: %w", err)
	}
	if echo != serve.BinaryPreamble {
		c.failLocked()
		return fmt.Errorf("jfserve: binary handshake: bad preamble echo % x", echo)
	}
	return nil
}

// SetRetry installs a retry policy (see RetryPolicy; zero MaxAttempts
// disables retries again).
func (c *Client) SetRetry(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	c.retry = p
	c.rng = xrand.NewPair(seed, 0x6a697474) // "jitt"
}

// Close closes the connection; later calls fail without redialing.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// idempotentOps lists the operations safe to re-send when the first
// attempt's fate is unknown (transport error, server-side timeout).
// route and routes-batch advance the adaptive mechanism's state, but a
// re-sent lookup simply returns another valid choice — the daemon makes
// no exactly-once promise about choices. topo-load is idempotent by
// design (already_loaded). topo-evict is NOT: a retry after a success
// that was lost in transit answers unknown-topo.
var idempotentOps = map[string]bool{
	serve.OpRoute:       true,
	serve.OpRoutesBatch: true,
	serve.OpEstimate:    true,
	serve.OpTopoLoad:    true,
	serve.OpStats:       true,
	serve.OpHealth:      true,
}

// Do sends one request and returns the matching response, retrying
// under the client's policy. The version and a fresh id are filled in;
// a response with ok=false is returned along with the corresponding
// *RemoteError.
func (c *Client) Do(ctx context.Context, req serve.Request) (serve.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var resp serve.Response
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if serr := c.backoffLocked(ctx, attempt); serr != nil {
				return resp, err // context expired while backing off
			}
		}
		resp, err = c.doLocked(ctx, req)
		if err == nil || !c.retryableLocked(req.Op, err) || ctx.Err() != nil {
			return resp, err
		}
	}
	return resp, err
}

// retryableLocked decides whether err on op warrants another attempt.
func (c *Client) retryableLocked(op string, err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		switch re.Code {
		case serve.CodeOverloaded:
			// Backpressure: the server refused before executing, so a
			// retry is safe for every op.
			return true
		case serve.CodeTimeout:
			// The request may have executed; only idempotent ops retry.
			return idempotentOps[op]
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Transport error: the connection is broken (doLocked dropped it).
	// Retry only if the op is idempotent and we can redial.
	return idempotentOps[op] && c.network != "" && !c.closed
}

// backoffLocked sleeps the full-jitter backoff for the given attempt
// (1-based over the retries), honoring ctx.
func (c *Client) backoffLocked(ctx context.Context, attempt int) error {
	ceil := c.retry.BaseDelay << (attempt - 1)
	if ceil <= 0 || ceil > c.retry.MaxDelay {
		ceil = c.retry.MaxDelay
	}
	d := time.Duration(c.rng.Int64N(int64(ceil) + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// redialLocked re-establishes the connection after a transport failure,
// re-running the binary handshake when this is a binary client.
func (c *Client) redialLocked(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, c.network, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.w = bufio.NewWriterSize(conn, 64<<10)
	c.br = bufio.NewReaderSize(conn, 64<<10)
	c.sc = bufio.NewScanner(c.br)
	c.sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	c.enc = json.NewEncoder(c.w)
	if c.bin {
		if err := c.handshakeLocked(ctx); err != nil {
			return err
		}
	}
	return nil
}

// failLocked drops a connection whose stream can no longer be trusted
// (half-written frame, unread response).
func (c *Client) failLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// errEncode marks a request the binary codec cannot express; the
// connection is untouched and a retry would fail identically.
var errEncode = errors.New("jfserve: request not encodable in the binary protocol")

// armCtxLocked maps the context onto the connection: the deadline
// directly, and cancellation by expiring the deadline from a watcher
// goroutine. The returned function disarms the watcher.
func (c *Client) armCtxLocked(ctx context.Context) func() {
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	stop := make(chan struct{})
	conn := c.conn
	go func() {
		select {
		case <-done:
			conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// writeReqLocked encodes and flushes one request frame in the client's
// codec. An errEncode failure leaves the connection clean.
func (c *Client) writeReqLocked(req *serve.Request) error {
	if !c.bin {
		if err := c.enc.Encode(req); err != nil {
			return err
		}
		return c.w.Flush()
	}
	id, _ := strconv.ParseUint(req.ID, 10, 64)
	b := append(c.wbuf[:0], 0, 0, 0, 0) // length prefix, patched below
	b, err := serve.AppendBinaryRequest(b, id, req)
	if err != nil {
		return fmt.Errorf("%w: %v", errEncode, err)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	c.wbuf = b
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

// readRespLocked reads and decodes one response frame in the client's
// codec.
func (c *Client) readRespLocked() (serve.Response, error) {
	if c.bin {
		payload, err := serve.ReadFrame(c.br, &c.rbuf)
		if err != nil {
			return serve.Response{}, err
		}
		resp, err := serve.DecodeBinaryResponse(payload)
		if err != nil {
			return serve.Response{}, fmt.Errorf("jfserve: bad response frame: %w", err)
		}
		return resp, nil
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return serve.Response{}, err
		}
		return serve.Response{}, fmt.Errorf("jfserve: connection closed")
	}
	var resp serve.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return serve.Response{}, fmt.Errorf("jfserve: bad response frame: %w", err)
	}
	return resp, nil
}

// ensureConnLocked verifies the client is usable, redialing if needed.
func (c *Client) ensureConnLocked(ctx context.Context) error {
	if c.closed {
		return fmt.Errorf("jfserve: client is closed")
	}
	if c.conn == nil {
		if c.network == "" {
			return fmt.Errorf("jfserve: connection is closed")
		}
		return c.redialLocked(ctx)
	}
	return nil
}

// doLocked performs one attempt: write the frame, read the response.
// The context's deadline bounds the network I/O and cancellation
// interrupts a blocked read or write.
func (c *Client) doLocked(ctx context.Context, req serve.Request) (serve.Response, error) {
	if err := ctx.Err(); err != nil {
		return serve.Response{}, err
	}
	if err := c.ensureConnLocked(ctx); err != nil {
		return serve.Response{}, err
	}
	req.V = serve.ProtocolVersion
	if req.ID == "" {
		c.nextID++
		req.ID = strconv.FormatUint(c.nextID, 10)
	}

	disarm := c.armCtxLocked(ctx)
	defer disarm()
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}

	if err := c.writeReqLocked(&req); err != nil {
		if errors.Is(err, errEncode) {
			return serve.Response{}, err
		}
		c.failLocked()
		return serve.Response{}, ctxErr(err)
	}
	resp, err := c.readRespLocked()
	if err != nil {
		c.failLocked()
		return serve.Response{}, ctxErr(err)
	}
	if resp.ID != req.ID {
		c.failLocked()
		return serve.Response{}, fmt.Errorf("jfserve: response id %q for request id %q", resp.ID, req.ID)
	}
	if !resp.OK {
		if resp.Error == nil {
			return resp, &RemoteError{Code: "missing-error", Message: "ok=false with no error object"}
		}
		err := &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
		if resp.Error.Code == serve.CodeFrameTooLarge || resp.Error.Code == serve.CodeInternal {
			// The server closes the connection after these codes.
			c.failLocked()
		}
		return resp, err
	}
	return resp, nil
}

// Route asks for one chosen path on the loaded topology.
func (c *Client) Route(ctx context.Context, topo string, src, dst int32) (serve.RouteResult, error) {
	resp, err := c.Do(ctx, serve.Request{Op: serve.OpRoute, Topo: topo, Src: &src, Dst: &dst})
	if err != nil {
		return serve.RouteResult{}, err
	}
	if resp.Route == nil {
		return serve.RouteResult{}, fmt.Errorf("jfserve: route response missing payload")
	}
	return *resp.Route, nil
}

// RoutesBatch routes many pairs in one frame. Entries align with pairs;
// per-pair failures carry an error code in Entry.Err.
func (c *Client) RoutesBatch(ctx context.Context, topo string, pairs [][2]int32) (serve.BatchResult, error) {
	resp, err := c.Do(ctx, serve.Request{Op: serve.OpRoutesBatch, Topo: topo, Pairs: pairs})
	if err != nil {
		return serve.BatchResult{}, err
	}
	if resp.Batch == nil {
		return serve.BatchResult{}, fmt.Errorf("jfserve: routes-batch response missing payload")
	}
	return *resp.Batch, nil
}

// Sweep submits a streaming sweep and drains its whole result stream:
// the ack is returned as SweepStart, every chunk frame is handed to fn
// in order (fn may be nil to count only), and the final totals are
// returned as SweepDone. The client's connection is held for the
// duration — other goroutines' calls queue behind it.
//
// Retry semantics differ from Do because a sweep is NOT idempotent
// once admitted (each routed pair advances the topology's adaptive
// state). Only a submission refused with the overloaded code —
// guaranteed to have executed nothing — is retried under the client's
// policy. Any failure after the ack (mid-stream transport error, a
// chunk out of sequence, an fn error that leaves frames unread) drops
// the connection and returns without resubmitting.
func (c *Client) Sweep(ctx context.Context, topo string, p serve.SweepParams, fn func(serve.SweepChunk) error) (serve.SweepStart, serve.SweepDone, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var start serve.SweepStart
	var done serve.SweepDone
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if serr := c.backoffLocked(ctx, attempt); serr != nil {
				return start, done, err // context expired while backing off
			}
		}
		var started bool
		start, done, started, err = c.sweepOnceLocked(ctx, topo, p, fn)
		if err == nil || started || ctx.Err() != nil {
			return start, done, err
		}
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != serve.CodeOverloaded {
			return start, done, err
		}
	}
	return start, done, err
}

// sweepOnceLocked runs one sweep attempt. started reports that the
// server acknowledged the sweep — the point of no return for retries.
func (c *Client) sweepOnceLocked(ctx context.Context, topo string, p serve.SweepParams, fn func(serve.SweepChunk) error) (start serve.SweepStart, done serve.SweepDone, started bool, err error) {
	resp, err := c.doLocked(ctx, serve.Request{Op: serve.OpSweep, Topo: topo, Sweep: &p})
	if err != nil {
		return start, done, false, err
	}
	if resp.Sweep == nil {
		c.failLocked()
		return start, done, false, fmt.Errorf("jfserve: sweep response missing payload")
	}
	start = *resp.Sweep
	id := resp.ID

	disarm := c.armCtxLocked(ctx)
	defer disarm()
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	for next := 0; ; {
		frame, rerr := c.readRespLocked()
		if rerr != nil {
			c.failLocked()
			return start, done, true, ctxErr(rerr)
		}
		if frame.ID != id {
			c.failLocked()
			return start, done, true, fmt.Errorf("jfserve: sweep stream carries id %q, want %q", frame.ID, id)
		}
		if !frame.OK {
			// Mid-stream errors are not part of the protocol; whatever
			// this is, the stream cannot be trusted.
			c.failLocked()
			if frame.Error != nil {
				return start, done, true, &RemoteError{Code: frame.Error.Code, Message: frame.Error.Message}
			}
			return start, done, true, &RemoteError{Code: "missing-error", Message: "ok=false with no error object"}
		}
		switch {
		case frame.SweepChunk != nil:
			ch := *frame.SweepChunk
			if ch.Seq != next {
				c.failLocked()
				return start, done, true, fmt.Errorf("jfserve: sweep chunk %d arrived, want %d", ch.Seq, next)
			}
			next++
			if fn != nil {
				if cbErr := fn(ch); cbErr != nil {
					// The stream's remaining frames are unread; this
					// connection cannot carry another request.
					c.failLocked()
					return start, done, true, cbErr
				}
			}
		case frame.SweepDone != nil:
			return start, *frame.SweepDone, true, nil
		default:
			c.failLocked()
			return start, done, true, fmt.Errorf("jfserve: unexpected frame in sweep stream")
		}
	}
}

// Estimate returns the pair's path-set quality and isolated-flow
// throughput estimate.
func (c *Client) Estimate(ctx context.Context, topo string, src, dst int32) (serve.EstimateResult, error) {
	resp, err := c.Do(ctx, serve.Request{Op: serve.OpEstimate, Topo: topo, Src: &src, Dst: &dst})
	if err != nil {
		return serve.EstimateResult{}, err
	}
	if resp.Estimate == nil {
		return serve.EstimateResult{}, fmt.Errorf("jfserve: estimate response missing payload")
	}
	return *resp.Estimate, nil
}

// TopoLoad loads (or confirms) a topology and returns its key.
func (c *Client) TopoLoad(ctx context.Context, p serve.TopoParams) (serve.TopoResult, error) {
	resp, err := c.Do(ctx, serve.Request{Op: serve.OpTopoLoad, Params: &p})
	if err != nil {
		return serve.TopoResult{}, err
	}
	if resp.Topo == nil {
		return serve.TopoResult{}, fmt.Errorf("jfserve: topo-load response missing payload")
	}
	return *resp.Topo, nil
}

// TopoEvict drops a loaded topology. It is not idempotent and is never
// retried.
func (c *Client) TopoEvict(ctx context.Context, key string) error {
	_, err := c.Do(ctx, serve.Request{Op: serve.OpTopoEvict, Topo: key})
	return err
}

// Stats returns the server's telemetry snapshot.
func (c *Client) Stats(ctx context.Context) (serve.StatsResult, error) {
	resp, err := c.Do(ctx, serve.Request{Op: serve.OpStats})
	if err != nil {
		return serve.StatsResult{}, err
	}
	if resp.Stats == nil {
		return serve.StatsResult{}, fmt.Errorf("jfserve: stats response missing payload")
	}
	return *resp.Stats, nil
}

// Health returns the server's readiness and resilience counters. It is
// exempt from server-side shedding, so it answers even under overload.
func (c *Client) Health(ctx context.Context) (serve.HealthResult, error) {
	resp, err := c.Do(ctx, serve.Request{Op: serve.OpHealth})
	if err != nil {
		return serve.HealthResult{}, err
	}
	if resp.Health == nil {
		return serve.HealthResult{}, fmt.Errorf("jfserve: health response missing payload")
	}
	return *resp.Health, nil
}
