// Package client is the in-repo Go client for the jfserve wire protocol
// (docs/SERVICE.md): newline-delimited JSON requests over a Unix socket
// or TCP connection, one response per request, in order. It exists for
// the protocol tests, the serve smoke gate and exp.ServeBench; a
// third-party client should be written from docs/SERVICE.md alone.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"

	"repro/internal/serve"
)

// RemoteError is a protocol-level failure: the server answered with
// ok=false and this code/message. Transport failures surface as plain
// errors instead.
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("jfserve: %s: %s", e.Code, e.Message)
}

// Client is a synchronous jfserve client. Methods may be called from
// multiple goroutines; requests are serialized on the one connection
// (for throughput, open several clients and batch — see exp.ServeBench).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	sc     *bufio.Scanner
	w      *bufio.Writer
	enc    *json.Encoder
	nextID uint64
}

// Dial connects to a jfserve listener ("unix", "/tmp/jfserve.sock" or
// "tcp", "host:port").
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return New(conn), nil
}

// New wraps an established connection.
func New(conn net.Conn) *Client {
	c := &Client{conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	c.sc = bufio.NewScanner(conn)
	c.sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	c.enc = json.NewEncoder(c.w)
	return c
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and returns the matching response. The version
// and a fresh id are filled in; a response with ok=false is returned
// along with the corresponding *RemoteError.
func (c *Client) Do(req serve.Request) (serve.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req.V = serve.ProtocolVersion
	if req.ID == "" {
		c.nextID++
		req.ID = strconv.FormatUint(c.nextID, 10)
	}
	if err := c.enc.Encode(req); err != nil {
		return serve.Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return serve.Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return serve.Response{}, err
		}
		return serve.Response{}, fmt.Errorf("jfserve: connection closed")
	}
	var resp serve.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return serve.Response{}, fmt.Errorf("jfserve: bad response frame: %w", err)
	}
	if resp.ID != req.ID {
		return serve.Response{}, fmt.Errorf("jfserve: response id %q for request id %q", resp.ID, req.ID)
	}
	if !resp.OK {
		if resp.Error == nil {
			return resp, &RemoteError{Code: "missing-error", Message: "ok=false with no error object"}
		}
		return resp, &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return resp, nil
}

// Route asks for one chosen path on the loaded topology.
func (c *Client) Route(topo string, src, dst int32) (serve.RouteResult, error) {
	resp, err := c.Do(serve.Request{Op: serve.OpRoute, Topo: topo, Src: &src, Dst: &dst})
	if err != nil {
		return serve.RouteResult{}, err
	}
	if resp.Route == nil {
		return serve.RouteResult{}, fmt.Errorf("jfserve: route response missing payload")
	}
	return *resp.Route, nil
}

// RoutesBatch routes many pairs in one frame. Entries align with pairs;
// per-pair failures carry an error code in Entry.Err.
func (c *Client) RoutesBatch(topo string, pairs [][2]int32) (serve.BatchResult, error) {
	resp, err := c.Do(serve.Request{Op: serve.OpRoutesBatch, Topo: topo, Pairs: pairs})
	if err != nil {
		return serve.BatchResult{}, err
	}
	if resp.Batch == nil {
		return serve.BatchResult{}, fmt.Errorf("jfserve: routes-batch response missing payload")
	}
	return *resp.Batch, nil
}

// Estimate returns the pair's path-set quality and isolated-flow
// throughput estimate.
func (c *Client) Estimate(topo string, src, dst int32) (serve.EstimateResult, error) {
	resp, err := c.Do(serve.Request{Op: serve.OpEstimate, Topo: topo, Src: &src, Dst: &dst})
	if err != nil {
		return serve.EstimateResult{}, err
	}
	if resp.Estimate == nil {
		return serve.EstimateResult{}, fmt.Errorf("jfserve: estimate response missing payload")
	}
	return *resp.Estimate, nil
}

// TopoLoad loads (or confirms) a topology and returns its key.
func (c *Client) TopoLoad(p serve.TopoParams) (serve.TopoResult, error) {
	resp, err := c.Do(serve.Request{Op: serve.OpTopoLoad, Params: &p})
	if err != nil {
		return serve.TopoResult{}, err
	}
	if resp.Topo == nil {
		return serve.TopoResult{}, fmt.Errorf("jfserve: topo-load response missing payload")
	}
	return *resp.Topo, nil
}

// TopoEvict drops a loaded topology.
func (c *Client) TopoEvict(key string) error {
	_, err := c.Do(serve.Request{Op: serve.OpTopoEvict, Topo: key})
	return err
}

// Stats returns the server's telemetry snapshot.
func (c *Client) Stats() (serve.StatsResult, error) {
	resp, err := c.Do(serve.Request{Op: serve.OpStats})
	if err != nil {
		return serve.StatsResult{}, err
	}
	if resp.Stats == nil {
		return serve.StatsResult{}, fmt.Errorf("jfserve: stats response missing payload")
	}
	return *resp.Stats, nil
}
