package serve_test

import (
	"fmt"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/xrand"
)

// TestStripedStatisticalEquivalence checks that sharding a topology's
// mutable routing state across stripes does not change what the daemon
// answers, statistically: a single-stripe server and an 8-stripe server
// fed the same seeded pair stream must produce near-identical
// candidate-index and hop-count distributions. Individual choices DO
// differ (each stripe draws from its own seeds.StripeRNG stream and
// feeds its own estimator), so the comparison is distributional: L1
// distance of the normalized histograms, at three load levels, for both
// adaptive mechanisms.
func TestStripedStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("routes tens of thousands of pairs")
	}
	mechanisms := []string{"ksp-adaptive", "ugal"}
	loads := []int{1000, 4000, 10000}

	for _, mech := range mechanisms {
		t.Run(mech, func(t *testing.T) {
			single, singleSock := startServer(t, serve.Options{Stripes: 1})
			striped, stripedSock := startServer(t, serve.Options{Stripes: 8})
			_, _ = single, striped

			params := serve.TopoParams{Topo: "small", K: 4, Seed: 3,
				Mechanism: mech, Estimator: "link-load"}
			cs, key := dialAndLoad(t, singleSock, params)
			cm, key2 := dialAndLoad(t, stripedSock, params)
			if key != key2 {
				t.Fatalf("same params resolved to different keys: %q vs %q", key, key2)
			}

			for _, load := range loads {
				t.Run(fmt.Sprintf("load-%d", load), func(t *testing.T) {
					pairs := sweepPairs(uint64(load)*7919+11, 36, load)
					idx1, hops1 := routeHistograms(t, cs, key, pairs)
					idx2, hops2 := routeHistograms(t, cm, key, pairs)
					if d := histL1(idx1, idx2); d > 0.15 {
						t.Errorf("candidate-index distributions diverge: L1 %.3f > 0.15\n single  %v\n striped %v",
							d, idx1, idx2)
					}
					if d := histL1(hops1, hops2); d > 0.15 {
						t.Errorf("hop-count distributions diverge: L1 %.3f > 0.15\n single  %v\n striped %v",
							d, hops1, hops2)
					}
				})
			}
		})
	}
}

// dialAndLoad opens a binary client to sock and loads params,
// returning the client and the resolved topology key.
func dialAndLoad(t *testing.T, sock string, params serve.TopoParams) (*client.Client, string) {
	t.Helper()
	c, err := client.DialBinary(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	res, err := c.TopoLoad(bg, params)
	if err != nil {
		t.Fatal(err)
	}
	return c, res.Key
}

// sweepPairs generates n seeded (src, dst != src) pairs over switches
// [0, nsw) — the identical stream both servers route.
func sweepPairs(seed uint64, nsw, n int) [][2]int32 {
	rng := xrand.NewPair(seed, 0x73747270) // "strp"
	pairs := make([][2]int32, n)
	for i := range pairs {
		src := int32(rng.Uint64() % uint64(nsw))
		dst := int32(rng.Uint64() % uint64(nsw-1))
		if dst >= src {
			dst++
		}
		pairs[i] = [2]int32{src, dst}
	}
	return pairs
}

// routeHistograms batches pairs through c and histograms the answers:
// chosen candidate index (UGAL's composed detours land on -1) and hop
// count. Every pair must route — the small topology stores all ordered
// pairs.
func routeHistograms(t *testing.T, c *client.Client, key string, pairs [][2]int32) (idx, hops map[int]int) {
	t.Helper()
	idx, hops = map[int]int{}, map[int]int{}
	for off := 0; off < len(pairs); off += 1000 {
		end := min(off+1000, len(pairs))
		res, err := c.RoutesBatch(bg, key, pairs[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range res.Entries {
			if e.Route == nil {
				t.Fatalf("pair %v answered %q, want a route", pairs[off+i], e.Err)
			}
			idx[e.Route.Index]++
			hops[e.Route.Hops]++
		}
	}
	return idx, hops
}

// histL1 is the L1 distance between two count histograms after
// normalizing each to a probability distribution: 0 = identical,
// 2 = disjoint support.
func histL1(a, b map[int]int) float64 {
	na, nb := 0, 0
	for _, v := range a {
		na += v
	}
	for _, v := range b {
		nb += v
	}
	if na == 0 || nb == 0 {
		return 2
	}
	d := 0.0
	keys := map[int]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		pa := float64(a[k]) / float64(na)
		pb := float64(b[k]) / float64(nb)
		if pa > pb {
			d += pa - pb
		} else {
			d += pb - pa
		}
	}
	return d
}
