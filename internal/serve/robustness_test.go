package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// startServer runs a private server for tests that exercise limits or
// lifecycle (the shared TestMain server stays unlimited).
func startServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "jfserve.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Stop()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Stop, want nil", err)
		}
	})
	return srv, sock
}

func rawConnTo(t *testing.T, sock string) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	return conn, sc
}

func TestHealthRoundTrip(t *testing.T) {
	c := dial(t)
	h, err := c.Health(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready {
		t.Fatalf("running server reports not ready: %+v", h)
	}
	if h.Topos < 1 {
		t.Fatalf("health topos %d, want >= 1 (TestMain loaded one)", h.Topos)
	}
	if h.UptimeSeconds <= 0 {
		t.Fatalf("non-positive uptime: %+v", h)
	}
	if h.Conns < 1 {
		t.Fatalf("health conns %d, want >= 1 (this client)", h.Conns)
	}
	// The shared server runs without limits; the zero limits must be
	// reported as such so operators can tell shedding is off.
	if h.MaxConns != 0 || h.MaxInFlight != 0 {
		t.Fatalf("unlimited server reports limits: %+v", h)
	}
}

// TestClientContextDeadline is the regression test for the client
// ignoring caller contexts: a deadline must interrupt a call blocked on
// a slow server rather than hang until the response arrives.
func TestClientContextDeadline(t *testing.T) {
	_, sock := startServer(t, serve.Options{EnableTestOps: true})
	c, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = c.Do(ctx, serve.Request{Op: serve.OpTestSleep, SleepMS: 500})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > 400*time.Millisecond {
		t.Fatalf("deadline took %v to fire, want ~50ms", d)
	}
}

func TestClientContextCancel(t *testing.T) {
	_, sock := startServer(t, serve.Options{EnableTestOps: true})
	c, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err = c.Do(ctx, serve.Request{Op: serve.OpTestSleep, SleepMS: 500})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestClientRedialAfterPoison verifies the client transparently redials
// after the server poisons a connection (internal-error closes it).
func TestClientRedialAfterPoison(t *testing.T) {
	srv, sock := startServer(t, serve.Options{EnableTestOps: true})
	c, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Do(bg, serve.Request{Op: serve.OpTestCrash})
	wantCode(t, err, serve.CodeInternal)
	if got := srv.Counters().Panics; got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// The poisoned connection is gone; the next call must redial.
	if _, err := c.Stats(bg); err != nil {
		t.Fatalf("stats after redial: %v", err)
	}
}

func TestOverloadedShed(t *testing.T) {
	srv, sock := startServer(t, serve.Options{MaxInFlight: 1, EnableTestOps: true})

	// Occupy the single in-flight slot with a slow request.
	slow, slowSC := rawConnTo(t, sock)
	if _, err := fmt.Fprintln(slow, `{"v":1,"id":"slow","op":"test-sleep","sleep_ms":400}`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	// A second request sheds immediately — and the connection survives.
	conn, sc := rawConnTo(t, sock)
	resp := rawRequest(t, conn, sc, `{"v":1,"id":"shed","op":"stats"}`)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeOverloaded {
		t.Fatalf("got %+v, want %s", resp, serve.CodeOverloaded)
	}
	if resp.ID != "shed" {
		t.Fatalf("shed response dropped the request id: %+v", resp)
	}

	// health answers while the server is saturated.
	hc, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	h, err := hc.Health(bg)
	if err != nil {
		t.Fatalf("health under overload: %v", err)
	}
	if h.Shed != 1 || h.InFlight != 1 || h.MaxInFlight != 1 {
		t.Fatalf("health under overload = %+v, want shed 1, in_flight 1/1", h)
	}

	// Once the slow request drains, the same connection serves again.
	if !slowSC.Scan() {
		t.Fatalf("slow request never answered: %v", slowSC.Err())
	}
	resp = rawRequest(t, conn, sc, `{"v":1,"id":"after","op":"stats"}`)
	if !resp.OK {
		t.Fatalf("connection unusable after shed: %+v", resp)
	}
}

func TestHandlerTimeoutCode(t *testing.T) {
	srv, sock := startServer(t, serve.Options{
		MaxInFlight: 1, HandlerTimeout: 50 * time.Millisecond, EnableTestOps: true,
	})
	conn, sc := rawConnTo(t, sock)
	resp := rawRequest(t, conn, sc, `{"v":1,"id":"slow","op":"test-sleep","sleep_ms":300}`)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeTimeout {
		t.Fatalf("got %+v, want %s", resp, serve.CodeTimeout)
	}
	if got := srv.Counters().HandlerTimeouts; got != 1 {
		t.Fatalf("handler timeout counter = %d, want 1", got)
	}
	// The detached handler still holds its in-flight slot — load
	// accounting stays honest, so a new request sheds.
	resp = rawRequest(t, conn, sc, `{"v":1,"id":"while","op":"stats"}`)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeOverloaded {
		t.Fatalf("during detached handler: got %+v, want %s", resp, serve.CodeOverloaded)
	}
	// Once it finishes, the slot frees.
	waitFor(t, func() bool { return srv.InFlight() == 0 })
	resp = rawRequest(t, conn, sc, `{"v":1,"id":"after","op":"stats"}`)
	if !resp.OK {
		t.Fatalf("after detached handler drained: %+v", resp)
	}
}

func TestConnLimitRefusal(t *testing.T) {
	srv, sock := startServer(t, serve.Options{MaxConns: 1})
	held, heldSC := rawConnTo(t, sock)

	over, overSC := rawConnTo(t, sock)
	if !overSC.Scan() {
		t.Fatalf("refused connection got no error frame: %v", overSC.Err())
	}
	var resp serve.Response
	if err := jsonUnmarshal(overSC.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeOverloaded {
		t.Fatalf("refusal frame = %+v, want %s", resp, serve.CodeOverloaded)
	}
	if resp.ID != "" {
		t.Fatalf("refusal frame carries id %q, want empty (no request read)", resp.ID)
	}
	if overSC.Scan() {
		t.Fatalf("refused connection still open: %q", overSC.Bytes())
	}
	over.Close()
	if got := srv.Counters().ConnShed; got != 1 {
		t.Fatalf("conn shed counter = %d, want 1", got)
	}

	// The held connection was never disturbed.
	r := rawRequest(t, held, heldSC, `{"v":1,"id":"ok","op":"stats"}`)
	if !r.OK {
		t.Fatalf("held connection broken by refusal: %+v", r)
	}
	// Dropping it frees the slot for a newcomer.
	held.Close()
	waitFor(t, func() bool {
		c, err := net.Dial("unix", sock)
		if err != nil {
			return false
		}
		defer c.Close()
		sc := bufio.NewScanner(c)
		if _, err := fmt.Fprintln(c, `{"v":1,"id":"new","op":"stats"}`); err != nil {
			return false
		}
		if !sc.Scan() {
			return false
		}
		var resp serve.Response
		return jsonUnmarshal(sc.Bytes(), &resp) == nil && resp.OK
	})
}

func TestPanicIsolation(t *testing.T) {
	srv, sock := startServer(t, serve.Options{EnableTestOps: true})
	bystander, bystanderSC := rawConnTo(t, sock)
	crasher, crasherSC := rawConnTo(t, sock)

	resp := rawRequest(t, crasher, crasherSC, `{"v":1,"id":"boom","op":"test-crash"}`)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeInternal {
		t.Fatalf("got %+v, want %s", resp, serve.CodeInternal)
	}
	if resp.ID != "boom" {
		t.Fatalf("panic response dropped the request id: %+v", resp)
	}
	// The offending connection is poisoned...
	if crasherSC.Scan() {
		t.Fatalf("connection still open after panic: %q", crasherSC.Bytes())
	}
	// ...but only that one: the bystander keeps serving, and the daemon
	// counted exactly the injected panic.
	r := rawRequest(t, bystander, bystanderSC, `{"v":1,"id":"alive","op":"stats"}`)
	if !r.OK {
		t.Fatalf("bystander connection broken by another connection's panic: %+v", r)
	}
	if got := srv.Counters().Panics; got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

func TestSlowLorisReadTimeout(t *testing.T) {
	srv, sock := startServer(t, serve.Options{ReadTimeout: 80 * time.Millisecond})
	conn, sc := rawConnTo(t, sock)
	// Half a frame, then silence: the frame never completes, so the
	// server must cut the connection (silently — no error frame can be
	// parsed mid-frame) and count an I/O timeout.
	if _, err := conn.Write([]byte(`{"v":1,"op":`)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	conn.SetReadDeadline(deadline)
	if sc.Scan() {
		t.Fatalf("got a frame on a stalled connection: %q", sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("expected clean EOF from server-side close, got %v", err)
	}
	if got := srv.Counters().IOTimeouts; got != 1 {
		t.Fatalf("io timeout counter = %d, want 1", got)
	}
}

func TestClientRetryOverloaded(t *testing.T) {
	srv, sock := startServer(t, serve.Options{MaxInFlight: 1, EnableTestOps: true})
	slow, _ := rawConnTo(t, sock)
	if _, err := fmt.Fprintln(slow, `{"v":1,"id":"slow","op":"test-sleep","sleep_ms":150}`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	c, err := client.DialRetry(bg, "unix", sock, client.RetryPolicy{
		MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The first attempts shed; the policy backs off until the slot frees.
	if _, err := c.Stats(bg); err != nil {
		t.Fatalf("retrying client never got through: %v", err)
	}
	if got := srv.Counters().Shed; got < 1 {
		t.Fatalf("shed counter = %d, want >= 1 (the retried attempts)", got)
	}
}

func TestClientRetryExhausted(t *testing.T) {
	srv, sock := startServer(t, serve.Options{MaxInFlight: 1, EnableTestOps: true})
	slow, _ := rawConnTo(t, sock)
	if _, err := fmt.Fprintln(slow, `{"v":1,"id":"slow","op":"test-sleep","sleep_ms":2000}`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	c, err := client.DialRetry(bg, "unix", sock, client.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stats(bg)
	wantCode(t, err, serve.CodeOverloaded)
	if got := srv.Counters().Shed; got != 3 {
		t.Fatalf("shed counter = %d, want 3 (every attempt shed)", got)
	}
}

// TestShutdownUnderLoad drives concurrent request streams into Stop:
// every response received before a connection closes must be complete,
// Serve must return nil, and Stop must not hang on busy connections.
// (The name keeps it under the race gate's -run 'Concurrent|Shutdown'.)
func TestShutdownUnderLoad(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "load.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	const clients = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	served := 0
	firstOnce := sync.Once{}
	first := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(bg, "unix", sock)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for {
				st, err := c.Stats(bg)
				if err != nil {
					return // the connection closed mid-stream; fine
				}
				if st.UptimeSeconds <= 0 {
					t.Error("drained response is incomplete")
					return
				}
				mu.Lock()
				served++
				mu.Unlock()
				firstOnce.Do(func() { close(first) })
			}
		}()
	}
	<-first // Stop lands while all streams are in flight
	srv.Stop()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Stop, want nil", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if served < 1 {
		t.Fatal("no request completed before shutdown")
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }
