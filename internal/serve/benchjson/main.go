// Command benchjson runs exp.ServeBench and writes the machine-readable
// serving benchmark report consumed by the repo's BENCH_serve.json
// baseline (see docs/SERVICE.md for how to read the numbers):
//
//	go run ./internal/serve/benchjson -o BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/exp"
)

type report struct {
	Schema     string                `json:"schema"`
	GoVersion  string                `json:"go_version"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Bench      *exp.ServeBenchResult `json:"serve_bench"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_serve.json", "output file (- = stdout)")
		topo      = flag.String("topo", "small", "topology to serve: small, medium or large")
		k         = flag.Int("k", 8, "paths per switch pair")
		seed      = flag.Uint64("seed", 1, "path-DB and query-stream seed")
		clients   = flag.Int("clients", 0, "concurrent client connections (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 512, "pairs per routes-batch frame")
		batches   = flag.Int("batches", 100, "frames per client")
		singles   = flag.Int("singles", 2000, "single-route round trips per client")
		pairs     = flag.Int("pairs", 0, "pair sample size (0 = all ordered pairs)")
		estimator = flag.String("estimator", "link-load", "load estimator: zero, hops or link-load")
		sweep     = flag.Int("sweep-pairs", 0, "streaming-sweep phase pair count (0 = default 100000)")
		mcProcs   = flag.Int("multicore-procs", 0, "multi-core series GOMAXPROCS (0 = default 4, negative = skip)")

		overInFlight = flag.Int("overload-inflight", 1, "overload phase: server in-flight limit")
		overClients  = flag.Int("overload-clients", 0, "overload phase: concurrent clients (0 = 4×GOMAXPROCS, min 4)")
		overBatches  = flag.Int("overload-batches", 50, "overload phase: frames per client")
	)
	flag.Parse()

	res, err := exp.ServeBench(exp.ServeBenchConfig{
		Topo: *topo, K: *k, Seed: *seed, Estimator: *estimator,
		Clients: *clients, BatchSize: *batch, Batches: *batches,
		SingleOps: *singles, PairSample: *pairs,
		SweepPairs: *sweep, MultiCoreProcs: *mcProcs,
		OverloadInFlight: *overInFlight, OverloadClients: *overClients,
		OverloadBatches: *overBatches,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	rep := report{
		Schema:     "jfserve-bench/v2",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      res,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %.0f batched lookups/sec JSON, %.0f binary (%.2fx), %.0f single ops/sec (%d clients)\n",
		*out, res.LookupsPerSec, res.BinaryLookupsPerSec, res.BinarySpeedup, res.SinglesPerSec, res.Clients)
	fmt.Printf("sweep: %.0f pairs/sec streamed (%d pairs, %d chunks)\n",
		res.SweepPairsPerSec, res.SweepPairs, res.SweepChunks)
	if mc := res.MultiCore; mc != nil {
		fmt.Printf("multi-core: %.0f JSON, %.0f binary lookups/sec at GOMAXPROCS=%d, %d stripes (%d hardware CPUs)\n",
			mc.LookupsPerSec, mc.BinaryLookupsPerSec, mc.GOMAXPROCS, mc.Stripes, mc.NumCPU)
	}
	if o := res.Overload; o != nil {
		fmt.Printf("overload: %.0f%% shed at %d clients over in-flight limit %d (p99 %.0fus)\n",
			100*o.ShedRate, o.Clients, o.MaxInFlight, o.LatencyP99Micros)
	}
}
