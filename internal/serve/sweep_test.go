package serve_test

import (
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// TestSweepGenerated runs a seeded generated sweep over the binary
// codec and checks the ack's chunking plan, the streamed chunk shapes
// and the final totals against each other.
func TestSweepGenerated(t *testing.T) {
	c := dialBin(t)
	var chunks []serve.SweepChunk
	start, done, err := c.Sweep(bg, testKey, serve.SweepParams{Count: 2500, Seed: 7},
		func(ch serve.SweepChunk) error {
			// Entries are reused across chunk frames server-side; copy
			// nothing, record shapes.
			chunks = append(chunks, serve.SweepChunk{Seq: ch.Seq, Routed: ch.Routed,
				Entries: make([]serve.BatchEntry, len(ch.Entries))})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := serve.SweepStart{TotalPairs: 2500, ChunkSize: serve.DefaultSweepChunk, Chunks: 3}
	if start != want {
		t.Fatalf("ack %+v, want %+v", start, want)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	for i, ch := range chunks {
		wantLen := serve.DefaultSweepChunk
		if i == 2 {
			wantLen = 2500 - 2*serve.DefaultSweepChunk
		}
		if len(ch.Entries) != wantLen {
			t.Errorf("chunk %d carries %d entries, want %d", i, len(ch.Entries), wantLen)
		}
	}
	// The small topology stores all ordered pairs and generated pairs
	// never alias src == dst, so every pair routes.
	if done.Chunks != 3 || done.Routed != 2500 || done.Failed != 0 {
		t.Fatalf("done %+v, want 3 chunks, 2500 routed, 0 failed", done)
	}
}

// TestSweepExplicitPairs sweeps an explicit pair list whose bad entries
// (self-pair, out-of-range switch) must answer per-pair error codes
// without failing the sweep.
func TestSweepExplicitPairs(t *testing.T) {
	c := dialBin(t)
	pairs := [][2]int32{{0, 1}, {2, 2}, {5, 3}, {9999, 0}}
	var entries []serve.BatchEntry
	start, done, err := c.Sweep(bg, testKey, serve.SweepParams{Pairs: pairs, Chunk: 3},
		func(ch serve.SweepChunk) error {
			for _, e := range ch.Entries {
				cp := e
				if e.Route != nil {
					r := *e.Route
					cp.Route = &r
				}
				entries = append(entries, cp)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if start.TotalPairs != 4 || start.ChunkSize != 3 || start.Chunks != 2 {
		t.Fatalf("ack %+v, want 4 pairs in 2 chunks of 3", start)
	}
	if done.Routed != 2 || done.Failed != 2 {
		t.Fatalf("done %+v, want 2 routed and 2 failed", done)
	}
	if len(entries) != 4 {
		t.Fatalf("streamed %d entries, want 4", len(entries))
	}
	for _, i := range []int{0, 2} {
		if entries[i].Route == nil {
			t.Errorf("entry %d for pair %v answered %q, want a route", i, pairs[i], entries[i].Err)
		}
	}
	for _, i := range []int{1, 3} {
		if entries[i].Err != serve.CodeBadPair {
			t.Errorf("entry %d for pair %v answered %q, want %s", i, pairs[i], entries[i].Err, serve.CodeBadPair)
		}
	}
}

// TestSweepJSON runs a sweep over the v1 JSON codec: streaming is not
// binary-only.
func TestSweepJSON(t *testing.T) {
	c := dial(t)
	var chunks int
	start, done, err := c.Sweep(bg, testKey, serve.SweepParams{Count: 300, Seed: 9, Chunk: 128},
		func(serve.SweepChunk) error { chunks++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if start.Chunks != 3 || chunks != 3 {
		t.Fatalf("ack promises %d chunks, %d streamed, want 3", start.Chunks, chunks)
	}
	if done.Routed+done.Failed != 300 {
		t.Fatalf("done %+v, want 300 total", done)
	}
}

// TestSweepBadRequest covers every sweep admission error; each must be
// answered before any state changes, leaving the connection usable.
func TestSweepBadRequest(t *testing.T) {
	c := dialBin(t)
	cases := []struct {
		name string
		topo string
		p    serve.SweepParams
		code string
	}{
		{"count-and-pairs", testKey, serve.SweepParams{Count: 5, Pairs: [][2]int32{{0, 1}}}, serve.CodeBadRequest},
		{"neither", testKey, serve.SweepParams{}, serve.CodeBadRequest},
		{"chunk-too-large", testKey, serve.SweepParams{Count: 5, Chunk: serve.MaxBatchPairs + 1}, serve.CodeBadRequest},
		{"count-too-large", testKey, serve.SweepParams{Count: serve.MaxSweepPairs + 1}, serve.CodeBadRequest},
		// An explicit pair list over MaxSweepPairs cannot be tested over
		// the wire: at 8 bytes a pair it blows MaxFrameBytes first.
		{"unknown-topo", "nope", serve.SweepParams{Count: 5}, serve.CodeUnknownTopo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := c.Sweep(bg, tc.topo, tc.p, nil)
			wantCode(t, err, tc.code)
		})
	}
	// The connection survived all of it.
	if _, err := c.Health(bg); err != nil {
		t.Fatalf("connection unusable after rejected sweeps: %v", err)
	}
}

// TestSweepMaxSweeps pins the concurrent-sweep limit: while one sweep
// streams (held open by a client that stops draining), a second
// submission is shed with overloaded, health reports the gauge, and the
// slot frees once the first sweep completes.
func TestSweepMaxSweeps(t *testing.T) {
	srv, sock := startServer(t, serve.Options{MaxSweeps: 1})
	res, err := srv.LoadTopology(serve.TopoParams{Topo: "small", K: 4})
	if err != nil {
		t.Fatal(err)
	}

	c1, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Close() })
	gotChunk := make(chan struct{})
	release := make(chan struct{})
	sweepDone := make(chan error, 1)
	go func() {
		first := true
		_, _, err := c1.Sweep(bg, res.Key, serve.SweepParams{Count: 100000, Seed: 1},
			func(serve.SweepChunk) error {
				if first {
					first = false
					close(gotChunk)
					<-release
				}
				return nil
			})
		sweepDone <- err
	}()
	<-gotChunk
	waitFor(t, func() bool { return srv.SweepsActive() == 1 })

	c2, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	_, _, err = c2.Sweep(bg, res.Key, serve.SweepParams{Count: 10}, nil)
	wantCode(t, err, serve.CodeOverloaded)

	// health is exempt from shedding and must report the gauge.
	h, err := c2.Health(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.SweepsActive != 1 || h.MaxSweeps != 1 {
		t.Fatalf("health reports %d/%d sweeps, want 1/1", h.SweepsActive, h.MaxSweeps)
	}

	close(release)
	if err := <-sweepDone; err != nil {
		t.Fatalf("held sweep failed: %v", err)
	}
	waitFor(t, func() bool { return srv.SweepsActive() == 0 })
	if _, _, err := c2.Sweep(bg, res.Key, serve.SweepParams{Count: 10}, nil); err != nil {
		t.Fatalf("sweep after slot freed: %v", err)
	}
}

// --- sweep retry semantics ----------------------------------------------------

// sweepImpostor is a minimal JSON jfserve stand-in that counts sweep
// submissions and answers each according to a per-submission script —
// the only way to observe whether the client resubmits.
type sweepImpostor struct {
	ln          net.Listener
	submissions atomic.Int32
	// behave answers submission n (1-based) on conn.
	behave func(n int, conn net.Conn, req serve.Request)
}

func startSweepImpostor(t *testing.T, behave func(n int, conn net.Conn, req serve.Request)) (*sweepImpostor, string) {
	t.Helper()
	sock := t.TempDir() + "/impostor.sock"
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	imp := &sweepImpostor{ln: ln, behave: behave}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go imp.serve(conn)
		}
	}()
	return imp, sock
}

func (imp *sweepImpostor) serve(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	for {
		var req serve.Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if req.Op != serve.OpSweep {
			writeFrame(conn, serve.Response{V: 1, ID: req.ID, OK: true})
			continue
		}
		imp.behave(int(imp.submissions.Add(1)), conn, req)
	}
}

func writeFrame(conn net.Conn, resp serve.Response) {
	b, err := json.Marshal(resp)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(conn, "%s\n", b)
}

func sweepAck(conn net.Conn, id string, total, chunk int) {
	resp := serve.Response{V: 1, ID: id, OK: true,
		Sweep: &serve.SweepStart{TotalPairs: total, ChunkSize: chunk, Chunks: (total + chunk - 1) / chunk}}
	writeFrame(conn, resp)
}

func sweepChunkFrame(conn net.Conn, id string, seq, n int) {
	entries := make([]serve.BatchEntry, n)
	for i := range entries {
		entries[i] = serve.BatchEntry{Route: &serve.RouteResult{Path: []int32{0, 1}, Index: 0, Hops: 1}}
	}
	resp := serve.Response{V: 1, ID: id, OK: true,
		SweepChunk: &serve.SweepChunk{Seq: seq, Routed: n, Entries: entries}}
	writeFrame(conn, resp)
}

var testRetry = client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1}

// TestSweepRetryPreAck: a submission refused with overloaded executed
// nothing, so the client must resubmit under its retry policy and the
// second acceptance must stream to completion.
func TestSweepRetryPreAck(t *testing.T) {
	imp, sock := startSweepImpostor(t, func(n int, conn net.Conn, req serve.Request) {
		if n == 1 {
			writeFrame(conn, serve.Response{V: 1, ID: req.ID, OK: false,
				Error: &serve.ErrorInfo{Code: serve.CodeOverloaded, Message: "busy"}})
			return
		}
		sweepAck(conn, req.ID, 4, 2)
		sweepChunkFrame(conn, req.ID, 0, 2)
		sweepChunkFrame(conn, req.ID, 1, 2)
		writeFrame(conn, serve.Response{V: 1, ID: req.ID, OK: true,
			SweepDone: &serve.SweepDone{Chunks: 2, Routed: 4}})
	})
	c, err := client.DialRetry(bg, "unix", sock, testRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	_, done, err := c.Sweep(bg, "t", serve.SweepParams{Count: 4}, nil)
	if err != nil {
		t.Fatalf("sweep after pre-ack overloaded: %v", err)
	}
	if done.Routed != 4 {
		t.Fatalf("done %+v, want 4 routed", done)
	}
	if got := imp.submissions.Load(); got != 2 {
		t.Fatalf("server saw %d submissions, want 2 (one refused, one served)", got)
	}
}

// TestSweepRetryMidStream is the regression test for non-idempotent
// resubmission: once the server has acked a sweep, pairs are being
// routed (adaptive state advances), so a mid-stream transport failure
// must surface as an error WITHOUT the client resubmitting — even
// under a retry policy that would happily redial for idempotent ops.
func TestSweepRetryMidStream(t *testing.T) {
	imp, sock := startSweepImpostor(t, func(n int, conn net.Conn, req serve.Request) {
		sweepAck(conn, req.ID, 4, 2)
		sweepChunkFrame(conn, req.ID, 0, 2)
		conn.Close() // die mid-stream, after the point of no return
	})
	c, err := client.DialRetry(bg, "unix", sock, testRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	start, _, err := c.Sweep(bg, "t", serve.SweepParams{Count: 4}, nil)
	if err == nil {
		t.Fatal("mid-stream disconnect reported no error")
	}
	if start.TotalPairs != 4 {
		t.Fatalf("ack not surfaced alongside the error: %+v", start)
	}
	if got := imp.submissions.Load(); got != 1 {
		t.Fatalf("server saw %d submissions, want exactly 1 (no resubmit after ack)", got)
	}
	// The client is still usable for idempotent ops: those DO redial.
	if _, err := c.Do(bg, serve.Request{Op: serve.OpHealth}); err != nil {
		t.Fatalf("health after failed sweep: %v", err)
	}
	if got := imp.submissions.Load(); got != 1 {
		t.Fatalf("redial resubmitted the sweep: %d submissions", got)
	}
}
