package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// bg is the default context for calls whose cancellation is not under
// test (the context-behavior tests build their own).
var bg = context.Background()

// The package shares one server (loading a path DB dominates test
// time); tests that mutate server lifecycle start their own.
var (
	testSock string
	testSrv  *serve.Server
	testKey  string
	testSw   int
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "jfserve-test")
	if err != nil {
		panic(err)
	}
	testSock = filepath.Join(dir, "jfserve.sock")
	l, err := net.Listen("unix", testSock)
	if err != nil {
		panic(err)
	}
	testSrv = serve.NewServer(serve.Options{})
	done := make(chan error, 1)
	go func() { done <- testSrv.Serve(l) }()
	res, err := testSrv.LoadTopology(serve.TopoParams{Topo: "small", K: 4})
	if err != nil {
		panic(err)
	}
	testKey, testSw = res.Key, res.Switches

	code := m.Run()
	testSrv.Stop()
	if err := <-done; err != nil {
		panic(err)
	}
	os.RemoveAll(dir)
	os.Exit(code)
}

func dial(t *testing.T) *client.Client {
	t.Helper()
	c, err := client.Dial(bg, "unix", testSock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// rawConn sends hand-built frames, for the cases a correct client
// cannot produce.
func rawConn(t *testing.T) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("unix", testSock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), serve.MaxFrameBytes)
	return conn, sc
}

func rawRequest(t *testing.T, conn net.Conn, sc *bufio.Scanner, frame string) serve.Response {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", frame); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response to %q: %v", frame, sc.Err())
	}
	var resp serve.Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad response frame %q: %v", sc.Bytes(), err)
	}
	return resp
}

func wantCode(t *testing.T, err error, code string) {
	t.Helper()
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got error %v, want RemoteError %s", err, code)
	}
	if re.Code != code {
		t.Fatalf("got code %s (%s), want %s", re.Code, re.Message, code)
	}
}

func TestRouteRoundTrip(t *testing.T) {
	c := dial(t)
	r, err := c.Route(bg, testKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Path) < 2 || r.Path[0] != 0 || r.Path[len(r.Path)-1] != 1 {
		t.Fatalf("path %v does not connect 0->1", r.Path)
	}
	if r.Hops != len(r.Path)-1 {
		t.Fatalf("hops %d for path of %d nodes", r.Hops, len(r.Path))
	}
}

func TestRoutesBatchRoundTrip(t *testing.T) {
	c := dial(t)
	pairs := [][2]int32{{0, 1}, {2, 3}, {5, 5}, {4, 9}}
	br, err := c.RoutesBatch(bg, testKey, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Entries) != len(pairs) {
		t.Fatalf("got %d entries for %d pairs", len(br.Entries), len(pairs))
	}
	if br.Routed != 3 {
		t.Fatalf("routed %d, want 3 (the self pair must fail)", br.Routed)
	}
	if br.Entries[2].Err != serve.CodeBadPair || br.Entries[2].Route != nil {
		t.Fatalf("self-pair entry = %+v, want err %s", br.Entries[2], serve.CodeBadPair)
	}
	for i, e := range []int{0, 1, 3} {
		ent := br.Entries[e]
		if ent.Route == nil {
			t.Fatalf("entry %d: no route (err %s)", e, ent.Err)
		}
		want := pairs[e]
		p := ent.Route.Path
		if p[0] != want[0] || p[len(p)-1] != want[1] {
			t.Fatalf("entry %d: path %v does not connect %v", i, p, want)
		}
	}
}

func TestEstimateRoundTrip(t *testing.T) {
	c := dial(t)
	est, err := c.Estimate(bg, testKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Candidates < 1 || est.Candidates > 4 {
		t.Fatalf("candidates %d outside [1, k=4]", est.Candidates)
	}
	if est.MinHops < 1 || est.AvgHops < float64(est.MinHops) {
		t.Fatalf("hops summary inconsistent: min %d avg %v", est.MinHops, est.AvgHops)
	}
	if est.MaxShare < 1 || est.Throughput <= 0 || est.Throughput > 1 {
		t.Fatalf("estimate out of range: max_share %d throughput %v", est.MaxShare, est.Throughput)
	}
	if est.MaxShare == 1 && est.Throughput != 1 {
		t.Fatalf("disjoint set must score exactly 1.0, got %v", est.Throughput)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	c := dial(t)
	if _, err := c.Route(bg, testKey, 1, 2); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 1 || st.RouteLookups < 1 || st.QPS <= 0 {
		t.Fatalf("stats counters empty after traffic: %+v", st)
	}
	if st.PerOp[serve.OpRoute] < 1 {
		t.Fatalf("per-op route count %d, want >= 1", st.PerOp[serve.OpRoute])
	}
	if st.Latency.Count < 1 {
		t.Fatalf("latency histogram empty: %+v", st.Latency)
	}
	found := false
	for _, topo := range st.Topos {
		if topo.Key == testKey {
			found = true
			if topo.K != 4 || topo.Switches != testSw {
				t.Fatalf("topo info mismatch: %+v", topo)
			}
		}
	}
	if !found {
		t.Fatalf("stats does not list the loaded topology %s", testKey)
	}
}

func TestTopoLoadEvict(t *testing.T) {
	c := dial(t)
	// Distinct seed → distinct key, so this test owns its topology.
	p := serve.TopoParams{Topo: "small", K: 4, Seed: 7, PairSample: 20}
	res, err := c.TopoLoad(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 20 || res.AlreadyLoaded {
		t.Fatalf("first load = %+v, want 20 fresh pairs", res)
	}
	again, err := c.TopoLoad(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if !again.AlreadyLoaded || again.Key != res.Key {
		t.Fatalf("reload = %+v, want already_loaded with key %s", again, res.Key)
	}
	if err := c.TopoEvict(bg, res.Key); err != nil {
		t.Fatal(err)
	}
	wantCode(t, c.TopoEvict(bg, res.Key), serve.CodeUnknownTopo)
}

func TestMalformedFrame(t *testing.T) {
	conn, sc := rawConn(t)
	resp := rawRequest(t, conn, sc, `{"v":1,"op":`)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadJSON {
		t.Fatalf("got %+v, want %s", resp, serve.CodeBadJSON)
	}
	// The connection survives a bad frame.
	resp = rawRequest(t, conn, sc, `{"v":1,"id":"after","op":"stats"}`)
	if !resp.OK || resp.ID != "after" {
		t.Fatalf("connection unusable after bad frame: %+v", resp)
	}
}

func TestUnknownOp(t *testing.T) {
	conn, sc := rawConn(t)
	resp := rawRequest(t, conn, sc, `{"v":1,"id":"x","op":"fly"}`)
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeUnknownOp {
		t.Fatalf("got %+v, want %s", resp, serve.CodeUnknownOp)
	}
	if resp.ID != "x" {
		t.Fatalf("error response dropped the request id: %+v", resp)
	}
}

func TestBadVersion(t *testing.T) {
	conn, sc := rawConn(t)
	for _, frame := range []string{
		`{"v":2,"op":"stats"}`,
		`{"op":"stats"}`, // missing v is not v1
	} {
		resp := rawRequest(t, conn, sc, frame)
		if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadVersion {
			t.Fatalf("%s: got %+v, want %s", frame, resp, serve.CodeBadVersion)
		}
	}
}

func TestOversizedBatch(t *testing.T) {
	c := dial(t)
	pairs := make([][2]int32, serve.MaxBatchPairs+1)
	for i := range pairs {
		pairs[i] = [2]int32{0, 1}
	}
	_, err := c.RoutesBatch(bg, testKey, pairs)
	wantCode(t, err, serve.CodeBatchTooLarge)

	_, err = c.RoutesBatch(bg, testKey, nil)
	wantCode(t, err, serve.CodeBadRequest)
}

func TestUnloadedTopology(t *testing.T) {
	c := dial(t)
	_, err := c.Route(bg, "no-such-key", 0, 1)
	wantCode(t, err, serve.CodeUnknownTopo)
	_, err = c.RoutesBatch(bg, "no-such-key", [][2]int32{{0, 1}})
	wantCode(t, err, serve.CodeUnknownTopo)
	_, err = c.Estimate(bg, "no-such-key", 0, 1)
	wantCode(t, err, serve.CodeUnknownTopo)
}

func TestBadPair(t *testing.T) {
	c := dial(t)
	_, err := c.Route(bg, testKey, 3, 3)
	wantCode(t, err, serve.CodeBadPair)
	_, err = c.Route(bg, testKey, 0, int32(testSw))
	wantCode(t, err, serve.CodeBadPair)
	_, err = c.Route(bg, testKey, -1, 1)
	wantCode(t, err, serve.CodeBadPair)
	_, err = c.Estimate(bg, testKey, 5, 5)
	wantCode(t, err, serve.CodeBadPair)
}

func TestMissingFields(t *testing.T) {
	conn, sc := rawConn(t)
	for _, frame := range []string{
		`{"v":1,"op":"route","topo":"k"}`,            // no src/dst
		`{"v":1,"op":"route","topo":"k","src":0}`,    // no dst
		`{"v":1,"op":"estimate","topo":"k","dst":1}`, // no src
		`{"v":1,"op":"topo-load"}`,                   // no params
		`{"v":1,"op":"topo-evict"}`,                  // no topo
		`{"v":1,"op":"routes-batch","topo":"k"}`,     // no pairs
	} {
		resp := rawRequest(t, conn, sc, frame)
		if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadRequest {
			t.Fatalf("%s: got %+v, want %s", frame, resp, serve.CodeBadRequest)
		}
	}
}

func TestBadTopoParams(t *testing.T) {
	c := dial(t)
	for _, p := range []serve.TopoParams{
		{Topo: "galactic"},
		{N: -3, X: 4, Y: 2},
		{Topo: "small", Selector: "nope"},
		{Topo: "small", Mechanism: "nope"},
		{Topo: "small", Estimator: "nope"},
		{Topo: "small", PairSample: -1},
	} {
		_, err := c.TopoLoad(bg, p)
		wantCode(t, err, serve.CodeBadRequest)
	}
}

func TestPairNotFoundOnSampledTopo(t *testing.T) {
	c := dial(t)
	res, err := c.TopoLoad(bg, serve.TopoParams{Topo: "small", K: 4, Seed: 11, PairSample: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.TopoEvict(bg, res.Key)
	notFound := 0
	for src := int32(0); src < int32(res.Switches) && notFound == 0; src++ {
		for dst := src + 1; dst < int32(res.Switches); dst++ {
			_, err := c.Route(bg, res.Key, src, dst)
			if err == nil {
				continue
			}
			var re *client.RemoteError
			if !errors.As(err, &re) {
				t.Fatal(err)
			}
			if re.Code != serve.CodePairNotFound {
				t.Fatalf("absent pair %d->%d: code %s, want %s", src, dst, re.Code, serve.CodePairNotFound)
			}
			notFound++
			break
		}
	}
	if notFound == 0 {
		t.Fatal("a 5-pair sample left no absent pair to probe")
	}
}

func TestFrameTooLarge(t *testing.T) {
	conn, sc := rawConn(t)
	if _, err := conn.Write([]byte(strings.Repeat("a", serve.MaxFrameBytes+2) + "\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response to oversized frame: %v", sc.Err())
	}
	var resp serve.Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeFrameTooLarge {
		t.Fatalf("got %+v, want %s", resp, serve.CodeFrameTooLarge)
	}
	// The frame boundary is lost, so the server must close the connection.
	if sc.Scan() {
		t.Fatalf("connection still open after oversized frame: %q", sc.Bytes())
	}
}

// TestWireFieldNames locks the JSON field names documented in
// docs/SERVICE.md: a renamed Go field must fail here, not in a client.
func TestWireFieldNames(t *testing.T) {
	conn, sc := rawConn(t)
	if _, err := fmt.Fprintf(conn, `{"v":1,"id":"w","op":"route","topo":%q,"src":0,"dst":1}`+"\n", testKey); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	var generic map[string]any
	if err := json.Unmarshal(sc.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"v", "id", "ok", "route"} {
		if _, ok := generic[field]; !ok {
			t.Fatalf("route response lacks documented field %q: %s", field, sc.Bytes())
		}
	}
	route := generic["route"].(map[string]any)
	for _, field := range []string{"path", "index", "hops"} {
		if _, ok := route[field]; !ok {
			t.Fatalf("route payload lacks documented field %q: %s", field, sc.Bytes())
		}
	}
}

// TestShutdownDrain verifies Stop lets an in-flight stream finish
// cleanly: every response received before the connection closes is
// complete, Serve returns nil, and the listener stops accepting.
func TestShutdownDrain(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "drain.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := client.Dial(bg, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(bg); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	first := make(chan struct{})
	var served int
	go func() {
		defer close(stop)
		for {
			st, err := c.Stats(bg)
			if err != nil {
				return // the connection closed mid-stream; fine
			}
			if st.Requests < 1 {
				t.Error("drained response is incomplete")
				return
			}
			if served++; served == 1 {
				close(first)
			}
		}
	}()
	<-first // Stop lands while the request stream is in flight
	srv.Stop()
	<-stop
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Stop, want nil", err)
	}
	if served < 1 {
		t.Fatal("no request completed before shutdown")
	}
	if _, err := net.Dial("unix", sock); err == nil {
		t.Fatal("listener still accepting after Stop")
	}
}

// TestConcurrentBatches hammers routes-batch from many clients at once;
// under -race this is the serving path's data-race gate.
func TestConcurrentBatches(t *testing.T) {
	const clients = 8
	const batches = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(bg, "unix", testSock)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			pairs := make([][2]int32, 64)
			for b := 0; b < batches; b++ {
				for j := range pairs {
					s := int32((i*31 + b*7 + j) % testSw)
					d := int32((s + 1 + int32(j%10)) % int32(testSw))
					if d == s {
						d = (d + 1) % int32(testSw)
					}
					pairs[j] = [2]int32{s, d}
				}
				br, err := c.RoutesBatch(bg, testKey, pairs)
				if err != nil {
					errs <- err
					return
				}
				if br.Routed != len(pairs) {
					errs <- fmt.Errorf("client %d: routed %d of %d", i, br.Routed, len(pairs))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
