package serve_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/serve"
)

// TestWarmCacheHit pins the jftopo → jfserve workflow: a path cache
// warmed through the experiment harness (what `jftopo -warm-paths`
// calls) must produce a cache hit when the daemon loads the same
// (-seed, selector, k) topology — i.e. the two sides derive identical
// graphs and path DBs from one experiment seed.
func TestWarmCacheHit(t *testing.T) {
	dir := t.TempDir()
	params, err := jellyfish.ByName("small")
	if err != nil {
		t.Fatal(err)
	}
	err = exp.WarmPathCache(
		[]jellyfish.Params{params},
		[]ksp.Algorithm{ksp.REDKSP},
		exp.Scale{Seed: 3, K: 4, TopoSamples: 1, PathCache: dir},
	)
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.NewServer(serve.Options{PathCache: dir})
	res, err := srv.LoadTopology(serve.TopoParams{
		Topo: "small", Selector: "rEDKSP", K: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatalf("warmed cache missed: %+v (seed derivation diverged from the experiment harness)", res)
	}
	if res.Pairs != params.N*(params.N-1) {
		t.Fatalf("cache-loaded %d pairs, want all %d", res.Pairs, params.N*(params.N-1))
	}

	// A different sample index is a different graph — it must not alias.
	other, err := srv.LoadTopology(serve.TopoParams{
		Topo: "small", Selector: "rEDKSP", K: 4, Seed: 3, TopoSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Key == res.Key || other.CacheHit {
		t.Fatalf("sample 1 aliased sample 0: %+v", other)
	}
}
