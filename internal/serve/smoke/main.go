// Command smoke is the jfserve gate run by `make check`: it starts an
// in-process server on a temp Unix socket, loads the small topology,
// exercises every protocol op through the Go client plus one raw-frame
// error case, and verifies a clean drain on Stop. It exits non-zero on
// the first mismatch, so the gate fails loudly rather than flakily.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve smoke:", err)
		os.Exit(1)
	}
	fmt.Println("serve smoke: ok")
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dir, err := os.MkdirTemp("", "jfserve-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "jfserve.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		return err
	}
	srv := serve.NewServer(serve.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := client.Dial(ctx, "unix", sock)
	if err != nil {
		return err
	}
	defer c.Close()

	// Health must answer before any topology is warm (ready, zero topos).
	if h, err := c.Health(ctx); err != nil {
		return fmt.Errorf("health: %w", err)
	} else if !h.Ready || h.Topos != 0 {
		return fmt.Errorf("health before load: %+v, want ready with 0 topos", h)
	}

	topo, err := c.TopoLoad(ctx, serve.TopoParams{Topo: "small", K: 4, PairSample: 200})
	if err != nil {
		return fmt.Errorf("topo-load: %w", err)
	}
	if topo.Pairs != 200 || topo.K != 4 {
		return fmt.Errorf("topo-load: got %d pairs k=%d, want 200 pairs k=4", topo.Pairs, topo.K)
	}

	// Route a stored pair: topo-load's sample is seeded, so probe until a
	// stored pair answers (absent pairs must come back pair-not-found).
	var routedOnce bool
	for src := int32(0); src < int32(topo.Switches) && !routedOnce; src++ {
		for dst := int32(0); dst < int32(topo.Switches); dst++ {
			if src == dst {
				continue
			}
			r, err := c.Route(ctx, topo.Key, src, dst)
			if err == nil {
				if r.Hops < 1 || len(r.Path) != r.Hops+1 {
					return fmt.Errorf("route: inconsistent path %v hops %d", r.Path, r.Hops)
				}
				if est, err := c.Estimate(ctx, topo.Key, src, dst); err != nil {
					return fmt.Errorf("estimate: %w", err)
				} else if est.Throughput <= 0 {
					return fmt.Errorf("estimate: non-positive throughput %v", est.Throughput)
				}
				if br, err := c.RoutesBatch(ctx, topo.Key, [][2]int32{{src, dst}, {src, dst}}); err != nil {
					return fmt.Errorf("routes-batch: %w", err)
				} else if br.Routed != 2 {
					return fmt.Errorf("routes-batch: routed %d of 2", br.Routed)
				}
				routedOnce = true
				break
			}
			var re *client.RemoteError
			if !asRemote(err, &re) || re.Code != serve.CodePairNotFound {
				return fmt.Errorf("route %d->%d: %w", src, dst, err)
			}
		}
	}
	if !routedOnce {
		return fmt.Errorf("no stored pair routed")
	}

	// Raw frame: a bad version must yield the stable bad-version code.
	raw, err := net.Dial("unix", sock)
	if err != nil {
		return err
	}
	defer raw.Close()
	fmt.Fprintf(raw, "{\"v\":99,\"id\":\"x\",\"op\":\"stats\"}\n")
	sc := bufio.NewScanner(raw)
	if !sc.Scan() {
		return fmt.Errorf("raw frame: no response: %v", sc.Err())
	}
	var resp serve.Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return fmt.Errorf("raw frame: %w", err)
	}
	if resp.OK || resp.Error == nil || resp.Error.Code != serve.CodeBadVersion {
		return fmt.Errorf("raw frame: got %+v, want %s", resp, serve.CodeBadVersion)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.Requests == 0 || stats.Latency.Count == 0 {
		return fmt.Errorf("stats: empty after traffic: %+v", stats)
	}
	if h, err := c.Health(ctx); err != nil {
		return fmt.Errorf("health: %w", err)
	} else if h.Topos != 1 || h.Shed != 0 || h.Panics != 0 {
		return fmt.Errorf("health after load: %+v, want 1 topo and clean counters", h)
	}
	if err := c.TopoEvict(ctx, topo.Key); err != nil {
		return fmt.Errorf("topo-evict: %w", err)
	}

	srv.Stop()
	if err := <-done; err != nil {
		return fmt.Errorf("serve returned: %w", err)
	}
	return nil
}

func asRemote(err error, target **client.RemoteError) bool {
	re, ok := err.(*client.RemoteError)
	if ok {
		*target = re
	}
	return ok
}
