package model

import (
	"math"
	"sort"

	"repro/internal/jellyfish"
	"repro/internal/par"
	"repro/internal/traffic"
)

// LoadStats summarizes how evenly a (pattern, path set) combination
// spreads sub-flows over the network links — the load-imbalance story
// behind the paper's Section III analysis, made directly measurable.
// Loads count sub-flow traversals per directed switch-to-switch link
// (terminal channels excluded: their load is fixed by the pattern, not
// the path selection).
type LoadStats struct {
	// Links is the number of directed switch links.
	Links int
	// Mean and Max are the mean and maximum link loads.
	Mean, Max float64
	// StdDev is the population standard deviation of link loads.
	StdDev float64
	// P99 is the 99th percentile link load.
	P99 float64
	// Top1Share is the fraction of all traversals carried by the most
	// loaded 1% of links — near 0.01 for perfect balance.
	Top1Share float64
	// Unused is the number of links carrying no sub-flow at all.
	Unused int
}

// LinkLoads computes per-directed-link sub-flow counts for the pattern
// under the provider's path sets.
func LinkLoads(topo *jellyfish.Topology, db PathProvider, pat traffic.Pattern, workers int) []int64 {
	g := topo.G
	loads := make([]int64, g.NumDirectedLinks())
	par.MapReduce(len(pat.Flows), workers,
		func() []int64 { return make([]int64, len(loads)) },
		func(i int, local []int64) {
			f := pat.Flows[i]
			s, d := topo.SwitchOf(f.Src), topo.SwitchOf(f.Dst)
			for _, p := range subflowsOf(db, s, d) {
				for h := 0; h+1 < len(p); h++ {
					local[g.LinkID(p[h], p[h+1])]++
				}
			}
		},
		func(local []int64) {
			for i, v := range local {
				loads[i] += v
			}
		})
	return loads
}

// AnalyzeLoads reduces a load vector to LoadStats.
func AnalyzeLoads(loads []int64) LoadStats {
	st := LoadStats{Links: len(loads)}
	if len(loads) == 0 {
		return st
	}
	var sum, sumSq float64
	var total int64
	for _, l := range loads {
		v := float64(l)
		sum += v
		sumSq += v * v
		total += l
		if v > st.Max {
			st.Max = v
		}
		if l == 0 {
			st.Unused++
		}
	}
	n := float64(len(loads))
	st.Mean = sum / n
	st.StdDev = math.Sqrt(sumSq/n - st.Mean*st.Mean)

	sorted := append([]int64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P99 = float64(sorted[(len(sorted)*99)/100])
	if total > 0 {
		topN := len(sorted) / 100
		if topN < 1 {
			topN = 1
		}
		var topSum int64
		for _, l := range sorted[len(sorted)-topN:] {
			topSum += l
		}
		st.Top1Share = float64(topSum) / float64(total)
	}
	return st
}

// LoadImbalance is a convenience: LinkLoads followed by AnalyzeLoads.
func LoadImbalance(topo *jellyfish.Topology, db PathProvider, pat traffic.Pattern, workers int) LoadStats {
	return AnalyzeLoads(LinkLoads(topo, db, pat, workers))
}
