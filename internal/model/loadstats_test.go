package model

import (
	"testing"

	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

func TestAnalyzeLoadsBasics(t *testing.T) {
	st := AnalyzeLoads([]int64{0, 2, 2, 4})
	if st.Links != 4 || st.Mean != 2 || st.Max != 4 || st.Unused != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StdDev < 1.4 || st.StdDev > 1.5 { // population stddev of {0,2,2,4} is sqrt(2)
		t.Fatalf("stddev = %v", st.StdDev)
	}
}

func TestAnalyzeLoadsEmpty(t *testing.T) {
	if st := AnalyzeLoads(nil); st.Links != 0 || st.Max != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestLinkLoadsCountSubflows(t *testing.T) {
	topo := twoSwitch(1)
	db := dbFor(t, topo, ksp.KSP, 1)
	pat := traffic.Pattern{NumTerminals: 2, Flows: []traffic.Flow{{Src: 0, Dst: 1}}}
	loads := LinkLoads(topo, db, pat, 1)
	if len(loads) != 2 { // 0->1 and 1->0
		t.Fatalf("links = %d", len(loads))
	}
	if loads[topo.G.LinkID(0, 1)] != 1 || loads[topo.G.LinkID(1, 0)] != 0 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestEdgeDisjointBalancesBetterThanKSP(t *testing.T) {
	// The crux of the paper's Section III: rEDKSP spreads sub-flows more
	// evenly than vanilla KSP. Compare max link load over several shift
	// patterns.
	topo := jellyTopo(t)
	dbK := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 4}, 3, 0)
	dbR := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 3, 0)
	rng := xrand.New(31)
	var maxK, maxR float64
	for i := 0; i < 6; i++ {
		pat := traffic.RandomShift(topo.NumTerminals(), rng)
		maxK += LoadImbalance(topo, dbK, pat, 0).Max
		maxR += LoadImbalance(topo, dbR, pat, 0).Max
	}
	if maxR >= maxK {
		t.Fatalf("rEDKSP max load %v not below KSP %v", maxR/6, maxK/6)
	}
}

func TestLoadStatsDeterministic(t *testing.T) {
	topo := jellyTopo(t)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.RKSP, K: 4}, 5, 0)
	pat := traffic.RandomPermutation(topo.NumTerminals(), xrand.New(2))
	a := LoadImbalance(topo, db, pat, 1)
	b := LoadImbalance(topo, db, pat, 4)
	if a != b {
		t.Fatalf("load stats differ across worker counts: %+v vs %+v", a, b)
	}
}
