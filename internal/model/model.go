// Package model implements the multi-path throughput model the paper uses
// for Figures 4-6 (Equation 1, after Yuan et al. SC'13).
//
// Every flow (a source terminal/destination terminal pair of the traffic
// pattern) is realized as k MPTCP-like sub-flows, one per path of the
// pair's path set. The model counts, for every link, how many sub-flows
// cross it; a link used X times has load X (unit capacities). Each
// sub-flow's rate is the reciprocal of the maximum load along its path,
// and a flow's throughput is the sum of its sub-flow rates:
//
//	T(s,d) = Σ_{n=1..k} 1 / max_{l ∈ path_n(s,d)} load_l
//
// Links include the terminal injection and ejection channels, so a
// terminal's aggregate throughput is naturally normalized: 1.0 means the
// terminal's flows move at full link speed, which is how the paper's
// figures present results.
package model

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/par"
	"repro/internal/paths"
	"repro/internal/traffic"
)

// Result reports modeled throughput for one (topology, path set, pattern)
// combination.
type Result struct {
	// Pattern names the traffic pattern.
	Pattern string
	// Selector names the path-selection scheme.
	Selector string
	// PerFlow holds T(s,d) for every flow, in pattern order.
	PerFlow []float64
	// PerNode holds the per-terminal normalized throughput: the sum of
	// T over the flows the terminal sources (the quantity in Figures 4-6).
	// Terminals that source no flow hold NaN-free zero and are excluded
	// from MeanNode.
	PerNode []float64
	// MeanFlow is the mean of PerFlow.
	MeanFlow float64
	// MeanNode is the mean of PerNode over sending terminals.
	MeanNode float64
	// MinNode and MaxNode are extremes over sending terminals.
	MinNode, MaxNode float64
}

// PathProvider supplies the path set per ordered switch pair; *paths.DB is
// the canonical implementation.
type PathProvider interface {
	Paths(s, d graph.NodeID) []graph.Path
	Config() ksp.Config
}

// subflowsOf returns the paths used for a flow between the two switches,
// resolved through the provider (nil for same-switch flows, which use no
// network links).
func subflowsOf(db PathProvider, s, d graph.NodeID) []graph.Path {
	if s == d {
		return nil
	}
	return db.Paths(s, d)
}

// Throughput evaluates the model for one traffic pattern over the path DB.
// workers <= 0 selects the default pool size.
func Throughput(topo *jellyfish.Topology, db PathProvider, pat traffic.Pattern, workers int) Result {
	if pat.NumTerminals != topo.NumTerminals() {
		panic(fmt.Sprintf("model: pattern has %d terminals, topology %d",
			pat.NumTerminals, topo.NumTerminals()))
	}
	g := topo.G
	nLinks := g.NumDirectedLinks()
	nTerms := topo.NumTerminals()
	// Link load layout: [0, nLinks) switch links, then injection links
	// (one per terminal), then ejection links.
	loads := make([]int64, nLinks+2*nTerms)
	inj := func(t int) int { return nLinks + t }
	ej := func(t int) int { return nLinks + nTerms + t }

	// Pass 1: accumulate link usage counts in parallel.
	par.MapReduce(len(pat.Flows), workers,
		func() []int64 { return make([]int64, len(loads)) },
		func(i int, local []int64) {
			f := pat.Flows[i]
			s, d := topo.SwitchOf(f.Src), topo.SwitchOf(f.Dst)
			ps := subflowsOf(db, s, d)
			if len(ps) == 0 {
				// Same-switch flow: one sub-flow over inject+eject only.
				local[inj(f.Src)]++
				local[ej(f.Dst)]++
				return
			}
			for _, p := range ps {
				local[inj(f.Src)]++
				local[ej(f.Dst)]++
				for h := 0; h+1 < len(p); h++ {
					local[g.LinkID(p[h], p[h+1])]++
				}
			}
		},
		func(local []int64) {
			for i, v := range local {
				loads[i] += v
			}
		})

	// Pass 2: per-flow rates.
	res := Result{
		Pattern:  pat.Name,
		Selector: db.Config().Alg.String(),
		PerFlow:  make([]float64, len(pat.Flows)),
		PerNode:  make([]float64, nTerms),
	}
	par.For(len(pat.Flows), workers, func(i int) {
		f := pat.Flows[i]
		s, d := topo.SwitchOf(f.Src), topo.SwitchOf(f.Dst)
		ps := subflowsOf(db, s, d)
		if len(ps) == 0 {
			maxLoad := loads[inj(f.Src)]
			if l := loads[ej(f.Dst)]; l > maxLoad {
				maxLoad = l
			}
			res.PerFlow[i] = 1 / float64(maxLoad)
			return
		}
		var t float64
		for _, p := range ps {
			maxLoad := loads[inj(f.Src)]
			if l := loads[ej(f.Dst)]; l > maxLoad {
				maxLoad = l
			}
			for h := 0; h+1 < len(p); h++ {
				if l := loads[g.LinkID(p[h], p[h+1])]; l > maxLoad {
					maxLoad = l
				}
			}
			t += 1 / float64(maxLoad)
		}
		res.PerFlow[i] = t
	})

	// Aggregate per node and overall.
	sends := make([]bool, nTerms)
	var flowSum float64
	for i, f := range pat.Flows {
		res.PerNode[f.Src] += res.PerFlow[i]
		sends[f.Src] = true
		flowSum += res.PerFlow[i]
	}
	if len(pat.Flows) > 0 {
		res.MeanFlow = flowSum / float64(len(pat.Flows))
	}
	var nodeSum float64
	senders := 0
	res.MinNode = -1
	for t := 0; t < nTerms; t++ {
		if !sends[t] {
			continue
		}
		v := res.PerNode[t]
		nodeSum += v
		senders++
		if res.MinNode < 0 || v < res.MinNode {
			res.MinNode = v
		}
		if v > res.MaxNode {
			res.MaxNode = v
		}
	}
	if senders > 0 {
		res.MeanNode = nodeSum / float64(senders)
	}
	if res.MinNode < 0 {
		res.MinNode = 0
	}
	return res
}

// SinglePath evaluates the model with only the first (shortest) path of
// each pair, the paper's "SP" baseline. It works by wrapping the DB in a
// one-path view.
func SinglePath(topo *jellyfish.Topology, db *paths.DB, pat traffic.Pattern, workers int) Result {
	r := Throughput(topo, &singlePathView{db}, pat, workers)
	r.Selector = "SP"
	return r
}

// singlePathView adapts paths.DB to expose only the shortest path per pair.
// It satisfies the same method set Throughput needs via embedding, so the
// Throughput implementation is reused unchanged.
type singlePathView struct{ *paths.DB }

func (v *singlePathView) Paths(s, d graph.NodeID) []graph.Path {
	ps := v.DB.Paths(s, d)
	if len(ps) == 0 {
		return nil
	}
	return ps[:1]
}
