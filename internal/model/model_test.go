package model

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// twoSwitch builds a 2-switch topology joined by one link with
// terminalsPer terminals on each switch.
func twoSwitch(terminalsPer int) *jellyfish.Topology {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	return &jellyfish.Topology{G: b.Graph(), N: 2, X: terminalsPer + 1, Y: 1}
}

func dbFor(t *testing.T, topo *jellyfish.Topology, alg ksp.Algorithm, k int) *paths.DB {
	t.Helper()
	return paths.BuildAllPairs(topo.G, ksp.Config{Alg: alg, K: k}, 1, 1)
}

func TestSingleFlowFullSpeed(t *testing.T) {
	topo := twoSwitch(1)
	db := dbFor(t, topo, ksp.KSP, 1)
	pat := traffic.Pattern{Name: "one", NumTerminals: 2, Flows: []traffic.Flow{{Src: 0, Dst: 1}}}
	r := Throughput(topo, db, pat, 1)
	if r.PerFlow[0] != 1 {
		t.Fatalf("single uncontended flow rate = %v, want 1", r.PerFlow[0])
	}
	if r.MeanNode != 1 || r.MinNode != 1 || r.MaxNode != 1 {
		t.Fatalf("node stats = %+v", r)
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	topo := twoSwitch(1)
	db := dbFor(t, topo, ksp.KSP, 1)
	pat := traffic.Pattern{NumTerminals: 2, Flows: []traffic.Flow{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}}
	r := Throughput(topo, db, pat, 1)
	for i, v := range r.PerFlow {
		if v != 1 {
			t.Fatalf("flow %d rate = %v, want 1 (directed links are independent)", i, v)
		}
	}
}

func TestSharedLinkHalvesRates(t *testing.T) {
	topo := twoSwitch(2) // terminals 0,1 on switch 0; terminals 2,3 on switch 1
	db := dbFor(t, topo, ksp.KSP, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}}}
	r := Throughput(topo, db, pat, 1)
	for i, v := range r.PerFlow {
		if v != 0.5 {
			t.Fatalf("flow %d rate = %v, want 0.5 (two flows share one link)", i, v)
		}
	}
}

func TestSameSwitchFlowBypassesNetwork(t *testing.T) {
	topo := twoSwitch(2)
	db := dbFor(t, topo, ksp.KSP, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{{Src: 0, Dst: 1}}}
	r := Throughput(topo, db, pat, 1)
	if r.PerFlow[0] != 1 {
		t.Fatalf("same-switch flow rate = %v, want 1", r.PerFlow[0])
	}
}

func TestInjectionBottleneck(t *testing.T) {
	// One terminal sending two flows: the injection link load is 2, so each
	// flow gets at most 1/2 and the node total is at most 1.
	topo := twoSwitch(2)
	db := dbFor(t, topo, ksp.KSP, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}}}
	r := Throughput(topo, db, pat, 1)
	if r.PerFlow[0] != 0.5 || r.PerFlow[1] != 0.5 {
		t.Fatalf("rates = %v, want 0.5 each", r.PerFlow)
	}
	if r.PerNode[0] != 1 {
		t.Fatalf("node 0 throughput = %v, want 1", r.PerNode[0])
	}
}

func TestMultiPathSubflowsSumOverPaths(t *testing.T) {
	// Square of switches: two edge-disjoint 2-hop paths from switch 0 to
	// switch 2. One flow with k=2: the injection link carries both
	// sub-flows (load 2), so T = 1/2 + 1/2 = 1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	topo := &jellyfish.Topology{G: b.Graph(), N: 4, X: 3, Y: 2}
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.EDKSP, K: 2}, 1, 1)
	pat := traffic.Pattern{NumTerminals: 4, Flows: []traffic.Flow{{Src: 0, Dst: 2}}}
	r := Throughput(topo, db, pat, 1)
	if r.PerFlow[0] != 1 {
		t.Fatalf("two-path flow rate = %v, want 1", r.PerFlow[0])
	}
}

func jellyTopo(t *testing.T) *jellyfish.Topology {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: 24, X: 12, Y: 8}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPerNodeBoundedByOne(t *testing.T) {
	topo := jellyTopo(t)
	n := topo.NumTerminals()
	rng := xrand.New(7)
	for _, alg := range []ksp.Algorithm{ksp.KSP, ksp.REDKSP} {
		db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: alg, K: 4}, 3, 0)
		for _, pat := range []traffic.Pattern{
			traffic.RandomPermutation(n, rng),
			traffic.RandomShift(n, rng),
			traffic.RandomX(n, 10, rng),
		} {
			r := Throughput(topo, db, pat, 0)
			if r.MeanNode <= 0 || r.MeanNode > 1+1e-9 {
				t.Fatalf("%v/%s: mean node throughput = %v", alg, pat.Name, r.MeanNode)
			}
			if r.MaxNode > 1+1e-9 {
				t.Fatalf("%v/%s: max node throughput = %v > 1", alg, pat.Name, r.MaxNode)
			}
			for i, v := range r.PerFlow {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v/%s: flow %d rate %v", alg, pat.Name, i, v)
				}
			}
		}
	}
}

func TestMultiPathBeatsSinglePath(t *testing.T) {
	// Headline result: multi-path routing consistently outperforms single
	// path routing under the model.
	topo := jellyTopo(t)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 3, 0)
	rng := xrand.New(13)
	pat := traffic.RandomShift(topo.NumTerminals(), rng)
	multi := Throughput(topo, db, pat, 0)
	single := SinglePath(topo, db, pat, 0)
	if single.Selector != "SP" {
		t.Fatalf("selector = %q", single.Selector)
	}
	if multi.MeanNode <= single.MeanNode {
		t.Fatalf("multi %v <= single %v", multi.MeanNode, single.MeanNode)
	}
}

func TestREDKSPBeatsKSPOnAverage(t *testing.T) {
	// The paper's headline path-selection result, averaged over a few
	// random shift patterns to avoid single-sample noise.
	topo := jellyTopo(t)
	dbKSP := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 4}, 3, 0)
	dbRED := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 3, 0)
	rng := xrand.New(17)
	var sumKSP, sumRED float64
	for i := 0; i < 8; i++ {
		pat := traffic.RandomShift(topo.NumTerminals(), rng)
		sumKSP += Throughput(topo, dbKSP, pat, 0).MeanNode
		sumRED += Throughput(topo, dbRED, pat, 0).MeanNode
	}
	if sumRED <= sumKSP {
		t.Fatalf("rEDKSP %.4f <= KSP %.4f over 8 shift patterns", sumRED/8, sumKSP/8)
	}
}

func TestThroughputDeterministicAcrossWorkers(t *testing.T) {
	topo := jellyTopo(t)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.RKSP, K: 4}, 5, 0)
	pat := traffic.RandomPermutation(topo.NumTerminals(), xrand.New(3))
	a := Throughput(topo, db, pat, 1)
	b := Throughput(topo, db, pat, 8)
	if a.MeanNode != b.MeanNode || a.MeanFlow != b.MeanFlow {
		t.Fatalf("results differ across worker counts: %v vs %v", a.MeanNode, b.MeanNode)
	}
}

func TestPatternSizeMismatchPanics(t *testing.T) {
	topo := jellyTopo(t)
	db := paths.BuildAllPairs(topo.G, ksp.Config{Alg: ksp.KSP, K: 2}, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on terminal count mismatch")
		}
	}()
	Throughput(topo, db, traffic.Pattern{NumTerminals: 5}, 1)
}
