// Package seeds holds the repo-wide seed derivation: how one
// experiment seed (the binaries' -seed flag) fans out into the RRG
// construction RNG and the per-selector path-DB seed. It exists so the
// experiment harness (internal/exp) and the serving daemon
// (internal/serve) derive identical topologies and path databases from
// the same -seed — which is what lets a cache warmed by
// `jftopo -warm-paths` serve `jfserve -preload` cache hits, and lets
// the daemon answer routes on the exact graph instance an experiment
// ran on. Changing a constant here invalidates every path cache and
// golden result downstream; don't.
package seeds

import (
	"repro/internal/ksp"
	"repro/internal/xrand"
)

// TopoRNG derives the RNG constructing the i-th RRG topology sample of
// an experiment seed.
func TopoRNG(seed uint64, i int) *xrand.RNG {
	return xrand.NewPair(xrand.Mix64(seed^0x70706f), uint64(i)) // "ppo"
}

// PathSeed derives the path-DB build seed for one selector on the i-th
// topology sample. Distinct selectors get distinct seeds so their
// random tie-breaks are independent.
func PathSeed(seed uint64, i int, alg ksp.Algorithm) uint64 {
	return xrand.Mix64(seed ^ uint64(i)<<8 ^ uint64(alg))
}

// StripeRNG derives the RNG stream of one routing-state stripe inside
// the serving daemon (internal/serve). The daemon shards each resident
// topology's adaptive routing state across stripes; pathSeed and the
// graph fingerprint tie every stream to the exact path DB being served,
// while the stripe index separates the per-stripe streams. Pinned by
// TestStripeRNGStability: changing this derivation silently changes
// every striped daemon's choice sequence.
func StripeRNG(pathSeed, fingerprint uint64, stripe int) *xrand.RNG {
	return xrand.NewPair(pathSeed^xrand.Mix64(fingerprint), uint64(stripe))
}
