package seeds

import "testing"

// TestStripeRNGStability pins the stripe seed derivation with golden
// first draws. The serving daemon's striped routing state consumes
// these streams; a change here silently changes every striped daemon's
// adaptive choice sequence, so a change here must be deliberate and
// must note the break in docs/SERVICE.md.
func TestStripeRNGStability(t *testing.T) {
	cases := []struct {
		pathSeed, fingerprint uint64
		stripe                int
		first, second         uint64
	}{
		{1, 0xdeadbeef, 0, 0x845bd284f0bd6b43, 0xb5149a16416bc50e},
		{1, 0xdeadbeef, 1, 0xd27078590a50987d, 0x6480fe6d19e2ee95},
		{1, 0xdeadbeef, 7, 0xdbfa7d92435263e1, 0xdce392ead1d07d8c},
		{42, 0x63, 0, 0x0decd7b0af9d5fec, 0xc697ec7de11712bc},
		{42, 0x63, 3, 0xc21ed03b172c01b3, 0xe4b71a1f74489eb7},
	}
	for _, c := range cases {
		r := StripeRNG(c.pathSeed, c.fingerprint, c.stripe)
		if got := r.Uint64(); got != c.first {
			t.Errorf("StripeRNG(%d, %#x, %d) first draw %#016x, want %#016x",
				c.pathSeed, c.fingerprint, c.stripe, got, c.first)
		}
		if got := r.Uint64(); got != c.second {
			t.Errorf("StripeRNG(%d, %#x, %d) second draw %#016x, want %#016x",
				c.pathSeed, c.fingerprint, c.stripe, got, c.second)
		}
	}

	// Distinct stripes of one topology must get distinct streams, and
	// the same stripe of topologies differing only in fingerprint too.
	if StripeRNG(1, 2, 0).Uint64() == StripeRNG(1, 2, 1).Uint64() {
		t.Error("stripes 0 and 1 share a stream")
	}
	if StripeRNG(1, 2, 0).Uint64() == StripeRNG(1, 3, 0).Uint64() {
		t.Error("fingerprints 2 and 3 share a stream")
	}
}
