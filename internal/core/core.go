// Package core is the library facade: it ties the substrate packages into
// the object a downstream user works with — a Jellyfish Network with
// multi-path routing state — and exposes the paper's contributions
// (rKSP/EDKSP/rEDKSP path selection, KSP-adaptive routing) behind a small
// API:
//
//	net, _ := core.NewNetwork(jellyfish.Medium, core.Options{
//		Selector: ksp.REDKSP, K: 8, Seed: 42,
//	})
//	ps := net.TerminalPaths(0, 1234)          // the k paths between nodes
//	q := net.PathQuality(0)                   // Tables II-IV metrics
//	r := net.ModelThroughput(pattern)         // Eq. 1 throughput model
//	sim := net.Simulate(core.SimOptions{...}) // cycle-level simulation
//	app, _ := net.ReplayWorkload(flows, core.AppOptions{})
//
// Everything is deterministic under Options.Seed.
package core

import (
	"fmt"

	"repro/internal/appsim"
	"repro/internal/flitsim"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/model"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Options configures a Network.
type Options struct {
	// Selector is the path-selection scheme. The zero value is vanilla
	// ksp.KSP; the paper's recommendation is ksp.REDKSP.
	Selector ksp.Algorithm
	// K is the number of paths per switch pair (default 8).
	K int
	// Seed makes all randomized path selection reproducible.
	Seed uint64
	// Workers bounds parallelism for bulk operations (<= 0 = GOMAXPROCS).
	Workers int
	// Precompute eagerly builds the all-pairs path database at
	// construction; otherwise paths are computed lazily on first use
	// (identical results either way).
	Precompute bool
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 8
	}
	return o
}

// Network is a Jellyfish topology with its multi-path routing state.
type Network struct {
	topo *jellyfish.Topology
	db   *paths.DB
	opts Options
}

// NewNetwork builds a fresh RRG from params and prepares path selection.
func NewNetwork(params jellyfish.Params, opts Options) (*Network, error) {
	opts = opts.withDefaults()
	topo, err := jellyfish.New(params, xrand.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return FromTopology(topo, opts)
}

// FromTopology wraps an existing topology (e.g. a custom graph or a
// specific RRG instance) with path selection state.
func FromTopology(topo *jellyfish.Topology, opts Options) (*Network, error) {
	opts = opts.withDefaults()
	if opts.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1")
	}
	cfg := ksp.Config{Alg: opts.Selector, K: opts.K}
	var db *paths.DB
	if opts.Precompute {
		db = paths.BuildAllPairs(topo.G, cfg, opts.Seed, opts.Workers)
	} else {
		db = paths.NewDB(topo.G, cfg, opts.Seed)
	}
	return &Network{topo: topo, db: db, opts: opts}, nil
}

// Topology returns the underlying Jellyfish topology.
func (n *Network) Topology() *jellyfish.Topology { return n.topo }

// PathDB returns the underlying path database.
func (n *Network) PathDB() *paths.DB { return n.db }

// Options returns the construction options (with defaults applied).
func (n *Network) Options() Options { return n.opts }

// SwitchPaths returns the k candidate paths between two switches.
func (n *Network) SwitchPaths(src, dst graph.NodeID) []graph.Path {
	return n.db.Paths(src, dst)
}

// TerminalPaths returns the k candidate switch-level paths between the
// switches hosting two terminals (nil when both share a switch).
func (n *Network) TerminalPaths(srcTerm, dstTerm int) []graph.Path {
	return n.db.Paths(n.topo.SwitchOf(srcTerm), n.topo.SwitchOf(dstTerm))
}

// PathQuality analyzes the selected paths over all ordered switch pairs
// (pairSample == 0) or a uniform sample, returning the paper's Tables
// II-IV metrics.
func (n *Network) PathQuality(pairSample int) paths.Quality {
	var prs []paths.Pair
	if pairSample > 0 {
		prs = paths.SamplePairs(n.topo.N, pairSample, xrand.New(n.opts.Seed^0x5a5a))
	} else {
		prs = paths.AllOrderedPairs(n.topo.N)
	}
	return paths.Analyze(n.topo.G, n.db.Config(), n.opts.Seed, prs, n.opts.Workers)
}

// ModelThroughput evaluates the Eq. 1 throughput model for a traffic
// pattern over this network's paths.
func (n *Network) ModelThroughput(pat traffic.Pattern) model.Result {
	return model.Throughput(n.topo, n.db, pat, n.opts.Workers)
}

// ModelThroughputSinglePath is the SP baseline of the model.
func (n *Network) ModelThroughputSinglePath(pat traffic.Pattern) model.Result {
	return model.SinglePath(n.topo, n.db, pat, n.opts.Workers)
}

// SimOptions configures a cycle-level simulation run over the network.
type SimOptions struct {
	// Mechanism is the routing mechanism (default KSP-adaptive).
	Mechanism routing.Mechanism
	// Traffic is the per-packet destination sampler (required).
	Traffic traffic.Sampler
	// InjectionRate is the offered load in [0, 1].
	InjectionRate float64
	// Seed drives the run (default: network seed).
	Seed uint64
	// Booksim-style knobs; zero values use the paper's settings.
	ChannelLatency, BufDepth, NumVCs       int
	WarmupCycles, SampleCycles, NumSamples int
	SatLatency                             float64
}

// Simulate runs one cycle-level simulation and returns its result.
func (n *Network) Simulate(o SimOptions) flitsim.Result {
	return flitsim.New(n.simConfig(o)).Run()
}

// SaturationThroughput sweeps offered load and returns the paper's
// saturation throughput metric plus the per-rate results.
func (n *Network) SaturationThroughput(o SimOptions, rates []float64) (float64, []flitsim.Result) {
	return flitsim.SaturationThroughput(n.simConfig(o), rates, n.opts.Workers)
}

func (n *Network) simConfig(o SimOptions) flitsim.Config {
	if o.Mechanism == nil {
		o.Mechanism = routing.KSPAdaptive()
	}
	if o.Seed == 0 {
		o.Seed = n.opts.Seed
	}
	return flitsim.Config{
		Topo:           n.topo,
		Paths:          n.db,
		Mechanism:      o.Mechanism,
		Traffic:        o.Traffic,
		InjectionRate:  o.InjectionRate,
		Seed:           o.Seed,
		ChannelLatency: o.ChannelLatency,
		BufDepth:       o.BufDepth,
		NumVCs:         o.NumVCs,
		WarmupCycles:   o.WarmupCycles,
		SampleCycles:   o.SampleCycles,
		NumSamples:     o.NumSamples,
		SatLatency:     o.SatLatency,
	}
}

// AppOptions configures a workload replay.
type AppOptions struct {
	// Mechanism is the per-packet choice (default KSP-adaptive).
	Mechanism routing.Mechanism
	// Seed drives the run (default: network seed).
	Seed uint64
	// PacketBytes, LinkBandwidth, BufDepth default to the paper's CODES
	// settings (1500 B, 20 GB/s, 64 packets).
	PacketBytes   int64
	LinkBandwidth float64
	BufDepth      int
}

// ReplayWorkload replays one communication phase (terminal-level sized
// flows) and returns its completion result.
func (n *Network) ReplayWorkload(flows []traffic.SizedFlow, o AppOptions) (appsim.Result, error) {
	seed := o.Seed
	if seed == 0 {
		seed = n.opts.Seed
	}
	return appsim.Run(appsim.Config{
		Topo:          n.topo,
		Paths:         n.db,
		Mechanism:     o.Mechanism,
		Flows:         flows,
		PacketBytes:   o.PacketBytes,
		LinkBandwidth: o.LinkBandwidth,
		BufDepth:      o.BufDepth,
		Seed:          seed,
	})
}
