package core

import (
	"testing"

	"repro/internal/flitsim"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

var testParams = jellyfish.Params{N: 12, X: 9, Y: 6}

func testNet(t *testing.T, opts Options) *Network {
	t.Helper()
	n, err := NewNetwork(testParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDefaults(t *testing.T) {
	n := testNet(t, Options{Seed: 1})
	o := n.Options()
	if o.Selector != ksp.KSP || o.K != 8 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestExplicitSelectorPreserved(t *testing.T) {
	for _, alg := range []ksp.Algorithm{ksp.KSP, ksp.RKSP, ksp.EDKSP, ksp.REDKSP} {
		n := testNet(t, Options{Seed: 1, Selector: alg, K: 2})
		if n.Options().Selector != alg {
			t.Fatalf("selector %v became %v", alg, n.Options().Selector)
		}
		if n.PathDB().Config().Alg != alg {
			t.Fatalf("db selector %v became %v", alg, n.PathDB().Config().Alg)
		}
	}
}

func TestTerminalAndSwitchPaths(t *testing.T) {
	n := testNet(t, Options{Seed: 2, K: 4})
	ps := n.SwitchPaths(0, 5)
	if len(ps) != 4 {
		t.Fatalf("switch paths = %d", len(ps))
	}
	// Terminals 0..2 are on switch 0 (x-y = 3).
	tp := n.TerminalPaths(0, 3*5)
	if len(tp) != 4 || tp[0].Src() != 0 || tp[0].Dst() != 5 {
		t.Fatalf("terminal paths = %v", tp)
	}
	if n.TerminalPaths(0, 1) != nil {
		t.Fatal("same-switch terminals should have nil path set")
	}
}

func TestPrecomputeEqualsLazy(t *testing.T) {
	eager := testNet(t, Options{Seed: 7, K: 4, Selector: ksp.REDKSP, Precompute: true})
	lazy := testNet(t, Options{Seed: 7, K: 4, Selector: ksp.REDKSP})
	for s := int32(0); s < 12; s += 2 {
		for d := int32(0); d < 12; d += 3 {
			if s == d {
				continue
			}
			a, b := eager.SwitchPaths(s, d), lazy.SwitchPaths(s, d)
			if len(a) != len(b) {
				t.Fatalf("%d->%d: %d vs %d", s, d, len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("%d->%d path %d differs", s, d, i)
				}
			}
		}
	}
}

func TestPathQuality(t *testing.T) {
	n := testNet(t, Options{Seed: 3, K: 4, Selector: ksp.REDKSP})
	q := n.PathQuality(0)
	if q.Pairs != 12*11 {
		t.Fatalf("pairs = %d", q.Pairs)
	}
	if q.DisjointFraction != 1 || q.MaxShare != 1 {
		t.Fatalf("rEDKSP quality = %+v", q)
	}
	qs := n.PathQuality(30)
	if qs.Pairs != 30 {
		t.Fatalf("sampled pairs = %d", qs.Pairs)
	}
}

func TestModelThroughputFacade(t *testing.T) {
	n := testNet(t, Options{Seed: 4, K: 4, Selector: ksp.REDKSP})
	pat := traffic.RandomShift(n.Topology().NumTerminals(), xrand.New(9))
	multi := n.ModelThroughput(pat)
	single := n.ModelThroughputSinglePath(pat)
	if multi.MeanNode <= 0 || multi.MeanNode > 1+1e-9 {
		t.Fatalf("multi = %v", multi.MeanNode)
	}
	if single.MeanNode >= multi.MeanNode {
		t.Fatalf("SP %v >= multi %v", single.MeanNode, multi.MeanNode)
	}
}

func TestSimulateFacade(t *testing.T) {
	n := testNet(t, Options{Seed: 5, K: 4})
	res := n.Simulate(SimOptions{
		Traffic:       traffic.Uniform{N: n.Topology().NumTerminals()},
		InjectionRate: 0.2,
	})
	if res.Delivered == 0 || res.Saturated {
		t.Fatalf("sim = %+v", res)
	}
}

func TestSaturationFacade(t *testing.T) {
	n := testNet(t, Options{Seed: 5, K: 4})
	sat, results := n.SaturationThroughput(SimOptions{
		Traffic:   traffic.Uniform{N: n.Topology().NumTerminals()},
		Mechanism: routing.KSPAdaptive(),
	}, flitsim.Rates(0.2, 1.0, 0.2))
	if len(results) != 5 || sat < 0.2 {
		t.Fatalf("sat = %v, results = %d", sat, len(results))
	}
}

func TestReplayWorkloadFacade(t *testing.T) {
	n := testNet(t, Options{Seed: 6, K: 4})
	w := traffic.Stencil(traffic.StencilConfig{
		Kind: traffic.Stencil2DNN, Ranks: n.Topology().NumTerminals(), TotalBytes: 30 * 1500,
	})
	res, err := n.ReplayWorkload(w.Apply(traffic.LinearMapping(n.Topology().NumTerminals())), AppOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 30 packets of data per rank split over 4 neighbours: 11250 bytes per
	// flow rounds up to 8 packets, so 32 packets per rank.
	if res.Packets != int64(n.Topology().NumTerminals())*32 {
		t.Fatalf("packets = %d", res.Packets)
	}
	// A nil mechanism defaults to the paper's recommendation inside
	// appsim.Run; the options struct passes it through unchanged.
	var def AppOptions
	if def.Mechanism != nil {
		t.Fatal("default app mechanism should be nil (KSP-adaptive inside appsim)")
	}
}

func TestInvalidK(t *testing.T) {
	if _, err := NewNetwork(testParams, Options{K: -1}); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestFromTopology(t *testing.T) {
	topo := jellyfish.MustNew(testParams, xrand.New(77))
	n, err := FromTopology(topo, Options{Seed: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology() != topo {
		t.Fatal("topology not preserved")
	}
	if n.PathDB().K() != 2 {
		t.Fatalf("K = %d", n.PathDB().K())
	}
}
