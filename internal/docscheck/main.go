// Command docscheck verifies that relative links in the repo's Markdown
// docs resolve to real files, so renames and doc moves fail `make
// docs-check` instead of silently breaking README.md or docs/. External
// links (http, https, mailto) and pure in-page anchors are skipped, as
// is anything inside fenced code blocks.
//
//	go run ./internal/docscheck README.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links [text](target); images share the
// syntax and are covered by the same file-exists rule.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = []string{"README.md"}
		docs, _ := filepath.Glob("docs/*.md")
		files = append(files, docs...)
	}
	broken := 0
	for _, f := range files {
		buf, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
		for _, bad := range checkFile(f, string(buf)) {
			fmt.Println(bad)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) clean\n", len(files))
}

func checkFile(name, text string) []string {
	var bad []string
	inFence := false
	for i, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor: docs/FOO.md#section checks the file.
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(name), target)
			if _, err := os.Stat(resolved); err != nil {
				bad = append(bad, fmt.Sprintf("%s:%d: broken link %q (%s)", name, i+1, m[1], resolved))
			}
		}
	}
	return bad
}
