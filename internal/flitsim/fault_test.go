package flitsim

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// singleFlow injects from one terminal to one terminal every cycle.
type singleFlow struct{ src, dst int }

func (f singleFlow) Name() string { return "single-flow" }
func (f singleFlow) Dest(src int, _ *xrand.RNG) (int, bool) {
	if src != f.src {
		return 0, false
	}
	return f.dst, true
}

// TestFaultEmptyScheduleBitIdentical is the regression acceptance
// criterion: attaching a nil or empty fault schedule must leave the
// Result bit-identical to a run without any fault configuration.
func TestFaultEmptyScheduleBitIdentical(t *testing.T) {
	topo := jelly(t, 12, 6, 4, 3)
	for _, mech := range routing.Mechanisms() {
		base := Config{
			Topo:          topo,
			Paths:         db(topo, ksp.REDKSP, 4),
			Mechanism:     mech,
			Traffic:       traffic.Uniform{N: topo.NumTerminals()},
			InjectionRate: 0.3,
			Seed:          99,
			NumSamples:    3,
		}
		ref := New(base).Run()

		withNil := base
		withNil.Faults = nil
		withNil.FaultPolicy = faults.Policy{Drop: true}
		// Fresh DB: the lazily filled path DB must not leak state between
		// runs through shared config.
		withNil.Paths = db(topo, ksp.REDKSP, 4)

		withEmpty := base
		withEmpty.Faults = faults.MustSchedule(nil)
		withEmpty.Paths = db(topo, ksp.REDKSP, 4)

		for name, cfg := range map[string]Config{"nil": withNil, "empty": withEmpty} {
			got := New(cfg).Run()
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: %s schedule changed the Result:\n got %+v\nwant %+v",
					mech.Name(), name, got, ref)
			}
		}
	}
}

// TestFaultRecoveryVsSPCollapse is the dynamic acceptance criterion: fail
// every link of one rEDKSP candidate path mid-run. Multi-path adaptive
// routing with the reroute policy must recover its delivered throughput to
// within 10% of the pre-fault window; single-path SP routing under the
// drop policy must collapse.
func TestFaultRecoveryVsSPCollapse(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(0), graph.NodeID(9)
	srcTerm := termOn(topo, srcSw)
	dstTerm := termOn(topo, dstSw)

	base := Config{
		Topo:          topo,
		Traffic:       singleFlow{src: srcTerm, dst: dstTerm},
		InjectionRate: 1.0,
		Seed:          11,
		NumSamples:    6,
	}
	// Fault fires mid-sample-2: warmup 500 + 2.5 windows of 500.
	const faultAt = 500 + 1250

	// Multi-path run: rEDKSP candidates, adaptive mechanism, graceful
	// policy; the schedule kills every link of the pair's first candidate.
	mdb := db(topo, ksp.REDKSP, 4)
	mpaths := mdb.Paths(srcSw, dstSw)
	if len(mpaths) < 2 {
		t.Fatalf("need >= 2 candidate paths, got %d", len(mpaths))
	}
	sched, err := faults.PathDown(mpaths[0], faultAt)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Paths = mdb
	multi.Mechanism = routing.KSPAdaptive()
	multi.Faults = sched

	sim, err := NewSim(multi)
	if err != nil {
		t.Fatal(err)
	}
	mres := sim.Run()
	pre, post := mres.SampleDelivered[1], mres.SampleDelivered[5]
	if pre == 0 {
		t.Fatalf("no pre-fault traffic: %+v", mres)
	}
	if float64(post) < 0.9*float64(pre) {
		t.Fatalf("multi-path did not recover: pre-fault window %d, final window %d (samples %v)",
			pre, post, mres.SampleDelivered)
	}
	if mres.FaultEvents == 0 {
		t.Fatal("schedule did not fire")
	}
	if mres.Injected != mres.Delivered+mres.Dropped+mres.InFlight {
		t.Fatalf("conservation broken: %+v", mres)
	}
	if got := sim.QueuedPackets(); got != mres.InFlight {
		t.Fatalf("QueuedPackets %d != InFlight %d", got, mres.InFlight)
	}

	// Single-path run: K=1 shortest path, drop policy, no repair; the
	// schedule kills the flow's only path.
	sdb := db(topo, ksp.KSP, 1)
	spath := sdb.Paths(srcSw, dstSw)[0]
	ssched, err := faults.PathDown(spath, faultAt)
	if err != nil {
		t.Fatal(err)
	}
	single := base
	single.Paths = sdb
	single.Mechanism = routing.SP()
	single.Faults = ssched
	single.FaultPolicy = faults.Policy{Drop: true, NoRepair: true}

	sres := New(single).Run()
	spre, spost := sres.SampleDelivered[1], sres.SampleDelivered[5]
	if spre == 0 {
		t.Fatalf("no pre-fault SP traffic: %+v", sres)
	}
	if float64(spost) > 0.1*float64(spre) {
		t.Fatalf("SP did not collapse: pre-fault window %d, final window %d (samples %v)",
			spre, spost, sres.SampleDelivered)
	}
	if sres.Dropped == 0 {
		t.Fatal("drop policy recorded no drops")
	}
	if sres.Injected != sres.Delivered+sres.Dropped+sres.InFlight {
		t.Fatalf("conservation broken: %+v", sres)
	}
}

// TestFaultRepairRecovers kills every candidate path of the observed pair
// so only the repair machinery (recompute on the failed-edge-filtered
// graph) can restore service.
func TestFaultRepairRecovers(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(2), graph.NodeID(11)
	pdb := db(topo, ksp.REDKSP, 3)
	ps := pdb.Paths(srcSw, dstSw)
	var evs []faults.Event
	seen := map[uint64]struct{}{}
	for _, p := range ps {
		for i := 0; i+1 < len(p); i++ {
			key := graph.UndirectedEdgeKey(p[i], p[i+1])
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			evs = append(evs, faults.Event{At: 500 + 1250, U: p[i], V: p[i+1]})
		}
	}
	cfg := Config{
		Topo:          topo,
		Paths:         pdb,
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       singleFlow{src: termOn(topo, srcSw), dst: termOn(topo, dstSw)},
		InjectionRate: 1.0,
		Seed:          13,
		NumSamples:    6,
		Faults:        faults.MustSchedule(evs),
	}
	res := New(cfg).Run()
	if res.PathRepairs == 0 {
		t.Fatalf("whole-set kill triggered no repair: %+v", res)
	}
	pre, post := res.SampleDelivered[1], res.SampleDelivered[5]
	if float64(post) < 0.9*float64(pre) {
		t.Fatalf("repair did not restore throughput: pre %d, final %d (samples %v)",
			pre, post, res.SampleDelivered)
	}
}

// TestFaultLinkUpRestores checks that a link-up event revives a dead path:
// with repair disabled and every candidate down, traffic stops, and after
// restoration it resumes.
func TestFaultLinkUpRestores(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	srcSw, dstSw := graph.NodeID(3), graph.NodeID(12)
	pdb := db(topo, ksp.KSP, 1)
	p := pdb.Paths(srcSw, dstSw)[0]
	var evs []faults.Event
	for i := 0; i+1 < len(p); i++ {
		evs = append(evs, faults.Event{At: 1750, U: p[i], V: p[i+1]})
		evs = append(evs, faults.Event{At: 2250, Up: true, U: p[i], V: p[i+1]})
	}
	cfg := Config{
		Topo:          topo,
		Paths:         pdb,
		Mechanism:     routing.SP(),
		Traffic:       singleFlow{src: termOn(topo, srcSw), dst: termOn(topo, dstSw)},
		InjectionRate: 1.0,
		Seed:          17,
		NumSamples:    6,
		Faults:        faults.MustSchedule(evs),
		FaultPolicy:   faults.Policy{Drop: true, NoRepair: true},
	}
	res := New(cfg).Run()
	// Sample 2 (cycles 1500-2000) brackets the failure, sample 3 the
	// restoration; the final windows must flow like the pre-fault ones.
	pre, post := res.SampleDelivered[1], res.SampleDelivered[5]
	if float64(post) < 0.9*float64(pre) {
		t.Fatalf("link-up did not restore throughput: pre %d, final %d (samples %v)",
			pre, post, res.SampleDelivered)
	}
	if res.Dropped == 0 {
		t.Fatal("expected drops while the only path was down")
	}
}

// liveOnlyMech wraps a routing.Mechanism so every choice made through it
// is audited: while faults are active, a selected path crossing a failed
// link fails the test. It exercises the real Mechanism code (the wrapped
// state does the choosing) on both the injection and reroute paths.
type liveOnlyMech struct {
	routing.Mechanism
	t *testing.T
}

func (m liveOnlyMech) NewState() routing.State {
	return liveOnlyState{inner: m.Mechanism.NewState(), name: m.Name(), t: m.t}
}

type liveOnlyState struct {
	inner routing.State
	name  string
	t     *testing.T
}

func (s liveOnlyState) Choose(v *routing.View, src, dst graph.NodeID, load routing.LoadEstimator, rng *xrand.RNG) (graph.Path, int) {
	p, idx := s.inner.Choose(v, src, dst, load, rng)
	if p != nil && v.Faults != nil && v.Faults.Active() && !v.Faults.PathAlive(p) {
		s.t.Errorf("%s selected dead path %v for %d->%d", s.name, p, src, dst)
	}
	return p, idx
}

// TestFaultMechanismsAvoidDeadPaths kills four random links mid-run and
// checks, mechanism by mechanism, that no selection made while the faults
// are active crosses a failed link: the live-candidate masks must gate
// every injection-time choice and every reroute.
func TestFaultMechanismsAvoidDeadPaths(t *testing.T) {
	topo := jelly(t, 16, 8, 6, 7)
	sched, err := faults.Random(topo.G, 4, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range append(routing.Mechanisms(), routing.SP()) {
		t.Run(mech.Name(), func(t *testing.T) {
			cfg := Config{
				Topo:          topo,
				Paths:         db(topo, ksp.REDKSP, 4),
				Mechanism:     liveOnlyMech{Mechanism: mech, t: t},
				Traffic:       traffic.Uniform{N: topo.NumTerminals()},
				InjectionRate: 0.3,
				Seed:          23,
				NumSamples:    4,
				Faults:        sched,
			}
			res := New(cfg).Run()
			if res.FaultEvents == 0 {
				t.Fatal("schedule did not fire")
			}
			if res.Delivered == 0 {
				t.Fatal("no traffic delivered")
			}
		})
	}
}

// TestFaultConfigValidation covers the error-returning constructor.
func TestFaultConfigValidation(t *testing.T) {
	topo := jelly(t, 8, 6, 4, 1)
	good := Config{
		Topo:      topo,
		Paths:     db(topo, ksp.KSP, 2),
		Mechanism: routing.SP(),
		Traffic:   traffic.Uniform{N: topo.NumTerminals()},
	}
	if _, err := NewSim(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	nonEdge := faults.Event{U: 0, V: 1}
	for v := graph.NodeID(1); int(v) < topo.G.NumNodes(); v++ {
		if !topo.G.HasEdge(0, v) {
			nonEdge.V = v
			break
		}
	}
	if topo.G.HasEdge(nonEdge.U, nonEdge.V) {
		t.Fatal("switch 0 is connected to everything; shrink y")
	}
	mutate := map[string]func(*Config){
		"no topo":        func(c *Config) { c.Topo = nil },
		"no paths":       func(c *Config) { c.Paths = nil },
		"no mechanism":   func(c *Config) { c.Mechanism = nil },
		"no traffic":     func(c *Config) { c.Traffic = nil },
		"rate < 0":       func(c *Config) { c.InjectionRate = -0.1 },
		"rate > 1":       func(c *Config) { c.InjectionRate = 1.5 },
		"neg buf":        func(c *Config) { c.BufDepth = -1 },
		"neg vcs":        func(c *Config) { c.NumVCs = -2 },
		"neg chan lat":   func(c *Config) { c.ChannelLatency = -1 },
		"neg term lat":   func(c *Config) { c.TerminalLatency = -1 },
		"neg samples":    func(c *Config) { c.NumSamples = -1 },
		"neg cycles":     func(c *Config) { c.SampleCycles = -1 },
		"neg sat":        func(c *Config) { c.SatLatency = -1 },
		"fault non-edge": func(c *Config) { c.Faults = faults.MustSchedule([]faults.Event{nonEdge}) },
	}
	for name, f := range mutate {
		c := good
		f(&c)
		if _, err := NewSim(c); err == nil {
			t.Fatalf("%s: NewSim accepted invalid config", name)
		}
	}
}

// termOn returns some terminal attached to the given switch.
func termOn(topo *jellyfish.Topology, sw graph.NodeID) int {
	for term := 0; term < topo.NumTerminals(); term++ {
		if topo.SwitchOf(term) == sw {
			return term
		}
	}
	panic("switch has no terminals")
}
