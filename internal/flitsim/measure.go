package flitsim

import (
	"repro/internal/par"
	"repro/internal/xrand"
)

// Run executes the paper's measurement protocol: WarmupCycles of warmup,
// then NumSamples windows of SampleCycles each. It returns the aggregated
// Result.
func (s *Sim) Run() Result {
	var dummyLat, dummyCnt int64
	s.advanceTo(s.clock+int64(s.cfg.WarmupCycles), false, &dummyLat, &dummyCnt)
	if s.tel != nil {
		// Mark the warmup/measurement boundary so windows.csv separates
		// warmup traffic from measured traffic.
		s.tel.Snapshot(s.clock)
	}
	res := Result{
		SampleLatencies: make([]float64, 0, s.cfg.NumSamples),
		SampleDelivered: make([]int64, 0, s.cfg.NumSamples),
	}
	offered := s.cfg.InjectionRate > 0 && s.numTerm > 0
	injectedBefore := s.injected
	for sample := 0; sample < s.cfg.NumSamples; sample++ {
		var latSum, count int64
		s.advanceTo(s.clock+int64(s.cfg.SampleCycles), true, &latSum, &count)
		if s.tel != nil {
			s.tel.Snapshot(s.clock)
		}
		res.SampleDelivered = append(res.SampleDelivered, count)
		var avg float64
		if count > 0 {
			avg = float64(latSum) / float64(count)
		} else if offered {
			// Traffic was offered but nothing got through: the network is
			// past saturation (or the pattern sends nothing, handled by
			// offered).
			res.Saturated = true
		}
		res.SampleLatencies = append(res.SampleLatencies, avg)
		if avg > s.cfg.SatLatency {
			res.Saturated = true
		}
	}
	if s.deliveredMeas > 0 {
		res.AvgLatency = float64(s.latSumMeas) / float64(s.deliveredMeas)
		res.AvgHops = float64(s.hopSumMeas) / float64(s.deliveredMeas)
	}
	// Second saturation criterion: accepted throughput visibly below
	// offered. The paper's latency threshold alone misses regimes where a
	// subset of flows starves behind full queues while the rest stay fast,
	// keeping the average latency of *delivered* packets low even though
	// source queues grow without bound.
	injectedMeas := s.injected - injectedBefore
	if !s.cfg.SaturationLatencyOnly && injectedMeas > 50 && s.deliveredMeas*10 < injectedMeas*9 {
		res.Saturated = true
	}
	measCycles := s.cfg.SampleCycles * s.cfg.NumSamples
	if measCycles > 0 && s.numTerm > 0 {
		res.DeliveredRate = float64(s.deliveredMeas) / (float64(s.numTerm) * float64(measCycles))
	}
	res.P50 = s.latPercentile(0.50)
	res.P95 = s.latPercentile(0.95)
	res.P99 = s.latPercentile(0.99)
	res.Injected = s.injected
	res.Delivered = s.delivered
	res.Dropped = s.dropped
	res.Rerouted = s.rerouted
	res.InFlight = s.injected - s.delivered - s.dropped
	res.MaxHops = s.maxHops
	if s.faults != nil {
		downs, ups, repairs := s.faults.Counters()
		res.FaultEvents = downs + ups
		res.PathRepairs = repairs
	}
	return res
}

// latPercentile reads the q-th latency percentile from the measurement
// histogram (0 if nothing was delivered).
func (s *Sim) latPercentile(q float64) float64 {
	if s.deliveredMeas == 0 {
		return 0
	}
	target := int64(q * float64(s.deliveredMeas))
	if target < 1 {
		target = 1
	}
	var cum int64
	for lat, c := range s.latHist {
		cum += c
		if cum >= target {
			return float64(lat)
		}
	}
	return float64(len(s.latHist) - 1)
}

// Step advances the clock by exactly n cycles without recording
// statistics; exported for tests and interactive exploration. The
// contract holds in both modes: event-driven runs may jump over idle
// spans internally, but Clock() always advances by exactly n and the
// conservation counters reflect everything that happened in those n
// cycles (pinned by TestStepContract).
func (s *Sim) Step(n int) {
	var a, b int64
	s.advanceTo(s.clock+int64(n), false, &a, &b)
}

// Clock returns the current simulation cycle.
func (s *Sim) Clock() int64 { return s.clock }

// Counts returns the conservation counters: packets injected, delivered,
// and still inside the network (source queues, link queues, channels,
// reroute queue). Dropped packets (fault policy) have left the network.
func (s *Sim) Counts() (injected, delivered, inFlight int64) {
	return s.injected, s.delivered, s.injected - s.delivered - s.dropped
}

// Dropped returns the packets discarded because of link failures.
func (s *Sim) Dropped() int64 { return s.dropped }

// QueuedPackets recounts every packet currently buffered or in flight, for
// conservation checking against Counts.
func (s *Sim) QueuedPackets() int64 {
	var total int64
	for i := range s.srcQueue {
		total += int64(s.srcQueue[i].len())
	}
	for _, link := range s.queues {
		for vc := range link {
			total += int64(link[vc].len())
		}
	}
	for _, slot := range s.inflight.slots {
		total += int64(len(slot))
	}
	total += int64(len(s.rerouteQ))
	return total
}

// Sweep runs one simulation per injection rate in parallel (workers <= 0
// selects the default pool) and returns the per-rate results. Each rate
// gets a seed derived from cfg.Seed and the rate index so results are
// reproducible and independent.
func Sweep(cfg Config, rates []float64, workers int) []Result {
	out := make([]Result, len(rates))
	par.For(len(rates), workers, func(i int) {
		c := cfg
		c.InjectionRate = rates[i]
		c.Seed = xrand.Mix64(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		out[i] = New(c).Run()
	})
	return out
}

// Rates builds the list {start, start+step, ...} up to and including stop
// (within 1e-9 tolerance), computed by index so float accumulation cannot
// push a rate past stop.
func Rates(start, stop, step float64) []float64 {
	var out []float64
	for i := 0; ; i++ {
		r := start + float64(i)*step
		if r > stop+1e-9 {
			break
		}
		if r > stop {
			r = stop
		}
		out = append(out, r)
	}
	return out
}

// SaturationThroughput sweeps the rates in ascending order and returns the
// paper's throughput metric: the last injection rate before the network
// saturates. If even the first rate saturates it returns 0; if none
// saturate it returns the highest rate. The per-rate results are returned
// for inspection.
func SaturationThroughput(cfg Config, rates []float64, workers int) (float64, []Result) {
	results := Sweep(cfg, rates, workers)
	sat := 0.0
	for i, r := range results {
		if r.Saturated {
			break
		}
		sat = rates[i]
	}
	return sat, results
}
