package flitsim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/graph"
)

// Mechanism selects, per packet, which of the candidate paths carries it.
// The paper's Section III-B mechanisms are all provided: SP, random,
// round-robin, vanilla-UGAL, KSP-UGAL and KSP-adaptive.
type Mechanism interface {
	// Name is the paper's name for the mechanism.
	Name() string
	// usesNonMinimal reports whether the mechanism can route over composed
	// (up to 2x diameter) paths, which widens the default VC allocation.
	usesNonMinimal() bool
	// newState builds per-simulation mutable state.
	newState(s *Sim) mechanismState
}

// mechanismState is the per-Sim instantiation of a Mechanism.
type mechanismState interface {
	choose(s *Sim, src, dst graph.NodeID, srcTerm, dstTerm int32) graph.Path
}

// MechanismByName resolves a command-line mechanism name.
func MechanismByName(name string) (Mechanism, error) {
	switch name {
	case "sp", "SP":
		return SP(), nil
	case "random", "Random":
		return Random(), nil
	case "round-robin", "roundrobin", "Round-Robin":
		return RoundRobin(), nil
	case "ugal", "vanilla-ugal", "UGAL":
		return VanillaUGAL(), nil
	case "ksp-ugal", "KSP-UGAL":
		return KSPUGAL(), nil
	case "ksp-adaptive", "KSP-adaptive":
		return KSPAdaptive(), nil
	}
	return nil, fmt.Errorf("flitsim: unknown mechanism %q", name)
}

// Mechanisms lists the paper's routing mechanisms in presentation order
// (Figures 7-10 group bars as Random, Round-Robin, UGAL, KSP-UGAL,
// KSP-adaptive).
func Mechanisms() []Mechanism {
	return []Mechanism{Random(), RoundRobin(), VanillaUGAL(), KSPUGAL(), KSPAdaptive()}
}

// pathsFor fetches the candidate set, panicking on unreachable pairs (the
// topologies here are connected by construction).
func pathsFor(s *Sim, src, dst graph.NodeID) []graph.Path {
	ps := s.cfg.Paths.Paths(src, dst)
	if len(ps) == 0 {
		panic(fmt.Sprintf("flitsim: no paths %d->%d", src, dst))
	}
	return ps
}

// faultActive reports whether any link is currently down. Mechanisms
// branch on it: the false branch is the exact pre-fault code, so a run
// with an empty (or not-yet-fired, or fully recovered) schedule consumes
// the RNG identically to a run with no fault machinery at all.
func (s *Sim) faultActive() bool { return s.faults != nil && s.faults.Active() }

// livePathsFor returns the pair's routable candidates and liveness mask
// under the current fault state: the configured candidates with dead ones
// masked off, or a repaired set when all of them died. A zero mask means
// the pair is unroutable right now and the caller must return nil.
func livePathsFor(s *Sim, src, dst graph.NodeID) ([]graph.Path, uint64) {
	return s.faults.Candidates(src, dst, s.cfg.Paths.Paths(src, dst))
}

func sameSwitch(src graph.NodeID) graph.Path { return graph.Path{src} }

// --- SP ---------------------------------------------------------------------

type spMech struct{}

// SP is single-path routing: every packet takes the pair's shortest path
// (the first path of the candidate set).
func SP() Mechanism { return spMech{} }

func (spMech) Name() string                 { return "SP" }
func (spMech) usesNonMinimal() bool         { return false }
func (spMech) newState(*Sim) mechanismState { return spState{} }

type spState struct{}

func (spState) choose(s *Sim, src, dst graph.NodeID, _, _ int32) graph.Path {
	if src == dst {
		return sameSwitch(src)
	}
	if s.faultActive() {
		// Degraded mode: the shortest *surviving* candidate.
		ps, mask := livePathsFor(s, src, dst)
		if mask == 0 {
			return nil
		}
		return ps[faults.FirstSet(mask)]
	}
	return pathsFor(s, src, dst)[0]
}

// --- Random -----------------------------------------------------------------

type randomMech struct{}

// Random picks one of the k candidate paths uniformly at random per packet.
func Random() Mechanism { return randomMech{} }

func (randomMech) Name() string                 { return "Random" }
func (randomMech) usesNonMinimal() bool         { return false }
func (randomMech) newState(*Sim) mechanismState { return randomState{} }

type randomState struct{}

func (randomState) choose(s *Sim, src, dst graph.NodeID, _, _ int32) graph.Path {
	if src == dst {
		return sameSwitch(src)
	}
	if s.faultActive() {
		ps, mask := livePathsFor(s, src, dst)
		if mask == 0 {
			return nil
		}
		return ps[faults.NthSet(mask, s.rng.IntN(faults.PopCount(mask)))]
	}
	ps := pathsFor(s, src, dst)
	return ps[s.rng.IntN(len(ps))]
}

// --- Round-robin --------------------------------------------------------------

type rrMech struct{}

// RoundRobin cycles through the k candidate paths of each switch pair in
// order, one path per packet.
func RoundRobin() Mechanism { return rrMech{} }

func (rrMech) Name() string         { return "Round-Robin" }
func (rrMech) usesNonMinimal() bool { return false }
func (rrMech) newState(*Sim) mechanismState {
	return &rrState{counters: make(map[uint64]int32)}
}

type rrState struct {
	counters map[uint64]int32
}

func (r *rrState) choose(s *Sim, src, dst graph.NodeID, _, _ int32) graph.Path {
	if src == dst {
		return sameSwitch(src)
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if s.faultActive() {
		// Keep cycling the counter but skip dead candidates: the next
		// live path at or after the counter position carries the packet.
		ps, mask := livePathsFor(s, src, dst)
		if mask == 0 {
			return nil
		}
		i := faults.NextSet(mask, int(r.counters[key])%len(ps), len(ps))
		r.counters[key] = int32((i + 1) % len(ps))
		return ps[i]
	}
	ps := pathsFor(s, src, dst)
	i := r.counters[key]
	r.counters[key] = (i + 1) % int32(len(ps))
	return ps[i]
}

// --- vanilla UGAL -------------------------------------------------------------

type ugalMech struct{ bias int }

// VanillaUGAL is the classic Universal Globally Adaptive Load-balanced
// routing applied directly to Jellyfish: per packet it compares the
// minimal path against one Valiant-style non-minimal path through a random
// intermediate switch, estimating each path's latency as (occupancy of its
// first network link) x (hop count), with no bias toward either (the
// paper's setting). The minimal path is the pair's shortest candidate; the
// non-minimal path is the concatenation of the shortest paths to and from
// the intermediate.
func VanillaUGAL() Mechanism { return ugalMech{} }

// VanillaUGALBiased is VanillaUGAL with an additive bias (in queue-cycle
// units) in favor of the minimal path: the non-minimal candidate is taken
// only when its estimate beats the minimal estimate by more than bias.
// The paper evaluates bias 0 ("no bias towards MIN or VLB"); this knob
// exists for the ablation study.
func VanillaUGALBiased(bias int) Mechanism { return ugalMech{bias: bias} }

func (ugalMech) Name() string                   { return "UGAL" }
func (ugalMech) usesNonMinimal() bool           { return true }
func (m ugalMech) newState(*Sim) mechanismState { return ugalState{bias: m.bias} }

type ugalState struct{ bias int }

func (st ugalState) choose(s *Sim, src, dst graph.NodeID, _, _ int32) graph.Path {
	if src == dst {
		return sameSwitch(src)
	}
	if s.faultActive() {
		return st.chooseDegraded(s, src, dst)
	}
	minPath := pathsFor(s, src, dst)[0]
	// Random intermediate different from both endpoints.
	n := s.g.NumNodes()
	var mid graph.NodeID
	for {
		mid = graph.NodeID(s.rng.IntN(n))
		if mid != src && mid != dst {
			break
		}
	}
	a := pathsFor(s, src, mid)[0]
	b := pathsFor(s, mid, dst)[0]
	nonMin := make(graph.Path, 0, len(a)+len(b)-1)
	nonMin = append(nonMin, a...)
	nonMin = append(nonMin, b[1:]...)
	if s.pathCost(nonMin)+st.bias < s.pathCost(minPath) {
		return nonMin
	}
	return minPath
}

// chooseDegraded is VanillaUGAL under active faults: the minimal candidate
// becomes the best surviving path, and the Valiant detour is admitted only
// when both of its legs survive (and it fits the VC budget).
func (st ugalState) chooseDegraded(s *Sim, src, dst graph.NodeID) graph.Path {
	ps, mask := livePathsFor(s, src, dst)
	if mask == 0 {
		return nil
	}
	minPath := ps[faults.FirstSet(mask)]
	n := s.g.NumNodes()
	var mid graph.NodeID
	for {
		mid = graph.NodeID(s.rng.IntN(n))
		if mid != src && mid != dst {
			break
		}
	}
	la, ma := livePathsFor(s, src, mid)
	lb, mb := livePathsFor(s, mid, dst)
	if ma == 0 || mb == 0 {
		return minPath
	}
	a, b := la[faults.FirstSet(ma)], lb[faults.FirstSet(mb)]
	nonMin := make(graph.Path, 0, len(a)+len(b)-1)
	nonMin = append(nonMin, a...)
	nonMin = append(nonMin, b[1:]...)
	if nonMin.Hops() <= s.numVC && s.pathCost(nonMin)+st.bias < s.pathCost(minPath) {
		return nonMin
	}
	return minPath
}

// --- KSP-UGAL -----------------------------------------------------------------

type kspUgalMech struct{ bias int }

// KSPUGAL restricts UGAL's non-minimal choice to the k candidate paths:
// the pair's shortest path is the minimal candidate and one random other
// path of the set is the non-minimal candidate; the packet takes the one
// with the smaller estimated latency.
func KSPUGAL() Mechanism { return kspUgalMech{} }

// KSPUGALBiased is KSPUGAL with an additive bias toward the minimal path,
// for the ablation study (the paper uses bias 0).
func KSPUGALBiased(bias int) Mechanism { return kspUgalMech{bias: bias} }

func (kspUgalMech) Name() string                   { return "KSP-UGAL" }
func (kspUgalMech) usesNonMinimal() bool           { return false }
func (m kspUgalMech) newState(*Sim) mechanismState { return kspUgalState{bias: m.bias} }

type kspUgalState struct{ bias int }

func (st kspUgalState) choose(s *Sim, src, dst graph.NodeID, _, _ int32) graph.Path {
	if src == dst {
		return sameSwitch(src)
	}
	if s.faultActive() {
		// Degraded mode: minimal = best surviving, alternative = a random
		// other survivor.
		ps, mask := livePathsFor(s, src, dst)
		if mask == 0 {
			return nil
		}
		minIdx := faults.FirstSet(mask)
		minPath := ps[minIdx]
		live := faults.PopCount(mask)
		if live == 1 {
			return minPath
		}
		alt := ps[faults.NthSet(mask, 1+s.rng.IntN(live-1))]
		if s.pathCost(alt)+st.bias < s.pathCost(minPath) {
			return alt
		}
		return minPath
	}
	ps := pathsFor(s, src, dst)
	minPath := ps[0]
	if len(ps) == 1 {
		return minPath
	}
	alt := ps[1+s.rng.IntN(len(ps)-1)]
	if s.pathCost(alt)+st.bias < s.pathCost(minPath) {
		return alt
	}
	return minPath
}

// --- KSP-adaptive ---------------------------------------------------------------

type kspAdaptiveMech struct{}

// KSPAdaptive is the paper's proposed mechanism: sample two random
// candidates from the k paths (without designating either as minimal) and
// send the packet on the one with the smaller estimated latency.
func KSPAdaptive() Mechanism { return kspAdaptiveMech{} }

func (kspAdaptiveMech) Name() string                 { return "KSP-adaptive" }
func (kspAdaptiveMech) usesNonMinimal() bool         { return false }
func (kspAdaptiveMech) newState(*Sim) mechanismState { return kspAdaptiveState{} }

type kspAdaptiveState struct{}

func (kspAdaptiveState) choose(s *Sim, src, dst graph.NodeID, _, _ int32) graph.Path {
	if src == dst {
		return sameSwitch(src)
	}
	if s.faultActive() {
		// Degraded mode: two distinct random *survivors* compete.
		ps, mask := livePathsFor(s, src, dst)
		if mask == 0 {
			return nil
		}
		live := faults.PopCount(mask)
		if live == 1 {
			return ps[faults.FirstSet(mask)]
		}
		i, j := s.rng.TwoDistinct(live)
		a, b := ps[faults.NthSet(mask, i)], ps[faults.NthSet(mask, j)]
		if s.pathCost(b) < s.pathCost(a) {
			return b
		}
		return a
	}
	ps := pathsFor(s, src, dst)
	if len(ps) == 1 {
		return ps[0]
	}
	i, j := s.rng.TwoDistinct(len(ps))
	a, b := ps[i], ps[j]
	if s.pathCost(b) < s.pathCost(a) {
		return b
	}
	return a
}
