package flitsim

import "testing"

// TestWheelScheduleBounds pins the hardened horizon checks: a delay is
// representable only inside (now, now+len(slots)], and anything outside
// panics instead of silently aliasing modulo the slot count onto the
// wrong cycle.
func TestWheelScheduleBounds(t *testing.T) {
	w := newWheel(3) // 4 slots
	n := int64(len(w.slots))
	if n != 4 {
		t.Fatalf("slots = %d, want 4", n)
	}
	w.take(10)

	// In-window delays, including the exact boundary at now+len(slots):
	// that slot was cleared by this cycle's take, so it fires at the right
	// cycle.
	for _, at := range []int64{11, 12, 13, 14} {
		w.schedule(at, arrival{pkt: int32(at)})
	}
	for at := int64(11); at <= 14; at++ {
		got := w.take(at)
		if len(got) != 1 || got[0].pkt != int32(at) {
			t.Fatalf("take(%d) = %v, want one arrival pkt=%d", at, got, at)
		}
	}

	// Past or present cycles were already taken: must panic.
	mustPanic(t, func() { w.schedule(14, arrival{}) })
	mustPanic(t, func() { w.schedule(9, arrival{}) })
	// One past the horizon window would alias onto the slot of cycle 15.
	mustPanic(t, func() { w.schedule(19, arrival{}) })
}

// TestWheelWrapAround drives the wheel far past several slot-array
// revolutions, interleaving schedules and takes, and checks every arrival
// fires at exactly its scheduled cycle.
func TestWheelWrapAround(t *testing.T) {
	w := newWheel(5) // 6 slots
	delays := []int64{1, 3, 6, 2, 5, 1, 4, 6}
	pending := map[int64][]int32{}
	next := int32(0)
	for now := int64(0); now < 100; now++ {
		got := w.take(now)
		want := pending[now]
		delete(pending, now)
		if len(got) != len(want) {
			t.Fatalf("cycle %d: %d arrivals, want %d", now, len(got), len(want))
		}
		for i := range got {
			if got[i].pkt != want[i] {
				t.Fatalf("cycle %d arrival %d: pkt %d, want %d", now, i, got[i].pkt, want[i])
			}
		}
		d := delays[now%int64(len(delays))]
		w.schedule(now+d, arrival{pkt: next})
		pending[now+d] = append(pending[now+d], next)
		next++
	}
}
