package flitsim

import (
	"math"
	"testing"

	"repro/internal/ksp"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// TestTelemetryReconciles checks the acceptance invariant for the
// telemetry layer: the exported counters must reconcile with the run's
// aggregate Result — same delivered count on the ejection links, same
// measured mean latency in the histogram, and conservation between
// injection- and ejection-side totals.
func TestTelemetryReconciles(t *testing.T) {
	topo := jelly(t, 12, 8, 5, 3)
	col := telemetry.NewCollector()
	cfg := Config{
		Topo:          topo,
		Paths:         db(topo, ksp.REDKSP, 4),
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 0.6,
		Seed:          7,
		Telemetry:     col,
	}
	sim := New(cfg)
	res := sim.Run()
	if sim.Telemetry() != col {
		t.Fatal("Telemetry() accessor does not return the attached collector")
	}

	// Delivered packets each cross exactly one ejection link.
	var ejected, injectedNet int64
	for i, li := range col.Links() {
		switch li.Kind {
		case telemetry.KindEject:
			ejected += col.Forwarded.Get(i)
		case telemetry.KindInject:
			injectedNet += col.Forwarded.Get(i)
		}
	}
	if ejected != res.Delivered {
		t.Fatalf("ejection-link flits = %d, Result.Delivered = %d", ejected, res.Delivered)
	}
	// Everything that entered the network either left or is still inside.
	if injectedNet < res.Delivered || injectedNet > res.Injected {
		t.Fatalf("injection-link flits = %d outside [Delivered=%d, Injected=%d]",
			injectedNet, res.Delivered, res.Injected)
	}

	// The latency histogram covers exactly the measured packets and
	// agrees with the aggregate mean (both are exact integer sums, so the
	// only slack is float division).
	if col.Latency.Count() == 0 {
		t.Fatal("no measured deliveries recorded")
	}
	if got, want := col.Latency.Mean(), res.AvgLatency; math.Abs(got-want) > 1e-9 {
		t.Fatalf("telemetry mean latency %v != Result.AvgLatency %v", got, want)
	}
	if got, want := col.Latency.Percentile(0.50), res.P50; got != want {
		t.Fatalf("telemetry p50 %v != Result.P50 %v", got, want)
	}

	// Per-link flit totals: every measured network hop is a forward, so
	// network forwards must be at least Delivered (paths have >= 0 hops)
	// and exactly sum(hops) + ... over all delivered plus in-flight
	// progress; check the weaker invariant that utilization is in [0,1].
	for i := range col.Links() {
		if u := col.Utilization(i); u < 0 || u > 1 {
			t.Fatalf("link %d utilization %v outside [0,1]", i, u)
		}
	}

	// Windows: one warmup boundary plus one per sample, strictly
	// increasing cycles, cumulative flits non-decreasing.
	ws := col.Windows()
	if len(ws) != 1+cfg.withDefaults().NumSamples {
		t.Fatalf("got %d windows, want %d", len(ws), 1+cfg.withDefaults().NumSamples)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].Cycle <= ws[i-1].Cycle || ws[i].Flits < ws[i-1].Flits {
			t.Fatalf("windows not monotone: %+v then %+v", ws[i-1], ws[i])
		}
	}
	// The last window's delivered count is the measured total.
	if ws[len(ws)-1].Delivered != col.Latency.Count() {
		t.Fatalf("final window delivered %d != histogram count %d",
			ws[len(ws)-1].Delivered, col.Latency.Count())
	}
}

// TestTelemetryOffIdentical checks that attaching telemetry does not
// perturb the simulation: the same seed must give bit-identical results
// with and without a collector.
func TestTelemetryOffIdentical(t *testing.T) {
	topo := jelly(t, 10, 6, 4, 5)
	base := Config{
		Topo:          topo,
		Paths:         db(topo, ksp.RKSP, 4),
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 0.5,
		Seed:          11,
	}
	plain := New(base).Run()
	withTel := base
	withTel.Telemetry = telemetry.NewCollector()
	instrumented := New(withTel).Run()
	if plain.AvgLatency != instrumented.AvgLatency ||
		plain.Delivered != instrumented.Delivered ||
		plain.Injected != instrumented.Injected ||
		plain.Saturated != instrumented.Saturated {
		t.Fatalf("telemetry perturbed the run:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
}
