package flitsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/jellyfish"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// oneShot injects exactly one packet from src to dst at cycle 0.
type oneShot struct {
	src, dst int
	fired    bool
}

func (o *oneShot) Name() string { return "one-shot" }
func (o *oneShot) Dest(src int, _ *xrand.RNG) (int, bool) {
	if src != o.src || o.fired {
		return 0, false
	}
	o.fired = true
	return o.dst, true
}

func lineTopo(nSwitches, termsPer int) *jellyfish.Topology {
	b := graph.NewBuilder(nSwitches)
	for i := 0; i+1 < nSwitches; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return &jellyfish.Topology{G: b.Graph(), N: nSwitches, X: termsPer + 2, Y: 2}
}

func jelly(t testing.TB, n, x, y int, seed uint64) *jellyfish.Topology {
	t.Helper()
	topo, err := jellyfish.New(jellyfish.Params{N: n, X: x, Y: y}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func db(topo *jellyfish.Topology, alg ksp.Algorithm, k int) *paths.DB {
	return paths.NewDB(topo.G, ksp.Config{Alg: alg, K: k}, 1)
}

func TestSinglePacketLatency(t *testing.T) {
	// One packet over a 3-hop path: injection wait 1 + injection channel 1
	// + 3 x 10 network channels + ejection channel 1 = 33 cycles.
	topo := lineTopo(4, 1)
	cfg := Config{
		Topo:      topo,
		Paths:     db(topo, ksp.KSP, 1),
		Mechanism: routing.SP(),
		Traffic:   &oneShot{src: 0, dst: 3},
		// InjectionRate gates generation; the sampler fires once.
		InjectionRate: 1,
		NumVCs:        8,
		WarmupCycles:  -1,
	}
	s := New(cfg)
	res := s.Run()
	if res.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	if res.AvgLatency != 33 {
		t.Fatalf("latency = %v, want 33", res.AvgLatency)
	}
	if res.MaxHops != 3 {
		t.Fatalf("hops = %d", res.MaxHops)
	}
}

func TestSameSwitchPacket(t *testing.T) {
	topo := lineTopo(2, 2) // terminals 0,1 on switch 0
	cfg := Config{
		Topo:          topo,
		Paths:         db(topo, ksp.KSP, 1),
		Mechanism:     routing.SP(),
		Traffic:       &oneShot{src: 0, dst: 1},
		InjectionRate: 1,
		NumVCs:        4,
		WarmupCycles:  -1,
	}
	res := New(cfg).Run()
	if res.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	// Injection wait 1 + injection channel 1 + ejection channel 1 = 3.
	if res.AvgLatency != 3 {
		t.Fatalf("latency = %v, want 3", res.AvgLatency)
	}
}

func TestConservation(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	cfg := Config{
		Topo:          topo,
		Paths:         db(topo, ksp.REDKSP, 4),
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 0.3,
		Seed:          7,
	}
	s := New(cfg)
	s.Step(2000)
	inj, del, inFlight := s.Counts()
	if inj == 0 || del == 0 {
		t.Fatalf("injected=%d delivered=%d", inj, del)
	}
	if got := s.QueuedPackets(); got != inFlight {
		t.Fatalf("conservation violated: counted %d in network, expected %d", got, inFlight)
	}
}

func TestDeterminism(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	mk := func() Result {
		return New(Config{
			Topo:          topo,
			Paths:         paths.NewDB(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 11),
			Mechanism:     routing.KSPAdaptive(),
			Traffic:       traffic.Uniform{N: topo.NumTerminals()},
			InjectionRate: 0.4,
			Seed:          21,
		}).Run()
	}
	a, b := mk(), mk()
	if a.AvgLatency != b.AvgLatency || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestLowLoadNotSaturatedHighLoadSaturated(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	pdb := db(topo, ksp.KSP, 4)
	run := func(rate float64) Result {
		return New(Config{
			Topo:          topo,
			Paths:         pdb,
			Mechanism:     routing.SP(),
			Traffic:       traffic.Uniform{N: topo.NumTerminals()},
			InjectionRate: rate,
			Seed:          5,
		}).Run()
	}
	low := run(0.05)
	if low.Saturated {
		t.Fatalf("5%% load saturated: %+v", low.SampleLatencies)
	}
	if low.AvgLatency <= 0 {
		t.Fatal("no latency recorded at low load")
	}
	// Single-path routing at full uniform load on a y=4 RRG must saturate:
	// 4 terminals per switch inject 1 flit/cycle into 4 network links with
	// multi-hop paths.
	high := run(1.0)
	if !high.Saturated {
		t.Fatalf("full load not saturated: avg latency %v", high.AvgLatency)
	}
}

func TestAllMechanismsDeliver(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	pdb := db(topo, ksp.REDKSP, 4)
	for _, mech := range append(routing.Mechanisms(), routing.SP()) {
		res := New(Config{
			Topo:          topo,
			Paths:         pdb,
			Mechanism:     mech,
			Traffic:       traffic.Uniform{N: topo.NumTerminals()},
			InjectionRate: 0.2,
			Seed:          9,
		}).Run()
		if res.Delivered == 0 {
			t.Fatalf("%s delivered nothing", mech.Name())
		}
		if res.Saturated {
			t.Fatalf("%s saturated at 20%% load", mech.Name())
		}
		if res.Injected != res.Delivered+res.InFlight {
			t.Fatalf("%s conservation: %d != %d + %d",
				mech.Name(), res.Injected, res.Delivered, res.InFlight)
		}
	}
}

func TestUGALUsesNonMinimalPaths(t *testing.T) {
	// Under heavy permutation load vanilla UGAL should sometimes divert to
	// non-minimal paths, observable as MaxHops above the k-path maximum.
	topo := jelly(t, 12, 8, 4, 3)
	pdb := db(topo, ksp.KSP, 2)
	res := New(Config{
		Topo:          topo,
		Paths:         pdb,
		Mechanism:     routing.VanillaUGAL(),
		Traffic:       traffic.NewFixedSampler(traffic.RandomPermutation(topo.NumTerminals(), xrand.New(2))),
		InjectionRate: 0.9,
		Seed:          13,
	}).Run()
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.MaxHops < 3 {
		t.Fatalf("UGAL never took a long path (max hops %d)", res.MaxHops)
	}
}

func TestPermutationTraffic(t *testing.T) {
	// Like the paper's topologies, keep the network ports at about twice
	// the terminal count per switch (RRG(36,24,16) has 8 terminals and 16
	// links); an oversubscribed switch would saturate regardless of
	// routing.
	topo := jelly(t, 12, 9, 6, 3)
	pdb := db(topo, ksp.REDKSP, 4)
	pat := traffic.RandomPermutation(topo.NumTerminals(), xrand.New(1))
	res := New(Config{
		Topo:          topo,
		Paths:         pdb,
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       traffic.NewFixedSampler(pat),
		InjectionRate: 0.5,
		Seed:          3,
	}).Run()
	if res.Saturated {
		t.Fatalf("rEDKSP adaptive saturated at 50%% permutation load (lat %v)", res.SampleLatencies)
	}
	if res.DeliveredRate <= 0.3 {
		t.Fatalf("delivered rate = %v", res.DeliveredRate)
	}
}

func TestSweepAndSaturation(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	cfg := Config{
		Topo:      topo,
		Paths:     db(topo, ksp.REDKSP, 4),
		Mechanism: routing.KSPAdaptive(),
		Traffic:   traffic.Uniform{N: topo.NumTerminals()},
		Seed:      17,
	}
	rates := Rates(0.1, 1.0, 0.1)
	if len(rates) != 10 {
		t.Fatalf("rates = %v", rates)
	}
	sat, results := SaturationThroughput(cfg, rates, 4)
	if len(results) != len(rates) {
		t.Fatalf("results = %d", len(results))
	}
	if sat < 0.1 {
		t.Fatalf("saturation throughput = %v, expected at least the lowest rate", sat)
	}
	// Latency should be nondecreasing-ish: final unsaturated latency above
	// the first rate's latency.
	if results[0].Saturated {
		t.Fatal("10% load saturated")
	}
}

func TestDeliveredRateTracksOfferedAtLowLoad(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	res := New(Config{
		Topo:          topo,
		Paths:         db(topo, ksp.REDKSP, 4),
		Mechanism:     routing.Random(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 0.1,
		Seed:          23,
	}).Run()
	if res.DeliveredRate < 0.08 || res.DeliveredRate > 0.12 {
		t.Fatalf("delivered rate %v far from offered 0.1", res.DeliveredRate)
	}
}

func TestConfigValidation(t *testing.T) {
	topo := lineTopo(2, 1)
	ok := Config{
		Topo:      topo,
		Paths:     db(topo, ksp.KSP, 1),
		Mechanism: routing.SP(),
		Traffic:   traffic.Uniform{N: 2},
	}
	bad := ok
	bad.InjectionRate = 1.5
	mustPanic(t, func() { New(bad) })
	missing := ok
	missing.Paths = nil
	mustPanic(t, func() { New(missing) })
}

func TestRoundRobinCyclesPaths(t *testing.T) {
	// A 4-cycle has two paths between opposite corners; round-robin must
	// alternate them strictly.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	topo := &jellyfish.Topology{G: b.Graph(), N: 4, X: 3, Y: 2}
	pdb := paths.NewDB(topo.G, ksp.Config{Alg: ksp.EDKSP, K: 2}, 1)
	s := New(Config{
		Topo:      topo,
		Paths:     pdb,
		Mechanism: routing.RoundRobin(),
		Traffic:   traffic.Uniform{N: 4},
		NumVCs:    6,
	})
	p1, _ := s.choosePath(0, 2)
	p2, _ := s.choosePath(0, 2)
	p3, _ := s.choosePath(0, 2)
	if p1.Equal(p2) {
		t.Fatalf("round robin repeated the path: %v", p1)
	}
	if !p1.Equal(p3) {
		t.Fatalf("round robin did not cycle back: %v vs %v", p1, p3)
	}
}

func TestKSPAdaptiveAvoidsCongestedPath(t *testing.T) {
	// Manually congest one path's first link and check KSP-adaptive picks
	// the other one (two candidates, deterministic comparison).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	topo := &jellyfish.Topology{G: b.Graph(), N: 4, X: 3, Y: 2}
	pdb := paths.NewDB(topo.G, ksp.Config{Alg: ksp.EDKSP, K: 2}, 1)
	s := New(Config{
		Topo:      topo,
		Paths:     pdb,
		Mechanism: routing.KSPAdaptive(),
		Traffic:   traffic.Uniform{N: 4},
		NumVCs:    6,
	})
	// Congest link 0->1.
	id := topo.G.LinkID(0, 1)
	s.occ[id] = 30
	for trial := 0; trial < 20; trial++ {
		p, _ := s.choosePath(0, 2)
		if p[1] == 1 {
			t.Fatalf("adaptive chose the congested path %v", p)
		}
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRatesEndpointExact(t *testing.T) {
	rs := Rates(0.05, 1.0, 0.05)
	if len(rs) != 20 {
		t.Fatalf("len = %d, want 20", len(rs))
	}
	if rs[len(rs)-1] > 1.0 {
		t.Fatalf("last rate %v exceeds 1.0", rs[len(rs)-1])
	}
	for _, r := range rs {
		if r < 0 || r > 1 {
			t.Fatalf("rate %v out of range", r)
		}
	}
	// Every generated rate must be a legal injection rate.
	if rs2 := Rates(0.1, 0.3, 0.1); len(rs2) != 3 {
		t.Fatalf("Rates(0.1,0.3,0.1) = %v", rs2)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	res := New(Config{
		Topo:          topo,
		Paths:         db(topo, ksp.REDKSP, 4),
		Mechanism:     routing.Random(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 0.2,
		Seed:          31,
	}).Run()
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	// The median must bracket the mean loosely at low load.
	if res.P50 > res.AvgLatency*3 {
		t.Fatalf("p50 %v wildly above mean %v", res.P50, res.AvgLatency)
	}
}

func TestUGALBiasExtremes(t *testing.T) {
	// With an enormous MIN bias, biased KSP-UGAL degenerates to SP: same
	// delivered results under a fixed seed.
	topo := jelly(t, 12, 8, 4, 3)
	pdb := db(topo, ksp.KSP, 4)
	run := func(mech routing.Mechanism) Result {
		return New(Config{
			Topo:          topo,
			Paths:         pdb,
			Mechanism:     mech,
			Traffic:       traffic.Uniform{N: topo.NumTerminals()},
			InjectionRate: 0.15,
			Seed:          77,
		}).Run()
	}
	// Routing decisions match SP exactly, but the mechanism consumes extra
	// RNG draws (sampling the unused alternative), desynchronizing traffic
	// generation — so compare statistically, not bit-for-bit.
	biased := run(routing.KSPUGALBiased(1 << 30))
	sp := run(routing.SP())
	if diff := biased.AvgLatency - sp.AvgLatency; diff > sp.AvgLatency*0.05 || diff < -sp.AvgLatency*0.05 {
		t.Fatalf("infinitely biased KSP-UGAL (%v) far from SP (%v)",
			biased.AvgLatency, sp.AvgLatency)
	}
	if biased.MaxHops != sp.MaxHops {
		t.Fatalf("biased KSP-UGAL used different path lengths: %d vs %d",
			biased.MaxHops, sp.MaxHops)
	}
	// Bias 0 must match the unbiased constructor.
	a, b := run(routing.KSPUGALBiased(0)), run(routing.KSPUGAL())
	if a.AvgLatency != b.AvgLatency {
		t.Fatal("bias 0 differs from unbiased KSP-UGAL")
	}
	c, d := run(routing.VanillaUGALBiased(0)), run(routing.VanillaUGAL())
	if c.AvgLatency != d.AvgLatency {
		t.Fatal("bias 0 differs from unbiased UGAL")
	}
}

func TestAvgHopsReported(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	res := New(Config{
		Topo:          topo,
		Paths:         db(topo, ksp.KSP, 2),
		Mechanism:     routing.SP(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 0.1,
		Seed:          41,
	}).Run()
	if res.AvgHops <= 0 || res.AvgHops > float64(res.MaxHops) {
		t.Fatalf("avg hops = %v (max %d)", res.AvgHops, res.MaxHops)
	}
	// With SP routing the average hop count approximates the average
	// shortest path length of the switch graph.
	m := graph.ComputeMetrics(topo.G, 0)
	if res.AvgHops < m.AvgShortestPath*0.7 || res.AvgHops > m.AvgShortestPath*1.3 {
		t.Fatalf("avg hops %v far from avg shortest path %v", res.AvgHops, m.AvgShortestPath)
	}
}

func TestNoLivelockUnderSustainedOverload(t *testing.T) {
	// Deadlock-freedom stress: at injection rate 1.0 for a long horizon,
	// delivery must keep making progress (VC-per-hop ordering guarantees
	// the network never wedges).
	topo := jelly(t, 12, 8, 4, 3)
	s := New(Config{
		Topo:          topo,
		Paths:         db(topo, ksp.REDKSP, 4),
		Mechanism:     routing.KSPAdaptive(),
		Traffic:       traffic.Uniform{N: topo.NumTerminals()},
		InjectionRate: 1.0,
		Seed:          43,
	})
	var lastDelivered int64
	for epoch := 0; epoch < 10; epoch++ {
		s.Step(1000)
		_, delivered, _ := s.Counts()
		if delivered <= lastDelivered {
			t.Fatalf("no progress in epoch %d: delivered stuck at %d", epoch, delivered)
		}
		lastDelivered = delivered
	}
	if got := s.QueuedPackets(); got != func() int64 { _, _, f := s.Counts(); return f }() {
		t.Fatal("conservation violated under overload")
	}
}

func TestSaturationLatencyOnlyMode(t *testing.T) {
	// Pick a regime where the throughput criterion fires but the latency
	// criterion does not: SP routing on shift traffic at a load past its
	// capacity but with stable delivered-packet latency.
	topo := jelly(t, 12, 9, 6, 3)
	pdb := db(topo, ksp.KSP, 4)
	base := Config{
		Topo:          topo,
		Paths:         pdb,
		Mechanism:     routing.SP(),
		Traffic:       traffic.NewFixedSampler(traffic.RandomShift(topo.NumTerminals(), xrand.New(8))),
		InjectionRate: 1.0,
		Seed:          6,
	}
	both := New(base).Run()
	latOnly := base
	latOnly.SaturationLatencyOnly = true
	paper := New(latOnly).Run()
	if !both.Saturated {
		t.Skip("regime did not trigger the throughput criterion; nothing to compare")
	}
	// The latency-only run may or may not be saturated, but it must never
	// be saturated in a case the default criterion is not.
	if paper.Saturated && !both.Saturated {
		t.Fatal("latency-only mode is stricter than the default, which is impossible")
	}
	// Both modes must agree on the actual delivery numbers (the criterion
	// only affects the verdict).
	if both.DeliveredRate != paper.DeliveredRate {
		t.Fatalf("criterion changed delivery: %v vs %v", both.DeliveredRate, paper.DeliveredRate)
	}
}
