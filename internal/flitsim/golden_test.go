package flitsim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/ksp"
	"repro/internal/paths"
	"repro/internal/routing"
	"repro/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_results.json")

// TestFaultSweepParallelSmoke runs a parallel Sweep sharing one topology,
// path DB and fault schedule across workers. Its job is to fail under the
// race detector if the sparse hot-loop state or the shared read-only
// inputs are ever touched unsafely (`make check` runs every Fault test
// with -race), and to pin that parallel sweeps stay deterministic.
func TestFaultSweepParallelSmoke(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	sched, err := faults.ParseSpec("random:2@800", topo.G, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topo:      topo,
		Paths:     paths.NewDB(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 1),
		Mechanism: routing.KSPAdaptive(),
		Traffic:   traffic.Uniform{N: topo.NumTerminals()},
		Seed:      11,
		Faults:    sched,
	}
	rates := []float64{0.05, 0.2, 0.4, 0.6}
	a := Sweep(cfg, rates, 4)
	b := Sweep(cfg, rates, 2)
	for i := range a {
		if a[i].Delivered == 0 {
			t.Fatalf("rate %v delivered nothing", rates[i])
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("rate %v differs across worker counts:\n%+v\n%+v", rates[i], a[i], b[i])
		}
	}
}

const goldenFile = "testdata/golden_results.json"

// TestResultGolden pins the exact Result of 36 runs — every mechanism at a
// low, mid and saturating load, with and without a mid-run link-failure
// burst — against committed values. Any change to per-cycle behavior, RNG
// consumption order, arbitration order or fault handling shows up as a
// field-level diff here, which is how hot-loop rewrites prove themselves
// bit-identical. Regenerate with `go test ./internal/flitsim -run
// ResultGolden -update` only when a behavior change is intended.
func TestResultGolden(t *testing.T) {
	topo := jelly(t, 12, 8, 4, 3)
	pdb := paths.NewDB(topo.G, ksp.Config{Alg: ksp.REDKSP, K: 4}, 1)
	mechs := append(routing.Mechanisms(), routing.SP())
	loads := []float64{0.05, 0.30, 0.90}

	faultSched, err := faults.ParseSpec("random:2@600,1@2200", topo.G, 99)
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]Result{}
	for _, mech := range mechs {
		for _, load := range loads {
			for _, faulty := range []bool{false, true} {
				cfg := Config{
					Topo:          topo,
					Paths:         pdb,
					Mechanism:     mech,
					Traffic:       traffic.Uniform{N: topo.NumTerminals()},
					InjectionRate: load,
					Seed:          1234,
				}
				key := fmt.Sprintf("%s/load=%.2f/faults=off", mech.Name(), load)
				if faulty {
					cfg.Faults = faultSched
					key = fmt.Sprintf("%s/load=%.2f/faults=on", mech.Name(), load)
				}
				got[key] = New(cfg).Run()
			}
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d results", goldenFile, len(got))
		return
	}

	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	var want map[string]Result
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d results, run produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from run", key)
			continue
		}
		// Field-by-field so a mismatch names the exact counter that moved.
		wv, gv := reflect.ValueOf(w), reflect.ValueOf(g)
		for i := 0; i < wv.NumField(); i++ {
			name := wv.Type().Field(i).Name
			if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
				t.Errorf("%s: %s = %v, golden %v", key, name,
					gv.Field(i).Interface(), wv.Field(i).Interface())
			}
		}
	}
}
